module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Layering = Qaoa_circuit.Layering
module Device = Qaoa_hardware.Device
module Mapping = Qaoa_backend.Mapping
module Statevector = Qaoa_sim.Statevector
module Phase_poly = Qaoa_analysis.Phase_poly
module Trace = Qaoa_obs.Trace
module Metrics_registry = Qaoa_obs.Metrics_registry

type issue =
  | Uncoupled_pair of { gate_index : int; gate : Gate.t }
  | Unallocated_operand of { gate_index : int; gate : Gate.t; physical : int }
  | Unexpected_gate of { gate_index : int; gate : Gate.t; logical : Gate.t }
  | Missing_gates of { gates : Gate.t list }
  | Final_mapping_mismatch of { logical : int; expected : int; actual : int }
  | Swap_count_mismatch of { recorded : int; counted : int }
  | Measurement_missing of { logical : int }
  | Measured_wire_disturbed of {
      gate_index : int;
      gate : Gate.t;
      physical : int;
    }
  | Readout_mismatch of { logical : int; measured_at : int; final : int }
  | State_mismatch of {
      layer : int option;
      gate_index : int option;
      distance : float;
    }
  | Phase_poly_mismatch of { segment : int; detail : string }

type semantic_method = Statevector | Phase_polynomial

type semantic_status =
  | Checked of { num_qubits : int; method_ : semantic_method }
  | Skipped of string

type report = { issues : issue list; semantic : semantic_status }

let default_max_semantic_qubits = 12

type oracle = Auto | Statevector_only | Phase_poly_only

type options = {
  check_semantics : bool;
  max_semantic_qubits : int;
  eps : float;
  oracle : oracle;
}

let default_options () =
  let max_semantic_qubits =
    match Sys.getenv_opt "QAOA_MAX_SEMANTIC_QUBITS" with
    | None -> default_max_semantic_qubits
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> default_max_semantic_qubits)
  in
  { check_semantics = true; max_semantic_qubits; eps = 1e-6; oracle = Auto }

let issue_to_string = function
  | Uncoupled_pair { gate_index; gate } ->
    Format.asprintf "gate %d: %a acts on an uncoupled physical pair"
      gate_index Gate.pp gate
  | Unallocated_operand { gate_index; gate; physical } ->
    Format.asprintf
      "gate %d: %a touches physical qubit %d, which hosts no logical qubit"
      gate_index Gate.pp gate physical
  | Unexpected_gate { gate_index; gate; logical } ->
    Format.asprintf
      "gate %d: %a (logical pre-image %a) is not a gate the logical \
       circuit owes"
      gate_index Gate.pp gate Gate.pp logical
  | Missing_gates { gates } ->
    Format.asprintf "%d logical gate(s) never emitted, e.g. %a"
      (List.length gates) Gate.pp (List.hd gates)
  | Final_mapping_mismatch { logical; expected; actual } ->
    Printf.sprintf
      "final mapping: logical %d recorded on physical %d but SWAP replay \
       puts it on %d"
      logical expected actual
  | Swap_count_mismatch { recorded; counted } ->
    Printf.sprintf "swap count: result records %d, circuit contains %d"
      recorded counted
  | Measurement_missing { logical } ->
    Printf.sprintf "logical qubit %d is never measured" logical
  | Measured_wire_disturbed { gate_index; gate; physical } ->
    Format.asprintf "gate %d: %a acts on physical qubit %d after its \
                     measurement"
      gate_index Gate.pp gate physical
  | Readout_mismatch { logical; measured_at; final } ->
    Printf.sprintf
      "readout: logical %d measured on physical %d but final mapping says \
       %d"
      logical measured_at final
  | State_mismatch { layer; gate_index; distance } -> (
    match (layer, gate_index) with
    | Some l, Some i ->
      Printf.sprintf
        "state diverges at logical layer %d (completed by gate %d), \
         phase-aligned distance %.3e"
        l i distance
    | _ ->
      Printf.sprintf "final state differs, phase-aligned distance %.3e"
        distance)
  | Phase_poly_mismatch { segment; detail } ->
    Printf.sprintf "phase polynomials diverge at segment %d: %s" segment
      detail

let semantic_method_name = function
  | Statevector -> "statevector"
  | Phase_polynomial -> "phase polynomial"

let report_to_string r =
  let sem =
    match r.semantic with
    | Checked { num_qubits; method_ } ->
      Printf.sprintf "semantic: checked on %d qubits (%s)" num_qubits
        (semantic_method_name method_)
    | Skipped reason -> "semantic: skipped (" ^ reason ^ ")"
  in
  match r.issues with
  | [] -> "ok; " ^ sem
  | issues ->
    Printf.sprintf "%d issue(s); %s\n  %s" (List.length issues) sem
      (String.concat "\n  " (List.map issue_to_string issues))

let ok r = r.issues = []

(* ---------------------------------------------------------------- *)
(* Structural replay                                                *)
(* ---------------------------------------------------------------- *)

type replay = {
  issues : issue list;  (** in gate order *)
  preimages : (int * Gate.t * Gate.t) list;
      (** (compiled index, physical gate, logical pre-image) for every
          non-SWAP, non-Barrier gate whose operands were all allocated *)
  replayed_final : Mapping.t;
  counted_swaps : int;
  measured : (int * int) list;  (** (logical, wire at measurement time) *)
}

let structural_replay device initial compiled =
  let n_phys = Device.num_qubits device in
  let issues = ref [] in
  let emit i = issues := i :: !issues in
  let mapping = ref initial in
  let preimages = ref [] in
  let counted_swaps = ref 0 in
  let measured = ref [] in
  let measured_wires = Hashtbl.create 8 in
  let in_range w = w >= 0 && w < n_phys in
  let allocated w = in_range w && Mapping.logical_at !mapping w <> None in
  let check_disturbance idx g =
    List.iter
      (fun w ->
        if Hashtbl.mem measured_wires w then
          emit (Measured_wire_disturbed { gate_index = idx; gate = g; physical = w }))
      (Gate.qubits g)
  in
  let check_coupled idx g =
    match Gate.qubits g with
    | [ a; b ] when in_range a && in_range b ->
      if not (Device.coupled device a b) then
        emit (Uncoupled_pair { gate_index = idx; gate = g })
    | _ -> emit (Uncoupled_pair { gate_index = idx; gate = g })
  in
  (* A gate with fully allocated operands gets a logical pre-image. *)
  let record_preimage idx g =
    let wires = Gate.qubits g in
    let bad = List.filter (fun w -> not (allocated w)) wires in
    match bad with
    | w :: _ ->
      emit (Unallocated_operand { gate_index = idx; gate = g; physical = w })
    | [] ->
      let pre =
        Gate.map_qubits
          (fun w -> Option.get (Mapping.logical_at !mapping w))
          g
      in
      preimages := (idx, g, pre) :: !preimages
  in
  List.iteri
    (fun idx g ->
      match g with
      | Gate.Barrier -> ()
      | Gate.Swap (p, q) ->
        check_coupled idx g;
        check_disturbance idx g;
        if in_range p && in_range q && p <> q then begin
          mapping := Mapping.swap_physical !mapping p q;
          incr counted_swaps
        end
      | Gate.Cnot _ | Gate.Cphase _ ->
        check_coupled idx g;
        check_disturbance idx g;
        record_preimage idx g
      | Gate.Measure p ->
        check_disturbance idx g;
        record_preimage idx g;
        (match Mapping.logical_at !mapping p with
        | Some l ->
          measured := (l, p) :: !measured;
          Hashtbl.replace measured_wires p ()
        | None -> ())
      | _ ->
        (* one-qubit unitaries *)
        check_disturbance idx g;
        record_preimage idx g)
    (Circuit.gates compiled);
  {
    issues = List.rev !issues;
    preimages = List.rev !preimages;
    replayed_final = !mapping;
    counted_swaps = !counted_swaps;
    measured = List.rev !measured;
  }

(* ---------------------------------------------------------------- *)
(* Gate accounting: multiset of logical pre-images vs logical gates *)
(* ---------------------------------------------------------------- *)

let accounting logical replay =
  let bag = Hashtbl.create 64 in
  List.iter
    (fun g ->
      match g with
      | Gate.Barrier -> ()
      | _ ->
        Hashtbl.replace bag g
          (1 + Option.value ~default:0 (Hashtbl.find_opt bag g)))
    (Circuit.gates logical);
  let issues = ref [] in
  List.iter
    (fun (idx, phys_gate, pre) ->
      match Hashtbl.find_opt bag pre with
      | Some c when c > 1 -> Hashtbl.replace bag pre (c - 1)
      | Some _ -> Hashtbl.remove bag pre
      | None ->
        issues :=
          Unexpected_gate { gate_index = idx; gate = phys_gate; logical = pre }
          :: !issues)
    replay.preimages;
  let leftover =
    Hashtbl.fold
      (fun g c acc -> List.rev_append (List.init c (fun _ -> g)) acc)
      bag []
  in
  let issues = List.rev !issues in
  if leftover = [] then issues
  else issues @ [ Missing_gates { gates = leftover } ]

(* ---------------------------------------------------------------- *)
(* Semantic replay                                                  *)
(* ---------------------------------------------------------------- *)

(* Re-simulate the logical pre-images in compiled emission order and
   compare against the logical circuit's own state.  Because compiled
   gates only reorder commuting operations, both runs must agree at every
   "clean" boundary - a point where the emitted gates are exactly the
   gates of a prefix of the logical circuit's ASAP layers - and at the
   end.  The first divergent clean boundary names the offending layer. *)
let semantic ~eps logical replay =
  let n = Circuit.num_qubits logical in
  let layers = Array.of_list (Layering.layers logical) in
  let num_layers = Array.length layers in
  (* layer attribution bag: gate value -> ascending layer indices *)
  let layer_bag = Hashtbl.create 64 in
  Array.iteri
    (fun li layer ->
      List.iter
        (fun g ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt layer_bag g) in
          Hashtbl.replace layer_bag g (prev @ [ li ]))
        layer)
    layers;
  let remaining = Array.map List.length layers in
  let completed = ref (-1) in
  let max_touched = ref (-1) in
  let advance_completed () =
    while
      !completed + 1 < num_layers && remaining.(!completed + 1) = 0
    do
      incr completed
    done
  in
  advance_completed ();
  let b = Statevector.create n in
  let a = Statevector.create n in
  let ref_applied = ref 0 in
  let advance_reference upto =
    while !ref_applied <= upto do
      List.iter (Statevector.apply_gate a) layers.(!ref_applied);
      incr ref_applied
    done
  in
  let mismatch = ref None in
  List.iter
    (fun (idx, _phys, pre) ->
      if !mismatch = None then begin
        Statevector.apply_gate b pre;
        (match Hashtbl.find_opt layer_bag pre with
        | Some (li :: rest) ->
          Hashtbl.replace layer_bag pre rest;
          remaining.(li) <- remaining.(li) - 1;
          if li > !max_touched then max_touched := li
        | _ -> ());
        let before = !completed in
        advance_completed ();
        if !completed > before && !max_touched <= !completed then begin
          advance_reference !completed;
          let d = Statevector.distance_up_to_global_phase a b in
          if d > eps then
            mismatch :=
              Some
                (State_mismatch
                   {
                     layer = Some !completed;
                     gate_index = Some idx;
                     distance = d;
                   })
        end
      end)
    replay.preimages;
  match !mismatch with
  | Some issue -> [ issue ]
  | None ->
    advance_reference (num_layers - 1);
    let d = Statevector.distance_up_to_global_phase a b in
    if d > eps then
      [ State_mismatch { layer = None; gate_index = None; distance = d } ]
    else []

(* The any-size oracle: compare the logical circuit against the circuit
   of logical pre-images (in emission order) via their phase-polynomial
   canonical forms.  Exact on the linear fragment; [Error reason] when
   the non-linear skeletons do not line up. *)
let phase_poly_semantic ~eps logical replay =
  let n = Circuit.num_qubits logical in
  let preimage_circuit =
    Circuit.of_gates n (List.map (fun (_, _, pre) -> pre) replay.preimages)
  in
  match Phase_poly.equal_up_to_global_phase ~eps logical preimage_circuit with
  | Phase_poly.Equivalent -> Ok []
  | Phase_poly.Inequivalent { segment; detail } ->
    Ok [ Phase_poly_mismatch { segment; detail } ]
  | Phase_poly.Inconclusive reason -> Error reason

(* ---------------------------------------------------------------- *)
(* Entry point                                                      *)
(* ---------------------------------------------------------------- *)

let validate ?options ~device ~initial ~final ?swap_count ~logical compiled =
  let options =
    match options with Some o -> o | None -> default_options ()
  in
  let { check_semantics; max_semantic_qubits; eps; oracle } = options in
  let n_logical = Circuit.num_qubits logical in
  Trace.with_span "verify.check.validate"
    ~attrs:
      [
        ("num_logical", Trace.int n_logical);
        ("compiled_gates", Trace.int (Circuit.length compiled));
        ("device", Trace.str device.Device.name);
      ]
  @@ fun () ->
  Metrics_registry.incr "verify.checks";
  let replay = structural_replay device initial compiled in
  let mapping_issues =
    List.concat_map
      (fun l ->
        let expected = Mapping.phys final l in
        let actual = Mapping.phys replay.replayed_final l in
        if expected <> actual then
          [ Final_mapping_mismatch { logical = l; expected; actual } ]
        else [])
      (List.init n_logical Fun.id)
  in
  let swap_issues =
    match swap_count with
    | Some recorded when recorded <> replay.counted_swaps ->
      [ Swap_count_mismatch { recorded; counted = replay.counted_swaps } ]
    | _ -> []
  in
  let measure_issues =
    let expected_measures =
      List.filter_map
        (function Gate.Measure l -> Some l | _ -> None)
        (Circuit.gates logical)
    in
    List.concat_map
      (fun l ->
        match List.assoc_opt l replay.measured with
        | None -> [ Measurement_missing { logical = l } ]
        | Some wire ->
          let final_wire = Mapping.phys final l in
          if wire <> final_wire then
            [
              Readout_mismatch
                { logical = l; measured_at = wire; final = final_wire };
            ]
          else [])
      expected_measures
  in
  let accounting_issues = accounting logical replay in
  let structural_issues =
    replay.issues @ mapping_issues @ swap_issues @ measure_issues
    @ accounting_issues
  in
  let statevector_check () =
    Trace.with_span "verify.check.semantic" @@ fun () ->
    ( semantic ~eps logical replay,
      Checked { num_qubits = n_logical; method_ = Statevector } )
  in
  let phase_poly_check ~skip_prefix =
    match phase_poly_semantic ~eps logical replay with
    | Ok issues ->
      (issues, Checked { num_qubits = n_logical; method_ = Phase_polynomial })
    | Error reason ->
      ( [],
        Skipped
          (Printf.sprintf
             "%sphase-polynomial oracle inconclusive: non-linear \
              segmentation fallback failed (%s)"
             skip_prefix reason) )
  in
  let semantic_issues, semantic_status =
    if not check_semantics then ([], Skipped "disabled")
    else if structural_issues <> [] then
      ([], Skipped "structural issues present")
    else
      match oracle with
      | Phase_poly_only -> phase_poly_check ~skip_prefix:""
      | Statevector_only ->
        if n_logical <= max_semantic_qubits then statevector_check ()
        else
          ( [],
            Skipped
              (Printf.sprintf
                 "%d qubits exceeds the %d-qubit statevector limit and the \
                  phase-polynomial oracle is disabled"
                 n_logical max_semantic_qubits) )
      | Auto ->
        if n_logical <= max_semantic_qubits then statevector_check ()
        else
          phase_poly_check
            ~skip_prefix:
              (Printf.sprintf
                 "%d qubits exceeds the %d-qubit statevector limit; "
                 n_logical max_semantic_qubits)
  in
  (match semantic_status with
  | Checked { method_ = Statevector; _ } ->
    Metrics_registry.incr "verify.semantic_checked"
  | Checked { method_ = Phase_polynomial; _ } ->
    Metrics_registry.incr "verify.semantic_checked";
    Metrics_registry.incr "verify.semantic_phase_poly"
  | Skipped _ -> Metrics_registry.incr "verify.semantic_skipped");
  let issues = structural_issues @ semantic_issues in
  Metrics_registry.incr "verify.issues" ~by:(List.length issues);
  { issues; semantic = semantic_status }

exception Verification_failed of report

let () =
  Printexc.register_printer (function
    | Verification_failed r ->
      Some ("Qaoa_verify.Check.Verification_failed: " ^ report_to_string r)
    | _ -> None)

let validate_exn ?options ~device ~initial ~final ?swap_count ~logical
    compiled =
  let r =
    validate ?options ~device ~initial ~final ?swap_count ~logical compiled
  in
  if not (ok r) then raise (Verification_failed r)
