(** Generic seeded differential-fuzzing engine with shrinking.

    The engine is deliberately agnostic of what a case is: the QAOA
    pipeline sweep (problems x policies x topologies) instantiates it from
    {!Qaoa_experiments.Differential}, and the test suite instantiates it
    with synthetic oracles.  A case runner returns [None] on agreement and
    [Some detail] on a discrepancy; exceptions raised by the runner are
    caught and reported as failures too, so a crashing compile shrinks
    like a miscompiling one. *)

type 'a failure = {
  case : 'a;  (** the originally failing case *)
  detail : string;
  shrunk : 'a;  (** smallest still-failing case reached by shrinking *)
  shrunk_detail : string;
  shrink_steps : int;  (** successful shrink steps taken *)
}

type 'a stats = {
  cases_run : int;
  shrink_runs : int;  (** extra case executions spent shrinking *)
  failures : 'a failure list;  (** in discovery order *)
}

val run :
  ?shrink:('a -> 'a list) ->
  ?max_shrink_runs:int ->
  run_case:('a -> string option) ->
  'a list ->
  'a stats
(** Run every case, shrinking each failure greedily: repeatedly move to
    the first candidate from [shrink] that still fails, spending at most
    [max_shrink_runs] (default 200) extra executions per failure.
    [shrink] defaults to no shrinking. *)

val pp_stats :
  ?case_repro:('a -> string option) ->
  case_name:('a -> string) ->
  Format.formatter ->
  'a stats ->
  unit
(** Human-readable summary: counts, then one block per failure with the
    shrunk reproducer first.  [case_repro], when provided, renders the
    shrunk case as a standalone artifact (the pipeline sweep prints the
    compiled circuit as OpenQASM) appended indented under the failure;
    a [None] repro - e.g. the case crashes before producing a circuit -
    is silently omitted.  Repro rendering must not raise. *)
