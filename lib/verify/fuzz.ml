module Trace = Qaoa_obs.Trace
module Metrics_registry = Qaoa_obs.Metrics_registry

type 'a failure = {
  case : 'a;
  detail : string;
  shrunk : 'a;
  shrunk_detail : string;
  shrink_steps : int;
}

type 'a stats = {
  cases_run : int;
  shrink_runs : int;
  failures : 'a failure list;
}

let guarded run_case c =
  try run_case c
  with e -> Some ("exception: " ^ Printexc.to_string e)

(* Greedy descent: keep replacing the failure with the first still-failing
   shrink candidate until none fails or the run budget is exhausted. *)
let shrink_failure ~shrink ~run_case ~budget case detail =
  let runs = ref 0 in
  let steps = ref 0 in
  let rec descend case detail =
    let rec try_candidates = function
      | [] -> (case, detail)
      | c :: rest ->
        if !runs >= budget then (case, detail)
        else begin
          incr runs;
          match guarded run_case c with
          | Some d ->
            incr steps;
            descend c d
          | None -> try_candidates rest
        end
    in
    try_candidates (shrink case)
  in
  let shrunk, shrunk_detail = descend case detail in
  (shrunk, shrunk_detail, !steps, !runs)

let run ?(shrink = fun _ -> []) ?(max_shrink_runs = 200) ~run_case cases =
  Trace.with_span "verify.fuzz.run"
    ~attrs:[ ("cases", Trace.int (List.length cases)) ]
  @@ fun () ->
  let cases_run = ref 0 in
  let shrink_runs = ref 0 in
  let failures = ref [] in
  List.iter
    (fun case ->
      incr cases_run;
      Metrics_registry.incr "verify.fuzz.cases";
      match guarded run_case case with
      | None -> ()
      | Some detail ->
        Metrics_registry.incr "verify.fuzz.failures";
        let shrunk, shrunk_detail, shrink_steps, runs =
          shrink_failure ~shrink ~run_case ~budget:max_shrink_runs case
            detail
        in
        shrink_runs := !shrink_runs + runs;
        failures :=
          { case; detail; shrunk; shrunk_detail; shrink_steps } :: !failures)
    cases;
  {
    cases_run = !cases_run;
    shrink_runs = !shrink_runs;
    failures = List.rev !failures;
  }

let pp_stats ?case_repro ~case_name ppf stats =
  Format.fprintf ppf "cases: %d, failures: %d (shrinking spent %d runs)"
    stats.cases_run
    (List.length stats.failures)
    stats.shrink_runs;
  List.iteri
    (fun i f ->
      Format.fprintf ppf
        "@\n@\nfailure %d: %s@\n  %s@\n  shrunk (%d steps): %s@\n  %s" (i + 1)
        (case_name f.case) f.detail f.shrink_steps (case_name f.shrunk)
        f.shrunk_detail;
      match case_repro with
      | None -> ()
      | Some repro -> (
        match repro f.shrunk with
        | None -> ()
        | Some text ->
          Format.fprintf ppf "@\n  reproducer:@\n";
          String.split_on_char '\n' text
          |> List.iter (fun line -> Format.fprintf ppf "    %s@\n" line)))
    stats.failures
