(** Translation validation of compiled circuits.

    The compilation pipeline's contract (paper Sec. III-IV) is that a
    routed circuit is {e equivalent} to its logical source: every
    methodology may reorder commuting CPHASEs, insert SWAPs and relocate
    qubits, but the state it prepares - read through the final
    logical-to-physical mapping - must be the logical ansatz state.  This
    module checks that contract per compile, in two stages:

    - {b structural}: replay the compiled circuit against the device,
      evolving the logical-to-physical mapping through every SWAP.  Every
      two-qubit gate must act on a coupled physical pair, every non-SWAP
      gate on allocated wires; the replayed mapping must land on the
      recorded final mapping; SWAP counts must agree; measured wires must
      be untouched afterwards and consistent with final-mapping readout;
      and the multiset of logical pre-images of the emitted gates must
      equal the logical circuit's gates (so a wrong-pair CNOT is named
      even when the wrong pair happens to be coupled).
    - {b semantic}: one of two oracles, chosen by {!options.oracle}.
      Registers within {!options.max_semantic_qubits} re-simulate the
      logical pre-images in emission order on a {b statevector} and
      compare against the logical circuit's state up to global phase,
      checkpointing at every clean logical-layer boundary so a divergence
      is attributed to the first offending layer.  Larger registers fall
      back to the {b phase-polynomial} canonicalizer
      ({!Qaoa_analysis.Phase_poly}): exact on the linear gate fragment at
      any qubit count, in polynomial time, so 20-qubit compiles still get
      a definite semantic verdict instead of a skip.

    Structural checks run on circuits of any size.  When the semantic
    stage cannot run at all - disabled, structural issues present, or the
    phase-polynomial fallback finds misaligned non-linear skeletons - the
    report says exactly why in {!Skipped}. *)

type issue =
  | Uncoupled_pair of { gate_index : int; gate : Qaoa_circuit.Gate.t }
      (** two-qubit gate on physical qubits the device does not couple *)
  | Unallocated_operand of {
      gate_index : int;
      gate : Qaoa_circuit.Gate.t;
      physical : int;
    }
      (** non-SWAP gate touching a wire hosting no logical qubit *)
  | Unexpected_gate of {
      gate_index : int;
      gate : Qaoa_circuit.Gate.t;
      logical : Qaoa_circuit.Gate.t;
    }
      (** the gate's logical pre-image is not (or no longer) owed by the
          logical circuit - e.g. a CNOT on a coupled but wrong pair *)
  | Missing_gates of { gates : Qaoa_circuit.Gate.t list }
      (** logical gates never emitted by the compiled circuit *)
  | Final_mapping_mismatch of {
      logical : int;
      expected : int;  (** recorded final physical location *)
      actual : int;  (** location reached by replaying the SWAPs *)
    }
  | Swap_count_mismatch of { recorded : int; counted : int }
  | Measurement_missing of { logical : int }
      (** the logical circuit measures this qubit; the compiled one never
          does *)
  | Measured_wire_disturbed of {
      gate_index : int;
      gate : Qaoa_circuit.Gate.t;
      physical : int;
    }
      (** a gate acts on a wire after that wire was measured, so the
          recorded outcome would not reflect the final state *)
  | Readout_mismatch of { logical : int; measured_at : int; final : int }
      (** the qubit was measured on a wire other than its final-mapping
          location, so {!final}-based outcome translation would read the
          wrong bit *)
  | State_mismatch of {
      layer : int option;
          (** first divergent logical layer, when a clean layer boundary
              pinpoints it; [None] when only the final state differs *)
      gate_index : int option;
          (** compiled gate index completing that boundary *)
      distance : float;  (** phase-aligned L2 distance *)
    }
  | Phase_poly_mismatch of { segment : int; detail : string }
      (** the phase-polynomial oracle found the first divergent linear
          segment; [detail] is a human-readable witness (a differing
          output parity or phase term) *)

type semantic_method = Statevector | Phase_polynomial

type semantic_status =
  | Checked of { num_qubits : int; method_ : semantic_method }
  | Skipped of string  (** reason: disabled, structural issues, qubit
                           count past the statevector limit with the
                           fallback disabled, or an inconclusive
                           phase-polynomial comparison *)

type report = { issues : issue list; semantic : semantic_status }

val default_max_semantic_qubits : int
(** 12 - a 4096-amplitude statevector, cheap enough to run on every
    compile of the evaluation's problem sizes. *)

type oracle =
  | Auto  (** statevector within the qubit limit, phase-polynomial past it *)
  | Statevector_only  (** past the limit, skip (the pre-PR behaviour) *)
  | Phase_poly_only  (** always use the canonicalizer, any size *)

type options = {
  check_semantics : bool;  (** run the semantic stage at all *)
  max_semantic_qubits : int;  (** statevector cutoff *)
  eps : float;
      (** phase-aligned state-distance bound (statevector) and per-term
          angular tolerance (phase polynomial) *)
  oracle : oracle;
}

val default_options : unit -> options
(** [{ check_semantics = true; max_semantic_qubits; eps = 1e-6;
    oracle = Auto }], where [max_semantic_qubits] is
    {!default_max_semantic_qubits} unless the [QAOA_MAX_SEMANTIC_QUBITS]
    environment variable holds a non-negative integer (malformed values
    are ignored).  Read afresh on every call. *)

val issue_to_string : issue -> string
val report_to_string : report -> string

val ok : report -> bool
(** No issues found (a skipped semantic stage does not fail a report). *)

val validate :
  ?options:options ->
  device:Qaoa_hardware.Device.t ->
  initial:Qaoa_backend.Mapping.t ->
  final:Qaoa_backend.Mapping.t ->
  ?swap_count:int ->
  logical:Qaoa_circuit.Circuit.t ->
  Qaoa_circuit.Circuit.t ->
  report
(** [validate ~device ~initial ~final ~swap_count ~logical compiled]
    checks that [compiled] (on physical qubits, CPHASE/SWAP not yet
    decomposed) faithfully implements [logical] (on logical qubits) under
    the recorded mappings.  [options] defaults to {!default_options}[()].
    The semantic stage runs only when the structural stage is clean -
    structural issues make gate pre-images unreliable. *)

exception Verification_failed of report

val validate_exn :
  ?options:options ->
  device:Qaoa_hardware.Device.t ->
  initial:Qaoa_backend.Mapping.t ->
  final:Qaoa_backend.Mapping.t ->
  ?swap_count:int ->
  logical:Qaoa_circuit.Circuit.t ->
  Qaoa_circuit.Circuit.t ->
  unit
(** @raise Verification_failed when {!validate} finds any issue. *)
