type t = {
  name : string;
  coupling : Qaoa_graph.Graph.t;
  calibration : Calibration.t option;
}

let create ?calibration ~name coupling = { name; coupling; calibration }
let num_qubits t = Qaoa_graph.Graph.num_vertices t.coupling
let coupled t u v = Qaoa_graph.Graph.has_edge t.coupling u v
let coupling_edges t = Qaoa_graph.Graph.edges t.coupling
let with_calibration t calibration = { t with calibration = Some calibration }

let with_random_calibration ?mu ?sigma rng t =
  let cal = Calibration.random rng ?mu ?sigma (coupling_edges t) in
  (* Self-check: every coupling edge must have drawn a rate, even for
     degenerate coupling graphs (no edges, single edge, ...).  A gap here
     would surface much later as a Failure inside a success-probability
     fold, so fail loudly at the construction site instead. *)
  List.iter
    (fun (u, v) ->
      if Calibration.cnot_error_opt cal u v = None then
        invalid_arg
          (Printf.sprintf
             "Device.with_random_calibration: coupling (%d, %d) of %s has no \
              drawn rate"
             u v t.name))
    (coupling_edges t);
  { t with calibration = Some cal }

let calibration_exn t =
  match t.calibration with
  | Some c -> c
  | None -> invalid_arg (t.name ^ ": device has no calibration data")

let validate t =
  let issues = ref [] in
  let issue fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  if num_qubits t < 1 then issue "device %s has no qubits" t.name;
  (match t.calibration with
  | None -> ()
  | Some cal ->
    let in_range what x =
      if not (Float.is_finite x && x >= 0.0 && x <= 1.0) then
        issue "%s %g outside [0, 1]" what x
    in
    in_range "single-qubit error" (Calibration.single_qubit_error cal);
    in_range "readout error" (Calibration.readout_error cal);
    List.iter
      (fun (u, v, e) ->
        if u < 0 || v < 0 || u >= num_qubits t || v >= num_qubits t then
          issue "calibration entry (%d, %d) outside the %d-qubit register" u v
            (num_qubits t)
        else if not (coupled t u v) then
          issue "calibration entry (%d, %d) has no coupling edge" u v;
        in_range (Printf.sprintf "CNOT error of (%d, %d)" u v) e)
      (Calibration.entries cal));
  match !issues with [] -> Ok () | l -> Error (List.rev l)
