(** A target quantum device: name, coupling graph and optional calibration
    snapshot.

    The coupling graph is undirected - on IBM devices CNOT direction can be
    reversed with H conjugation at negligible cost, and the paper treats
    couplings as undirected throughout. *)

type t = {
  name : string;
  coupling : Qaoa_graph.Graph.t;
  calibration : Calibration.t option;
}

val create : ?calibration:Calibration.t -> name:string -> Qaoa_graph.Graph.t -> t
val num_qubits : t -> int
val coupled : t -> int -> int -> bool
val coupling_edges : t -> (int * int) list

val with_calibration : t -> Calibration.t -> t
(** Replace the calibration snapshot. *)

val with_random_calibration :
  ?mu:float -> ?sigma:float -> Qaoa_util.Rng.t -> t -> t
(** Attach a synthetic calibration drawn per-edge from a clamped normal
    distribution (defaults mu = 1e-2, sigma = 0.5e-2, as in Fig. 11(a)).
    Self-checks that {e every} coupling edge received a rate - including
    degenerate coupling graphs - and raises [Invalid_argument] naming the
    first uncovered coupling otherwise. *)

val calibration_exn : t -> Calibration.t
(** @raise Invalid_argument when the device has no calibration. *)

val validate : t -> (unit, string list) result
(** Structural sanity of a (possibly fault-injected) device: at least one
    qubit; every calibration entry names an existing coupling edge within
    the register; all error rates within [[0, 1]].  A calibration that
    covers only a {e subset} of the couplings is deliberately legal -
    that is exactly the "stale/incomplete snapshot" scenario the
    resilience layer injects - consumers must treat missing rates as
    degraded, not absent couplings. *)
