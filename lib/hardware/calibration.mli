(** Device calibration data: per-coupling CNOT error rates plus scalar
    one-qubit-gate and readout error rates.

    VIC (paper Sec. IV.D) and the success-probability metric (Sec. II)
    consume these.  Edge keys are unordered: looking up [(u, v)] and
    [(v, u)] returns the same rate. *)

type t

val create :
  ?single_qubit_error:float ->
  ?readout_error:float ->
  (int * int * float) list ->
  t
(** [create pairs] with [(u, v, cnot_error)] triples.
    [single_qubit_error] defaults to 1e-3, [readout_error] to 0.
    @raise Invalid_argument on a self-coupling [(u, u)] or when two
    triples name the same unordered coupling (so a snapshot can never
    silently lose or shadow a rate). *)

val uniform :
  ?single_qubit_error:float ->
  ?readout_error:float ->
  cnot_error:float ->
  (int * int) list ->
  t
(** Same error on every coupling. *)

val random :
  Qaoa_util.Rng.t ->
  ?single_qubit_error:float ->
  ?readout_error:float ->
  ?mu:float ->
  ?sigma:float ->
  (int * int) list ->
  t
(** Per-edge CNOT errors drawn from a clamped normal distribution; the
    paper's Fig. 11(a) experiment uses mu = 1.0e-2, sigma = 0.5e-2 (the
    defaults here), clamped to [1e-4, 0.5]. *)

val id : t -> int
(** Unique identifier of the snapshot (monotone creation counter); lets
    consumers memoize data derived from a calibration. *)

val cnot_error : t -> int -> int -> float
(** @raise Failure naming the missing coupling if it has no recorded
    rate (["Calibration.cnot_error: no rate recorded for coupling
    (u, v)"]).  Callers that can degrade gracefully should prefer
    {!cnot_error_opt} or {!cnot_error_or}. *)

val cnot_error_opt : t -> int -> int -> float option

val cnot_error_or : default:float -> t -> int -> int -> float
(** {!cnot_error_opt} with a fallback rate for unrecorded couplings. *)

val single_qubit_error : t -> float
val readout_error : t -> float

val cnot_success : t -> int -> int -> float
(** [1 - cnot_error]. *)

val cphase_success : t -> int -> int -> float
(** CNOT success squared: the RZ in the CPHASE decomposition is virtual
    (Sec. IV.D). *)

val edges : t -> (int * int) list
(** Couplings with recorded rates, [(u, v)] with [u < v], sorted. *)

val entries : t -> (int * int * float) list
(** Recorded [(u, v, cnot_error)] triples, [(u, v)] with [u < v],
    sorted - the inverse of {!create}. *)

val filter_edges : (int -> int -> float -> bool) -> t -> t
(** Keep only the entries satisfying the predicate (scalar error rates
    are preserved).  The result is a fresh snapshot with a new {!id}.
    Fault injection uses this to drop or sever calibration entries. *)

val map_errors : (int -> int -> float -> float) -> t -> t
(** Rewrite every recorded rate (e.g. to apply calibration drift).  The
    result is a fresh snapshot with a new {!id}. *)

val worst_edge : t -> (int * int) * float
(** Coupling with the highest CNOT error.  @raise Invalid_argument if no
    edges are recorded. *)
