module Graph = Qaoa_graph.Graph
module Paths = Qaoa_graph.Paths

let connectivity_strength ?(order = 2) device q =
  let dist = Paths.bfs_distances device.Device.coupling q in
  Array.fold_left
    (fun acc d -> if d >= 1 && d <= order then acc + 1 else acc)
    0 dist

let connectivity_profile ?order device =
  Array.init (Device.num_qubits device) (connectivity_strength ?order device)

(* The mapping procedures look distances up on every decision; the paper
   prescribes computing the matrix once per device (Floyd-Warshall) and
   reading it from memory.  Memoize on the physical identity of the
   coupling graph (devices share it across copies), keeping a small LRU.

   The cache is shared across domains (the serving layer compiles on a
   worker pool), so every access holds a mutex.  Computing inside the
   lock is deliberate: concurrent first requests for the same device
   then share one Floyd-Warshall run instead of racing duplicates, and
   the matrices handed out are only ever read afterwards. *)
let memoize () =
  let cache = ref [] in
  let lock = Mutex.create () in
  fun key compute ->
    Mutex.lock lock;
    match List.assq_opt key !cache with
    | Some m ->
      Mutex.unlock lock;
      m
    | None -> (
      match compute () with
      | m ->
        let keep = List.filteri (fun i _ -> i < 15) !cache in
        cache := (key, m) :: keep;
        Mutex.unlock lock;
        m
      | exception e ->
        Mutex.unlock lock;
        raise e)

let hop_cache = memoize ()

let hop_distances device =
  hop_cache device.Device.coupling (fun () ->
      Paths.all_pairs_hops device.Device.coupling)

let weighted_cache = memoize ()

let weighted_distances device =
  let cal = Device.calibration_exn device in
  weighted_cache (Calibration.id cal) (fun () ->
      (* Couplings without a recorded rate (stale or partial calibration
         snapshots) score as the worst rate the snapshot does record - or
         the 0.5 clamp ceiling when it records nothing - so the scorer
         steers away from uncalibrated couplings yet still routes over
         them when nothing better exists, instead of raising mid-route. *)
      let fallback_error =
        List.fold_left
          (fun acc (_, _, e) -> Float.max acc e)
          0.0 (Calibration.entries cal)
      in
      let fallback_error = if fallback_error > 0.0 then fallback_error else 0.5 in
      Paths.all_pairs_weighted device.Device.coupling ~weight:(fun u v ->
          let e = Calibration.cnot_error_or ~default:fallback_error cal u v in
          let s = (1.0 -. e) *. (1.0 -. e) in
          1.0 /. Float.max s 1e-9))

let distance_matrix ~variation_aware device =
  if variation_aware then weighted_distances device else hop_distances device

let precompute device =
  ignore (hop_distances device : Qaoa_util.Float_matrix.t);
  match device.Device.calibration with
  | Some _ -> ignore (weighted_distances device : Qaoa_util.Float_matrix.t)
  | None -> ()
