(** Hardware profiling used by the mapping heuristics.

    - {b Connectivity strength} (paper Sec. IV.A, Fig. 3(b)): for a
      physical qubit, the number of unique qubits within hop distance 2
      (first plus second neighbors).  For larger architectures the paper
      suggests including higher-order neighbors; [order] generalizes this.
    - {b Distance matrices}: hop distances for QAIM/IC; reliability-
      weighted distances for VIC (edge weight = 1 / CPHASE success rate,
      Fig. 6(d)), both via Floyd-Warshall computed once per device. *)

val connectivity_strength : ?order:int -> Device.t -> int -> int
(** Unique qubits within hop distance [order] (default 2) of the given
    qubit, excluding itself. *)

val connectivity_profile : ?order:int -> Device.t -> int array
(** [connectivity_strength] of every qubit. *)

val hop_distances : Device.t -> Qaoa_util.Float_matrix.t
(** All-pairs hop distances of the coupling graph. *)

val weighted_distances : Device.t -> Qaoa_util.Float_matrix.t
(** All-pairs shortest paths with edge weights 1 / CPHASE-success
    (Fig. 6(d)).  Couplings the calibration does not cover are scored
    pessimistically (the worst recorded rate, or the 0.5 clamp ceiling
    for an empty snapshot), so partial calibrations degrade routing
    quality instead of raising.  @raise Invalid_argument if the device
    has no calibration at all. *)

val distance_matrix : variation_aware:bool -> Device.t -> Qaoa_util.Float_matrix.t
(** [hop_distances] or [weighted_distances] according to the flag - the
    single switch distinguishing IC from VIC. *)

val precompute : Device.t -> unit
(** Warm the per-device distance caches: {!hop_distances} always, and
    {!weighted_distances} when the device carries a calibration.  The
    caches are mutex-guarded and the memoized matrices are only ever
    read after construction, so a pool of worker domains can share one
    device value read-only; call this from the coordinating domain
    before spawning workers so none of them pays (or serializes on) the
    Floyd-Warshall run. *)
