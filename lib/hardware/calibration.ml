module Edge_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = {
  id : int;  (** unique per snapshot; lets consumers memoize derived data *)
  cnot_errors : float Edge_map.t;
  single_qubit_error : float;
  readout_error : float;
}

let key u v = (min u v, max u v)

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let create ?(single_qubit_error = 1e-3) ?(readout_error = 0.0) pairs =
  let cnot_errors =
    List.fold_left
      (fun acc (u, v, e) ->
        if u = v then
          invalid_arg
            (Printf.sprintf "Calibration.create: self-coupling (%d, %d)" u v);
        let k = key u v in
        if Edge_map.mem k acc then
          invalid_arg
            (Printf.sprintf "Calibration.create: duplicate coupling (%d, %d)"
               (fst k) (snd k));
        Edge_map.add k e acc)
      Edge_map.empty pairs
  in
  { id = next_id (); cnot_errors; single_qubit_error; readout_error }

let id t = t.id

let uniform ?single_qubit_error ?readout_error ~cnot_error edges =
  create ?single_qubit_error ?readout_error
    (List.map (fun (u, v) -> (u, v, cnot_error)) edges)

let random rng ?single_qubit_error ?readout_error ?(mu = 1.0e-2)
    ?(sigma = 0.5e-2) edges =
  let draw () =
    Qaoa_util.Rng.normal_clamped rng ~mu ~sigma ~lo:1e-4 ~hi:0.5
  in
  create ?single_qubit_error ?readout_error
    (List.map (fun (u, v) -> (u, v, draw ())) edges)

let cnot_error t u v =
  match Edge_map.find_opt (key u v) t.cnot_errors with
  | Some e -> e
  | None ->
    failwith
      (Printf.sprintf
         "Calibration.cnot_error: no rate recorded for coupling (%d, %d)" u v)

let cnot_error_opt t u v = Edge_map.find_opt (key u v) t.cnot_errors

let cnot_error_or ~default t u v =
  Option.value ~default (Edge_map.find_opt (key u v) t.cnot_errors)
let single_qubit_error t = t.single_qubit_error
let readout_error t = t.readout_error
let cnot_success t u v = 1.0 -. cnot_error t u v

let cphase_success t u v =
  let s = cnot_success t u v in
  s *. s

let edges t = List.map fst (Edge_map.bindings t.cnot_errors)

let entries t =
  List.map (fun ((u, v), e) -> (u, v, e)) (Edge_map.bindings t.cnot_errors)

(* Rebuilding through [create] gives the derived snapshot a fresh [id],
   so consumers memoizing on the id (e.g. Profile's weighted-distance
   cache) never serve stale data for a perturbed calibration. *)
let rebuild t pairs =
  create ~single_qubit_error:t.single_qubit_error
    ~readout_error:t.readout_error pairs

let filter_edges f t =
  rebuild t (List.filter (fun (u, v, e) -> f u v e) (entries t))

let map_errors f t =
  rebuild t (List.map (fun (u, v, e) -> (u, v, f u v e)) (entries t))

let worst_edge t =
  match Edge_map.bindings t.cnot_errors with
  | [] -> invalid_arg "Calibration.worst_edge: no recorded couplings"
  | first :: rest ->
    List.fold_left
      (fun ((_, best_e) as best) ((_, e) as cand) ->
        if e > best_e then cand else best)
      first rest
