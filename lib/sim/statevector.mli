(** Dense statevector simulator.

    Amplitudes are stored as separate real/imaginary float arrays of
    length [2^n].  Basis-state indexing is little-endian: qubit [q]
    corresponds to bit [q] of the index, so the all-zeros state is index
    0 and flipping qubit 0 of it gives index 1.

    Gate conventions are documented on {!Qaoa_circuit.Gate} and verified
    by the test suite (e.g. RZ = exp(-i theta Z / 2), CPHASE = ZZ
    interaction). *)

type t

val create : int -> t
(** [create n] is the [n]-qubit state |0...0>.
    @raise Invalid_argument if [n < 0] or [n > 26] (memory guard). *)

val num_qubits : t -> int
val copy : t -> t

val amplitude : t -> int -> float * float
(** Real and imaginary part of the amplitude of a basis index. *)

val probability : t -> int -> float
val probabilities : t -> float array

val apply_gate : t -> Qaoa_circuit.Gate.t -> unit
(** In-place application.  [Barrier] is a no-op; [Measure] is ignored
    (sampling happens on the final state). *)

val apply_pauli : t -> [ `X | `Y | `Z ] -> int -> unit
(** Fast Pauli application, used by the stochastic noise model. *)

val apply_circuit : t -> Qaoa_circuit.Circuit.t -> unit

val of_circuit : Qaoa_circuit.Circuit.t -> t
(** Run the circuit from |0...0>. *)

val norm : t -> float
(** Should be 1 up to float error; exposed for invariant tests. *)

val overlap_probability : t -> t -> float
(** |<a|b>|^2. *)

val equal_up_to_global_phase : ?eps:float -> t -> t -> bool

val distance_up_to_global_phase : t -> t -> float
(** Phase-aligned L2 distance min_phi ||a - e^(i phi) b||: 0 for states
    equal up to a global phase, up to 2 for orthogonal normalized states.
    The quantitative form of {!equal_up_to_global_phase}, used by the
    translation-validation layer to report how far a compiled circuit's
    state drifted.  @raise Invalid_argument on size mismatch. *)

val expectation_diag : t -> (int -> float) -> float
(** Expectation of a diagonal observable given by its value on each basis
    index - the exact QAOA cost expectation. *)
