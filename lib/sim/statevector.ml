module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit

type t = { n : int; re : float array; im : float array }

let create n =
  if n < 0 || n > 26 then invalid_arg "Statevector.create: 0 <= n <= 26";
  let size = 1 lsl n in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  re.(0) <- 1.0;
  { n; re; im }

let num_qubits t = t.n
let copy t = { n = t.n; re = Array.copy t.re; im = Array.copy t.im }
let amplitude t i = (t.re.(i), t.im.(i))
let probability t i = (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i))
let probabilities t = Array.init (Array.length t.re) (probability t)

(* Apply a general 1-qubit unitary [[a, b], [c, d]] (complex entries as
   (re, im) pairs) on qubit q. *)
let apply_1q t q (ar, ai) (br, bi) (cr, ci) (dr, di) =
  let size = Array.length t.re in
  let bit = 1 lsl q in
  let re = t.re and im = t.im in
  let i = ref 0 in
  while !i < size do
    if !i land bit = 0 then begin
      let j = !i lor bit in
      let xr = re.(!i) and xi = im.(!i) in
      let yr = re.(j) and yi = im.(j) in
      re.(!i) <- (ar *. xr) -. (ai *. xi) +. (br *. yr) -. (bi *. yi);
      im.(!i) <- (ar *. xi) +. (ai *. xr) +. (br *. yi) +. (bi *. yr);
      re.(j) <- (cr *. xr) -. (ci *. xi) +. (dr *. yr) -. (di *. yi);
      im.(j) <- (cr *. xi) +. (ci *. xr) +. (dr *. yi) +. (di *. yr)
    end;
    incr i
  done

let apply_cnot t c tq =
  let size = Array.length t.re in
  let cbit = 1 lsl c and tbit = 1 lsl tq in
  let re = t.re and im = t.im in
  for i = 0 to size - 1 do
    if i land cbit <> 0 && i land tbit = 0 then begin
      let j = i lor tbit in
      let xr = re.(i) and xi = im.(i) in
      re.(i) <- re.(j);
      im.(i) <- im.(j);
      re.(j) <- xr;
      im.(j) <- xi
    end
  done

let apply_swap t a b =
  let size = Array.length t.re in
  let abit = 1 lsl a and bbit = 1 lsl b in
  let re = t.re and im = t.im in
  for i = 0 to size - 1 do
    if i land abit <> 0 && i land bbit = 0 then begin
      let j = (i lxor abit) lor bbit in
      let xr = re.(i) and xi = im.(i) in
      re.(i) <- re.(j);
      im.(i) <- im.(j);
      re.(j) <- xr;
      im.(j) <- xi
    end
  done

(* ZZ interaction exp(-i theta/2 Z(x)Z): phase e^{-i th/2} when the two
   bits agree, e^{+i th/2} when they differ. *)
let apply_cphase t a b theta =
  let size = Array.length t.re in
  let abit = 1 lsl a and bbit = 1 lsl b in
  let cs = cos (theta /. 2.0) and sn = sin (theta /. 2.0) in
  let re = t.re and im = t.im in
  for i = 0 to size - 1 do
    let agree = (i land abit <> 0) = (i land bbit <> 0) in
    (* agree: multiply by (cs, -sn); differ: (cs, +sn) *)
    let s = if agree then -.sn else sn in
    let xr = re.(i) and xi = im.(i) in
    re.(i) <- (cs *. xr) -. (s *. xi);
    im.(i) <- (cs *. xi) +. (s *. xr)
  done

let apply_pauli t p q =
  match p with
  | `X -> apply_1q t q (0., 0.) (1., 0.) (1., 0.) (0., 0.)
  | `Y -> apply_1q t q (0., 0.) (0., -1.) (0., 1.) (0., 0.)
  | `Z -> apply_1q t q (1., 0.) (0., 0.) (0., 0.) (-1., 0.)

let apply_gate t g =
  match g with
  | Gate.H q ->
    let s = 1.0 /. sqrt 2.0 in
    apply_1q t q (s, 0.) (s, 0.) (s, 0.) (-.s, 0.)
  | Gate.X q -> apply_pauli t `X q
  | Gate.Y q -> apply_pauli t `Y q
  | Gate.Z q -> apply_pauli t `Z q
  | Gate.Rx (q, th) ->
    let c = cos (th /. 2.0) and s = sin (th /. 2.0) in
    apply_1q t q (c, 0.) (0., -.s) (0., -.s) (c, 0.)
  | Gate.Ry (q, th) ->
    let c = cos (th /. 2.0) and s = sin (th /. 2.0) in
    apply_1q t q (c, 0.) (-.s, 0.) (s, 0.) (c, 0.)
  | Gate.Rz (q, th) ->
    let c = cos (th /. 2.0) and s = sin (th /. 2.0) in
    apply_1q t q (c, -.s) (0., 0.) (0., 0.) (c, s)
  | Gate.Phase (q, th) ->
    apply_1q t q (1., 0.) (0., 0.) (0., 0.) (cos th, sin th)
  | Gate.Cnot (c, tq) -> apply_cnot t c tq
  | Gate.Cphase (a, b, th) -> apply_cphase t a b th
  | Gate.Swap (a, b) -> apply_swap t a b
  | Gate.Barrier | Gate.Measure _ -> ()

let apply_circuit t c =
  let gates = Circuit.gates c in
  Qaoa_obs.Trace.with_span "sim.statevector.apply_circuit"
    ~attrs:
      [
        ("num_qubits", Qaoa_obs.Trace.int t.n);
        ("gates", Qaoa_obs.Trace.int (List.length gates));
      ]
  @@ fun () ->
  Qaoa_obs.Metrics_registry.incr "statevector.gates_applied"
    ~by:(List.length gates);
  List.iter (apply_gate t) gates

let of_circuit c =
  let t = create (Circuit.num_qubits c) in
  apply_circuit t c;
  t

let norm t =
  let acc = ref 0.0 in
  for i = 0 to Array.length t.re - 1 do
    acc := !acc +. probability t i
  done;
  sqrt !acc

let overlap_probability a b =
  if a.n <> b.n then invalid_arg "Statevector.overlap: size mismatch";
  let rr = ref 0.0 and ii = ref 0.0 in
  for i = 0 to Array.length a.re - 1 do
    (* conj(a) * b *)
    rr := !rr +. (a.re.(i) *. b.re.(i)) +. (a.im.(i) *. b.im.(i));
    ii := !ii +. (a.re.(i) *. b.im.(i)) -. (a.im.(i) *. b.re.(i))
  done;
  (!rr *. !rr) +. (!ii *. !ii)

let equal_up_to_global_phase ?(eps = 1e-9) a b =
  a.n = b.n && Float.abs (overlap_probability a b -. 1.0) < eps

let distance_up_to_global_phase a b =
  if a.n <> b.n then
    invalid_arg "Statevector.distance_up_to_global_phase: size mismatch";
  (* min over phi of ||a - e^{i phi} b|| = sqrt(|a|^2 + |b|^2 - 2 |<a|b>|),
     attained when the phase aligns the overlap with the real axis. *)
  let na = norm a and nb = norm b in
  let ov = sqrt (overlap_probability a b) in
  sqrt (Float.max 0.0 ((na *. na) +. (nb *. nb) -. (2.0 *. ov)))

let expectation_diag t f =
  let acc = ref 0.0 in
  for i = 0 to Array.length t.re - 1 do
    let p = probability t i in
    if p > 0.0 then acc := !acc +. (p *. f i)
  done;
  !acc
