module Rng = Qaoa_util.Rng

let cumulative sv =
  let p = Statevector.probabilities sv in
  let acc = ref 0.0 in
  let cum =
    Array.map
      (fun x ->
        acc := !acc +. x;
        !acc)
      p
  in
  (* Guard against float drift so the last bucket always catches. *)
  if Array.length cum > 0 then cum.(Array.length cum - 1) <- 1.0;
  cum

let search cum x =
  (* smallest i with cum.(i) >= x *)
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

let sample rng sv =
  let cum = cumulative sv in
  search cum (Rng.float rng 1.0)

let sample_many rng sv ~shots =
  Qaoa_obs.Trace.with_span "sim.sampler.sample_many"
    ~attrs:[ ("shots", Qaoa_obs.Trace.int shots) ]
  @@ fun () ->
  Qaoa_obs.Metrics_registry.incr "sampler.shots" ~by:shots;
  let cum = cumulative sv in
  Array.init shots (fun _ -> search cum (Rng.float rng 1.0))

let counts rng sv ~shots =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun i ->
      Hashtbl.replace tbl i (1 + Option.value ~default:0 (Hashtbl.find_opt tbl i)))
    (sample_many rng sv ~shots);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let flip_bits rng ~p ~num_qubits idx =
  if p <= 0.0 then idx
  else begin
    let out = ref idx in
    for q = 0 to num_qubits - 1 do
      if Rng.bernoulli rng p then out := !out lxor (1 lsl q)
    done;
    !out
  end
