(** Undirected simple graphs over vertices [0..n-1].

    Used both for problem graphs (QAOA-MaxCut instances) and hardware
    coupling graphs.  The representation favours the access patterns of the
    compilation heuristics: O(1) adjacency tests, cheap neighbor lists, and
    stable (sorted) edge enumeration so that seeded runs are reproducible. *)

type t

val create : int -> t
(** [create n] is the empty graph on [n] vertices.
    @raise Invalid_argument if [n < 0]. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on [n] vertices with the given edges.
    Self-loops raise [Invalid_argument]; duplicate edges are collapsed. *)

val num_vertices : t -> int
val num_edges : t -> int

val add_edge : t -> int -> int -> t
(** Functional edge addition (the graph is persistent).  Adding an existing
    edge is a no-op.  @raise Invalid_argument on self-loops or out-of-range
    vertices. *)

val remove_edge : t -> int -> int -> t

val has_edge : t -> int -> int -> bool
val degree : t -> int -> int

val neighbors : t -> int -> int list
(** Sorted list of neighbors. *)

val edges : t -> (int * int) list
(** All edges [(u, v)] with [u < v], sorted lexicographically. *)

val vertices : t -> int list
(** [0; 1; ...; n-1]. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over edges in the [edges] order. *)

val max_degree : t -> int
(** 0 for the empty graph. *)

val common_neighbors : t -> int -> int -> int list
(** Vertices adjacent to both arguments (used by the analytic p=1 MaxCut
    expectation, which depends on triangle counts). *)

val is_connected : t -> bool
(** True iff the graph has one connected component ([true] for n <= 1). *)

val complement_degree_sum : t -> int
(** Sum of degrees = 2 * #edges; exposed for cheap sanity assertions. *)

val equal : t -> t -> bool

val canonical_hash : t -> int
(** Label-invariant structural hash via Weisfeiler-Leman color
    refinement: permuting vertex labels (or the order edges were added)
    never changes the hash.  Used to key the compiled-artifact cache of
    the serving layer.  Not a complete isomorphism invariant -
    non-isomorphic graphs may collide, so exact-identity consumers must
    additionally compare edge lists ({!edges}). *)

val pp : Format.formatter -> t -> unit
