module Int_set = Set.Make (Int)

type t = { n : int; adj : Int_set.t array }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make n Int_set.empty }

let check_vertex t v =
  if v < 0 || v >= t.n then invalid_arg "Graph: vertex out of range"

let num_vertices t = t.n

let num_edges t =
  Array.fold_left (fun acc s -> acc + Int_set.cardinal s) 0 t.adj / 2

let add_edge t u v =
  check_vertex t u;
  check_vertex t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  let adj = Array.copy t.adj in
  adj.(u) <- Int_set.add v adj.(u);
  adj.(v) <- Int_set.add u adj.(v);
  { t with adj }

let remove_edge t u v =
  check_vertex t u;
  check_vertex t v;
  let adj = Array.copy t.adj in
  adj.(u) <- Int_set.remove v adj.(u);
  adj.(v) <- Int_set.remove u adj.(v);
  { t with adj }

let of_edges n edges =
  (* Build imperatively to avoid quadratic copying, then freeze. *)
  let g = create n in
  let adj = Array.make n Int_set.empty in
  List.iter
    (fun (u, v) ->
      check_vertex g u;
      check_vertex g v;
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      adj.(u) <- Int_set.add v adj.(u);
      adj.(v) <- Int_set.add u adj.(v))
    edges;
  { n; adj }

let has_edge t u v =
  check_vertex t u;
  check_vertex t v;
  Int_set.mem v t.adj.(u)

let degree t v =
  check_vertex t v;
  Int_set.cardinal t.adj.(v)

let neighbors t v =
  check_vertex t v;
  Int_set.elements t.adj.(v)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    Int_set.iter (fun v -> if u < v then acc := (u, v) :: !acc) t.adj.(u)
  done;
  List.sort compare !acc

let vertices t = List.init t.n (fun i -> i)
let fold_edges f t init = List.fold_left (fun acc (u, v) -> f u v acc) init (edges t)
let max_degree t = Array.fold_left (fun acc s -> max acc (Int_set.cardinal s)) 0 t.adj

let common_neighbors t u v =
  check_vertex t u;
  check_vertex t v;
  Int_set.elements (Int_set.inter t.adj.(u) t.adj.(v))

let is_connected t =
  if t.n <= 1 then true
  else begin
    let seen = Array.make t.n false in
    let rec dfs v =
      seen.(v) <- true;
      Int_set.iter (fun u -> if not seen.(u) then dfs u) t.adj.(v)
    in
    dfs 0;
    Array.for_all (fun b -> b) seen
  end

let complement_degree_sum t =
  Array.fold_left (fun acc s -> acc + Int_set.cardinal s) 0 t.adj

let equal a b =
  a.n = b.n && Array.for_all2 Int_set.equal a.adj b.adj

(* SplitMix-style finalizer; multiplication wraps, which is what a bit
   mixer wants. *)
let mix a b =
  let h = ref (a lxor ((b + 0x9e3779b9) * 0x517cc1b727220a95)) in
  h := (!h lxor (!h lsr 30)) * 0x2545f4914f6cdd1d;
  h := (!h lxor (!h lsr 27)) * 0x1d8e4e27c47d124f;
  !h lxor (!h lsr 31)

let canonical_hash t =
  if t.n = 0 then mix 0 0
  else begin
    (* Weisfeiler-Leman color refinement.  Each round replaces a
       vertex's color with a hash of (own color, sorted multiset of
       neighbor colors); every step is equivariant under vertex
       relabeling, and the final fold is over the sorted color multiset,
       so the result is invariant under any permutation of vertex labels
       (and trivially of edge-list order).  Non-isomorphic graphs can
       collide (WL is not a complete invariant) - callers needing exact
       identity must compare edge lists as well. *)
    let colors = Array.init t.n (fun v -> mix 0x5747 (Int_set.cardinal t.adj.(v))) in
    let next = Array.make t.n 0 in
    (* Refinement stabilizes within n rounds; the cap only bounds work
       on large graphs and depends on invariants alone. *)
    let rounds = min t.n 16 in
    for _ = 1 to rounds do
      for v = 0 to t.n - 1 do
        let nc = List.sort compare (List.map (fun u -> colors.(u)) (Int_set.elements t.adj.(v))) in
        next.(v) <- List.fold_left mix (mix colors.(v) 0x517cc1b7) nc
      done;
      Array.blit next 0 colors 0 t.n
    done;
    Array.sort compare colors;
    Array.fold_left mix (mix t.n (num_edges t)) colors
  end

let pp ppf t =
  Format.fprintf ppf "graph(n=%d, m=%d:" t.n (num_edges t);
  List.iter (fun (u, v) -> Format.fprintf ppf " %d-%d" u v) (edges t);
  Format.fprintf ppf ")"
