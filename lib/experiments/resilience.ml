module Compile = Qaoa_core.Compile
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Fault = Qaoa_resilience.Fault
module Faultspace = Qaoa_resilience.Faultspace
module Repair = Qaoa_resilience.Repair
module Rng = Qaoa_util.Rng
module Stats = Qaoa_util.Stats
module Table = Qaoa_util.Table
module Metrics = Qaoa_circuit.Metrics
module Json = Qaoa_obs.Json
module Supervisor = Qaoa_journal.Supervisor

type row = {
  scenario : string;
  workload : string;
  instances : int;
  compiled : int;
  fallback_recovered : int;
  exhausted : int;
  mean_attempts : float;
  mean_depth : float;
  mean_swaps : float;
  mean_success : float;
  depth_ratio : float;
  swap_ratio : float;
  success_ratio : float;
  winners : (string * int) list;
}

(* Per-workload stats of one scenario, before ratios are attached. *)
type cell = {
  c_instances : int;
  c_compiled : int;
  c_recovered : int;
  c_exhausted : int;
  c_attempts : float;
  c_depth : float;
  c_swaps : float;
  c_success : float;
  c_winners : (string * int) list;
}

let tally winners name =
  let n = Option.value ~default:0 (List.assoc_opt name winners) in
  (name, n + 1) :: List.remove_assoc name winners

let compile_cell ~options ~retries device problems params =
  (* Success is scored against the degraded snapshot completed with the
     worst recorded rate, so partial calibration never inflates it. *)
  let scored = Repair.complete_calibration device in
  let compiled = ref 0 and recovered = ref 0 and exhausted = ref 0 in
  let attempts = ref [] and depths = ref [] and swaps = ref [] in
  let successes = ref [] and winners = ref [] in
  List.iteri
    (fun i problem ->
      let options = { options with Compile.seed = options.Compile.seed + i } in
      match Compile.compile_with_fallback ~options ~retries device problem params with
      | Ok fb ->
        let r = fb.Compile.fallback_result in
        incr compiled;
        if List.length fb.Compile.attempts > 1 then incr recovered;
        attempts := float_of_int (List.length fb.Compile.attempts) :: !attempts;
        depths := float_of_int r.Compile.metrics.Metrics.depth :: !depths;
        swaps := float_of_int r.Compile.swap_count :: !swaps;
        successes := Compile.success_probability scored r :: !successes;
        winners := tally !winners (Compile.strategy_name r.Compile.strategy)
      | Error trail ->
        incr exhausted;
        attempts := float_of_int (List.length trail) :: !attempts)
    problems;
  let mean xs = if xs = [] then Float.nan else Stats.mean xs in
  {
    c_instances = List.length problems;
    c_compiled = !compiled;
    c_recovered = !recovered;
    c_exhausted = !exhausted;
    c_attempts = mean !attempts;
    c_depth = mean !depths;
    c_swaps = mean !swaps;
    c_success = mean !successes;
    c_winners =
      List.sort (fun (_, a) (_, b) -> compare b a) !winners;
  }

let encode_cell c =
  Json.Assoc
    [
      ("instances", Json.Int c.c_instances);
      ("compiled", Json.Int c.c_compiled);
      ("recovered", Json.Int c.c_recovered);
      ("exhausted", Json.Int c.c_exhausted);
      ("attempts", Json.Float c.c_attempts);
      ("depth", Json.Float c.c_depth);
      ("swaps", Json.Float c.c_swaps);
      ("success", Json.Float c.c_success);
      ( "winners",
        Json.List
          (List.map
             (fun (name, n) ->
               Json.Assoc [ ("name", Json.String name); ("n", Json.Int n) ])
             c.c_winners) );
    ]

let decode_cell doc =
  let num field =
    Option.value ~default:Float.nan
      (Option.bind (Json.member field doc) Json.to_float)
  in
  let int field = int_of_float (num field) in
  {
    c_instances = int "instances";
    c_compiled = int "compiled";
    c_recovered = int "recovered";
    c_exhausted = int "exhausted";
    c_attempts = num "attempts";
    c_depth = num "depth";
    c_swaps = num "swaps";
    c_success = num "success";
    c_winners =
      (match Json.member "winners" doc with
      | Some (Json.List ws) ->
        List.filter_map
          (fun w ->
            match (Json.member "name" w, Json.member "n" w) with
            | Some (Json.String name), Some n ->
              Option.map
                (fun n -> (name, int_of_float n))
                (Json.to_float n)
            | _ -> None)
          ws
      | _ -> []);
  }

(* One journaled unit of work = one (device, workload, scenario) cell;
   the cell carries no timing, so resumed sweeps reproduce uninterrupted
   ones bit for bit.  Without a journal the thunk runs directly,
   preserving the historical contract (exceptions propagate). *)
let supervised_cell ?journal ~key f =
  match journal with
  | None -> Some (f ())
  | Some journal -> (
    match
      Supervisor.trial ~journal ~key ~encode:encode_cell ~decode:decode_cell
        (fun ~attempt:_ ~deadline:_ -> f ())
    with
    | Supervisor.Completed c -> Some c
    | Supervisor.Quarantined _ -> None)

let count ~paper = function
  | Figures.Full -> paper
  | Figures.Default -> max 2 (paper / 6)
  | Figures.Smoke -> 2

let workloads = [ Workload.Erdos_renyi 0.5; Workload.Regular 6 ]
let sizes = [ 13; 14; 15 ]

let run ?(scale = Figures.Default) ?journal ?(seed = 13000) ?(quiet = false)
    ?device ?(scenarios = Faultspace.default) ?deadline_s ?(verify = false)
    ?(retries = 1) () =
  let base_device =
    match device with
    | Some ({ Device.calibration = Some _; _ } as d) -> d
    | Some d -> Device.with_random_calibration (Rng.create seed) d
    | None ->
      Device.with_random_calibration (Rng.create seed)
        (Topologies.ibmq_20_tokyo ())
  in
  if not quiet then
    Printf.printf
      "\n=== Resilience: fault sweep, fallback compilation, %s  [scale=%s] ===\n"
      base_device.Device.name (Figures.scale_name scale);
  let options =
    { Compile.default_options with seed; verify; deadline_s }
  in
  let c = count ~paper:20 scale in
  let params = Workload.default_params in
  let rows =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun n ->
            let workload = Printf.sprintf "%s n=%d" (Workload.kind_name kind) n in
            let problems =
              Workload.problems
                (Rng.create (seed + n + Hashtbl.hash (Workload.kind_name kind)))
                kind ~n ~count:c
            in
            let cell_key suffix =
              Printf.sprintf "resilience/%s/%s/%s" base_device.Device.name
                workload suffix
            in
            match
              supervised_cell ?journal ~key:(cell_key "baseline") (fun () ->
                  compile_cell ~options ~retries base_device problems params)
            with
            | None ->
              (* quarantined baseline: no anchor for the ratios, so the
                 whole workload is dropped rather than reported skewed *)
              []
            | Some base ->
              List.filter_map
                (fun sc ->
                  let cell =
                    if sc.Faultspace.faults = [] then Some base
                    else
                      supervised_cell ?journal
                        ~key:(cell_key sc.Faultspace.label)
                        (fun () ->
                          compile_cell ~options ~retries
                            (Fault.apply_all
                               ~seed:(seed + Hashtbl.hash sc.Faultspace.label)
                               sc.Faultspace.faults base_device)
                            problems params)
                  in
                  Option.map
                    (fun cell ->
                      {
                        scenario = sc.Faultspace.label;
                        workload;
                        instances = cell.c_instances;
                        compiled = cell.c_compiled;
                        fallback_recovered = cell.c_recovered;
                        exhausted = cell.c_exhausted;
                        mean_attempts = cell.c_attempts;
                        mean_depth = cell.c_depth;
                        mean_swaps = cell.c_swaps;
                        mean_success = cell.c_success;
                        depth_ratio = Stats.ratio cell.c_depth base.c_depth;
                        swap_ratio = Stats.ratio cell.c_swaps base.c_swaps;
                        success_ratio =
                          Stats.ratio cell.c_success base.c_success;
                        winners = cell.c_winners;
                      })
                    cell)
                scenarios)
          sizes)
      workloads
  in
  if not quiet then begin
    let t =
      Table.create
        [
          "scenario"; "workload"; "ok"; "fb"; "exh"; "att"; "depth x";
          "swaps x"; "succ x"; "winner";
        ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [
            r.scenario;
            r.workload;
            Printf.sprintf "%d/%d" r.compiled r.instances;
            string_of_int r.fallback_recovered;
            string_of_int r.exhausted;
            Table.float_cell ~decimals:1 r.mean_attempts;
            Table.float_cell r.depth_ratio;
            Table.float_cell r.swap_ratio;
            Table.float_cell r.success_ratio;
            (match r.winners with (name, _) :: _ -> name | [] -> "-");
          ])
      rows;
    Table.print t
  end;
  rows
