(** Journal adapters for row/value-granular experiment work.

    {!Runner.run} journals at the finest granularity - one record per
    (experiment, strategy, instance, seed) compile.  Experiments whose
    inner loop is not a plain [Compile.compile] (ARG evaluation,
    mapper/router shootouts, iterative recompilation, ...) checkpoint at
    the granularity they naturally produce: a whole printed row, or a
    single scalar.  Both adapters are deterministic-replay caches: with
    a journal the thunk runs at most once per key across all resumed
    runs, and the returned floats are the journal's own view of the
    value ([decode (encode v)]), so resumed and uninterrupted sweeps
    aggregate bit-identical inputs.

    Quarantined keys (the thunk kept failing under supervision) come
    back as [None]; sweeps drop the row and keep going. *)

val row :
  ?journal:Qaoa_journal.Journal.t ->
  ?deadline_s:float ->
  ?tries:int ->
  key:string ->
  label:string ->
  (unit -> float list) ->
  (string * float list) option
(** One figure/ablation row ([label, values]) as a supervised trial
    under [key].  Without a journal the thunk just runs (single try, no
    persistence) - the pre-journal behaviour. *)

val value :
  ?journal:Qaoa_journal.Journal.t ->
  ?deadline_s:float ->
  ?tries:int ->
  key:string ->
  (unit -> float) ->
  float option
(** A single scalar trial (e.g. one instance's ARG). *)
