(** Ablation studies for the design choices behind the reproduction and
    the paper's Sec. VI directions.  Not part of the paper's figures;
    each quantifies one knob with everything else held fixed.  Row
    encoding matches {!Figures.row}. *)

type row = string * float list

val router_lookahead : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Sweep the router's lookahead weight (0, 0.25, 0.5, 1.0) for
    IC(+QAIM) on 20-node ER(0.5)/tokyo.  Columns: [mean depth;
    mean swaps]. *)

val qaim_strength_order : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Connectivity-strength neighbor order 1..3 (the paper suggests
    higher orders for larger machines) on the 6x6 grid, 28-node
    3-regular workload.  Columns: [QAIM/NAIVE depth; QAIM/NAIVE gates]. *)

val peephole : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Post-routing CNOT-cancellation gains per strategy on 20-node
    ER(0.5)/tokyo.  Columns: [gates without; gates with; reduction %]. *)

val reverse_traversal : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Reverse-traversal refinement iterations 0..4 over a NAIVE initial
    mapping (melbourne, 10-node 3-regular).  Columns: [mean swaps of a
    fresh route from the refined mapping]. *)

val mapper_shootout : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** All initial-mapping policies (NAIVE, GreedyV, GreedyE, QAIM, VQA)
    under the same random-order compilation on calibrated melbourne.
    Columns: [mean depth; mean gates; mean success probability]. *)

val iterative_recompilation : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Single-shot IC vs iterative recompilation (depth objective), the
    Sec. VII trade-off.  Columns: [mean depth; mean compile time (s)]. *)

val qaoa_levels : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** IC-compiled depth/gates scaling with p = 1..3 (12-node 3-regular,
    melbourne).  Columns: [mean depth; mean gates]. *)

val swap_network_crossover : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** IC(+QAIM) vs the odd-even SWAP network on the 6x6 grid across edge
    densities p in {0.2, 0.4, 0.6, 0.8} (24-node ER): the structured
    network should win on dense graphs and lose on sparse ones - the
    regime boundary for choosing between the paper's heuristics and
    dense-layer networks.  Columns: [IC depth; network depth; IC swaps;
    network swaps]. *)

val graph_families : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** QAIM and IC benefit across structurally different 20-node workload
    families (ER, 3-regular, scale-free BA, small-world WS) on tokyo -
    hub-dominated and lattice-like graphs stress the heaviest-first
    placement differently than the paper's two families.  Columns:
    [QAIM/NAIVE depth; IC/NAIVE depth; QAIM/NAIVE gates; IC/NAIVE
    gates]. *)

val router_shootout : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Layer-partitioned router vs the SABRE-style front/extended-set
    router on identical workloads (QAIM mapping, 20-node graphs, tokyo).
    Columns: [primary depth; sabre depth; primary swaps; sabre swaps]. *)

val heavy_hex_generalization : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** The paper's methodologies on a modern sparse device: NAIVE / QAIM /
    IP / IC depth and gate-count ratios on the 27-qubit heavy-hex
    lattice (20-node 3-regular workload).  Columns: [depth/NAIVE;
    gates/NAIVE]. *)

val crosstalk : ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Depth overhead of sequentializing parallel operations on the k worst
    couplings, k in {0, 1, 3, 5} (Sec. VI, following Murali et al.).
    Columns: [mean depth; mean conflicts]. *)

val all :
  ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  unit ->
  (string * row list) list
(** Run every ablation in order, printing each; returns
    [(ablation id, rows)].  [journal] makes every underlying study
    resumable: Runner-backed studies journal per-(strategy, instance)
    trials, the manual sweeps journal one trial per output row (keys
    under ["ablation/<id>/..."]). *)
