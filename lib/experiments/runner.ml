module Compile = Qaoa_core.Compile
module Metrics = Qaoa_circuit.Metrics
module Device = Qaoa_hardware.Device
module Stats = Qaoa_util.Stats
module Json = Qaoa_obs.Json
module Deadline = Qaoa_obs.Deadline
module Supervisor = Qaoa_journal.Supervisor

type aggregate = {
  strategy : Compile.strategy;
  mean_depth : float;
  mean_gates : float;
  mean_cx : float;
  mean_swaps : float;
  mean_time : float;
  mean_wall_time : float;
  mean_success : float option;
  instances : int;
  quarantined : int;
}

(* The journaled unit of work: everything the aggregation needs from one
   (strategy, instance) compile, in journal-payload form. *)
type trial = {
  t_depth : float;
  t_gates : float;
  t_cx : float;
  t_swaps : float;
  t_time : float;
  t_wall : float;
  t_success : float option;
}

let trial_of_result ~calibrated device r =
  {
    t_depth = float_of_int r.Compile.metrics.Metrics.depth;
    t_gates = float_of_int r.Compile.metrics.Metrics.gate_count;
    t_cx = float_of_int r.Compile.metrics.Metrics.two_qubit_count;
    t_swaps = float_of_int r.Compile.swap_count;
    t_time = r.Compile.compile_time;
    t_wall = r.Compile.compile_wall_s;
    t_success =
      (if calibrated then Some (Compile.success_probability device r)
       else None);
  }

let encode_trial t =
  Json.Assoc
    [
      ("depth", Json.Float t.t_depth);
      ("gates", Json.Float t.t_gates);
      ("cx", Json.Float t.t_cx);
      ("swaps", Json.Float t.t_swaps);
      ("time", Json.Float t.t_time);
      ("wall", Json.Float t.t_wall);
      ( "success",
        match t.t_success with Some s -> Json.Float s | None -> Json.Null );
    ]

let decode_trial doc =
  let num field =
    Option.value ~default:Float.nan
      (Option.bind (Json.member field doc) Json.to_float)
  in
  {
    t_depth = num "depth";
    t_gates = num "gates";
    t_cx = num "cx";
    t_swaps = num "swaps";
    t_time = num "time";
    t_wall = num "wall";
    t_success = Option.bind (Json.member "success" doc) Json.to_float;
  }

let run ?(base_seed = 1000) ?(options = Compile.default_options) ?journal
    ?experiment ?trial_deadline_s ?(tries = 1) ~device ~strategies ~params
    problems =
  (match (journal, experiment) with
  | Some _, None ->
    invalid_arg "Runner.run: a journal requires ~experiment for trial keys"
  | _ -> ());
  let calibrated = Option.is_some device.Device.calibration in
  List.map
    (fun strategy ->
      Qaoa_obs.Trace.with_span "experiments.runner.strategy"
        ~attrs:
          [
            ( "strategy",
              Qaoa_obs.Trace.str (Compile.strategy_name strategy) );
            ("instances", Qaoa_obs.Trace.int (List.length problems));
            ("device", Qaoa_obs.Trace.str device.Device.name);
          ]
      @@ fun () ->
      let compile_one ~attempt ~deadline i problem =
        let options =
          {
            options with
            Compile.seed =
              base_seed + i + (Supervisor.reseed_stride * attempt);
            deadline_s =
              (match Deadline.remaining_opt deadline with
              | None -> options.Compile.deadline_s
              | remaining -> remaining);
          }
        in
        trial_of_result ~calibrated device
          (Compile.compile ~options ~strategy device problem params)
      in
      let trials =
        match journal with
        | None ->
          (* unjournaled sweeps keep the historical contract: compile
             directly, let failures propagate to the caller *)
          List.mapi
            (fun i problem ->
              Some (compile_one ~attempt:0 ~deadline:None i problem))
            problems
        | Some journal ->
          List.mapi
            (fun i problem ->
              let key =
                Printf.sprintf "%s/%s/i%d/s%d"
                  (Option.get experiment)
                  (Compile.strategy_name strategy)
                  i (base_seed + i)
              in
              match
                Supervisor.trial ~journal ?deadline_s:trial_deadline_s ~tries
                  ~key ~encode:encode_trial ~decode:decode_trial
                  (fun ~attempt ~deadline ->
                    compile_one ~attempt ~deadline i problem)
              with
              | Supervisor.Completed t -> Some t
              | Supervisor.Quarantined _ -> None)
            problems
      in
      let completed = List.filter_map Fun.id trials in
      let fmean f =
        match completed with
        | [] -> Float.nan
        | _ -> Stats.mean (List.map f completed)
      in
      {
        strategy;
        mean_depth = fmean (fun t -> t.t_depth);
        mean_gates = fmean (fun t -> t.t_gates);
        mean_cx = fmean (fun t -> t.t_cx);
        mean_swaps = fmean (fun t -> t.t_swaps);
        mean_time = fmean (fun t -> t.t_time);
        mean_wall_time = fmean (fun t -> t.t_wall);
        mean_success =
          (if calibrated then
             Some (fmean (fun t -> Option.value ~default:Float.nan t.t_success))
           else None);
        instances = List.length completed;
        quarantined = List.length trials - List.length completed;
      })
    strategies

let find aggregates strategy =
  match List.find_opt (fun a -> a.strategy = strategy) aggregates with
  | Some a -> a
  | None ->
    failwith
      (Printf.sprintf
         "Runner.find: strategy %s has no aggregate (aggregates cover: %s)"
         (Compile.strategy_name strategy)
         (match aggregates with
         | [] -> "none"
         | _ ->
           String.concat ", "
             (List.map
                (fun a -> Compile.strategy_name a.strategy)
                aggregates)))

let ratio aggregates ~num ~den metric =
  Stats.ratio (metric (find aggregates num)) (metric (find aggregates den))
