module Compile = Qaoa_core.Compile
module Metrics = Qaoa_circuit.Metrics
module Device = Qaoa_hardware.Device
module Stats = Qaoa_util.Stats

type aggregate = {
  strategy : Compile.strategy;
  mean_depth : float;
  mean_gates : float;
  mean_cx : float;
  mean_swaps : float;
  mean_time : float;
  mean_wall_time : float;
  mean_success : float option;
  instances : int;
}

let run ?(base_seed = 1000) ?(options = Compile.default_options) ~device
    ~strategies ~params problems =
  let calibrated = Option.is_some device.Device.calibration in
  List.map
    (fun strategy ->
      Qaoa_obs.Trace.with_span "experiments.runner.strategy"
        ~attrs:
          [
            ( "strategy",
              Qaoa_obs.Trace.str (Compile.strategy_name strategy) );
            ("instances", Qaoa_obs.Trace.int (List.length problems));
            ("device", Qaoa_obs.Trace.str device.Device.name);
          ]
      @@ fun () ->
      let results =
        List.mapi
          (fun i problem ->
            let options = { options with Compile.seed = base_seed + i } in
            Compile.compile ~options ~strategy device problem params)
          problems
      in
      let fmean f = Stats.mean (List.map f results) in
      {
        strategy;
        mean_depth =
          fmean (fun r -> float_of_int r.Compile.metrics.Metrics.depth);
        mean_gates =
          fmean (fun r -> float_of_int r.Compile.metrics.Metrics.gate_count);
        mean_cx =
          fmean (fun r ->
              float_of_int r.Compile.metrics.Metrics.two_qubit_count);
        mean_swaps = fmean (fun r -> float_of_int r.Compile.swap_count);
        mean_time = fmean (fun r -> r.Compile.compile_time);
        mean_wall_time = fmean (fun r -> r.Compile.compile_wall_s);
        mean_success =
          (if calibrated then
             Some (fmean (Compile.success_probability device))
           else None);
        instances = List.length results;
      })
    strategies

let find aggregates strategy =
  List.find (fun a -> a.strategy = strategy) aggregates

let ratio aggregates ~num ~den metric =
  Stats.ratio (metric (find aggregates num)) (metric (find aggregates den))
