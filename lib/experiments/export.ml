let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let float_field v =
  if Float.is_nan v then "" else Printf.sprintf "%.6g" v

let csv_of_rows ~columns rows =
  let ncols = List.length columns in
  let buf = Buffer.create 1024 in
  let line fields =
    Buffer.add_string buf (String.concat "," (List.map escape_field fields));
    Buffer.add_char buf '\n'
  in
  line ("workload" :: columns);
  List.iter
    (fun (label, values) ->
      let n = List.length values in
      if n > ncols then invalid_arg "Export.csv_of_rows: too many values";
      let padded =
        List.map float_field values @ List.init (ncols - n) (fun _ -> "")
      in
      line (label :: padded))
    rows;
  Buffer.contents buf

let write_file ~path ~columns rows =
  Qaoa_journal.Atomic_write.write_string ~path (csv_of_rows ~columns rows)

let export_all ~dir triples =
  Qaoa_journal.Atomic_write.mkdir_p dir;
  List.map
    (fun (name, columns, rows) ->
      let path = Filename.concat dir (name ^ ".csv") in
      write_file ~path ~columns rows;
      path)
    triples
