module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Metrics = Qaoa_circuit.Metrics
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Compliance = Qaoa_backend.Compliance
module Check = Qaoa_verify.Check
module Fuzz = Qaoa_verify.Fuzz
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Compile = Qaoa_core.Compile
module Rng = Qaoa_util.Rng

type case = {
  seed : int;
  nodes : int;
  kind : Workload.graph_kind;
  topology : string;
  strategy : Compile.strategy;
  p : int;
}

let case_name c =
  Printf.sprintf "seed=%d n=%d %s %s %s p=%d" c.seed c.nodes
    (Workload.kind_name c.kind) c.topology
    (Compile.strategy_name c.strategy)
    c.p

let default_strategies =
  [
    Compile.Naive;
    Compile.Greedy_v;
    Compile.Greedy_e;
    Compile.Qaim;
    Compile.Ip;
    Compile.Ic None;
    Compile.Vic None;
  ]

let default_topologies = [ "tokyo"; "melbourne"; "grid6x6"; "linear16"; "ring16" ]

let default_kinds =
  [
    Workload.Erdos_renyi 0.3;
    Workload.Erdos_renyi 0.5;
    Workload.Regular 3;
    Workload.Barabasi_albert 2;
  ]

let device_of_topology name =
  match Topologies.by_name name with
  | None ->
    invalid_arg
      ("Differential: unknown topology " ^ name ^ "; known: "
      ^ String.concat ", " Topologies.known_names)
  | Some d -> (
    match d.Device.calibration with
    | Some _ -> d
    (* VIC scores with calibration data; attach a fixed-seed synthetic
       snapshot so uncalibrated topologies stay in the sweep and stay
       deterministic. *)
    | None -> Device.with_random_calibration (Rng.create 424242) d)

(* Clamp a drawn node count to the generator's validity domain. *)
let fix_nodes kind n =
  match kind with
  | Workload.Regular d ->
    let n = max n (d + 1) in
    if n * d mod 2 = 1 then n + 1 else n
  | Workload.Barabasi_albert m -> max n (m + 2)
  | Workload.Watts_strogatz (k, _) -> max n (k + 2)
  | Workload.Erdos_renyi _ | Workload.Gnm _ -> max n 2

let params_of_p p = { Ansatz.gammas = Array.make p 0.7; betas = Array.make p 0.4 }

let run_case ?max_semantic_qubits case =
  let device = device_of_topology case.topology in
  let rng = Rng.create case.seed in
  let problem =
    List.hd (Workload.problems rng case.kind ~n:case.nodes ~count:1)
  in
  let params = params_of_p case.p in
  let options = { Compile.default_options with seed = case.seed } in
  let r = Compile.compile ~options ~strategy:case.strategy device problem params in
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* 1. translation validation *)
  let logical = Ansatz.circuit ~measure:true problem params in
  let check_options =
    let d = Check.default_options () in
    match max_semantic_qubits with
    | None -> d
    | Some n -> { d with Check.max_semantic_qubits = n }
  in
  let validate options =
    Check.validate ~options ~device ~initial:r.Compile.initial_mapping
      ~final:r.Compile.final_mapping ~swap_count:r.Compile.swap_count ~logical
      r.Compile.circuit
  in
  let report = validate check_options in
  if not (Check.ok report) then fail "verify: %s" (Check.report_to_string report);
  (* 1b. oracle cross-check: whenever the statevector oracle delivered a
     verdict, the phase-polynomial canonicalizer must deliver the same
     one - this is the small-n differential test backing the large-n
     semantic verdicts. *)
  (match report.Check.semantic with
  | Check.Checked { method_ = Check.Statevector; _ } -> (
    let pp_report =
      validate { check_options with Check.oracle = Check.Phase_poly_only }
    in
    match pp_report.Check.semantic with
    | Check.Checked { method_ = Check.Phase_polynomial; _ } ->
      if Check.ok report <> Check.ok pp_report then
        fail
          "oracle disagreement: statevector says %s but phase polynomial \
           says %s"
          (if Check.ok report then "equivalent" else "inequivalent")
          (if Check.ok pp_report then "equivalent" else "inequivalent")
    | _ -> ())
  | _ -> ());
  (* 2. metric accounting: the result record vs the circuit itself *)
  let gates = Circuit.gates r.Compile.circuit in
  let count p = List.length (List.filter p gates) in
  let cphases = count (function Gate.Cphase _ -> true | _ -> false) in
  let swaps = count (function Gate.Swap _ -> true | _ -> false) in
  let cnots = count (function Gate.Cnot _ -> true | _ -> false) in
  let measures = count (function Gate.Measure _ -> true | _ -> false) in
  let expect name got want =
    if got <> want then fail "%s: %d, expected %d" name got want
  in
  expect "cphase gates" cphases
    (case.p * List.length (Problem.cphase_pairs problem));
  expect "swap gates" swaps r.Compile.swap_count;
  expect "measure gates" measures problem.Problem.num_vars;
  let m = r.Compile.metrics in
  let m2 = Metrics.of_circuit r.Compile.circuit in
  if m <> m2 then
    fail "metrics record (%s) disagrees with recomputation (%s)"
      (Format.asprintf "%a" Metrics.pp m)
      (Format.asprintf "%a" Metrics.pp m2);
  expect "two_qubit_count" m2.Metrics.two_qubit_count
    ((2 * cphases) + (3 * swaps) + cnots);
  if m2.Metrics.depth <= 0 then fail "depth %d not positive" m2.Metrics.depth;
  (* 3. compliance and verifier must agree on coupling violations *)
  let compliance_indices =
    List.map
      (fun v -> v.Compliance.gate_index)
      (Compliance.violations device r.Compile.circuit)
  in
  let verifier_indices =
    List.filter_map
      (function
        | Check.Uncoupled_pair { gate_index; _ } -> Some gate_index
        | _ -> None)
      report.Check.issues
  in
  if compliance_indices <> verifier_indices then
    fail "Compliance (%s) and verifier (%s) disagree on coupling violations"
      (String.concat "," (List.map string_of_int compliance_indices))
      (String.concat "," (List.map string_of_int verifier_indices));
  match !problems with
  | [] -> None
  | ps -> Some (String.concat "; " (List.rev ps))

(* Failure-report artifact: recompile the (shrunk) case and print the
   compiled circuit as OpenQASM, so a fuzz failure is actionable without
   re-running the sweep.  Guarded: a case that crashes during compile
   has no circuit to show. *)
let repro case =
  try
    let device = device_of_topology case.topology in
    let rng = Rng.create case.seed in
    let problem =
      List.hd (Workload.problems rng case.kind ~n:case.nodes ~count:1)
    in
    let params = params_of_p case.p in
    let options = { Compile.default_options with seed = case.seed } in
    let r =
      Compile.compile ~options ~strategy:case.strategy device problem params
    in
    Some
      (Printf.sprintf "// %s\n%s" (case_name case)
         (Qaoa_circuit.Qasm.to_string r.Compile.circuit))
  with _ -> None

let shrink case =
  let smaller =
    List.filter_map
      (fun n ->
        if n < 4 then None
        else
          let n = fix_nodes case.kind n in
          if n >= case.nodes then None else Some { case with nodes = n })
      [ case.nodes - 1; case.nodes - 2 ]
  in
  smaller @ (if case.p > 1 then [ { case with p = 1 } ] else [])

let cases ?(seed = 2026) ?(count = 100) ?(topologies = default_topologies)
    ?(strategies = default_strategies) ?(kinds = default_kinds)
    ?(min_nodes = 6) ?(max_nodes = 12) () =
  if topologies = [] || strategies = [] || kinds = [] then
    invalid_arg "Differential.cases: empty dimension";
  let rng = Rng.create seed in
  List.concat
    (List.init count (fun i ->
         let topology = List.nth topologies (i mod List.length topologies) in
         let device = device_of_topology topology in
         let kind = Rng.choice_list rng kinds in
         let raw =
           min
             (min_nodes + Rng.int rng (max 1 (max_nodes - min_nodes + 1)))
             (Device.num_qubits device - 1)
         in
         let nodes = fix_nodes kind raw in
         let case_seed = Rng.int rng 1_000_000 in
         List.map
           (fun strategy ->
             { seed = case_seed; nodes; kind; topology; strategy; p = 1 })
           strategies))

let fuzz ?seed ?count ?topologies ?strategies ?kinds ?min_nodes ?max_nodes
    ?max_semantic_qubits () =
  Fuzz.run ~shrink
    ~run_case:(run_case ?max_semantic_qubits)
    (cases ?seed ?count ?topologies ?strategies ?kinds ?min_nodes ?max_nodes ())
