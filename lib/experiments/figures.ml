module Compile = Qaoa_core.Compile
module Problem = Qaoa_core.Problem
module Analytic = Qaoa_core.Analytic
module Arg = Qaoa_core.Arg
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Rng = Qaoa_util.Rng
module Stats = Qaoa_util.Stats
module Table = Qaoa_util.Table

type scale = Smoke | Default | Full

let scale_of_string s =
  match String.lowercase_ascii s with
  | "smoke" -> Some Smoke
  | "default" -> Some Default
  | "full" -> Some Full
  | _ -> None

let scale_name = function Smoke -> "smoke" | Default -> "default" | Full -> "full"

let scale_from_env () =
  match Sys.getenv_opt "QAOA_BENCH_SCALE" with
  | Some s -> Option.value ~default:Default (scale_of_string s)
  | None -> Default

(* Instance counts per bar/point, scaled down from the paper's. *)
let count ~paper = function
  | Full -> paper
  | Default -> max 2 (paper / 6)
  | Smoke -> 2

type row = string * float list

let header ~quiet id title scale =
  if not quiet then
    Printf.printf "\n=== %s: %s  [scale=%s] ===\n" id title (scale_name scale)

let print_rows ~quiet columns rows =
  if not quiet then begin
    let t = Table.create ("workload" :: columns) in
    List.iter (fun (label, values) -> Table.add_float_row t label values) rows;
    Table.print t
  end

let note ~quiet lines =
  if not quiet then
    List.iter (fun l -> Printf.printf "  paper: %s\n" l) lines

let er_kinds = List.map (fun p -> Workload.Erdos_renyi p) [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ]
let regular_kinds = List.map (fun d -> Workload.Regular d) [ 3; 4; 5; 6; 7; 8 ]

let params = Workload.default_params

(* ------------------------------------------------------------------ *)
(* Fig. 7: initial-mapping comparison on 20-node graphs.              *)
(* ------------------------------------------------------------------ *)

let mapping_comparison_rows ?journal ~experiment ~scale ~seed ~n ~kinds
    ~paper_count () =
  let device = Topologies.ibmq_20_tokyo () in
  let c = count ~paper:paper_count scale in
  List.map
    (fun kind ->
      let rng = Rng.create (seed + Hashtbl.hash (Workload.kind_name kind)) in
      let problems = Workload.problems rng kind ~n ~count:c in
      let res =
        Runner.run ~base_seed:seed ?journal
          ~experiment:
            (Printf.sprintf "%s/%s" experiment (Workload.kind_name kind))
          ~device
          ~strategies:[ Compile.Naive; Compile.Greedy_v; Compile.Qaim ]
          ~params problems
      in
      let r num metric = Runner.ratio res ~num ~den:Compile.Naive metric in
      ( Workload.kind_name kind,
        [
          r Compile.Greedy_v (fun a -> a.Runner.mean_depth);
          r Compile.Qaim (fun a -> a.Runner.mean_depth);
          r Compile.Greedy_v (fun a -> a.Runner.mean_gates);
          r Compile.Qaim (fun a -> a.Runner.mean_gates);
        ] ))
    kinds

let fig7 ?(scale = Default) ?journal ?(seed = 7000) ?(quiet = false) () =
  header ~quiet "Fig.7" "QAIM vs GreedyV vs NAIVE, 20-node graphs, ibmq_20_tokyo" scale;
  let rows =
    mapping_comparison_rows ?journal ~experiment:"fig7" ~scale ~seed ~n:20
      ~kinds:(er_kinds @ regular_kinds) ~paper_count:50 ()
  in
  print_rows ~quiet
    [ "GreedyV/NAIVE depth"; "QAIM/NAIVE depth"; "GreedyV/NAIVE gates"; "QAIM/NAIVE gates" ]
    rows;
  note ~quiet
    [
      "sparse ER(0.1): QAIM depth -12% vs NAIVE, -10.3% vs GreedyV; gates -20.5% / -16.5%";
      "3-regular: QAIM depth -15.3% / -12.6%; gates -21.3% / -16.9%";
      "dense graphs: all three approaches converge (ratios -> 1.0)";
    ];
  rows

(* ------------------------------------------------------------------ *)
(* Fig. 8: problem-size sweep (3-regular, n = 12..20).                *)
(* ------------------------------------------------------------------ *)

let fig8 ?(scale = Default) ?journal ?(seed = 8000) ?(quiet = false) () =
  header ~quiet "Fig.8" "mapping quality vs problem size, 3-regular, ibmq_20_tokyo" scale;
  let device = Topologies.ibmq_20_tokyo () in
  let c = count ~paper:20 scale in
  let rows =
    List.map
      (fun n ->
        let rng = Rng.create (seed + n) in
        let problems = Workload.problems rng (Workload.Regular 3) ~n ~count:c in
        let res =
          Runner.run ~base_seed:seed ?journal
            ~experiment:(Printf.sprintf "fig8/n=%d" n) ~device
            ~strategies:[ Compile.Naive; Compile.Greedy_v; Compile.Qaim ]
            ~params problems
        in
        let r num metric = Runner.ratio res ~num ~den:Compile.Naive metric in
        ( Printf.sprintf "n=%d" n,
          [
            r Compile.Greedy_v (fun a -> a.Runner.mean_depth);
            r Compile.Qaim (fun a -> a.Runner.mean_depth);
            r Compile.Greedy_v (fun a -> a.Runner.mean_gates);
            r Compile.Qaim (fun a -> a.Runner.mean_gates);
          ] ))
      [ 12; 14; 16; 18; 20 ]
  in
  print_rows ~quiet
    [ "GreedyV/NAIVE depth"; "QAIM/NAIVE depth"; "GreedyV/NAIVE gates"; "QAIM/NAIVE gates" ]
    rows;
  note ~quiet
    [
      "n=12: QAIM depth -21.8% and gates -26.8% vs NAIVE; -12.2% / -17.2% vs GreedyV";
      "advantage shrinks as the problem fills the 20-qubit device";
    ];
  rows

(* ------------------------------------------------------------------ *)
(* Fig. 9: IP and IC vs QAIM-only.                                    *)
(* ------------------------------------------------------------------ *)

let fig9 ?(scale = Default) ?journal ?(seed = 9000) ?(quiet = false) () =
  header ~quiet "Fig.9" "IP(+QAIM) and IC(+QAIM) vs QAIM-only, 20-node graphs, tokyo" scale;
  let device = Topologies.ibmq_20_tokyo () in
  let c = count ~paper:50 scale in
  let rows =
    List.map
      (fun kind ->
        let rng = Rng.create (seed + Hashtbl.hash (Workload.kind_name kind)) in
        let problems = Workload.problems rng kind ~n:20 ~count:c in
        let res =
          Runner.run ~base_seed:seed ?journal
            ~experiment:
              (Printf.sprintf "fig9/%s" (Workload.kind_name kind))
            ~device
            ~strategies:[ Compile.Qaim; Compile.Ip; Compile.Ic None ]
            ~params problems
        in
        let r num metric = Runner.ratio res ~num ~den:Compile.Qaim metric in
        ( Workload.kind_name kind,
          [
            r Compile.Ip (fun a -> a.Runner.mean_depth);
            r (Compile.Ic None) (fun a -> a.Runner.mean_depth);
            r Compile.Ip (fun a -> a.Runner.mean_gates);
            r (Compile.Ic None) (fun a -> a.Runner.mean_gates);
            r Compile.Ip (fun a -> a.Runner.mean_time);
            r (Compile.Ic None) (fun a -> a.Runner.mean_time);
          ] ))
      (er_kinds @ regular_kinds)
  in
  print_rows ~quiet
    [
      "IP/QAIM depth"; "IC/QAIM depth"; "IP/QAIM gates"; "IC/QAIM gates";
      "IP/QAIM time"; "IC/QAIM time";
    ]
    rows;
  note ~quiet
    [
      "IC depth -39.3% vs QAIM at 3-regular, down to -68% at 8-regular";
      "IC depth ~13.2% below IP on average; IC gates -16.7% vs both QAIM and IP";
      "IP gates ~ QAIM gates; IP compiles ~37% faster than IC";
    ];
  rows

(* ------------------------------------------------------------------ *)
(* Fig. 10: VIC vs IC success probability on calibrated melbourne.    *)
(* ------------------------------------------------------------------ *)

let fig10 ?(scale = Default) ?journal ?(seed = 10000) ?(quiet = false) () =
  header ~quiet "Fig.10" "VIC vs IC success probability, ibmq_16_melbourne (Fig.10a calibration)" scale;
  let device = Topologies.ibmq_16_melbourne () in
  let c = count ~paper:20 scale in
  let rows =
    List.concat_map
      (fun kind ->
        List.map
          (fun n ->
            let rng = Rng.create (seed + n + Hashtbl.hash (Workload.kind_name kind)) in
            let problems = Workload.problems rng kind ~n ~count:c in
            let res =
              Runner.run ~base_seed:seed ?journal
                ~experiment:
                  (Printf.sprintf "fig10/%s/n=%d" (Workload.kind_name kind) n)
                ~device
                ~strategies:[ Compile.Ic None; Compile.Vic None ]
                ~params problems
            in
            let succ s =
              match (Runner.find res s).Runner.mean_success with
              | Some x -> x
              | None -> Float.nan
            in
            ( Printf.sprintf "%s n=%d" (Workload.kind_name kind) n,
              [ Stats.ratio (succ (Compile.Vic None)) (succ (Compile.Ic None)) ] ))
          [ 13; 14; 15 ])
      [ Workload.Erdos_renyi 0.5; Workload.Regular 6 ]
  in
  print_rows ~quiet [ "VIC/IC success ratio" ] rows;
  note ~quiet
    [
      "ER(0.5): VIC ~80% higher success probability on average (157% at n=15)";
      "6-regular: ~45.3% higher on average (72.2% at n=14); smaller because";
      "heavily packed layers leave fewer qubit-pair choices";
    ];
  rows

(* ------------------------------------------------------------------ *)
(* Fig. 11(a): normalized summary over 20-node instances.             *)
(* ------------------------------------------------------------------ *)

let fig11a ?(scale = Default) ?journal ?(seed = 11000) ?(quiet = false) () =
  header ~quiet "Fig.11a" "summary normalized by NAIVE (20-node ER + regular, tokyo)" scale;
  let rng = Rng.create seed in
  let device =
    (* VIC needs calibration: random N(1e-2, 0.5e-2) as in the paper *)
    Device.with_random_calibration rng (Topologies.ibmq_20_tokyo ())
  in
  let c = count ~paper:50 scale in
  let problems =
    List.concat_map
      (fun kind ->
        Workload.problems
          (Rng.create (seed + Hashtbl.hash (Workload.kind_name kind)))
          kind ~n:20 ~count:c)
      (er_kinds @ regular_kinds)
  in
  let strategies =
    [ Compile.Naive; Compile.Qaim; Compile.Ip; Compile.Ic None; Compile.Vic None ]
  in
  let res =
    Runner.run ~base_seed:seed ?journal ~experiment:"fig11a" ~device
      ~strategies ~params problems
  in
  let naive = Runner.find res Compile.Naive in
  let rows =
    List.map
      (fun a ->
        ( Compile.strategy_name a.Runner.strategy,
          [
            Stats.ratio a.Runner.mean_depth naive.Runner.mean_depth;
            Stats.ratio a.Runner.mean_gates naive.Runner.mean_gates;
            Stats.ratio a.Runner.mean_time naive.Runner.mean_time;
          ] ))
      res
  in
  print_rows ~quiet [ "depth/NAIVE"; "gates/NAIVE"; "time/NAIVE" ] rows;
  note ~quiet
    [
      "paper table: QAIM 0.95/0.94/~1; IP 0.54/0.92/0.55; IC 0.47/0.77/0.85;";
      "VIC 0.48/0.77/0.86  (depth/gates/time normalized by NAIVE)";
    ];
  rows

(* ------------------------------------------------------------------ *)
(* Fig. 11(b): ARG on (simulated) hardware.                           *)
(* ------------------------------------------------------------------ *)

let fig11b ?(scale = Default) ?journal ?(seed = 11500) ?(quiet = false) () =
  header ~quiet "Fig.11b"
    "ARG of QAIM/IP/IC/VIC, 12-node instances, melbourne + trajectory noise" scale;
  let device = Topologies.ibmq_16_melbourne () in
  let c = count ~paper:20 scale in
  let shots = match scale with Full -> 8192 | Default -> 2048 | Smoke -> 512 in
  let strategies =
    [ Compile.Qaim; Compile.Ip; Compile.Ic None; Compile.Vic None ]
  in
  let problems =
    List.concat_map
      (fun kind ->
        Workload.problems
          (Rng.create (seed + Hashtbl.hash (Workload.kind_name kind)))
          kind ~n:12 ~count:c)
      [ Workload.Erdos_renyi 0.5; Workload.Regular 6 ]
  in
  (* p=1 parameters found analytically per instance (Sec. V.A protocol);
     lazy so a fully journaled resume skips the optimization entirely *)
  let with_params =
    lazy
      (List.map
         (fun problem ->
           let g = Problem.interaction_graph problem in
           let prms, _ = Analytic.optimize ~grid:24 g in
           (problem, prms))
         problems)
  in
  let rows =
    List.map
      (fun strategy ->
        let args =
          List.filter_map Fun.id
            (List.mapi
               (fun i _problem ->
                 Sweep.value ?journal
                   ~key:
                     (Printf.sprintf "fig11b/%s/i%d/s%d"
                        (Compile.strategy_name strategy)
                        i (seed + i))
                   (fun () ->
                     let problem, prms =
                       List.nth (Lazy.force with_params) i
                     in
                     let options =
                       { Compile.default_options with seed = seed + i }
                     in
                     let r =
                       Compile.compile ~options ~strategy device problem prms
                     in
                     let rng = Rng.create (seed + i) in
                     (Arg.evaluate ~shots rng device problem prms r)
                       .Arg.arg_percent))
               problems)
        in
        (Compile.strategy_name strategy, [ Stats.mean args ]))
      strategies
  in
  print_rows ~quiet [ "mean ARG (%)" ] rows;
  note ~quiet
    [
      "paper (hardware runs): QAIM 20.89, IP 18.29, IC 16.73, VIC 15.50";
      "(IC 8.5% below IP, VIC 7.4% below IC, VIC 25.8% below QAIM)";
    ];
  rows

(* ------------------------------------------------------------------ *)
(* Fig. 12: packing-limit sweep on the 36-qubit grid.                 *)
(* ------------------------------------------------------------------ *)

let fig12 ?(scale = Default) ?journal ?(seed = 12000) ?(quiet = false) () =
  header ~quiet "Fig.12" "IC(+QAIM) vs packing limit, 36-node graphs, 6x6 grid" scale;
  let device = Topologies.grid_6x6 () in
  let c = count ~paper:20 scale in
  let limits =
    match scale with
    | Full -> [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
    | Default -> [ 1; 3; 5; 7; 9; 11; 13; 15 ]
    | Smoke -> [ 3; 11 ]
  in
  let problems =
    List.concat_map
      (fun kind ->
        Workload.problems
          (Rng.create (seed + Hashtbl.hash (Workload.kind_name kind)))
          kind ~n:36 ~count:c)
      [ Workload.Erdos_renyi 0.5; Workload.Regular 15 ]
  in
  let rows =
    List.map
      (fun limit ->
        let res =
          Runner.run ~base_seed:seed ?journal
            ~experiment:(Printf.sprintf "fig12/limit=%d" limit) ~device
            ~strategies:[ Compile.Ic (Some limit) ]
            ~params problems
        in
        let a = List.hd res in
        ( Printf.sprintf "limit=%d" limit,
          [ a.Runner.mean_depth; a.Runner.mean_gates; a.Runner.mean_time ] ))
      limits
  in
  print_rows ~quiet [ "mean depth"; "mean gates"; "mean time (s)" ] rows;
  note ~quiet
    [
      "depth falls with the limit, bottoms out near limit ~11, then degrades";
      "gates grow slowly up to limit ~11, then sharply; time falls monotonically";
      "paper's scaling constants: depth/283, gates/1428, time/9.48 s";
    ];
  rows

(* ------------------------------------------------------------------ *)
(* Sec. VI: ring-8 comparison against the temporal planner [46].      *)
(* ------------------------------------------------------------------ *)

let fig_ring8 ?(scale = Default) ?journal ?(seed = 4600) ?(quiet = false) () =
  header ~quiet "Sec.VI" "IC(+QAIM) on 8-node/8-edge ER instances, 8-qubit ring" scale;
  let device = Topologies.ring 8 in
  let c = count ~paper:50 scale in
  let problems =
    Workload.problems (Rng.create seed) (Workload.Gnm 8) ~n:8 ~count:c
  in
  let res =
    Runner.run ~base_seed:seed ?journal ~experiment:"ring8" ~device
      ~strategies:[ Compile.Ic None ] ~params problems
  in
  let a = List.hd res in
  let rows =
    [ ("IC(+QAIM)", [ a.Runner.mean_depth; a.Runner.mean_gates; a.Runner.mean_time ]) ]
  in
  print_rows ~quiet [ "mean depth"; "mean gates"; "mean time (s)" ] rows;
  note ~quiet
    [
      "reference [46]: temporal planner needed ~70 s for 8-qubit circuits;";
      "the paper reports IC -8.51% depth and -12.99% gates vs [46] on this workload";
    ];
  rows

let all ?(scale = Default) ?journal ?(seed = 1) () =
  ignore seed;
  (* sequential lets: OCaml list-literal evaluation order is unspecified,
     and the figures print as they run *)
  let f7 = fig7 ~scale ?journal () in
  let f8 = fig8 ~scale ?journal () in
  let f9 = fig9 ~scale ?journal () in
  let f10 = fig10 ~scale ?journal () in
  let f11a = fig11a ~scale ?journal () in
  let f11b = fig11b ~scale ?journal () in
  let f12 = fig12 ~scale ?journal () in
  let ring8 = fig_ring8 ~scale ?journal () in
  [
    ("fig7", f7);
    ("fig8", f8);
    ("fig9", f9);
    ("fig10", f10);
    ("fig11a", f11a);
    ("fig11b", f11b);
    ("fig12", f12);
    ("ring8", ring8);
  ]
