(** Fault-sweep recompilation experiment: how gracefully does the
    compiler degrade when the device breaks underneath it?

    The Fig. 10 workload shapes (ER(0.5) and 6-regular MaxCut instances,
    n = 13..15) are recompiled with {!Qaoa_core.Compile.compile_with_fallback}
    on a calibrated 20-qubit tokyo register perturbed by each scenario of
    a {!Qaoa_resilience.Faultspace} sweep (tokyo rather than the paper's
    melbourne: with two qubits retired, melbourne's 15-qubit register can
    no longer host the n = 15 instances at all, which would conflate
    "degraded" with "impossible").  Every row reports compile survival,
    fallback behaviour, and depth/SWAP/success degradation relative to
    the healthy device. *)

type row = {
  scenario : string;  (** {!Qaoa_resilience.Faultspace.scenario} label *)
  workload : string;  (** e.g. ["ER(p=0.5) n=14"] *)
  instances : int;
  compiled : int;  (** instances the fallback chain compiled *)
  fallback_recovered : int;
      (** compiled instances whose winner was not the first attempt *)
  exhausted : int;  (** instances where the whole chain failed *)
  mean_attempts : float;  (** compile attempts per instance *)
  mean_depth : float;  (** over compiled instances; [nan] if none *)
  mean_swaps : float;
  mean_success : float;
      (** success probability, scored against the degraded calibration
          completed pessimistically
          ({!Qaoa_resilience.Repair.complete_calibration}) *)
  depth_ratio : float;  (** vs the healthy baseline; [nan] if unavailable *)
  swap_ratio : float;
  success_ratio : float;
  winners : (string * int) list;
      (** winning strategy name -> instances won, descending *)
}

val run :
  ?scale:Figures.scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int ->
  ?quiet:bool ->
  ?device:Qaoa_hardware.Device.t ->
  ?scenarios:Qaoa_resilience.Faultspace.scenario list ->
  ?deadline_s:float ->
  ?verify:bool ->
  ?retries:int ->
  unit ->
  row list
(** Run the sweep (scenarios default to
    {!Qaoa_resilience.Faultspace.default}) and print one table row per
    scenario x workload unless [quiet].  [device] defaults to tokyo; an
    uncalibrated device gets a fixed-seed synthetic calibration attached
    (VIC and the success metric need one).  Registers smaller than the
    largest workload would conflate "degraded" with "impossible" - use
    a >= 16-qubit topology.  [deadline_s], [verify] and [retries] are
    passed through to the fallback chain; the healthy baseline is always
    compiled (once per workload) to anchor the ratios, whether or not
    the scenario list contains it.

    [journal] makes the sweep resumable at cell granularity: each
    (device, workload, scenario) cell is one supervised trial (key
    ["resilience/<device>/<workload>/<scenario>"], baseline cells under
    [".../baseline"]), so an interrupted sweep resumed with the same
    seed reproduces the uninterrupted row set bit for bit.  A
    quarantined scenario cell drops that row; a quarantined baseline
    drops its whole workload (no anchor for the ratios). *)
