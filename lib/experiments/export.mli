(** CSV export of experiment rows, for external plotting.

    RFC-4180-style quoting: fields containing commas, quotes or newlines
    are double-quoted with embedded quotes doubled. *)

val csv_of_rows : columns:string list -> Figures.row list -> string
(** Header line ["workload", columns...] then one line per row.  Row
    value lists shorter than [columns] are padded with empty fields;
    longer ones raise [Invalid_argument]. *)

val escape_field : string -> string
(** The quoting rule applied to every field. *)

val write_file : path:string -> columns:string list -> Figures.row list -> unit
(** [csv_of_rows] to a file, atomically
    ({!Qaoa_journal.Atomic_write.write}): readers and crashes see either
    the previous complete file or the new one, never a torn CSV. *)

val export_all :
  dir:string -> (string * string list * Figures.row list) list -> string list
(** [(name, columns, rows)] triples to [dir/name.csv]; [dir] is created
    recursively if missing (and left untouched if it already exists).
    Each file is written atomically.  Returns the written paths. *)
