(** Reproduction of every table and figure of the paper's evaluation
    (Sec. V) plus the Sec. VI ring-8 comparison.  Each function generates
    the figure's workload, runs the involved strategies through the
    shared backend, prints the measured series next to the paper's
    reference numbers, and returns the measured rows for programmatic use
    (tests, EXPERIMENTS.md generation).

    Row encoding: [(label, values)] with the column meaning documented
    per function.  Ratios below 1.0 mean "proposed beats baseline", as in
    the paper's bar charts ("a lower value is better").

    Every function takes an optional {!Qaoa_journal.Journal.t}: with one,
    the underlying compiles become supervised, journaled trials (see
    {!Runner.run}), so a crashed or interrupted regeneration resumes
    from its last completed trial instead of starting over.  Keys are
    prefixed with the figure id (["fig7/ER(p=0.1)/QAIM/i0/s7000"]). *)

type scale =
  | Smoke  (** minimal instance counts - test-suite duty *)
  | Default  (** reduced counts, minutes of wall clock - bench default *)
  | Full  (** paper-scale instance counts *)

val scale_of_string : string -> scale option
val scale_name : scale -> string

val scale_from_env : unit -> scale
(** Reads [QAOA_BENCH_SCALE] ("smoke" | "default" | "full"); defaults to
    [Default]. *)

type row = string * float list

val fig7 :
  ?scale:scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Fig. 7: QAIM vs GreedyV vs NAIVE on 20-node graphs (ibmq_20_tokyo).
    One row per graph family (ER p = 0.1..0.6 and d-regular d = 3..8);
    columns: [GreedyV/NAIVE depth; QAIM/NAIVE depth; GreedyV/NAIVE gates;
    QAIM/NAIVE gates]. *)

val fig8 :
  ?scale:scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Fig. 8: problem-size sweep, 3-regular, n = 12..20, tokyo.  Columns as
    {!fig7}. *)

val fig9 :
  ?scale:scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Fig. 9: IP and IC vs QAIM-only on 20-node graphs, tokyo.  Columns:
    [IP/QAIM depth; IC/QAIM depth; IP/QAIM gates; IC/QAIM gates;
    IP/QAIM time; IC/QAIM time]. *)

val fig10 :
  ?scale:scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Fig. 10: VIC vs IC success probability on calibrated melbourne,
    n = 13..15.  Columns: [VIC/IC success ratio] - above 1.0 means VIC
    more reliable. *)

val fig11a :
  ?scale:scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Fig. 11(a): summary over 20-node ER + regular instances on tokyo
    (random calibration for VIC).  One row per strategy; columns:
    [depth; gates; time], each normalized by NAIVE. *)

val fig11b :
  ?scale:scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Fig. 11(b): ARG of QAIM / IP / IC / VIC on melbourne, 12-node ER(0.5)
    and 6-regular instances, p=1 parameters found analytically, noisy
    execution on the trajectory simulator.  One row per strategy;
    columns: [mean ARG %]. *)

val fig12 :
  ?scale:scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Fig. 12: packing-limit sweep of IC(+QAIM) on the 36-qubit grid,
    36-node ER(0.5) and 15-regular workloads.  One row per packing
    limit; columns: [mean depth; mean gates; mean time(s)]. *)

val fig_ring8 :
  ?scale:scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int -> ?quiet:bool -> unit -> row list
(** Sec. VI comparison point: IC(+QAIM) on 8-node, 8-edge ER instances
    over an 8-qubit ring.  One row; columns: [mean depth; mean gates;
    mean time(s)].  The paper quotes the temporal planner [46] at 70 s
    compile time with IC 8.51% / 12.99% better depth/gates. *)

val all :
  ?scale:scale ->
  ?journal:Qaoa_journal.Journal.t ->
  ?seed:int ->
  unit ->
  (string * row list) list
(** Run every figure in order, printing each; returns [(figure id, rows)]
    for EXPERIMENTS.md-style post-processing. *)
