(** Differential fuzzing of the whole compilation pipeline.

    Instantiates the generic {!Qaoa_verify.Fuzz} engine with the concrete
    sweep the paper's claims rest on: random problem graphs x compilation
    policies x device topologies, each case compiled end-to-end and then
    cross-checked three ways -

    - {!Qaoa_verify.Check.validate}: structural + semantic translation
      validation of the routed circuit against its logical source;
    - metric accounting: the [Compile.result.metrics] record must agree
      with metrics recomputed from the circuit, the recorded swap count
      with the SWAP gates present, and the CPHASE count with the
      problem's quadratic terms;
    - compliance: {!Qaoa_backend.Compliance} and the verifier must agree
      on coupling violations (both empty on a healthy compile).

    Everything is seeded, so a failing case is a reproducer by value; the
    engine additionally shrinks it toward the smallest failing graph. *)

type case = {
  seed : int;  (** drives graph generation and every compile choice *)
  nodes : int;
  kind : Workload.graph_kind;
  topology : string;  (** {!Qaoa_hardware.Topologies.by_name} key *)
  strategy : Qaoa_core.Compile.strategy;
  p : int;  (** ansatz levels *)
}

val case_name : case -> string
(** e.g. "seed=17 n=9 ER(p=0.3) tokyo IC p=1". *)

val default_strategies : Qaoa_core.Compile.strategy list
(** The paper's seven policies: NAIVE, GreedyV, GreedyE, QAIM, IP, IC,
    VIC. *)

val default_topologies : string list
(** ["tokyo"; "melbourne"; "grid6x6"; "linear16"; "ring16"]. *)

val device_of_topology : string -> Qaoa_hardware.Device.t
(** Resolve a topology name, attaching a fixed-seed synthetic calibration
    when the bundled device has none (VIC needs one).
    @raise Invalid_argument on unknown names. *)

val run_case : ?max_semantic_qubits:int -> case -> string option
(** Compile and cross-check one case; [None] on agreement, [Some detail]
    otherwise.  Whenever the statevector oracle delivers a semantic
    verdict, the case is re-validated with the phase-polynomial oracle
    and any disagreement between the two verdicts is itself a failure -
    the small-register differential evidence backing the canonicalizer's
    large-register verdicts. *)

val repro : case -> string option
(** Recompile the case and render its compiled circuit as OpenQASM 2.0
    (with a [//] header naming the case) - the [case_repro] argument the
    CLI passes to {!Qaoa_verify.Fuzz.pp_stats} so failure reports carry a
    standalone reproducer.  [None] when the compile itself raises. *)

val shrink : case -> case list
(** Smaller-first candidates: fewer graph nodes (parity-corrected for
    regular graphs), then a single ansatz level. *)

val cases :
  ?seed:int ->
  ?count:int ->
  ?topologies:string list ->
  ?strategies:Qaoa_core.Compile.strategy list ->
  ?kinds:Workload.graph_kind list ->
  ?min_nodes:int ->
  ?max_nodes:int ->
  unit ->
  case list
(** [count] (default 100) seeded graph/topology instances, each expanded
    across all [strategies] - so the default sweep yields [7 * count]
    validations.  Node counts are drawn uniformly from
    [[min_nodes, max_nodes]] (default [[6, 12]]). *)

val fuzz :
  ?seed:int ->
  ?count:int ->
  ?topologies:string list ->
  ?strategies:Qaoa_core.Compile.strategy list ->
  ?kinds:Workload.graph_kind list ->
  ?min_nodes:int ->
  ?max_nodes:int ->
  ?max_semantic_qubits:int ->
  unit ->
  case Qaoa_verify.Fuzz.stats
(** Generate {!cases} and run them through {!Qaoa_verify.Fuzz.run} with
    {!shrink}. *)
