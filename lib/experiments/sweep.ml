module Json = Qaoa_obs.Json
module Supervisor = Qaoa_journal.Supervisor

let encode_floats vs = Json.List (List.map (fun v -> Json.Float v) vs)

let decode_floats = function
  | Json.List l ->
    List.map
      (fun v -> Option.value ~default:Float.nan (Json.to_float v))
      l
  | _ -> []

let encode_float v = Json.Float v

let decode_float v = Option.value ~default:Float.nan (Json.to_float v)

let row ?journal ?deadline_s ?tries ~key ~label f =
  match
    Supervisor.trial ?journal ?deadline_s ?tries ~key ~encode:encode_floats
      ~decode:decode_floats (fun ~attempt:_ ~deadline:_ -> f ())
  with
  | Supervisor.Completed vs -> Some (label, vs)
  | Supervisor.Quarantined _ -> None

let value ?journal ?deadline_s ?tries ~key f =
  match
    Supervisor.trial ?journal ?deadline_s ?tries ~key ~encode:encode_float
      ~decode:decode_float (fun ~attempt:_ ~deadline:_ -> f ())
  with
  | Supervisor.Completed v -> Some v
  | Supervisor.Quarantined _ -> None
