module Compile = Qaoa_core.Compile
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Ic = Qaoa_core.Ic
module Qaim = Qaoa_core.Qaim
module Vqa = Qaoa_core.Vqa
module Naive = Qaoa_core.Naive
module Iterative = Qaoa_core.Iterative
module Reverse_traversal = Qaoa_core.Reverse_traversal
module Crosstalk_pass = Qaoa_core.Crosstalk
module Router = Qaoa_backend.Router
module Mapping = Qaoa_backend.Mapping
module Metrics = Qaoa_circuit.Metrics
module Layering = Qaoa_circuit.Layering
module Device = Qaoa_hardware.Device
module Calibration = Qaoa_hardware.Calibration
module Topologies = Qaoa_hardware.Topologies
module Rng = Qaoa_util.Rng
module Stats = Qaoa_util.Stats
module Table = Qaoa_util.Table

type row = string * float list

let count scale ~paper =
  match scale with
  | Figures.Full -> paper
  | Figures.Default -> max 2 (paper / 4)
  | Figures.Smoke -> 2

let header ~quiet id title scale =
  if not quiet then
    Printf.printf "\n=== ablation/%s: %s  [scale=%s] ===\n" id title
      (Figures.scale_name scale)

let print_rows ~quiet columns rows =
  if not quiet then begin
    let t = Table.create ("setting" :: columns) in
    List.iter (fun (label, values) -> Table.add_float_row t label values) rows;
    Table.print t
  end

let params = Workload.default_params

let router_lookahead ?(scale = Figures.Default) ?journal ?(seed = 20100)
    ?(quiet = false) () =
  (* whole-circuit routing (QAIM strategy): IC routes a single layer per
     backend call, so the next-layer lookahead never engages there *)
  header ~quiet "router-lookahead" "QAIM whole-circuit routing vs lookahead weight, ER(0.5)-20, tokyo" scale;
  let device = Topologies.ibmq_20_tokyo () in
  let problems =
    Workload.problems (Rng.create seed) (Workload.Erdos_renyi 0.5) ~n:20
      ~count:(count scale ~paper:20)
  in
  let rows =
    List.map
      (fun w ->
        let options =
          {
            Compile.default_options with
            router = { Router.default_config with lookahead_weight = w };
          }
        in
        let res =
          Runner.run ~base_seed:seed ~options ?journal
            ~experiment:
              (Printf.sprintf "ablation/router-lookahead/w=%.2f" w)
            ~device ~strategies:[ Compile.Qaim ] ~params problems
        in
        let a = List.hd res in
        ( Printf.sprintf "lookahead=%.2f" w,
          [ a.Runner.mean_depth; a.Runner.mean_swaps ] ))
      [ 0.0; 0.25; 0.5; 1.0 ]
  in
  print_rows ~quiet [ "mean depth"; "mean swaps" ] rows;
  rows

let qaim_strength_order ?(scale = Figures.Default) ?journal ?(seed = 20200)
    ?(quiet = false) () =
  header ~quiet "qaim-strength-order"
    "connectivity-strength neighbor order on a 36-qubit grid" scale;
  let device = Topologies.grid_6x6 () in
  let problems =
    Workload.problems (Rng.create seed) (Workload.Regular 3) ~n:28
      ~count:(count scale ~paper:20)
  in
  let rows =
    List.map
      (fun order ->
        let options =
          {
            Compile.default_options with
            qaim = { Qaim.default_config with strength_order = order };
          }
        in
        let res =
          Runner.run ~base_seed:seed ~options ?journal
            ~experiment:
              (Printf.sprintf "ablation/qaim-strength-order/order=%d" order)
            ~device
            ~strategies:[ Compile.Naive; Compile.Qaim ]
            ~params problems
        in
        let r metric = Runner.ratio res ~num:Compile.Qaim ~den:Compile.Naive metric in
        ( Printf.sprintf "order=%d" order,
          [
            r (fun a -> a.Runner.mean_depth);
            r (fun a -> a.Runner.mean_gates);
          ] ))
      [ 1; 2; 3 ]
  in
  print_rows ~quiet [ "QAIM/NAIVE depth"; "QAIM/NAIVE gates" ] rows;
  rows

let peephole ?(scale = Figures.Default) ?journal ?(seed = 20300) ?(quiet = false) () =
  header ~quiet "peephole" "post-routing CNOT cancellation per strategy, ER(0.5)-20, tokyo" scale;
  let device = Topologies.ibmq_20_tokyo () in
  let problems =
    Workload.problems (Rng.create seed) (Workload.Erdos_renyi 0.5) ~n:20
      ~count:(count scale ~paper:20)
  in
  let strategies = [ Compile.Naive; Compile.Qaim; Compile.Ip; Compile.Ic None ] in
  let rows =
    List.filter_map
      (fun strategy ->
        Sweep.row ?journal
          ~key:
            (Printf.sprintf "ablation/peephole/%s"
               (Compile.strategy_name strategy))
          ~label:(Compile.strategy_name strategy)
          (fun () ->
            let gates ~peephole =
              Stats.mean
                (List.mapi
                   (fun i problem ->
                     let options =
                       { Compile.default_options with seed = seed + i; peephole }
                     in
                     let r = Compile.compile ~options ~strategy device problem params in
                     float_of_int r.Compile.metrics.Metrics.gate_count)
                   problems)
            in
            let off = gates ~peephole:false and on = gates ~peephole:true in
            [ off; on; 100.0 *. (off -. on) /. off ]))
      strategies
  in
  print_rows ~quiet [ "gates (off)"; "gates (on)"; "reduction %" ] rows;
  rows

let reverse_traversal ?(scale = Figures.Default) ?journal ?(seed = 20400)
    ?(quiet = false) () =
  header ~quiet "reverse-traversal" "mapping refinement iterations, 10-node 3-regular, melbourne" scale;
  let device = Topologies.ibmq_16_melbourne () in
  let problems =
    Workload.problems (Rng.create seed) (Workload.Regular 3) ~n:10
      ~count:(count scale ~paper:20)
  in
  let rows =
    List.filter_map
      (fun iterations ->
        Sweep.row ?journal
          ~key:
            (Printf.sprintf "ablation/reverse-traversal/iterations=%d"
               iterations)
          ~label:(Printf.sprintf "iterations=%d" iterations)
          (fun () ->
            let swaps =
              List.mapi
                (fun i problem ->
                  let rng = Rng.create (seed + i) in
                  let circuit = Ansatz.circuit ~measure:false problem params in
                  let initial = Naive.initial_mapping rng device problem in
                  let refined =
                    Reverse_traversal.refine ~iterations ~device ~initial
                      circuit
                  in
                  float_of_int
                    (Router.route ~device ~initial:refined circuit)
                      .Router.swap_count)
                problems
            in
            [ Stats.mean swaps ]))
      [ 0; 1; 2; 3; 4 ]
  in
  print_rows ~quiet [ "mean swaps" ] rows;
  rows

let mapper_shootout ?(scale = Figures.Default) ?journal ?(seed = 20500)
    ?(quiet = false) () =
  header ~quiet "mapper-shootout" "initial-mapping policies incl. VQA, 10-node 3-regular, melbourne" scale;
  let device = Topologies.ibmq_16_melbourne () in
  let cal = Device.calibration_exn device in
  let problems =
    Workload.problems (Rng.create seed) (Workload.Regular 3) ~n:10
      ~count:(count scale ~paper:20)
  in
  let mappers =
    [
      ("NAIVE", fun rng problem -> Naive.initial_mapping rng device problem);
      ("GreedyV", fun rng problem -> Qaoa_core.Greedy_mapper.greedy_v rng device problem);
      ("GreedyE", fun rng problem -> Qaoa_core.Greedy_mapper.greedy_e rng device problem);
      ("QAIM", fun rng problem -> Qaim.initial_mapping rng device problem);
      ("VQA", fun rng problem -> Vqa.initial_mapping rng device problem);
    ]
  in
  let rows =
    List.filter_map
      (fun (name, mapper) ->
        Sweep.row ?journal
          ~key:(Printf.sprintf "ablation/mapper-shootout/%s" name)
          ~label:name
          (fun () ->
            let stats =
              List.mapi
                (fun i problem ->
                  let rng = Rng.create (seed + i) in
                  let initial = mapper rng problem in
                  let circuit =
                    Ansatz.circuit ~measure:false
                      ~orders:[ Naive.cphase_order rng problem ]
                      problem params
                  in
                  let r = Router.route ~device ~initial circuit in
                  let m = Metrics.of_circuit r.Router.circuit in
                  ( float_of_int m.Metrics.depth,
                    float_of_int m.Metrics.gate_count,
                    Qaoa_core.Success.of_circuit cal r.Router.circuit ))
                problems
            in
            let pick f = Stats.mean (List.map f stats) in
            [
              pick (fun (d, _, _) -> d);
              pick (fun (_, g, _) -> g);
              pick (fun (_, _, s) -> s);
            ]))
      mappers
  in
  print_rows ~quiet [ "mean depth"; "mean gates"; "mean success" ] rows;
  rows

let iterative_recompilation ?(scale = Figures.Default) ?journal ?(seed = 20600)
    ?(quiet = false) () =
  header ~quiet "iterative" "single-shot IC vs iterative recompilation (Sec. VII trade-off)" scale;
  let device = Topologies.ibmq_20_tokyo () in
  let problems =
    Workload.problems (Rng.create seed) (Workload.Erdos_renyi 0.5) ~n:16
      ~count:(count scale ~paper:12)
  in
  let mean_of f l = Stats.mean (List.map f l) in
  let rows =
    List.filter_map Fun.id
      [
        Sweep.row ?journal ~key:"ablation/iterative/single-shot"
          ~label:"IC single-shot"
          (fun () ->
            let single =
              List.mapi
                (fun i problem ->
                  let options =
                    { Compile.default_options with seed = seed + i }
                  in
                  let r =
                    Compile.compile ~options ~strategy:(Compile.Ic None)
                      device problem params
                  in
                  ( float_of_int r.Compile.metrics.Metrics.depth,
                    r.Compile.compile_time ))
                problems
            in
            [ mean_of fst single; mean_of snd single ]);
        Sweep.row ?journal ~key:"ablation/iterative/iterative"
          ~label:"IC iterative"
          (fun () ->
            let iterated =
              List.mapi
                (fun i problem ->
                  let base = { Compile.default_options with seed = seed + i } in
                  let r =
                    Iterative.compile ~patience:4 ~max_rounds:16 ~base
                      ~strategy:(Compile.Ic None) device problem params
                  in
                  ( float_of_int r.Iterative.best.Compile.metrics.Metrics.depth,
                    r.Iterative.total_time ))
                problems
            in
            [ mean_of fst iterated; mean_of snd iterated ]);
      ]
  in
  print_rows ~quiet [ "mean depth"; "mean compile time (s)" ] rows;
  if not quiet then
    Printf.printf
      "  (paper Sec. VII quotes ~10x-600x time penalty for iterative flows)\n";
  rows

let qaoa_levels ?(scale = Figures.Default) ?journal ?(seed = 20700) ?(quiet = false) ()
    =
  header ~quiet "qaoa-levels" "IC depth/gates scaling with p, 12-node 3-regular, melbourne" scale;
  let device = Topologies.ibmq_16_melbourne () in
  let problems =
    Workload.problems (Rng.create seed) (Workload.Regular 3) ~n:12
      ~count:(count scale ~paper:12)
  in
  let rows =
    List.map
      (fun p ->
        let prms =
          { Ansatz.gammas = Array.make p 0.7; betas = Array.make p 0.4 }
        in
        let res =
          Runner.run ~base_seed:seed ?journal
            ~experiment:(Printf.sprintf "ablation/qaoa-levels/p=%d" p)
            ~device ~strategies:[ Compile.Ic None ] ~params:prms problems
        in
        let a = List.hd res in
        (Printf.sprintf "p=%d" p, [ a.Runner.mean_depth; a.Runner.mean_gates ]))
      [ 1; 2; 3 ]
  in
  print_rows ~quiet [ "mean depth"; "mean gates" ] rows;
  rows

let swap_network_crossover ?(scale = Figures.Default) ?journal ?(seed = 20900)
    ?(quiet = false) () =
  header ~quiet "swap-network" "IC vs odd-even swap network across densities, 24-node ER, 6x6 grid" scale;
  let device = Topologies.grid_6x6 () in
  let line = Qaoa_core.Swap_network.serpentine_line ~rows:6 ~cols:6 in
  let rows =
    List.filter_map
      (fun p ->
        Sweep.row ?journal
          ~key:(Printf.sprintf "ablation/swap-network/p=%.1f" p)
          ~label:(Printf.sprintf "ER(p=%.1f)" p)
          (fun () ->
            let problems =
              Workload.problems
                (Rng.create (seed + int_of_float (p *. 100.)))
                (Workload.Erdos_renyi p) ~n:24 ~count:(count scale ~paper:12)
            in
            let stats =
              List.mapi
                (fun i problem ->
                  let options =
                    { Compile.default_options with seed = seed + i }
                  in
                  let ic =
                    Compile.compile ~options ~strategy:(Compile.Ic None) device
                      problem params
                  in
                  let sn =
                    Qaoa_core.Swap_network.compile ~line device problem params
                  in
                  let sn_metrics = Metrics.of_circuit sn.Router.circuit in
                  ( float_of_int ic.Compile.metrics.Metrics.depth,
                    float_of_int sn_metrics.Metrics.depth,
                    float_of_int ic.Compile.swap_count,
                    float_of_int sn.Router.swap_count ))
                problems
            in
            let pick f = Stats.mean (List.map f stats) in
            [
              pick (fun (a, _, _, _) -> a);
              pick (fun (_, b, _, _) -> b);
              pick (fun (_, _, c, _) -> c);
              pick (fun (_, _, _, d) -> d);
            ]))
      [ 0.2; 0.4; 0.6; 0.8 ]
  in
  print_rows ~quiet
    [ "IC depth"; "network depth"; "IC swaps"; "network swaps" ]
    rows;
  rows

let graph_families ?(scale = Figures.Default) ?journal ?(seed = 21200)
    ?(quiet = false) () =
  header ~quiet "graph-families" "QAIM/IC benefit across workload families, 20-node, tokyo" scale;
  let device = Topologies.ibmq_20_tokyo () in
  let strategies = [ Compile.Naive; Compile.Qaim; Compile.Ic None ] in
  let rows =
    List.map
      (fun kind ->
        let problems =
          Workload.problems
            (Rng.create (seed + Hashtbl.hash (Workload.kind_name kind)))
            kind ~n:20 ~count:(count scale ~paper:20)
        in
        let res =
          Runner.run ~base_seed:seed ?journal
            ~experiment:
              (Printf.sprintf "ablation/graph-families/%s"
                 (Workload.kind_name kind))
            ~device ~strategies ~params problems
        in
        let r num metric = Runner.ratio res ~num ~den:Compile.Naive metric in
        ( Workload.kind_name kind,
          [
            r Compile.Qaim (fun a -> a.Runner.mean_depth);
            r (Compile.Ic None) (fun a -> a.Runner.mean_depth);
            r Compile.Qaim (fun a -> a.Runner.mean_gates);
            r (Compile.Ic None) (fun a -> a.Runner.mean_gates);
          ] ))
      [
        Workload.Erdos_renyi 0.3;
        Workload.Regular 3;
        Workload.Barabasi_albert 2;
        Workload.Watts_strogatz (4, 0.3);
      ]
  in
  print_rows ~quiet
    [ "QAIM/NAIVE depth"; "IC/NAIVE depth"; "QAIM/NAIVE gates"; "IC/NAIVE gates" ]
    rows;
  rows

let router_shootout ?(scale = Figures.Default) ?journal ?(seed = 21100)
    ?(quiet = false) () =
  header ~quiet "router-shootout" "layer-partitioned vs SABRE-style router, QAIM mapping, tokyo" scale;
  let device = Topologies.ibmq_20_tokyo () in
  let rows =
    List.filter_map
      (fun kind ->
        Sweep.row ?journal
          ~key:
            (Printf.sprintf "ablation/router-shootout/%s"
               (Workload.kind_name kind))
          ~label:(Workload.kind_name kind)
          (fun () ->
            let problems =
              Workload.problems
                (Rng.create (seed + Hashtbl.hash (Workload.kind_name kind)))
                kind ~n:20 ~count:(count scale ~paper:16)
            in
            let stats =
              List.mapi
                (fun i problem ->
                  let rng = Rng.create (seed + i) in
                  let initial = Qaim.initial_mapping rng device problem in
                  let circuit =
                    Ansatz.circuit ~orders:[ Qaoa_core.Ip.order rng problem ]
                      problem params
                  in
                  let a = Router.route ~device ~initial circuit in
                  let b = Qaoa_backend.Sabre.route ~device ~initial circuit in
                  ( float_of_int
                      (Metrics.of_circuit a.Router.circuit).Metrics.depth,
                    float_of_int
                      (Metrics.of_circuit b.Router.circuit).Metrics.depth,
                    float_of_int a.Router.swap_count,
                    float_of_int b.Router.swap_count ))
                problems
            in
            let pick f = Stats.mean (List.map f stats) in
            [
              pick (fun (a, _, _, _) -> a);
              pick (fun (_, b, _, _) -> b);
              pick (fun (_, _, c, _) -> c);
              pick (fun (_, _, _, d) -> d);
            ]))
      [ Workload.Erdos_renyi 0.3; Workload.Regular 3; Workload.Regular 6 ]
  in
  print_rows ~quiet
    [ "primary depth"; "sabre depth"; "primary swaps"; "sabre swaps" ]
    rows;
  rows

let heavy_hex_generalization ?(scale = Figures.Default) ?journal ?(seed = 21000)
    ?(quiet = false) () =
  header ~quiet "heavy-hex" "methodologies on the 27-qubit heavy-hex lattice, 20-node 3-regular" scale;
  let device = Topologies.heavy_hex_27 () in
  let problems =
    Workload.problems (Rng.create seed) (Workload.Regular 3) ~n:20
      ~count:(count scale ~paper:20)
  in
  let strategies = [ Compile.Naive; Compile.Qaim; Compile.Ip; Compile.Ic None ] in
  let res =
    Runner.run ~base_seed:seed ?journal ~experiment:"ablation/heavy-hex"
      ~device ~strategies ~params problems
  in
  let naive = Runner.find res Compile.Naive in
  let rows =
    List.map
      (fun a ->
        ( Compile.strategy_name a.Runner.strategy,
          [
            Stats.ratio a.Runner.mean_depth naive.Runner.mean_depth;
            Stats.ratio a.Runner.mean_gates naive.Runner.mean_gates;
          ] ))
      res
  in
  print_rows ~quiet [ "depth/NAIVE"; "gates/NAIVE" ] rows;
  rows

let crosstalk ?(scale = Figures.Default) ?journal ?(seed = 20800) ?(quiet = false) () =
  header ~quiet "crosstalk" "sequentializing the k most error-prone couplings, melbourne" scale;
  let device = Topologies.ibmq_16_melbourne () in
  let cal = Device.calibration_exn device in
  let worst_k k =
    let ranked =
      List.sort
        (fun (u, v) (u', v') ->
          compare (Calibration.cnot_error cal u' v') (Calibration.cnot_error cal u v))
        (Device.coupling_edges device)
    in
    List.filteri (fun i _ -> i < k) ranked
  in
  let problems =
    Workload.problems (Rng.create seed) (Workload.Erdos_renyi 0.5) ~n:12
      ~count:(count scale ~paper:12)
  in
  let compiled =
    (* lazy so fully-cached resumes skip the IP compiles entirely *)
    lazy
      (List.mapi
         (fun i problem ->
           let options = { Compile.default_options with seed = seed + i } in
           (Compile.compile ~options ~strategy:Compile.Ip device problem params)
             .Compile.circuit)
         problems)
  in
  let rows =
    List.filter_map
      (fun k ->
        Sweep.row ?journal
          ~key:(Printf.sprintf "ablation/crosstalk/k=%d" k)
          ~label:(Printf.sprintf "k=%d" k)
          (fun () ->
            let stats =
              List.map
                (fun circuit ->
                  if k = 0 then (float_of_int (Layering.depth circuit), 0.0)
                  else begin
                    let seq, st =
                      Crosstalk_pass.apply_with_stats
                        ~high_crosstalk:(worst_k k) circuit
                    in
                    ( float_of_int (Layering.depth seq),
                      float_of_int st.Crosstalk_pass.conflicts )
                  end)
                (Lazy.force compiled)
            in
            [
              Stats.mean (List.map fst stats);
              Stats.mean (List.map snd stats);
            ]))
      [ 0; 1; 3; 5 ]
  in
  print_rows ~quiet [ "mean depth"; "mean conflicts" ] rows;
  rows

let all ?(scale = Figures.Default) ?journal () =
  let a1 = router_lookahead ~scale ?journal () in
  let a2 = qaim_strength_order ~scale ?journal () in
  let a3 = peephole ~scale ?journal () in
  let a4 = reverse_traversal ~scale ?journal () in
  let a5 = mapper_shootout ~scale ?journal () in
  let a6 = iterative_recompilation ~scale ?journal () in
  let a7 = qaoa_levels ~scale ?journal () in
  let a8 = swap_network_crossover ~scale ?journal () in
  let a9 = heavy_hex_generalization ~scale ?journal () in
  let a10 = crosstalk ~scale ?journal () in
  let a11 = router_shootout ~scale ?journal () in
  let a12 = graph_families ~scale ?journal () in
  [
    ("router-lookahead", a1);
    ("qaim-strength-order", a2);
    ("peephole", a3);
    ("reverse-traversal", a4);
    ("mapper-shootout", a5);
    ("iterative", a6);
    ("qaoa-levels", a7);
    ("swap-network", a8);
    ("heavy-hex", a9);
    ("crosstalk", a10);
    ("router-shootout", a11);
    ("graph-families", a12);
  ]
