(** Experiment runner: compile instance sets under several strategies and
    aggregate the paper's circuit-quality metrics (mean depth, gate count,
    compilation time, SWAPs, and - when the device is calibrated - success
    probability). *)

type aggregate = {
  strategy : Qaoa_core.Compile.strategy;
  mean_depth : float;
  mean_gates : float;
  mean_cx : float;
  mean_swaps : float;
  mean_time : float;  (** CPU seconds *)
  mean_wall_time : float;  (** wall-clock seconds *)
  mean_success : float option;  (** None when the device is uncalibrated *)
  instances : int;
}

val run :
  ?base_seed:int ->
  ?options:Qaoa_core.Compile.options ->
  device:Qaoa_hardware.Device.t ->
  strategies:Qaoa_core.Compile.strategy list ->
  params:Qaoa_core.Ansatz.params ->
  Qaoa_core.Problem.t list ->
  aggregate list
(** Each instance [i] is compiled with seed [base_seed + i] (all
    strategies see the same seed for a given instance, so comparisons are
    paired).  Order of the result follows [strategies]. *)

val find : aggregate list -> Qaoa_core.Compile.strategy -> aggregate
(** @raise Not_found if the strategy was not run. *)

val ratio :
  aggregate list ->
  num:Qaoa_core.Compile.strategy ->
  den:Qaoa_core.Compile.strategy ->
  (aggregate -> float) ->
  float
(** Ratio of a metric between two strategies, e.g.
    [ratio res ~num:Qaim ~den:Naive (fun a -> a.mean_depth)]. *)
