(** Experiment runner: compile instance sets under several strategies and
    aggregate the paper's circuit-quality metrics (mean depth, gate count,
    compilation time, SWAPs, and - when the device is calibrated - success
    probability).

    With a journal, every (strategy, instance) compile becomes one
    supervised, journaled trial (key
    ["<experiment>/<strategy>/i<instance>/s<seed>"]): completed trials
    are skipped on resume, failing trials are retried with
    deterministically reseeded attempts and quarantined after [tries]
    failures, and aggregates are computed from the journal's view of
    each trial so resumed and uninterrupted sweeps agree bit for bit on
    every seed-deterministic metric. *)

type aggregate = {
  strategy : Qaoa_core.Compile.strategy;
  mean_depth : float;
  mean_gates : float;
  mean_cx : float;
  mean_swaps : float;
  mean_time : float;  (** CPU seconds *)
  mean_wall_time : float;  (** wall-clock seconds *)
  mean_success : float option;  (** None when the device is uncalibrated *)
  instances : int;  (** trials contributing to the means *)
  quarantined : int;
      (** journaled trials dropped after exhausting supervision
          (always [0] without a journal, where failures raise instead) *)
}

val run :
  ?base_seed:int ->
  ?options:Qaoa_core.Compile.options ->
  ?journal:Qaoa_journal.Journal.t ->
  ?experiment:string ->
  ?trial_deadline_s:float ->
  ?tries:int ->
  device:Qaoa_hardware.Device.t ->
  strategies:Qaoa_core.Compile.strategy list ->
  params:Qaoa_core.Ansatz.params ->
  Qaoa_core.Problem.t list ->
  aggregate list
(** Each instance [i] is compiled with seed [base_seed + i] (all
    strategies see the same seed for a given instance, so comparisons are
    paired).  Order of the result follows [strategies].

    [journal] turns each compile into a supervised trial; [experiment]
    (required alongside it) prefixes the trial keys and must be unique
    per logical sweep (include sweep knobs such as packing limits or
    workload kinds so keys never collide).  [trial_deadline_s] bounds
    each trial's wall clock across its [tries] attempts (attempt [k]
    reseeds to [base_seed + i + 7919 k]); the remaining budget is
    threaded into [Compile.options.deadline_s] for cooperative
    cancellation.  Compile failures without a journal propagate as
    before.
    @raise Invalid_argument if [journal] is given without [experiment]. *)

val find : aggregate list -> Qaoa_core.Compile.strategy -> aggregate
(** @raise Failure naming the missing strategy and the aggregates
    actually present. *)

val ratio :
  aggregate list ->
  num:Qaoa_core.Compile.strategy ->
  den:Qaoa_core.Compile.strategy ->
  (aggregate -> float) ->
  float
(** Ratio of a metric between two strategies, e.g.
    [ratio res ~num:Qaim ~den:Naive (fun a -> a.mean_depth)]. *)
