module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Dag = Qaoa_circuit.Dag
module Rng = Qaoa_util.Rng
module Trace = Qaoa_obs.Trace

type node = { id : int; gate : Gate.t }

type t = {
  num_qubits : int;
  gates : Gate.t array;
  preds : int list array;
  succs : int list array;
}

let commutes = Dag.commutes

let build circuit =
  Trace.with_span "analysis.commute.build"
    ~attrs:[ ("gates", Trace.int (Circuit.length circuit)) ]
  @@ fun () ->
  let gates = Array.of_list (Circuit.gates circuit) in
  let n = Array.length gates in
  let depends i j =
    (* does gate j (later) depend on gate i (earlier)? *)
    match (gates.(i), gates.(j)) with
    | Gate.Barrier, _ | _, Gate.Barrier -> true
    | a, b -> not (commutes a b)
  in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  for j = 0 to n - 1 do
    (* transitive reduction on the fly: skip i if some existing
       predecessor of j already (transitively) depends on i *)
    let reached = Hashtbl.create 8 in
    let rec mark i =
      if not (Hashtbl.mem reached i) then begin
        Hashtbl.replace reached i ();
        List.iter mark preds.(i)
      end
    in
    for i = j - 1 downto 0 do
      if (not (Hashtbl.mem reached i)) && depends i j then begin
        preds.(j) <- i :: preds.(j);
        succs.(i) <- j :: succs.(i);
        mark i
      end
    done
  done;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  (* preds were consed largest-first, so they are already increasing *)
  { num_qubits = Circuit.num_qubits circuit; gates; preds; succs }

let num_nodes t = Array.length t.gates
let num_qubits t = t.num_qubits
let gate t id = t.gates.(id)
let nodes t = List.init (num_nodes t) (fun id -> { id; gate = t.gates.(id) })
let predecessors t id = t.preds.(id)
let successors t id = t.succs.(id)

let edges t =
  let out = ref [] in
  for i = num_nodes t - 1 downto 0 do
    List.iter (fun j -> out := (i, j) :: !out) (List.rev t.succs.(i))
  done;
  !out

let reachable t i j =
  if i >= j then false
  else begin
    (* walk j's predecessor cone down to i; [seen] memoizes explored
       nodes that provably do not reach i *)
    let seen = Hashtbl.create 16 in
    let rec go k =
      if k < i || Hashtbl.mem seen k then false
      else if k = i then true
      else begin
        Hashtbl.replace seen k ();
        List.exists go t.preds.(k)
      end
    in
    go j
  end

let random_linear_extension rng t =
  let n = num_nodes t in
  let indeg = Array.map List.length t.preds in
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if indeg.(i) = 0 then ready := i :: !ready
  done;
  let out = ref [] in
  for _ = 1 to n do
    let k = Rng.int rng (List.length !ready) in
    let id = List.nth !ready k in
    ready := List.filteri (fun i _ -> i <> k) !ready;
    out := id :: !out;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then ready := s :: !ready)
      t.succs.(id)
  done;
  List.rev !out

let circuit_of_order t order =
  let n = num_nodes t in
  let pos = Array.make n (-1) in
  let len = ref 0 in
  List.iteri
    (fun idx id ->
      incr len;
      if id < 0 || id >= n || pos.(id) >= 0 then
        invalid_arg "Commute.circuit_of_order: not a permutation of node ids";
      pos.(id) <- idx)
    order;
  if !len <> n then
    invalid_arg "Commute.circuit_of_order: not a permutation of node ids";
  Array.iteri
    (fun j ps ->
      List.iter
        (fun i ->
          if pos.(i) > pos.(j) then
            invalid_arg
              (Printf.sprintf
                 "Commute.circuit_of_order: order places gate %d before its \
                  dependency %d"
                 j i))
        ps)
    t.preds;
  Circuit.of_gates t.num_qubits (List.map (fun id -> t.gates.(id)) order)
