module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Optimize = Qaoa_circuit.Optimize
module Metrics = Qaoa_circuit.Metrics
module Decompose = Qaoa_circuit.Decompose
module Device = Qaoa_hardware.Device
module Calibration = Qaoa_hardware.Calibration
module Trace = Qaoa_obs.Trace
module Metrics_registry = Qaoa_obs.Metrics_registry
module Json = Qaoa_obs.Json

type severity = Info | Warn | Error

let severity_name = function Info -> "INFO" | Warn -> "WARN" | Error -> "ERROR"

let severity_of_string s =
  match String.uppercase_ascii s with
  | "INFO" -> Some Info
  | "WARN" | "WARNING" -> Some Warn
  | "ERROR" -> Some Error
  | _ -> None

let severity_rank = function Info -> 0 | Warn -> 1 | Error -> 2
let severity_compare a b = compare (severity_rank a) (severity_rank b)

type finding = {
  rule : string;
  severity : severity;
  message : string;
  gate_span : (int * int) option;
  fix_hint : string option;
}

type role = Logical | Compiled

type context = {
  circuit : Circuit.t;
  role : role;
  device : Device.t option;
  max_depth : int option;
  min_success_prob : float option;
  lower_bound_factor : float option;
  dataflow : Dataflow.t Lazy.t;
}

let context ?device ?max_depth ?min_success_prob ?lower_bound_factor ~role
    circuit =
  {
    circuit;
    role;
    device;
    max_depth;
    min_success_prob;
    lower_bound_factor;
    dataflow = lazy (Dataflow.of_circuit circuit);
  }

type rule = {
  id : string;
  name : string;
  severity : severity;
  roles : role list;
  check : context -> finding list;
}

let gate_str g = Format.asprintf "%a" Gate.pp g

(* ---------------------------------------------------------------- *)
(* Built-in rules                                                   *)
(* ---------------------------------------------------------------- *)

(* QL001: a two-qubit gate on a physically uncoupled pair can never be
   executed; the mapper/router must have been bypassed or given the
   wrong device. *)
let check_uncoupled ctx =
  match ctx.device with
  | None -> []
  | Some dev ->
    let findings = ref [] in
    List.iteri
      (fun i g ->
        match Gate.qubits g with
        | [ a; b ] when Gate.is_two_qubit g && not (Device.coupled dev a b) ->
          findings :=
            {
              rule = "QL001";
              severity = Error;
              message =
                Printf.sprintf "%s acts on pair (%d, %d), uncoupled on %s"
                  (gate_str g) a b dev.Device.name;
              gate_span = Some (i, i);
              fix_hint =
                Some "re-run mapping/routing against this device's coupling graph";
            }
            :: !findings
        | _ -> ())
      (Circuit.gates ctx.circuit);
    List.rev !findings

(* QL002: an executed coupling with no calibration entry means the
   variation-aware passes scored it blind (Profile falls back to the
   pessimistic ceiling). *)
let check_missing_calibration ctx =
  match ctx.device with
  | None | Some { Device.calibration = None; _ } -> []
  | Some ({ Device.calibration = Some cal; _ } as dev) ->
    let seen = Hashtbl.create 16 in
    let findings = ref [] in
    List.iteri
      (fun i g ->
        match Gate.qubits g with
        | [ a; b ]
          when Gate.is_two_qubit g
               && Device.coupled dev a b
               && Calibration.cnot_error_opt cal a b = None ->
          let key = (min a b, max a b) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            findings :=
              {
                rule = "QL002";
                severity = Warn;
                message =
                  Printf.sprintf
                    "coupling (%d, %d) is used by %s but has no calibration entry"
                    (fst key) (snd key) (gate_str g);
                gate_span = Some (i, i);
                fix_hint =
                  Some
                    "refresh the calibration snapshot or avoid the uncharacterized coupling";
              }
              :: !findings
          end
        | _ -> ())
      (Circuit.gates ctx.circuit);
    List.rev !findings

(* QL003: any gate touching a wire after its measurement - the classical
   outcome is already latched, so the gate is at best dead code and at
   worst a misordered program. *)
let check_gate_after_measure ctx =
  let n = Circuit.num_qubits ctx.circuit in
  let measured_at = Array.make n (-1) in
  let findings = ref [] in
  List.iteri
    (fun i g ->
      (match g with
      | Gate.Barrier -> ()
      | _ ->
        List.iter
          (fun q ->
            if measured_at.(q) >= 0 then
              findings :=
                {
                  rule = "QL003";
                  severity = Error;
                  message =
                    Printf.sprintf "%s touches qubit %d after its measurement at gate %d"
                      (gate_str g) q measured_at.(q);
                  gate_span = Some (measured_at.(q), i);
                  fix_hint = Some "move all measurements to the end of the circuit";
                }
                :: !findings)
          (Gate.qubits g));
      match g with Gate.Measure q -> if measured_at.(q) < 0 then measured_at.(q) <- i | _ -> ())
    (Circuit.gates ctx.circuit);
  List.rev !findings

(* QL004: allocated but untouched qubits usually mean the register was
   sized to the device rather than the problem. *)
let check_idle_qubit ctx =
  let used = Circuit.used_qubits ctx.circuit in
  let findings = ref [] in
  for q = Circuit.num_qubits ctx.circuit - 1 downto 0 do
    if not (List.mem q used) then
      findings :=
        {
          rule = "QL004";
          severity = Info;
          message = Printf.sprintf "qubit %d is allocated but never used" q;
          gate_span = None;
          fix_hint = Some "shrink the register to the qubits the program touches";
        }
        :: !findings
  done;
  !findings

(* QL005: adjacent pairs the Optimize pass would cancel or merge -
   evidence the circuit was emitted without (or after defeating) the
   peephole pass. *)
let check_redundant_adjacent ctx =
  let gates = Array.of_list (Circuit.gates ctx.circuit) in
  List.map
    (fun (i, j) ->
      {
        rule = "QL005";
        severity = Warn;
        message =
          Printf.sprintf "%s at gate %d cancels against or merges into %s at gate %d"
            (gate_str gates.(j)) j (gate_str gates.(i)) i;
        gate_span = Some (i, j);
        fix_hint = Some "run the Optimize pass (or stop re-emitting the inverse pair)";
      })
    (Optimize.redundancies ~through_commuting:false ctx.circuit)

(* QL006: a SWAP followed on both wires only by measurements permutes
   classical bits, not quantum state - it can be deleted and absorbed
   into readout relabeling. *)
let check_swap_sandwich ctx =
  let gates = Array.of_list (Circuit.gates ctx.circuit) in
  let absorbable i a b =
    let ok = ref true in
    for j = i + 1 to Array.length gates - 1 do
      match gates.(j) with
      | Gate.Barrier | Gate.Measure _ -> ()
      | g ->
        if List.exists (fun q -> q = a || q = b) (Gate.qubits g) then ok := false
    done;
    !ok
  in
  let findings = ref [] in
  Array.iteri
    (fun i g ->
      match g with
      | Gate.Swap (a, b) when absorbable i a b ->
        findings :=
          {
            rule = "QL006";
            severity = Warn;
            message =
              Printf.sprintf
                "swap(%d, %d) is followed only by measurements on both wires" a b;
            gate_span = Some (i, i);
            fix_hint =
              Some "delete the SWAP and relabel the measured bits (3 CNOTs saved)";
          }
          :: !findings
      | _ -> ())
    gates;
  List.rev !findings

(* QL007: decomposed critical path above the caller's depth budget. *)
let check_depth ctx =
  match ctx.max_depth with
  | None -> []
  | Some budget ->
    let m = Metrics.of_circuit ctx.circuit in
    if m.Metrics.depth <= budget then []
    else
      [
        {
          rule = "QL007";
          severity = Warn;
          message =
            Printf.sprintf "decomposed depth %d exceeds the budget of %d"
              m.Metrics.depth budget;
          gate_span = None;
          fix_hint =
            Some
              "raise the budget, lower the QAOA level, or pick a shallower compilation policy";
        };
      ]

(* QL008: ESP-style gate-error success product below the caller's
   threshold.  Uncalibrated couplings are scored at the worst recorded
   rate (or the 0.5 clamp ceiling), mirroring Profile's pessimism, so a
   stale snapshot degrades the estimate instead of raising. *)
let check_success_prob ctx =
  match (ctx.min_success_prob, ctx.device) with
  | Some threshold, Some { Device.calibration = Some cal; _ } ->
    let default =
      match Calibration.edges cal with
      | [] -> 0.5
      | _ -> snd (Calibration.worst_edge cal)
    in
    let e1 = Calibration.single_qubit_error cal in
    let log_p =
      List.fold_left
        (fun acc g ->
          match g with
          | Gate.Cnot (a, b) ->
            acc +. log (1.0 -. Calibration.cnot_error_or ~default cal a b)
          | Gate.Barrier | Gate.Measure _ -> acc
          | _ -> acc +. log (1.0 -. e1))
        0.0
        (Circuit.gates (Decompose.circuit ctx.circuit))
    in
    let p = exp log_p in
    if p >= threshold then []
    else
      [
        {
          rule = "QL008";
          severity = Warn;
          message =
            Printf.sprintf
              "estimated success probability %.3e is below the %.3e threshold" p
              threshold;
          gate_span = None;
          fix_hint =
            Some
              "use a variation-aware policy (VIC) or reduce the two-qubit gate count";
        };
      ]
  | _ -> []

(* QL009: a SWAP with zero commutation slack sits on the critical path -
   its 3 CNOTs stretch the whole circuit, where an off-path SWAP hides
   in another wire's shadow for free. *)
let check_critical_swap ctx =
  let df = Lazy.force ctx.dataflow in
  let dag = Dataflow.dag df in
  let findings = ref [] in
  for id = Commute.num_nodes dag - 1 downto 0 do
    match Commute.gate dag id with
    | Gate.Swap (a, b) when Dataflow.slack df id = 0 ->
      findings :=
        {
          rule = "QL009";
          severity = Warn;
          message =
            Printf.sprintf
              "swap(%d, %d) has zero commutation slack - its 3 CNOTs extend \
               the critical path"
              a b;
          gate_span = Some (id, id);
          fix_hint =
            Some
              "choose a route that keeps SWAPs off the critical path, or \
               absorb this one into the initial mapping";
        }
        :: !findings
    | _ -> ()
  done;
  !findings

(* QL010: two commuting CPHASEs that are consecutive on a shared qubit
   yet sit layers apart - the wire idles in between even though the DAG
   allows packing them closer. *)
let missed_packing_gap = 3

let check_missed_packing ctx =
  let df = Lazy.force ctx.dataflow in
  let dag = Dataflow.dag df in
  let layers = Dataflow.measured_layers ctx.circuit in
  let gates = Array.of_list (Circuit.gates ctx.circuit) in
  let n = Circuit.num_qubits ctx.circuit in
  let last_on = Array.make n (-1) in
  let findings = ref [] in
  Array.iteri
    (fun j g ->
      List.iter
        (fun q ->
          let i = last_on.(q) in
          (match (g, if i >= 0 then Some gates.(i) else None) with
          | Gate.Cphase _, Some (Gate.Cphase _) ->
            let gap = layers.(j) - layers.(i) - 1 in
            if gap >= missed_packing_gap && not (Commute.reachable dag i j)
            then
              findings :=
                {
                  rule = "QL010";
                  severity = Info;
                  message =
                    Printf.sprintf
                      "commuting %s (layer %d) and %s (layer %d) are \
                       consecutive on qubit %d but %d idle layers apart - \
                       packing missed"
                      (gate_str gates.(i)) layers.(i) (gate_str g) layers.(j)
                      q gap;
                  gate_span = Some (i, j);
                  fix_hint =
                    Some
                      "let a commutation-aware scheduler (IC/VIC layer \
                       formation) pull the later CPHASE earlier";
                }
                :: !findings
          | _ -> ());
          last_on.(q) <- j)
        (Gate.qubits g))
    gates;
  List.rev !findings

(* QL011: a measured qubit idling for several layers between its last
   gate and its measurement - the wire stays live (and decohering) for
   nothing; an ALAP-scheduled measurement would end it sooner. *)
let measure_delay_gap = 5

let check_measure_delay ctx =
  let layers = Dataflow.measured_layers ctx.circuit in
  let gates = Array.of_list (Circuit.gates ctx.circuit) in
  let n = Circuit.num_qubits ctx.circuit in
  let last_gate = Array.make n (-1) in
  let findings = ref [] in
  Array.iteri
    (fun i g ->
      match g with
      | Gate.Measure q ->
        if last_gate.(q) >= 0 then begin
          let prev = last_gate.(q) in
          let gap = layers.(i) - layers.(prev) - 1 in
          if gap >= measure_delay_gap then
            findings :=
              {
                rule = "QL011";
                severity = Info;
                message =
                  Printf.sprintf
                    "qubit %d idles %d layers between its last gate (%s, \
                     layer %d) and its measurement - live long past last use"
                    q gap (gate_str gates.(prev)) layers.(prev);
                gate_span = Some (prev, i);
                fix_hint =
                  Some
                    "schedule the measurement ALAP-adjacent to the last gate \
                     to cut idle decoherence";
              }
              :: !findings
        end;
        last_gate.(q) <- i
      | Gate.Barrier -> ()
      | _ -> List.iter (fun q -> last_gate.(q) <- i) (Gate.qubits g))
    gates;
  List.rev !findings

(* QL012: redundant pairs reachable only through commuting neighbours -
   plain adjacency (QL005) cannot see them; a commutation-aware rewrite
   (the strengthened Optimize pass) cancels or merges them. *)
let check_commuting_redundancy ctx =
  let plain = Optimize.redundancies ~through_commuting:false ctx.circuit in
  let full = Optimize.redundancies ~through_commuting:true ctx.circuit in
  let gates = Array.of_list (Circuit.gates ctx.circuit) in
  full
  |> List.filter (fun pair -> not (List.mem pair plain))
  |> List.map (fun (i, j) ->
         {
           rule = "QL012";
           severity = Warn;
           message =
             Printf.sprintf
               "%s at gate %d cancels against or merges into %s at gate %d \
                after commuting past the %d intervening gate(s)"
               (gate_str gates.(j)) j (gate_str gates.(i)) i
               (j - i - 1);
           gate_span = Some (i, j);
           fix_hint =
             Some
               "run the Optimize pass (it reaches partners through commuting \
                neighbours)";
         })

(* QL013: depth more than a configurable factor above the commutation
   depth lower bound - most of the circuit's length is scheduling waste,
   not structure.  Computed on the decomposed circuit so the bound and
   the measured depth share a gate basis. *)
let check_depth_above_bound ctx =
  match ctx.lower_bound_factor with
  | None -> []
  | Some factor ->
    let s = Dataflow.analyze (Decompose.circuit ctx.circuit) in
    if
      s.Dataflow.lower_bound > 0
      && float_of_int s.Dataflow.measured_depth
         > factor *. float_of_int s.Dataflow.lower_bound
    then
      [
        {
          rule = "QL013";
          severity = Warn;
          message =
            Printf.sprintf
              "decomposed depth %d is %.2fx the commutation lower bound %d \
               (budget %.2fx)"
              s.Dataflow.measured_depth
              (float_of_int s.Dataflow.measured_depth
              /. float_of_int s.Dataflow.lower_bound)
              s.Dataflow.lower_bound factor;
          gate_span = None;
          fix_hint =
            Some
              "a commutation-aware policy (IC/VIC) or better routing could \
               close the gap to the bound";
        };
      ]
    else []

let builtin_rules =
  [
    {
      id = "QL001";
      name = "uncoupled-pair";
      severity = Error;
      roles = [ Compiled ];
      check = check_uncoupled;
    };
    {
      id = "QL002";
      name = "missing-calibration";
      severity = Warn;
      roles = [ Compiled ];
      check = check_missing_calibration;
    };
    {
      id = "QL003";
      name = "gate-after-measure";
      severity = Error;
      roles = [ Logical; Compiled ];
      check = check_gate_after_measure;
    };
    {
      id = "QL004";
      name = "idle-qubit";
      severity = Info;
      roles = [ Logical ];
      check = check_idle_qubit;
    };
    {
      id = "QL005";
      name = "redundant-adjacent";
      severity = Warn;
      roles = [ Logical; Compiled ];
      check = check_redundant_adjacent;
    };
    {
      id = "QL006";
      name = "swap-sandwich";
      severity = Warn;
      roles = [ Compiled ];
      check = check_swap_sandwich;
    };
    {
      id = "QL007";
      name = "depth-exceeded";
      severity = Warn;
      roles = [ Logical; Compiled ];
      check = check_depth;
    };
    {
      id = "QL008";
      name = "low-success-prob";
      severity = Warn;
      roles = [ Compiled ];
      check = check_success_prob;
    };
    {
      id = "QL009";
      name = "critical-swap";
      severity = Warn;
      roles = [ Compiled ];
      check = check_critical_swap;
    };
    {
      id = "QL010";
      name = "missed-packing";
      severity = Info;
      roles = [ Logical; Compiled ];
      check = check_missed_packing;
    };
    {
      id = "QL011";
      name = "measure-delay";
      severity = Info;
      roles = [ Logical; Compiled ];
      check = check_measure_delay;
    };
    {
      id = "QL012";
      name = "commuting-redundancy";
      severity = Warn;
      roles = [ Logical; Compiled ];
      check = check_commuting_redundancy;
    };
    {
      id = "QL013";
      name = "depth-above-bound";
      severity = Warn;
      roles = [ Logical; Compiled ];
      check = check_depth_above_bound;
    };
  ]

let custom_rules : rule list ref = ref []

let rules () = builtin_rules @ List.rev !custom_rules

let register r =
  if List.exists (fun r' -> r'.id = r.id) (rules ()) then
    invalid_arg (Printf.sprintf "Lint.register: duplicate rule id %s" r.id);
  custom_rules := r :: !custom_rules

let run ?rules:rs ctx =
  let rs = match rs with Some rs -> rs | None -> rules () in
  Trace.with_span "analysis.lint.run"
    ~attrs:
      [
        ("role", Trace.str (match ctx.role with Logical -> "logical" | Compiled -> "compiled"));
        ("gates", Trace.int (Circuit.length ctx.circuit));
        ("rules", Trace.int (List.length rs));
      ]
  @@ fun () ->
  let findings =
    List.concat_map
      (fun r -> if List.mem ctx.role r.roles then r.check ctx else [])
      rs
  in
  List.iter
    (fun (f : finding) ->
      Metrics_registry.incr
        ("lint.findings." ^ String.lowercase_ascii (severity_name f.severity)))
    findings;
  Trace.add_attr "findings" (Trace.int (List.length findings));
  findings

let max_severity (findings : finding list) =
  List.fold_left
    (fun acc (f : finding) ->
      match acc with
      | None -> Some f.severity
      | Some s -> Some (if severity_compare f.severity s > 0 then f.severity else s))
    None findings

let count sev (findings : finding list) =
  List.length (List.filter (fun (f : finding) -> f.severity = sev) findings)

let exit_code ?(deny = Error) (findings : finding list) =
  if List.exists (fun (f : finding) -> f.severity = Error) findings then 2
  else if
    List.exists (fun (f : finding) -> severity_compare f.severity deny >= 0) findings
  then 1
  else 0

(* ---------------------------------------------------------------- *)
(* Reporters                                                        *)
(* ---------------------------------------------------------------- *)

let to_text findings =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      let where =
        match f.gate_span with
        | None -> ""
        | Some (i, j) when i = j -> Printf.sprintf " [gate %d]" i
        | Some (i, j) -> Printf.sprintf " [gates %d-%d]" i j
      in
      Buffer.add_string buf
        (Printf.sprintf "%-5s %s%s: %s\n" (severity_name f.severity) f.rule where
           f.message);
      Option.iter
        (fun h -> Buffer.add_string buf (Printf.sprintf "      fix: %s\n" h))
        f.fix_hint)
    findings;
  Buffer.add_string buf
    (Printf.sprintf "%d error(s), %d warning(s), %d info(s)\n" (count Error findings)
       (count Warn findings) (count Info findings));
  Buffer.contents buf

let finding_to_json f =
  Json.Assoc
    [
      ("rule", Json.String f.rule);
      ("severity", Json.String (severity_name f.severity));
      ("message", Json.String f.message);
      ( "gate_span",
        match f.gate_span with
        | None -> Json.Null
        | Some (i, j) -> Json.List [ Json.Int i; Json.Int j ] );
      ( "fix_hint",
        match f.fix_hint with None -> Json.Null | Some h -> Json.String h );
    ]

let report_to_json findings =
  Json.Assoc
    [
      ("version", Json.Int 1);
      ("findings", Json.List (List.map finding_to_json findings));
      ( "summary",
        Json.Assoc
          [
            ("error", Json.Int (count Error findings));
            ("warn", Json.Int (count Warn findings));
            ("info", Json.Int (count Info findings));
            ( "max_severity",
              match max_severity findings with
              | None -> Json.Null
              | Some s -> Json.String (severity_name s) );
          ] );
    ]

let finding_of_json j =
  let str key =
    match Json.member key j with
    | Some (Json.String s) -> Ok s
    | _ -> Result.Error (Printf.sprintf "finding is missing string field %S" key)
  in
  let ( let* ) = Result.bind in
  let* rule = str "rule" in
  let* sev_name = str "severity" in
  let* severity =
    match severity_of_string sev_name with
    | Some s -> Ok s
    | None -> Result.Error (Printf.sprintf "unknown severity %S" sev_name)
  in
  let* message = str "message" in
  let* gate_span =
    match Json.member "gate_span" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.List [ Json.Int i; Json.Int j ]) -> Ok (Some (i, j))
    | Some _ -> Result.Error "gate_span must be null or a two-int array"
  in
  let* fix_hint =
    match Json.member "fix_hint" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.String h) -> Ok (Some h)
    | Some _ -> Result.Error "fix_hint must be null or a string"
  in
  Ok { rule; severity; message; gate_span; fix_hint }

let report_of_json j =
  match Json.member "version" j with
  | Some (Json.Int 1) -> (
    match Json.member "findings" j with
    | Some (Json.List fs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
          match finding_of_json f with
          | Ok f -> go (f :: acc) rest
          | Error _ as e -> e)
      in
      go [] fs
    | _ -> Result.Error "report has no findings array")
  | None -> Result.Error "report has no version field"
  | Some _ -> Result.Error "unsupported report version"
