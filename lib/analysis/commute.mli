(** Commutation DAG over a circuit: the dependency structure every
    schedule must respect, and nothing more.

    Nodes are gates (ids in circuit order); an edge [i -> j] exists only
    between {e genuinely non-commuting} pairs under the sound relation
    of {!Qaoa_circuit.Dag.commutes}: diagonal gates (Z, RZ, U1, CPHASE)
    commute through each other whatever qubits they share (the property
    behind every QAOA cost layer), equal-axis rotations on a shared
    qubit commute, a CNOT commutes with diagonals on its control and
    X-axis gates on its target, disjoint-qubit gates always commute, and
    non-unitary gates ([Barrier], [Measure]) never commute on shared
    wires ([Barrier] additionally fences {e everything}).

    Construction is O(n^2) pairwise with on-the-fly transitive
    reduction, so the edge set is the minimal relation whose closure is
    the full dependency order - fine for compiled-circuit sizes (a
    20-qubit tokyo compile is a few hundred gates).

    The point of the module: any topological order of this DAG denotes
    the same unitary as the original circuit (the relation is sound), so
    schedulers, peephole passes and lower bounds may treat the circuit
    as the DAG.  {!Qaoa_analysis.Dataflow} layers ASAP/ALAP, slack and
    depth bounds on top; the qcheck oracle in the test suite replays
    random linear extensions through the phase-polynomial checker to
    keep the relation honest. *)

type t

type node = { id : int; gate : Qaoa_circuit.Gate.t }

val commutes : Qaoa_circuit.Gate.t -> Qaoa_circuit.Gate.t -> bool
(** Re-export of {!Qaoa_circuit.Dag.commutes} (sound, not complete). *)

val build : Qaoa_circuit.Circuit.t -> t
(** Build the transitively-reduced commutation DAG. *)

val num_nodes : t -> int
val num_qubits : t -> int

val gate : t -> int -> Qaoa_circuit.Gate.t
(** Gate of a node id (ids are circuit positions). *)

val nodes : t -> node list
(** In circuit order. *)

val predecessors : t -> int -> int list
(** Direct dependencies (smaller ids), in increasing order. *)

val successors : t -> int -> int list

val edges : t -> (int * int) list
(** All [(pred, succ)] pairs of the reduced DAG, lexicographic. *)

val reachable : t -> int -> int -> bool
(** [reachable t i j]: is there a dependency path [i -> ... -> j]?
    [false] whenever [i >= j] (edges only point forward).  Two nodes
    with no path either way can be scheduled in either order. *)

val random_linear_extension : Qaoa_util.Rng.t -> t -> int list
(** A uniformly-chosen-at-each-step topological order (Kahn's algorithm
    with a seeded random ready-node pick): the schedule-validity oracle
    feeds these to {!circuit_of_order} and demands phase-polynomial
    equivalence with the original circuit. *)

val circuit_of_order : t -> int list -> Qaoa_circuit.Circuit.t
(** Flatten a node order back into a circuit.
    @raise Invalid_argument if the order is not a permutation of the
    node ids or violates a dependency edge. *)
