(** Phase-polynomial abstract interpretation of the linear gate fragment.

    QAOA cost layers are built entirely from {e linear} gates - CNOT,
    SWAP, X (affine bit flips) and the Z-diagonal rotations RZ, U1/Phase,
    Z, CPHASE (plus Y = iXZ).  A circuit segment over that fragment has
    an exact, execution-free canonical form:

    - every wire [q] carries an affine parity [x_{i1} ^ ... ^ x_{ik} ^ c]
      of the segment's {e input} wires;
    - every diagonal rotation contributes its angle to the phase
      polynomial: a map from the parity it observes at application time
      to an accumulated angle (mod 2 pi), constants folded into a global
      phase;
    - the segment ends in an affine output permutation (the per-wire
      parities).

    Two segments are equal as unitaries up to global phase iff their
    canonical forms agree - at {e any} qubit count, in polynomial time,
    with no statevector.  Whole circuits are compared by segmenting at
    non-linear gates (H, RX, RY): linear segments alternate with
    {e blocks} of non-linear gates, and the circuits are equivalent when
    the block skeletons match and every corresponding segment
    canonicalizes identically.

    Segmentation is {e canonical}: every gate is placed by its wire
    phase - the number of non-linear gates already seen on its own
    wires - which no reordering of commuting gates can change.  Two
    schedules of the same pipeline circuit therefore segment
    identically, even when the scheduler interleaves one wire's
    Hadamard with another wire's cost gates.  Circuits where a linear
    gate straddles two wire phases (e.g. [H 0; CNOT (0, 1)]) fall back
    to order-sensitive sequential segmentation on both sides of a
    comparison; skeletons that still do not line up get an honest
    {!Inconclusive} verdict instead of a guess.

    [Barrier] and [Measure] are semantic no-ops here, exactly as in the
    statevector simulator. *)

type kind = Linear | Nonlinear | Ignored

val kind_of_gate : Qaoa_circuit.Gate.t -> kind
(** [Linear]: CNOT, SWAP, X, Y, Z, RZ, U1, CPHASE. [Nonlinear]: H, RX,
    RY (segment boundaries). [Ignored]: Barrier, Measure. *)

type term = {
  parity : string;
      (** parity-set key: byte [i] is ['\001'] iff input wire [i] is in
          the XOR (use {!pp_parity} to render) *)
  angle : float;  (** accumulated phase, normalized into (0, 2 pi) *)
}

type segment = {
  terms : term list;  (** sorted by parity key; near-zero angles pruned *)
  outputs : (string * bool) array;
      (** per output wire: (input-parity key, complemented) *)
}

type block = (int * Qaoa_circuit.Gate.t) list
(** One non-linear boundary: (qubit, gate) on pairwise-distinct qubits,
    sorted by qubit. *)

type summary = {
  num_qubits : int;
  segments : segment list;  (** always [List.length blocks + 1] entries *)
  blocks : block list;
}

val pp_parity : string -> string
(** ["x1^x4"] rendering of a parity key (["1"] for the empty parity). *)

val summarize : ?eps:float -> Qaoa_circuit.Circuit.t -> summary
(** Canonicalize a whole circuit: segment at non-linear gates, reduce
    every linear segment to its canonical form.  [eps] (default 1e-9)
    prunes phase terms whose angle is 0 mod 2 pi.  Total on every
    circuit. *)

type verdict =
  | Equivalent  (** equal as unitaries up to global phase *)
  | Inequivalent of { segment : int; detail : string }
      (** first divergent linear segment (0-based, in skeleton order)
          and a human-readable witness: a differing output parity or
          phase term *)
  | Inconclusive of string
      (** the non-linear skeletons do not align, so segment-wise
          comparison does not apply (the reason names the first
          mismatch) *)

val verdict_to_string : verdict -> string

val equal_up_to_global_phase :
  ?eps:float -> Qaoa_circuit.Circuit.t -> Qaoa_circuit.Circuit.t -> verdict
(** Compare two circuits on the same register.  [eps] (default 1e-9)
    bounds the tolerated angular drift per phase term (circular
    distance).  Purely-linear circuits (QAOA cost layers, routed
    CNOT+RZ/CPHASE segments) always get a definite verdict; [H]/[RX]/
    [RY] circuits get one whenever the skeletons align - which they do
    for every reordering the compilation pipeline is allowed to
    perform. *)
