(** Execution-free circuit lint engine (`qaoa-lint`).

    A registry of rules, each with a stable id, a default severity, the
    circuit roles it applies to, and a checker producing findings with a
    gate-span location and an optional fix hint.  All rules are static -
    they inspect the gate list, the device coupling graph and the
    calibration snapshot, never a simulator - so they run on circuits of
    any size.

    Built-in rules:

    {v
 id     name                  severity  roles     fires when
 QL001  uncoupled-pair        ERROR     compiled  two-qubit gate on an uncoupled physical pair
 QL002  missing-calibration   WARN      compiled  used coupling edge has no calibration entry
 QL003  gate-after-measure    ERROR     both      a gate touches a wire after its measurement
 QL004  idle-qubit            INFO      logical   allocated qubit never touched by any gate
 QL005  redundant-adjacent    WARN      both      adjacent pair Optimize would cancel or merge
 QL006  swap-sandwich         WARN      compiled  trailing SWAP absorbable into readout relabeling
 QL007  depth-exceeded        WARN      both      decomposed depth above the --max-depth budget
 QL008  low-success-prob      WARN      compiled  estimated success probability below threshold
 QL009  critical-swap         WARN      compiled  SWAP with zero commutation slack (critical path)
 QL010  missed-packing        INFO      both      commuting CPHASEs consecutive on a qubit, layers apart
 QL011  measure-delay         INFO      both      qubit idles 5+ layers between last gate and measure
 QL012  commuting-redundancy  WARN      both      redundant pair reachable only through commuting gates
 QL013  depth-above-bound     WARN      both      depth above --lower-bound-factor x the commutation bound
    v}

    QL009-QL012 run on the {!Dataflow} commutation DAG of the context
    circuit (built lazily, shared across rules); QL013 analyzes the
    {e decomposed} circuit so its bound and depth share a gate basis.

    Exit-code convention (used by the CLI and the CI gate): 0 for a
    clean report, 2 when any ERROR finding is present, 1 when a finding
    at or above the [--deny] severity is present. *)

type severity = Info | Warn | Error

val severity_name : severity -> string
(** ["INFO"], ["WARN"], ["ERROR"]. *)

val severity_of_string : string -> severity option
(** Case-insensitive inverse of {!severity_name}. *)

val severity_compare : severity -> severity -> int
(** Orders [Info < Warn < Error]. *)

type finding = {
  rule : string;  (** stable rule id, e.g. ["QL001"] *)
  severity : severity;
  message : string;
  gate_span : (int * int) option;
      (** inclusive gate-index range the finding anchors to *)
  fix_hint : string option;
}

type role = Logical | Compiled

type context = {
  circuit : Qaoa_circuit.Circuit.t;
  role : role;
  device : Qaoa_hardware.Device.t option;
      (** device-dependent rules skip silently when absent *)
  max_depth : int option;  (** QL007 threshold; rule skips when absent *)
  min_success_prob : float option;  (** QL008 threshold; skips when absent *)
  lower_bound_factor : float option;
      (** QL013 depth budget as a multiple of the commutation depth
          lower bound; rule skips when absent *)
  dataflow : Dataflow.t Lazy.t;
      (** commutation-DAG dataflow of [circuit] as given, built on first
          use and shared by the DAG-powered rules (QL009/QL010) *)
}

val context :
  ?device:Qaoa_hardware.Device.t ->
  ?max_depth:int ->
  ?min_success_prob:float ->
  ?lower_bound_factor:float ->
  role:role ->
  Qaoa_circuit.Circuit.t ->
  context
(** Build a context; [dataflow] is a lazy {!Dataflow.of_circuit} on the
    circuit. *)

type rule = {
  id : string;
  name : string;  (** kebab-case mnemonic *)
  severity : severity;  (** severity of the findings the rule emits *)
  roles : role list;
  check : context -> finding list;
}

val builtin_rules : rule list

val register : rule -> unit
(** Add a custom rule to the process-global registry.
    @raise Invalid_argument on a duplicate rule id. *)

val rules : unit -> rule list
(** Built-ins followed by registered customs. *)

val run : ?rules:rule list -> context -> finding list
(** Run every rule applicable to the context's role, findings in rule
    order then gate order.  Traced as ["analysis.lint.run"]; bumps the
    ["lint.findings.<severity>"] counters. *)

val max_severity : finding list -> severity option
val count : severity -> finding list -> int

val exit_code : ?deny:severity -> finding list -> int
(** [2] if any [Error] finding, else [1] if any finding at or above
    [deny] (default [Error]), else [0]. *)

(** {1 Reporters} *)

val to_text : finding list -> string
(** One line per finding ([SEVERITY id gates i-j: message]), indented
    fix hints, and a trailing summary line. *)

val report_to_json : finding list -> Qaoa_obs.Json.t
(** [{"version": 1, "findings": [...], "summary": {...}}]. *)

val report_of_json : Qaoa_obs.Json.t -> (finding list, string) result
(** Inverse of {!report_to_json} (the CI gate uses it to prove the JSON
    report round-trips). *)
