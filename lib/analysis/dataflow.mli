(** Generic dataflow analyses over the commutation DAG: schedules,
    slack, critical paths, live ranges and a policy-independent depth
    lower bound.

    Two schedule views are computed from one {!Commute.t}:

    - {e dependence levels} (contention-free ASAP/ALAP): the longest
      weighted dependency chain above/below each node, ignoring qubit
      contention.  Their difference is the node's {e slack} - how many
      steps it can slide without stretching the critical path; zero
      slack = on the critical path.  Barriers weigh 0.
    - a {e resource-constrained greedy ASAP schedule} (earliest step at
      or after all dependencies where every operand qubit is idle, with
      backfilling): its depth is achievable, so it upper-bounds what a
      commutation-aware scheduler can do with the given gates, and it
      never exceeds the order-tied {!Qaoa_circuit.Layering.depth}.

    The {b depth lower bound} is [max critical_path busy_bound] where
    [busy_bound] is the largest per-qubit non-barrier gate count: every
    commutation-respecting schedule must serialize each dependency chain
    {e and} each qubit's own gates, whatever the policy, so

    {v lower_bound <= asap_depth <= measured (Layering) depth v}

    holds by construction - the qcheck oracle in the test suite and the
    CI tokyo sweep both assert it.  The bound is policy-independent:
    compare any of the 7 compilation policies against it to see how much
    of their depth is structural and how much is scheduling waste. *)

type summary = {
  gates : int;  (** circuit length including barriers/measures *)
  lower_bound : int;
      (** [max critical_path busy_bound] - no commutation-respecting
          schedule of these gates can be shallower *)
  critical_path : int;
      (** longest weighted dependency chain (barriers weigh 0) *)
  busy_bound : int;  (** max per-qubit non-barrier gate count *)
  asap_depth : int;
      (** depth of the greedy resource-constrained schedule (achievable,
          so [lower_bound <= asap_depth]) *)
  measured_depth : int;
      (** order-tied {!Qaoa_circuit.Layering.depth} of the circuit as
          given ([asap_depth <= measured_depth]) *)
  total_slack : int;
      (** sum of per-gate slack over non-barrier gates: aggregate
          scheduling freedom *)
  live_pressure : int;
      (** max number of simultaneously live qubits (live = between first
          and last touching gate of the greedy schedule) *)
}

type t

val of_circuit : Qaoa_circuit.Circuit.t -> t
(** Build the DAG and run every analysis.  Traced as
    ["analysis.dataflow.analyze"]; bumps ["analysis.dataflow.runs"]. *)

val analyze : Qaoa_circuit.Circuit.t -> summary
(** [summary (of_circuit c)]. *)

val dag : t -> Commute.t
val summary : t -> summary

val asap_level : t -> int -> int
(** Contention-free earliest level of a node. *)

val alap_level : t -> int -> int
(** Latest level that does not stretch the critical path. *)

val slack : t -> int -> int
(** [alap_level - asap_level]; 0 = on the critical path. *)

val step : t -> int -> int
(** Greedy resource-constrained schedule step (barriers carry the fence
    time but occupy no step). *)

val critical : t -> int -> bool
(** Zero-slack non-barrier node. *)

val critical_edge : t -> int -> int -> bool
(** DAG edge [(i, j)] on a critical chain: both ends critical and [j]
    starts exactly when [i] finishes (level-wise). *)

val measured_layers : Qaoa_circuit.Circuit.t -> int array
(** Per-gate ASAP layer of the circuit {e as given} (exactly
    {!Qaoa_circuit.Layering}'s assignment, in program order); barriers
    get [-1].  The lint rules use it to talk about layer distances in
    the order-tied schedule. *)

val summary_to_json : summary -> Qaoa_obs.Json.t
(** Flat object with the eight summary fields, stable key order (the
    serving layer embeds it verbatim, so bytes must be deterministic). *)

val to_json : t -> Qaoa_obs.Json.t
(** Full DAG export ([qaoa-lint --dag-json]): [{"version": 1,
    "num_qubits": n, "summary": {...}, "nodes": [{"id", "gate",
    "qubits", "asap", "alap", "slack", "step", "critical"}, ...],
    "edges": [{"from", "to", "critical"}, ...]}]. *)

val to_dot : t -> string
(** Graphviz export ([qaoa-lint --dot]) with critical nodes and
    critical-path edges highlighted. *)
