module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Json = Qaoa_obs.Json
module Trace = Qaoa_obs.Trace
module Metrics_registry = Qaoa_obs.Metrics_registry

type summary = {
  gates : int;
  lower_bound : int;
  critical_path : int;
  busy_bound : int;
  asap_depth : int;
  measured_depth : int;
  total_slack : int;
  live_pressure : int;
}

type t = {
  dag : Commute.t;
  asap_level : int array;
  alap_level : int array;
  slack : int array;
  step : int array;
  summary : summary;
}

(* Order-tied ASAP layer per gate index, mirroring Layering.schedule
   (same fence semantics), so max+1 here equals Layering.depth. *)
let measured_layers circuit =
  let n = Circuit.num_qubits circuit in
  let free_at = Array.make n 0 in
  let fence = ref 0 in
  let depth = ref 0 in
  let gates = Array.of_list (Circuit.gates circuit) in
  Array.map
    (fun g ->
      match g with
      | Gate.Barrier ->
        fence := !depth;
        -1
      | _ ->
        let qs = Gate.qubits g in
        let layer =
          List.fold_left (fun acc q -> max acc free_at.(q)) !fence qs
        in
        List.iter (fun q -> free_at.(q) <- layer + 1) qs;
        depth := max !depth (layer + 1);
        layer)
    gates

let of_circuit circuit =
  Trace.with_span "analysis.dataflow.analyze"
    ~attrs:[ ("gates", Trace.int (Circuit.length circuit)) ]
  @@ fun () ->
  Metrics_registry.incr "analysis.dataflow.runs";
  let dag = Commute.build circuit in
  let n = Commute.num_nodes dag in
  let weight id =
    match Commute.gate dag id with Gate.Barrier -> 0 | _ -> 1
  in
  (* contention-free levels: longest weighted chain above / below *)
  let asap_level = Array.make n 0 in
  let down = Array.make n 0 in
  for id = 0 to n - 1 do
    asap_level.(id) <-
      List.fold_left
        (fun acc p -> max acc (asap_level.(p) + weight p))
        0
        (Commute.predecessors dag id)
  done;
  for id = n - 1 downto 0 do
    down.(id) <-
      List.fold_left
        (fun acc s -> max acc (down.(s) + weight s))
        0
        (Commute.successors dag id)
  done;
  let critical_path = ref 0 in
  for id = 0 to n - 1 do
    critical_path := max !critical_path (asap_level.(id) + weight id + down.(id))
  done;
  let critical_path = !critical_path in
  let alap_level =
    Array.init n (fun id -> critical_path - weight id - down.(id))
  in
  let slack = Array.init n (fun id -> alap_level.(id) - asap_level.(id)) in
  (* greedy resource-constrained ASAP with backfilling: earliest step at
     or after every dependency where all operand qubits are idle.
     Processing in circuit order keeps each gate at or before its
     Layering layer, so asap_depth <= measured_depth. *)
  let finish = Array.make n 0 in
  let step = Array.make n 0 in
  let busy = Hashtbl.create 64 in
  let asap_depth = ref 0 in
  for id = 0 to n - 1 do
    let earliest =
      List.fold_left
        (fun acc p -> max acc finish.(p))
        0
        (Commute.predecessors dag id)
    in
    let time =
      if weight id = 0 then earliest
      else begin
        let qs = Gate.qubits (Commute.gate dag id) in
        let rec free t =
          if List.exists (fun q -> Hashtbl.mem busy (q, t)) qs then free (t + 1)
          else t
        in
        let time = free earliest in
        List.iter (fun q -> Hashtbl.replace busy (q, time) ()) qs;
        asap_depth := max !asap_depth (time + 1);
        time
      end
    in
    step.(id) <- time;
    finish.(id) <- time + weight id
  done;
  let asap_depth = !asap_depth in
  let nq = Commute.num_qubits dag in
  let per_qubit = Array.make nq 0 in
  let live = Array.make nq None in
  for id = 0 to n - 1 do
    if weight id > 0 then
      List.iter
        (fun q ->
          per_qubit.(q) <- per_qubit.(q) + 1;
          live.(q) <-
            (match live.(q) with
            | None -> Some (step.(id), step.(id))
            | Some (a, b) -> Some (min a step.(id), max b step.(id))))
        (Gate.qubits (Commute.gate dag id))
  done;
  let busy_bound = Array.fold_left max 0 per_qubit in
  let live_pressure =
    (* sweep the live intervals: max simultaneous overlap *)
    let delta = Array.make (asap_depth + 1) 0 in
    Array.iter
      (function
        | None -> ()
        | Some (a, b) ->
          delta.(a) <- delta.(a) + 1;
          delta.(b + 1) <- delta.(b + 1) - 1)
      live;
    let best = ref 0 and cur = ref 0 in
    Array.iter
      (fun d ->
        cur := !cur + d;
        best := max !best !cur)
      delta;
    !best
  in
  let total_slack = ref 0 in
  for id = 0 to n - 1 do
    if weight id > 0 then total_slack := !total_slack + slack.(id)
  done;
  let measured =
    Array.fold_left (fun acc l -> max acc (l + 1)) 0 (measured_layers circuit)
  in
  let summary =
    {
      gates = n;
      lower_bound = max critical_path busy_bound;
      critical_path;
      busy_bound;
      asap_depth;
      measured_depth = measured;
      total_slack = !total_slack;
      live_pressure;
    }
  in
  Trace.add_attr "lower_bound" (Trace.int summary.lower_bound);
  Trace.add_attr "measured_depth" (Trace.int summary.measured_depth);
  { dag; asap_level; alap_level; slack; step; summary }

let analyze circuit = (of_circuit circuit).summary
let dag t = t.dag
let summary t = t.summary
let asap_level t id = t.asap_level.(id)
let alap_level t id = t.alap_level.(id)
let slack t id = t.slack.(id)
let step t id = t.step.(id)

let weight t id =
  match Commute.gate t.dag id with Gate.Barrier -> 0 | _ -> 1

let critical t id = weight t id > 0 && t.slack.(id) = 0

let critical_edge t i j =
  critical t i && critical t j
  && t.asap_level.(j) = t.asap_level.(i) + weight t i
  && List.mem j (Commute.successors t.dag i)

let summary_to_json s =
  Json.Assoc
    [
      ("gates", Json.Int s.gates);
      ("lower_bound", Json.Int s.lower_bound);
      ("critical_path", Json.Int s.critical_path);
      ("busy_bound", Json.Int s.busy_bound);
      ("asap_depth", Json.Int s.asap_depth);
      ("measured_depth", Json.Int s.measured_depth);
      ("total_slack", Json.Int s.total_slack);
      ("live_pressure", Json.Int s.live_pressure);
    ]

let gate_str g = Format.asprintf "%a" Gate.pp g

let to_json t =
  let node_json id =
    Json.Assoc
      [
        ("id", Json.Int id);
        ("gate", Json.String (gate_str (Commute.gate t.dag id)));
        ( "qubits",
          Json.List
            (List.map (fun q -> Json.Int q) (Gate.qubits (Commute.gate t.dag id)))
        );
        ("asap", Json.Int t.asap_level.(id));
        ("alap", Json.Int t.alap_level.(id));
        ("slack", Json.Int t.slack.(id));
        ("step", Json.Int t.step.(id));
        ("critical", Json.Bool (critical t id));
      ]
  in
  let edge_json (i, j) =
    Json.Assoc
      [
        ("from", Json.Int i);
        ("to", Json.Int j);
        ("critical", Json.Bool (critical_edge t i j));
      ]
  in
  Json.Assoc
    [
      ("version", Json.Int 1);
      ("num_qubits", Json.Int (Commute.num_qubits t.dag));
      ("summary", summary_to_json t.summary);
      ( "nodes",
        Json.List (List.init (Commute.num_nodes t.dag) node_json) );
      ("edges", Json.List (List.map edge_json (Commute.edges t.dag)));
    ]

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph commutation {\n  rankdir=LR;\n";
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  for id = 0 to Commute.num_nodes t.dag - 1 do
    let style =
      if critical t id then
        " color=red penwidth=2.0"
      else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%d: %s\\nslack %d\"%s];\n" id id
         (gate_str (Commute.gate t.dag id))
         t.slack.(id) style)
  done;
  List.iter
    (fun (i, j) ->
      let style =
        if critical_edge t i j then " [color=red penwidth=2.0]" else ""
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" i j style))
    (Commute.edges t.dag);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
