module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Trace = Qaoa_obs.Trace
module Metrics_registry = Qaoa_obs.Metrics_registry

let two_pi = 2.0 *. Float.pi

(* Normalize into [0, 2 pi). *)
let norm_angle a =
  let r = Float.rem a two_pi in
  if r < 0.0 then r +. two_pi else r

(* Circular distance between two angles. *)
let angle_dist a b =
  let d = Float.abs (norm_angle a -. norm_angle b) in
  Float.min d (two_pi -. d)

type kind = Linear | Nonlinear | Ignored

let kind_of_gate = function
  | Gate.Cnot _ | Gate.Swap _ | Gate.X _ | Gate.Y _ | Gate.Z _ | Gate.Rz _
  | Gate.Phase _ | Gate.Cphase _ ->
    Linear
  | Gate.H _ | Gate.Rx _ | Gate.Ry _ -> Nonlinear
  | Gate.Barrier | Gate.Measure _ -> Ignored

type term = { parity : string; angle : float }

type segment = {
  terms : term list;
  outputs : (string * bool) array;
}

type block = (int * Gate.t) list

type summary = {
  num_qubits : int;
  segments : segment list;
  blocks : block list;
}

let pp_parity key =
  let parts = ref [] in
  String.iteri
    (fun i c -> if c = '\001' then parts := Printf.sprintf "x%d" i :: !parts)
    key;
  match List.rev !parts with [] -> "1" | ps -> String.concat "^" ps

(* ---------------------------------------------------------------- *)
(* Abstract state of one linear segment                             *)
(* ---------------------------------------------------------------- *)

type state = {
  n : int;
  parities : Bytes.t array;  (** row [q]: input-wire XOR membership *)
  consts : Bytes.t;  (** affine complement bit per wire *)
  phases : (string, float) Hashtbl.t;  (** nonzero parity -> angle *)
  mutable global : float;  (** tracked for completeness, never compared *)
}

let init n =
  {
    n;
    parities =
      Array.init n (fun q ->
          let b = Bytes.make n '\000' in
          Bytes.set b q '\001';
          b);
    consts = Bytes.make n '\000';
    phases = Hashtbl.create 32;
    global = 0.0;
  }

let xor_into dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let const st q = Bytes.get st.consts q = '\001'

let flip_const st q =
  Bytes.set st.consts q (if const st q then '\000' else '\001')

let is_zero_mask key =
  let rec go i = i >= String.length key || (key.[i] = '\000' && go (i + 1)) in
  go 0

(* The rotation observes the wire value [p ^ c]: with [c = 0] the angle
   lands on the parity term; with [c = 1], e^{i th (1 ^ p)} =
   e^{i th} e^{-i th p}, so the angle flips sign and e^{i th} joins the
   global phase. *)
let add_phase st mask complemented theta =
  let theta =
    if complemented then begin
      st.global <- st.global +. theta;
      -.theta
    end
    else theta
  in
  let key = Bytes.to_string mask in
  if not (is_zero_mask key) then
    Hashtbl.replace st.phases key
      (theta +. Option.value ~default:0.0 (Hashtbl.find_opt st.phases key))

let rec apply st g =
  match g with
  | Gate.Cnot (c, t) ->
    xor_into st.parities.(t) st.parities.(c);
    if const st c then flip_const st t
  | Gate.Swap (a, b) ->
    let row = st.parities.(a) in
    st.parities.(a) <- st.parities.(b);
    st.parities.(b) <- row;
    let ca = const st a and cb = const st b in
    Bytes.set st.consts a (if cb then '\001' else '\000');
    Bytes.set st.consts b (if ca then '\001' else '\000')
  | Gate.X q -> flip_const st q
  | Gate.Z q -> add_phase st st.parities.(q) (const st q) Float.pi
  | Gate.Phase (q, th) -> add_phase st st.parities.(q) (const st q) th
  | Gate.Rz (q, th) ->
    (* RZ(th) = e^{-i th/2} diag(1, e^{i th}) *)
    st.global <- st.global -. (th /. 2.0);
    add_phase st st.parities.(q) (const st q) th
  | Gate.Cphase (a, b, th) ->
    (* exp(-i th/2 Z(x)Z) = e^{-i th/2} up to a phase th on the parity
       f_a ^ f_b (the ZZ eigenvalue is (-1)^{f_a ^ f_b}). *)
    let mask = Bytes.copy st.parities.(a) in
    xor_into mask st.parities.(b);
    st.global <- st.global -. (th /. 2.0);
    add_phase st mask (const st a <> const st b) th
  | Gate.Y q ->
    (* Y = i X Z: Z first, then X, plus a global pi/2. *)
    st.global <- st.global +. (Float.pi /. 2.0);
    apply st (Gate.Z q);
    apply st (Gate.X q)
  | Gate.Barrier | Gate.Measure _ -> ()
  | Gate.H _ | Gate.Rx _ | Gate.Ry _ ->
    invalid_arg "Phase_poly.apply: non-linear gate"

let canon ?(eps = 1e-9) st =
  let terms =
    Hashtbl.fold
      (fun parity angle acc ->
        if angle_dist angle 0.0 < eps then acc
        else { parity; angle = norm_angle angle } :: acc)
      st.phases []
    |> List.sort (fun a b -> compare a.parity b.parity)
  in
  let outputs =
    Array.init st.n (fun q -> (Bytes.to_string st.parities.(q), const st q))
  in
  { terms; outputs }

(* ---------------------------------------------------------------- *)
(* Segmentation                                                     *)
(* ---------------------------------------------------------------- *)

(* Canonical, reorder-invariant segmentation.  Every gate is placed by
   its {e wire phase} - the number of non-linear gates already seen on
   its own wires - which no reordering of commuting gates can change
   (per-wire gate order is preserved by any legal schedule, and two
   orders with the same per-wire sequences are connected by
   transpositions of wire-disjoint gates).  The scheme applies whenever
   every linear gate touches wires at one common phase: true for QAOA
   pipeline circuits under any schedule the router/scheduler emits.
   Returns [None] when a linear gate straddles two phases (e.g.
   [H 0; CNOT (0, 1)]); such circuits use the sequential fallback. *)
let summarize_canonical ?eps circuit =
  let n = Circuit.num_qubits circuit in
  let phase = Array.make n 0 in
  let blocks_tbl : (int, (int * Gate.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let segs_tbl : (int, Gate.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let push tbl k v =
    let r =
      match Hashtbl.find_opt tbl k with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add tbl k r;
        r
    in
    r := v :: !r
  in
  let aligned = ref true in
  List.iter
    (fun g ->
      if !aligned then
        match kind_of_gate g with
        | Ignored -> ()
        | Nonlinear ->
          let q = List.hd (Gate.qubits g) in
          push blocks_tbl phase.(q) (q, g);
          phase.(q) <- phase.(q) + 1
        | Linear -> (
          match Gate.qubits g with
          | [] -> ()
          | q0 :: rest ->
            if List.for_all (fun q -> phase.(q) = phase.(q0)) rest then
              push segs_tbl phase.(q0) g
            else aligned := false))
    (Circuit.gates circuit);
  if not !aligned then None
  else begin
    let depth = Array.fold_left max 0 phase in
    let segments =
      List.init (depth + 1) (fun k ->
          let st = init n in
          (match Hashtbl.find_opt segs_tbl k with
          | Some r -> List.iter (apply st) (List.rev !r)
          | None -> ());
          canon ?eps st)
    in
    let blocks =
      List.init depth (fun k ->
          match Hashtbl.find_opt blocks_tbl k with
          | Some r -> List.sort compare !r
          | None -> [])
    in
    Some { num_qubits = n; segments; blocks }
  end

(* Order-sensitive fallback: cut a new segment at every non-linear
   boundary block exactly as the gates appear.  Total on every circuit,
   but two schedules of the same circuit may segment differently. *)
let summarize_sequential ?eps circuit =
  let n = Circuit.num_qubits circuit in
  let segments = ref [] and blocks = ref [] in
  let st = ref (init n) in
  let cur_block = ref [] in
  let in_block = ref false in
  let close_segment () =
    segments := canon ?eps !st :: !segments;
    st := init n
  in
  let close_block () =
    blocks := List.sort compare !cur_block :: !blocks;
    cur_block := [];
    in_block := false
  in
  List.iter
    (fun g ->
      match kind_of_gate g with
      | Ignored -> ()
      | Linear ->
        if !in_block then close_block ();
        apply !st g
      | Nonlinear ->
        let q = List.hd (Gate.qubits g) in
        if !in_block && List.mem_assoc q !cur_block then close_block ();
        if not !in_block then begin
          close_segment ();
          in_block := true
        end;
        cur_block := (q, g) :: !cur_block)
    (Circuit.gates circuit);
  if !in_block then close_block ();
  close_segment ();
  {
    num_qubits = n;
    segments = List.rev !segments;
    blocks = List.rev !blocks;
  }

let summarize ?eps circuit =
  match summarize_canonical ?eps circuit with
  | Some s -> s
  | None -> summarize_sequential ?eps circuit

(* ---------------------------------------------------------------- *)
(* Comparison                                                       *)
(* ---------------------------------------------------------------- *)

type verdict =
  | Equivalent
  | Inequivalent of { segment : int; detail : string }
  | Inconclusive of string

let verdict_to_string = function
  | Equivalent -> "equivalent (up to global phase)"
  | Inequivalent { segment; detail } ->
    Printf.sprintf "inequivalent at segment %d: %s" segment detail
  | Inconclusive reason -> "inconclusive: " ^ reason

(* Non-linear block gates compare with angle tolerance: RX(th) and
   RX(th + 2 pi) differ by a global phase only. *)
let nonlinear_equal eps a b =
  match (a, b) with
  | Gate.H p, Gate.H q -> p = q
  | Gate.Rx (p, x), Gate.Rx (q, y) | Gate.Ry (p, x), Gate.Ry (q, y) ->
    p = q && angle_dist x y < eps
  | _ -> false

let segment_diff eps (a : segment) (b : segment) =
  let out = ref None in
  Array.iteri
    (fun q (mask, c) ->
      if !out = None then
        let mask', c' = b.outputs.(q) in
        if mask <> mask' || c <> c' then
          out :=
            Some
              (Printf.sprintf
                 "output wire %d computes %s%s on one side, %s%s on the other"
                 q (pp_parity mask)
                 (if c then "^1" else "")
                 (pp_parity mask')
                 (if c' then "^1" else "")))
    a.outputs;
  match !out with
  | Some _ as d -> d
  | None ->
    let tbl = Hashtbl.create 32 in
    List.iter (fun t -> Hashtbl.replace tbl t.parity t.angle) b.terms;
    let diff = ref None in
    List.iter
      (fun t ->
        if !diff = None then begin
          let other = Option.value ~default:0.0 (Hashtbl.find_opt tbl t.parity) in
          Hashtbl.remove tbl t.parity;
          if angle_dist t.angle other >= eps then
            diff :=
              Some
                (Printf.sprintf
                   "phase term on parity %s: %.6f rad vs %.6f rad"
                   (pp_parity t.parity) t.angle other)
        end)
      a.terms;
    if !diff = None then
      (* terms present only on the right-hand side *)
      Hashtbl.iter
        (fun parity angle ->
          if !diff = None && angle_dist angle 0.0 >= eps then
            diff :=
              Some
                (Printf.sprintf
                   "phase term on parity %s: 0.000000 rad vs %.6f rad"
                   (pp_parity parity) angle))
        tbl;
    !diff

let block_diff eps i (a : block) (b : block) =
  if List.length a <> List.length b then
    Some
      (Printf.sprintf "non-linear block %d has %d gate(s) vs %d" i
         (List.length a) (List.length b))
  else
    List.fold_left2
      (fun acc (qa, ga) (qb, gb) ->
        match acc with
        | Some _ -> acc
        | None ->
          if qa <> qb || not (nonlinear_equal eps ga gb) then
            Some
              (Format.asprintf "non-linear block %d differs: %a vs %a" i
                 Gate.pp ga Gate.pp gb)
          else None)
      None a b

let equal_up_to_global_phase ?(eps = 1e-9) left right =
  Trace.with_span "analysis.phase_poly.equal"
    ~attrs:
      [
        ("num_qubits", Trace.int (Circuit.num_qubits left));
        ("left_gates", Trace.int (Circuit.length left));
        ("right_gates", Trace.int (Circuit.length right));
      ]
  @@ fun () ->
  Metrics_registry.incr "analysis.phase_poly.compares";
  if Circuit.num_qubits left <> Circuit.num_qubits right then
    Inconclusive
      (Printf.sprintf "register widths differ (%d vs %d qubits)"
         (Circuit.num_qubits left) (Circuit.num_qubits right))
  else begin
    (* compare canonical forms when both sides admit one; otherwise both
       fall back to sequential segmentation (mixing the two would
       misreport skeleton mismatches) *)
    let a, b =
      match
        (summarize_canonical ~eps left, summarize_canonical ~eps right)
      with
      | Some a, Some b -> (a, b)
      | _ -> (summarize_sequential ~eps left, summarize_sequential ~eps right)
    in
    if List.length a.blocks <> List.length b.blocks then
      Inconclusive
        (Printf.sprintf
           "non-linear skeletons differ (%d vs %d boundary blocks)"
           (List.length a.blocks) (List.length b.blocks))
    else begin
      let skeleton = ref None in
      List.iteri
        (fun i (ba, bb) ->
          if !skeleton = None then skeleton := block_diff eps i ba bb)
        (List.combine a.blocks b.blocks);
      match !skeleton with
      | Some reason -> Inconclusive reason
      | None ->
        let verdict = ref Equivalent in
        List.iteri
          (fun i (sa, sb) ->
            if !verdict = Equivalent then
              match segment_diff eps sa sb with
              | Some detail -> verdict := Inequivalent { segment = i; detail }
              | None -> ())
          (List.combine a.segments b.segments);
        (match !verdict with
        | Equivalent -> ()
        | _ -> Metrics_registry.incr "analysis.phase_poly.mismatches");
        !verdict
    end
  end
