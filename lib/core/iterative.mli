(** Iterative recompilation (paper Sec. VII, the contemporary works
    [70, 71]): re-compile the QAOA circuit with updated gate orders and
    keep the best result, stopping when several consecutive rounds bring
    no improvement.

    The paper cites a 10x-600x compilation-time penalty for this family
    with a qiskit backend; this module exists to quantify the same
    quality/time trade-off against single-shot IP/IC on our backend (see
    the ablation bench). *)

type objective = Depth | Gate_count | Success_probability

val objective_name : objective -> string

type result = {
  best : Compile.result;
  rounds : int;  (** compilations performed *)
  improvements : int;  (** rounds that improved the objective *)
  total_time : float;
      (** CPU seconds across all rounds (alias of [total_cpu_s], kept
          for existing consumers) *)
  total_wall_s : float;  (** wall-clock seconds across all rounds *)
  total_cpu_s : float;  (** CPU seconds across all rounds *)
}

val compile :
  ?patience:int ->
  ?max_rounds:int ->
  ?objective:objective ->
  ?base:Compile.options ->
  strategy:Compile.strategy ->
  Qaoa_hardware.Device.t ->
  Problem.t ->
  Ansatz.params ->
  result
(** Repeatedly invoke {!Compile.compile} with fresh seeds (seed, seed+1,
    ...), keeping the best circuit under [objective] (default [Depth];
    [Success_probability] requires device calibration).  Stops after
    [patience] consecutive non-improving rounds (default 5) or
    [max_rounds] total (default 50). *)
