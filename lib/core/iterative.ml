module Metrics = Qaoa_circuit.Metrics
module Device = Qaoa_hardware.Device

type objective = Depth | Gate_count | Success_probability

let objective_name = function
  | Depth -> "depth"
  | Gate_count -> "gate-count"
  | Success_probability -> "success-probability"

type result = {
  best : Compile.result;
  rounds : int;
  improvements : int;
  total_time : float;
  total_wall_s : float;
  total_cpu_s : float;
}

(* Lower is better for every objective (success probability negated). *)
let score objective device (r : Compile.result) =
  match objective with
  | Depth -> float_of_int r.Compile.metrics.Metrics.depth
  | Gate_count -> float_of_int r.Compile.metrics.Metrics.gate_count
  | Success_probability -> -.Compile.success_probability device r

let compile ?(patience = 5) ?(max_rounds = 50) ?(objective = Depth)
    ?(base = Compile.default_options) ~strategy device problem params =
  if patience < 1 || max_rounds < 1 then
    invalid_arg "Iterative.compile: patience and max_rounds must be >= 1";
  Qaoa_obs.Trace.with_span "core.iterative.compile"
    ~attrs:
      [
        ("strategy", Qaoa_obs.Trace.str (Compile.strategy_name strategy));
        ("objective", Qaoa_obs.Trace.str (objective_name objective));
      ]
  @@ fun () ->
  let w0 = Qaoa_obs.Clock.wall () in
  let t0 = Sys.time () in
  let compile_round i =
    Compile.compile
      ~options:{ base with Compile.seed = base.Compile.seed + i }
      ~strategy device problem params
  in
  let first = compile_round 0 in
  let best = ref first in
  let best_score = ref (score objective device first) in
  let rounds = ref 1 in
  let improvements = ref 0 in
  let stale = ref 0 in
  while !stale < patience && !rounds < max_rounds do
    let candidate = compile_round !rounds in
    incr rounds;
    let s = score objective device candidate in
    if s < !best_score then begin
      best := candidate;
      best_score := s;
      incr improvements;
      stale := 0
    end
    else incr stale
  done;
  let total_cpu_s = Sys.time () -. t0 in
  {
    best = !best;
    rounds = !rounds;
    improvements = !improvements;
    total_time = total_cpu_s;
    total_wall_s = Qaoa_obs.Clock.wall () -. w0;
    total_cpu_s;
  }
