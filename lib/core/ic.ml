module Gate = Qaoa_circuit.Gate
module Device = Qaoa_hardware.Device
module Profile = Qaoa_hardware.Profile
module Mapping = Qaoa_backend.Mapping
module Router = Qaoa_backend.Router
module Stitcher = Qaoa_backend.Stitcher
module Float_matrix = Qaoa_util.Float_matrix
module Rng = Qaoa_util.Rng
module Trace = Qaoa_obs.Trace
module Metrics_registry = Qaoa_obs.Metrics_registry

type config = {
  packing_limit : int option;
  variation_aware : bool;
  router : Router.config;
}

let default_config =
  {
    packing_limit = None;
    variation_aware = false;
    router = Router.default_config;
  }

let form_layer ?packing_limit rng ~dist ~phys remaining =
  (match packing_limit with
  | Some l when l < 1 -> invalid_arg "Ic.form_layer: packing limit < 1"
  | _ -> ());
  let distance (a, b) = Float_matrix.get dist (phys a) (phys b) in
  (* Ascending distance, ties random (shuffle + stable sort). *)
  let sorted =
    List.stable_sort
      (fun x y -> compare (distance x) (distance y))
      (Rng.shuffle_list rng remaining)
  in
  let cap = Option.value ~default:max_int packing_limit in
  let used = Hashtbl.create 16 in
  let layer = ref [] and rest = ref [] and size = ref 0 in
  List.iter
    (fun (a, b) ->
      if
        !size < cap && (not (Hashtbl.mem used a)) && not (Hashtbl.mem used b)
      then begin
        Hashtbl.replace used a ();
        Hashtbl.replace used b ();
        layer := (a, b) :: !layer;
        incr size
      end
      else rest := (a, b) :: !rest)
    sorted;
  (List.rev !layer, List.rev !rest)

let compile ?(config = default_config) ?(measure = true) rng device ~initial
    problem params =
  Trace.with_span "core.ic.compile"
    ~attrs:
      [
        ("num_vars", Trace.int problem.Problem.num_vars);
        ("variation_aware", Trace.bool config.variation_aware);
        ( "packing_limit",
          match config.packing_limit with
          | Some l -> Trace.int l
          | None -> Trace.str "none" );
      ]
  @@ fun () ->
  let num_logical = problem.Problem.num_vars in
  let dist = Profile.distance_matrix ~variation_aware:config.variation_aware device in
  (* VIC's variation awareness extends to SWAP insertion: the backend
     scores swaps with the same reliability-weighted distances, so qubit
     movement also avoids unreliable couplings (cf. VQM, Sec. III). *)
  let config =
    if config.variation_aware then
      {
        config with
        router = { config.router with Router.reliability_aware = true };
      }
    else config
  in
  let p = Ansatz.levels params in
  let mapping = ref initial in
  let partials = ref [] in
  let route_partial layers =
    Metrics_registry.incr "ic.route_partials";
    let r =
      Router.route_layers ~config:config.router ~device ~initial:!mapping
        ~num_logical layers
    in
    mapping := r.Router.final_mapping;
    partials := r :: !partials
  in
  (* Hadamard wall at the initial mapping. *)
  route_partial [ List.init num_logical (fun q -> Gate.H q) ];
  for level = 0 to p - 1 do
    let gamma = params.Ansatz.gammas.(level) in
    let rec cost_layers remaining =
      if remaining <> [] then begin
        Qaoa_obs.Deadline.check config.router.Router.deadline;
        let layer, rest =
          form_layer ?packing_limit:config.packing_limit rng ~dist
            ~phys:(Mapping.phys !mapping) remaining
        in
        if Qaoa_obs.Config.enabled () then begin
          Metrics_registry.incr "ic.layers_formed";
          Metrics_registry.observe "ic.layer_size"
            (float_of_int (List.length layer))
        end;
        route_partial
          [ List.map (Ansatz.cphase_gate problem ~gamma) layer ];
        cost_layers rest
      end
    in
    cost_layers (Problem.cphase_pairs problem);
    (* Linear terms are one-qubit and commute with the CPHASEs; emit them
       after the pair layers, then the mixer wall. *)
    (match Ansatz.linear_gates problem ~gamma with
    | [] -> ()
    | rzs -> route_partial [ rzs ]);
    route_partial [ Ansatz.mixer_gates problem ~beta:params.Ansatz.betas.(level) ]
  done;
  if measure then
    route_partial [ List.init num_logical (fun q -> Gate.Measure q) ];
  Stitcher.stitch_results (List.rev !partials)
