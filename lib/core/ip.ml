module Rng = Qaoa_util.Rng
module Trace = Qaoa_obs.Trace
module Metrics_registry = Qaoa_obs.Metrics_registry

let rank problem =
  let ops = Problem.ops_per_qubit problem in
  fun (a, b) -> ops.(a) + ops.(b)

let minimum_layers = Problem.max_ops_per_qubit

let moq_of_pairs num_vars pairs =
  let ops = Array.make num_vars 0 in
  List.iter
    (fun (a, b) ->
      ops.(a) <- ops.(a) + 1;
      ops.(b) <- ops.(b) + 1)
    pairs;
  Array.fold_left max 0 ops

let sort_by_rank_desc rng rank_of pairs =
  (* Shuffle first so that equal-rank gates are ordered randomly under the
     stable sort (Fig. 4(d): "similar ranked CPHASE operations are ordered
     randomly"). *)
  List.stable_sort
    (fun a b -> compare (rank_of b) (rank_of a))
    (Rng.shuffle_list rng pairs)

(* One packing round (Fig. 4(e,f)): MOQ layers of bins, first-fit in rank
   order; gates that fit nowhere are returned for the next round. *)
let pack_round ?packing_limit num_vars sorted =
  let moq = max 1 (moq_of_pairs num_vars sorted) in
  let occupied = Array.make_matrix moq num_vars false in
  let sizes = Array.make moq 0 in
  let layers = Array.make moq [] in
  let cap = Option.value ~default:max_int packing_limit in
  let unassigned =
    List.filter
      (fun (a, b) ->
        let rec try_layer l =
          if l >= moq then true (* keep for the next round *)
          else if
            (not occupied.(l).(a)) && (not occupied.(l).(b)) && sizes.(l) < cap
          then begin
            occupied.(l).(a) <- true;
            occupied.(l).(b) <- true;
            sizes.(l) <- sizes.(l) + 1;
            layers.(l) <- (a, b) :: layers.(l);
            false
          end
          else try_layer (l + 1)
        in
        try_layer 0)
      sorted
  in
  let formed =
    Array.to_list layers |> List.filter_map (function
      | [] -> None
      | l -> Some (List.rev l))
  in
  (formed, unassigned)

let pack_layers ?packing_limit rng problem =
  (match packing_limit with
  | Some l when l < 1 -> invalid_arg "Ip.pack_layers: packing limit < 1"
  | _ -> ());
  Trace.with_span "core.ip.pack_layers"
    ~attrs:
      [ ("pairs", Trace.int (List.length (Problem.cphase_pairs problem))) ]
  @@ fun () ->
  let rank_of = rank problem in
  let num_vars = problem.Problem.num_vars in
  let rec rounds pairs acc =
    match pairs with
    | [] -> List.concat (List.rev acc)
    | _ ->
      Metrics_registry.incr "ip.pack_rounds";
      let sorted = sort_by_rank_desc rng rank_of pairs in
      let formed, unassigned = pack_round ?packing_limit num_vars sorted in
      if Qaoa_obs.Config.enabled () then
        List.iter
          (fun layer ->
            Metrics_registry.observe "ip.layer_size"
              (float_of_int (List.length layer)))
          formed;
      (* [pack_round] always places at least the first gate of a non-empty
         round, so this terminates. *)
      rounds unassigned (formed :: acc)
  in
  rounds (Problem.cphase_pairs problem) []

let order rng problem = List.concat (pack_layers rng problem)
