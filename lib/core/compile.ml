module Circuit = Qaoa_circuit.Circuit
module Metrics = Qaoa_circuit.Metrics
module Device = Qaoa_hardware.Device
module Mapping = Qaoa_backend.Mapping
module Router = Qaoa_backend.Router
module Rng = Qaoa_util.Rng
module Trace = Qaoa_obs.Trace
module Clock = Qaoa_obs.Clock

type strategy =
  | Naive
  | Greedy_v
  | Greedy_e
  | Vqa_alloc
  | Qaim
  | Ip
  | Ic of int option
  | Vic of int option

let strategy_name = function
  | Naive -> "NAIVE"
  | Greedy_v -> "GreedyV"
  | Greedy_e -> "GreedyE"
  | Vqa_alloc -> "VQA"
  | Qaim -> "QAIM"
  | Ip -> "IP"
  | Ic None -> "IC"
  | Ic (Some l) -> Printf.sprintf "IC(limit=%d)" l
  | Vic None -> "VIC"
  | Vic (Some l) -> Printf.sprintf "VIC(limit=%d)" l

let all_strategies =
  [ Naive; Greedy_v; Greedy_e; Vqa_alloc; Qaim; Ip; Ic None; Vic None ]

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Some Naive
  | "greedyv" | "greedy_v" -> Some Greedy_v
  | "greedye" | "greedy_e" -> Some Greedy_e
  | "vqa" -> Some Vqa_alloc
  | "qaim" -> Some Qaim
  | "ip" -> Some Ip
  | "ic" -> Some (Ic None)
  | "vic" -> Some (Vic None)
  | _ -> None

type options = {
  seed : int;
  measure : bool;
  peephole : bool;
  verify : bool;
  router : Router.config;
  qaim : Qaim.config;
}

let default_options =
  {
    seed = 42;
    measure = true;
    peephole = false;
    verify = false;
    router = Router.default_config;
    qaim = Qaim.default_config;
  }

type phase_time = { phase : string; wall_s : float; cpu_s : float }

type result = {
  strategy : strategy;
  circuit : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  swap_count : int;
  compile_time : float;
  compile_wall_s : float;
  compile_cpu_s : float;
  phase_times : phase_time list;
  metrics : Metrics.t;
}

let phase_wall result name =
  List.fold_left
    (fun acc pt -> if pt.phase = name then acc +. pt.wall_s else acc)
    0.0 result.phase_times

let random_orders rng problem ~p =
  List.init p (fun _ -> Naive.cphase_order rng problem)

(* Route the whole ansatz in one backend call (NAIVE / GreedyV / GreedyE /
   QAIM / IP paths). *)
let route_whole options device problem params ~initial ~orders =
  let circuit =
    Ansatz.circuit ~measure:options.measure ~orders problem params
  in
  Router.route ~config:options.router ~device ~initial circuit

let compile ?(options = default_options) ~strategy device problem params =
  if problem.Problem.num_vars > Device.num_qubits device then
    invalid_arg "Compile.compile: problem larger than device";
  let rng = Rng.create options.seed in
  let p = Ansatz.levels params in
  Trace.with_span "core.compile.compile"
    ~attrs:
      [
        ("strategy", Trace.str (strategy_name strategy));
        ("device", Trace.str device.Device.name);
        ("num_vars", Trace.int problem.Problem.num_vars);
        ("p", Trace.int p);
      ]
  @@ fun () ->
  let w0 = Clock.wall () and c0 = Clock.cpu () in
  (* Per-phase breakdown, recorded whether or not tracing is enabled;
     when it is, each phase is also a span under the compile root. *)
  let phases = ref [] in
  let timed phase f =
    let v, wall_s, cpu_s = Trace.timed ("core.compile." ^ phase) f in
    phases := { phase; wall_s; cpu_s } :: !phases;
    v
  in
  (* The RNG draw order below (mapping, then ordering, then routing)
     matches the pre-phase-breakdown code path, keeping every seeded
     result bit-identical. *)
  let initial =
    timed "mapping" (fun () ->
        match strategy with
        | Naive -> Naive.initial_mapping rng device problem
        | Greedy_v -> Greedy_mapper.greedy_v rng device problem
        | Greedy_e -> Greedy_mapper.greedy_e rng device problem
        | Vqa_alloc -> Vqa.initial_mapping rng device problem
        | Qaim | Ip | Ic _ | Vic _ ->
          Qaim.initial_mapping ~config:options.qaim rng device problem)
  in
  let orders =
    timed "ordering" (fun () ->
        match strategy with
        | Naive | Greedy_v | Greedy_e | Vqa_alloc | Qaim ->
          Some (random_orders rng problem ~p)
        | Ip -> Some (List.init p (fun _ -> Ip.order rng problem))
        | Ic _ | Vic _ ->
          (* IC/VIC interleave ordering with routing: layer formation
             happens against the live mapping inside [Ic.compile]. *)
          None)
  in
  let routed =
    timed "routing" (fun () ->
        match (strategy, orders) with
        | _, Some orders ->
          route_whole options device problem params ~initial ~orders
        | (Ic packing_limit | Vic packing_limit), None ->
          let config =
            {
              Ic.packing_limit;
              variation_aware = (match strategy with Vic _ -> true | _ -> false);
              router = options.router;
            }
          in
          Ic.compile ~config ~measure:options.measure rng device ~initial
            problem params
        | _, None -> assert false)
  in
  (* Translation validation runs on the routed (pre-decomposition)
     circuit: decomposition rewrites CPHASE/SWAP into basis gates, after
     which the checker's gate accounting no longer applies.  The logical
     reference uses the orders actually compiled when they are known;
     IC/VIC pick their own orders, but any order of the commuting
     cost-layer gates is the same multiset and the same state. *)
  if options.verify then
    timed "verify" (fun () ->
        let logical =
          Ansatz.circuit ~measure:options.measure ?orders problem params
        in
        Qaoa_verify.Check.validate_exn ~device ~initial
          ~final:routed.Router.final_mapping
          ~swap_count:routed.Router.swap_count ~logical routed.Router.circuit);
  let routed =
    timed "decomposition" (fun () ->
        if options.peephole then
          {
            routed with
            Router.circuit =
              Qaoa_circuit.Optimize.circuit
                (Qaoa_circuit.Decompose.circuit routed.Router.circuit);
          }
        else routed)
  in
  let metrics =
    timed "metrics" (fun () -> Metrics.of_circuit routed.Router.circuit)
  in
  let compile_wall_s = Clock.wall () -. w0 in
  let compile_cpu_s = Clock.cpu () -. c0 in
  {
    strategy;
    circuit = routed.Router.circuit;
    initial_mapping = initial;
    final_mapping = routed.Router.final_mapping;
    swap_count = routed.Router.swap_count;
    compile_time = compile_cpu_s;
    compile_wall_s;
    compile_cpu_s;
    phase_times = List.rev !phases;
    metrics;
  }

let success_probability ?include_readout device result =
  Success.of_circuit ?include_readout
    (Device.calibration_exn device)
    result.circuit

let logical_outcome result physical_bits =
  let m = result.final_mapping in
  let n = Mapping.num_logical m in
  let out = ref 0 in
  for l = 0 to n - 1 do
    if physical_bits land (1 lsl Mapping.phys m l) <> 0 then
      out := !out lor (1 lsl l)
  done;
  !out
