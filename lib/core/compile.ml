module Circuit = Qaoa_circuit.Circuit
module Metrics = Qaoa_circuit.Metrics
module Device = Qaoa_hardware.Device
module Mapping = Qaoa_backend.Mapping
module Router = Qaoa_backend.Router
module Rng = Qaoa_util.Rng
module Trace = Qaoa_obs.Trace
module Clock = Qaoa_obs.Clock
module Metrics_registry = Qaoa_obs.Metrics_registry

type strategy =
  | Naive
  | Greedy_v
  | Greedy_e
  | Vqa_alloc
  | Qaim
  | Ip
  | Ic of int option
  | Vic of int option

let strategy_name = function
  | Naive -> "NAIVE"
  | Greedy_v -> "GreedyV"
  | Greedy_e -> "GreedyE"
  | Vqa_alloc -> "VQA"
  | Qaim -> "QAIM"
  | Ip -> "IP"
  | Ic None -> "IC"
  | Ic (Some l) -> Printf.sprintf "IC(limit=%d)" l
  | Vic None -> "VIC"
  | Vic (Some l) -> Printf.sprintf "VIC(limit=%d)" l

let all_strategies =
  [ Naive; Greedy_v; Greedy_e; Vqa_alloc; Qaim; Ip; Ic None; Vic None ]

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Some Naive
  | "greedyv" | "greedy_v" -> Some Greedy_v
  | "greedye" | "greedy_e" -> Some Greedy_e
  | "vqa" -> Some Vqa_alloc
  | "qaim" -> Some Qaim
  | "ip" -> Some Ip
  | "ic" -> Some (Ic None)
  | "vic" -> Some (Vic None)
  | _ -> None

type options = {
  seed : int;
  measure : bool;
  peephole : bool;
  verify : bool;
  lint : bool;
  analyze : bool;
  deadline_s : float option;
  router : Router.config;
  qaim : Qaim.config;
}

let default_options =
  {
    seed = 42;
    measure = true;
    peephole = false;
    verify = false;
    lint = false;
    analyze = false;
    deadline_s = None;
    router = Router.default_config;
    qaim = Qaim.default_config;
  }

type error =
  | Too_many_qubits of { needed : int; available : int }
  | Missing_calibration of {
      strategy : strategy;
      coupling : (int * int) option;
    }
  | Unroutable of { strategy : strategy; detail : string }
  | Deadline_exceeded of { budget_s : float; elapsed_s : float }
  | Verification_rejected of { strategy : strategy; detail : string }
  | Strategy_failed of { strategy : strategy; detail : string }

let error_kind = function
  | Too_many_qubits _ -> "too_many_qubits"
  | Missing_calibration _ -> "missing_calibration"
  | Unroutable _ -> "unroutable"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Verification_rejected _ -> "verification_rejected"
  | Strategy_failed _ -> "strategy_failed"

let error_to_string = function
  | Too_many_qubits { needed; available } ->
    Printf.sprintf "problem needs %d qubits but the device has %d" needed
      available
  | Missing_calibration { strategy; coupling = None } ->
    Printf.sprintf "%s requires device calibration but none is attached"
      (strategy_name strategy)
  | Missing_calibration { strategy; coupling = Some (u, v) } ->
    Printf.sprintf "%s: calibration records no rate for coupling (%d, %d)"
      (strategy_name strategy) u v
  | Unroutable { strategy; detail } ->
    Printf.sprintf "%s: unroutable: %s" (strategy_name strategy) detail
  | Deadline_exceeded { budget_s; elapsed_s } ->
    Printf.sprintf "deadline exceeded: %.3fs elapsed of a %.3fs budget"
      elapsed_s budget_s
  | Verification_rejected { strategy; detail } ->
    Printf.sprintf "%s: translation validation rejected the circuit: %s"
      (strategy_name strategy) detail
  | Strategy_failed { strategy; detail } ->
    Printf.sprintf "%s failed: %s" (strategy_name strategy) detail

exception Error of error

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Compile.Error: " ^ error_to_string e)
    | _ -> None)

let raise_error e =
  Metrics_registry.incr ("compile.error." ^ error_kind e);
  raise (Error e)

let strategy_needs_calibration = function
  | Vqa_alloc | Vic _ -> true
  | Naive | Greedy_v | Greedy_e | Qaim | Ip | Ic _ -> false

type phase_time = { phase : string; wall_s : float; cpu_s : float }

type result = {
  strategy : strategy;
  circuit : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  swap_count : int;
  compile_time : float;
  compile_wall_s : float;
  compile_cpu_s : float;
  phase_times : phase_time list;
  metrics : Metrics.t;
  static : Qaoa_analysis.Dataflow.summary option;
  lint_findings : Qaoa_analysis.Lint.finding list;
}

let phase_wall result name =
  List.fold_left
    (fun acc pt -> if pt.phase = name then acc +. pt.wall_s else acc)
    0.0 result.phase_times

let random_orders rng problem ~p =
  List.init p (fun _ -> Naive.cphase_order rng problem)

(* Route the whole ansatz in one backend call (NAIVE / GreedyV / GreedyE /
   QAIM / IP paths). *)
let route_whole options device problem params ~initial ~orders =
  let circuit =
    Ansatz.circuit ~measure:options.measure ~orders problem params
  in
  Router.route ~config:options.router ~device ~initial circuit

let compile ?(options = default_options) ~strategy device problem params =
  let needed = problem.Problem.num_vars
  and available = Device.num_qubits device in
  if needed > available then
    raise_error (Too_many_qubits { needed; available });
  if
    strategy_needs_calibration strategy
    && Option.is_none device.Device.calibration
  then raise_error (Missing_calibration { strategy; coupling = None });
  (* A per-compile wall-clock budget is threaded into the router config,
     whose loops (and the IC layer former, and SABRE) poll it
     cooperatively.  The clock starts here, so mapping/ordering phases
     that route nothing still count against the budget once routing
     begins polling. *)
  let options =
    match options.deadline_s with
    | None -> options
    | Some budget_s ->
      let dl = Qaoa_obs.Deadline.start ~budget_s in
      {
        options with
        router = { options.router with Router.deadline = Some dl };
      }
  in
  let rng = Rng.create options.seed in
  let p = Ansatz.levels params in
  try
    Trace.with_span "core.compile.compile"
    ~attrs:
      [
        ("strategy", Trace.str (strategy_name strategy));
        ("device", Trace.str device.Device.name);
        ("num_vars", Trace.int problem.Problem.num_vars);
        ("p", Trace.int p);
      ]
  @@ fun () ->
  let w0 = Clock.wall () and c0 = Clock.cpu () in
  (* Per-phase breakdown, recorded whether or not tracing is enabled;
     when it is, each phase is also a span under the compile root. *)
  let phases = ref [] in
  let timed phase f =
    let v, wall_s, cpu_s = Trace.timed ("core.compile." ^ phase) f in
    phases := { phase; wall_s; cpu_s } :: !phases;
    v
  in
  (* The RNG draw order below (mapping, then ordering, then routing)
     matches the pre-phase-breakdown code path, keeping every seeded
     result bit-identical. *)
  let initial =
    timed "mapping" (fun () ->
        match strategy with
        | Naive -> Naive.initial_mapping rng device problem
        | Greedy_v -> Greedy_mapper.greedy_v rng device problem
        | Greedy_e -> Greedy_mapper.greedy_e rng device problem
        | Vqa_alloc -> Vqa.initial_mapping rng device problem
        | Qaim | Ip | Ic _ | Vic _ ->
          Qaim.initial_mapping ~config:options.qaim rng device problem)
  in
  let orders =
    timed "ordering" (fun () ->
        match strategy with
        | Naive | Greedy_v | Greedy_e | Vqa_alloc | Qaim ->
          Some (random_orders rng problem ~p)
        | Ip -> Some (List.init p (fun _ -> Ip.order rng problem))
        | Ic _ | Vic _ ->
          (* IC/VIC interleave ordering with routing: layer formation
             happens against the live mapping inside [Ic.compile]. *)
          None)
  in
  let routed =
    timed "routing" (fun () ->
        match (strategy, orders) with
        | _, Some orders ->
          route_whole options device problem params ~initial ~orders
        | (Ic packing_limit | Vic packing_limit), None ->
          let config =
            {
              Ic.packing_limit;
              variation_aware = (match strategy with Vic _ -> true | _ -> false);
              router = options.router;
            }
          in
          Ic.compile ~config ~measure:options.measure rng device ~initial
            problem params
        | _, None -> assert false)
  in
  (* Translation validation runs on the routed (pre-decomposition)
     circuit: decomposition rewrites CPHASE/SWAP into basis gates, after
     which the checker's gate accounting no longer applies.  The logical
     reference uses the orders actually compiled when they are known;
     IC/VIC pick their own orders, but any order of the commuting
     cost-layer gates is the same multiset and the same state. *)
  if options.verify then
    timed "verify" (fun () ->
        let logical =
          Ansatz.circuit ~measure:options.measure ?orders problem params
        in
        Qaoa_verify.Check.validate_exn ~device ~initial
          ~final:routed.Router.final_mapping
          ~swap_count:routed.Router.swap_count ~logical routed.Router.circuit);
  let routed =
    timed "decomposition" (fun () ->
        if options.peephole then
          {
            routed with
            Router.circuit =
              Qaoa_circuit.Optimize.circuit
                (Qaoa_circuit.Decompose.circuit routed.Router.circuit);
          }
        else routed)
  in
  let metrics =
    timed "metrics" (fun () -> Metrics.of_circuit routed.Router.circuit)
  in
  let static =
    if not options.analyze then None
    else
      Some
        (timed "analyze" (fun () ->
             (* the commutation depth lower bound and the measured depth
                must share a gate basis, so analyze the decomposed
                circuit (Metrics decomposes internally the same way) *)
             let s =
               Qaoa_analysis.Dataflow.analyze
                 (Qaoa_circuit.Decompose.circuit routed.Router.circuit)
             in
             let lb = s.Qaoa_analysis.Dataflow.lower_bound in
             Trace.add_attr "lower_bound" (Trace.int lb);
             Trace.add_attr "total_slack"
               (Trace.int s.Qaoa_analysis.Dataflow.total_slack);
             if lb > 0 then
               Metrics_registry.observe "compile.depth_over_lower_bound"
                 (float_of_int metrics.Metrics.depth /. float_of_int lb);
             s))
  in
  let lint_findings =
    if not options.lint then []
    else
      timed "lint" (fun () ->
          Qaoa_analysis.Lint.run
            (Qaoa_analysis.Lint.context ~device ~role:Qaoa_analysis.Lint.Compiled
               routed.Router.circuit))
  in
  let compile_wall_s = Clock.wall () -. w0 in
  let compile_cpu_s = Clock.cpu () -. c0 in
  {
    strategy;
    circuit = routed.Router.circuit;
    initial_mapping = initial;
    final_mapping = routed.Router.final_mapping;
    swap_count = routed.Router.swap_count;
    compile_time = compile_cpu_s;
    compile_wall_s;
    compile_cpu_s;
    phase_times = List.rev !phases;
    metrics;
    static;
    lint_findings;
  }
  with
  | Router.Unroutable detail -> raise_error (Unroutable { strategy; detail })
  | Qaoa_obs.Deadline.Exceeded { budget_s; elapsed_s } ->
    raise_error (Deadline_exceeded { budget_s; elapsed_s })
  | Qaoa_verify.Check.Verification_failed r ->
    raise_error
      (Verification_rejected
         { strategy; detail = Qaoa_verify.Check.report_to_string r })

let compile_result ?options ~strategy device problem params =
  match compile ?options ~strategy device problem params with
  | r -> Ok r
  | exception Error e -> Result.Error e
  | exception (Invalid_argument detail | Failure detail) ->
    (* Residual ad-hoc failures from strategy internals (e.g. a mapper
       hitting an uncalibrated edge through a path the pre-checks do not
       cover) degrade to a structured error instead of escaping. *)
    let e = Strategy_failed { strategy; detail } in
    Metrics_registry.incr ("compile.error." ^ error_kind e);
    Result.Error e

let default_chain = [ Vic None; Ic None; Ip; Qaim; Greedy_e; Naive ]

type attempt = {
  attempt_strategy : strategy;
  attempt_seed : int;
  attempt_error : error option;
}

type fallback = {
  fallback_result : result;
  attempts : attempt list;
}

(* Whether retrying the same strategy with a fresh seed could plausibly
   succeed.  Structural impossibilities (register too small, calibration
   absent) and an exhausted budget cannot be reseeded away. *)
let retryable = function
  | Unroutable _ | Verification_rejected _ | Strategy_failed _ -> true
  | Too_many_qubits _ | Missing_calibration _ | Deadline_exceeded _ -> false

exception Found of result
exception Out_of_time

let compile_with_fallback ?(options = default_options) ?(chain = default_chain)
    ?(retries = 1) device problem params =
  if chain = [] then invalid_arg "Compile.compile_with_fallback: empty chain";
  if retries < 0 then
    invalid_arg "Compile.compile_with_fallback: negative retries";
  Trace.with_span "core.compile.fallback"
    ~attrs:
      [
        ("chain", Trace.int (List.length chain));
        ("device", Trace.str device.Device.name);
      ]
  @@ fun () ->
  (* One wall-clock budget for the whole chain: every attempt compiles
     under whatever remains, so a stalling early strategy cannot starve
     the cheap late fallbacks of their error reporting - the chain stops
     with a [Deadline_exceeded] trail instead. *)
  let deadline =
    Option.map
      (fun budget_s -> Qaoa_obs.Deadline.start ~budget_s)
      options.deadline_s
  in
  let attempts = ref [] in
  let attempt_index = ref 0 in
  let record strat seed err =
    attempts :=
      { attempt_strategy = strat; attempt_seed = seed; attempt_error = err }
      :: !attempts
  in
  try
    List.iter
      (fun strat ->
        let tries = ref 0 in
        let continue = ref true in
        while !continue && !tries <= retries do
          let opts =
            match deadline with
            | None -> options
            | Some dl ->
              let remaining_s = Qaoa_obs.Deadline.remaining_s dl in
              if remaining_s <= 0.0 then raise Out_of_time;
              { options with deadline_s = Some remaining_s }
          in
          (* First attempt uses the caller's seed verbatim; reseeds are a
             deterministic function of the global attempt index, so the
             whole fallback trail replays bit-identically. *)
          let seed =
            if !attempt_index = 0 then options.seed
            else options.seed + (7919 * !attempt_index)
          in
          incr attempt_index;
          Metrics_registry.incr "compile.fallback.attempts";
          match
            compile_result ~options:{ opts with seed } ~strategy:strat device
              problem params
          with
          | Ok r ->
            record strat seed None;
            raise (Found r)
          | Result.Error e ->
            record strat seed (Some e);
            (match e with
            | Deadline_exceeded _ when Option.is_some deadline ->
              raise Out_of_time
            | _ -> ());
            if retryable e then incr tries else continue := false
        done)
      chain;
    Metrics_registry.incr "compile.fallback.exhausted";
    Result.Error (List.rev !attempts)
  with
  | Found r ->
    if List.length !attempts > 1 then
      Metrics_registry.incr "compile.fallback.recovered";
    Ok { fallback_result = r; attempts = List.rev !attempts }
  | Out_of_time ->
    Metrics_registry.incr "compile.fallback.exhausted";
    Result.Error (List.rev !attempts)

let success_probability ?include_readout device result =
  Success.of_circuit ?include_readout
    (Device.calibration_exn device)
    result.circuit

let logical_outcome result physical_bits =
  let m = result.final_mapping in
  let n = Mapping.num_logical m in
  let out = ref 0 in
  for l = 0 to n - 1 do
    if physical_bits land (1 lsl Mapping.phys m l) <> 0 then
      out := !out lor (1 lsl l)
  done;
  !out
