module Graph = Qaoa_graph.Graph
module Device = Qaoa_hardware.Device
module Profile = Qaoa_hardware.Profile
module Mapping = Qaoa_backend.Mapping
module Float_matrix = Qaoa_util.Float_matrix
module Rng = Qaoa_util.Rng
module Trace = Qaoa_obs.Trace
module Metrics_registry = Qaoa_obs.Metrics_registry

type config = { strength_order : int; weighted_by_ops : bool }

let default_config = { strength_order = 2; weighted_by_ops = false }

let argmax_random rng score = function
  | [] -> invalid_arg "Qaim: no candidates"
  | first :: rest ->
    let best, _, _ =
      List.fold_left
        (fun (bx, bs, nties) x ->
          let s = score x in
          if s > bs then (x, s, 1)
          else if s = bs then
            let nties = nties + 1 in
            if Rng.int rng nties = 0 then (x, bs, nties) else (bx, bs, nties)
          else (bx, bs, nties))
        (first, score first, 1)
        rest
    in
    best

let initial_mapping ?(config = default_config) rng device problem =
  let n = problem.Problem.num_vars in
  let num_physical = Device.num_qubits device in
  if n > num_physical then
    invalid_arg "Qaim.initial_mapping: problem larger than device";
  Trace.with_span "core.qaim.initial_mapping"
    ~attrs:[ ("num_vars", Trace.int n); ("num_physical", Trace.int num_physical) ]
  @@ fun () ->
  let strength =
    Profile.connectivity_profile ~order:config.strength_order device
  in
  let dist = Profile.hop_distances device in
  let pg = Problem.interaction_graph problem in
  let ops = Problem.ops_per_qubit problem in
  (* Step 1: logical qubits in descending CPHASE-count order (random
     tie-break via pre-shuffle + stable sort). *)
  let order =
    List.stable_sort
      (fun a b -> compare ops.(b) ops.(a))
      (Rng.shuffle_list rng (List.init n (fun i -> i)))
  in
  let l2p = Array.make n (-1) in
  let allocated = Hashtbl.create n in
  let free_qubits () =
    List.filter
      (fun p -> not (Hashtbl.mem allocated p))
      (List.init num_physical (fun i -> i))
  in
  let by_strength cands =
    argmax_random rng (fun p -> float_of_int strength.(p)) cands
  in
  let place l p =
    Metrics_registry.incr "qaim.placements";
    l2p.(l) <- p;
    Hashtbl.replace allocated p ()
  in
  (* Steps 2-4. *)
  List.iter
    (fun l ->
      let placed_neighbors =
        List.filter (fun nb -> l2p.(nb) >= 0) (Graph.neighbors pg l)
      in
      if placed_neighbors = [] then place l (by_strength (free_qubits ()))
      else begin
        (* Free physical neighbors of the placed neighbors' locations. *)
        let candidate_set = Hashtbl.create 8 in
        List.iter
          (fun nb ->
            List.iter
              (fun p ->
                if not (Hashtbl.mem allocated p) then
                  Hashtbl.replace candidate_set p ())
              (Graph.neighbors device.Device.coupling l2p.(nb)))
          placed_neighbors;
        let candidates = Hashtbl.fold (fun p () acc -> p :: acc) candidate_set [] in
        let candidates =
          if candidates = [] then free_qubits () else candidates
        in
        let pair_weight nb =
          if config.weighted_by_ops then
            (* Approximate the per-pair multiplicity by the neighbor's
               total operation count; exact multiplicity is 1 per level
               for QAOA, where this reduces to the unweighted metric
               scaled per neighbor. *)
            float_of_int (max 1 ops.(nb))
          else 1.0
        in
        let cumulative_distance p =
          List.fold_left
            (fun acc nb ->
              acc +. (pair_weight nb *. Float_matrix.get dist p l2p.(nb)))
            0.0 placed_neighbors
        in
        let metric p =
          float_of_int strength.(p) /. Float.max 1e-9 (cumulative_distance p)
        in
        Metrics_registry.incr "qaim.candidates_scored"
          ~by:(List.length candidates);
        place l (argmax_random rng metric candidates)
      end)
    order;
  Mapping.of_array ~num_physical l2p
