(** Unified compilation entry point - one call dispatching to the NAIVE
    baseline, the initial-mapping baselines (GreedyV, GreedyE), and the
    paper's four methodologies (QAIM, IP, IC, VIC), all driven through the
    same backend router so their results are directly comparable, exactly
    as in the paper's evaluation (Sec. V). *)

type strategy =
  | Naive  (** random mapping + random CPHASE order *)
  | Greedy_v  (** GreedyV mapping + random order *)
  | Greedy_e  (** GreedyE mapping + random order *)
  | Vqa_alloc  (** VQA reliability-aware allocation + random order *)
  | Qaim  (** QAIM mapping + random order *)
  | Ip  (** QAIM mapping + IP-parallelized order *)
  | Ic of int option  (** QAIM + incremental compilation (packing limit) *)
  | Vic of int option  (** QAIM + variation-aware IC (packing limit) *)

val strategy_name : strategy -> string

val all_strategies : strategy list
(** [Naive; Greedy_v; Greedy_e; Vqa_alloc; Qaim; Ip; Ic None; Vic None].
    [Vqa_alloc] and [Vic] require device calibration. *)

val strategy_of_string : string -> strategy option
(** Parse "naive" | "greedyv" | "greedye" | "vqa" | "qaim" | "ip" | "ic"
    | "vic" (case-insensitive). *)

type options = {
  seed : int;  (** drives every randomized choice (default 42) *)
  measure : bool;  (** append measurements (default true) *)
  peephole : bool;
      (** run {!Qaoa_circuit.Optimize} on the decomposed compiled circuit
          (CNOT cancellation across SWAP/CPHASE lowerings; default
          false to keep the paper's metrics unassisted) *)
  verify : bool;
      (** run {!Qaoa_verify.Check} translation validation on the routed
          circuit before decomposition; a rejection surfaces as
          {!Error} [(Verification_rejected _)] (semantic checks
          auto-skip past
          {!Qaoa_verify.Check.default_max_semantic_qubits} qubits;
          default false) *)
  lint : bool;
      (** run the {!Qaoa_analysis.Lint} rules on the compiled circuit
          (role [Compiled], against the target device) and record the
          findings in [result.lint_findings]; accounted as the ["lint"]
          phase in the per-phase breakdown.  Findings never fail the
          compile - callers decide (the CLI's [--lint] exits non-zero on
          ERROR findings; default false) *)
  analyze : bool;
      (** run the {!Qaoa_analysis.Dataflow} commutation-DAG analysis on
          the decomposed compiled circuit and record the summary in
          [result.static]; accounted as the ["analyze"] phase.  The
          summary's [lower_bound] is policy-independent, so all 7
          policies can be compared against the same floor; the
          ["compile.depth_over_lower_bound"] histogram records
          [metrics.depth / lower_bound] (default false) *)
  deadline_s : float option;
      (** wall-clock budget for one compile; the routing loops poll it
          cooperatively, surfacing {!Error} [(Deadline_exceeded _)] at
          the next poll past the budget.  [compile_with_fallback]
          interprets it as the budget of the {e whole} chain.  Must be
          positive when given (default [None] = unbounded) *)
  router : Qaoa_backend.Router.config;
  qaim : Qaim.config;
}

val default_options : options

(** {1 Failure taxonomy}

    Everything that can go wrong during a compile, as data: fault-
    injection sweeps and fallback chains match on these instead of
    parsing exception strings. *)

type error =
  | Too_many_qubits of { needed : int; available : int }
      (** The problem has more variables than the device has qubits. *)
  | Missing_calibration of {
      strategy : strategy;
      coupling : (int * int) option;
    }
      (** A calibration-dependent strategy (VQA, VIC) on a device with no
          snapshot ([coupling = None]), or a lookup of a specific
          unrecorded coupling. *)
  | Unroutable of { strategy : strategy; detail : string }
      (** A two-qubit gate's operands sit in disconnected coupling
          components - no SWAP sequence can ever satisfy it (typical
          after fault injection severs a bridge coupling). *)
  | Deadline_exceeded of { budget_s : float; elapsed_s : float }
      (** The cooperative wall-clock budget ran out mid-compile. *)
  | Verification_rejected of { strategy : strategy; detail : string }
      (** [options.verify] was set and translation validation found a
          structural or semantic discrepancy. *)
  | Strategy_failed of { strategy : strategy; detail : string }
      (** Residual ad-hoc failure ([Invalid_argument] / [Failure]) from
          strategy internals, wrapped by {!compile_result}. *)

exception Error of error

val error_kind : error -> string
(** Stable lower-snake-case tag (["unroutable"], ...) - also the suffix
    of the ["compile.error.<kind>"] counters. *)

val error_to_string : error -> string
(** One-line human-readable rendering (also registered as the
    [Printexc] printer for {!Error}). *)

type phase_time = {
  phase : string;
      (** ["mapping"], ["ordering"], ["routing"], ["verify"] (only with
          [options.verify]), ["decomposition"], ["metrics"], ["analyze"]
          (only with [options.analyze]) or ["lint"] (only with
          [options.lint]); for IC/VIC, ordering is interleaved with
          routing inside [Ic.compile] and is accounted under
          ["routing"] *)
  wall_s : float;
  cpu_s : float;
}

type result = {
  strategy : strategy;
  circuit : Qaoa_circuit.Circuit.t;
      (** hardware-compliant circuit on physical qubits *)
  initial_mapping : Qaoa_backend.Mapping.t;
  final_mapping : Qaoa_backend.Mapping.t;
  swap_count : int;
  compile_time : float;
      (** CPU seconds spent compiling — the paper-facing figure (kept as
          an alias of [compile_cpu_s] for existing consumers) *)
  compile_wall_s : float;  (** wall-clock seconds spent compiling *)
  compile_cpu_s : float;  (** CPU seconds spent compiling *)
  phase_times : phase_time list;
      (** per-phase breakdown in execution order; the wall times sum to
          the whole of [compile_wall_s] except a few clock reads *)
  metrics : Qaoa_circuit.Metrics.t;  (** of the decomposed circuit *)
  static : Qaoa_analysis.Dataflow.summary option;
      (** commutation-DAG dataflow summary of the decomposed circuit
          (depth lower bound, critical path, slack, live pressure);
          [None] unless [options.analyze].  Invariant:
          [static.lower_bound <= metrics.depth] for every policy (both
          are computed on the same decomposed gate basis) *)
  lint_findings : Qaoa_analysis.Lint.finding list;
      (** findings of the ["lint"] phase; [[]] unless [options.lint] *)
}

val phase_wall : result -> string -> float
(** Total wall seconds attributed to the named phase ([0.] if absent). *)

val compile :
  ?options:options ->
  strategy:strategy ->
  Qaoa_hardware.Device.t ->
  Problem.t ->
  Ansatz.params ->
  result
(** Compile the p-level QAOA ansatz of the problem for the device.

    {b Reentrancy.}  [compile] is safe to call concurrently from
    multiple domains on shared [device]/[problem] values (the serving
    layer's worker pool does exactly that): every randomized choice
    draws from a per-call [Rng.create options.seed], the router/SABRE
    tie-break streams are seeded per call from [options.router.seed],
    and the only cross-call state - the per-device distance-matrix
    memo ({!Qaoa_hardware.Profile}) and the telemetry registries
    ({!Qaoa_obs}) - is mutex-guarded or domain-sharded.  Identical
    (options, strategy, device, problem, params) inputs produce
    bit-identical circuits on any domain of any worker count.
    @raise Error with the structured taxonomy: [Too_many_qubits] when the
    problem needs more qubits than the device has, [Missing_calibration]
    when VQA/VIC is requested on an uncalibrated device, [Unroutable]
    when operands land in disconnected coupling components,
    [Deadline_exceeded] past [options.deadline_s], and
    [Verification_rejected] when [options.verify] finds a discrepancy. *)

val compile_result :
  ?options:options ->
  strategy:strategy ->
  Qaoa_hardware.Device.t ->
  Problem.t ->
  Ansatz.params ->
  (result, error) Stdlib.result
(** {!compile} as a total function: {!Error} becomes [Error e], and any
    residual [Invalid_argument] / [Failure] from strategy internals
    becomes [Error (Strategy_failed _)].  Each error increments the
    ["compile.error.<kind>"] counter. *)

(** {1 Graceful degradation} *)

val default_chain : strategy list
(** [[Vic None; Ic None; Ip; Qaim; Greedy_e; Naive]] - best methodology
    first, degrading towards the assumption-free baseline.  [Naive] only
    needs a connected-enough register, so a chain ending in it survives
    anything short of a structurally impossible problem. *)

type attempt = {
  attempt_strategy : strategy;
  attempt_seed : int;  (** the seed this attempt compiled under *)
  attempt_error : error option;  (** [None] = the winning attempt *)
}

type fallback = {
  fallback_result : result;  (** the first successful compile *)
  attempts : attempt list;
      (** full trail in execution order; the last entry is the winner
          (its [attempt_error] is [None]), every earlier entry records
          why that strategy/seed was abandoned *)
}

val compile_with_fallback :
  ?options:options ->
  ?chain:strategy list ->
  ?retries:int ->
  Qaoa_hardware.Device.t ->
  Problem.t ->
  Ansatz.params ->
  (fallback, attempt list) Stdlib.result
(** Walk [chain] (default {!default_chain}) until a strategy compiles.
    Each strategy gets [1 + retries] tries (default [retries = 1]): a
    retryable failure (unroutable, verification, residual) is reseeded
    deterministically ([options.seed + 7919 * global_attempt_index];
    the very first attempt uses [options.seed] verbatim), while a
    structural failure (too many qubits, missing calibration) skips
    straight to the next strategy.  [options.deadline_s] budgets the
    {e whole} chain: every attempt compiles under the remaining wall
    clock, and once it is spent the chain stops with the trail so far.
    Never raises on compile failures - [Error trail] reports an
    exhausted chain.  Counters: ["compile.fallback.attempts"],
    ["compile.fallback.recovered"] (a non-first attempt won),
    ["compile.fallback.exhausted"].
    @raise Invalid_argument on an empty [chain] or negative [retries]. *)

val success_probability : ?include_readout:bool -> Qaoa_hardware.Device.t -> result -> float
(** {!Success.of_circuit} on the compiled circuit. *)

val logical_outcome : result -> int -> int
(** Translate a sampled physical bitstring (basis index over device
    qubits) into the logical bitstring via the final mapping: logical bit
    [l] is physical bit [phys(final_mapping, l)]. *)
