(** Unified compilation entry point - one call dispatching to the NAIVE
    baseline, the initial-mapping baselines (GreedyV, GreedyE), and the
    paper's four methodologies (QAIM, IP, IC, VIC), all driven through the
    same backend router so their results are directly comparable, exactly
    as in the paper's evaluation (Sec. V). *)

type strategy =
  | Naive  (** random mapping + random CPHASE order *)
  | Greedy_v  (** GreedyV mapping + random order *)
  | Greedy_e  (** GreedyE mapping + random order *)
  | Vqa_alloc  (** VQA reliability-aware allocation + random order *)
  | Qaim  (** QAIM mapping + random order *)
  | Ip  (** QAIM mapping + IP-parallelized order *)
  | Ic of int option  (** QAIM + incremental compilation (packing limit) *)
  | Vic of int option  (** QAIM + variation-aware IC (packing limit) *)

val strategy_name : strategy -> string

val all_strategies : strategy list
(** [Naive; Greedy_v; Greedy_e; Vqa_alloc; Qaim; Ip; Ic None; Vic None].
    [Vqa_alloc] and [Vic] require device calibration. *)

val strategy_of_string : string -> strategy option
(** Parse "naive" | "greedyv" | "greedye" | "vqa" | "qaim" | "ip" | "ic"
    | "vic" (case-insensitive). *)

type options = {
  seed : int;  (** drives every randomized choice (default 42) *)
  measure : bool;  (** append measurements (default true) *)
  peephole : bool;
      (** run {!Qaoa_circuit.Optimize} on the decomposed compiled circuit
          (CNOT cancellation across SWAP/CPHASE lowerings; default
          false to keep the paper's metrics unassisted) *)
  verify : bool;
      (** run {!Qaoa_verify.Check} translation validation on the routed
          circuit before decomposition, raising
          {!Qaoa_verify.Check.Verification_failed} on any structural or
          semantic discrepancy (semantic checks auto-skip past
          {!Qaoa_verify.Check.default_max_semantic_qubits} qubits;
          default false) *)
  router : Qaoa_backend.Router.config;
  qaim : Qaim.config;
}

val default_options : options

type phase_time = {
  phase : string;
      (** ["mapping"], ["ordering"], ["routing"], ["verify"] (only with
          [options.verify]), ["decomposition"] or ["metrics"]; for
          IC/VIC, ordering is interleaved with routing inside
          [Ic.compile] and is accounted under ["routing"] *)
  wall_s : float;
  cpu_s : float;
}

type result = {
  strategy : strategy;
  circuit : Qaoa_circuit.Circuit.t;
      (** hardware-compliant circuit on physical qubits *)
  initial_mapping : Qaoa_backend.Mapping.t;
  final_mapping : Qaoa_backend.Mapping.t;
  swap_count : int;
  compile_time : float;
      (** CPU seconds spent compiling — the paper-facing figure (kept as
          an alias of [compile_cpu_s] for existing consumers) *)
  compile_wall_s : float;  (** wall-clock seconds spent compiling *)
  compile_cpu_s : float;  (** CPU seconds spent compiling *)
  phase_times : phase_time list;
      (** per-phase breakdown in execution order; the wall times sum to
          the whole of [compile_wall_s] except a few clock reads *)
  metrics : Qaoa_circuit.Metrics.t;  (** of the decomposed circuit *)
}

val phase_wall : result -> string -> float
(** Total wall seconds attributed to the named phase ([0.] if absent). *)

val compile :
  ?options:options ->
  strategy:strategy ->
  Qaoa_hardware.Device.t ->
  Problem.t ->
  Ansatz.params ->
  result
(** Compile the p-level QAOA ansatz of the problem for the device.
    @raise Invalid_argument if the problem needs more qubits than the
    device has, or if VIC is requested on a device without calibration.
    @raise Qaoa_verify.Check.Verification_failed if [options.verify] is
    set and the routed circuit fails translation validation. *)

val success_probability : ?include_readout:bool -> Qaoa_hardware.Device.t -> result -> float
(** {!Success.of_circuit} on the compiled circuit. *)

val logical_outcome : result -> int -> int
(** Translate a sampled physical bitstring (basis index over device
    qubits) into the logical bitstring via the final mapping: logical bit
    [l] is physical bit [phys(final_mapping, l)]. *)
