module Config = Qaoa_obs.Config
open Cmdliner

let sink_conv =
  Arg.conv
    ( (fun s ->
        match Config.sink_of_string s with
        | Some sink -> Ok sink
        | None -> Error (`Msg "expected report | jsonl | chrome | folded")),
      fun ppf s -> Format.pp_print_string ppf (Config.sink_name s) )

let metrics_conv =
  Arg.conv
    ( (fun s ->
        match Config.metrics_format_of_string s with
        | Some f -> Ok f
        | None -> Error (`Msg "expected prometheus | json")),
      fun ppf f -> Format.pp_print_string ppf (Config.metrics_format_name f) )

let trace_arg =
  Arg.(
    value
    & opt (some sink_conv) None
    & info [ "trace" ] ~docv:"SINK" ~docs:Manpage.s_common_options
        ~doc:
          "Enable compiler telemetry: report (span tree on stderr), jsonl, \
           chrome (trace_event JSON for chrome://tracing / Perfetto) or \
           folded (flamegraph.pl input with per-span self time). Equivalent \
           to setting $(b,QAOA_TRACE).")

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info
        [ "trace-file"; "trace-out" ]
        ~docv:"PATH" ~docs:Manpage.s_common_options
        ~doc:
          "Output path for jsonl/chrome/folded traces (default \
           qaoa_trace.jsonl / qaoa_trace.json / qaoa_trace.folded; \
           equivalent to $(b,QAOA_TRACE_FILE)).")

let metrics_arg =
  Arg.(
    value
    & opt (some metrics_conv) None
    & info [ "metrics" ] ~docv:"FORMAT" ~docs:Manpage.s_common_options
        ~doc:
          "Expose merged counters/histograms/span roll-ups at process exit \
           as prometheus text or a self-describing json document. \
           Equivalent to setting $(b,QAOA_METRICS).")

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-file" ] ~docv:"PATH" ~docs:Manpage.s_common_options
        ~doc:
          "Output path for --metrics (default stderr; equivalent to \
           $(b,QAOA_METRICS_FILE)).")

(* A flag-provided sink wins over the environment; a lone --trace-file /
   --metrics-file retargets whatever the environment configured. *)
let apply trace trace_file metrics metrics_file =
  (match (trace, trace_file) with
  | Some sink, _ -> Config.set ?out:trace_file (Some sink)
  | None, Some _ ->
    if Config.sink () <> None then Config.set ?out:trace_file (Config.sink ())
  | None, None -> ());
  match (metrics, metrics_file) with
  | Some format, _ -> Config.set_metrics ?out:metrics_file (Some format)
  | None, Some _ ->
    if Config.metrics_format () <> None then
      Config.set_metrics ?out:metrics_file (Config.metrics_format ())
  | None, None -> ()

let setup =
  Term.(
    const apply $ trace_arg $ trace_file_arg $ metrics_arg $ metrics_file_arg)
