(** Shared Cmdliner terms for the observability layer, wired uniformly
    into every CLI ([qaoa-compile], [qaoa-verify], [qaoa-lint],
    [qaoa-resilience], [qaoa-experiments], [qaoa-solve]):

    - [--trace report|jsonl|chrome|folded] and [--trace-file PATH]
      (alias [--trace-out], kept for compatibility) configure the trace
      sink, like [QAOA_TRACE] / [QAOA_TRACE_FILE];
    - [--metrics prometheus|json] and [--metrics-file PATH] configure
      the metrics exposition written at process exit, like
      [QAOA_METRICS] / [QAOA_METRICS_FILE].

    Evaluating {!setup} applies the configuration as a side effect;
    compose it in front of the command's main term:
    [Term.(const run $ Qaoa_cli.setup $ ...)] with
    [let run () ... = ...]. *)

open Cmdliner

val setup : unit Term.t
