(* Metric names use the pipeline's dotted convention
   ("router.swaps_inserted"); Prometheus names allow [a-zA-Z0-9_:], so
   everything else maps to '_' and the family gets a "qaoa_" prefix. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_name name = "qaoa_" ^ sanitize name

(* %h-style shortest float that survives the round-trip; Prometheus
   accepts scientific notation. Non-finite values (empty histogram
   min/max) render as Prometheus +Inf/-Inf/NaN. *)
let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" f

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Per-span-name roll-up: count / total wall / total CPU. *)
let span_rollup (snapshot : Snapshot.t) =
  let tbl : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun (ev : Trace.event) ->
      match Hashtbl.find_opt tbl ev.Trace.name with
      | Some (n, w, c) ->
        Stdlib.incr n;
        w := !w +. ev.Trace.dur_wall;
        c := !c +. ev.Trace.dur_cpu
      | None ->
        Hashtbl.replace tbl ev.Trace.name
          (ref 1, ref ev.Trace.dur_wall, ref ev.Trace.dur_cpu);
        order := ev.Trace.name :: !order)
    snapshot.Snapshot.spans;
  List.rev_map
    (fun name ->
      let n, w, c = Hashtbl.find tbl name in
      (name, !n, !w, !c))
    !order
  |> List.sort compare

let prometheus_of_snapshot (snapshot : Snapshot.t) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, v) ->
      let m = prom_name name in
      line "# TYPE %s counter" m;
      line "%s %d" m v)
    snapshot.Snapshot.counters;
  List.iter
    (fun (name, st) ->
      let s = Metrics_registry.summary_of_state st in
      let m = prom_name name in
      line "# TYPE %s summary" m;
      line "%s{quantile=\"0.5\"} %s" m (prom_float s.Metrics_registry.p50);
      line "%s{quantile=\"0.9\"} %s" m (prom_float s.Metrics_registry.p90);
      line "%s{quantile=\"0.99\"} %s" m (prom_float s.Metrics_registry.p99);
      line "%s_sum %s" m (prom_float s.Metrics_registry.sum);
      line "%s_count %d" m s.Metrics_registry.count;
      line "# TYPE %s_min gauge" m;
      line "%s_min %s" m (prom_float s.Metrics_registry.min);
      line "# TYPE %s_max gauge" m;
      line "%s_max %s" m (prom_float s.Metrics_registry.max))
    snapshot.Snapshot.histograms;
  (match span_rollup snapshot with
  | [] -> ()
  | rollup ->
    line "# TYPE qaoa_span_count counter";
    List.iter
      (fun (name, n, _, _) ->
        line "qaoa_span_count{name=\"%s\"} %d" (escape_label name) n)
      rollup;
    line "# TYPE qaoa_span_wall_seconds_total counter";
    List.iter
      (fun (name, _, w, _) ->
        line "qaoa_span_wall_seconds_total{name=\"%s\"} %s"
          (escape_label name) (prom_float w))
      rollup;
    line "# TYPE qaoa_span_cpu_seconds_total counter";
    List.iter
      (fun (name, _, _, c) ->
        line "qaoa_span_cpu_seconds_total{name=\"%s\"} %s"
          (escape_label name) (prom_float c))
      rollup);
  line "# TYPE qaoa_dropped_spans_total counter";
  line "qaoa_dropped_spans_total %d" snapshot.Snapshot.dropped_spans;
  Buffer.contents buf

let prometheus_string ?snapshot () =
  prometheus_of_snapshot
    (match snapshot with Some s -> s | None -> Snapshot.capture ())

let summary_json (s : Metrics_registry.summary) =
  Json.Assoc
    [
      ("count", Json.Int s.Metrics_registry.count);
      ("sum", Json.Float s.Metrics_registry.sum);
      ("min", Json.Float s.Metrics_registry.min);
      ("max", Json.Float s.Metrics_registry.max);
      ("mean", Json.Float s.Metrics_registry.mean);
      ("p50", Json.Float s.Metrics_registry.p50);
      ("p90", Json.Float s.Metrics_registry.p90);
      ("p99", Json.Float s.Metrics_registry.p99);
    ]

let json_of_snapshot (snapshot : Snapshot.t) =
  Json.Assoc
    [
      ("schema_version", Json.Int 1);
      ("kind", Json.String "qaoa_metrics");
      ( "counters",
        Json.Assoc
          (List.map (fun (k, v) -> (k, Json.Int v)) snapshot.Snapshot.counters)
      );
      ( "histograms",
        Json.Assoc
          (List.map
             (fun (k, st) ->
               (k, summary_json (Metrics_registry.summary_of_state st)))
             snapshot.Snapshot.histograms) );
      ( "spans",
        Json.Assoc
          (List.map
             (fun (name, n, w, c) ->
               ( name,
                 Json.Assoc
                   [
                     ("count", Json.Int n);
                     ("wall_s", Json.Float w);
                     ("cpu_s", Json.Float c);
                   ] ))
             (span_rollup snapshot)) );
      ("dropped_spans", Json.Int snapshot.Snapshot.dropped_spans);
    ]

let json ?snapshot () =
  json_of_snapshot
    (match snapshot with Some s -> s | None -> Snapshot.capture ())

let json_string ?snapshot () = Json.to_string (json ?snapshot ()) ^ "\n"

let render format snapshot =
  match format with
  | Config.Prometheus -> prometheus_of_snapshot snapshot
  | Config.Json -> Json.to_string (json_of_snapshot snapshot) ^ "\n"

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let flushed = ref false

let write ?path () =
  match Config.metrics_format () with
  | None -> ()
  | Some format -> (
    flushed := true;
    let contents = render format (Snapshot.capture ()) in
    let target =
      match (path, Config.metrics_out ()) with
      | Some p, _ -> Some p
      | None, Some p -> Some p
      | None, None -> None
    in
    match target with
    | None -> prerr_string contents
    | Some p -> (
      (* An unwritable metrics file must not abort the process (nor the
         at-exit flush of an otherwise successful run): warn and drop. *)
      match write_file p contents with
      | () ->
        Printf.eprintf "qaoa_obs: wrote %s metrics to %s\n%!"
          (Config.metrics_format_name format)
          p
      | exception Sys_error msg ->
        Printf.eprintf "qaoa_obs: cannot write metrics: %s\n%!" msg))
