type t = { budget_s : float; start_wall : float }

exception Exceeded of { budget_s : float; elapsed_s : float }

let () =
  Printexc.register_printer (function
    | Exceeded { budget_s; elapsed_s } ->
      Some
        (Printf.sprintf "Deadline.Exceeded(budget %.3fs, elapsed %.3fs)"
           budget_s elapsed_s)
    | _ -> None)

let start ~budget_s =
  if not (Float.is_finite budget_s) || budget_s <= 0.0 then
    invalid_arg "Deadline.start: budget must be positive and finite";
  { budget_s; start_wall = Clock.wall () }

let budget_s t = t.budget_s
let elapsed_s t = Clock.wall () -. t.start_wall
let remaining_s t = t.budget_s -. elapsed_s t
let expired t = remaining_s t <= 0.0

let check = function
  | None -> ()
  | Some t ->
    let elapsed_s = elapsed_s t in
    if elapsed_s >= t.budget_s then
      raise (Exceeded { budget_s = t.budget_s; elapsed_s })

let remaining_opt = function
  | None -> None
  | Some t -> Some (Float.max 1e-9 (remaining_s t))
