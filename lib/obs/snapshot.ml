type t = {
  counters : (string * int) list;
  histograms : (string * Metrics_registry.hist_state) list;
  spans : Trace.event list;
  dropped_spans : int;
}

(* Canonical total order on events: start time first (the natural
   reading order of a merged multi-domain stream), then domain and id to
   break ties deterministically. *)
let compare_event (a : Trace.event) (b : Trace.event) =
  compare
    (a.Trace.start_wall, a.Trace.domain, a.Trace.id, a.Trace.name)
    (b.Trace.start_wall, b.Trace.domain, b.Trace.id, b.Trace.name)

let canonical_spans spans = List.sort compare_event spans

let empty =
  { counters = []; histograms = []; spans = []; dropped_spans = 0 }

let capture () =
  let counters, histograms = Metrics_registry.dump () in
  {
    counters;
    histograms;
    spans = canonical_spans (Trace.events ());
    dropped_spans = Trace.dropped_count ();
  }

let counter t name = Option.value ~default:0 (List.assoc_opt name t.counters)
let histogram t name = List.assoc_opt name t.histograms

let summary t name =
  Option.map Metrics_registry.summary_of_state (histogram t name)

(* Merge two sorted-by-name assoc lists, combining values on key
   collision — keeps merge O(n) and canonically ordered. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ra, (kb, vb) :: rb ->
    let c = compare ka kb in
    if c < 0 then (ka, va) :: merge_assoc combine ra b
    else if c > 0 then (kb, vb) :: merge_assoc combine a rb
    else (ka, combine va vb) :: merge_assoc combine ra rb

let sort_hist_samples (st : Metrics_registry.hist_state) =
  let a = Array.copy st.Metrics_registry.h_samples in
  Array.sort compare a;
  { st with Metrics_registry.h_samples = a }

let merge a b =
  {
    counters = merge_assoc ( + ) a.counters b.counters;
    histograms =
      merge_assoc
        (fun x y -> sort_hist_samples (Metrics_registry.merge_hist_state x y))
        a.histograms b.histograms;
    spans = canonical_spans (a.spans @ b.spans);
    dropped_spans = a.dropped_spans + b.dropped_spans;
  }

let equal a b = a = b
