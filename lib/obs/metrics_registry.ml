module Stats = Qaoa_util.Stats

let window = 4096

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
  samples : float array;  (** ring buffer of the last [window] values *)
}

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64
let hists_tbl : (string, hist) Hashtbl.t = Hashtbl.create 64

let incr ?(by = 1) name =
  if Config.enabled () then
    match Hashtbl.find_opt counters_tbl name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace counters_tbl name (ref by)

let observe name v =
  if Config.enabled () then begin
    let h =
      match Hashtbl.find_opt hists_tbl name with
      | Some h -> h
      | None ->
        let h =
          {
            count = 0;
            sum = 0.0;
            min = Float.infinity;
            max = Float.neg_infinity;
            samples = Array.make window 0.0;
          }
        in
        Hashtbl.replace hists_tbl name h;
        h
    in
    h.samples.(h.count mod window) <- v;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min then h.min <- v;
    if v > h.max then h.max <- v
  end

let counter name =
  match Hashtbl.find_opt counters_tbl name with Some r -> !r | None -> 0

let counters () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters_tbl []
  |> List.sort compare

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary_of_hist (h : hist) =
  let n = Stdlib.min h.count window in
  let a = Array.sub h.samples 0 n in
  Array.sort compare a;
  {
    count = h.count;
    sum = h.sum;
    min = h.min;
    max = h.max;
    mean = (if h.count = 0 then Float.nan else h.sum /. float_of_int h.count);
    p50 = Stats.percentile_sorted_array 50.0 a;
    p90 = Stats.percentile_sorted_array 90.0 a;
    p99 = Stats.percentile_sorted_array 99.0 a;
  }

let summary name =
  Option.map summary_of_hist (Hashtbl.find_opt hists_tbl name)

let histograms () =
  Hashtbl.fold (fun k h acc -> (k, summary_of_hist h) :: acc) hists_tbl []
  |> List.sort compare

let reset () =
  Hashtbl.reset counters_tbl;
  Hashtbl.reset hists_tbl
