module Stats = Qaoa_util.Stats

let window = 4096

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
  samples : float array;  (** ring buffer of the last [window] values *)
}

(* One shard per domain, reached through Domain.DLS so the hot recording
   path never contends with other domains.  Every shard carries its own
   mutex: the owning domain takes it per record (uncontended in steady
   state, so ~a compare-and-swap), readers take it while copying, which
   makes merged reads exact even while other domains keep recording.
   Shards of terminated domains stay registered so their telemetry keeps
   contributing to merged reads. *)
type shard = {
  lock : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let registry_lock = Mutex.create ()
let shards : shard list ref = ref []

let make_shard () =
  let s =
    {
      lock = Mutex.create ();
      counters = Hashtbl.create 64;
      hists = Hashtbl.create 64;
    }
  in
  Mutex.protect registry_lock (fun () -> shards := s :: !shards);
  s

let shard_key : shard Domain.DLS.key = Domain.DLS.new_key make_shard
let my_shard () = Domain.DLS.get shard_key
let shard_count () = Mutex.protect registry_lock (fun () -> List.length !shards)
let all_shards () = Mutex.protect registry_lock (fun () -> !shards)

let incr ?(by = 1) name =
  if Config.enabled () then begin
    let s = my_shard () in
    Mutex.protect s.lock (fun () ->
        match Hashtbl.find_opt s.counters name with
        | Some r -> r := !r + by
        | None -> Hashtbl.replace s.counters name (ref by))
  end

let observe name v =
  if Config.enabled () then begin
    let s = my_shard () in
    Mutex.protect s.lock (fun () ->
        let h =
          match Hashtbl.find_opt s.hists name with
          | Some h -> h
          | None ->
            let h =
              {
                count = 0;
                sum = 0.0;
                min = Float.infinity;
                max = Float.neg_infinity;
                samples = Array.make window 0.0;
              }
            in
            Hashtbl.replace s.hists name h;
            h
        in
        h.samples.(h.count mod window) <- v;
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.min then h.min <- v;
        if v > h.max then h.max <- v)
  end

(* --- merged, purely-functional reads --- *)

type hist_state = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_samples : float array;
}

let hist_state_of (h : hist) =
  let n = Stdlib.min h.count window in
  {
    h_count = h.count;
    h_sum = h.sum;
    h_min = h.min;
    h_max = h.max;
    h_samples = Array.sub h.samples 0 n;
  }

let merge_hist_state a b =
  {
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_min = Float.min a.h_min b.h_min;
    h_max = Float.max a.h_max b.h_max;
    h_samples = Array.append a.h_samples b.h_samples;
  }

(* [dump] copies out of every shard under its lock and merges the
   copies, so a read never mutates shard state: reading a shard twice
   (or concurrently from two consumers) cannot double-count, and
   [h_count]/[h_sum]/[h_min]/[h_max] stay exact however many shards a
   metric was recorded on.  Retained samples (for percentiles) are
   merged and sorted, making the result independent of shard
   registration order. *)
let dump () =
  let counters_tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let hists_tbl : (string, hist_state) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.iter
            (fun k r ->
              let prev =
                Option.value ~default:0 (Hashtbl.find_opt counters_tbl k)
              in
              Hashtbl.replace counters_tbl k (prev + !r))
            s.counters;
          Hashtbl.iter
            (fun k h ->
              let st = hist_state_of h in
              match Hashtbl.find_opt hists_tbl k with
              | Some prev ->
                Hashtbl.replace hists_tbl k (merge_hist_state prev st)
              | None -> Hashtbl.replace hists_tbl k st)
            s.hists))
    (all_shards ());
  let counters =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters_tbl []
    |> List.sort compare
  in
  let hists =
    Hashtbl.fold
      (fun k st acc ->
        Array.sort compare st.h_samples;
        (k, st) :: acc)
      hists_tbl []
    |> List.sort compare
  in
  (counters, hists)

let counter name =
  List.fold_left
    (fun acc s ->
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.counters name with
          | Some r -> acc + !r
          | None -> acc))
    0 (all_shards ())

let counters () = fst (dump ())

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary_of_state (st : hist_state) =
  let a = Array.copy st.h_samples in
  Array.sort compare a;
  {
    count = st.h_count;
    sum = st.h_sum;
    min = st.h_min;
    max = st.h_max;
    mean =
      (if st.h_count = 0 then Float.nan
       else st.h_sum /. float_of_int st.h_count);
    p50 = Stats.percentile_sorted_array 50.0 a;
    p90 = Stats.percentile_sorted_array 90.0 a;
    p99 = Stats.percentile_sorted_array 99.0 a;
  }

let summary name =
  Option.map summary_of_state (List.assoc_opt name (snd (dump ())))

let histograms () =
  List.map (fun (k, st) -> (k, summary_of_state st)) (snd (dump ()))

let reset () =
  List.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.reset s.counters;
          Hashtbl.reset s.hists))
    (all_shards ())
