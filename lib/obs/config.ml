type sink = Report | Jsonl | Chrome

let sink_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "report" | "tree" -> Some Report
  | "jsonl" | "json-lines" -> Some Jsonl
  | "chrome" | "trace" | "perfetto" -> Some Chrome
  | _ -> None

let sink_name = function
  | Report -> "report"
  | Jsonl -> "jsonl"
  | Chrome -> "chrome"

let enabled_flag = ref false
let current_sink : sink option ref = ref None
let current_out : string option ref = ref None
let epoch = Unix.gettimeofday ()

let set ?out sink =
  current_sink := sink;
  (match out with Some _ -> current_out := out | None -> ());
  enabled_flag := Option.is_some sink

let enabled () = !enabled_flag
let sink () = !current_sink
let out_path () = !current_out

(* Environment-driven setup at module load: QAOA_TRACE selects the sink,
   QAOA_TRACE_FILE the output path.  An unrecognized value is reported
   once on stderr rather than silently ignored. *)
let () =
  match Sys.getenv_opt "QAOA_TRACE" with
  | None | Some "" -> ()
  | Some v -> (
    match sink_of_string v with
    | Some s -> set ?out:(Sys.getenv_opt "QAOA_TRACE_FILE") (Some s)
    | None ->
      Printf.eprintf
        "qaoa_obs: ignoring QAOA_TRACE=%s (expected report|jsonl|chrome)\n%!"
        v)
