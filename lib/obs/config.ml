type sink = Report | Jsonl | Chrome | Folded

let sink_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "report" | "tree" -> Some Report
  | "jsonl" | "json-lines" -> Some Jsonl
  | "chrome" | "trace" | "perfetto" -> Some Chrome
  | "folded" | "flamegraph" -> Some Folded
  | _ -> None

let sink_name = function
  | Report -> "report"
  | Jsonl -> "jsonl"
  | Chrome -> "chrome"
  | Folded -> "folded"

type metrics_format = Prometheus | Json

let metrics_format_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "prometheus" | "prom" | "openmetrics" -> Some Prometheus
  | "json" -> Some Json
  | _ -> None

let metrics_format_name = function Prometheus -> "prometheus" | Json -> "json"

let enabled_flag = ref false
let current_sink : sink option ref = ref None
let current_out : string option ref = ref None
let current_metrics : metrics_format option ref = ref None
let current_metrics_out : string option ref = ref None
let epoch = Unix.gettimeofday ()

(* Recording is on whenever any consumer (trace sink or metrics
   exposition) is configured; both feed off the same registries. *)
let recompute_enabled () =
  enabled_flag := Option.is_some !current_sink || Option.is_some !current_metrics

let set ?out sink =
  current_sink := sink;
  (match out with Some _ -> current_out := out | None -> ());
  recompute_enabled ()

let set_metrics ?out format =
  current_metrics := format;
  (match out with Some _ -> current_metrics_out := out | None -> ());
  recompute_enabled ()

let enabled () = !enabled_flag
let sink () = !current_sink
let out_path () = !current_out
let metrics_format () = !current_metrics
let metrics_out () = !current_metrics_out

(* Environment-driven setup at module load: QAOA_TRACE selects the sink,
   QAOA_TRACE_FILE the output path; QAOA_METRICS selects the metrics
   exposition format, QAOA_METRICS_FILE its output path.  An
   unrecognized value is reported once on stderr rather than silently
   ignored. *)
let () =
  (match Sys.getenv_opt "QAOA_TRACE" with
  | None | Some "" -> ()
  | Some v -> (
    match sink_of_string v with
    | Some s -> set ?out:(Sys.getenv_opt "QAOA_TRACE_FILE") (Some s)
    | None ->
      Printf.eprintf
        "qaoa_obs: ignoring QAOA_TRACE=%s (expected report|jsonl|chrome|folded)\n%!"
        v));
  match Sys.getenv_opt "QAOA_METRICS" with
  | None | Some "" -> ()
  | Some v -> (
    match metrics_format_of_string v with
    | Some f -> set_metrics ?out:(Sys.getenv_opt "QAOA_METRICS_FILE") (Some f)
    | None ->
      Printf.eprintf
        "qaoa_obs: ignoring QAOA_METRICS=%s (expected prometheus|json)\n%!" v)
