(** Per-compile wall-clock budgets with cooperative cancellation.

    A deadline is started once at the top of a bounded operation (one
    compile, one fallback chain) and then checked from the hot loops of
    the router, SABRE and incremental compilation.  A check past the
    budget raises {!Exceeded}; callers translate that into their own
    structured error (e.g. [Compile.Deadline_exceeded]) so a slow or
    adversarial instance aborts promptly instead of hanging the whole
    batch.

    Checks read the wall clock ({!Clock.wall}), so cancellation latency
    is one loop iteration of the checking code - microseconds for the
    routing loops, far below any realistic budget. *)

type t

exception Exceeded of { budget_s : float; elapsed_s : float }
(** Raised by {!check} once the budget is spent. *)

val start : budget_s:float -> t
(** Start a deadline [budget_s] seconds from now.
    @raise Invalid_argument if [budget_s] is not positive and finite. *)

val budget_s : t -> float
val elapsed_s : t -> float

val remaining_s : t -> float
(** Seconds left; negative once the deadline has passed. *)

val expired : t -> bool

val check : t option -> unit
(** [check (Some d)] raises {!Exceeded} when [d] has passed; [check None]
    is free.  The [option] form matches how configs carry deadlines. *)

val remaining_opt : t option -> float option
(** Remaining budget in a shape directly usable as a nested operation's
    own budget (e.g. [Compile.options.deadline_s], which must be
    positive): [None] stays unbounded, an expired deadline clamps to a
    tiny positive epsilon so the nested operation's first cooperative
    check trips immediately.  Callers wanting the raw (possibly
    negative) figure use {!remaining_s}. *)
