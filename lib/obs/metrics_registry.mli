(** Domain-sharded named counters and histograms.

    Counters count discrete work items ([incr "router.swaps_inserted"]);
    histograms record distributions ([observe "router.layer_size" 7.])
    and summarize with percentiles via [Qaoa_util.Stats].

    Recording goes to a per-domain shard reached through [Domain.DLS],
    so concurrent domains never contend with each other; each shard is
    protected by its own (steady-state uncontended) mutex, so merged
    reads taken while other domains are still recording are exact.
    Reads ({!counter}, {!summary}, {!counters}, {!histograms}, {!dump})
    merge all shards — including those of terminated domains — without
    mutating them: reading twice yields identical results (no
    drain-and-add double counting).

    Like spans, recording is gated on {!Config.enabled} so disabled call
    sites cost a [bool] dereference. *)

val incr : ?by:int -> string -> unit
val observe : string -> float -> unit

val counter : string -> int
(** Current merged value across all shards; [0] for a name never
    incremented. *)

val counters : unit -> (string * int) list
(** All counters merged across shards, sorted by name. *)

type summary = {
  count : int;  (** total observations, exact across shards *)
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
      (** percentiles are computed over the merged retained windows (up
          to {!val-window} recent observations per shard);
          [count]/[sum]/[min]/[max]/[mean] are exact over all
          observations on all shards *)
}

val window : int
(** Number of recent observations retained per histogram shard for
    percentile estimation (4096). *)

val summary : string -> summary option
val histograms : unit -> (string * summary) list
(** All histograms with their merged summaries, sorted by name. *)

type hist_state = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_samples : float array;  (** retained recent observations, sorted *)
}
(** Raw mergeable histogram state, the substrate of {!Snapshot}. *)

val merge_hist_state : hist_state -> hist_state -> hist_state
(** Exact on [h_count]/[h_sum]/[h_min]/[h_max]; concatenates retained
    samples. (The result's [h_samples] is not re-sorted — sort before
    computing percentiles, as {!summary_of_state} does.) *)

val summary_of_state : hist_state -> summary

val dump : unit -> (string * int) list * (string * hist_state) list
(** One consistent merged copy of every counter and histogram, sorted by
    name; pure — never mutates shard state. *)

val shard_count : unit -> int
(** Number of registered shards (one per domain that ever recorded,
    including terminated domains; for tests/diagnostics). *)

val reset : unit -> unit
(** Clear every counter and histogram on every shard. *)
