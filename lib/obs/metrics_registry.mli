(** Process-global named counters and histograms.

    Counters count discrete work items ([incr "router.swaps_inserted"]);
    histograms record distributions ([observe "router.layer_size" 7.])
    and summarize with percentiles via [Qaoa_util.Stats].

    Like spans, recording is gated on {!Config.enabled} so disabled call
    sites cost a [bool] dereference.  Reading ({!counter}, {!summary},
    {!counters}, {!histograms}) always works on whatever was recorded. *)

val incr : ?by:int -> string -> unit
val observe : string -> float -> unit

val counter : string -> int
(** Current value; [0] for a name never incremented. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

type summary = {
  count : int;  (** total observations *)
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
      (** percentiles are computed over a sliding window of the most
          recent {!val-window} observations; [count]/[sum]/[min]/[max]/
          [mean] are exact over all observations *)
}

val window : int
(** Number of recent observations retained per histogram for
    percentile estimation (4096). *)

val summary : string -> summary option
val histograms : unit -> (string * summary) list
(** All histograms with their summaries, sorted by name. *)

val reset : unit -> unit
(** Drop every counter and histogram. *)
