(** Hierarchical spans with wall-clock {e and} CPU durations, safe under
    OCaml 5 domain parallelism.

    A span is opened with {!with_span} and nests via a {e domain-local}
    span stack ([Domain.DLS]): each domain owns an independent stack and
    completed-event buffer, so concurrent compiles on different domains
    record without contention and without corrupting each other's
    parentage. Events carry their domain id, span ids are unique across
    domains, and {!events} drains all per-domain buffers into one stream
    ordered by completion. A span unwinds correctly on exceptions (it is
    closed and tagged with an ["exn"] attribute) and the stack is
    restored even when the event buffer is full and the closing event is
    dropped.

    Naming convention: [<library>.<module>.<operation>], e.g.
    ["backend.router.route_layers"] or ["core.compile.mapping"].

    When recording is disabled ({!Config.enabled}[ () = false]),
    {!with_span} is a single [bool] dereference plus a direct call of the
    thunk — no allocation, no clock reads. *)

type attr =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

val int : int -> attr
val float : float -> attr
val str : string -> attr
val bool : bool -> attr

type event = {
  name : string;
  id : int;  (** unique per process across domains, allocation order *)
  parent : int;
      (** [id] of the enclosing span on the same domain, [-1] for roots *)
  depth : int;  (** nesting depth within its domain, [0] for roots *)
  domain : int;  (** id of the domain that recorded the span *)
  start_wall : float;  (** absolute wall-clock start ([Clock.wall]) *)
  dur_wall : float;  (** wall-clock seconds *)
  dur_cpu : float;  (** CPU seconds *)
  attrs : (string * attr) list;
}

val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()]; when recording is enabled, the call
    is recorded as a span named [name] nested under the innermost open
    span of the calling domain. Exceptions propagate after the span is
    closed and tagged with an ["exn"] attribute. *)

val timed : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a * float * float
(** [timed name f] is [with_span name f] that {e always} measures and
    returns [(value, wall_seconds, cpu_seconds)], whether or not tracing
    is enabled — the measurement substrate for always-on figures such as
    [Compile.result.phase_times]. *)

val instant : ?attrs:(string * attr) list -> string -> unit
(** Zero-duration marker event at the calling domain's current stack
    position. *)

val add_attr : string -> attr -> unit
(** Attach an attribute to the calling domain's innermost open span
    (no-op when recording is disabled or no span is open). *)

val events : unit -> event list
(** Completed spans from every domain, in global completion order
    (children before their parent). *)

val span_count : unit -> int
val dropped_count : unit -> int
(** Spans discarded after the buffer cap was hit. *)

val set_max_events : int -> unit
(** Process-wide buffer cap across all domains; default 1_000_000.
    Further spans are counted as dropped (their stacks still unwind). *)

val current_depth : unit -> int
(** Number of currently open spans on the calling domain (for tests /
    invariant checks). *)

val domains_seen : unit -> int
(** Number of domains that ever recorded a span (including terminated
    ones; for tests/diagnostics). *)

val reset : unit -> unit
(** Drop all recorded events and dropped counts on every domain; open
    spans survive (they will record on close). *)
