(** Hierarchical spans with wall-clock {e and} CPU durations.

    A span is opened with {!with_span}, nests via a process-global span
    stack (the pipeline is single-domain; a domain-local stack is the
    natural extension if that changes), unwinds correctly on exceptions
    (the span is closed and tagged with an ["exn"] attribute), and is
    recorded into an in-memory buffer drained by {!Exporter}.

    Naming convention: [<library>.<module>.<operation>], e.g.
    ["backend.router.route_layers"] or ["core.compile.mapping"].

    When tracing is disabled ({!Config.enabled}[ () = false]),
    {!with_span} is a single [bool] dereference plus a direct call of the
    thunk — no allocation, no clock reads. *)

type attr =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

val int : int -> attr
val float : float -> attr
val str : string -> attr
val bool : bool -> attr

type event = {
  name : string;
  id : int;  (** unique per process, allocation order *)
  parent : int;  (** [id] of the enclosing span, [-1] for roots *)
  depth : int;  (** nesting depth, [0] for roots *)
  start_wall : float;  (** absolute wall-clock start ([Clock.wall]) *)
  dur_wall : float;  (** wall-clock seconds *)
  dur_cpu : float;  (** CPU seconds *)
  attrs : (string * attr) list;
}

val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()]; when tracing is enabled, the call is
    recorded as a span named [name] nested under the innermost open
    span. Exceptions propagate after the span is closed and tagged with
    an ["exn"] attribute. *)

val timed : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a * float * float
(** [timed name f] is [with_span name f] that {e always} measures and
    returns [(value, wall_seconds, cpu_seconds)], whether or not tracing
    is enabled — the measurement substrate for always-on figures such as
    [Compile.result.phase_times]. *)

val instant : ?attrs:(string * attr) list -> string -> unit
(** Zero-duration marker event at the current stack position. *)

val add_attr : string -> attr -> unit
(** Attach an attribute to the innermost open span (no-op when tracing
    is disabled or no span is open). *)

val events : unit -> event list
(** Completed spans in completion order (children before their parent). *)

val span_count : unit -> int
val dropped_count : unit -> int
(** Spans discarded after the buffer cap was hit. *)

val set_max_events : int -> unit
(** Buffer cap; default 1_000_000. Further spans are counted as dropped. *)

val current_depth : unit -> int
(** Number of currently open spans (for tests / invariant checks). *)

val reset : unit -> unit
(** Drop all recorded events and dropped counts; open spans survive
    (they will record on close). *)
