(** Minimal self-contained JSON tree: enough to serialize telemetry
    (Chrome trace events, JSONL, bench results) and to parse exports back
    in tests — no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. Non-finite floats serialize as
    [null] to stay within strict JSON. *)

val to_channel : out_channel -> t -> unit

val of_string : string -> t
(** Strict-ish recursive-descent parser for the output of {!to_string}
    (objects, arrays, strings with escapes, numbers, booleans, null).
    @raise Failure on malformed input. *)

val of_string_opt : string -> t option

val member : string -> t -> t option
(** [member key (Assoc ...)] is the value bound to [key], if any; [None]
    on non-objects. *)

val to_float : t -> float option
(** Numeric payload of [Int]/[Float] nodes. *)
