type status = Pass | Regressed | Baseline_only | Current_only | Info

let status_name = function
  | Pass -> "ok"
  | Regressed -> "REGRESSED"
  | Baseline_only -> "MISSING"
  | Current_only -> "new"
  | Info -> "info"

type row = {
  metric : string;
  baseline : float option;
  current : float option;
  rel_change : float option;
      (** (current - baseline) / baseline; [infinity] when baseline = 0
          and current > 0 *)
  threshold : float option;
      (** max allowed relative increase; [None] = informational *)
  status : status;
}

type report = {
  rows : row list;
  baseline_scale : string option;
  current_scale : string option;
}

let regressions report =
  List.length
    (List.filter
       (fun r -> r.status = Regressed || r.status = Baseline_only)
       report.rows)

let regressed report = regressions report > 0

(* --- BENCH_results.json accessors --- *)

let scale_of doc =
  match Json.member "scale" doc with Some (Json.String s) -> Some s | _ -> None

let kernels_of doc =
  match Json.member "kernels" doc with
  | Some (Json.Assoc kernels) ->
    List.filter_map
      (fun (name, k) ->
        match Option.bind (Json.member "ms_per_run" k) Json.to_float with
        | Some ms -> Some (name, ms)
        | None -> None)
      kernels
  | _ -> failwith "bench-diff: no \"kernels\" object (not a BENCH_results.json?)"

let resilience_int field doc =
  match Json.member "resilience" doc with
  | Some r -> (
    match Json.member field r with Some (Json.Int i) -> Some i | _ -> None)
  | None -> None

(* --- comparison --- *)

let rel_change ~baseline ~current =
  if baseline = 0.0 then if current > 0.0 then Float.infinity else 0.0
  else (current -. baseline) /. baseline

let gate_row ~metric ~threshold ~baseline ~current =
  match (baseline, current) with
  | Some b, Some c ->
    let rel = rel_change ~baseline:b ~current:c in
    let status =
      match threshold with
      | Some t when rel > t -> Regressed
      | Some _ -> Pass
      | None -> Info
    in
    {
      metric;
      baseline = Some b;
      current = Some c;
      rel_change = Some rel;
      threshold;
      status;
    }
  | Some b, None ->
    (* A gated metric that disappeared is a broken contract: renaming or
       deleting a hot-path kernel requires refreshing the baseline. *)
    {
      metric;
      baseline = Some b;
      current = None;
      rel_change = None;
      threshold;
      status = (if threshold = None then Info else Baseline_only);
    }
  | None, Some c ->
    {
      metric;
      baseline = None;
      current = Some c;
      rel_change = None;
      threshold = None;
      status = Current_only;
    }
  | None, None -> assert false

let compare_docs ?(default_threshold = 1.0) ?(min_ms = 0.01) ?(overrides = [])
    ~baseline ~current () =
  let base_kernels = kernels_of baseline in
  let cur_kernels = kernels_of current in
  let names =
    List.sort_uniq compare (List.map fst base_kernels @ List.map fst cur_kernels)
  in
  let kernel_rows =
    List.map
      (fun name ->
        let metric = "kernel." ^ name in
        let b = List.assoc_opt name base_kernels in
        let c = List.assoc_opt name cur_kernels in
        let threshold =
          match List.assoc_opt metric overrides with
          | Some t -> Some t
          | None -> (
            (* below the noise floor a relative gate is meaningless *)
            match b with
            | Some b when b < min_ms -> None
            | _ -> Some default_threshold)
        in
        gate_row ~metric ~threshold ~baseline:b ~current:c)
      names
  in
  let res_row field ~gated =
    match
      (resilience_int field baseline, resilience_int field current)
    with
    | None, None -> []
    | b, c ->
      let metric = "resilience." ^ field in
      let threshold =
        if not gated then None
        else
          match List.assoc_opt metric overrides with
          | Some t -> Some t
          | None -> Some 0.0 (* any increase is a lost compile *)
      in
      [
        gate_row ~metric ~threshold
          ~baseline:(Option.map float_of_int b)
          ~current:(Option.map float_of_int c);
      ]
  in
  {
    rows =
      kernel_rows
      @ res_row "exhausted" ~gated:true
      @ res_row "compiled" ~gated:false
      @ res_row "fallback_recovered" ~gated:false
      @ res_row "instances" ~gated:false;
    baseline_scale = scale_of baseline;
    current_scale = scale_of current;
  }

(* --- reporting --- *)

let opt_float = function
  | Some f when Float.is_finite f -> Printf.sprintf "%10.4f" f
  | Some f -> Printf.sprintf "%10s" (if f > 0.0 then "inf" else "-inf")
  | None -> Printf.sprintf "%10s" "-"

let pct = function
  | Some f when Float.is_finite f -> Printf.sprintf "%+8.1f%%" (100.0 *. f)
  | Some _ -> Printf.sprintf "%9s" "+inf"
  | None -> Printf.sprintf "%9s" "-"

let to_text report =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "bench-diff: baseline scale=%s, current scale=%s%s\n"
       (Option.value ~default:"?" report.baseline_scale)
       (Option.value ~default:"?" report.current_scale)
       (if report.baseline_scale <> report.current_scale then
          " [scale mismatch: resilience rows not comparable]"
        else ""));
  Buffer.add_string buf
    (Printf.sprintf "  %-40s %10s %10s %9s %9s  %s\n" "metric" "baseline"
       "current" "change" "limit" "status");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-40s %s %s %s %s  %s\n" r.metric
           (opt_float r.baseline) (opt_float r.current) (pct r.rel_change)
           (pct r.threshold) (status_name r.status)))
    report.rows;
  let n = regressions report in
  Buffer.add_string buf
    (if n = 0 then "no gated regressions\n"
     else Printf.sprintf "%d gated regression(s)\n" n);
  Buffer.contents buf

let row_json r =
  let f = function Some v -> Json.Float v | None -> Json.Null in
  Json.Assoc
    [
      ("metric", Json.String r.metric);
      ("baseline", f r.baseline);
      ("current", f r.current);
      ("rel_change", f r.rel_change);
      ("threshold", f r.threshold);
      ("status", Json.String (status_name r.status));
    ]

let to_json report =
  let s = function Some v -> Json.String v | None -> Json.Null in
  Json.Assoc
    [
      ("schema_version", Json.Int 1);
      ("baseline_scale", s report.baseline_scale);
      ("current_scale", s report.current_scale);
      ("rows", Json.List (List.map row_json report.rows));
      ("regressions", Json.Int (regressions report));
    ]
