(** Metrics exposition: render a {!Snapshot} (default: capture now) as
    Prometheus/OpenMetrics text or as a self-describing JSON document.

    Prometheus mapping: counters become [counter] families
    ([qaoa_<name>], dots sanitized to underscores), histograms become
    [summary] families (quantiles 0.5/0.9/0.99 over the merged retained
    windows, exact [_sum]/[_count], plus [_min]/[_max] gauges), and
    spans roll up per name into [qaoa_span_count],
    [qaoa_span_wall_seconds_total] and [qaoa_span_cpu_seconds_total]
    labelled by span name.

    Selected per process by [QAOA_METRICS=prometheus|json] (optional
    [QAOA_METRICS_FILE=path]) or the shared [--metrics]/[--metrics-file]
    CLI flags; flushed automatically at process exit, or earlier via
    {!write}. *)

val prometheus_string : ?snapshot:Snapshot.t -> unit -> string
val json : ?snapshot:Snapshot.t -> unit -> Json.t
val json_string : ?snapshot:Snapshot.t -> unit -> string

val render : Config.metrics_format -> Snapshot.t -> string

val flushed : bool ref
(** Set by {!write}; the at-exit flush skips writing when already set. *)

val write : ?path:string -> unit -> unit
(** Export now according to [Config.metrics_format ()]: to [?path], else
    [Config.metrics_out ()], else stderr. No-op when metrics exposition
    was never configured. Marks the automatic at-exit flush as done. *)
