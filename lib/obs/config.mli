(** Global on/off switch and export-sink selection for the observability
    layer.

    Tracing is configured once per process, either from the environment
    ([QAOA_TRACE=report|jsonl|chrome], optional [QAOA_TRACE_FILE=path])
    or programmatically via {!set} (e.g. from a [--trace] CLI flag).
    Every instrumentation call site guards on {!enabled}, a single
    [bool ref] dereference, so the disabled path costs a few nanoseconds
    and allocates nothing. *)

type sink =
  | Report  (** human-readable aggregated span tree, written to stderr *)
  | Jsonl  (** one JSON object per span/counter/histogram, one per line *)
  | Chrome
      (** Chrome [trace_event] JSON, loadable in [chrome://tracing] or
          {{:https://ui.perfetto.dev}Perfetto} *)

val sink_of_string : string -> sink option
(** ["report" | "jsonl" | "chrome"] (case-insensitive). *)

val sink_name : sink -> string

val set : ?out:string -> sink option -> unit
(** [set (Some sink)] enables tracing with the given export sink;
    [set None] disables tracing (recorded data stays until
    [Trace.reset]). [?out] overrides the export path for file sinks
    (default ["qaoa_trace.jsonl"] / ["qaoa_trace.json"], or
    [QAOA_TRACE_FILE]). *)

val enabled : unit -> bool
(** The fast-path guard used by every instrumentation call site. *)

val sink : unit -> sink option
val out_path : unit -> string option
(** Explicit output override, when one was given. *)

val epoch : float
(** Wall-clock process start (module load) — the zero of exported
    trace timestamps. *)
