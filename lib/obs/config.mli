(** Global on/off switch, export-sink selection and metrics-exposition
    selection for the observability layer.

    Tracing is configured once per process, either from the environment
    ([QAOA_TRACE=report|jsonl|chrome|folded], optional
    [QAOA_TRACE_FILE=path]) or programmatically via {!set} (e.g. from a
    [--trace] CLI flag); metrics exposition likewise via
    [QAOA_METRICS=prometheus|json] / [QAOA_METRICS_FILE=path] or
    {!set_metrics} ([--metrics] / [--metrics-file]).  Every
    instrumentation call site guards on {!enabled}, a single [bool ref]
    dereference, so the disabled path costs a few nanoseconds and
    allocates nothing. *)

type sink =
  | Report  (** human-readable aggregated span tree, written to stderr *)
  | Jsonl  (** one JSON object per span/counter/histogram, one per line *)
  | Chrome
      (** Chrome [trace_event] JSON, loadable in [chrome://tracing] or
          {{:https://ui.perfetto.dev}Perfetto} *)
  | Folded
      (** folded stacks ("a;b;c <self-time-us>" lines) for
          [flamegraph.pl] / speedscope, self-time per span path *)

val sink_of_string : string -> sink option
(** ["report" | "jsonl" | "chrome" | "folded"] (case-insensitive). *)

val sink_name : sink -> string

type metrics_format =
  | Prometheus  (** Prometheus/OpenMetrics text exposition *)
  | Json  (** self-describing JSON document *)

val metrics_format_of_string : string -> metrics_format option
(** ["prometheus" | "json"] (case-insensitive; ["prom"] accepted). *)

val metrics_format_name : metrics_format -> string

val set : ?out:string -> sink option -> unit
(** [set (Some sink)] enables tracing with the given export sink;
    [set None] disables the trace sink (recorded data stays until
    [Trace.reset]; recording stays on if metrics exposition is still
    configured). [?out] overrides the export path for file sinks
    (default ["qaoa_trace.jsonl"] / ["qaoa_trace.json"] /
    ["qaoa_trace.folded"], or [QAOA_TRACE_FILE]). *)

val set_metrics : ?out:string -> metrics_format option -> unit
(** Enable/disable metrics exposition ({!Expose.write} and the at-exit
    flush). [?out] overrides the output path (default stderr). *)

val enabled : unit -> bool
(** The fast-path guard used by every instrumentation call site: true
    when a trace sink or a metrics exposition format is configured. *)

val sink : unit -> sink option
val out_path : unit -> string option
(** Explicit trace output override, when one was given. *)

val metrics_format : unit -> metrics_format option
val metrics_out : unit -> string option
(** Explicit metrics output override, when one was given. *)

val epoch : float
(** Wall-clock process start (module load) — the zero of exported
    trace timestamps. *)
