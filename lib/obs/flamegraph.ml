(* Folded-stacks export: one line per distinct span path,
   "root;child;leaf <self-time-us>", the input format of flamegraph.pl
   and speedscope.  Self time is a span's wall duration minus the wall
   duration of its direct children, clamped at zero (children can
   slightly overshoot their parent through clock granularity). *)

let folded_of_snapshot (snapshot : Snapshot.t) =
  let spans = snapshot.Snapshot.spans in
  let by_id : (int, Trace.event) Hashtbl.t = Hashtbl.create 256 in
  let child_wall : (int, float) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (ev : Trace.event) -> Hashtbl.replace by_id ev.Trace.id ev)
    spans;
  List.iter
    (fun (ev : Trace.event) ->
      if ev.Trace.parent >= 0 then
        let prev =
          Option.value ~default:0.0 (Hashtbl.find_opt child_wall ev.Trace.parent)
        in
        Hashtbl.replace child_wall ev.Trace.parent (prev +. ev.Trace.dur_wall))
    spans;
  let multi_domain =
    match spans with
    | [] -> false
    | ev :: rest ->
      List.exists (fun (e : Trace.event) -> e.Trace.domain <> ev.Trace.domain) rest
  in
  let rec path (ev : Trace.event) acc =
    let acc = ev.Trace.name :: acc in
    match Hashtbl.find_opt by_id ev.Trace.parent with
    | Some parent -> path parent acc
    | None ->
      (* Multi-domain streams get one synthetic root frame per domain so
         per-domain flames stay separable. *)
      if multi_domain then Printf.sprintf "domain-%d" ev.Trace.domain :: acc
      else acc
  in
  let totals : (string, float) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (ev : Trace.event) ->
      let self =
        Float.max 0.0
          (ev.Trace.dur_wall
          -. Option.value ~default:0.0 (Hashtbl.find_opt child_wall ev.Trace.id))
      in
      let stack = String.concat ";" (path ev []) in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals stack) in
      Hashtbl.replace totals stack (prev +. self))
    spans;
  Hashtbl.fold (fun stack self acc -> (stack, self) :: acc) totals []
  |> List.sort compare

let folded ?snapshot () =
  folded_of_snapshot
    (match snapshot with Some s -> s | None -> Snapshot.capture ())

let folded_string ?snapshot () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (stack, self_s) ->
      let us = int_of_float (Float.round (self_s *. 1e6)) in
      if us > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" stack us))
    (folded ?snapshot ());
  Buffer.contents buf
