(** The two clocks the telemetry layer distinguishes everywhere:
    wall-clock (what a user waits for) and CPU time (what the paper's
    compile-time figures report). *)

val wall : unit -> float
(** Wall-clock seconds since the Unix epoch ([Unix.gettimeofday]). *)

val cpu : unit -> float
(** Processor seconds used by this process ([Sys.time]). *)
