type attr = Int of int | Float of float | String of string | Bool of bool

let int i = Int i
let float f = Float f
let str s = String s
let bool b = Bool b

type event = {
  name : string;
  id : int;
  parent : int;
  depth : int;
  start_wall : float;
  dur_wall : float;
  dur_cpu : float;
  attrs : (string * attr) list;
}

type open_span = {
  o_name : string;
  o_id : int;
  o_parent : int;
  o_depth : int;
  o_start_wall : float;
  o_start_cpu : float;
  mutable o_attrs : (string * attr) list;
}

let next_id = ref 0
let stack : open_span list ref = ref []
let events_rev : event list ref = ref []
let num_events = ref 0
let dropped = ref 0
let max_events = ref 1_000_000

let set_max_events n = max_events := max 0 n
let span_count () = !num_events
let dropped_count () = !dropped
let current_depth () = List.length !stack
let events () = List.rev !events_rev

let reset () =
  events_rev := [];
  num_events := 0;
  dropped := 0

let record ev =
  if !num_events >= !max_events then incr dropped
  else begin
    events_rev := ev :: !events_rev;
    incr num_events
  end

let fresh_id () =
  let id = !next_id in
  incr next_id;
  id

let open_span attrs name =
  let parent, depth =
    match !stack with
    | sp :: _ -> (sp.o_id, sp.o_depth + 1)
    | [] -> (-1, 0)
  in
  let sp =
    {
      o_name = name;
      o_id = fresh_id ();
      o_parent = parent;
      o_depth = depth;
      o_start_wall = Clock.wall ();
      o_start_cpu = Clock.cpu ();
      o_attrs = attrs;
    }
  in
  stack := sp :: !stack;
  sp

let close_span ?extra sp =
  let dur_wall = Clock.wall () -. sp.o_start_wall in
  let dur_cpu = Clock.cpu () -. sp.o_start_cpu in
  (* Defensive unwind: pop down to (and including) [sp] so a call site
     that leaked an open span cannot poison the stack forever. *)
  let rec pop = function
    | s :: rest -> if s == sp then rest else pop rest
    | [] -> []
  in
  stack := pop !stack;
  let attrs =
    match extra with None -> sp.o_attrs | Some e -> e @ sp.o_attrs
  in
  record
    {
      name = sp.o_name;
      id = sp.o_id;
      parent = sp.o_parent;
      depth = sp.o_depth;
      start_wall = sp.o_start_wall;
      dur_wall;
      dur_cpu;
      attrs;
    }

let with_span ?(attrs = []) name f =
  if not (Config.enabled ()) then f ()
  else begin
    let sp = open_span attrs name in
    match f () with
    | v ->
      close_span sp;
      v
    | exception e ->
      close_span ~extra:[ ("exn", String (Printexc.to_string e)) ] sp;
      raise e
  end

let timed ?attrs name f =
  let w0 = Clock.wall () and c0 = Clock.cpu () in
  let v = with_span ?attrs name f in
  (v, Clock.wall () -. w0, Clock.cpu () -. c0)

let instant ?(attrs = []) name =
  if Config.enabled () then begin
    let parent, depth =
      match !stack with
      | sp :: _ -> (sp.o_id, sp.o_depth + 1)
      | [] -> (-1, 0)
    in
    record
      {
        name;
        id = fresh_id ();
        parent;
        depth;
        start_wall = Clock.wall ();
        dur_wall = 0.0;
        dur_cpu = 0.0;
        attrs;
      }
  end

let add_attr key value =
  if Config.enabled () then
    match !stack with
    | sp :: _ -> sp.o_attrs <- (key, value) :: sp.o_attrs
    | [] -> ()
