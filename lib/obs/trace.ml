type attr = Int of int | Float of float | String of string | Bool of bool

let int i = Int i
let float f = Float f
let str s = String s
let bool b = Bool b

type event = {
  name : string;
  id : int;
  parent : int;
  depth : int;
  domain : int;
  start_wall : float;
  dur_wall : float;
  dur_cpu : float;
  attrs : (string * attr) list;
}

type open_span = {
  o_name : string;
  o_id : int;
  o_parent : int;
  o_depth : int;
  o_domain : int;
  o_start_wall : float;
  o_start_cpu : float;
  mutable o_attrs : (string * attr) list;
}

(* Per-domain state reached through Domain.DLS.  The span stack is only
   ever touched by its owning domain (open/close/add_attr), so it needs
   no lock; the completed-event buffer is drained by readers on other
   domains, so pushes and drains go through the state's mutex.  States
   of terminated domains stay registered so their spans survive into
   merged reads. *)
type state = {
  st_lock : Mutex.t;
  st_domain : int;
  mutable st_stack : open_span list;
  mutable st_events_rev : (int * event) list;  (** (completion seq, event) *)
}

let registry_lock = Mutex.create ()
let states : state list ref = ref []

let make_state () =
  let st =
    {
      st_lock = Mutex.create ();
      st_domain = (Domain.self () :> int);
      st_stack = [];
      st_events_rev = [];
    }
  in
  Mutex.protect registry_lock (fun () -> states := st :: !states);
  st

let state_key : state Domain.DLS.key = Domain.DLS.new_key make_state
let my_state () = Domain.DLS.get state_key
let all_states () = Mutex.protect registry_lock (fun () -> !states)

(* Ids and the buffer cap are process-global: ids stay unique across
   domains and the cap bounds total memory, not per-domain memory. *)
let next_id = Atomic.make 0
let next_seq = Atomic.make 0
let num_events = Atomic.make 0
let dropped = Atomic.make 0
let max_events = Atomic.make 1_000_000

let set_max_events n = Atomic.set max_events (max 0 n)
let span_count () = Atomic.get num_events
let dropped_count () = Atomic.get dropped
let current_depth () = List.length (my_state ()).st_stack
let domains_seen () = List.length (all_states ())

let events () =
  List.concat_map
    (fun st -> Mutex.protect st.st_lock (fun () -> st.st_events_rev))
    (all_states ())
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let reset () =
  List.iter
    (fun st -> Mutex.protect st.st_lock (fun () -> st.st_events_rev <- []))
    (all_states ());
  Atomic.set num_events 0;
  Atomic.set dropped 0

(* Admission via fetch_and_add: each successful record permanently
   consumes one unit of the cap, so at most [max_events] events are ever
   buffered, exactly, even under concurrent recording. *)
let record st ev =
  let n = Atomic.fetch_and_add num_events 1 in
  if n >= Atomic.get max_events then begin
    Atomic.decr num_events;
    Atomic.incr dropped
  end
  else begin
    let seq = Atomic.fetch_and_add next_seq 1 in
    Mutex.protect st.st_lock (fun () ->
        st.st_events_rev <- (seq, ev) :: st.st_events_rev)
  end

let fresh_id () = Atomic.fetch_and_add next_id 1

let open_span st attrs name =
  let parent, depth =
    match st.st_stack with
    | sp :: _ -> (sp.o_id, sp.o_depth + 1)
    | [] -> (-1, 0)
  in
  let sp =
    {
      o_name = name;
      o_id = fresh_id ();
      o_parent = parent;
      o_depth = depth;
      o_domain = st.st_domain;
      o_start_wall = Clock.wall ();
      o_start_cpu = Clock.cpu ();
      o_attrs = attrs;
    }
  in
  st.st_stack <- sp :: st.st_stack;
  sp

let close_span ?extra st sp =
  let dur_wall = Clock.wall () -. sp.o_start_wall in
  let dur_cpu = Clock.cpu () -. sp.o_start_cpu in
  (* The domain-local stack is restored unconditionally, before and
     independently of recording: even when the event buffer is full and
     the event is dropped (or the close is part of an exception unwind),
     the stack must not keep the dead span. The defensive pop walks down
     to (and including) [sp] so a call site that leaked an open span
     cannot poison the stack forever. *)
  let rec pop = function
    | s :: rest -> if s == sp then rest else pop rest
    | [] -> []
  in
  st.st_stack <- pop st.st_stack;
  let attrs =
    match extra with None -> sp.o_attrs | Some e -> e @ sp.o_attrs
  in
  record st
    {
      name = sp.o_name;
      id = sp.o_id;
      parent = sp.o_parent;
      depth = sp.o_depth;
      domain = sp.o_domain;
      start_wall = sp.o_start_wall;
      dur_wall;
      dur_cpu;
      attrs;
    }

let with_span ?(attrs = []) name f =
  if not (Config.enabled ()) then f ()
  else begin
    let st = my_state () in
    let sp = open_span st attrs name in
    match f () with
    | v ->
      close_span st sp;
      v
    | exception e ->
      close_span ~extra:[ ("exn", String (Printexc.to_string e)) ] st sp;
      raise e
  end

let timed ?attrs name f =
  let w0 = Clock.wall () and c0 = Clock.cpu () in
  let v = with_span ?attrs name f in
  (v, Clock.wall () -. w0, Clock.cpu () -. c0)

let instant ?(attrs = []) name =
  if Config.enabled () then begin
    let st = my_state () in
    let parent, depth =
      match st.st_stack with
      | sp :: _ -> (sp.o_id, sp.o_depth + 1)
      | [] -> (-1, 0)
    in
    record st
      {
        name;
        id = fresh_id ();
        parent;
        depth;
        domain = st.st_domain;
        start_wall = Clock.wall ();
        dur_wall = 0.0;
        dur_cpu = 0.0;
        attrs;
      }
  end

let add_attr key value =
  if Config.enabled () then
    match (my_state ()).st_stack with
    | sp :: _ -> sp.o_attrs <- (key, value) :: sp.o_attrs
    | [] -> ()
