let attr_json : Trace.attr -> Json.t = function
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.String s -> Json.String s
  | Trace.Bool b -> Json.Bool b

let attrs_json attrs =
  Json.Assoc (List.map (fun (k, v) -> (k, attr_json v)) attrs)

(* --- report: aggregated span tree --- *)

let report ppf =
  let events = Trace.events () in
  let by_parent : (int, Trace.event list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ev : Trace.event) ->
      let siblings =
        Option.value ~default:[] (Hashtbl.find_opt by_parent ev.Trace.parent)
      in
      Hashtbl.replace by_parent ev.Trace.parent (ev :: siblings))
    events;
  let children parent_ids =
    List.concat_map
      (fun id ->
        List.rev (Option.value ~default:[] (Hashtbl.find_opt by_parent id)))
      parent_ids
  in
  (* Group a sibling list by name, preserving first-appearance order, so
     repeated phases aggregate into one line per level. *)
  let group_by_name evs =
    let order = ref [] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (ev : Trace.event) ->
        match Hashtbl.find_opt tbl ev.Trace.name with
        | Some group -> group := ev :: !group
        | None ->
          Hashtbl.replace tbl ev.Trace.name (ref [ ev ]);
          order := ev.Trace.name :: !order)
      evs;
    List.rev_map
      (fun name -> (name, List.rev !(Hashtbl.find tbl name)))
      !order
  in
  let rec render indent evs =
    List.iter
      (fun (name, group) ->
        let count = List.length group in
        let wall =
          List.fold_left (fun a (e : Trace.event) -> a +. e.Trace.dur_wall) 0.0 group
        in
        let cpu =
          List.fold_left (fun a (e : Trace.event) -> a +. e.Trace.dur_cpu) 0.0 group
        in
        Format.fprintf ppf "  %s%-*s %6d  %10.6f  %10.6f@."
          (String.make (2 * indent) ' ')
          (max 1 (44 - (2 * indent)))
          name count wall cpu;
        render (indent + 1)
          (children (List.map (fun (e : Trace.event) -> e.Trace.id) group)))
      (group_by_name evs)
  in
  Format.fprintf ppf "== qaoa_obs report ==@.";
  Format.fprintf ppf "spans%s (name, count, wall s, cpu s):@."
    (match Trace.dropped_count () with
    | 0 -> ""
    | d -> Printf.sprintf " [%d dropped past buffer cap]" d);
  render 0 (List.rev (Option.value ~default:[] (Hashtbl.find_opt by_parent (-1))));
  (match Metrics_registry.counters () with
  | [] -> ()
  | cs ->
    Format.fprintf ppf "counters:@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-46s %10d@." k v) cs);
  (match Metrics_registry.histograms () with
  | [] -> ()
  | hs ->
    Format.fprintf ppf
      "histograms (name, count, mean, p50, p90, p99, max):@.";
    List.iter
      (fun (k, (s : Metrics_registry.summary)) ->
        Format.fprintf ppf "  %-38s %8d %9.3f %9.3f %9.3f %9.3f %9.3f@." k
          s.Metrics_registry.count s.Metrics_registry.mean
          s.Metrics_registry.p50 s.Metrics_registry.p90 s.Metrics_registry.p99
          s.Metrics_registry.max)
      hs)

let report_string () =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  report ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* --- jsonl --- *)

let span_json (ev : Trace.event) =
  Json.Assoc
    [
      ("type", Json.String "span");
      ("name", Json.String ev.Trace.name);
      ("id", Json.Int ev.Trace.id);
      ("parent", Json.Int ev.Trace.parent);
      ("depth", Json.Int ev.Trace.depth);
      ("domain", Json.Int ev.Trace.domain);
      ("ts_s", Json.Float (ev.Trace.start_wall -. Config.epoch));
      ("dur_wall_s", Json.Float ev.Trace.dur_wall);
      ("dur_cpu_s", Json.Float ev.Trace.dur_cpu);
      ("attrs", attrs_json ev.Trace.attrs);
    ]

let counter_json (name, value) =
  Json.Assoc
    [
      ("type", Json.String "counter");
      ("name", Json.String name);
      ("value", Json.Int value);
    ]

let summary_fields (s : Metrics_registry.summary) =
  [
    ("count", Json.Int s.Metrics_registry.count);
    ("sum", Json.Float s.Metrics_registry.sum);
    ("min", Json.Float s.Metrics_registry.min);
    ("max", Json.Float s.Metrics_registry.max);
    ("mean", Json.Float s.Metrics_registry.mean);
    ("p50", Json.Float s.Metrics_registry.p50);
    ("p90", Json.Float s.Metrics_registry.p90);
    ("p99", Json.Float s.Metrics_registry.p99);
  ]

let histogram_json (name, s) =
  Json.Assoc
    (("type", Json.String "histogram") :: ("name", Json.String name)
    :: summary_fields s)

let jsonl_string () =
  let buf = Buffer.create 4096 in
  let line j =
    Buffer.add_string buf (Json.to_string j);
    Buffer.add_char buf '\n'
  in
  List.iter (fun ev -> line (span_json ev)) (Trace.events ());
  List.iter (fun c -> line (counter_json c)) (Metrics_registry.counters ());
  List.iter (fun h -> line (histogram_json h)) (Metrics_registry.histograms ());
  Buffer.contents buf

(* --- chrome trace_event --- *)

(* Each OCaml domain maps to a Chrome "thread": spans carry their
   domain id as tid, and a thread_name metadata event labels each lane
   so multi-domain traces render as parallel tracks in Perfetto. *)
let chrome_event (ev : Trace.event) =
  Json.Assoc
    [
      ("name", Json.String ev.Trace.name);
      ("cat", Json.String "qaoa");
      ("ph", Json.String "X");
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.Trace.domain);
      ("ts", Json.Float ((ev.Trace.start_wall -. Config.epoch) *. 1e6));
      ("dur", Json.Float (ev.Trace.dur_wall *. 1e6));
      ( "args",
        attrs_json
          (("dur_cpu_s", Trace.Float ev.Trace.dur_cpu) :: ev.Trace.attrs) );
    ]

let chrome_thread_names events =
  let domains =
    List.sort_uniq compare
      (List.map (fun (ev : Trace.event) -> ev.Trace.domain) events)
  in
  List.map
    (fun d ->
      Json.Assoc
        [
          ("name", Json.String "thread_name");
          ("ph", Json.String "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int d);
          ( "args",
            Json.Assoc [ ("name", Json.String (Printf.sprintf "domain-%d" d)) ]
          );
        ])
    domains

let chrome () =
  let events = Trace.events () in
  Json.Assoc
    [
      ( "traceEvents",
        Json.List (chrome_thread_names events @ List.map chrome_event events)
      );
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Assoc
          [
            ( "counters",
              Json.Assoc
                (List.map
                   (fun (k, v) -> (k, Json.Int v))
                   (Metrics_registry.counters ())) );
            ( "histograms",
              Json.Assoc
                (List.map
                   (fun (k, s) -> (k, Json.Assoc (summary_fields s)))
                   (Metrics_registry.histograms ())) );
            ("dropped_spans", Json.Int (Trace.dropped_count ()));
          ] );
    ]

let chrome_string () = Json.to_string (chrome ())

(* --- sink dispatch + at-exit auto flush --- *)

let flushed = ref false

let default_path = function
  | Config.Jsonl -> "qaoa_trace.jsonl"
  | Config.Chrome -> "qaoa_trace.json"
  | Config.Folded -> "qaoa_trace.folded"
  | Config.Report -> "qaoa_trace.txt"

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write ?path () =
  match Config.sink () with
  | None -> ()
  | Some sink ->
    flushed := true;
    let target =
      match (path, Config.out_path ()) with
      | Some p, _ -> Some p
      | None, Some p -> Some p
      | None, None -> (
        match sink with Config.Report -> None | s -> Some (default_path s))
    in
    let contents =
      match sink with
      | Config.Report -> report_string ()
      | Config.Jsonl -> jsonl_string ()
      | Config.Chrome -> chrome_string ()
      | Config.Folded -> Flamegraph.folded_string ()
    in
    (match target with
    | None -> prerr_string contents
    | Some p -> (
      (* An unwritable trace file must not abort the process (nor the
         at-exit flush of an otherwise successful run): warn and drop. *)
      match write_file p contents with
      | () ->
        Printf.eprintf "qaoa_obs: wrote %s trace to %s (%d spans%s)\n%!"
          (Config.sink_name sink) p (Trace.span_count ())
          (match Trace.dropped_count () with
          | 0 -> ""
          | d -> Printf.sprintf ", %d dropped" d)
      | exception Sys_error msg ->
        Printf.eprintf "qaoa_obs: cannot write trace: %s\n%!" msg))

let () =
  at_exit (fun () ->
      let recorded_something () =
        Trace.span_count () > 0
        || Metrics_registry.counters () <> []
        || Metrics_registry.histograms () <> []
      in
      if (not !flushed) && Config.sink () <> None && recorded_something ()
      then write ();
      if
        (not !Expose.flushed)
        && Config.metrics_format () <> None
        && recorded_something ()
      then Expose.write ())
