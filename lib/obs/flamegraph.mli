(** Folded-stacks (flamegraph) export computed from a {!Snapshot}'s span
    stream.

    Each completed span contributes its {e self} wall time (duration
    minus direct children) to its full path ("root;child;leaf"). When
    the stream spans several domains, every path is rooted under a
    synthetic ["domain-<id>"] frame so per-domain flames stay
    separable. Feed the output to
    {{:https://github.com/brendangregg/FlameGraph}flamegraph.pl} or
    {{:https://www.speedscope.app}speedscope}:

    {v
    qaoa-compile --nodes 20 --trace folded --trace-file compile.folded
    flamegraph.pl compile.folded > compile.svg
    v} *)

val folded : ?snapshot:Snapshot.t -> unit -> (string * float) list
(** [(stack, self_wall_seconds)] per distinct path, sorted by stack;
    default snapshot is {!Snapshot.capture}[ ()]. *)

val folded_string : ?snapshot:Snapshot.t -> unit -> string
(** Folded lines ["a;b;c <self-us>"] with integer-microsecond values;
    paths whose self time rounds to 0 µs are omitted. *)
