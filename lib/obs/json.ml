type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e16 then Printf.sprintf "%.1f" v
  else
    (* %.17g round-trips every finite float; trimming is not worth the code *)
    Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v ->
    (* non-finite floats are not representable in strict JSON *)
    if Float.is_finite v then Buffer.add_string buf (float_repr v)
    else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      items;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

(* --- parser --- *)

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg cur.pos)

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance cur;
    skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some x when x = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
      advance cur;
      match peek cur with
      | Some 'n' -> advance cur; Buffer.add_char buf '\n'; loop ()
      | Some 't' -> advance cur; Buffer.add_char buf '\t'; loop ()
      | Some 'r' -> advance cur; Buffer.add_char buf '\r'; loop ()
      | Some 'b' -> advance cur; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance cur; Buffer.add_char buf '\012'; loop ()
      | Some '/' -> advance cur; Buffer.add_char buf '/'; loop ()
      | Some '"' -> advance cur; Buffer.add_char buf '"'; loop ()
      | Some '\\' -> advance cur; Buffer.add_char buf '\\'; loop ()
      | Some 'u' ->
        advance cur;
        if cur.pos + 4 > String.length cur.src then fail cur "bad \\u escape";
        let hex = String.sub cur.src cur.pos 4 in
        cur.pos <- cur.pos + 4;
        (match int_of_string_opt ("0x" ^ hex) with
        | None -> fail cur "bad \\u escape"
        | Some code ->
          (* telemetry strings are ASCII; encode BMP code points as UTF-8 *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end);
        loop ()
      | _ -> fail cur "bad escape")
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek cur with Some c when is_num_char c -> true | _ -> false
  do
    advance cur
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Assoc []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        fields := (k, v) :: !fields;
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; members ()
        | Some '}' -> advance cur
        | _ -> fail cur "expected ',' or '}'"
      in
      members ();
      Assoc (List.rev !fields)
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value cur in
        items := v :: !items;
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; elements ()
        | Some ']' -> advance cur
        | _ -> fail cur "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> parse_number cur

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Failure _ -> None

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
