(** Bench regression gate: compare two [BENCH_results.json] documents
    (as written by [bench/main.exe]) against per-metric relative
    thresholds, turning the bench trajectory into an enforced
    performance contract.

    Gated metrics:
    - every [kernels.<name>.ms_per_run] — fails when
      [(current - baseline) / baseline] exceeds its threshold (default
      [default_threshold], per-metric override via [overrides], metrics
      whose baseline is below [min_ms] are informational: a relative
      gate below the timer noise floor is meaningless);
    - [resilience.exhausted] — any increase fails (an exhausted fallback
      chain is a lost compile, not timing noise);
    - a gated kernel present in the baseline but missing from the
      current run fails (renames require refreshing the baseline).

    [resilience.compiled]/[fallback_recovered]/[instances] and kernels
    new in the current run are reported informationally. *)

type status =
  | Pass
  | Regressed
  | Baseline_only  (** gated metric vanished from the current run *)
  | Current_only  (** new metric, informational *)
  | Info

val status_name : status -> string

type row = {
  metric : string;  (** e.g. ["kernel.fig7-qaim-er05-tokyo"] *)
  baseline : float option;
  current : float option;
  rel_change : float option;
      (** (current - baseline) / baseline; [infinity] when baseline = 0
          and current > 0 *)
  threshold : float option;
      (** max allowed relative increase; [None] = informational *)
  status : status;
}

type report = {
  rows : row list;
  baseline_scale : string option;
  current_scale : string option;
}

val compare_docs :
  ?default_threshold:float ->
  ?min_ms:float ->
  ?overrides:(string * float) list ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  report
(** Defaults: [default_threshold = 1.0] (a 2x slowdown fails — generous
    enough to absorb runner-to-runner variance on shared CI hardware),
    [min_ms = 0.01]. [overrides] maps full metric names to thresholds.
    @raise Failure when either document has no ["kernels"] object. *)

val regressions : report -> int
val regressed : report -> bool

val to_text : report -> string
val to_json : report -> Json.t
