(** Export everything {!Trace} and {!Metrics_registry} recorded — merged
    across all domains — in the sink selected by {!Config}
    ([QAOA_TRACE] / [--trace]):

    - {b report}: human-readable aggregated span tree (grouped by name
      within each nesting level, execution order preserved) followed by
      counters and histogram summaries;
    - {b jsonl}: one JSON object per line — spans in completion order
      (each carrying its domain id), then counters, then histograms;
    - {b chrome}: a [trace_event] JSON document with one complete
      ("ph":"X") event per span, loadable in [chrome://tracing] or
      Perfetto; each OCaml domain renders as its own named thread lane
      ([tid] = domain id), counters/histograms ride along under
      ["otherData"];
    - {b folded}: folded stacks with per-path self time (see
      {!Flamegraph}).

    A successful process exit auto-writes the selected sink once
    ([at_exit]), and likewise the {!Expose} metrics exposition when one
    is configured; {!write} forces the trace sink earlier (e.g. in tests
    or servers). *)

val report : Format.formatter -> unit
val report_string : unit -> string

val jsonl_string : unit -> string

val chrome : unit -> Json.t
val chrome_string : unit -> string

val write : ?path:string -> unit -> unit
(** Export now according to [Config.sink ()]: [Report] to stderr,
    [Jsonl]/[Chrome]/[Folded] to [?path], else [Config.out_path ()],
    else [qaoa_trace.jsonl] / [qaoa_trace.json] / [qaoa_trace.folded].
    No-op when tracing was never configured. Marks the automatic at-exit
    flush as done. *)
