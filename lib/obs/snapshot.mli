(** Immutable point-in-time capture of everything the observability
    layer recorded: merged counters, merged histogram states, and the
    multi-domain span stream.

    A snapshot is a plain value: capturing never mutates the live
    registries (capturing twice with no intervening recording yields
    equal snapshots — no drain-and-add double counting), and all
    consumer layers ({!Expose}, {!Flamegraph}, bench tooling) read from
    snapshots rather than from live shards.

    {!merge} combines snapshots from disjoint sources (worker processes,
    sweep shards): counters add, histogram counts/sums/mins/maxes
    combine exactly, retained percentile windows concatenate, and span
    streams union. Merge is associative and order-independent up to
    floating-point addition (exact when observed values are
    integer-valued, e.g. counts and sizes). *)

type t = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * Metrics_registry.hist_state) list;
      (** sorted by name; each state's samples sorted *)
  spans : Trace.event list;
      (** sorted by (start time, domain, id) — see {!capture} *)
  dropped_spans : int;
}

val empty : t

val capture : unit -> t
(** Snapshot the live registries across all domain shards. Pure read:
    recording may continue concurrently and the snapshot is internally
    consistent per shard. *)

val counter : t -> string -> int
(** [0] for a name never incremented. *)

val histogram : t -> string -> Metrics_registry.hist_state option
val summary : t -> string -> Metrics_registry.summary option

val merge : t -> t -> t
(** Union of two snapshots from disjoint sources (merging a snapshot
    with itself double-counts, by design). *)

val equal : t -> t -> bool

val compare_event : Trace.event -> Trace.event -> int
(** The canonical span order used by {!capture} and {!merge}. *)
