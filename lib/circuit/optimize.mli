(** Peephole circuit optimization: cancellation of self-inverse gate
    pairs and merging of rotations, with merge partners found through
    any {e commuting} intervening gates.

    A gate looks backward for its partner, scanning through every gate
    that commutes with it under {!Dag.commutes} (disjoint qubits,
    diagonal pairs, equal-axis rotations on a shared qubit, CNOT
    control/target rules) and stopping at the first non-commuting gate
    or [Barrier].  Rules applied to a fixpoint:

    - self-inverse pairs cancel: H-H, X-X, Y-Y, Z-Z, CNOT-CNOT (same
      orientation), SWAP-SWAP;
    - rotations about the same axis merge: RX+RX, RY+RY, RZ+RZ, U1+U1,
      CPHASE+CPHASE (either qubit order - the gate is symmetric);
    - rotations whose angle is 0 (mod 2 pi) are dropped (a 2 pi rotation
      is a global phase).

    The commuting look-through reaches pairs plain adjacency cannot:
    [cnot(0,1); rz(0); cnot(0,1)] collapses to [rz(0)] (the RZ commutes
    through the CNOT's control), and [cphase(a,b); rz(a); cphase(a,b)]
    merges as before.  Acting at a distance is sound because the
    commutation relation depends only on gate shape (constructor and
    qubits), never on rotation angles, so a merged rotation commutes
    with exactly the gates its operands did.

    All rewrites preserve the circuit semantics up to global phase
    (property-tested against both the statevector simulator and the
    phase-polynomial oracle).  The pass pays off most after routing and
    decomposition, where SWAP and CPHASE lowerings place cancelling
    CNOTs back to back. *)

val circuit : Circuit.t -> Circuit.t
(** Optimize to a fixpoint.  Never increases the gate count. *)

val redundancies : ?through_commuting:bool -> Circuit.t -> (int * int) list
(** First-order redundancy witnesses without rewriting: pairs [(i, j)]
    with [i < j] where gate [j] would cancel against or merge into gate
    [i] under the pass's look-through notion.  Empty on a fixpoint of
    {!circuit}.  [~through_commuting:false] (default [true]) restricts
    the look-through to the historical notion - disjoint qubits plus
    diagonal-through-diagonal - which the lint engine uses to separate
    plainly-adjacent pairs (QL005) from pairs reachable only through
    commuting neighbours (QL012). *)

type stats = { gates_before : int; gates_after : int; passes : int }

val with_stats : Circuit.t -> Circuit.t * stats
