(** Peephole circuit optimization: cancellation of adjacent self-inverse
    gate pairs and merging of adjacent rotations.

    Two gates are "adjacent" when no other gate touches any of their
    qubits in between ([Barrier] fences all qubits).  Rules applied to a
    fixpoint:

    - self-inverse pairs cancel: H-H, X-X, Y-Y, Z-Z, CNOT-CNOT (same
      orientation), SWAP-SWAP;
    - rotations about the same axis merge: RX+RX, RY+RY, RZ+RZ, U1+U1,
      CPHASE+CPHASE (either qubit order - the gate is symmetric);
    - rotations whose angle is 0 (mod 2 pi) are dropped (a 2 pi rotation
      is a global phase);
    - Z-basis-diagonal gates (Z, RZ, U1, CPHASE) additionally commute
      through earlier diagonal gates on overlapping qubits when looking
      for a partner, so [cphase(a,b); rz(a); cphase(a,b)] merges into
      [rz(a); cphase(a,b)].

    All rewrites preserve the circuit semantics up to global phase
    (property-tested).  The pass pays off most after routing and
    decomposition, where SWAP and CPHASE lowerings place cancelling
    CNOTs back to back. *)

val circuit : Circuit.t -> Circuit.t
(** Optimize to a fixpoint.  Never increases the gate count. *)

val redundancies : Circuit.t -> (int * int) list
(** First-order redundancy witnesses without rewriting: pairs [(i, j)]
    with [i < j] where gate [j] would cancel against or merge into gate
    [i] under the pass's adjacency notion (including the diagonal
    look-through).  Empty on a fixpoint of {!circuit}.  The lint engine
    uses this to locate "pair survives Optimize" findings. *)

type stats = { gates_before : int; gates_after : int; passes : int }

val with_stats : Circuit.t -> Circuit.t * stats
