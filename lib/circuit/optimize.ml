let two_pi = 2.0 *. Float.pi

(* A rotation of 0 (mod 2 pi) is the identity up to global phase. *)
let zero_angle theta =
  let r = Float.rem theta two_pi in
  Float.abs r < 1e-12 || Float.abs (Float.abs r -. two_pi) < 1e-12

let is_identity = function
  | Gate.Rx (_, a) | Gate.Ry (_, a) | Gate.Rz (_, a) | Gate.Phase (_, a)
  | Gate.Cphase (_, _, a) ->
    zero_angle a
  | _ -> false

(* How a new gate [g] interacts with the adjacent previous gate [prev]
   acting on exactly the same qubit set. *)
type interaction = Cancel | Replace of Gate.t | Keep

let combine prev g =
  match (prev, g) with
  | Gate.H a, Gate.H b when a = b -> Cancel
  | Gate.X a, Gate.X b when a = b -> Cancel
  | Gate.Y a, Gate.Y b when a = b -> Cancel
  | Gate.Z a, Gate.Z b when a = b -> Cancel
  | Gate.Cnot (c, t), Gate.Cnot (c', t') when c = c' && t = t' -> Cancel
  | Gate.Swap (a, b), Gate.Swap (a', b')
    when (a = a' && b = b') || (a = b' && b = a') ->
    Cancel
  | Gate.Rx (q, x), Gate.Rx (q', y) when q = q' -> Replace (Gate.Rx (q, x +. y))
  | Gate.Ry (q, x), Gate.Ry (q', y) when q = q' -> Replace (Gate.Ry (q, x +. y))
  | Gate.Rz (q, x), Gate.Rz (q', y) when q = q' -> Replace (Gate.Rz (q, x +. y))
  | Gate.Phase (q, x), Gate.Phase (q', y) when q = q' ->
    Replace (Gate.Phase (q, x +. y))
  | Gate.Cphase (a, b, x), Gate.Cphase (a', b', y)
    when (a = a' && b = b') || (a = b' && b = a') ->
    Replace (Gate.Cphase (a, b, x +. y))
  | _ -> Keep

type buffer = {
  mutable gates : Gate.t option array;  (** None = removed *)
  mutable len : int;
}

let push buf g =
  if buf.len = Array.length buf.gates then begin
    let bigger = Array.make (max 16 (2 * buf.len)) None in
    Array.blit buf.gates 0 bigger 0 buf.len;
    buf.gates <- bigger
  end;
  buf.gates.(buf.len) <- Some g;
  buf.len <- buf.len + 1

let kill buf i = buf.gates.(i) <- None

(* Z-basis-diagonal gates all commute with each other, whatever qubits
   they share. *)
let is_diagonal = function
  | Gate.Z _ | Gate.Rz _ | Gate.Phase _ | Gate.Cphase _ -> true
  | _ -> false

(* Index of the nearest earlier live gate [g] can merge with, looking
   through any gate that commutes with [g] ([Dag.commutes]: disjoint
   qubits, diagonal pairs, equal-axis rotations, CNOT control/target
   rules).  Soundness of acting at a distance: every gate between the
   partner and the buffer end commutes with [g], so [g] moves back
   adjacent to the partner; and because the commutation relation is a
   function of gate shape (constructor + qubits), never of angles, the
   merged gate commutes with exactly the gates [g] did, so [insert] may
   re-place it at the buffer end. *)
let merge_partner buf g qs =
  let sorted_qs = List.sort compare qs in
  let combinable prev =
    List.sort compare (Gate.qubits prev) = sorted_qs && combine prev g <> Keep
  in
  let rec scan j =
    if j < 0 then None
    else
      match buf.gates.(j) with
      | None -> scan (j - 1)
      | Some Gate.Barrier -> None
      | Some prev ->
        if combinable prev then Some j
        else if Dag.commutes prev g then scan (j - 1)
        else None
  in
  scan (buf.len - 1)

let rec insert buf g =
  if is_identity g then ()
  else
    match Gate.qubits g with
    | [] ->
      (* barrier: keep it; merge_partner stops at it on every qubit *)
      push buf g
    | qs -> (
      match merge_partner buf g qs with
      | Some i -> (
        match combine (Option.get buf.gates.(i)) g with
        | Cancel -> kill buf i
        | Replace merged ->
          kill buf i;
          insert buf merged
        | Keep -> assert false)
      | None -> push buf g)

let one_pass circuit =
  let n = Circuit.num_qubits circuit in
  let buf = { gates = Array.make 64 None; len = 0 } in
  List.iter (insert buf) (Circuit.gates circuit);
  let out = ref [] in
  for i = buf.len - 1 downto 0 do
    match buf.gates.(i) with Some g -> out := g :: !out | None -> ()
  done;
  Circuit.of_gates n !out

(* First-order redundancy locations, for the lint engine: pairs of gate
   indices (i, j) with i < j where gate j could cancel against or merge
   into gate i under the look-through notion [insert] uses, without
   rewriting anything.  [~through_commuting:false] restricts the
   look-through to the historical notion - disjoint qubits plus the
   diagonal-through-diagonal rule - which the lint engine uses to tell
   plainly-adjacent pairs (QL005) from pairs only a commutation-aware
   rewrite can reach (QL012). *)
let redundancies ?(through_commuting = true) circuit =
  let gates = Array.of_list (Circuit.gates circuit) in
  let found = ref [] in
  Array.iteri
    (fun j g ->
      match Gate.qubits g with
      | [] -> ()
      | qs ->
        let sorted_qs = List.sort compare qs in
        let combinable prev =
          List.sort compare (Gate.qubits prev) = sorted_qs
          && combine prev g <> Keep
        in
        let diagonal = is_diagonal g in
        let see_through prev =
          if through_commuting then Dag.commutes prev g
          else
            (not (List.exists (fun q -> List.mem q qs) (Gate.qubits prev)))
            || (diagonal && is_diagonal prev)
        in
        let rec scan i =
          if i >= 0 then
            match gates.(i) with
            | Gate.Barrier -> ()
            | prev ->
              if combinable prev then found := (i, j) :: !found
              else if see_through prev then scan (i - 1)
        in
        scan (j - 1))
    gates;
  List.rev !found

type stats = { gates_before : int; gates_after : int; passes : int }

let with_stats circuit =
  let gates_before = Circuit.length circuit in
  let rec fixpoint c passes =
    let c' = one_pass c in
    if Circuit.length c' = Circuit.length c then (c', passes + 1)
    else fixpoint c' (passes + 1)
  in
  let optimized, passes = fixpoint circuit 0 in
  (optimized, { gates_before; gates_after = Circuit.length optimized; passes })

let circuit c = fst (with_stats c)
