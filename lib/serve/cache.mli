(** Compiled-artifact cache for the serving layer.

    Entries are keyed by {!key}: the label-invariant
    {!Qaoa_graph.Graph.canonical_hash} of the problem graph plus a
    {e fingerprint} - the canonical rendering of everything else that
    determines the response body (exact normalized edge list, device,
    policy, seed and the remaining options; see
    {!Request.fingerprint}).  The graph hash buckets isomorphic
    problems together; the fingerprint's exact edge list guarantees a
    hit is only ever served for a byte-identical problem, so a cached
    body is always byte-equal to a fresh compile of the same request.

    The cache is mutex-guarded and shared across worker domains.
    Eviction is least-recently-used over a bounded capacity (the evict
    scan is O(capacity) - fine at the default thousands of entries).

    Counters (when {!Qaoa_obs} recording is enabled):
    [serve.cache.hits], [serve.cache.misses], [serve.cache.inserts],
    [serve.cache.evictions].  The same four tallies are always kept
    internally and reported by {!stats}, so tests and the CLI summary
    do not depend on telemetry being configured. *)

type t

type key = { graph_hash : int; fingerprint : string }

type stats = {
  hits : int;
  misses : int;
  inserts : int;
  evictions : int;
  size : int;  (** current number of entries *)
}

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1] (use [None] at the
    serving layer to disable caching instead). *)

val capacity : t -> int

val find : t -> key -> (string * Qaoa_obs.Json.t) list option
(** Cached response-body fields (without the request id), refreshing
    the entry's recency.  Counts a hit or a miss. *)

val store : t -> key -> (string * Qaoa_obs.Json.t) list -> unit
(** Insert (or refresh) the body for a key, evicting the
    least-recently-used entry when at capacity.  Concurrent stores of
    the same key are idempotent - compilation is deterministic, so
    racing workers compute identical bodies. *)

val stats : t -> stats
