(** Compiled-artifact cache for the serving layer.

    Entries are keyed by {!key}: the label-invariant
    {!Qaoa_graph.Graph.canonical_hash} of the problem graph plus a
    {e fingerprint} - the canonical rendering of everything else that
    determines the response body (exact normalized edge list, device,
    policy, seed and the remaining options; see
    {!Request.fingerprint}).  The graph hash buckets isomorphic
    problems together; the fingerprint's exact edge list guarantees a
    hit is only ever served for a byte-identical problem, so a cached
    body is always byte-equal to a fresh compile of the same request.

    The cache is mutex-guarded and shared across worker domains.
    Eviction is least-recently-used over a bounded capacity (the evict
    scan is O(capacity) - fine at the default thousands of entries).

    {b Lookup taxonomy.}  Every {!find} counts a lookup; a present key
    counts a hit there.  A missed lookup is classified when its
    computed artifact comes back: {!store} counts a {e miss} (the
    artifact was cacheable - whether newly inserted or a racing
    duplicate), while an uncacheable artifact (error body, retried or
    breaker-degraded compile, oversized rendering) counts a {e reject}
    via {!reject} or an [Oversized] store.  As long as every missed
    lookup is followed by exactly one store-or-reject - which the
    serving layer guarantees - [lookups = hits + misses + rejects].

    Counters (when {!Qaoa_obs} recording is enabled):
    [serve.cache.hits], [serve.cache.misses], [serve.cache.reject],
    [serve.cache.inserts], [serve.cache.evictions],
    [serve.cache.reloaded].  The same tallies are always kept
    internally and reported by {!stats}, so tests and the CLI summary
    do not depend on telemetry being configured. *)

type t

type key = { graph_hash : int; fingerprint : string }

type stats = {
  lookups : int;  (** total [find] calls *)
  hits : int;
  misses : int;  (** missed lookups whose artifact was cacheable *)
  rejects : int;  (** missed lookups whose artifact was not cacheable *)
  inserts : int;  (** new entries (excludes racing duplicates) *)
  evictions : int;
  reloaded : int;  (** entries preloaded from a persisted journal *)
  size : int;  (** current number of entries *)
}

val create : ?max_entry_bytes:int -> capacity:int -> unit -> t
(** [max_entry_bytes] bounds the rendered JSON size of a single body;
    larger artifacts are rejected by {!store} instead of inserted.
    @raise Invalid_argument if [capacity < 1] or
    [max_entry_bytes < 1] (use [None] at the serving layer to disable
    caching instead). *)

val capacity : t -> int

val find : t -> key -> (string * Qaoa_obs.Json.t) list option
(** Cached response-body fields (without the request id), refreshing
    the entry's recency.  Counts a lookup, and a hit when present. *)

type stored =
  | Stored  (** newly inserted *)
  | Duplicate  (** a racing worker inserted the same key first *)
  | Oversized  (** rendered body exceeds [max_entry_bytes]; rejected *)

val store : t -> key -> (string * Qaoa_obs.Json.t) list -> stored
(** Insert (or refresh) the body for a key, evicting the
    least-recently-used entry when at capacity.  Concurrent stores of
    the same key are idempotent - compilation is deterministic, so
    racing workers compute identical bodies.  Counts the pending miss
    (or a reject when [Oversized]). *)

val reject : t -> unit
(** Classify the pending missed lookup as a reject: the computed
    artifact was not cacheable (error body, retried or degraded
    compile). *)

val preload : t -> key -> (string * Qaoa_obs.Json.t) list -> bool
(** Journal-reload path: insert without touching the lookup taxonomy.
    Returns [false] (and inserts nothing) for duplicates and oversized
    bodies.  Counts [reloaded] / [serve.cache.reloaded]. *)

val to_list : t -> (key * (string * Qaoa_obs.Json.t) list) list
(** Live entries, least recently used first (so replaying them through
    {!preload} reproduces the recency order) - the compaction source. *)

val size : t -> int

val stats : t -> stats
