module Json = Qaoa_obs.Json
module Trace = Qaoa_obs.Trace
module Clock = Qaoa_obs.Clock
module Metrics_registry = Qaoa_obs.Metrics_registry
module Compile = Qaoa_core.Compile
module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators
module Rng = Qaoa_util.Rng

type config = {
  workers : int;
  queue_capacity : int;
  sort : bool;
  timings : bool;
  cache : Cache.t option;
  persist : Persist.t option;
  supervise : Supervise.config;
  drain : int Atomic.t option;
  inflight : int Atomic.t;
}

let default_config () =
  {
    workers = Pool.default_workers ();
    queue_capacity = 256;
    sort = false;
    timings = false;
    cache = Some (Cache.create ~capacity:4096 ());
    persist = None;
    supervise = Supervise.default_config;
    drain = None;
    inflight = Atomic.make 0;
  }

type stats = {
  requests : int;
  errors : int;
  cache_stats : Cache.stats option;
}

(* One processed line, ready to render. *)
type outcome = {
  id : string option;  (** [None] = the line never parsed *)
  line : int;  (** 1-based input line number *)
  body : (string * Json.t) list;
  cached : bool;
  ms : float;
}

let outcome_error o = Supervise.is_error o.body

(* The full supervised path for one input line: parse, answer from the
   cache when possible, otherwise compute under {!Supervise.handle}
   (containment, retry, breaker), then settle the cache taxonomy -
   every missed lookup ends in exactly one store or reject, which is
   what keeps [lookups = hits + misses + rejects] an invariant.  A
   [Stored] insertion is journaled before the response is visible, so
   a crash never leaves a served-but-unpersisted artifact ahead of the
   journal. *)
(* Control-verb bodies.  [stats] snapshots the cache-lookup taxonomy
   and the in-flight gauge so a supervisor (or CI) can assert
   [lookups = hits + misses + rejects] per process over the wire. *)
let stats_body cache inflight =
  let cache_json =
    match cache with
    | None -> Json.Null
    | Some c ->
      let s = Cache.stats c in
      Json.Assoc
        [
          ("lookups", Json.Int s.Cache.lookups);
          ("hits", Json.Int s.Cache.hits);
          ("misses", Json.Int s.Cache.misses);
          ("rejects", Json.Int s.Cache.rejects);
          ("inserts", Json.Int s.Cache.inserts);
          ("evictions", Json.Int s.Cache.evictions);
          ("reloaded", Json.Int s.Cache.reloaded);
          ("size", Json.Int s.Cache.size);
        ]
  in
  [
    ("ok", Json.Bool true); ("op", Json.String "stats");
    ("inflight", Json.Int (Atomic.get inflight)); ("cache", cache_json);
  ]

let handle sup devices cache persist inflight (line_no, line) =
  Trace.with_span "serve.request" @@ fun () ->
  let t0 = Clock.wall () in
  let finish ?id ?(cached = false) body =
    if Supervise.is_error body then Metrics_registry.incr "serve.errors";
    let ms = 1e3 *. (Clock.wall () -. t0) in
    Metrics_registry.observe "serve.request_ms" ms;
    { id; line = line_no; body; cached; ms }
  in
  match Request.control_of_line line with
  | Some ctl -> (
    (* control verbs are not requests: no [serve.requests] count, no
       cache interaction - the lookup taxonomy stays balanced *)
    match ctl with
    | Error msg ->
      finish
        (Supervise.error_body
           ~extra:[ ("line", Json.Int line_no) ]
           ~kind:"bad_request" msg)
    | Ok Request.Ping ->
      finish [ ("ok", Json.Bool true); ("op", Json.String "ping") ]
    | Ok Request.Stats -> finish (stats_body cache inflight))
  | None -> (
  Metrics_registry.incr "serve.requests";
  match Request.of_line line with
  | Error msg ->
    finish
      (Supervise.error_body
         ~extra:[ ("line", Json.Int line_no) ]
         ~kind:"bad_request" msg)
  | Ok req -> (
    let id = req.Request.id in
    match cache with
    | None ->
      let v = Supervise.handle sup devices req in
      finish ~id v.Supervise.body
    | Some c -> (
      let key = Request.cache_key req in
      match Cache.find c key with
      | Some body -> finish ~id ~cached:true body
      | None ->
        let v = Supervise.handle sup devices req in
        (if v.Supervise.cacheable then begin
           match Cache.store c key v.Supervise.body with
           | Cache.Stored ->
             Option.iter (fun p -> Persist.append p key v.Supervise.body) persist
           | Cache.Duplicate | Cache.Oversized -> ()
         end
         else Cache.reject c);
        finish ~id v.Supervise.body)))

let make_handler config =
  if config.workers < 1 then invalid_arg "Serve: workers must be >= 1";
  if config.queue_capacity < 1 then
    invalid_arg "Serve: queue_capacity must be >= 1";
  let devices = Supervise.Devices.create () in
  Supervise.Devices.prewarm devices;
  let sup = Supervise.create config.supervise in
  handle sup devices config.cache config.persist config.inflight

let render config outcome =
  let id_json =
    match outcome.id with Some s -> Json.String s | None -> Json.Null
  in
  let diagnostics =
    if config.timings then
      [
        ("cached", Json.Bool outcome.cached); ("ms", Json.Float outcome.ms);
      ]
    else []
  in
  Json.to_string (Json.Assoc (("id", id_json) :: outcome.body @ diagnostics))

let sort_key outcome = (Option.value ~default:"" outcome.id, outcome.line)

let serve config ~produce ~emit =
  let handler = make_handler config in
  (* a delivered SIGINT/SIGTERM stops admission: in-flight requests
     finish and are emitted in order, then the run winds down *)
  let produce =
    match config.drain with
    | None -> produce
    | Some flag -> fun () -> if Atomic.get flag <> 0 then None else produce ()
  in
  let requests = ref 0 and errors = ref 0 in
  let note outcome =
    incr requests;
    if outcome_error outcome then incr errors
  in
  (* [sort] needs the full result set before emitting anything, so it
     accumulates and flushes after the pool drains; the default mode
     emits immediately in input order. *)
  let sorted_acc = ref [] in
  let consume _seq outcome =
    if config.sort then sorted_acc := outcome :: !sorted_acc
    else begin
      note outcome;
      emit (render config outcome)
    end
  in
  let _count =
    Pool.stream ~workers:config.workers ~queue_capacity:config.queue_capacity
      ~produce ~consume handler
  in
  if config.sort then
    List.iter
      (fun outcome ->
        note outcome;
        emit (render config outcome))
      (List.sort
         (fun a b -> compare (sort_key a) (sort_key b))
         (List.rev !sorted_acc));
  {
    requests = !requests;
    errors = !errors;
    cache_stats = Option.map Cache.stats config.cache;
  }

let run config ic oc =
  let line_no = ref 0 in
  let produce () =
    match input_line ic with
    | line ->
      incr line_no;
      Some (!line_no, line)
    | exception End_of_file -> None
  in
  let stats =
    serve config ~produce ~emit:(fun line ->
        output_string oc line;
        output_char oc '\n')
  in
  flush oc;
  stats

let run_lines config lines =
  let remaining = ref lines in
  let line_no = ref 0 in
  let produce () =
    match !remaining with
    | [] -> None
    | l :: rest ->
      remaining := rest;
      incr line_no;
      Some (!line_no, l)
  in
  let out = ref [] in
  let stats = serve config ~produce ~emit:(fun line -> out := line :: !out) in
  (List.rev !out, stats)

(* ------------------------------------------------------------------ *)

let gen_corpus ?(device = "tokyo") ~seed ~count () =
  let policies = [| "naive"; "greedyv"; "greedye"; "qaim"; "ip"; "ic" |] in
  let probs = [| 0.3; 0.5; 0.7 |] in
  List.init count (fun i ->
      let rng = Rng.create (seed + (7919 * i)) in
      let n = 12 + (i mod 7) in
      let p = probs.(i mod Array.length probs) in
      (* redraw edgeless graphs - an empty cost layer is a request
         error by construction *)
      let rec draw () =
        let g = Generators.erdos_renyi rng ~n ~p in
        if Graph.num_edges g = 0 then draw () else g
      in
      let g = draw () in
      let policy =
        Option.get
          (Compile.strategy_of_string policies.(i mod Array.length policies))
      in
      let req =
        {
          Request.id = Printf.sprintf "req-%04d" i;
          source = Request.Graph { n; edges = Graph.edges g };
          device;
          policy;
          seed = seed + i;
          p = 1;
          gamma = 0.7;
          beta = 0.4;
          measure = true;
          verify = i mod 5 = 0;
          analyze = i mod 7 = 0;
          qasm_out = false;
        }
      in
      Json.to_string (Request.to_json req))
