module Json = Qaoa_obs.Json
module Trace = Qaoa_obs.Trace
module Clock = Qaoa_obs.Clock
module Metrics_registry = Qaoa_obs.Metrics_registry
module Compile = Qaoa_core.Compile
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Profile = Qaoa_hardware.Profile
module Router = Qaoa_backend.Router
module Mapping = Qaoa_backend.Mapping
module Circuit = Qaoa_circuit.Circuit
module Metrics = Qaoa_circuit.Metrics
module Qasm = Qaoa_circuit.Qasm
module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators
module Rng = Qaoa_util.Rng

(* ------------------------------------------------------------------ *)
(* Shared device table: resolve every device name once per run so all
   workers share one Device.t value - which is what makes the
   Profile distance-matrix memo (keyed on physical identity) hit. *)

module Devices = struct
  type t = {
    lock : Mutex.t;
    tbl : (string, Device.t option) Hashtbl.t;  (** None = unknown name *)
  }

  let create () = { lock = Mutex.create (); tbl = Hashtbl.create 8 }

  let resolve t name =
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.tbl name with
    | Some v ->
      Mutex.unlock t.lock;
      v
    | None ->
      let v = Topologies.by_name name in
      Hashtbl.replace t.tbl name v;
      Mutex.unlock t.lock;
      (* outside the table lock: Profile has its own mutex and dedups
         concurrent warms *)
      Option.iter Profile.precompute v;
      v

  let prewarm t = List.iter (fun n -> ignore (resolve t n)) [ "tokyo"; "melbourne" ]
end

(* ------------------------------------------------------------------ *)

type config = {
  workers : int;
  queue_capacity : int;
  sort : bool;
  timings : bool;
  cache : Cache.t option;
}

let default_config () =
  {
    workers = Pool.default_workers ();
    queue_capacity = 256;
    sort = false;
    timings = false;
    cache = Some (Cache.create ~capacity:4096);
  }

type stats = {
  requests : int;
  errors : int;
  cache_stats : Cache.stats option;
}

(* One processed line, ready to render. *)
type outcome = {
  id : string option;  (** [None] = the line never parsed *)
  line : int;  (** 1-based input line number *)
  body : (string * Json.t) list;
  cached : bool;
  ms : float;
}

let error_body ?extra ~kind detail =
  ("ok", Json.Bool false)
  :: (match extra with Some fs -> fs | None -> [])
  @ [
      ( "error",
        Json.Assoc
          [ ("kind", Json.String kind); ("detail", Json.String detail) ] );
    ]

let is_error body =
  match List.assoc_opt "ok" body with Some (Json.Bool true) -> false | _ -> true

let metrics_fields ~device ~policy ~qubits ~(metrics : Metrics.t) ~swaps =
  [
    ("ok", Json.Bool true);
    ("device", Json.String device.Device.name);
    ("policy", Json.String policy);
    ("qubits", Json.Int qubits);
    ("depth", Json.Int metrics.Metrics.depth);
    ("gates", Json.Int metrics.Metrics.gate_count);
    ("two_qubit", Json.Int metrics.Metrics.two_qubit_count);
    ("swaps", Json.Int swaps);
  ]

(* Compile the QAOA ansatz of a graph request with the requested
   policy (the paper pipeline). *)
let compile_graph (req : Request.t) device ~n ~edges =
  let problem = Problem.of_maxcut (Graph.of_edges n edges) in
  let params =
    {
      Ansatz.gammas = Array.make req.Request.p req.Request.gamma;
      betas = Array.make req.Request.p req.Request.beta;
    }
  in
  let options =
    {
      Compile.default_options with
      seed = req.Request.seed;
      measure = req.Request.measure;
      verify = req.Request.verify;
    }
  in
  match
    Compile.compile_result ~options ~strategy:req.Request.policy device problem
      params
  with
  | Ok r ->
    metrics_fields ~device
      ~policy:(Compile.strategy_name req.Request.policy)
      ~qubits:n ~metrics:r.Compile.metrics ~swaps:r.Compile.swap_count
    @ (if req.Request.verify then [ ("verified", Json.Bool true) ] else [])
    @
    if req.Request.qasm_out then
      [ ("qasm", Json.String (Qasm.to_string r.Compile.circuit)) ]
    else []
  | Error e ->
    error_body ~kind:(Compile.error_kind e) (Compile.error_to_string e)

(* Route a raw OpenQASM program straight through the backend router
   under the trivial initial mapping; the policy field is moot. *)
let route_qasm (req : Request.t) device ~qasm =
  match Qasm.of_string qasm with
  | exception Failure msg -> error_body ~kind:"bad_request" msg
  | circuit -> (
    let nq = Circuit.num_qubits circuit in
    let available = Device.num_qubits device in
    if nq > available then
      error_body ~kind:"too_many_qubits"
        (Printf.sprintf "program needs %d qubits but the device has %d" nq
           available)
    else
      let initial = Mapping.trivial ~num_logical:nq ~num_physical:available in
      match Router.route ~device ~initial circuit with
      | routed ->
        metrics_fields ~device ~policy:"route" ~qubits:nq
          ~metrics:(Metrics.of_circuit routed.Router.circuit)
          ~swaps:routed.Router.swap_count
        @
        if req.Request.qasm_out then
          [ ("qasm", Json.String (Qasm.to_string routed.Router.circuit)) ]
        else []
      | exception Router.Unroutable detail ->
        error_body ~kind:"unroutable" detail)

let compute_body devices (req : Request.t) =
  match Devices.resolve devices req.Request.device with
  | None ->
    error_body ~kind:"unknown_device"
      (Printf.sprintf "unknown device %S; known: %s" req.Request.device
         (String.concat ", " Topologies.known_names))
  | Some device -> (
    match req.Request.source with
    | Request.Graph { n; edges } -> compile_graph req device ~n ~edges
    | Request.Qasm qasm -> route_qasm req device ~qasm)

let handle devices cache (line_no, line) =
  Trace.with_span "serve.request" @@ fun () ->
  let t0 = Clock.wall () in
  Metrics_registry.incr "serve.requests";
  let finish ?id ?(cached = false) body =
    if is_error body then Metrics_registry.incr "serve.errors";
    let ms = 1e3 *. (Clock.wall () -. t0) in
    Metrics_registry.observe "serve.request_ms" ms;
    { id; line = line_no; body; cached; ms }
  in
  match Request.of_line line with
  | Error msg ->
    finish (error_body ~extra:[ ("line", Json.Int line_no) ] ~kind:"bad_request" msg)
  | Ok req -> (
    let id = req.Request.id in
    match cache with
    | None -> finish ~id (compute_body devices req)
    | Some c -> (
      let key = Request.cache_key req in
      match Cache.find c key with
      | Some body -> finish ~id ~cached:true body
      | None ->
        let body = compute_body devices req in
        Cache.store c key body;
        finish ~id body))

let render config outcome =
  let id_json =
    match outcome.id with Some s -> Json.String s | None -> Json.Null
  in
  let diagnostics =
    if config.timings then
      [
        ("cached", Json.Bool outcome.cached); ("ms", Json.Float outcome.ms);
      ]
    else []
  in
  Json.to_string (Json.Assoc (("id", id_json) :: outcome.body @ diagnostics))

let sort_key outcome = (Option.value ~default:"" outcome.id, outcome.line)

let serve config ~produce ~emit =
  if config.workers < 1 then invalid_arg "Serve: workers must be >= 1";
  if config.queue_capacity < 1 then
    invalid_arg "Serve: queue_capacity must be >= 1";
  let devices = Devices.create () in
  Devices.prewarm devices;
  let requests = ref 0 and errors = ref 0 in
  let note outcome =
    incr requests;
    if is_error outcome.body then incr errors
  in
  (* [sort] needs the full result set before emitting anything, so it
     accumulates and flushes after the pool drains; the default mode
     emits immediately in input order. *)
  let sorted_acc = ref [] in
  let consume _seq outcome =
    if config.sort then sorted_acc := outcome :: !sorted_acc
    else begin
      note outcome;
      emit (render config outcome)
    end
  in
  let _count =
    Pool.stream ~workers:config.workers ~queue_capacity:config.queue_capacity
      ~produce ~consume (handle devices config.cache)
  in
  if config.sort then
    List.iter
      (fun outcome ->
        note outcome;
        emit (render config outcome))
      (List.sort
         (fun a b -> compare (sort_key a) (sort_key b))
         (List.rev !sorted_acc));
  {
    requests = !requests;
    errors = !errors;
    cache_stats = Option.map Cache.stats config.cache;
  }

let run config ic oc =
  let line_no = ref 0 in
  let produce () =
    match input_line ic with
    | line ->
      incr line_no;
      Some (!line_no, line)
    | exception End_of_file -> None
  in
  let stats =
    serve config ~produce ~emit:(fun line ->
        output_string oc line;
        output_char oc '\n')
  in
  flush oc;
  stats

let run_lines config lines =
  let remaining = ref lines in
  let line_no = ref 0 in
  let produce () =
    match !remaining with
    | [] -> None
    | l :: rest ->
      remaining := rest;
      incr line_no;
      Some (!line_no, l)
  in
  let out = ref [] in
  let stats = serve config ~produce ~emit:(fun line -> out := line :: !out) in
  (List.rev !out, stats)

(* ------------------------------------------------------------------ *)

let gen_corpus ?(device = "tokyo") ~seed ~count () =
  let policies = [| "naive"; "greedyv"; "greedye"; "qaim"; "ip"; "ic" |] in
  let probs = [| 0.3; 0.5; 0.7 |] in
  List.init count (fun i ->
      let rng = Rng.create (seed + (7919 * i)) in
      let n = 12 + (i mod 7) in
      let p = probs.(i mod Array.length probs) in
      (* redraw edgeless graphs - an empty cost layer is a request
         error by construction *)
      let rec draw () =
        let g = Generators.erdos_renyi rng ~n ~p in
        if Graph.num_edges g = 0 then draw () else g
      in
      let g = draw () in
      let policy =
        Option.get
          (Compile.strategy_of_string policies.(i mod Array.length policies))
      in
      let req =
        {
          Request.id = Printf.sprintf "req-%04d" i;
          source = Request.Graph { n; edges = Graph.edges g };
          device;
          policy;
          seed = seed + i;
          p = 1;
          gamma = 0.7;
          beta = 0.4;
          measure = true;
          verify = i mod 5 = 0;
          qasm_out = false;
        }
      in
      Json.to_string (Request.to_json req))
