module Json = Qaoa_obs.Json
module Compile = Qaoa_core.Compile
module Graph = Qaoa_graph.Graph

type source = Graph of { n : int; edges : (int * int) list } | Qasm of string

type t = {
  id : string;
  source : source;
  device : string;
  policy : Compile.strategy;
  seed : int;
  p : int;
  gamma : float;
  beta : float;
  measure : bool;
  verify : bool;
  analyze : bool;
  qasm_out : bool;
}

let known_fields =
  [
    "id"; "graph"; "qasm"; "device"; "policy"; "seed"; "p"; "gamma"; "beta";
    "packing_limit"; "measure"; "verify"; "analyze"; "qasm_out";
  ]

let ( let* ) = Result.bind

let int_field ~default name json =
  match Json.member name json with
  | None -> Ok default
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let float_field ~default name json =
  match Json.member name json with
  | None -> Ok default
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some (Json.Float f) ->
    (* "1e999" parses to infinity; NaN/inf angles would flow into gate
       parameters and poison every downstream float, so stop them at
       the door with a locatable bad_request *)
    if Float.is_finite f then Ok f
    else Error (Printf.sprintf "field %S must be a finite number" name)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

let bool_field ~default name json =
  match Json.member name json with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let string_field ~default name json =
  match Json.member name json with
  | None -> Ok default
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let parse_id json =
  match Json.member "id" json with
  | Some (Json.String s) when s <> "" -> Ok s
  | Some (Json.Int i) -> Ok (string_of_int i)
  | Some _ -> Error "field \"id\" must be a non-empty string or an integer"
  | None -> Error "missing required field \"id\""

let parse_edges n edges =
  let rec go acc = function
    | [] -> Ok (List.sort_uniq compare acc)
    | Json.List [ Json.Int u; Json.Int v ] :: rest ->
      if u = v then Error (Printf.sprintf "self-loop edge [%d, %d]" u v)
      else if u < 0 || v < 0 || u >= n || v >= n then
        Error (Printf.sprintf "edge [%d, %d] out of range for n=%d" u v n)
      else go ((min u v, max u v) :: acc) rest
    | _ :: _ -> Error "edges must be [u, v] integer pairs"
  in
  go [] edges

let parse_source json =
  match (Json.member "graph" json, Json.member "qasm" json) with
  | Some _, Some _ -> Error "give either \"graph\" or \"qasm\", not both"
  | None, None -> Error "missing problem: give \"graph\" or \"qasm\""
  | None, Some (Json.String q) ->
    if String.trim q = "" then Error "field \"qasm\" must be non-empty"
    else Ok (Qasm q)
  | None, Some _ -> Error "field \"qasm\" must be a string"
  | Some g, None -> (
    match (Json.member "n" g, Json.member "edges" g) with
    | Some (Json.Int n), Some (Json.List edges) ->
      if n < 1 then Error "graph.n must be >= 1"
      else
        let* edges = parse_edges n edges in
        if edges = [] then Error "graph has no edges (no cost layer to compile)"
        else Ok (Graph { n; edges })
    | _ -> Error "field \"graph\" must be {\"n\": int, \"edges\": [[u,v],...]}")

let parse_policy json =
  let* name = string_field ~default:"ic" "policy" json in
  match Compile.strategy_of_string name with
  | None ->
    Error
      (Printf.sprintf
         "unknown policy %S (expected naive | greedyv | greedye | vqa | qaim \
          | ip | ic | vic)"
         name)
  | Some s -> (
    match Json.member "packing_limit" json with
    | None -> Ok s
    | Some (Json.Int l) when l >= 1 -> (
      match s with
      | Compile.Ic _ -> Ok (Compile.Ic (Some l))
      | Compile.Vic _ -> Ok (Compile.Vic (Some l))
      | _ -> Error "packing_limit only applies to policies ic and vic")
    | Some _ -> Error "field \"packing_limit\" must be an integer >= 1")

type control = Ping | Stats

let control_of_line line =
  match Json.of_string_opt line with
  | Some (Json.Assoc fields) -> (
    match List.assoc_opt "op" fields with
    | None -> None
    | Some op ->
      Some
        (match op with
        | Json.String ("ping" | "stats") when List.length fields > 1 ->
          Error "control request carries fields besides \"op\""
        | Json.String "ping" -> Ok Ping
        | Json.String "stats" -> Ok Stats
        | Json.String other ->
          Error
            (Printf.sprintf "unknown op %S (expected \"ping\" or \"stats\")"
               other)
        | _ -> Error "field \"op\" must be a string"))
  | _ -> None

let of_line line =
  match Json.of_string_opt line with
  | None -> Error "malformed JSON"
  | Some (Json.Assoc fields as json) -> (
    match
      List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields
    with
    | Some (k, _) -> Error (Printf.sprintf "unknown field %S" k)
    | None ->
      let* id = parse_id json in
      let* source = parse_source json in
      let* policy = parse_policy json in
      let* device = string_field ~default:"tokyo" "device" json in
      let* seed = int_field ~default:42 "seed" json in
      let* p = int_field ~default:1 "p" json in
      let* gamma = float_field ~default:0.7 "gamma" json in
      let* beta = float_field ~default:0.4 "beta" json in
      let* measure = bool_field ~default:true "measure" json in
      let* verify = bool_field ~default:false "verify" json in
      let* analyze = bool_field ~default:false "analyze" json in
      let* qasm_out = bool_field ~default:false "qasm_out" json in
      if p < 1 then Error "field \"p\" must be >= 1"
      else
        Ok
          {
            id;
            source;
            device;
            policy;
            seed;
            p;
            gamma;
            beta;
            measure;
            verify;
            analyze;
            qasm_out;
          })
  | Some _ -> Error "request must be a JSON object"

let policy_tag t =
  (* stable lower-case policy tag; the packing limit is rendered
     separately so "ic" round-trips as "ic" *)
  match t.policy with
  | Compile.Naive -> "naive"
  | Compile.Greedy_v -> "greedyv"
  | Compile.Greedy_e -> "greedye"
  | Compile.Vqa_alloc -> "vqa"
  | Compile.Qaim -> "qaim"
  | Compile.Ip -> "ip"
  | Compile.Ic _ -> "ic"
  | Compile.Vic _ -> "vic"

let packing_limit t =
  match t.policy with
  | Compile.Ic (Some l) | Compile.Vic (Some l) -> Some l
  | _ -> None

let to_json t =
  let source_fields =
    match t.source with
    | Graph { n; edges } ->
      [
        ( "graph",
          Json.Assoc
            [
              ("n", Json.Int n);
              ( "edges",
                Json.List
                  (List.map
                     (fun (u, v) -> Json.List [ Json.Int u; Json.Int v ])
                     edges) );
            ] );
      ]
    | Qasm q -> [ ("qasm", Json.String q) ]
  in
  Json.Assoc
    (("id", Json.String t.id)
    :: source_fields
    @ [
        ("device", Json.String t.device);
        ("policy", Json.String (policy_tag t));
      ]
    @ (match packing_limit t with
      | Some l -> [ ("packing_limit", Json.Int l) ]
      | None -> [])
    @ [
        ("seed", Json.Int t.seed);
        ("p", Json.Int t.p);
        ("gamma", Json.Float t.gamma);
        ("beta", Json.Float t.beta);
        ("measure", Json.Bool t.measure);
        ("verify", Json.Bool t.verify);
        ("analyze", Json.Bool t.analyze);
        ("qasm_out", Json.Bool t.qasm_out);
      ])

let fingerprint t =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match t.source with
  | Graph { n; edges } ->
    add "graph=%d:" n;
    List.iter (fun (u, v) -> add "%d-%d," u v) edges
  | Qasm q -> add "qasm=%s" q);
  add ";device=%s;policy=%s" t.device (Compile.strategy_name t.policy);
  (* hex floats: exact, no decimal-rounding aliasing *)
  add ";seed=%d;p=%d;gamma=%h;beta=%h" t.seed t.p t.gamma t.beta;
  add ";measure=%b;verify=%b;analyze=%b;qasm_out=%b" t.measure t.verify
    t.analyze t.qasm_out;
  Buffer.contents buf

let graph_hash t =
  match t.source with
  | Graph { n; edges } -> Graph.canonical_hash (Graph.of_edges n edges)
  | Qasm q -> Hashtbl.hash q

let cache_key t =
  { Cache.graph_hash = graph_hash t; fingerprint = fingerprint t }
