(** Persistent artifact cache: a crash-tolerant on-disk journal for
    {!Cache}.

    Every cacheable response body is appended to
    [<dir>/cache.jsonl] as one checksummed record -
    [CRCHEX {"graph_hash":..,"fingerprint":"..","body":{..}}\n] - the
    same framing as the sweep journal ({!Qaoa_journal.Journal}), so the
    same durability reasoning applies: records are flushed as they are
    written, a crash can lose at most the record being appended, and a
    torn trailing record is detected by its checksum and truncated off
    on reload.

    Unlike the sweep journal, a cache is disposable warmth rather than
    authoritative data, so reload survives {e any} corruption: a
    corrupt mid-file record is dropped and counted instead of refusing
    the file.  Every surviving record re-passed its CRC, so the bytes
    preloaded into the cache are exactly the bytes a fresh compile
    produced before the crash - the [cached = fresh] byte-equality
    invariant holds across restarts.

    Appends run under a mutex (workers' stores are already serialized
    by the consume path, but the daemon drain also writes) and pass
    through {!Qaoa_journal.Chaos} interception, so [QAOA_CHAOS]
    crash/tear plans exercise this journal exactly like the sweep one.

    Counters: [serve.cache.journal_appends], [serve.cache.dropped],
    [serve.cache.torn_truncated], [serve.cache.compactions] (and
    [serve.cache.reloaded] via {!Cache.preload}). *)

type t

type stats = {
  s_loaded : int;  (** records reloaded into the cache at open *)
  s_appended : int;  (** records appended this process *)
  s_dropped : int;  (** corrupt mid-file records dropped at open *)
  s_torn_truncated : int;  (** torn trailing records truncated at open *)
}

val default_filename : string
(** ["cache.jsonl"]. *)

val open_ : ?resume:bool -> dir:string -> Cache.t -> t
(** Open (creating [dir] as needed) the cache journal.  With
    [~resume:true] the existing journal is first reloaded into the
    cache via {!Cache.preload} (truncating a torn tail in place,
    dropping corrupt records); without it any previous journal is
    discarded - a cache journal is warmth, not data, so no
    {!Qaoa_journal.Journal.open_}-style refusal.  Registers an
    [at_exit] {!close}. *)

val path : t -> string

val append : t -> Cache.key -> (string * Qaoa_obs.Json.t) list -> unit
(** Append one cache insertion, flushed before return.  Subject to
    chaos interception ({!Qaoa_journal.Chaos.Injected} propagates in
    [Raise] mode).  Silently dropped after {!close} - a late store only
    loses warmth. *)

val compact : t -> Cache.t -> unit
(** Rewrite the journal to exactly the cache's current live entries in
    LRU order, via {!Qaoa_journal.Atomic_write} (a crash mid-compaction
    leaves the previous journal intact). *)

val finish : t -> Cache.t -> unit
(** Compact iff the journal holds dead records (evictions, drops,
    superseded duplicates), then {!close}.  The drain path. *)

val close : t -> unit
(** Flush, fsync and close.  Idempotent. *)

val stats : t -> stats
