(** Daemon mode: the serving loop behind a Unix-domain socket.

    Clients connect to the socket and speak exactly the batch protocol
    - JSONL requests in, JSONL responses out - so
    [nc -U sock < corpus.jsonl] works unchanged.  Connections are
    multiplexed through one select loop feeding the shared worker
    pool, so every connection shares the device table, the supervisor
    (breaker state) and the artifact cache.

    {b Ordering.}  Requests are submitted in arrival order and the
    pool's reorder buffer hands responses back in that same global
    order, so each connection receives its responses in the order it
    sent its requests.  Responses interleave with other connections'
    work (a blocked response can wait on an earlier slow request from
    another connection - acceptable for a batch-compilation service).

    {b Fault containment.}  A poisoned request line is a structured
    [ok:false] response on its own connection; a client that
    disconnects mid-flight costs an EPIPE on its own writes.  Neither
    takes down the daemon or perturbs other connections' bytes.

    {b Drain.}  When the [drain] flag goes nonzero (SIGINT/SIGTERM via
    {!Qaoa_journal.Signals.install_drain}), the daemon stops accepting
    (the socket file is unlinked), finishes every submitted request,
    writes the responses out, closes all connections and returns; the
    caller then flushes its cache journal and exits 130/143.

    Counters: [serve.connections], [serve.inflight] (up-down), plus
    everything {!Serve} counts. *)

val run :
  ?on_ready:(unit -> unit) ->
  Serve.config ->
  socket_path:string ->
  drain:int Atomic.t ->
  Serve.stats
(** Bind [socket_path] (replacing a stale socket file), serve until
    [drain] goes nonzero, and return the run's stats.  [on_ready] fires
    once the socket is listening (CI uses it to synchronize).
    @raise Invalid_argument if [config.sort] is set (a daemon stream
    has no end to sort) or on a non-positive [workers] /
    [queue_capacity].
    @raise Unix.Unix_error if the socket cannot be bound. *)
