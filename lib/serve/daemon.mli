(** Daemon mode: the serving loop behind a Unix-domain socket.

    Clients connect to the socket and speak exactly the batch protocol
    - JSONL requests in, JSONL responses out - so
    [nc -U sock < corpus.jsonl] works unchanged.  Connections are
    multiplexed through one select loop feeding the shared worker
    pool, so every connection shares the device table, the supervisor
    (breaker state) and the artifact cache.

    {b Ordering.}  Requests are submitted in arrival order and the
    pool's reorder buffer hands responses back in that same global
    order, so each connection receives its responses in the order it
    sent its requests.  Responses interleave with other connections'
    work (a blocked response can wait on an earlier slow request from
    another connection - acceptable for a batch-compilation service).

    {b Fault containment.}  A poisoned request line is a structured
    [ok:false] response on its own connection; a client that
    disconnects mid-flight costs an EPIPE on its own writes.  Neither
    takes down the daemon or perturbs other connections' bytes.

    {b Drain.}  When the [drain] flag goes nonzero (SIGINT/SIGTERM via
    {!Qaoa_journal.Signals.install_drain}), the daemon stops accepting
    (the socket file is unlinked), finishes every submitted request,
    writes the responses out, closes all connections and returns; the
    caller then flushes its cache journal and exits 130/143.

    Counters: [serve.connections], [serve.inflight] (up-down), plus
    everything {!Serve} counts. *)

module Client : sig
  (** Line-framed client for the daemon protocol: connect with a
      deadline, send a JSONL line, await the framed reply.  Replaces
      the ad-hoc [Unix] call sites the supervisor's probe/route path
      and the tests used to open - every loop here is EINTR-safe and
      every wait is bounded.

      Blocking and single-threaded by design: the shard supervisor
      uses {!connect}/{!fd} and multiplexes reads itself, while probes
      and tests use the synchronous {!request}. *)

  type t

  exception Timeout of string
  (** A bounded wait expired: {!connect} found nothing accepting
      within its deadline, or {!recv_line} saw no complete reply
      within its. *)

  val connect : ?timeout_s:float -> string -> t
  (** Connect to the daemon socket at the given path, retrying while
      the socket file is missing or nothing accepts yet (the normal
      window between a child's fork and its bind) until [timeout_s]
      (default 10s) expires.  @raise Timeout when the deadline passes.
      @raise Unix.Unix_error for non-retryable connect failures. *)

  val fd : t -> Unix.file_descr
  (** The connected descriptor, for callers running their own select
      loop.  Mixing [fd]-level reads with {!recv_line} on the same
      client skips {!t}'s framing buffer - use one or the other. *)

  val send_line : t -> string -> unit
  (** Write [line ^ "\n"], completing short writes and retrying EINTR.
      @raise Unix.Unix_error (e.g. [EPIPE]) if the daemon is gone. *)

  val recv_line : ?timeout_s:float -> t -> string option
  (** Await the next framed line (default deadline 30s).  [None] means
      the daemon closed the connection (EOF with no buffered line).
      @raise Timeout when the deadline expires first. *)

  val request : ?timeout_s:float -> t -> string -> string option
  (** {!send_line} then {!recv_line}.  Only sound when no other
      request is in flight on this connection (responses are FIFO). *)

  val poll_line : t -> [ `Line of string | `Eof | `Nothing ]
  (** Non-blocking: drain whatever the kernel already buffered and
      return one framed line, [`Eof] once the daemon closed and the
      buffer holds no complete line, or [`Nothing].  For callers
      multiplexing many clients through their own select loop ({!fd});
      unlike raw [fd] reads this keeps {!t}'s framing buffer honest. *)

  val close : t -> unit
  (** Close the descriptor.  Idempotent. *)
end

val run :
  ?on_ready:(unit -> unit) ->
  ?shutdown_fd:Unix.file_descr ->
  Serve.config ->
  socket_path:string ->
  drain:int Atomic.t ->
  Serve.stats
(** Bind [socket_path] (replacing a stale socket file), serve until
    [drain] goes nonzero, and return the run's stats.  [on_ready] fires
    once the socket is listening (CI uses it to synchronize).

    [shutdown_fd], when given, is watched in the select loop; when it
    turns readable at EOF the daemon sets [drain] to 143 itself.  The
    shard supervisor passes the read end of a pipe whose write end
    only the parent holds, so a shard whose parent dies - even by
    SIGKILL, which fans out nothing - self-drains instead of lingering
    as an orphan listening on an unlinked socket (and worse, sharing
    its cache journal with the respawned fleet's child).

    @raise Invalid_argument if [config.sort] is set (a daemon stream
    has no end to sort) or on a non-positive [workers] /
    [queue_capacity].
    @raise Unix.Unix_error if the socket cannot be bound. *)
