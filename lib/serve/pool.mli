(** OCaml 5 [Domain]-based worker pool with a bounded work queue.

    Two entry points:

    - {!map} for batch fan-out over an in-memory array (work stealing
      via an atomic index - no queue needed, perfectly balanced);
    - {!stream} for the serving loop: items are pulled lazily from a
      producer, at most [queue_capacity] items are in flight
      (submitted but not yet consumed - this bounds both the work
      queue and the reorder buffer, giving the producer backpressure),
      and results are handed to the consumer {e in submission order}
      from the calling domain, so output is deterministic regardless
      of worker count or completion interleaving.

    The job function runs on worker domains: it must not touch
    non-synchronized shared mutable state (see the reentrancy notes on
    {!Qaoa_core.Compile.compile}).  Exceptions raised by a job are
    captured; remaining items still run, and the first exception (in
    submission order for [stream], in index order for [map]) is
    re-raised after all workers have been joined. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : ?workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~workers f arr] applies [f] to every element across [workers]
    domains (the calling domain participates, so exactly
    [workers - 1] domains are spawned) and returns the results in
    input order.  [workers] defaults to {!default_workers}; it is
    clamped to the array length.  @raise Invalid_argument if
    [workers < 1]. *)

val stream :
  ?workers:int ->
  ?queue_capacity:int ->
  produce:(unit -> 'a option) ->
  consume:(int -> 'b -> unit) ->
  ('a -> 'b) ->
  int
(** [stream ~produce ~consume f] pulls items from [produce] until it
    returns [None], runs [f] on a pool of [workers] domains, and calls
    [consume seq result] in strictly increasing [seq] (submission)
    order.  [produce] and [consume] both run on the calling domain
    only.  Returns the number of items processed.  [queue_capacity]
    (default 64) bounds the in-flight window.  @raise Invalid_argument
    if [workers < 1] or [queue_capacity < 1]. *)

type 'a poll =
  | Item of 'a
  | Block
      (** no item at this instant, stream not over: the driver drains
          completed results and polls again.  A [Block]-returning
          producer must do its own bounded blocking (e.g. a select
          timeout), or the driver busy-spins. *)
  | Eof

val stream_poll :
  ?workers:int ->
  ?queue_capacity:int ->
  produce:(unit -> 'a poll) ->
  consume:(int -> 'b -> unit) ->
  ('a -> 'b) ->
  int
(** {!stream} generalized for producers that wait on external input
    (the daemon's socket select loop): [Block] lets completed responses
    flow to [consume] while the producer has nothing to submit, which
    is what keeps a request/await client from deadlocking against a
    batch-oriented drain. *)
