module Json = Qaoa_obs.Json
module Metrics_registry = Qaoa_obs.Metrics_registry

(* ------------------------------------------------------------------ *)
(* Pure supervision arithmetic                                         *)

module Backoff = struct
  let delay_s ~base_s ~cap_s ~attempt =
    let attempt = max 1 attempt in
    Float.min cap_s (base_s *. (2. ** float_of_int (attempt - 1)))
end

module Flap = struct
  type t = { window_s : float; threshold : int; mutable hits : float list }

  let create ~window_s ~threshold = { window_s; threshold; hits = [] }

  let prune t ~now =
    t.hits <- List.filter (fun ts -> now -. ts <= t.window_s) t.hits

  let note t ~now =
    prune t ~now;
    t.hits <- now :: t.hits

  let count t ~now =
    prune t ~now;
    List.length t.hits

  let flapping t ~now = count t ~now >= t.threshold
end

module Streak = struct
  type t = { need : int; mutable run : int }

  let create ~need = { need; run = 0 }
  let hit t = t.run <- t.run + 1
  let miss t = t.run <- 0
  let reached t = t.run >= t.need
end

let owner ~shards hash = ((hash mod shards) + shards) mod shards

let route ~shards ~alive hash =
  let o = owner ~shards hash in
  let rec go k =
    if k = shards then None
    else
      let s = (o + k) mod shards in
      if alive s then Some s else go (k + 1)
  in
  go 0

let mark_rerouted line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '}' then
    String.sub line 0 (n - 1) ^ ",\"rerouted\":true}"
  else line

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type child_fn =
  slot:int ->
  generation:int ->
  socket_path:string ->
  shutdown_fd:Unix.file_descr ->
  int

type config = {
  shards : int;
  socket_dir : string;
  child : child_fn;
  sort : bool;
  timings : bool;
  probe_interval_s : float;
  probe_timeout_s : float;
  backoff_base_s : float;
  backoff_cap_s : float;
  flap_window_s : float;
  flap_threshold : int;
  readopt_streak : int;
  give_up_attempts : int;
  inflight_per_shard : int;
  drain : int Atomic.t option;
  on_spawn : (slot:int -> generation:int -> pid:int -> unit) option;
}

let default_config ~shards ~socket_dir ~child () =
  {
    shards;
    socket_dir;
    child;
    sort = false;
    timings = false;
    probe_interval_s = 0.25;
    probe_timeout_s = 10.0;
    backoff_base_s = 0.05;
    backoff_cap_s = 1.0;
    flap_window_s = 10.0;
    flap_threshold = 3;
    readopt_streak = 5;
    give_up_attempts = 25;
    inflight_per_shard = 32;
    drain = None;
    on_spawn = None;
  }

type stats = {
  requests : int;
  errors : int;
  spawned : int;
  restarts : int;
  rerouted : int;
  probe_failures : int;
  flapped : int;
  shard_stats : (int * string) list;
}

(* ------------------------------------------------------------------ *)
(* Fleet state                                                         *)

type entry = {
  seq : int;  (** global submission order - the reorder key *)
  e_id : string option;
  e_line : int;
  payload : string;
  hash : int;
  mutable replays : int;
  mutable rerouted : bool;
}

type pending = Probe of float | StatsQ | Req of entry

type link = {
  client : Daemon.Client.t;
  pending : pending Queue.t;  (** FIFO: responses match 1:1 in order *)
  mutable last_rx : float;
  mutable last_probe : float;  (** send time of the most recent probe *)
  mutable probe_sent : float option;  (** outstanding probe, if any *)
}

type slot = {
  idx : int;
  socket_path : string;
  mutable pid : int;  (** -1 = no child *)
  mutable death_w : Unix.file_descr option;  (** parent-death pipe *)
  mutable generation : int;  (** forks so far *)
  mutable link : link option;
  mutable degraded : bool;
  mutable gave_up : bool;
  mutable next_spawn : float;
  mutable attempt : int;  (** consecutive deaths; reset by any rx *)
  flap : Flap.t;
  streak : Streak.t;
  mutable stats_line : string option;
}

type t = {
  cfg : config;
  slots : slot array;
  child_cleanup : unit -> unit;  (** extra fds to close in the child *)
  parked : entry Queue.t;  (** routed nowhere yet (dead/busy owner) *)
  mutable completed : (entry * string) list;  (** drained by the driver *)
  mutable spawned : int;
  mutable restarts : int;
  mutable rerouted_n : int;
  mutable probe_failures : int;
  mutable flapped : int;
  mutable draining : bool;  (** no admission, no respawn *)
}

(* The running fleet, for the signal handler's fan-out.  Reading a
   mutable array from a handler is safe; there is at most one fleet
   per process. *)
let current : t option ref = ref None

let live_pids () =
  match !current with
  | None -> []
  | Some t ->
    Array.to_list t.slots
    |> List.filter_map (fun s -> if s.pid > 0 then Some s.pid else None)

let req_count l =
  Queue.fold (fun n -> function Req _ -> n + 1 | _ -> n) 0 l.pending

let inflight t =
  Array.to_list t.slots
  |> List.fold_left
       (fun n s -> match s.link with Some l -> n + req_count l | None -> n)
       0

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Spawning and death                                                  *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Fork one child for [slot].  The child closes every parent-side fd
   of the rest of the fleet (so a sibling's death pipe still signals
   EOF and a sibling's socket still resets) plus whatever the driver
   registered, then runs the child function and _exits - bypassing
   inherited at_exit finalizers, which belong to the parent. *)
let spawn t slot ~now =
  let g = slot.generation in
  slot.generation <- g + 1;
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let code =
      try
        Unix.close w;
        Array.iter
          (fun s ->
            (match s.death_w with Some fd -> close_quiet fd | None -> ());
            match s.link with
            | Some l -> Daemon.Client.close l.client
            | None -> ())
          t.slots;
        t.child_cleanup ();
        t.cfg.child ~slot:slot.idx ~generation:g
          ~socket_path:slot.socket_path ~shutdown_fd:r
      with _ -> 125
    in
    Unix._exit code
  | pid ->
    Unix.close r;
    slot.pid <- pid;
    slot.death_w <- Some w;
    t.spawned <- t.spawned + 1;
    Metrics_registry.incr "serve.shard.spawned";
    if g > 0 then begin
      t.restarts <- t.restarts + 1;
      Metrics_registry.incr "serve.shard.restarts"
    end;
    (match t.cfg.on_spawn with
    | Some f -> f ~slot:slot.idx ~generation:g ~pid
    | None -> ());
    (* connect in short slices, watching for the child dying before it
       binds - a crash-on-start child must cost ~0.1s and a backoff,
       not the full connect deadline *)
    let deadline = now +. 10.0 in
    let rec link_up () =
      match Daemon.Client.connect ~timeout_s:0.1 slot.socket_path with
      | client ->
        slot.link <-
          Some
            {
              client;
              pending = Queue.create ();
              last_rx = now;
              last_probe = now;
              probe_sent = None;
            }
      | exception Daemon.Client.Timeout _ -> (
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> if Unix.gettimeofday () < deadline then link_up ()
        | _, _ -> slot.pid <- -1 (* died before binding; already reaped *)
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> slot.pid <- -1
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> link_up ())
    in
    link_up ()

(* A slot's child is gone (reaped, EOF, or probe deadline): salvage
   nothing further - the driver already drained buffered lines -
   replay in-flight requests to the parked queue, reap, record the
   restart for the flap detector and schedule the respawn. *)
let note_death t slot ~now =
  (match slot.link with
  | Some l ->
    Queue.iter
      (function
        | Req e ->
          e.replays <- e.replays + 1;
          Queue.add e t.parked
        | Probe _ | StatsQ -> ())
      l.pending;
    Daemon.Client.close l.client
  | None -> ());
  slot.link <- None;
  (match slot.death_w with Some fd -> close_quiet fd | None -> ());
  slot.death_w <- None;
  if slot.pid > 0 then begin
    (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] slot.pid)
    with Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  end;
  slot.pid <- -1;
  Flap.note slot.flap ~now;
  Streak.miss slot.streak;
  if (not slot.degraded) && Flap.flapping slot.flap ~now then begin
    slot.degraded <- true;
    t.flapped <- t.flapped + 1;
    Metrics_registry.incr "serve.shard.flapping"
  end;
  slot.attempt <- slot.attempt + 1;
  if slot.attempt > t.cfg.give_up_attempts then slot.gave_up <- true
  else
    slot.next_spawn <-
      now
      +. Backoff.delay_s ~base_s:t.cfg.backoff_base_s
           ~cap_s:t.cfg.backoff_cap_s ~attempt:slot.attempt

(* Drain whatever the child already wrote - the kernel buffer survives
   its death, which is half of the exactly-once story: delivered bytes
   are kept, only the truly unanswered tail is replayed. *)
let pump t slot =
  match slot.link with
  | None -> ()
  | Some l ->
    let rec go () =
      match Daemon.Client.poll_line l.client with
      | `Nothing -> ()
      | `Eof -> note_death t slot ~now:(Unix.gettimeofday ())
      | `Line line ->
        l.last_rx <- Unix.gettimeofday ();
        slot.attempt <- 0;
        (match Queue.take_opt l.pending with
        | None -> () (* spurious line from a confused child; drop *)
        | Some (Probe _) ->
          l.probe_sent <- None;
          if slot.degraded then begin
            Streak.hit slot.streak;
            if Streak.reached slot.streak then begin
              (* stable again: the owner re-adopts its keyspace *)
              slot.degraded <- false;
              Streak.miss slot.streak
            end
          end
        | Some StatsQ -> slot.stats_line <- Some line
        | Some (Req e) ->
          let line =
            if e.rerouted && t.cfg.timings then mark_rerouted line else line
          in
          t.completed <- (e, line) :: t.completed);
        go ()
    in
    go ()

let send_probe t slot ~now =
  match slot.link with
  | None -> ()
  | Some l ->
    if l.probe_sent = None && now -. l.last_probe >= t.cfg.probe_interval_s
    then (
      match Daemon.Client.send_line l.client {|{"op":"ping"}|} with
      | () ->
        l.last_probe <- now;
        l.probe_sent <- Some now;
        Queue.add (Probe now) l.pending
      | exception Unix.Unix_error _ -> note_death t slot ~now)

let check_probe_deadline t slot ~now =
  match slot.link with
  | None -> ()
  | Some l -> (
    match l.probe_sent with
    | Some sent
      when now -. sent > t.cfg.probe_timeout_s
           && now -. l.last_rx > t.cfg.probe_timeout_s ->
      (* unanswered probe and radio silence: the child is wedged, not
         merely busy (a busy child still streams responses) *)
      t.probe_failures <- t.probe_failures + 1;
      Metrics_registry.incr "serve.shard.probe_failures";
      note_death t slot ~now
    | _ -> ())

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

(* Dispatch one entry.  Healthy owners win; a degraded-but-up slot is
   a last resort (better than parking when every healthy slot is
   down).  Backpressure never reroutes: a full owner parks the entry
   instead, so [rerouted] means "owner was down or degraded", not "a
   queue was long". *)
let try_dispatch t e =
  let shards = t.cfg.shards in
  let healthy i = t.slots.(i).link <> None && not t.slots.(i).degraded in
  let up i = t.slots.(i).link <> None in
  let target =
    match route ~shards ~alive:healthy e.hash with
    | Some i -> Some i
    | None -> route ~shards ~alive:up e.hash
  in
  match target with
  | None -> false
  | Some i -> (
    let s = t.slots.(i) in
    match s.link with
    | None -> false
    | Some l ->
      if req_count l >= t.cfg.inflight_per_shard then false
      else (
        match Daemon.Client.send_line l.client e.payload with
        | () ->
          if (i <> owner ~shards e.hash || e.replays > 0) && not e.rerouted
          then begin
            e.rerouted <- true;
            t.rerouted_n <- t.rerouted_n + 1;
            Metrics_registry.incr "serve.shard.rerouted"
          end;
          Queue.add (Req e) l.pending;
          true
        | exception Unix.Unix_error _ ->
          note_death t s ~now:(Unix.gettimeofday ());
          false))

let dispatch_parked t =
  let n = Queue.length t.parked in
  for _ = 1 to n do
    let e = Queue.pop t.parked in
    if not (try_dispatch t e) then Queue.add e t.parked
  done

(* ------------------------------------------------------------------ *)
(* The step: one round of supervision + io                             *)

let reap t slot =
  if slot.pid > 0 then
    match Unix.waitpid [ Unix.WNOHANG ] slot.pid with
    | 0, _ -> ()
    | _, _ ->
      (* already reaped: salvage buffered responses, then bury it *)
      slot.pid <- -1;
      pump t slot;
      if slot.link <> None then
        note_death t slot ~now:(Unix.gettimeofday ())
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
      slot.pid <- -1;
      pump t slot;
      if slot.link <> None then note_death t slot ~now:(Unix.gettimeofday ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let step t ~now =
  Array.iter (fun s -> reap t s) t.slots;
  Array.iter (fun s -> pump t s) t.slots;
  Array.iter
    (fun s ->
      check_probe_deadline t s ~now;
      send_probe t s ~now)
    t.slots;
  if not t.draining then
    Array.iter
      (fun s ->
        if
          s.link = None && s.pid <= 0 && (not s.gave_up)
          && now >= s.next_spawn
        then begin
          spawn t s ~now;
          (* stillborn generation (crashed before binding): record the
             death so backoff/flap arithmetic sees it - otherwise a
             crash-on-start child would respawn in a tight loop *)
          if s.link = None then note_death t s ~now
        end)
      t.slots;
  dispatch_parked t

(* Block until some shard has bytes for us (or [timeout_s] passes) -
   the supervision loop's only wait. *)
let wait_io t ~timeout_s =
  let fds =
    Array.to_list t.slots
    |> List.filter_map (fun s ->
           Option.map (fun l -> Daemon.Client.fd l.client) s.link)
  in
  match Unix.select fds [] [] timeout_s with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Wind-down                                                           *)

(* Ask every live shard for its stats line ({"op":"stats"}), bounded
   wait: a shard that dies mid-question simply reports no stats. *)
let collect_stats t =
  Array.iter
    (fun s ->
      match s.link with
      | None -> ()
      | Some l -> (
        match Daemon.Client.send_line l.client {|{"op":"stats"}|} with
        | () -> Queue.add StatsQ l.pending
        | exception Unix.Unix_error _ ->
          note_death t s ~now:(Unix.gettimeofday ())))
    t.slots;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let outstanding () =
    Array.exists
      (fun s ->
        s.link <> None && s.stats_line = None
        && Queue.fold
             (fun b -> function StatsQ -> true | _ -> b)
             false
             (Option.get s.link).pending)
      t.slots
  in
  while outstanding () && Unix.gettimeofday () < deadline do
    wait_io t ~timeout_s:0.02;
    Array.iter (fun s -> pump t s) t.slots
  done

(* Graceful fleet drain: SIGTERM fan-out (each child records 143,
   finishes in-flight work, flushes its journal, exits), bounded wait,
   SIGKILL stragglers, every child reaped - no zombies survive the
   parent's return. *)
let shutdown t =
  t.draining <- true;
  Array.iter
    (fun s ->
      if s.pid > 0 then
        try Unix.kill s.pid Sys.sigterm with Unix.Unix_error _ -> ())
    t.slots;
  (* closing our end of each protocol socket lets the child's select
     notice the EOF promptly *)
  Array.iter
    (fun s ->
      match s.link with
      | Some l ->
        Daemon.Client.close l.client;
        s.link <- None
      | None -> ())
    t.slots;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec reap_all escalated =
    let remaining =
      Array.to_list t.slots |> List.filter (fun s -> s.pid > 0)
    in
    if remaining <> [] then begin
      List.iter
        (fun s ->
          match Unix.waitpid [ Unix.WNOHANG ] s.pid with
          | 0, _ -> ()
          | _, _ -> s.pid <- -1
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> s.pid <- -1
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        remaining;
      if Array.exists (fun s -> s.pid > 0) t.slots then
        if (not escalated) && Unix.gettimeofday () > deadline then begin
          Array.iter
            (fun s ->
              if s.pid > 0 then
                try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ())
            t.slots;
          reap_all true
        end
        else begin
          (try ignore (Unix.select [] [] [] 0.01)
           with Unix.Unix_error _ -> ());
          reap_all escalated
        end
    end
  in
  reap_all false;
  Array.iter
    (fun s ->
      (match s.death_w with Some fd -> close_quiet fd | None -> ());
      s.death_w <- None)
    t.slots

let fleet_stats t ~requests ~errors =
  {
    requests;
    errors;
    spawned = t.spawned;
    restarts = t.restarts;
    rerouted = t.rerouted_n;
    probe_failures = t.probe_failures;
    flapped = t.flapped;
    shard_stats =
      Array.to_list t.slots
      |> List.filter_map (fun s ->
             Option.map (fun l -> (s.idx, l)) s.stats_line);
  }

let create ?(child_cleanup = fun () -> ()) cfg =
  if cfg.shards < 1 then invalid_arg "Shard: shards must be >= 1";
  (* a send to a freshly-dead child must cost an EPIPE, not the fleet *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  mkdir_p cfg.socket_dir;
  let now = Unix.gettimeofday () in
  let t =
    {
      cfg;
      slots =
        Array.init cfg.shards (fun idx ->
            {
              idx;
              socket_path =
                Filename.concat cfg.socket_dir
                  (Printf.sprintf "shard-%d.sock" idx);
              pid = -1;
              death_w = None;
              generation = 0;
              link = None;
              degraded = false;
              gave_up = false;
              next_spawn = 0.0;
              attempt = 0;
              flap =
                Flap.create ~window_s:cfg.flap_window_s
                  ~threshold:cfg.flap_threshold;
              streak = Streak.create ~need:cfg.readopt_streak;
              stats_line = None;
            });
      child_cleanup;
      parked = Queue.create ();
      completed = [];
      spawned = 0;
      restarts = 0;
      rerouted_n = 0;
      probe_failures = 0;
      flapped = 0;
      draining = false;
    }
  in
  current := Some t;
  Array.iter (fun s -> spawn t s ~now) t.slots;
  (* a slot that forked but never accepted is dead on arrival *)
  Array.iter (fun s -> if s.link = None then note_death t s ~now) t.slots;
  t

let teardown t =
  shutdown t;
  current := None

(* ------------------------------------------------------------------ *)
(* Parent-answered lines                                               *)

(* The parent renders exactly like {!Serve.render} so a line it
   answers is byte-identical to what any worker-count, shard-count or
   plain-batch run produces: unparseable lines carry the {e global}
   line number (a child would have used its own connection-local
   numbering - the reason the parent answers these itself), and ping
   is the same three fields. *)
let render_parent t ~id body =
  let id_json = match id with Some s -> Json.String s | None -> Json.Null in
  let diagnostics =
    if t.cfg.timings then
      [ ("cached", Json.Bool false); ("ms", Json.Float 0.0) ]
    else []
  in
  Json.to_string (Json.Assoc (("id", id_json) :: body @ diagnostics))

let bad_request_body ~line_no msg =
  Supervise.error_body
    ~extra:[ ("line", Json.Int line_no) ]
    ~kind:"bad_request" msg

let unavailable_body ~line_no =
  Supervise.error_body
    ~extra:[ ("line", Json.Int line_no) ]
    ~kind:"shard_unavailable"
    "every shard exhausted its restart budget"

let response_is_error line =
  match Json.of_string_opt line with
  | Some (Json.Assoc fields) ->
    List.assoc_opt "ok" fields = Some (Json.Bool false)
  | _ -> false

(* Classify one input line the way the single-process service would:
   control verbs and unparseable lines are answered by the parent
   (ping with the canonical pong; stats with the fleet's aggregate
   in-flight gauge and no cache - the per-shard caches are reported by
   the wind-down stats collection instead), everything else parses
   into a routable entry. *)
type classified =
  | Answer of { id : string option; line_no : int; body : (string * Json.t) list }
  | Route of { id : string; line_no : int; hash : int }

let classify t (line_no, line) =
  match Request.control_of_line line with
  | Some (Error msg) ->
    Answer { id = None; line_no; body = bad_request_body ~line_no msg }
  | Some (Ok Request.Ping) ->
    Answer
      {
        id = None;
        line_no;
        body = [ ("ok", Json.Bool true); ("op", Json.String "ping") ];
      }
  | Some (Ok Request.Stats) ->
    Answer
      {
        id = None;
        line_no;
        body =
          [
            ("ok", Json.Bool true);
            ("op", Json.String "stats");
            ("inflight", Json.Int (inflight t));
            ("cache", Json.Null);
          ];
      }
  | None -> (
    match Request.of_line line with
    | Error msg ->
      Answer { id = None; line_no; body = bad_request_body ~line_no msg }
    | Ok req ->
      Route
        { id = req.Request.id; line_no; hash = Request.graph_hash req })

(* ------------------------------------------------------------------ *)
(* Batch driver                                                        *)

let sort_key (id, line_no) = (Option.value ~default:"" id, line_no)

let run_batch cfg ~produce ~emit =
  let t = create cfg in
  Fun.protect ~finally:(fun () -> teardown t) @@ fun () ->
  let requests = ref 0 and errors = ref 0 in
  let next_seq = ref 0 in
  let next_emit = ref 0 in
  let ready : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let sorted_acc = ref [] in
  let finished_input = ref false in
  let deliver ~key seq line =
    incr requests;
    if response_is_error line then incr errors;
    if cfg.sort then sorted_acc := (sort_key key, line) :: !sorted_acc
    else begin
      Hashtbl.replace ready seq line;
      while Hashtbl.mem ready !next_emit do
        emit (Hashtbl.find ready !next_emit);
        Hashtbl.remove ready !next_emit;
        incr next_emit
      done
    end
  in
  let drain_requested () =
    match cfg.drain with Some f -> Atomic.get f <> 0 | None -> false
  in
  let admit () =
    (* pull until the fleet's submission window is full; parked
       entries count so a dead owner only buys a bounded backlog *)
    while
      (not !finished_input)
      && (not (drain_requested ()))
      && inflight t + Queue.length t.parked
         < cfg.shards * cfg.inflight_per_shard
    do
      match produce () with
      | None -> finished_input := true
      | Some (line_no, line) -> (
        let seq = !next_seq in
        incr next_seq;
        match classify t (line_no, line) with
        | Answer { id; line_no; body } ->
          deliver ~key:(id, line_no) seq (render_parent t ~id body)
        | Route { id; line_no; hash } ->
          let e =
            {
              seq;
              e_id = Some id;
              e_line = line_no;
              payload = line;
              hash;
              replays = 0;
              rerouted = false;
            }
          in
          if not (try_dispatch t e) then Queue.add e t.parked)
    done
  in
  let flush_completed () =
    let done_ = t.completed in
    t.completed <- [];
    List.iter
      (fun (e, line) -> deliver ~key:(e.e_id, e.e_line) e.seq line)
      done_
  in
  let all_gave_up () = Array.for_all (fun s -> s.gave_up) t.slots in
  let finished () =
    !finished_input && Queue.is_empty t.parked && inflight t = 0
    && t.completed = []
  in
  while not (finished ()) do
    let now = Unix.gettimeofday () in
    if drain_requested () then t.draining <- true;
    step t ~now;
    flush_completed ();
    admit ();
    if all_gave_up () || (t.draining && inflight t = 0) then begin
      (* nowhere left to send the backlog: answer it structurally so
         every input line still gets exactly one response *)
      if drain_requested () then finished_input := true;
      Queue.iter
        (fun e ->
          deliver ~key:(e.e_id, e.e_line) e.seq
            (render_parent t ~id:e.e_id (unavailable_body ~line_no:e.e_line)))
        t.parked;
      Queue.clear t.parked;
      if all_gave_up () then finished_input := true
    end;
    if not (finished ()) then wait_io t ~timeout_s:0.02
  done;
  collect_stats t;
  if cfg.sort then
    List.iter
      (fun (_, line) -> emit line)
      (List.sort
         (fun (a, _) (b, _) -> compare a b)
         (List.rev !sorted_acc));
  let st = fleet_stats t ~requests:!requests ~errors:!errors in
  shutdown t;
  st

let run_lines cfg lines =
  let remaining = ref lines in
  let line_no = ref 0 in
  let produce () =
    match !remaining with
    | [] -> None
    | l :: rest ->
      remaining := rest;
      incr line_no;
      Some (!line_no, l)
  in
  let out = ref [] in
  let st = run_batch cfg ~produce ~emit:(fun line -> out := line :: !out) in
  (List.rev !out, st)

(* ------------------------------------------------------------------ *)
(* Front-daemon driver                                                 *)

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

type fconn = {
  f_fd : Unix.file_descr;
  f_buf : Buffer.t;
  mutable f_line : int;  (** per-connection numbering, like the daemon *)
  mutable f_eof : bool;
  mutable f_alive : bool;
  f_expected : int Queue.t;  (** global seqs in this conn's send order *)
  f_ready : (int, string) Hashtbl.t;
}

let run_front ?(on_ready = fun () -> ()) cfg ~socket_path ~drain =
  if cfg.sort then
    invalid_arg "Shard: sort is batch-only (a daemon stream has no end)";
  let conns : (Unix.file_descr, fconn) Hashtbl.t = Hashtbl.create 8 in
  let listen_fd = ref None in
  (* respawned children must not inherit the front socket or any
     client connection - they would hold them open past our close *)
  let child_cleanup () =
    (match !listen_fd with Some fd -> close_quiet fd | None -> ());
    Hashtbl.iter (fun fd _ -> close_quiet fd) conns
  in
  let t = create ~child_cleanup { cfg with drain = Some drain } in
  Fun.protect ~finally:(fun () -> teardown t) @@ fun () ->
  if Sys.file_exists socket_path then (
    try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX socket_path);
  Unix.listen lfd 16;
  listen_fd := Some lfd;
  on_ready ();
  let accepting = ref true in
  let requests = ref 0 and errors = ref 0 in
  let next_seq = ref 0 in
  let owner_of_seq : (int, fconn) Hashtbl.t = Hashtbl.create 64 in
  let drop c =
    if c.f_alive then begin
      c.f_alive <- false;
      Hashtbl.remove conns c.f_fd;
      close_quiet c.f_fd
    end
  in
  let flush_conn c =
    let rec go () =
      match Queue.peek_opt c.f_expected with
      | Some seq when Hashtbl.mem c.f_ready seq ->
        let line = Hashtbl.find c.f_ready seq in
        Hashtbl.remove c.f_ready seq;
        ignore (Queue.pop c.f_expected);
        Hashtbl.remove owner_of_seq seq;
        if c.f_alive then begin
          match write_all c.f_fd (line ^ "\n") 0 (String.length line + 1) with
          | () -> ()
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
            ->
            drop c
        end;
        go ()
      | _ -> ()
    in
    go ();
    if c.f_eof && Queue.is_empty c.f_expected then drop c
  in
  let deliver seq line =
    incr requests;
    if response_is_error line then incr errors;
    match Hashtbl.find_opt owner_of_seq seq with
    | None -> () (* connection long gone *)
    | Some c ->
      Hashtbl.replace c.f_ready seq line;
      flush_conn c
  in
  let submit c line =
    c.f_line <- c.f_line + 1;
    let seq = !next_seq in
    incr next_seq;
    Queue.add seq c.f_expected;
    Hashtbl.replace owner_of_seq seq c;
    match classify t (c.f_line, line) with
    | Answer { id; line_no = _; body } -> deliver seq (render_parent t ~id body)
    | Route { id; line_no; hash } ->
      let e =
        {
          seq;
          e_id = Some id;
          e_line = line_no;
          payload = line;
          hash;
          replays = 0;
          rerouted = false;
        }
      in
      if not (try_dispatch t e) then Queue.add e t.parked
  in
  let frame_lines c =
    let s = Buffer.contents c.f_buf in
    let rec go off =
      match String.index_from_opt s off '\n' with
      | None ->
        if off > 0 then begin
          Buffer.clear c.f_buf;
          Buffer.add_substring c.f_buf s off (String.length s - off)
        end
      | Some nl ->
        submit c (String.sub s off (nl - off));
        go (nl + 1)
    in
    go 0
  in
  let read_conn c =
    let bytes = Bytes.create 4096 in
    match Unix.read c.f_fd bytes 0 4096 with
    | 0 ->
      c.f_eof <- true;
      if Queue.is_empty c.f_expected then drop c
    | n ->
      Buffer.add_subbytes c.f_buf bytes 0 n;
      frame_lines c
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      drop c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let stop_accepting () =
    if !accepting then begin
      accepting := false;
      close_quiet lfd;
      listen_fd := None;
      try Unix.unlink socket_path with Unix.Unix_error _ -> ()
    end
  in
  let poll_front () =
    let backlogged =
      inflight t + Queue.length t.parked
      >= cfg.shards * cfg.inflight_per_shard
    in
    let fds =
      (if !accepting && not backlogged then [ lfd ] else [])
      @ (if backlogged then []
         else
           Hashtbl.fold
             (fun fd c acc -> if c.f_eof then acc else fd :: acc)
             conns [])
      @ (Array.to_list t.slots
        |> List.filter_map (fun s ->
               Option.map (fun l -> Daemon.Client.fd l.client) s.link))
    in
    match Unix.select fds [] [] 0.02 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if Some fd = !listen_fd then (
            match Unix.accept lfd with
            | cfd, _ ->
              Hashtbl.replace conns cfd
                {
                  f_fd = cfd;
                  f_buf = Buffer.create 256;
                  f_line = 0;
                  f_eof = false;
                  f_alive = true;
                  f_expected = Queue.create ();
                  f_ready = Hashtbl.create 8;
                };
              Metrics_registry.incr "serve.connections"
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          else
            match Hashtbl.find_opt conns fd with
            | Some c -> read_conn c
            | None -> () (* a shard fd; pump picks it up below *))
        ready
  in
  let flush_completed () =
    let done_ = t.completed in
    t.completed <- [];
    List.iter (fun (e, line) -> deliver e.seq line) done_
  in
  let finished () =
    Atomic.get drain <> 0 && Queue.is_empty t.parked && inflight t = 0
    && t.completed = []
  in
  while not (finished ()) do
    let now = Unix.gettimeofday () in
    if Atomic.get drain <> 0 then begin
      t.draining <- true;
      stop_accepting ()
    end;
    poll_front ();
    step t ~now;
    flush_completed ();
    if
      t.draining
      && Array.for_all (fun s -> s.link = None) t.slots
      && not (Queue.is_empty t.parked)
    then begin
      (* draining with the whole fleet already gone: answer the
         backlog structurally rather than waiting on respawns that
         will never come *)
      Queue.iter
        (fun e ->
          deliver e.seq
            (render_parent t ~id:e.e_id (unavailable_body ~line_no:e.e_line)))
        t.parked;
      Queue.clear t.parked
    end
  done;
  stop_accepting ();
  collect_stats t;
  Hashtbl.fold (fun _ c acc -> c :: acc) conns [] |> List.iter drop;
  let st = fleet_stats t ~requests:!requests ~errors:!errors in
  shutdown t;
  st
