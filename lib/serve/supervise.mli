(** Request-level fault containment for the serving layer.

    Every request is computed under supervision: a worker-domain
    exception, a structured {!Qaoa_core.Compile.Error}, or a deadline
    blowout is contained to its own request as a structured
    [{"ok":false,...}] response - it never takes down the daemon and
    never alters any other request's bytes.  Only
    {!Qaoa_journal.Chaos.Injected} propagates (it simulates a process
    crash; recovery is the caller's test subject).

    {b Retry/backoff.}  A retryable compile failure (unroutable,
    verification-rejected, residual strategy failure, contained
    exception) is retried up to [tries - 1] times with deterministic
    reseeding at [seed + 7919 * attempt] (attempt 0 uses the request
    seed verbatim, as in {!Qaoa_journal.Supervisor.trial}), spaced by
    an exponential [backoff_s * 2^(k-1)] sleep.  One optional deadline
    spans {e all} attempts of a request.  A success after a retry is
    served with an ["attempts"] field and is {e not} cached: it is no
    longer a pure function of the request.

    {b Circuit breaker.}  [breaker_threshold] consecutive compile
    failures on one (device, policy) pair quarantine the pair:
    subsequent requests for it skip the failing primary policy and
    degrade to {!Qaoa_core.Compile.compile_with_fallback} (response
    flagged ["degraded":true] with the winning policy named, never
    cached) instead of failing hard.  Every [breaker_probe_every]-th
    request while open probes the primary again and closes the breaker
    on success.  The breaker feeds only on structured compile failures
    and contained exceptions of graph requests - never on [bad_request]
    lines, so a stream of poison cannot quarantine a healthy pair.
    Breaker state is deliberately cross-request: with [workers > 1] the
    trip point depends on scheduling, so corpora that are expected to
    trip breakers should either run with one worker or disable the
    breaker ([breaker_threshold = 0]) when byte-stable output matters.

    Counters: [serve.retries], [serve.contained],
    [serve.breaker.open], [serve.breaker.close],
    [serve.breaker.degraded]. *)

(** Shared device table: resolves every device name once per run so
    all workers share one [Device.t] (which is what makes the
    {!Qaoa_hardware.Profile} distance-matrix memo hit). *)
module Devices : sig
  type t

  val create : unit -> t
  val resolve : t -> string -> Qaoa_hardware.Device.t option
  val prewarm : t -> unit
end

type config = {
  tries : int;  (** total attempts per request, >= 1 *)
  backoff_s : float;  (** sleep before retry [k]: [backoff_s * 2^(k-1)] *)
  breaker_threshold : int;  (** consecutive failures to open; 0 disables *)
  breaker_probe_every : int;  (** half-open probe cadence while open, >= 1 *)
  deadline_s : float option;  (** per-request budget spanning all attempts *)
}

val default_config : config
(** 2 attempts, no backoff sleep, breaker at 5 consecutive failures
    probing every 8th request, no deadline. *)

type t

val create : config -> t
(** @raise Invalid_argument on out-of-range fields. *)

val open_breakers : t -> (string * string) list
(** Currently quarantined (device, policy) pairs, sorted. *)

type verdict = {
  body : (string * Qaoa_obs.Json.t) list;
  cacheable : bool;
      (** pure function of the request (a first-attempt success):
          safe to cache and journal.  Errors, retried successes and
          degraded responses are not. *)
}

val handle : t -> Devices.t -> Request.t -> verdict
(** Compute one parsed request under full supervision.  Never raises,
    except {!Qaoa_journal.Chaos.Injected}. *)

(**/**)

val error_body :
  ?extra:(string * Qaoa_obs.Json.t) list ->
  kind:string ->
  string ->
  (string * Qaoa_obs.Json.t) list

val is_error : (string * Qaoa_obs.Json.t) list -> bool

val inject_hook : (id:string -> attempt:int -> unit) option ref
(** Test-only fault injection, called before every primary attempt;
    whatever it raises flows through containment/retry.  Never set
    outside tests. *)
