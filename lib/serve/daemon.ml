module Metrics_registry = Qaoa_obs.Metrics_registry

(* One client connection.  All mutation happens on the calling domain
   (produce/consume both run there); workers only ever carry the
   pointer through the pool. *)
type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes read but not yet framed into lines *)
  mutable line_no : int;  (** per-connection 1-based line numbering *)
  mutable inflight : int;  (** requests submitted, response not yet written *)
  mutable eof : bool;  (** peer finished writing; flush then close *)
  mutable alive : bool;
}

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

module Client = struct
  type t = { fd : Unix.file_descr; buf : Buffer.t; mutable eof : bool }

  exception Timeout of string

  (* One connect attempt.  [None] = the daemon is not (yet) listening:
     the socket file may not exist, or it exists but nothing accepts -
     both are normal during the bind window right after a fork. *)
  let try_connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Some fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET), _, _) ->
      Unix.close fd;
      None
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      Unix.close fd;
      None
    | exception e ->
      Unix.close fd;
      raise e

  let connect ?(timeout_s = 10.0) path =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      match try_connect path with
      | Some fd -> { fd; buf = Buffer.create 1024; eof = false }
      | None ->
        if Unix.gettimeofday () >= deadline then
          raise
            (Timeout
               (Printf.sprintf "%s not accepting within %.1fs" path timeout_s))
        else begin
          Unix.sleepf 0.01;
          go ()
        end
    in
    go ()

  let fd t = t.fd

  let send_line t line =
    write_all t.fd (line ^ "\n") 0 (String.length line + 1)

  (* Pop one framed line off the read buffer, if a newline arrived. *)
  let take_line t =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some nl ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (nl + 1) (String.length s - nl - 1);
      Some (String.sub s 0 nl)

  let recv_line ?(timeout_s = 30.0) t =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let bytes = Bytes.create 4096 in
    let rec go () =
      match take_line t with
      | Some l -> Some l
      | None ->
        if t.eof then None
        else begin
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.0 then
            raise (Timeout (Printf.sprintf "no reply within %.1fs" timeout_s));
          (match Unix.select [ t.fd ] [] [] (Float.min remaining 0.25) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
            match Unix.read t.fd bytes 0 4096 with
            | 0 -> t.eof <- true
            | n -> Buffer.add_subbytes t.buf bytes 0 n
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception
                Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              t.eof <- true));
          go ()
        end
    in
    go ()

  let request ?timeout_s t line =
    send_line t line;
    recv_line ?timeout_s t

  (* Non-blocking variant for callers multiplexing many clients in
     their own select loop: drain whatever the kernel has buffered,
     then report one framed line (or EOF) without ever waiting. *)
  let poll_line t =
    match take_line t with
    | Some l -> `Line l
    | None ->
      if t.eof then `Eof
      else begin
        let bytes = Bytes.create 4096 in
        let rec drain () =
          match Unix.select [ t.fd ] [] [] 0.0 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
            match Unix.read t.fd bytes 0 4096 with
            | 0 -> t.eof <- true
            | n ->
              Buffer.add_subbytes t.buf bytes 0 n;
              drain ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
            | exception
                Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              t.eof <- true)
        in
        drain ();
        match take_line t with
        | Some l -> `Line l
        | None -> if t.eof then `Eof else `Nothing
      end

  let close t =
    t.eof <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
end

let run ?(on_ready = fun () -> ()) ?shutdown_fd (config : Serve.config)
    ~socket_path ~drain =
  if config.Serve.sort then
    invalid_arg "Daemon: sort is batch-only (a daemon stream has no end)";
  let handler = Serve.make_handler config in
  (* a client that disconnects mid-response must cost us an EPIPE, not
     the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  if Sys.file_exists socket_path then (
    try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 16;
  on_ready ();
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  let pending : (conn * (int * string)) Queue.t = Queue.create () in
  let accepting = ref true in
  let requests = ref 0 and errors = ref 0 in
  let drop c =
    if c.alive then begin
      c.alive <- false;
      Hashtbl.remove conns c.fd;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end
  in
  (* Frame complete lines out of the connection buffer; a trailing
     fragment stays buffered until its newline (or is discarded at
     EOF - an unterminated request was never fully sent). *)
  let enqueue_lines c =
    let s = Buffer.contents c.buf in
    let rec go off =
      match String.index_from_opt s off '\n' with
      | None ->
        if off > 0 then begin
          Buffer.clear c.buf;
          Buffer.add_substring c.buf s off (String.length s - off)
        end
      | Some nl ->
        c.line_no <- c.line_no + 1;
        c.inflight <- c.inflight + 1;
        Queue.add (c, (c.line_no, String.sub s off (nl - off))) pending;
        go (nl + 1)
    in
    go 0
  in
  let read_conn c =
    let bytes = Bytes.create 4096 in
    match Unix.read c.fd bytes 0 4096 with
    | 0 ->
      c.eof <- true;
      if c.inflight = 0 then drop c
    | n ->
      Buffer.add_subbytes c.buf bytes 0 n;
      enqueue_lines c
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      drop c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* The parent-death watch: when the supervisor holding the other end
     of this pipe exits (gracefully or not), the fd turns readable at
     EOF and the daemon self-drains as if SIGTERM had arrived - no
     orphaned shard keeps listening on an unlinked socket or appending
     to a journal its successor will reopen. *)
  let check_shutdown fd =
    let b = Bytes.create 16 in
    match Unix.read fd b 0 16 with
    | 0 -> ignore (Atomic.compare_and_set drain 0 143)
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
      ignore (Atomic.compare_and_set drain 0 143)
  in
  let poll_io () =
    let fds =
      (match shutdown_fd with Some fd -> [ fd ] | None -> [])
      @ (if !accepting then [ listen_fd ] else [])
      @ Hashtbl.fold (fun fd c acc -> if c.eof then acc else fd :: acc) conns []
    in
    (* the bounded timeout is what makes [Block] safe: the driver
       drains finished responses between polls, and a delivered signal
       (EINTR or the drain flag) is observed within 50ms *)
    match Unix.select fds [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if shutdown_fd = Some fd then check_shutdown fd
          else if fd = listen_fd then (
            match Unix.accept listen_fd with
            | cfd, _ ->
              Hashtbl.replace conns cfd
                {
                  fd = cfd;
                  buf = Buffer.create 256;
                  line_no = 0;
                  inflight = 0;
                  eof = false;
                  alive = true;
                };
              Metrics_registry.incr "serve.connections"
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          else
            match Hashtbl.find_opt conns fd with
            | Some c -> read_conn c
            | None -> ())
        ready
  in
  let stop_accepting () =
    if !accepting then begin
      accepting := false;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink socket_path with Unix.Unix_error _ -> ()
    end
  in
  let rec produce () =
    if not (Queue.is_empty pending) then begin
      Metrics_registry.incr "serve.inflight";
      Atomic.incr config.Serve.inflight;
      Pool.Item (Queue.pop pending)
    end
    else if Atomic.get drain <> 0 then begin
      (* graceful drain: stop accepting; already-submitted requests
         finish and their responses flow out below *)
      stop_accepting ();
      Pool.Eof
    end
    else begin
      poll_io ();
      if Queue.is_empty pending then Pool.Block else produce ()
    end
  in
  let consume _seq (c, outcome) =
    Metrics_registry.incr ~by:(-1) "serve.inflight";
    Atomic.decr config.Serve.inflight;
    incr requests;
    if Serve.outcome_error outcome then incr errors;
    if c.alive then begin
      let line = Serve.render config outcome ^ "\n" in
      try write_all c.fd line 0 (String.length line)
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> drop c
    end;
    c.inflight <- c.inflight - 1;
    if c.eof && c.inflight = 0 then drop c
  in
  let _count =
    Pool.stream_poll ~workers:config.Serve.workers
      ~queue_capacity:config.Serve.queue_capacity ~produce ~consume
      (fun (c, item) -> (c, handler item))
  in
  stop_accepting ();
  List.iter drop (Hashtbl.fold (fun _ c acc -> c :: acc) conns []);
  {
    Serve.requests = !requests;
    errors = !errors;
    cache_stats = Option.map Cache.stats config.Serve.cache;
  }
