let default_workers () = max 1 (Domain.recommended_domain_count ())

let check_workers = function
  | None -> default_workers ()
  | Some w when w >= 1 -> w
  | Some _ -> invalid_arg "Pool: workers must be >= 1"

(* ------------------------------------------------------------------ *)
(* Batch map: an atomic next-index counter is all the scheduling an
   in-memory array needs; each result cell is written by exactly one
   domain and read only after every domain is joined, so the plain
   array is race-free under the OCaml memory model. *)

let map ?workers f arr =
  let n = Array.length arr in
  let w = min (check_workers workers) (max 1 n) in
  if n = 0 then [||]
  else if w = 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let body () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some (match f arr.(i) with v -> Ok v | exception e -> Error e)
      done
    in
    let domains = List.init (w - 1) (fun _ -> Domain.spawn body) in
    body ();
    List.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

(* ------------------------------------------------------------------ *)
(* Streaming pool.  One mutex guards the queue, the completion table
   and the closed flag; [work_available] wakes workers, [progress]
   wakes the driver.  The driver (calling domain) alternates between
   producing (outside the lock - the producer may block on input),
   draining the completed prefix in submission order, and waiting. *)

type ('a, 'b) shared = {
  lock : Mutex.t;
  work_available : Condition.t;
  progress : Condition.t;
  queue : (int * 'a) Queue.t;
  completed : (int, ('b, exn) result) Hashtbl.t;
  mutable closed : bool;
}

(* What the producer has for the pool right now.  [Block] means "no item
   at this instant, but the stream is not over": the driver drains any
   completed results and polls again, so a producer that waits on
   external input (a socket select loop) can keep responses flowing
   while idle.  A [Block]-returning producer must do its own blocking
   (e.g. a bounded select timeout) or the driver busy-spins. *)
type 'a poll = Item of 'a | Block | Eof

let stream_poll ?workers ?(queue_capacity = 64) ~produce ~consume f =
  let w = check_workers workers in
  if queue_capacity < 1 then invalid_arg "Pool.stream: queue_capacity < 1";
  let st =
    {
      lock = Mutex.create ();
      work_available = Condition.create ();
      progress = Condition.create ();
      queue = Queue.create ();
      completed = Hashtbl.create (2 * queue_capacity);
      closed = false;
    }
  in
  let worker () =
    let continue = ref true in
    while !continue do
      Mutex.lock st.lock;
      while Queue.is_empty st.queue && not st.closed do
        Condition.wait st.work_available st.lock
      done;
      if Queue.is_empty st.queue then begin
        (* closed and drained *)
        Mutex.unlock st.lock;
        continue := false
      end
      else begin
        let seq, item = Queue.pop st.queue in
        Mutex.unlock st.lock;
        let r = match f item with v -> Ok v | exception e -> Error e in
        Mutex.lock st.lock;
        Hashtbl.replace st.completed seq r;
        Condition.signal st.progress;
        Mutex.unlock st.lock
      end
    done
  in
  let domains = List.init w (fun _ -> Domain.spawn worker) in
  let submitted = ref 0 and emitted = ref 0 and eof = ref false in
  let first_error = ref None in
  (* With the lock held: pop the contiguous completed prefix. *)
  let drain_ready () =
    let ready = ref [] in
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt st.completed !emitted with
      | Some r ->
        Hashtbl.remove st.completed !emitted;
        ready := (!emitted, r) :: !ready;
        incr emitted
      | None -> continue := false
    done;
    List.rev !ready
  in
  let emit ready =
    List.iter
      (fun (seq, r) ->
        match r with
        | Ok v -> consume seq v
        | Error e -> if Option.is_none !first_error then first_error := Some e)
      ready
  in
  let rec drive () =
    if (not !eof) && !submitted - !emitted < queue_capacity then begin
      (match produce () with
      | Eof -> eof := true
      | Item item ->
        Mutex.lock st.lock;
        Queue.push (!submitted, item) st.queue;
        incr submitted;
        Condition.signal st.work_available;
        let ready = drain_ready () in
        Mutex.unlock st.lock;
        emit ready
      | Block ->
        (* nothing to submit right now: keep the output moving *)
        Mutex.lock st.lock;
        let ready = drain_ready () in
        Mutex.unlock st.lock;
        emit ready);
      drive ()
    end
    else if !eof && !submitted = !emitted then ()
    else begin
      Mutex.lock st.lock;
      let ready = ref (drain_ready ()) in
      while !ready = [] && !emitted < !submitted do
        Condition.wait st.progress st.lock;
        ready := drain_ready ()
      done;
      Mutex.unlock st.lock;
      emit !ready;
      drive ()
    end
  in
  let finish () =
    Mutex.lock st.lock;
    st.closed <- true;
    Condition.broadcast st.work_available;
    Mutex.unlock st.lock;
    List.iter Domain.join domains
  in
  (match drive () with
  | () -> finish ()
  | exception e ->
    (* a raising consumer must not leak worker domains *)
    finish ();
    raise e);
  (match !first_error with Some e -> raise e | None -> ());
  !emitted

let stream ?workers ?queue_capacity ~produce ~consume f =
  stream_poll ?workers ?queue_capacity
    ~produce:(fun () ->
      match produce () with Some item -> Item item | None -> Eof)
    ~consume f
