module Json = Qaoa_obs.Json
module Metrics = Qaoa_obs.Metrics_registry
module Crc32 = Qaoa_journal.Crc32
module Chaos = Qaoa_journal.Chaos
module Atomic_write = Qaoa_journal.Atomic_write

let default_filename = "cache.jsonl"

type t = {
  dir : string;
  file : string;
  lock : Mutex.t;
  mutable oc : out_channel option;  (** [None] once closed *)
  mutable appended : int;
  loaded : int;
  dropped : int;
  torn_truncated : int;
}

type stats = {
  s_loaded : int;
  s_appended : int;
  s_dropped : int;
  s_torn_truncated : int;
}

(* One record per cache insertion: CRC-32 of the JSON document, a
   space, the document, a newline - the same framing as the trial
   journal, so the same torn-tail reasoning applies. *)
let render (key : Cache.key) body =
  let json =
    Json.to_string
      (Json.Assoc
         [
           ("graph_hash", Json.Int key.Cache.graph_hash);
           ("fingerprint", Json.String key.Cache.fingerprint);
           ("body", Json.Assoc body);
         ])
  in
  Printf.sprintf "%s %s\n" (Crc32.to_hex (Crc32.digest json)) json

(* One well-formed record line (without its newline), or None. *)
let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some sp -> (
    let crc = String.sub line 0 sp in
    let json = String.sub line (sp + 1) (String.length line - sp - 1) in
    match Crc32.of_hex crc with
    | Some c when c = Crc32.digest json -> (
      match Json.of_string_opt json with
      | Some doc -> (
        match
          ( Json.member "graph_hash" doc,
            Json.member "fingerprint" doc,
            Json.member "body" doc )
        with
        | Some (Json.Int graph_hash), Some (Json.String fingerprint),
          Some (Json.Assoc body) ->
          Some ({ Cache.graph_hash; fingerprint }, body)
        | _ -> None)
      | None -> None)
    | _ -> None)

let read_all file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Reload [file] into [cache].  Unlike the trial journal, a cache is
   disposable state, so corruption is survivable everywhere: a torn
   trailing record is truncated off in place, and a corrupt mid-file
   record is dropped and counted - never served.  Each surviving record
   re-passed its checksum, which is what re-establishes the
   [cached = fresh] byte-equality invariant across the restart: the
   bytes preloaded are exactly the bytes a fresh compile produced
   before the crash. *)
let load file cache =
  if not (Sys.file_exists file) then (0, 0, 0)
  else begin
    let content = read_all file in
    let len = String.length content in
    let loaded = ref 0 and dropped = ref 0 and torn = ref 0 in
    let truncate_at off =
      let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> Unix.ftruncate fd off);
      incr torn;
      Metrics.incr "serve.cache.torn_truncated"
    in
    let rec scan off =
      if off < len then
        match String.index_from_opt content off '\n' with
        | None ->
          (* unterminated tail: the classic torn append *)
          truncate_at off
        | Some nl -> (
          let line = String.sub content off (nl - off) in
          match parse_line line with
          | Some (key, body) ->
            ignore (Cache.preload cache key body);
            incr loaded;
            scan (nl + 1)
          | None ->
            if nl + 1 >= len then
              (* invalid final record: torn mid-write, drop it *)
              truncate_at off
            else begin
              (* mid-file corruption: drop the record, keep the rest *)
              incr dropped;
              Metrics.incr "serve.cache.dropped";
              scan (nl + 1)
            end)
    in
    scan 0;
    (!loaded, !dropped, !torn)
  end

let close t =
  Mutex.protect t.lock (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        t.oc <- None;
        flush oc;
        (try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error _ -> ());
        close_out_noerr oc)

let open_ ?(resume = false) ~dir cache =
  Atomic_write.mkdir_p dir;
  let file = Filename.concat dir default_filename in
  let loaded, dropped, torn =
    if resume then load file cache
    else begin
      (* a cache journal is warmth, not data: starting fresh just
         discards it (contrast Journal.open_, which refuses) *)
      if Sys.file_exists file then Sys.remove file;
      (0, 0, 0)
    end
  in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 file in
  let t =
    {
      dir;
      file;
      lock = Mutex.create ();
      oc = Some oc;
      appended = 0;
      loaded;
      dropped;
      torn_truncated = torn;
    }
  in
  at_exit (fun () -> close t);
  t

let path t = t.file

let append t key body =
  Mutex.protect t.lock (fun () ->
      match t.oc with
      | None -> ()  (* closed during drain: the entry only loses warmth *)
      | Some oc ->
        let line = render key body in
        (match Chaos.intercept line with
        | Chaos.Pass -> output_string oc line
        | Chaos.Torn prefix -> output_string oc prefix);
        flush oc;
        (* a pending simulated crash fires here - after the bytes hit
           the OS, before any in-memory publish, like a real crash *)
        Chaos.die ();
        t.appended <- t.appended + 1;
        Metrics.incr "serve.cache.journal_appends")

(* Rewrite the journal to exactly the cache's live entries (LRU order,
   so a reload reproduces recency).  Runs through [Atomic_write]: a
   crash mid-compaction leaves the old journal intact. *)
let compact t cache =
  Mutex.protect t.lock (fun () ->
      let was_open =
        match t.oc with
        | None -> false
        | Some oc ->
          flush oc;
          close_out_noerr oc;
          t.oc <- None;
          true
      in
      Atomic_write.write ~path:t.file (fun oc ->
          List.iter
            (fun (key, body) -> output_string oc (render key body))
            (Cache.to_list cache));
      Metrics.incr "serve.cache.compactions";
      if was_open then
        t.oc <-
          Some (open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 t.file))

(* Journal records that no longer correspond to a live entry (evicted,
   dropped on load, superseded duplicates) are dead weight; compact
   when there are any, then close. *)
let finish t cache =
  if t.loaded + t.appended > Cache.size cache then compact t cache;
  close t

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        s_loaded = t.loaded;
        s_appended = t.appended;
        s_dropped = t.dropped;
        s_torn_truncated = t.torn_truncated;
      })
