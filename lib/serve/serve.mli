(** The batch-compilation service: JSONL requests in, JSONL responses
    out, fanned across a {!Pool} of domains, answered from a {!Cache}
    when possible.

    {b Determinism.}  Responses are emitted in {e input order} (the
    pool's reorder buffer), and every response body is a pure function
    of its request (per-request seeds, no timestamps unless
    [timings]), so the output stream is byte-identical for any worker
    count.  [sort] re-orders responses by request id (line number as
    tie-break) instead - useful when diffing corpora assembled from
    shards - and is equally worker-count-independent.

    {b Responses.}  Success:
    [{"id":..., "ok":true, "device":..., "policy":..., "qubits":n,
    "depth":..., "gates":..., "two_qubit":..., "swaps":...}] plus
    ["verified":true] when the request asked for verification and
    ["qasm":"..."] when it asked for the compiled program.  Failure:
    [{"id":..., "ok":false, "error":{"kind":..., "detail":...}}] with
    the {!Qaoa_core.Compile.error_kind} taxonomy plus ["bad_request"]
    (unparseable line - [id] is [null] and a ["line"] field locates
    it) and ["unknown_device"].  A bad line never aborts the run: it
    produces a structured error response and the exit code is
    unchanged.

    With [timings] each response additionally carries ["cached"] and
    ["ms"] diagnostics - these are {e not} deterministic; leave
    [timings] off when diffing runs.

    Counters: [serve.requests], [serve.errors], [serve.cache.*];
    histogram [serve.request_ms]. *)

type config = {
  workers : int;  (** worker domains, >= 1 *)
  queue_capacity : int;  (** bounded in-flight window, >= 1 *)
  sort : bool;  (** sort responses by (id, line) instead of input order *)
  timings : bool;  (** append non-deterministic [cached]/[ms] fields *)
  cache : Cache.t option;  (** [None] disables the artifact cache *)
}

val default_config : unit -> config
(** [Pool.default_workers ()] workers, queue 256, no sorting, no
    timings, a fresh 4096-entry cache. *)

type stats = {
  requests : int;  (** responses emitted, parse errors included *)
  errors : int;  (** responses with [ok:false] *)
  cache_stats : Cache.stats option;
}

val run : config -> in_channel -> out_channel -> stats
(** Serve every line of the input channel.  @raise Invalid_argument on
    a non-positive [workers]/[queue_capacity]. *)

val run_lines : config -> string list -> string list * stats
(** In-memory variant for tests and the bench harness: request lines
    in, response lines (no trailing newlines) out. *)

val gen_corpus : ?device:string -> seed:int -> count:int -> unit -> string list
(** Deterministic request corpus for smoke tests and benchmarks:
    [count] distinct seeded Erdos-Renyi MaxCut requests (12-18 nodes,
    policies cycling over the calibration-free strategies, every fifth
    request also asking for verification) against [device] (default
    ["tokyo"]). *)
