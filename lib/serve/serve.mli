(** The batch-compilation service: JSONL requests in, JSONL responses
    out, fanned across a {!Pool} of domains, answered from a {!Cache}
    when possible, computed under {!Supervise} fault containment, and
    optionally journaled to disk through {!Persist}.

    {b Determinism.}  Responses are emitted in {e input order} (the
    pool's reorder buffer), and every response body is a pure function
    of its request (per-request seeds, no timestamps unless
    [timings]), so the output stream is byte-identical for any worker
    count.  [sort] re-orders responses by request id (line number as
    tie-break) instead - useful when diffing corpora assembled from
    shards - and is equally worker-count-independent.  (One caveat:
    responses shaped by cross-request breaker state - retried or
    degraded compiles - depend on scheduling when [workers > 1]; see
    {!Supervise}.  They are never cached, and corpora with no compile
    failures are unaffected.)

    {b Fault containment.}  A worker exception, structured compile
    error or deadline blowout is contained to its own request as a
    structured [ok:false] response - it never aborts the run and never
    alters any other request's bytes.  Retry, backoff and the
    (device, policy) circuit breaker are configured via [supervise];
    see {!Supervise} for the taxonomy.

    {b Persistence.}  With [persist] set, every first-attempt success
    is appended (checksummed, flushed) to the cache journal as it is
    stored; a later run opened with [~resume:true] reloads the journal
    and answers repeats from the warm cache byte-identically.

    {b Drain.}  With [drain] set (see
    {!Qaoa_journal.Signals.install_drain}), a delivered SIGINT/SIGTERM
    stops admission of new requests; in-flight requests finish and are
    emitted in order, the run winds down normally, and the caller exits
    with the recorded 130/143.

    {b Responses.}  Success:
    [{"id":..., "ok":true, "device":..., "policy":..., "qubits":n,
    "depth":..., "gates":..., "two_qubit":..., "swaps":...}] plus
    ["verified":true] when the request asked for verification,
    ["qasm":"..."] when it asked for the compiled program,
    ["attempts":k] after a retried success and
    ["degraded":true, "requested_policy":...] for a breaker fallback.
    Failure:
    [{"id":..., "ok":false, "error":{"kind":..., "detail":...}}] with
    the {!Qaoa_core.Compile.error_kind} taxonomy plus ["bad_request"]
    (unparseable line - [id] is [null] and a ["line"] field locates
    it), ["unknown_device"], ["internal"] (contained worker exception)
    and ["fallback_exhausted"].  A bad line never aborts the run: it
    produces a structured error response and the exit code is
    unchanged.

    With [timings] each response additionally carries ["cached"] and
    ["ms"] diagnostics - these are {e not} deterministic; leave
    [timings] off when diffing runs.

    {b Control verbs.}  A line of the form [{"op":"ping"}] or
    [{"op":"stats"}] ({!Request.control}) is answered without touching
    the compile path: [ping] returns
    [{"id":null,"ok":true,"op":"ping"}] (the shard supervisor's health
    probe - it traverses the full submit-compute-respond pipeline, so a
    pong proves the service is live, not merely the process), and
    [stats] returns the cache-lookup taxonomy plus the in-flight gauge
    so [lookups = hits + misses + rejects] can be asserted per process
    over the wire.  Control verbs do not count as requests and never
    touch the cache taxonomy; an unknown op is a ["bad_request"].

    Counters: [serve.requests], [serve.errors], [serve.retries],
    [serve.contained], [serve.breaker.*], [serve.cache.*]; histogram
    [serve.request_ms]. *)

type config = {
  workers : int;  (** worker domains, >= 1 *)
  queue_capacity : int;  (** bounded in-flight window, >= 1 *)
  sort : bool;  (** sort responses by (id, line) instead of input order *)
  timings : bool;  (** append non-deterministic [cached]/[ms] fields *)
  cache : Cache.t option;  (** [None] disables the artifact cache *)
  persist : Persist.t option;  (** journal cache insertions to disk *)
  supervise : Supervise.config;  (** retry / breaker / deadline policy *)
  drain : int Atomic.t option;
      (** graceful-drain flag from
          {!Qaoa_journal.Signals.install_drain}: nonzero stops
          admission *)
  inflight : int Atomic.t;
      (** up-down gauge of admitted-but-unanswered requests, maintained
          by the daemon loop and reported by the [stats] control verb *)
}

val default_config : unit -> config
(** [Pool.default_workers ()] workers, queue 256, no sorting, no
    timings, a fresh 4096-entry cache, no persistence,
    {!Supervise.default_config}, no drain flag, a fresh inflight
    gauge. *)

type stats = {
  requests : int;  (** responses emitted, parse errors included *)
  errors : int;  (** responses with [ok:false] *)
  cache_stats : Cache.stats option;
}

val run : config -> in_channel -> out_channel -> stats
(** Serve every line of the input channel.  @raise Invalid_argument on
    a non-positive [workers]/[queue_capacity]. *)

val run_lines : config -> string list -> string list * stats
(** In-memory variant for tests and the bench harness: request lines
    in, response lines (no trailing newlines) out. *)

val gen_corpus : ?device:string -> seed:int -> count:int -> unit -> string list
(** Deterministic request corpus for smoke tests and benchmarks:
    [count] distinct seeded Erdos-Renyi MaxCut requests (12-18 nodes,
    policies cycling over the calibration-free strategies, every fifth
    request also asking for verification) against [device] (default
    ["tokyo"]). *)

(**/**)

(** The daemon reuses the per-line machinery directly. *)

type outcome

val outcome_error : outcome -> bool

val make_handler : config -> int * string -> outcome
(** One shared device table + supervisor for all calls; safe to call
    from worker domains.  @raise Invalid_argument as {!run}. *)

val render : config -> outcome -> string
