(** Shard supervisor: a fleet of [qaoa-serve] daemon children behind
    one parent, routed by graph hash and supervised for liveness.

    The parent forks [shards] children; child [K] runs {!Daemon.run}
    on its own Unix-domain socket ([socket_dir/shard-K.sock]) with its
    own cache journal (the CLI places it under [cache_dir/shard-K/]).
    Every parsed request is routed to slot
    [graph_hash mod shards] ({!owner}), so a given problem graph
    always lands on the same shard and its cache journal - warm
    restarts stay warm per shard.

    {b Supervision.}  Each child is watched three ways: [waitpid]
    reaping (no zombies), EOF on its protocol socket, and periodic
    [{"op":"ping"}] probes with a bounded reply deadline.  A dead
    child is restarted with capped exponential backoff; a child that
    restarts [flap_threshold] times within [flap_window_s] is
    {e degraded} - its keyspace reroutes to the next live slot (walk
    from the owner) until [readopt_streak] consecutive probe
    successes, then the owner re-adopts.  Requests in flight on a dead
    shard are replayed to a survivor and answered {e exactly once}:
    responses already buffered when the socket died are delivered, the
    rest are re-dispatched, and the compile is deterministic, so the
    replayed bytes equal what the dead shard would have sent.

    {b Byte identity.}  Unparseable lines are answered by the parent
    itself (global line numbering, one counter for any shard count),
    parsed requests never embed line numbers, and [sort] orders the
    final stream by (id, line) exactly like {!Serve}.  Sorted output
    is therefore byte-identical across [--shards 1/2/4] - including
    under chaos kills - as long as [timings] is off.  With [timings]
    on, a replayed-or-rerouted response additionally carries
    ["rerouted":true] (metadata only, spliced by {!mark_rerouted}).

    {b Parent death.}  Each child holds the read end of a pipe whose
    write end only the parent owns and passes it to {!Daemon.run} as
    [shutdown_fd]: if the parent dies - even by SIGKILL - every child
    sees EOF and self-drains (exit 143), so a respawned fleet never
    shares journals with orphans.

    Counters: [serve.shard.spawned], [serve.shard.restarts],
    [serve.shard.flapping], [serve.shard.rerouted],
    [serve.shard.probe_failures]. *)

(** {1 Pure supervision arithmetic} (exposed for tests) *)

module Backoff : sig
  val delay_s : base_s:float -> cap_s:float -> attempt:int -> float
  (** Capped exponential: [min cap_s (base_s * 2^(attempt-1))] for
      [attempt >= 1]; attempt 1 is the first {e re}spawn. *)
end

module Flap : sig
  type t

  val create : window_s:float -> threshold:int -> t
  val note : t -> now:float -> unit
  (** Record one restart at [now]. *)

  val count : t -> now:float -> int
  (** Restarts within the trailing window, pruning older ones. *)

  val flapping : t -> now:float -> bool
  (** [count >= threshold]. *)
end

module Streak : sig
  type t

  val create : need:int -> t
  val hit : t -> unit
  val miss : t -> unit
  (** Any death or probe failure resets the run to zero. *)

  val reached : t -> bool
  (** [need] consecutive hits since the last miss. *)
end

val owner : shards:int -> int -> int
(** Owning slot of a graph hash: [hash mod shards], safe on negative
    hashes. *)

val route : shards:int -> alive:(int -> bool) -> int -> int option
(** First alive slot walking forward from the owner (wrapping);
    [None] when no slot is alive. *)

val mark_rerouted : string -> string
(** Splice [,"rerouted":true] before the closing brace of a JSON
    object line; any other shape is returned unchanged. *)

(** {1 The fleet} *)

type child_fn =
  slot:int ->
  generation:int ->
  socket_path:string ->
  shutdown_fd:Unix.file_descr ->
  int
(** Runs {e in the forked child} and returns the child's exit code
    (delivered via [Unix._exit], so inherited [at_exit] finalizers are
    skipped).  [generation] is 0 for the initial spawn and counts up
    across restarts - the CLI uses it to resume the shard's journal
    ([generation > 0] implies warm restart) and to install chaos only
    in the first generation (a crash plan re-armed on every respawn
    would flap forever).  [shutdown_fd] is the parent-death pipe to
    pass to {!Daemon.run}. *)

type config = {
  shards : int;  (** fleet size, >= 1 *)
  socket_dir : string;  (** holds [shard-K.sock]; created if missing *)
  child : child_fn;
  sort : bool;  (** sort the final stream by (id, line) - batch only *)
  timings : bool;  (** splice ["rerouted":true] into replayed lines *)
  probe_interval_s : float;  (** ping cadence per live shard *)
  probe_timeout_s : float;
      (** a probe unanswered this long, with nothing else received
          from the shard either, declares it dead (SIGKILL + restart) *)
  backoff_base_s : float;
  backoff_cap_s : float;
  flap_window_s : float;
  flap_threshold : int;  (** restarts within the window that degrade *)
  readopt_streak : int;  (** probe successes before re-adoption *)
  give_up_attempts : int;
      (** consecutive failed generations before the slot is abandoned
          and its keyspace permanently rerouted *)
  inflight_per_shard : int;  (** per-child submission window *)
  drain : int Atomic.t option;
      (** {!Qaoa_journal.Signals.install_drain} flag: nonzero stops
          admission and respawning; in-flight requests finish *)
  on_spawn : (slot:int -> generation:int -> pid:int -> unit) option;
      (** test hook, fired in the parent after each fork *)
}

val default_config :
  shards:int -> socket_dir:string -> child:child_fn -> unit -> config
(** No sorting or timings, 0.25s probes with a 10s deadline, backoff
    0.05s doubling to a 1s cap, flap threshold 3-in-10s, re-adoption
    after 5 probes, give-up after 25 generations, window 32, no drain
    flag, no hook. *)

type stats = {
  requests : int;  (** responses emitted (parent-answered included) *)
  errors : int;  (** responses with [ok:false] *)
  spawned : int;  (** forks, initial fleet included *)
  restarts : int;  (** forks beyond each slot's first *)
  rerouted : int;  (** requests answered by a non-owner slot *)
  probe_failures : int;
  flapped : int;  (** slots that entered the degraded state *)
  shard_stats : (int * string) list;
      (** per-slot [{"op":"stats"}] response collected at wind-down
          (missing slots were down at collection time) *)
}

val live_pids : unit -> int list
(** Pids of the currently-running fleet (empty outside a run).  Wire
    this as {!Qaoa_journal.Signals.install_drain}'s [fan_out] so a
    SIGTERM to the parent reaches every child concurrently. *)

val run_batch :
  config ->
  produce:(unit -> (int * string) option) ->
  emit:(string -> unit) ->
  stats
(** Serve a batch: pull [(line_no, line)] items until [produce]
    returns [None] (or [drain] fires), route across the fleet, emit
    responses in input order (or sorted with [sort]), collect per-slot
    stats, then drain the fleet (SIGTERM fan-out, bounded wait,
    SIGKILL stragglers, every child reaped).  @raise Invalid_argument
    on [shards < 1]. *)

val run_lines : config -> string list -> string list * stats
(** In-memory variant for tests: request lines in, response lines
    out. *)

val run_front :
  ?on_ready:(unit -> unit) ->
  config ->
  socket_path:string ->
  drain:int Atomic.t ->
  stats
(** Front-daemon mode ([--shards N --daemon SOCK]): accept client
    connections on [socket_path] and route their lines across the
    fleet; each connection receives its responses in its own send
    order (per-connection line numbering for parse errors, exactly
    like a plain daemon).  Returns after [drain] goes nonzero: stops
    accepting, finishes in-flight requests, drains the fleet.  [sort]
    must be off (a stream has no end). *)
