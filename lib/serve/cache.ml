module Metrics_registry = Qaoa_obs.Metrics_registry

type key = { graph_hash : int; fingerprint : string }

type entry = {
  body : (string * Qaoa_obs.Json.t) list;
  mutable last_used : int;  (** logical tick of the most recent access *)
}

type stats = {
  hits : int;
  misses : int;
  inserts : int;
  evictions : int;
  size : int;
}

type t = {
  lock : Mutex.t;
  cap : int;
  tbl : (key, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    cap = capacity;
    tbl = Hashtbl.create (min capacity 1024);
    tick = 0;
    hits = 0;
    misses = 0;
    inserts = 0;
    evictions = 0;
  }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let find t key =
  let r =
    locked t (fun () ->
        t.tick <- t.tick + 1;
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          e.last_used <- t.tick;
          t.hits <- t.hits + 1;
          Some e.body
        | None ->
          t.misses <- t.misses + 1;
          None)
  in
  (match r with
  | Some _ -> Metrics_registry.incr "serve.cache.hits"
  | None -> Metrics_registry.incr "serve.cache.misses");
  r

let evict_lru t =
  (* O(size) scan; runs only when a genuinely new key arrives at
     capacity. *)
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, lu) when lu <= e.last_used -> ()
      | _ -> victim := Some (k, e.last_used))
    t.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1;
    true
  | None -> false

let store t key body =
  let evicted =
    locked t (fun () ->
        t.tick <- t.tick + 1;
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          (* racing duplicate compute: refresh recency, keep the body
             (deterministic compilation makes both copies identical) *)
          e.last_used <- t.tick;
          false
        | None ->
          let evicted =
            if Hashtbl.length t.tbl >= t.cap then evict_lru t else false
          in
          Hashtbl.replace t.tbl key { body; last_used = t.tick };
          t.inserts <- t.inserts + 1;
          evicted)
  in
  Metrics_registry.incr "serve.cache.inserts";
  if evicted then Metrics_registry.incr "serve.cache.evictions"

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        inserts = t.inserts;
        evictions = t.evictions;
        size = Hashtbl.length t.tbl;
      })
