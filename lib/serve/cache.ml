module Metrics_registry = Qaoa_obs.Metrics_registry
module Json = Qaoa_obs.Json

type key = { graph_hash : int; fingerprint : string }

type entry = {
  body : (string * Json.t) list;
  mutable last_used : int;  (** logical tick of the most recent access *)
}

(* Lookup taxonomy: every [find] is a lookup; a hit is counted there, a
   miss or reject is counted when the computed body comes back through
   [store]/[reject] - only then is it known whether the artifact was
   cacheable.  The invariant [lookups = hits + misses + rejects] holds
   whenever every missed lookup is followed by exactly one store or
   reject, which is what the serving layer does. *)
type stats = {
  lookups : int;
  hits : int;
  misses : int;
  rejects : int;
  inserts : int;
  evictions : int;
  reloaded : int;
  size : int;
}

type t = {
  lock : Mutex.t;
  cap : int;
  max_entry_bytes : int option;
  tbl : (key, entry) Hashtbl.t;
  mutable tick : int;
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable rejects : int;
  mutable inserts : int;
  mutable evictions : int;
  mutable reloaded : int;
}

let create ?max_entry_bytes ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  (match max_entry_bytes with
  | Some b when b < 1 ->
    invalid_arg "Cache.create: max_entry_bytes must be >= 1"
  | _ -> ());
  {
    lock = Mutex.create ();
    cap = capacity;
    max_entry_bytes;
    tbl = Hashtbl.create (min capacity 1024);
    tick = 0;
    lookups = 0;
    hits = 0;
    misses = 0;
    rejects = 0;
    inserts = 0;
    evictions = 0;
    reloaded = 0;
  }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let find t key =
  let r =
    locked t (fun () ->
        t.tick <- t.tick + 1;
        t.lookups <- t.lookups + 1;
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          e.last_used <- t.tick;
          t.hits <- t.hits + 1;
          Some e.body
        | None -> None)
  in
  (match r with
  | Some _ -> Metrics_registry.incr "serve.cache.hits"
  | None -> ());
  r

let evict_lru t =
  (* O(size) scan; runs only when a genuinely new key arrives at
     capacity. *)
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, lu) when lu <= e.last_used -> ()
      | _ -> victim := Some (k, e.last_used))
    t.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1;
    true
  | None -> false

let body_bytes body = String.length (Json.to_string (Json.Assoc body))

let oversized t body =
  match t.max_entry_bytes with
  | None -> false
  | Some limit -> body_bytes body > limit

(* The artifact was uncacheable (error body, retried or degraded
   compile, ...): classify the pending missed lookup as a reject. *)
let reject t =
  locked t (fun () -> t.rejects <- t.rejects + 1);
  Metrics_registry.incr "serve.cache.reject"

type stored = Stored | Duplicate | Oversized

let store t key body =
  if oversized t body then begin
    locked t (fun () -> t.rejects <- t.rejects + 1);
    Metrics_registry.incr "serve.cache.reject";
    Oversized
  end
  else begin
    let outcome =
      locked t (fun () ->
          t.tick <- t.tick + 1;
          t.misses <- t.misses + 1;
          match Hashtbl.find_opt t.tbl key with
          | Some e ->
            (* racing duplicate compute: refresh recency, keep the body
               (deterministic compilation makes both copies identical) *)
            e.last_used <- t.tick;
            (Duplicate, false)
          | None ->
            let evicted =
              if Hashtbl.length t.tbl >= t.cap then evict_lru t else false
            in
            Hashtbl.replace t.tbl key { body; last_used = t.tick };
            t.inserts <- t.inserts + 1;
            (Stored, evicted))
    in
    Metrics_registry.incr "serve.cache.misses";
    (match outcome with
    | Stored, _ -> Metrics_registry.incr "serve.cache.inserts"
    | _ -> ());
    (match outcome with
    | _, true -> Metrics_registry.incr "serve.cache.evictions"
    | _ -> ());
    fst outcome
  end

(* Journal reload path: insert without touching the lookup taxonomy -
   a reloaded entry was never looked up in this process.  Oversized
   entries (the limit may have shrunk between runs) are refused so the
   in-memory invariants match a fresh cache. *)
let preload t key body =
  if oversized t body then false
  else begin
    let fresh =
      locked t (fun () ->
          t.tick <- t.tick + 1;
          match Hashtbl.find_opt t.tbl key with
          | Some e ->
            e.last_used <- t.tick;
            false
          | None ->
            if Hashtbl.length t.tbl >= t.cap then ignore (evict_lru t);
            Hashtbl.replace t.tbl key { body; last_used = t.tick };
            t.reloaded <- t.reloaded + 1;
            true)
    in
    if fresh then Metrics_registry.incr "serve.cache.reloaded";
    fresh
  end

(* Live entries in LRU order (least recently used first), for journal
   compaction: replaying them through [preload] reproduces the same
   recency order. *)
let to_list t =
  locked t (fun () ->
      Hashtbl.fold (fun k e acc -> (k, e.body, e.last_used) :: acc) t.tbl []
      |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
      |> List.map (fun (k, body, _) -> (k, body)))

let size t = locked t (fun () -> Hashtbl.length t.tbl)

let stats t =
  locked t (fun () ->
      {
        lookups = t.lookups;
        hits = t.hits;
        misses = t.misses;
        rejects = t.rejects;
        inserts = t.inserts;
        evictions = t.evictions;
        reloaded = t.reloaded;
        size = Hashtbl.length t.tbl;
      })
