module Json = Qaoa_obs.Json
module Deadline = Qaoa_obs.Deadline
module Metrics_registry = Qaoa_obs.Metrics_registry
module Compile = Qaoa_core.Compile
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Profile = Qaoa_hardware.Profile
module Router = Qaoa_backend.Router
module Mapping = Qaoa_backend.Mapping
module Circuit = Qaoa_circuit.Circuit
module Metrics = Qaoa_circuit.Metrics
module Qasm = Qaoa_circuit.Qasm
module Decompose = Qaoa_circuit.Decompose
module Dataflow = Qaoa_analysis.Dataflow
module Graph = Qaoa_graph.Graph
module Chaos = Qaoa_journal.Chaos

(* ------------------------------------------------------------------ *)
(* Shared device table: resolve every device name once per run so all
   workers share one Device.t value - which is what makes the
   Profile distance-matrix memo (keyed on physical identity) hit. *)

module Devices = struct
  type t = {
    lock : Mutex.t;
    tbl : (string, Device.t option) Hashtbl.t;  (** None = unknown name *)
  }

  let create () = { lock = Mutex.create (); tbl = Hashtbl.create 8 }

  let resolve t name =
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.tbl name with
    | Some v ->
      Mutex.unlock t.lock;
      v
    | None ->
      let v = Topologies.by_name name in
      Hashtbl.replace t.tbl name v;
      Mutex.unlock t.lock;
      (* outside the table lock: Profile has its own mutex and dedups
         concurrent warms *)
      Option.iter Profile.precompute v;
      v

  let prewarm t = List.iter (fun n -> ignore (resolve t n)) [ "tokyo"; "melbourne" ]
end

(* ------------------------------------------------------------------ *)

(* The (device, policy) quarantine key's policy half. *)
let policy_tag (req : Request.t) = Compile.strategy_name req.Request.policy

(* ------------------------------------------------------------------ *)
(* Response-body builders (shared with the bad-line path in Serve). *)

let error_body ?extra ~kind detail =
  ("ok", Json.Bool false)
  :: (match extra with Some fs -> fs | None -> [])
  @ [
      ( "error",
        Json.Assoc
          [ ("kind", Json.String kind); ("detail", Json.String detail) ] );
    ]

let is_error body =
  match List.assoc_opt "ok" body with Some (Json.Bool true) -> false | _ -> true

let metrics_fields ~device ~policy ~qubits ~(metrics : Metrics.t) ~swaps =
  [
    ("ok", Json.Bool true);
    ("device", Json.String device.Device.name);
    ("policy", Json.String policy);
    ("qubits", Json.Int qubits);
    ("depth", Json.Int metrics.Metrics.depth);
    ("gates", Json.Int metrics.Metrics.gate_count);
    ("two_qubit", Json.Int metrics.Metrics.two_qubit_count);
    ("swaps", Json.Int swaps);
  ]

(* ------------------------------------------------------------------ *)

type config = {
  tries : int;  (** total attempts per request, >= 1 *)
  backoff_s : float;  (** sleep before retry [k]: [backoff_s * 2^(k-1)] *)
  breaker_threshold : int;  (** consecutive failures to open; 0 disables *)
  breaker_probe_every : int;  (** half-open probe cadence while open *)
  deadline_s : float option;  (** per-request budget spanning all attempts *)
}

let default_config =
  {
    tries = 2;
    backoff_s = 0.0;
    breaker_threshold = 5;
    breaker_probe_every = 8;
    deadline_s = None;
  }

let reseed_stride = 7919

(* Per-(device, policy) breaker.  [consecutive] counts structured
   compile failures; a success resets it.  While open, requests for the
   pair skip the primary policy and degrade to the fallback chain,
   except every [breaker_probe_every]-th request, which probes the
   primary again (half-open) and closes the breaker on success. *)
type breaker = {
  mutable consecutive : int;
  mutable opened : bool;
  mutable since_probe : int;
  mutable trips : int;  (** times this breaker has opened *)
}

type t = {
  config : config;
  lock : Mutex.t;
  breakers : (string * string, breaker) Hashtbl.t;
}

let create config =
  if config.tries < 1 then invalid_arg "Supervise: tries must be >= 1";
  if config.backoff_s < 0.0 || not (Float.is_finite config.backoff_s) then
    invalid_arg "Supervise: backoff_s must be finite and >= 0";
  if config.breaker_threshold < 0 then
    invalid_arg "Supervise: breaker_threshold must be >= 0";
  if config.breaker_probe_every < 1 then
    invalid_arg "Supervise: breaker_probe_every must be >= 1";
  (match config.deadline_s with
  | Some d when not (Float.is_finite d && d > 0.0) ->
    invalid_arg "Supervise: deadline_s must be positive and finite"
  | _ -> ());
  { config; lock = Mutex.create (); breakers = Hashtbl.create 8 }

let breaker_for t key =
  match Hashtbl.find_opt t.breakers key with
  | Some b -> b
  | None ->
    let b = { consecutive = 0; opened = false; since_probe = 0; trips = 0 } in
    Hashtbl.replace t.breakers key b;
    b

(* What this request should do, given the breaker's state. *)
let admit t key =
  if t.config.breaker_threshold = 0 then `Primary
  else
    Mutex.protect t.lock (fun () ->
        let b = breaker_for t key in
        if not b.opened then `Primary
        else begin
          b.since_probe <- b.since_probe + 1;
          if b.since_probe >= t.config.breaker_probe_every then begin
            b.since_probe <- 0;
            `Probe
          end
          else `Degrade
        end)

let record_success t key =
  if t.config.breaker_threshold > 0 then
    Mutex.protect t.lock (fun () ->
        let b = breaker_for t key in
        b.consecutive <- 0;
        if b.opened then begin
          b.opened <- false;
          Metrics_registry.incr "serve.breaker.close"
        end)

(* Returns true when the pair is (now) quarantined. *)
let record_failure t key =
  if t.config.breaker_threshold = 0 then false
  else
    Mutex.protect t.lock (fun () ->
        let b = breaker_for t key in
        b.consecutive <- b.consecutive + 1;
        if (not b.opened) && b.consecutive >= t.config.breaker_threshold then begin
          b.opened <- true;
          b.since_probe <- 0;
          b.trips <- b.trips + 1;
          Metrics_registry.incr "serve.breaker.open"
        end;
        b.opened)

let open_breakers t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun key b acc -> if b.opened then key :: acc else acc)
        t.breakers []
      |> List.sort compare)

(* ------------------------------------------------------------------ *)
(* Test-only fault injection: called before every primary attempt with
   the request id and attempt index; anything it raises flows through
   the regular containment/retry path.  Never set outside tests. *)

let inject_hook : (id:string -> attempt:int -> unit) option ref = ref None

(* ------------------------------------------------------------------ *)

type verdict = {
  body : (string * Json.t) list;
  cacheable : bool;
      (** pure function of the request: a first-attempt success.
          Errors, retried successes and degraded responses depend on
          supervision state and are never cached. *)
}

let uncacheable body = { body; cacheable = false }

(* Mirrors [Compile]'s own retry policy: structural impossibilities and
   an exhausted budget cannot be reseeded away. *)
let compile_retryable = function
  | Compile.Unroutable _ | Compile.Verification_rejected _
  | Compile.Strategy_failed _ ->
    true
  | Compile.Too_many_qubits _ | Compile.Missing_calibration _
  | Compile.Deadline_exceeded _ ->
    false

type attempt_error =
  | Compile_error of Compile.error
  | Internal of string  (** contained exception, outside the taxonomy *)

let attempt_error_kind = function
  | Compile_error e -> Compile.error_kind e
  | Internal _ -> "internal"

let attempt_error_detail = function
  | Compile_error e -> Compile.error_to_string e
  | Internal detail -> detail

let attempt_retryable = function
  | Compile_error e -> compile_retryable e
  | Internal _ -> true

let problem_of ~n ~edges = Problem.of_maxcut (Graph.of_edges n edges)

let params_of (req : Request.t) =
  {
    Ansatz.gammas = Array.make req.Request.p req.Request.gamma;
    betas = Array.make req.Request.p req.Request.beta;
  }

let options_of (req : Request.t) ~seed ~deadline_s =
  {
    Compile.default_options with
    seed;
    measure = req.Request.measure;
    verify = req.Request.verify;
    analyze = req.Request.analyze;
    deadline_s;
  }

let success_body (req : Request.t) device ~qubits (r : Compile.result) =
  metrics_fields ~device
    ~policy:(Compile.strategy_name r.Compile.strategy)
    ~qubits ~metrics:r.Compile.metrics ~swaps:r.Compile.swap_count
  @ (if req.Request.verify then [ ("verified", Json.Bool true) ] else [])
  @ (match (req.Request.analyze, r.Compile.static) with
    | true, Some s -> [ ("static", Dataflow.summary_to_json s) ]
    | _ -> [])
  @
  if req.Request.qasm_out then
    [ ("qasm", Json.String (Qasm.to_string r.Compile.circuit)) ]
  else []

(* One guarded compile attempt.  Chaos injections must propagate (they
   simulate a process crash; recovery is exercised by the caller);
   everything else is contained into the attempt-error taxonomy. *)
let guarded_compile (req : Request.t) device ~attempt ~seed ~deadline_s ~n
    ~edges =
  match
    (match !inject_hook with
    | Some f -> f ~id:req.Request.id ~attempt
    | None -> ());
    Compile.compile_result
      ~options:(options_of req ~seed ~deadline_s)
      ~strategy:req.Request.policy device (problem_of ~n ~edges)
      (params_of req)
  with
  | Ok r -> Ok r
  | Error e -> Error (Compile_error e)
  | exception (Chaos.Injected _ as e) -> raise e
  | exception Deadline.Exceeded { budget_s; elapsed_s } ->
    Error (Compile_error (Compile.Deadline_exceeded { budget_s; elapsed_s }))
  | exception e ->
    Metrics_registry.incr "serve.contained";
    Error (Internal (Printexc.to_string e))

let remaining_budget deadline =
  match deadline with
  | None -> Ok None
  | Some dl ->
    let r = Deadline.remaining_s dl in
    if r <= 0.0 then
      Error
        (Compile_error
           (Compile.Deadline_exceeded
              { budget_s = Deadline.budget_s dl; elapsed_s = Deadline.elapsed_s dl }))
    else Ok (Some r)

(* Degraded service for a quarantined (device, policy) pair: walk the
   fallback chain instead of failing hard.  The response names the
   policy that actually compiled and is flagged [degraded], and is
   never cached (it is not a pure function of the request). *)
let degrade (req : Request.t) device ~deadline ~n ~edges =
  Metrics_registry.incr "serve.breaker.degraded";
  match remaining_budget deadline with
  | Error e ->
    uncacheable (error_body ~kind:(attempt_error_kind e) (attempt_error_detail e))
  | Ok deadline_s -> (
    let options = options_of req ~seed:req.Request.seed ~deadline_s in
    match
      Compile.compile_with_fallback ~options device (problem_of ~n ~edges)
        (params_of req)
    with
    | Ok { Compile.fallback_result = r; attempts } ->
      uncacheable
        (success_body req device ~qubits:n r
        @ [
            ("degraded", Json.Bool true);
            ("requested_policy", Json.String (policy_tag req));
            ("fallback_attempts", Json.Int (List.length attempts));
          ])
    | Error trail ->
      let detail =
        trail
        |> List.map (fun (a : Compile.attempt) ->
               Printf.sprintf "%s: %s"
                 (Compile.strategy_name a.Compile.attempt_strategy)
                 (match a.Compile.attempt_error with
                 | Some e -> Compile.error_to_string e
                 | None -> "ok"))
        |> String.concat "; "
      in
      uncacheable
        (error_body ~kind:"fallback_exhausted"
           (if detail = "" then "fallback chain exhausted" else detail))
    | exception (Chaos.Injected _ as e) -> raise e
    | exception e ->
      Metrics_registry.incr "serve.contained";
      uncacheable (error_body ~kind:"internal" (Printexc.to_string e)))

let backoff config k =
  (* bounded exponential: 0 by default, so retries cost nothing unless
     the operator asks for spacing *)
  if config.backoff_s > 0.0 && k > 0 then
    Unix.sleepf (config.backoff_s *. (2.0 ** float_of_int (k - 1)))

(* The supervised primary path: bounded attempts, deterministic
   reseeding at [seed + 7919 * attempt], one deadline spanning all
   attempts.  [probe = true] means the breaker is open and this request
   is the half-open probe: success closes the breaker, failure degrades
   to the fallback chain so the client still gets an answer. *)
let primary t (req : Request.t) device ~probe ~n ~edges =
  let key = (req.Request.device, policy_tag req) in
  let deadline =
    Option.map (fun budget_s -> Deadline.start ~budget_s) t.config.deadline_s
  in
  let rec attempt k =
    backoff t.config k;
    let seed =
      if k = 0 then req.Request.seed
      else req.Request.seed + (reseed_stride * k)
    in
    if k > 0 then Metrics_registry.incr "serve.retries";
    let outcome =
      match remaining_budget deadline with
      | Error e -> Error e
      | Ok deadline_s ->
        guarded_compile req device ~attempt:k ~seed ~deadline_s ~n ~edges
    in
    match outcome with
    | Ok r ->
      record_success t key;
      let body = success_body req device ~qubits:n r in
      if k = 0 then { body; cacheable = true }
      else
        (* reseeded: correct, but not the attempt-0 artifact a fresh
           cache lookup would expect - served, flagged, never cached *)
        uncacheable (body @ [ ("attempts", Json.Int (k + 1)) ])
    | Error e ->
      if attempt_retryable e && k + 1 < t.config.tries then attempt (k + 1)
      else begin
        let now_open = record_failure t key in
        if now_open && probe then
          (* failed probe on an open breaker: degrade instead of
             failing hard *)
          degrade req device ~deadline ~n ~edges
        else
          uncacheable
            (error_body ~kind:(attempt_error_kind e)
               ~extra:
                 (if k > 0 then [ ("attempts", Json.Int (k + 1)) ] else [])
               (attempt_error_detail e))
      end
  in
  attempt 0

(* Route a raw OpenQASM program straight through the backend router
   under the trivial initial mapping; the policy field is moot, so the
   breaker (keyed on compile policies) does not apply - but containment
   and the request deadline do. *)
let route_qasm (req : Request.t) device ~qasm =
  match Qasm.of_string qasm with
  | exception Failure msg -> uncacheable (error_body ~kind:"bad_request" msg)
  | circuit -> (
    let nq = Circuit.num_qubits circuit in
    let available = Device.num_qubits device in
    if nq > available then
      uncacheable
        (error_body ~kind:"too_many_qubits"
           (Printf.sprintf "program needs %d qubits but the device has %d" nq
              available))
    else
      let initial = Mapping.trivial ~num_logical:nq ~num_physical:available in
      match Router.route ~device ~initial circuit with
      | routed ->
        {
          body =
            (metrics_fields ~device ~policy:"route" ~qubits:nq
               ~metrics:(Metrics.of_circuit routed.Router.circuit)
               ~swaps:routed.Router.swap_count
            @ (if req.Request.analyze then
                 (* same gate basis as the compile path: analyze the
                    decomposed routed circuit *)
                 [
                   ( "static",
                     Dataflow.summary_to_json
                       (Dataflow.analyze
                          (Decompose.circuit routed.Router.circuit)) );
                 ]
               else [])
            @
            if req.Request.qasm_out then
              [ ("qasm", Json.String (Qasm.to_string routed.Router.circuit)) ]
            else []);
          cacheable = true;
        }
      | exception Router.Unroutable detail ->
        uncacheable (error_body ~kind:"unroutable" detail)
      | exception (Chaos.Injected _ as e) -> raise e
      | exception e ->
        Metrics_registry.incr "serve.contained";
        uncacheable (error_body ~kind:"internal" (Printexc.to_string e)))

let handle t devices (req : Request.t) =
  match Devices.resolve devices req.Request.device with
  | None ->
    uncacheable
      (error_body ~kind:"unknown_device"
         (Printf.sprintf "unknown device %S; known: %s" req.Request.device
            (String.concat ", " Topologies.known_names)))
  | Some device -> (
    match req.Request.source with
    | Request.Qasm qasm -> route_qasm req device ~qasm
    | Request.Graph { n; edges } -> (
      let key = (req.Request.device, policy_tag req) in
      match admit t key with
      | `Primary -> primary t req device ~probe:false ~n ~edges
      | `Probe -> primary t req device ~probe:true ~n ~edges
      | `Degrade ->
        let deadline =
          Option.map
            (fun budget_s -> Deadline.start ~budget_s)
            t.config.deadline_s
        in
        degrade req device ~deadline ~n ~edges))
