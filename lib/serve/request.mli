(** JSONL compile-request parsing, normalization and cache keying.

    One request per line.  Schema (unknown fields are rejected so typos
    fail loudly):

    {v
    {"id": "r0",                      // required; string (or int, stringified)
     "graph": {"n": 12,               // XOR "qasm": "<OpenQASM 2.0>"
               "edges": [[0,1], ...]},
     "device": "tokyo",               // default "tokyo"
     "policy": "ic",                  // naive|greedyv|greedye|vqa|qaim|ip|ic|vic
     "seed": 42, "p": 1,
     "gamma": 0.7, "beta": 0.4,
     "packing_limit": 11,             // IC/VIC only; optional
     "measure": true, "verify": false,
     "analyze": false,                // attach the commutation-DAG static record
     "qasm_out": false}               // include compiled OpenQASM in response
    v}

    Graph requests compile the QAOA-MaxCut ansatz of the edge list with
    the requested policy ({!Qaoa_core.Compile}).  Qasm requests parse
    the program with {!Qaoa_circuit.Qasm.of_string} and route it
    directly through the backend router under the trivial initial
    mapping - the policy field is ignored for them.

    Edges are normalized at parse time ((min, max), sorted, deduplicated),
    so every textual spelling of the same graph produces the same
    {!fingerprint} and the same compiled artifact. *)

type source =
  | Graph of { n : int; edges : (int * int) list }
      (** normalized: pairs as [(min, max)], sorted, no duplicates *)
  | Qasm of string

type t = {
  id : string;
  source : source;
  device : string;
  policy : Qaoa_core.Compile.strategy;
      (** [packing_limit], when given, is already folded in *)
  seed : int;
  p : int;
  gamma : float;
  beta : float;
  measure : bool;
  verify : bool;
  analyze : bool;
      (** attach the {!Qaoa_analysis.Dataflow} static record (depth
          lower bound, critical path, slack, live pressure) to the
          response as ["static"]; part of the fingerprint, so cached
          hits replay the same analysis byte-identically *)
  qasm_out : bool;
}

type control = Ping | Stats
(** Control verbs beside the compile schema: [{"op":"ping"}] is a
    liveness probe (the shard supervisor's health check - the reply
    proves the whole submit-compute-respond path, not just the
    process), [{"op":"stats"}] asks for the cache-lookup taxonomy and
    the in-flight gauge.  Strict like requests: any field besides
    ["op"] is rejected. *)

val control_of_line : string -> (control, string) result option
(** [None] when the line is not a control request at all (no ["op"]
    field, not an object, unparseable - it should flow to {!of_line});
    [Some (Error _)] when it names an unknown op or carries extra
    fields. *)

val of_line : string -> (t, string) result
(** Parse one JSONL line.  [Error msg] describes the first problem
    (malformed JSON, missing/unknown field, bad edge, unknown policy,
    ...). *)

val to_json : t -> Qaoa_obs.Json.t
(** Re-serialize (normalized form; used by the corpus generator and
    round-trip tests). *)

val fingerprint : t -> string
(** Canonical rendering of every field except [id] - exact edge list
    (or qasm text), device, policy, seed, p, angles (hex floats, so no
    decimal rounding), measure/verify/analyze/qasm_out.  Equal
    fingerprints imply byte-identical response bodies. *)

val graph_hash : t -> int
(** {!Qaoa_graph.Graph.canonical_hash} of the problem graph for graph
    sources; a string hash of the program text for qasm sources. *)

val cache_key : t -> Cache.key
