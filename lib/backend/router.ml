module Circuit = Qaoa_circuit.Circuit
module Gate = Qaoa_circuit.Gate
module Layering = Qaoa_circuit.Layering
module Device = Qaoa_hardware.Device
module Profile = Qaoa_hardware.Profile
module Paths = Qaoa_graph.Paths
module Float_matrix = Qaoa_util.Float_matrix
module Rng = Qaoa_util.Rng
module Trace = Qaoa_obs.Trace
module Metrics_registry = Qaoa_obs.Metrics_registry

type config = {
  lookahead_weight : float;
  reliability_aware : bool;
  seed : int;
  deadline : Qaoa_obs.Deadline.t option;
}

let default_config =
  {
    lookahead_weight = 0.5;
    reliability_aware = false;
    seed = 17;
    deadline = None;
  }

exception Unroutable of string

type result = {
  circuit : Circuit.t;
  final_mapping : Mapping.t;
  swap_count : int;
}

type state = {
  device : Device.t;
  dist : Float_matrix.t;  (** scoring distances (hop or reliability-weighted) *)
  edges : (int * int) list;  (** coupling edges, computed once per route *)
  comp : int array;  (** connected-component id per physical qubit *)
  rng : Rng.t;
  mutable mapping : Mapping.t;
  mutable out : Circuit.t;
  mutable swaps : int;
}

let component_labels device =
  let comp = Array.make (Device.num_qubits device) (-1) in
  List.iteri
    (fun i vs -> List.iter (fun v -> comp.(v) <- i) vs)
    (Paths.connected_components device.Device.coupling);
  comp

(* SWAPs only move logical qubits along coupling edges, so component
   membership is invariant across routing: a two-qubit gate whose
   operands sit in different components can never be satisfied.  Detect
   it eagerly (per pending gate, once per layer) and fail with a
   structured exception instead of walking forever or dying on a bare
   [Not_found] from the path finder. *)
let check_pair_routable st (a, b) =
  let pa = Mapping.phys st.mapping a and pb = Mapping.phys st.mapping b in
  if st.comp.(pa) <> st.comp.(pb) then
    raise
      (Unroutable
         (Printf.sprintf
            "two-qubit gate on logical (%d, %d): physical hosts %d and %d \
             lie in disconnected components of %s"
            a b pa pb st.device.Device.name))

let pair_of_gate g =
  if Gate.is_two_qubit g then
    match Gate.qubits g with [ a; b ] -> Some (a, b) | _ -> None
  else None

let two_qubit_targets layer = List.filter_map pair_of_gate layer

let pair_distance st (a, b) =
  Float_matrix.get st.dist
    (Mapping.phys st.mapping a)
    (Mapping.phys st.mapping b)

(* Distance of a logical pair under a hypothetical mapping where physical
   qubits p and q have been exchanged. *)
let pair_distance_after_swap st p q (a, b) =
  let move x = if x = p then q else if x = q then p else x in
  let pa = move (Mapping.phys st.mapping a)
  and pb = move (Mapping.phys st.mapping b) in
  Float_matrix.get st.dist pa pb

let total_distance st pairs =
  List.fold_left (fun acc pr -> acc +. pair_distance st pr) 0.0 pairs

let total_distance_after_swap st p q pairs =
  List.fold_left
    (fun acc pr -> acc +. pair_distance_after_swap st p q pr)
    0.0 pairs

let gate_satisfied st g =
  match pair_of_gate g with
  | Some (a, b) ->
    Device.coupled st.device (Mapping.phys st.mapping a)
      (Mapping.phys st.mapping b)
  | None -> true

let emit_swap st p q =
  st.out <- Circuit.append st.out (Gate.Swap (p, q));
  st.mapping <- Mapping.swap_physical st.mapping p q;
  st.swaps <- st.swaps + 1;
  Metrics_registry.incr "router.swaps_inserted"

let emit_gate st g =
  st.out <- Circuit.append st.out (Gate.map_qubits (Mapping.phys st.mapping) g)

(* Candidate swaps: coupling edges with at least one endpoint hosting a
   logical qubit of a pending two-qubit gate. *)
let candidate_swaps st pending_pairs =
  let module S = Set.Make (Int) in
  let hot =
    List.fold_left
      (fun acc (a, b) ->
        S.add
          (Mapping.phys st.mapping a)
          (S.add (Mapping.phys st.mapping b) acc))
      S.empty pending_pairs
  in
  List.filter (fun (p, q) -> S.mem p hot || S.mem q hot) st.edges

(* One step of the closest pending pair along a hop-shortest path:
   strictly reduces that pair's hop distance, guaranteeing progress when
   no globally improving swap exists. *)
let walk_step st pending_pairs =
  let closest =
    List.fold_left
      (fun best pr ->
        match best with
        | None -> Some pr
        | Some b ->
          if pair_distance st pr < pair_distance st b then Some pr else best)
      None pending_pairs
  in
  match closest with
  | None -> ()
  | Some (a, b) -> (
    let pa = Mapping.phys st.mapping a and pb = Mapping.phys st.mapping b in
    (* pending pairs are at hop distance >= 2, so the path has at least
       three vertices; swapping the first edge brings the pair one hop
       closer. *)
    match Paths.shortest_path st.device.Device.coupling pa pb with
    | x :: y :: _ :: _ -> emit_swap st x y
    | _ -> ()
    | exception Not_found ->
      (* unreachable given [check_pair_routable], kept as a structured
         backstop against future component-invariant violations *)
      raise
        (Unroutable
           (Printf.sprintf "no path between physical %d and %d on %s" pa pb
              st.device.Device.name)))

(* Process one layer: emit every gate as soon as its qubits are coupled,
   choosing swaps that strictly decrease the summed distance of the
   still-pending two-qubit gates (next-layer pairs as a weighted
   tie-break).  Gates of a layer act on disjoint qubits, so emission
   order within the layer is irrelevant to semantics, and the ASAP
   re-layering of the result recovers the parallelism. *)
let process_layer config st layer lookahead_pairs =
  if Qaoa_obs.Config.enabled () then
    Metrics_registry.observe "router.layer_size"
      (float_of_int (List.length layer));
  (* 1-qubit gates (and measures/barriers) can go out immediately. *)
  let one_qubit, pending = List.partition (fun g -> pair_of_gate g = None) layer in
  List.iter (emit_gate st) one_qubit;
  List.iter (check_pair_routable st) (two_qubit_targets pending);
  let pending = ref pending in
  let flush () =
    let sat, rest = List.partition (gate_satisfied st) !pending in
    List.iter (emit_gate st) sat;
    pending := rest
  in
  flush ();
  (* Safety budget: the greedy loop is strictly decreasing in practice,
     but a pathological interleaving of improving swaps (weighted-sum
     criterion) and walk steps (hop criterion) could in principle cycle.
     Past the budget, pending gates are routed one at a time by direct
     walks, which always terminates. *)
  let n = Device.num_qubits st.device in
  let budget = ref (8 * n * (1 + List.length !pending)) in
  while !pending <> [] && !budget > 0 do
    decr budget;
    Qaoa_obs.Deadline.check config.deadline;
    let pairs = two_qubit_targets !pending in
    let current = total_distance st pairs in
    let scored =
      List.filter_map
        (fun (p, q) ->
          let primary = total_distance_after_swap st p q pairs in
          if primary < current -. 1e-12 then
            Some ((p, q), primary, total_distance_after_swap st p q lookahead_pairs)
          else None)
        (candidate_swaps st pairs)
    in
    Metrics_registry.incr "router.lookahead_candidates_scored"
      ~by:(List.length scored);
    (match scored with
    | [] ->
      Metrics_registry.incr "router.walk_steps";
      walk_step st pairs
    | _ ->
      let score (_, p, l) = p +. (config.lookahead_weight *. l) in
      let best =
        List.fold_left
          (fun acc cand ->
            match acc with
            | None -> Some cand
            | Some b ->
              let cb = score b and cc = score cand in
              if cc < cb -. 1e-12 then Some cand
              else if Float.abs (cc -. cb) <= 1e-12 && Rng.bool st.rng then
                Some cand
              else Some b)
          None scored
      in
      (match best with
      | Some ((p, q), _, _) -> emit_swap st p q
      | None -> assert false));
    flush ()
  done;
  List.iter
    (fun g ->
      (match pair_of_gate g with
      | Some pr ->
        while not (gate_satisfied st g) do
          Qaoa_obs.Deadline.check config.deadline;
          walk_step st [ pr ]
        done
      | None -> ());
      emit_gate st g)
    !pending

let check_allocation device mapping num_logical =
  if Mapping.num_logical mapping < num_logical then
    invalid_arg "Router: mapping covers fewer qubits than the circuit";
  if Mapping.num_physical mapping <> Device.num_qubits device then
    invalid_arg "Router: mapping sized for a different device"

let route_layers ?(config = default_config) ~device ~initial ~num_logical
    layers =
  check_allocation device initial num_logical;
  Trace.with_span "backend.router.route_layers"
    ~attrs:
      [
        ("layers", Trace.int (List.length layers));
        ("num_logical", Trace.int num_logical);
        ("reliability_aware", Trace.bool config.reliability_aware);
      ]
  @@ fun () ->
  let dist =
    if config.reliability_aware && Option.is_some device.Device.calibration
    then Profile.weighted_distances device
    else Profile.hop_distances device
  in
  let st =
    {
      device;
      dist;
      edges = Device.coupling_edges device;
      comp = component_labels device;
      rng = Rng.create config.seed;
      mapping = initial;
      out = Circuit.create (Device.num_qubits device);
      swaps = 0;
    }
  in
  (* Measurements are held back and emitted after every layer is routed,
     at the final mapping.  Emitting them in place is unsound: swaps
     inserted for later (or same-layer) gates may move a logical qubit
     after its wire was measured, making final-mapping readout
     inconsistent with the recorded outcome.  Terminal measurement is the
     model everywhere in this code base (circuits use [measure_all]), so
     deferral preserves semantics. *)
  let deferred_measures = ref [] in
  let strip_measures layer =
    List.filter
      (fun g ->
        match g with
        | Gate.Measure q ->
          deferred_measures := q :: !deferred_measures;
          false
        | _ -> true)
      layer
  in
  let rec process = function
    | [] -> ()
    | layer :: rest ->
      let lookahead_pairs =
        match rest with next :: _ -> two_qubit_targets next | [] -> []
      in
      process_layer config st (strip_measures layer) lookahead_pairs;
      process rest
  in
  process layers;
  List.iter
    (fun q -> emit_gate st (Gate.Measure q))
    (List.rev !deferred_measures);
  { circuit = st.out; final_mapping = st.mapping; swap_count = st.swaps }

let route ?config ~device ~initial circuit =
  route_layers ?config ~device ~initial
    ~num_logical:(Circuit.num_qubits circuit)
    (Layering.layers circuit)
