(** Layer-partitioned greedy SWAP-insertion router - the backend compiler
    standing in for qiskit (see DESIGN.md, substitution 1).

    The algorithm follows the structure the paper ascribes to conventional
    compilers (Sec. III "SWAP Insertion"): the logical circuit is
    partitioned into layers of concurrently executable gates, and SWAPs
    are inserted until the layer's two-qubit gates act on coupled
    physical pairs.  Within a layer, each gate is emitted as soon as its
    pair becomes coupled (gates of a layer touch disjoint qubits, so
    emission order does not change semantics, and the ASAP re-layering of
    the output recovers the parallelism).  SWAP selection is greedy:
    among the coupling edges touching a qubit of a pending gate, apply
    the swap that strictly decreases the summed distance of pending
    pairs (ties broken by a lookahead term over the next layer, then by
    seeded randomness); when no swap strictly improves, the closest
    pending pair takes one step along a hop-shortest path.  A safety
    budget bounds the loop, past which pending gates are routed one at a
    time - so routing always terminates.

    The compiled circuit acts on physical qubit indices; the result carries
    the final logical-to-physical mapping so callers can interpret
    measurement outcomes (or stitch further partial circuits - the IC/VIC
    use case).

    Routing holds no module-level mutable state: the seeded tie-break
    RNG and all work queues live in a per-[route] call record, and the
    shared distance matrices ({!Qaoa_hardware.Profile}) are read-only
    after construction - so concurrent [route] calls from multiple
    domains are safe and per-seed deterministic.

    [Measure] gates are deferred: they are stripped from the layers and
    re-emitted after all routing, on each logical qubit's final physical
    wire.  Emitting them in place was unsound - a SWAP inserted for a
    still-pending gate could move (or even re-use) an already-measured
    wire, making final-mapping readout silently wrong; the translation
    validator ({!Qaoa_verify.Check}) rejects such circuits.  This assumes
    terminal measurement, which is the only mode the ansatz builders
    produce. *)

type config = {
  lookahead_weight : float;
      (** Weight of next-layer distances in tie-breaking (default 0.5). *)
  reliability_aware : bool;
      (** Score swaps with the calibration-weighted distance matrix
          (VQM-style router extension; default false = hop distances). *)
  seed : int;  (** Tie-break randomness seed (default 17). *)
  deadline : Qaoa_obs.Deadline.t option;
      (** Cooperative cancellation: the routing loops check this once per
          swap decision and raise {!Qaoa_obs.Deadline.Exceeded} past the
          budget (default [None] = route to completion). *)
}

val default_config : config

exception Unroutable of string
(** A two-qubit gate's operands are mapped to disconnected components of
    the coupling graph (e.g. after fault injection severed the only
    bridge), so no SWAP sequence can ever satisfy it.  Raised eagerly
    when the gate first becomes pending; the message names the logical
    pair, the physical hosts and the device. *)

val component_labels : Qaoa_hardware.Device.t -> int array
(** Connected-component id of every physical qubit.  SWAPs move logical
    qubits only along coupling edges, so these labels are invariant
    across routing - the basis of the {!Unroutable} check (shared with
    {!Sabre}). *)

type result = {
  circuit : Qaoa_circuit.Circuit.t;
      (** Hardware-compliant circuit on physical qubits (CPHASE/SWAP not
          yet decomposed; use {!Qaoa_circuit.Decompose} for native form). *)
  final_mapping : Mapping.t;
  swap_count : int;  (** SWAP gates inserted. *)
}

val route :
  ?config:config ->
  device:Qaoa_hardware.Device.t ->
  initial:Mapping.t ->
  Qaoa_circuit.Circuit.t ->
  result
(** [route ~device ~initial circuit] compiles the logical [circuit].
    @raise Invalid_argument if the mapping's logical count is smaller than
    the circuit's qubit count or sized for a different device.
    @raise Unroutable if a two-qubit gate's operands can never be brought
    together (disconnected coupling components).
    @raise Qaoa_obs.Deadline.Exceeded past [config.deadline]. *)

val route_layers :
  ?config:config ->
  device:Qaoa_hardware.Device.t ->
  initial:Mapping.t ->
  num_logical:int ->
  Qaoa_circuit.Gate.t list list ->
  result
(** Lower-level entry point taking pre-formed layers (IP and IC build
    their own layers rather than re-deriving them by ASAP scheduling). *)
