module Circuit = Qaoa_circuit.Circuit
module Gate = Qaoa_circuit.Gate
module Device = Qaoa_hardware.Device
module Profile = Qaoa_hardware.Profile
module Paths = Qaoa_graph.Paths
module Float_matrix = Qaoa_util.Float_matrix
module Rng = Qaoa_util.Rng
module Trace = Qaoa_obs.Trace
module Metrics_registry = Qaoa_obs.Metrics_registry

type config = {
  extended_window : int;
  extended_weight : float;
  decay_increment : float;
  decay_reset_interval : int;
  seed : int;
  deadline : Qaoa_obs.Deadline.t option;
}

let default_config =
  {
    extended_window = 20;
    extended_weight = 0.5;
    decay_increment = 0.001;
    decay_reset_interval = 5;
    seed = 17;
    deadline = None;
  }

type state = {
  device : Device.t;
  dist : Float_matrix.t;
  edges : (int * int) list;
  rng : Rng.t;
  gates : Gate.t array;
  succs : int list array;  (** dependency successors *)
  indeg : int array;
  executed : bool array;
  decay : float array;  (** per physical qubit, >= 1 *)
  decay_increment : float;
  mutable mapping : Mapping.t;
  mutable out : Circuit.t;
  mutable swaps : int;
  mutable swaps_since_reset : int;
}

(* Per-qubit chain dependencies: gate i depends on the most recent earlier
   gate sharing a qubit with it; barriers link to everything around them. *)
let build_dependencies gates num_qubits =
  let m = Array.length gates in
  let succs = Array.make m [] in
  let indeg = Array.make m 0 in
  let last_on = Array.make num_qubits (-1) in
  let last_barrier = ref (-1) in
  let add_edge i j =
    succs.(i) <- j :: succs.(i);
    indeg.(j) <- indeg.(j) + 1
  in
  Array.iteri
    (fun j g ->
      match g with
      | Gate.Barrier ->
        (* depends on every chain tail *)
        let preds = ref [] in
        Array.iter (fun l -> if l >= 0 && not (List.mem l !preds) then preds := l :: !preds) last_on;
        if !last_barrier >= 0 && not (List.mem !last_barrier !preds) then
          preds := !last_barrier :: !preds;
        List.iter (fun i -> add_edge i j) !preds;
        last_barrier := j;
        Array.iteri (fun q _ -> last_on.(q) <- j) last_on
      | _ ->
        let preds = ref [] in
        List.iter
          (fun q ->
            let l = last_on.(q) in
            if l >= 0 && not (List.mem l !preds) then preds := l :: !preds)
          (Gate.qubits g);
        if !preds = [] && !last_barrier >= 0 then preds := [ !last_barrier ];
        List.iter (fun i -> add_edge i j) !preds;
        List.iter (fun q -> last_on.(q) <- j) (Gate.qubits g))
    gates;
  (succs, indeg)

let pair_of_gate g =
  if Gate.is_two_qubit g then
    match Gate.qubits g with [ a; b ] -> Some (a, b) | _ -> None
  else None

let gate_executable st i =
  match pair_of_gate st.gates.(i) with
  | None -> true
  | Some (a, b) ->
    Device.coupled st.device (Mapping.phys st.mapping a)
      (Mapping.phys st.mapping b)

let emit st i =
  st.out <-
    Circuit.append st.out
      (Gate.map_qubits (Mapping.phys st.mapping) st.gates.(i));
  st.executed.(i) <- true

let emit_swap st p q =
  st.out <- Circuit.append st.out (Gate.Swap (p, q));
  st.mapping <- Mapping.swap_physical st.mapping p q;
  st.swaps <- st.swaps + 1;
  Metrics_registry.incr "sabre.swaps_inserted";
  st.decay.(p) <- st.decay.(p) +. st.decay_increment;
  st.decay.(q) <- st.decay.(q) +. st.decay_increment

let distance_after st p q (a, b) =
  let move x = if x = p then q else if x = q then p else x in
  Float_matrix.get st.dist
    (move (Mapping.phys st.mapping a))
    (move (Mapping.phys st.mapping b))

(* first [w] not-yet-executed two-qubit gates beyond the front, in program
   order - the extended (lookahead) set *)
let extended_set st front w =
  let module S = Set.Make (Int) in
  let in_front = S.of_list front in
  let acc = ref [] and n = ref 0 in
  (try
     Array.iteri
       (fun i g ->
         if !n >= w then raise Exit;
         if (not st.executed.(i)) && not (S.mem i in_front) then
           match pair_of_gate g with
           | Some pr ->
             acc := pr :: !acc;
             incr n
           | None -> ())
       st.gates
   with Exit -> ());
  !acc

let walk_step st (a, b) =
  let pa = Mapping.phys st.mapping a and pb = Mapping.phys st.mapping b in
  match Paths.shortest_path st.device.Device.coupling pa pb with
  | x :: y :: _ :: _ -> emit_swap st x y
  | _ -> ()

let route ?(config = default_config) ~device ~initial circuit =
  if Mapping.num_logical initial < Circuit.num_qubits circuit then
    invalid_arg "Sabre: mapping covers fewer qubits than the circuit";
  if Mapping.num_physical initial <> Device.num_qubits device then
    invalid_arg "Sabre: mapping sized for a different device";
  Trace.with_span "backend.sabre.route"
    ~attrs:
      [
        ("gates", Trace.int (List.length (Circuit.gates circuit)));
        ("num_logical", Trace.int (Circuit.num_qubits circuit));
      ]
  @@ fun () ->
  let gates = Array.of_list (Circuit.gates circuit) in
  let succs, indeg = build_dependencies gates (Circuit.num_qubits circuit) in
  let st =
    {
      device;
      dist = Profile.hop_distances device;
      edges = Device.coupling_edges device;
      rng = Rng.create config.seed;
      gates;
      succs;
      indeg;
      executed = Array.make (Array.length gates) false;
      decay = Array.make (Device.num_qubits device) 1.0;
      decay_increment = config.decay_increment;
      mapping = initial;
      out = Circuit.create (Device.num_qubits device);
      swaps = 0;
      swaps_since_reset = 0;
    }
  in
  let front = ref [] in
  Array.iteri (fun i d -> if d = 0 then front := i :: !front) st.indeg;
  front := List.rev !front;
  let release i =
    List.iter
      (fun j ->
        st.indeg.(j) <- st.indeg.(j) - 1;
        if st.indeg.(j) = 0 then front := !front @ [ j ])
      (List.rev st.succs.(i))
  in
  let comp = Router.component_labels device in
  let check_routable (a, b) =
    let pa = Mapping.phys st.mapping a and pb = Mapping.phys st.mapping b in
    if comp.(pa) <> comp.(pb) then
      raise
        (Router.Unroutable
           (Printf.sprintf
              "two-qubit gate on logical (%d, %d): physical hosts %d and %d \
               lie in disconnected components of %s"
              a b pa pb device.Device.name))
  in
  let stuck = ref 0 in
  let max_stuck = 8 * Device.num_qubits device in
  while !front <> [] do
    Qaoa_obs.Deadline.check config.deadline;
    let executable, blocked = List.partition (gate_executable st) !front in
    if executable <> [] then begin
      stuck := 0;
      front := blocked;
      List.iter
        (fun i ->
          emit st i;
          release i)
        executable
    end
    else begin
      incr stuck;
      let front_pairs = List.filter_map (fun i -> pair_of_gate st.gates.(i)) blocked in
      List.iter check_routable front_pairs;
      if !stuck > max_stuck then begin
        (* safety: force progress on the closest blocked pair *)
        match front_pairs with
        | pr :: _ -> walk_step st pr
        | [] -> assert false
      end
      else begin
        let ext = extended_set st blocked config.extended_window in
        let module S = Set.Make (Int) in
        let hot =
          List.fold_left
            (fun acc (a, b) ->
              S.add (Mapping.phys st.mapping a)
                (S.add (Mapping.phys st.mapping b) acc))
            S.empty front_pairs
        in
        let candidates =
          List.filter (fun (p, q) -> S.mem p hot || S.mem q hot) st.edges
        in
        if Qaoa_obs.Config.enabled () then begin
          Metrics_registry.incr "sabre.candidates_scored"
            ~by:(List.length candidates);
          Metrics_registry.observe "sabre.front_size"
            (float_of_int (List.length front_pairs))
        end;
        let nf = float_of_int (max 1 (List.length front_pairs)) in
        let ne = float_of_int (max 1 (List.length ext)) in
        let score (p, q) =
          let fsum =
            List.fold_left
              (fun acc pr -> acc +. distance_after st p q pr)
              0.0 front_pairs
          in
          let esum =
            List.fold_left
              (fun acc pr -> acc +. distance_after st p q pr)
              0.0 ext
          in
          Float.max st.decay.(p) st.decay.(q)
          *. ((fsum /. nf) +. (config.extended_weight *. esum /. ne))
        in
        let best =
          List.fold_left
            (fun acc cand ->
              match acc with
              | None -> Some (cand, score cand)
              | Some (_, bs) ->
                let cs = score cand in
                if cs < bs -. 1e-12 then Some (cand, cs)
                else if Float.abs (cs -. bs) <= 1e-12 && Rng.bool st.rng then
                  Some (cand, cs)
                else acc)
            None candidates
        in
        match best with
        | Some ((p, q), _) ->
          emit_swap st p q;
          st.swaps_since_reset <- st.swaps_since_reset + 1;
          if st.swaps_since_reset >= config.decay_reset_interval then begin
            Array.fill st.decay 0 (Array.length st.decay) 1.0;
            st.swaps_since_reset <- 0
          end
        | None -> (
          match front_pairs with
          | pr :: _ -> walk_step st pr
          | [] -> assert false)
      end
    end
  done;
  {
    Router.circuit = st.out;
    final_mapping = st.mapping;
    swap_count = st.swaps;
  }
