(** SABRE-style SWAP-insertion router (Li, Ding, Xie - ASPLOS'19), the
    heuristic family the paper cites for initial-mapping reverse
    traversal (Sec. III).

    Differences from the layer-partitioned {!Router}:
    - works on a {b front} of gates whose per-qubit predecessors have all
      executed, rather than on pre-formed layers;
    - scores candidate SWAPs with the front's summed distance plus a
      weighted {b extended set} (a lookahead window of upcoming two-qubit
      gates), normalized by set sizes;
    - applies a {b decay} penalty to recently swapped qubits to spread
      movement across the machine and avoid ping-ponging.

    Provided as an alternative backend: the router-shootout ablation runs
    both engines on identical workloads.  Results are interchangeable
    with {!Router.result}. *)

type config = {
  extended_window : int;  (** upcoming 2q gates in the lookahead (default 20) *)
  extended_weight : float;  (** lookahead weight (default 0.5) *)
  decay_increment : float;  (** per-swap decay bump (default 0.001) *)
  decay_reset_interval : int;  (** swaps between decay resets (default 5) *)
  seed : int;
  deadline : Qaoa_obs.Deadline.t option;
      (** Cooperative cancellation checked once per front iteration;
          raises {!Qaoa_obs.Deadline.Exceeded} past the budget (default
          [None]). *)
}

val default_config : config

val route :
  ?config:config ->
  device:Qaoa_hardware.Device.t ->
  initial:Mapping.t ->
  Qaoa_circuit.Circuit.t ->
  Router.result
(** Same contract as {!Router.route}: hardware-compliant output circuit
    on physical qubits, final mapping tracked, semantics preserved up to
    the output permutation (property-tested against the statevector
    simulator).
    @raise Router.Unroutable when a blocked gate's operands sit in
    disconnected coupling components.
    @raise Qaoa_obs.Deadline.Exceeded past [config.deadline]. *)
