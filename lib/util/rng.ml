(* The creation seed and a split counter ride along with the state so
   that [split] can derive child seeds as a pure function of
   (seed, #previous splits) - independent of how many draws the parent
   made in between (see the .mli).  Only [split] reads them. *)
type t = { state : Random.State.t; seed : int; mutable splits : int }

(* SplitMix-style finalizer over OCaml's native int.  Multiplication
   wraps silently, which is exactly what a bit mixer wants; constants
   stay within the 63-bit literal range. *)
let mix a b =
  let h = ref (a lxor ((b + 0x9e3779b9) * 0x517cc1b727220a95)) in
  h := (!h lxor (!h lsr 30)) * 0x2545f4914f6cdd1d;
  h := (!h lxor (!h lsr 27)) * 0x1d8e4e27c47d124f;
  !h lxor (!h lsr 31)

let create seed =
  {
    state = Random.State.make [| seed; 0x51ab; seed lxor 0x9e3779b9 |];
    seed;
    splits = 0;
  }

let split t =
  let i = t.splits in
  t.splits <- i + 1;
  create (mix t.seed i)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t.state bound

let float t bound = Random.State.float t.state bound
let bool t = Random.State.bool t.state
let bernoulli t p = Random.State.float t.state 1.0 < p

let normal t ~mu ~sigma =
  (* Box-Muller: u1 in (0,1] to keep log finite. *)
  let u1 = 1.0 -. Random.State.float t.state 1.0 in
  let u2 = Random.State.float t.state 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let normal_clamped t ~mu ~sigma ~lo ~hi =
  let rec loop attempts =
    let x = normal t ~mu ~sigma in
    if x >= lo && x <= hi then x
    else if attempts >= 100 then Float.min hi (Float.max lo x)
    else loop (attempts + 1)
  in
  loop 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t.state (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(Random.State.int t.state (Array.length a))

let choice_list t = function
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | l -> List.nth l (Random.State.int t.state (List.length l))

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let a = permutation t n in
  Array.to_list (Array.sub a 0 k)
