(** Descriptive statistics over float samples, used by the experiment
    harness to aggregate per-instance circuit metrics into the per-bar
    means the paper reports. *)

val mean : float list -> float
(** Arithmetic mean.  [mean [] = nan]. *)

val mean_array : float array -> float

val std : float list -> float
(** Population standard deviation. *)

val median : float list -> float
(** Median (average of middle two for even length). *)

val percentile : float -> float list -> float
(** [percentile p samples] is the [p]-th percentile ([0. <= p <= 100.],
    clamped) with linear interpolation between order statistics, so
    [percentile 50.] agrees with {!median}.  [nan] on the empty list. *)

val percentile_sorted_array : float -> float array -> float
(** {!percentile} over an already-sorted array (no copy, no sort). *)

val min_max : float list -> float * float
(** @raise Invalid_argument on the empty list. *)

val sum : float list -> float

val ratio : float -> float -> float
(** [ratio a b] = [a /. b], returning [nan] when [b = 0.]. *)

val percent_change : from:float -> to_:float -> float
(** [percent_change ~from ~to_] = [100 * (to_ - from) / from]. *)

val geometric_mean : float list -> float
(** Geometric mean of positive samples. *)

val mean_of_int : int list -> float
(** Mean of integer samples. *)
