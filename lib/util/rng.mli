(** Seeded pseudo-random number generation.

    Every randomized component in the library takes an explicit [Rng.t] so
    that experiments are reproducible run-to-run.  The implementation wraps
    [Random.State] and adds the sampling primitives the compilation
    heuristics and workload generators need. *)

type t
(** A mutable PRNG state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t].  The child's
    seed is a pure function of [t]'s creation seed and the number of
    splits performed on [t] so far (a counter mix) - {e not} of [t]'s
    draw position - so the [k]-th split of a generator yields the same
    child stream no matter how many values were drawn from the parent in
    between.  Sub-tasks handed split streams therefore stay reproducible
    when the parent's consumption changes (e.g. work sharded across a
    worker pool).  Splitting does not advance the parent's draw state,
    only its split counter. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample via the Box-Muller transform. *)

val normal_clamped : t -> mu:float -> sigma:float -> lo:float -> hi:float -> float
(** Gaussian sample re-drawn until it falls within [[lo, hi]] (at most 100
    attempts, after which the value is clamped).  Used for error-rate
    synthesis where negative rates are meaningless. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Functional shuffle of a list. *)

val choice : t -> 'a array -> 'a
(** Uniform draw from a non-empty array.  @raise Invalid_argument on [||]. *)

val choice_list : t -> 'a list -> 'a
(** Uniform draw from a non-empty list.  @raise Invalid_argument on []. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct values from
    [0..n-1], in random order.  @raise Invalid_argument if [k > n]. *)
