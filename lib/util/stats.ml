let sum l = List.fold_left ( +. ) 0.0 l

let mean = function
  | [] -> Float.nan
  | l -> sum l /. float_of_int (List.length l)

let mean_array a =
  if Array.length a = 0 then Float.nan
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let std = function
  | [] -> Float.nan
  | l ->
    let m = mean l in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l in
    sqrt (sq /. float_of_int (List.length l))

let median = function
  | [] -> Float.nan
  | l ->
    let a = Array.of_list l in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile_sorted_array p a =
  let n = Array.length a in
  if n = 0 then Float.nan
  else begin
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let percentile p l =
  let a = Array.of_list l in
  Array.sort compare a;
  percentile_sorted_array p a

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
    List.fold_left
      (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
      (x, x) rest

let ratio a b = if b = 0.0 then Float.nan else a /. b
let percent_change ~from ~to_ = 100.0 *. (to_ -. from) /. from

let geometric_mean = function
  | [] -> Float.nan
  | l ->
    let logs = List.map log l in
    exp (mean logs)

let mean_of_int l = mean (List.map float_of_int l)
