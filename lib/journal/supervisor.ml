module Json = Qaoa_obs.Json
module Deadline = Qaoa_obs.Deadline
module Metrics = Qaoa_obs.Metrics_registry

type failure = { f_key : string; f_attempts : int; f_errors : string list }
type 'a outcome = Completed of 'a | Quarantined of failure

let reseed_stride = 7919

let failure_to_json f =
  Json.Assoc
    [
      ("attempts", Json.Int f.f_attempts);
      ("errors", Json.List (List.map (fun e -> Json.String e) f.f_errors));
    ]

let failure_of_json key doc =
  let attempts =
    match Json.member "attempts" doc with Some (Json.Int n) -> n | _ -> 0
  in
  let errors =
    match Json.member "errors" doc with
    | Some (Json.List l) ->
      List.filter_map (function Json.String s -> Some s | _ -> None) l
    | _ -> []
  in
  { f_key = key; f_attempts = attempts; f_errors = errors }

let render_exn = function
  | Deadline.Exceeded { budget_s; elapsed_s } ->
    Printf.sprintf "deadline exceeded (budget %.3fs, elapsed %.3fs)" budget_s
      elapsed_s
  | e -> Printexc.to_string e

let trial ?journal ?deadline_s ?(tries = 1) ~key ~encode ~decode f =
  if tries < 1 then invalid_arg "Supervisor.trial: tries must be >= 1";
  (match deadline_s with
  | Some d when not (Float.is_finite d && d > 0.0) ->
    invalid_arg "Supervisor.trial: deadline_s must be positive and finite"
  | _ -> ());
  let cached =
    match journal with
    | None -> None
    | Some j -> (
      match Journal.find j key with
      | Some { Journal.status = Done; payload } ->
        Metrics.incr "supervisor.trials.cached";
        Some (Completed (decode payload))
      | Some { Journal.status = Quarantined; payload } ->
        Metrics.incr "supervisor.trials.cached_quarantined";
        Some (Quarantined (failure_of_json key payload))
      | None -> None)
  in
  match cached with
  | Some outcome -> outcome
  | None -> (
    let deadline = Option.map (fun budget_s -> Deadline.start ~budget_s) deadline_s in
    let rec attempt_from k errors =
      if k >= tries then Error (List.rev errors)
      else begin
        if k > 0 then Metrics.incr "supervisor.trials.retries";
        match f ~attempt:k ~deadline with
        | v -> Ok v
        | exception (Chaos.Injected _ as e) ->
          (* a simulated crash must propagate, never count as a trial
             failure - recovery is exercised by the caller *)
          raise e
        | exception (Deadline.Exceeded _ as e) ->
          (* the budget spans all attempts: once it is spent, retrying
             would only trip the same check again *)
          Error (List.rev (render_exn e :: errors))
        | exception e -> attempt_from (k + 1) (render_exn e :: errors)
      end
    in
    match attempt_from 0 [] with
    | Ok v ->
      Metrics.incr "supervisor.trials.completed";
      (match journal with
      | None -> Completed v
      | Some j ->
        let payload = encode v in
        Journal.append j ~key ~status:Journal.Done payload;
        (* hand back the journal's view of the value so a fresh run and
           a resumed run aggregate bit-identical inputs *)
        Completed (decode payload))
    | Error errors ->
      Metrics.incr "supervisor.trials.quarantined";
      let failure =
        { f_key = key; f_attempts = List.length errors; f_errors = errors }
      in
      (match journal with
      | None -> ()
      | Some j ->
        Journal.append j ~key ~status:Journal.Quarantined
          (failure_to_json failure));
      Quarantined failure)
