module Json = Qaoa_obs.Json
module Metrics = Qaoa_obs.Metrics_registry

type status = Done | Quarantined
type entry = { status : status; payload : Json.t }

type stats = {
  loaded : int;
  appended : int;
  hits : int;
  quarantined : int;
  torn_truncated : int;
}

type t = {
  file : string;
  table : (string, entry) Hashtbl.t;
  mutable oc : out_channel option;  (** [None] once closed *)
  mutable loaded : int;
  mutable appended : int;
  mutable hits : int;
  mutable torn_truncated : int;
}

let default_filename = "journal.jsonl"

let status_to_string = function Done -> "ok" | Quarantined -> "quarantined"

let status_of_string = function
  | "ok" -> Some Done
  | "quarantined" -> Some Quarantined
  | _ -> None

let render ~key ~status payload =
  let json =
    Json.to_string
      (Json.Assoc
         [
           ("key", Json.String key);
           ("status", Json.String (status_to_string status));
           ("payload", payload);
         ])
  in
  Printf.sprintf "%s %s\n" (Crc32.to_hex (Crc32.digest json)) json

(* One well-formed record line (without its terminating newline), or None. *)
let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some sp -> (
    let crc = String.sub line 0 sp in
    let json = String.sub line (sp + 1) (String.length line - sp - 1) in
    match Crc32.of_hex crc with
    | Some c when c = Crc32.digest json -> (
      match Json.of_string_opt json with
      | Some doc -> (
        match
          ( Json.member "key" doc,
            Json.member "status" doc,
            Json.member "payload" doc )
        with
        | Some (Json.String key), Some (Json.String st), Some payload -> (
          match status_of_string st with
          | Some status -> Some (key, { status; payload })
          | None -> None)
        | _ -> None)
      | None -> None)
    | _ -> None)

let read_all file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Load [file] into [table].  Returns (records loaded, torn records
   truncated).  Truncates the file in place when the trailing record is
   torn; raises [Failure] on corruption before the trailing record or on
   duplicate keys. *)
let load file table =
  if not (Sys.file_exists file) then (0, 0)
  else begin
    let content = read_all file in
    let len = String.length content in
    let loaded = ref 0 in
    let torn = ref 0 in
    let truncate_at off =
      let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> Unix.ftruncate fd off);
      incr torn;
      Metrics.incr "journal.torn_truncated"
    in
    let rec scan off =
      if off < len then
        match String.index_from_opt content off '\n' with
        | None ->
          (* unterminated tail: the classic torn append *)
          truncate_at off
        | Some nl -> (
          let line = String.sub content off (nl - off) in
          match parse_line line with
          | Some (key, entry) ->
            if Hashtbl.mem table key then
              failwith
                (Printf.sprintf "Journal: duplicate key %S in %s" key file);
            Hashtbl.replace table key entry;
            incr loaded;
            scan (nl + 1)
          | None ->
            if nl + 1 >= len then
              (* invalid final record: torn mid-write, drop it *)
              truncate_at off
            else
              failwith
                (Printf.sprintf
                   "Journal: corrupt record at byte %d of %s (not the \
                    trailing record - refusing to drop completed trials)"
                   off file))
    in
    scan 0;
    (!loaded, !torn)
  end

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    flush oc;
    (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
    close_out_noerr oc

let open_ ?(resume = false) ~dir () =
  Atomic_write.mkdir_p dir;
  let file = Filename.concat dir default_filename in
  let table = Hashtbl.create 256 in
  let loaded, torn =
    if resume then load file table
    else begin
      (if Sys.file_exists file then
         let len =
           let ic = open_in_bin file in
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> in_channel_length ic)
         in
         if len > 0 then
           failwith
             (Printf.sprintf
                "Journal: %s already holds records; pass --resume to \
                 continue it or choose a fresh --journal directory"
                file));
      (0, 0)
    end
  in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 file in
  let t =
    { file; table; oc = Some oc; loaded; appended = 0; hits = 0;
      torn_truncated = torn }
  in
  at_exit (fun () -> close t);
  t

let path t = t.file
let mem t key = Hashtbl.mem t.table key

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    Metrics.incr "journal.hits";
    Some e
  | None -> None

let append t ~key ~status payload =
  (match t.oc with
  | None -> invalid_arg "Journal.append: journal is closed"
  | Some oc ->
    if Hashtbl.mem t.table key then
      invalid_arg (Printf.sprintf "Journal.append: duplicate key %S" key);
    let line = render ~key ~status payload in
    (match Chaos.intercept line with
    | Chaos.Pass -> output_string oc line
    | Chaos.Torn prefix -> output_string oc prefix);
    flush oc;
    (* a pending simulated crash fires here - after the bytes hit the
       OS, before the in-memory publish, exactly like a real crash *)
    Chaos.die ();
    Hashtbl.replace t.table key { status; payload };
    t.appended <- t.appended + 1;
    Metrics.incr "journal.appends");
  ()

let entries t = Hashtbl.length t.table

let stats t =
  {
    loaded = t.loaded;
    appended = t.appended;
    hits = t.hits;
    quarantined =
      Hashtbl.fold
        (fun _ e acc -> if e.status = Quarantined then acc + 1 else acc)
        t.table 0;
    torn_truncated = t.torn_truncated;
  }
