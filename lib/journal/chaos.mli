(** Deterministic failure injection for the journal's own durability
    machinery.

    The chaos plan intercepts journal appends and simulates the two
    crash shapes the journal must survive: a process death immediately
    after a record is made durable ([Crash_after]), and a process death
    mid-write leaving a torn trailing record ([Tear_after]).  CI and the
    test suite use it to prove that an interrupted-then-resumed sweep
    reproduces the uninterrupted sweep's artifacts byte for byte.

    Two delivery modes: [Exit] kills the process with {!Unix._exit}
    (skipping [at_exit], like a real crash - exit code {!crash_exit_code}
    or {!tear_exit_code}), while [Raise] raises {!Injected} so in-process
    tests can catch the "crash" and immediately exercise recovery. *)

type action =
  | Crash_after of int
      (** die right after the [n]-th record (1-based) is fully written
          and flushed *)
  | Tear_after of int
      (** write only a prefix of the [n]-th record, flush, then die -
          the canonical torn-trailing-record crash *)

type mode =
  | Exit  (** [Unix._exit], bypassing [at_exit] finalizers *)
  | Raise  (** raise {!Injected} instead (for in-process tests) *)

type plan = { action : action; mode : mode }

exception Injected of string
(** The simulated crash, in [Raise] mode.  The payload names the action
    (["crash-after=4"], ["tear-after=2"]). *)

val crash_exit_code : int
(** [42] - the exit code of an [Exit]-mode [Crash_after]. *)

val tear_exit_code : int
(** [43] - the exit code of an [Exit]-mode [Tear_after]. *)

val set_plan : plan option -> unit
(** Install (or clear) the process-global plan and reset the append
    counter. *)

val plan_of_string : string -> (plan, string) result
(** Parse ["crash-after=N"] / ["tear-after=N"] (always [Exit] mode, the
    CLI delivery). *)

val install_from_env : unit -> unit
(** Read [QAOA_CHAOS] and {!set_plan} accordingly; no-op when unset.
    @raise Failure on a malformed value - a chaos run that silently
    does nothing would defeat its purpose. *)

type verdict =
  | Pass  (** write the record normally *)
  | Torn of string  (** write this prefix instead, flush, then die *)

val intercept : string -> verdict
(** Called by the journal with each record's full on-disk line.  Counts
    appends against the plan; on the fatal append either returns
    [Torn prefix] (the journal writes the prefix, flushes, then calls
    {!die}) or returns [Pass] and arranges for {!die} to fire after the
    write (crash mode kills {e after} durability, tear mode {e during}).
    Without a plan this is [Pass] at the cost of one branch. *)

val die : unit -> unit
(** Execute a pending simulated death, if {!intercept} armed one:
    [Unix._exit] or raise {!Injected} per the plan's mode.  No-op
    otherwise.  The journal calls it right after flushing the record
    bytes returned by {!intercept}. *)
