let resume_hint_of_argv () =
  let argv = Array.to_list Sys.argv in
  let argv = if List.mem "--resume" argv then argv else argv @ [ "--resume" ] in
  String.concat " " argv

let install_drain ?(fan_out = fun () -> []) () =
  let requested = Atomic.make 0 in
  List.iter
    (fun (signal, code) ->
      try
        Sys.set_signal signal
          (Sys.Signal_handle
             (fun received ->
               (* record only; the serving loop polls this flag, stops
                  accepting work, finishes in-flight requests, flushes
                  its journal, then exits with the recorded code *)
               ignore (Atomic.compare_and_set requested 0 code);
               (* fan the same signal out to the child fleet so shards
                  start their own drains concurrently with the parent's
                  wind-down instead of waiting to be told one by one *)
               List.iter
                 (fun pid ->
                   try Unix.kill pid received with Unix.Unix_error _ -> ())
                 (fan_out ())))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigint, 130); (Sys.sigterm, 143) ];
  requested

let install ~resume_hint =
  let handle code _ =
    (* flushed-per-record journal + at_exit finalizers make a plain
       [exit] sufficient: no record can be half-written from here *)
    Printf.eprintf "\ninterrupted; resume with: %s\n%!" resume_hint;
    exit code
  in
  List.iter
    (fun (signal, code) ->
      try Sys.set_signal signal (Sys.Signal_handle (handle code))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigint, 130); (Sys.sigterm, 143) ]
