let resume_hint_of_argv () =
  let argv = Array.to_list Sys.argv in
  let argv = if List.mem "--resume" argv then argv else argv @ [ "--resume" ] in
  String.concat " " argv

let install_drain () =
  let requested = Atomic.make 0 in
  List.iter
    (fun (signal, code) ->
      try
        Sys.set_signal signal
          (Sys.Signal_handle
             (fun _ ->
               (* record only; the serving loop polls this flag, stops
                  accepting work, finishes in-flight requests, flushes
                  its journal, then exits with the recorded code *)
               ignore (Atomic.compare_and_set requested 0 code)))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigint, 130); (Sys.sigterm, 143) ];
  requested

let install ~resume_hint =
  let handle code _ =
    (* flushed-per-record journal + at_exit finalizers make a plain
       [exit] sufficient: no record can be half-written from here *)
    Printf.eprintf "\ninterrupted; resume with: %s\n%!" resume_hint;
    exit code
  in
  List.iter
    (fun (signal, code) ->
      try Sys.set_signal signal (Sys.Signal_handle (handle code))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigint, 130); (Sys.sigterm, 143) ]
