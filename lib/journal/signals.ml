let resume_hint_of_argv () =
  let argv = Array.to_list Sys.argv in
  let argv = if List.mem "--resume" argv then argv else argv @ [ "--resume" ] in
  String.concat " " argv

let install ~resume_hint =
  let handle code _ =
    (* flushed-per-record journal + at_exit finalizers make a plain
       [exit] sufficient: no record can be half-written from here *)
    Printf.eprintf "\ninterrupted; resume with: %s\n%!" resume_hint;
    exit code
  in
  List.iter
    (fun (signal, code) ->
      try Sys.set_signal signal (Sys.Signal_handle (handle code))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigint, 130); (Sys.sigterm, 143) ]
