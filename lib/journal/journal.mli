(** Durable, resumable trial journal: one JSONL file recording the
    outcome of every completed trial of a sweep.

    Each trial of a trial-structured workload (a figure regeneration, a
    fault sweep, a benchmark campaign) has a deterministic key -
    conventionally ["experiment/strategy/instance/seed"] - and appends
    exactly one record when it finishes, either successfully ([Done]
    with the trial's payload) or permanently failed after supervision
    gave up ([Quarantined] with the failure description).  Records are
    flushed as they are written, so after a crash, SIGKILL or power
    loss the journal holds every trial that completed before the
    failure, plus at most one torn trailing record.

    {b On-disk format.}  One record per line:
    [<crc32-hex> <compact JSON>\n] where the checksum covers the JSON
    text and the JSON object is
    [{"key": k, "status": "ok" | "quarantined", "payload": p}].
    On reload every line is checksum- and shape-verified.  A torn or
    corrupt {e trailing} record (the signature of a crash mid-append) is
    truncated away and counted in {!stats}; corruption {e before} the
    final record means the storage itself is damaged and raises
    [Failure] rather than silently dropping completed work.

    Keys are unique: appending a key that is already present raises
    [Invalid_argument], and a journal whose file contains duplicates is
    rejected on load. *)

type status =
  | Done  (** the trial completed; the payload is its result *)
  | Quarantined
      (** supervision exhausted its retries; the payload describes the
          failure.  Resumed sweeps skip quarantined trials instead of
          re-running them. *)

type entry = { status : status; payload : Qaoa_obs.Json.t }

type stats = {
  loaded : int;  (** records read back at [open_] *)
  appended : int;  (** records written by this process *)
  hits : int;  (** successful {!find} lookups (cached trials) *)
  quarantined : int;  (** quarantined records, loaded + appended *)
  torn_truncated : int;  (** torn trailing records dropped at [open_] *)
}

type t

val default_filename : string
(** ["journal.jsonl"], the file {!open_} uses inside its directory. *)

val open_ : ?resume:bool -> dir:string -> unit -> t
(** Open (creating [dir] recursively if needed) the journal at
    [dir/journal.jsonl].

    With [resume = false] (the default) the journal must be empty or
    absent: refusing to silently extend an existing journal forces the
    caller to opt into resumption explicitly ([--resume]) or pick a
    fresh directory.  With [resume = true] existing records are loaded,
    a torn trailing record is truncated away, and subsequent appends
    continue the file.

    The handle is registered with [at_exit], so a normal or [exit]-ed
    process finalizes the journal even if the caller forgets to
    {!close}.
    @raise Failure on mid-file corruption, duplicate keys, or a
    non-empty journal without [resume]. *)

val path : t -> string
(** The journal file's path (inside the directory given to {!open_}). *)

val find : t -> string -> entry option
(** Look a trial up by key; [Some] means the trial already ran (this
    run or a previous one) and counts as a cache hit in {!stats}. *)

val mem : t -> string -> bool
(** {!find} without the hit accounting. *)

val append : t -> key:string -> status:status -> Qaoa_obs.Json.t -> unit
(** Record a finished trial: write the checksummed record, flush it,
    then publish it to {!find}.  The installed {!Chaos} plan (if any)
    intercepts the write - this is the injection point the durability
    tests drive.
    @raise Invalid_argument if [key] was already recorded, or if the
    journal is closed. *)

val entries : t -> int
(** Number of recorded trials visible to {!find}. *)

val stats : t -> stats

val close : t -> unit
(** Flush, fsync and close the file.  Idempotent. *)
