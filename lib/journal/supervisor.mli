(** Per-trial supervision: cache, deadline, bounded reseeded retries,
    quarantine.

    A sweep runs thousands of independent trials; one pathological
    instance must cost at most its own budget, never the campaign.  The
    supervisor wraps a single trial with

    - {b journal lookup}: a trial whose key is already recorded returns
      its journaled payload without executing (the resume path), and a
      journaled quarantine is honoured without re-running the failure;
    - {b one wall-clock deadline} spanning all attempts (reusing
      {!Qaoa_obs.Deadline}; the thunk receives it to thread into
      cooperative cancellation points such as
      [Compile.options.deadline_s]);
    - {b bounded retries} with deterministic reseeding: the thunk gets
      the attempt index and derives its seed as
      [seed + reseed_stride * attempt], matching the
      [Compile.compile_with_fallback] convention;
    - {b quarantine}: after [tries] failed attempts the trial is
      recorded as a structured failure and the sweep moves on.

    Trials must be deterministic functions of their key (and attempt
    index) for resumed sweeps to reproduce uninterrupted ones. *)

type failure = {
  f_key : string;
  f_attempts : int;  (** attempts actually made *)
  f_errors : string list;  (** one rendering per attempt, in order *)
}

type 'a outcome =
  | Completed of 'a
  | Quarantined of failure
      (** permanently failed - aggregate layers drop the trial and
          count it, mirroring how fault sweeps treat exhausted chains *)

val reseed_stride : int
(** [7919] - attempt [k] runs under [seed + reseed_stride * k], the
    same prime stride [Compile.compile_with_fallback] uses, so attempt
    0 is always the unperturbed seed. *)

val failure_to_json : failure -> Qaoa_obs.Json.t
val failure_of_json : string -> Qaoa_obs.Json.t -> failure

val trial :
  ?journal:Journal.t ->
  ?deadline_s:float ->
  ?tries:int ->
  key:string ->
  encode:('a -> Qaoa_obs.Json.t) ->
  decode:(Qaoa_obs.Json.t -> 'a) ->
  (attempt:int -> deadline:Qaoa_obs.Deadline.t option -> 'a) ->
  'a outcome
(** Run one supervised trial.

    Without a journal the trial still gets the deadline/retry/quarantine
    treatment, only nothing is persisted.  With one, a completed trial
    appends a [Done] record and a quarantined trial a [Quarantined]
    record, and the value returned for a fresh completion is
    [decode (encode v)] - the exact value a resumed run will read back,
    which is what makes interrupted-then-resumed sweeps byte-identical
    to uninterrupted ones.

    [tries] defaults to 1 (no retry); [deadline_s] to unbounded.  A
    {!Qaoa_obs.Deadline.Exceeded} escaping an attempt consumes the whole
    trial budget, so it quarantines immediately instead of burning
    retries on an already-spent clock.
    @raise Invalid_argument if [tries < 1] or [deadline_s <= 0]. *)
