(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over strings.

    Used as the per-record checksum of the {!Journal} JSONL format: cheap
    enough to compute on every append, strong enough to tell a torn or
    bit-flipped record from a well-formed one with overwhelming
    probability.  Self-contained so the journal needs no external
    dependency. *)

val digest : string -> int32
(** CRC-32 of the whole string ([digest "123456789" = 0xCBF43926l]). *)

val to_hex : int32 -> string
(** Fixed-width lowercase hex ([8] characters), the journal's on-disk
    rendering. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex characters. *)
