(** SIGINT/SIGTERM finalization for journaled sweeps.

    A journaled sweep is safe to kill at any instant - records are
    flushed as trials complete - but a plain default-action SIGINT
    would skip [at_exit], losing the trace exporter's flush and the
    journal's final fsync, and the operator would have to remember the
    resume incantation.  Installing the handler turns both signals into
    an orderly [exit 130/143] (so every [at_exit] finalizer runs,
    including {!Journal.open_}'s close) after printing the exact
    command that resumes the sweep. *)

val resume_hint_of_argv : unit -> string
(** The current command line ([Sys.argv]) with [--resume] appended
    unless already present - a copy-pasteable resume command. *)

val install_drain : ?fan_out:(unit -> int list) -> unit -> int Atomic.t
(** Graceful-drain variant for long-lived servers: handlers for SIGINT
    and SIGTERM that {e record} the conventional exit code (130/143,
    first signal wins) in the returned atomic instead of exiting.  The
    serving loop polls the flag ([0] = no signal yet), stops accepting
    new work, finishes in-flight requests, flushes its cache journal,
    and exits with the recorded code itself.  Platforms without a
    signal are skipped silently.

    [fan_out], when given, is called from the handler and the {e same}
    signal is forwarded to every returned pid (errors ignored - a pid
    may already be gone).  The shard supervisor passes its live child
    list so the fleet starts draining in parallel with the parent's
    own wind-down; forwarding the received signal (not a fixed one)
    preserves the 130-vs-143 distinction in the children's exit
    codes. *)

val install : resume_hint:string -> unit
(** Install handlers for SIGINT and SIGTERM that print
    ["interrupted; resume with: <hint>"] to stderr and [exit]
    ([130] for SIGINT, [143] for SIGTERM, the conventional
    [128 + signal] codes).  Platforms without a signal (e.g. SIGTERM
    on Windows) are skipped silently. *)
