(** Crash-safe file replacement: write to a temporary file in the target
    directory, flush + fsync, then [rename] over the destination.

    POSIX renames within one filesystem are atomic, so a reader (or a
    crash) sees either the previous complete file or the new complete
    file - never a prefix.  Every artifact the sweep layer emits
    ([bench_results/*.csv], [BENCH_results.json], [report.md]) goes
    through here so an interrupted run cannot leave a torn artifact
    behind. *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents ([mkdir -p]).  Succeeds
    silently when the directory already exists.
    @raise Sys_error when a path component exists but is not a
    directory, or creation fails for another reason. *)

val write : path:string -> (out_channel -> unit) -> unit
(** [write ~path f] runs [f] on a channel to a fresh temporary file
    next to [path] (same directory, [".tmp-<pid>-<n>"] suffix), fsyncs,
    and atomically renames it to [path].  The temporary file is removed
    if [f] raises; the destination is untouched in that case. *)

val write_string : path:string -> string -> unit
(** [write ~path (fun oc -> output_string oc s)]. *)
