type action = Crash_after of int | Tear_after of int
type mode = Exit | Raise
type plan = { action : action; mode : mode }

exception Injected of string

let crash_exit_code = 42
let tear_exit_code = 43

let action_to_string = function
  | Crash_after n -> Printf.sprintf "crash-after=%d" n
  | Tear_after n -> Printf.sprintf "tear-after=%d" n

let state : plan option ref = ref None
let appends = ref 0

(* armed by [intercept] on the fatal append, fired by [die] once the
   journal has pushed the (possibly torn) bytes to disk *)
let pending : (mode * int * string) option ref = ref None

let set_plan p =
  state := p;
  appends := 0;
  pending := None

let plan_of_string s =
  let parse prefix mk =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match int_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some n when n >= 1 -> Some (Ok { action = mk n; mode = Exit })
      | _ -> Some (Error (Printf.sprintf "QAOA_CHAOS: bad count in %S" s))
    else None
  in
  match parse "crash-after=" (fun n -> Crash_after n) with
  | Some r -> r
  | None -> (
    match parse "tear-after=" (fun n -> Tear_after n) with
    | Some r -> r
    | None ->
      Error
        (Printf.sprintf
           "QAOA_CHAOS: expected crash-after=N or tear-after=N, got %S" s))

let install_from_env () =
  match Sys.getenv_opt "QAOA_CHAOS" with
  | None | Some "" -> ()
  | Some s -> (
    match plan_of_string s with
    | Ok p -> set_plan (Some p)
    | Error msg -> failwith msg)

type verdict = Pass | Torn of string

let intercept line =
  match !state with
  | None -> Pass
  | Some { action; mode } -> (
    incr appends;
    match action with
    | Crash_after n when !appends = n ->
      pending := Some (mode, crash_exit_code, action_to_string action);
      Pass
    | Tear_after n when !appends = n ->
      pending := Some (mode, tear_exit_code, action_to_string action);
      (* chop inside the record body so both the checksum and the JSON
         are violated - the worst-case torn shape *)
      Torn (String.sub line 0 (max 1 (String.length line / 2)))
    | Crash_after _ | Tear_after _ -> Pass)

let die () =
  match !pending with
  | None -> ()
  | Some (mode, code, what) -> (
    pending := None;
    state := None;
    match mode with
    | Exit ->
      Printf.eprintf "chaos: simulated crash (%s), exiting %d\n%!" what code;
      Unix._exit code
    | Raise -> raise (Injected what))
