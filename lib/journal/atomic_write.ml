let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (* tolerate a concurrent creator between the check and the mkdir *)
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": exists but is not a directory"))

(* distinct temp names per process and per call, so concurrent writers
   to the same destination never share a scratch file *)
let tmp_counter = ref 0

let write ~path f =
  incr tmp_counter;
  let tmp =
    Printf.sprintf "%s.tmp-%d-%d" path (Unix.getpid ()) !tmp_counter
  in
  let oc = open_out tmp in
  (try
     f oc;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_string ~path s = write ~path (fun oc -> output_string oc s)
