(** Conservative repairs applied before metrics that need total data.

    Fault injection leaves calibrations covering only a subset of the
    couplings.  Compilation tolerates that (the router scores missing
    rates pessimistically), but the success-probability metric
    ({!Qaoa_hardware.Calibration.cnot_error} per gate) needs a rate for
    every coupling the compiled circuit touches.  Rather than teaching
    the metric to guess, the experiment completes the snapshot
    explicitly - with the {e worst} recorded rate, so a degraded device
    is never scored better than the data supports. *)

val complete_calibration : Qaoa_hardware.Device.t -> Qaoa_hardware.Device.t
(** Fill every coupling edge the calibration does not record with the
    worst recorded CNOT error (or the 0.5 clamp ceiling when nothing is
    recorded).  A device without any calibration, or whose calibration
    is already total, is returned unchanged. *)

val missing_couplings : Qaoa_hardware.Device.t -> (int * int) list
(** Coupling edges the calibration records no rate for ([[]] when the
    device has no calibration at all). *)
