type scenario = { label : string; faults : Fault.t list }

let scenario ?label faults =
  { label = Option.value ~default:(Fault.describe faults) label; faults }

let baseline = scenario []

let dead_qubit_sweep ?(counts = [ 1; 2; 3 ]) () =
  List.map (fun k -> scenario [ Fault.Random_dead_qubits k ]) counts

let severed_coupling_sweep ?(counts = [ 1; 2; 4 ]) () =
  List.map (fun k -> scenario [ Fault.Random_severed_couplings k ]) counts

let drift_sweep ?(sigmas = [ 0.1; 0.25; 0.5 ]) () =
  List.map (fun sigma -> scenario [ Fault.Calibration_drift { sigma } ]) sigmas

let drop_sweep ?(fractions = [ 0.1; 0.2; 0.5 ]) () =
  List.map
    (fun fraction -> scenario [ Fault.Dropped_calibration { fraction } ])
    fractions

let cross left right =
  List.concat_map
    (fun l ->
      List.map
        (fun r ->
          { label = l.label ^ "+" ^ r.label; faults = l.faults @ r.faults })
        right)
    left

let default =
  (baseline :: dead_qubit_sweep ())
  @ severed_coupling_sweep () @ drift_sweep () @ drop_sweep ()
  @ [
      scenario
        [ Fault.Random_dead_qubits 2; Fault.Dropped_calibration { fraction = 0.2 } ];
    ]
