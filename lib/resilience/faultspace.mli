(** Named fault scenarios and sweep generation.

    A sweep is a list of scenarios, each a label plus the fault list to
    inject; the resilience experiment recompiles every workload under
    every scenario and reports degradation relative to {!baseline}. *)

type scenario = {
  label : string;  (** stable row label, e.g. ["dead*2+drop(20%)"] *)
  faults : Fault.t list;
}

val scenario : ?label:string -> Fault.t list -> scenario
(** [label] defaults to {!Fault.describe} of the faults. *)

val baseline : scenario
(** The healthy device: no faults, labelled ["healthy"]. *)

val dead_qubit_sweep : ?counts:int list -> unit -> scenario list
(** One scenario per count (default [[1; 2; 3]]). *)

val severed_coupling_sweep : ?counts:int list -> unit -> scenario list
(** One scenario per count (default [[1; 2; 4]]). *)

val drift_sweep : ?sigmas:float list -> unit -> scenario list
(** One scenario per drift sigma (default [[0.1; 0.25; 0.5]]). *)

val drop_sweep : ?fractions:float list -> unit -> scenario list
(** One scenario per dropped-calibration fraction
    (default [[0.1; 0.2; 0.5]]). *)

val cross : scenario list -> scenario list -> scenario list
(** Cartesian product, concatenating fault lists and joining labels
    with ["+"]. *)

val default : scenario list
(** {!baseline}, every per-axis sweep at defaults, plus the compound
    stress scenario [dead*2+drop(20%)] the acceptance criterion names
    (two random dead qubits and 20% of calibration entries missing). *)
