module Graph = Qaoa_graph.Graph
module Device = Qaoa_hardware.Device
module Calibration = Qaoa_hardware.Calibration
module Rng = Qaoa_util.Rng

type t =
  | Dead_qubit of int
  | Random_dead_qubits of int
  | Severed_coupling of int * int
  | Random_severed_couplings of int
  | Calibration_drift of { sigma : float }
  | Dropped_calibration of { fraction : float }

let label = function
  | Dead_qubit q -> Printf.sprintf "dead(%d)" q
  | Random_dead_qubits k -> Printf.sprintf "dead*%d" k
  | Severed_coupling (u, v) -> Printf.sprintf "sever(%d-%d)" (min u v) (max u v)
  | Random_severed_couplings k -> Printf.sprintf "sever*%d" k
  | Calibration_drift { sigma } -> Printf.sprintf "drift(%g)" sigma
  | Dropped_calibration { fraction } ->
    Printf.sprintf "drop(%g%%)" (100.0 *. fraction)

(* Same clamp range as Calibration.random: rates below 1e-4 are better
   than any published hardware, above 0.5 the gate is worse than a coin
   flip. *)
let clamp_rate e = Float.min 0.5 (Float.max 1e-4 e)

let map_calibration f device =
  { device with Device.calibration = Option.map f device.Device.calibration }

let kill_qubit device q =
  if q < 0 || q >= Device.num_qubits device then
    invalid_arg (Printf.sprintf "Fault: dead qubit %d out of range" q);
  let coupling =
    List.fold_left
      (fun g v -> Graph.remove_edge g q v)
      device.Device.coupling
      (Graph.neighbors device.Device.coupling q)
  in
  map_calibration
    (Calibration.filter_edges (fun u v _ -> u <> q && v <> q))
    { device with Device.coupling }

let sever device u v =
  if not (Graph.has_edge device.Device.coupling u v) then
    invalid_arg
      (Printf.sprintf "Fault: coupling (%d, %d) does not exist on %s" u v
         device.Device.name);
  let ku = min u v and kv = max u v in
  map_calibration
    (Calibration.filter_edges (fun a b _ -> not (a = ku && b = kv)))
    { device with Device.coupling = Graph.remove_edge device.Device.coupling u v }

let apply ~seed fault device =
  let rng = Rng.create seed in
  match fault with
  | Dead_qubit q -> kill_qubit device q
  | Random_dead_qubits k ->
    let n = Device.num_qubits device in
    if k < 0 || k > n then
      invalid_arg (Printf.sprintf "Fault: cannot retire %d of %d qubits" k n);
    List.fold_left kill_qubit device (Rng.sample_without_replacement rng k n)
  | Severed_coupling (u, v) -> sever device u v
  | Random_severed_couplings k ->
    let edges = Graph.edges device.Device.coupling in
    let m = List.length edges in
    if k < 0 || k > m then
      invalid_arg
        (Printf.sprintf "Fault: cannot sever %d of %d couplings" k m);
    List.fold_left
      (fun dev (u, v) -> sever dev u v)
      device
      (List.filteri (fun i _ -> i < k) (Rng.shuffle_list rng edges))
  | Calibration_drift { sigma } ->
    if not (Float.is_finite sigma) || sigma <= 0.0 then
      invalid_arg "Fault: drift sigma must be positive and finite";
    map_calibration
      (Calibration.map_errors (fun _ _ e ->
           clamp_rate (e *. exp (sigma *. Rng.normal rng ~mu:0.0 ~sigma:1.0))))
      device
  | Dropped_calibration { fraction } ->
    if not (Float.is_finite fraction) || fraction < 0.0 || fraction > 1.0
    then invalid_arg "Fault: drop fraction must lie in [0, 1]";
    map_calibration
      (fun cal ->
        let n = List.length (Calibration.entries cal) in
        if fraction = 0.0 || n = 0 then cal
        else begin
          let k =
            max 1 (int_of_float (Float.round (fraction *. float_of_int n)))
          in
          let doomed = ref [] in
          List.iter
            (fun i -> doomed := i :: !doomed)
            (Rng.sample_without_replacement rng (min k n) n);
          let keep = Array.make n true in
          List.iter (fun i -> keep.(i) <- false) !doomed;
          let i = ref (-1) in
          Calibration.filter_edges
            (fun _ _ _ ->
              incr i;
              keep.(!i))
            cal
        end)
      device

let apply_all ~seed faults device =
  (* Distinct sub-seed per fault position: each list replays
     bit-identically, and two faults in one scenario never share a draw
     stream. *)
  let _, device =
    List.fold_left
      (fun (i, dev) fault -> (i + 1, apply ~seed:(seed + (97 * i)) fault dev))
      (0, device) faults
  in
  device

let describe = function
  | [] -> "healthy"
  | faults -> String.concat "+" (List.map label faults)
