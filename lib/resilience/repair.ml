module Device = Qaoa_hardware.Device
module Calibration = Qaoa_hardware.Calibration

let missing_couplings device =
  match device.Device.calibration with
  | None -> []
  | Some cal ->
    List.filter
      (fun (u, v) -> Calibration.cnot_error_opt cal u v = None)
      (Device.coupling_edges device)

let complete_calibration device =
  match device.Device.calibration with
  | None -> device
  | Some cal -> (
    match missing_couplings device with
    | [] -> device
    | missing ->
      let worst =
        List.fold_left
          (fun acc (_, _, e) -> Float.max acc e)
          0.0 (Calibration.entries cal)
      in
      let worst = if worst > 0.0 then worst else 0.5 in
      let filled =
        Calibration.entries cal
        @ List.map (fun (u, v) -> (u, v, worst)) missing
      in
      Device.with_calibration device
        (Calibration.create
           ~single_qubit_error:(Calibration.single_qubit_error cal)
           ~readout_error:(Calibration.readout_error cal)
           filled))
