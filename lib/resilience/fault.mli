(** Seeded fault injection against {!Qaoa_hardware.Device.t}.

    Real superconducting backends degrade in exactly the ways the paper's
    variation-aware methodologies are motivated by (Sec. II, Fig. 2):
    qubits get retired from the register, couplings fail, calibration
    drifts between snapshots, and calibration entries go missing.  A
    fault takes a healthy device and returns a {e valid but degraded}
    one - the coupling graph keeps its vertex count, the calibration
    (when present) stays within the register - so every downstream
    component sees a well-formed input and must cope with the
    degradation semantically rather than crashing on malformed data.

    All randomness flows through an explicit seed, so a fault scenario
    replays bit-identically across runs and machines. *)

type t =
  | Dead_qubit of int
      (** Retire one physical qubit: every incident coupling edge is
          removed and every calibration entry touching it dropped.  The
          vertex itself remains (indices stay stable); mapping
          strategies may still place logicals there, which the fallback
          chain's reseeded retries are expected to survive. *)
  | Random_dead_qubits of int
      (** Retire [k] distinct qubits drawn from the register. *)
  | Severed_coupling of int * int
      (** Remove one coupling edge (and its calibration entry). *)
  | Random_severed_couplings of int
      (** Remove [k] distinct coupling edges drawn uniformly. *)
  | Calibration_drift of { sigma : float }
      (** Multiplicative log-normal walk on every recorded CNOT error:
          [e * exp (sigma * N(0,1))], clamped to [1e-4, 0.5] (the same
          clamp {!Qaoa_hardware.Calibration.random} applies).  Models a
          stale snapshot whose rates no longer match the hardware. *)
  | Dropped_calibration of { fraction : float }
      (** Forget a uniform [fraction] of the recorded calibration
          entries (at least one when [fraction > 0] and any exist) -
          the "incomplete snapshot" scenario.  Couplings remain; only
          their rates vanish. *)

val label : t -> string
(** Compact stable tag, e.g. ["dead(3)"], ["dead*2"], ["sever(0-1)"],
    ["sever*3"], ["drift(0.25)"], ["drop(20%)"] - used in sweep tables
    and CI logs. *)

val apply : seed:int -> t -> Qaoa_hardware.Device.t -> Qaoa_hardware.Device.t
(** Inject one fault.  The result is structurally valid
    ({!Qaoa_hardware.Device.validate} holds if it held on the input) but
    possibly disconnected or partially calibrated.  Calibration-only
    faults (drift, drop) are no-ops on a device without a snapshot.
    @raise Invalid_argument on out-of-range qubits/couplings, a negative
    count, a count exceeding what the device has, a non-positive
    [sigma], or a [fraction] outside [[0, 1]]. *)

val apply_all :
  seed:int -> t list -> Qaoa_hardware.Device.t -> Qaoa_hardware.Device.t
(** Fold {!apply} left-to-right, deriving a distinct sub-seed per fault
    (so reordering independent faults changes the draw streams but each
    list replays deterministically). *)

val describe : t list -> string
(** [label]s joined with ["+"]; ["healthy"] for the empty list. *)
