(* Full QAOA-MaxCut pipeline on a realistic workload: generate a random
   3-regular graph, find optimal p=1 parameters three ways (analytically,
   by grid+Nelder-Mead on the simulator, and cross-check them), compile
   for ibmq_16_melbourne, execute noisily, and report approximation
   ratios and ARG - the full protocol behind the paper's Fig. 11(b).

   Run with:  dune exec examples/maxcut_pipeline.exe *)

module Generators = Qaoa_graph.Generators
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Analytic = Qaoa_core.Analytic
module Optimizer = Qaoa_core.Optimizer
module Compile = Qaoa_core.Compile
module Arg = Qaoa_core.Arg
module Topologies = Qaoa_hardware.Topologies
module Rng = Qaoa_util.Rng

let () =
  let rng = Rng.create 2020 in
  let graph = Generators.random_regular rng ~n:10 ~d:3 in
  let problem = Problem.of_maxcut graph in
  let _, optimum = Problem.brute_force_best problem in
  Printf.printf "instance: 10-node 3-regular MaxCut, optimum cut = %.0f\n\n" optimum;

  (* Parameter setting route 1: the closed-form p=1 expectation. *)
  let analytic_params, analytic_value = Analytic.optimize ~grid:48 graph in
  Printf.printf "analytic optimum:  gamma=%.4f beta=%.4f  <C> = %.4f\n"
    analytic_params.Ansatz.gammas.(0) analytic_params.Ansatz.betas.(0)
    analytic_value;

  (* Route 2: grid + Nelder-Mead against the statevector expectation. *)
  let sim_params, sim_value =
    Optimizer.optimize_p1 ~grid:24 (fun ~gamma ~beta ->
        Ansatz.expectation problem (Ansatz.params_p1 ~gamma ~beta))
  in
  Printf.printf "simulator optimum: gamma=%.4f beta=%.4f  <C> = %.4f\n"
    sim_params.Ansatz.gammas.(0) sim_params.Ansatz.betas.(0) sim_value;
  Printf.printf "(the two routes must agree: |diff| = %.2e)\n\n"
    (Float.abs (analytic_value -. sim_value));

  (* Compile for melbourne and evaluate ARG for three strategies. *)
  let device = Topologies.ibmq_16_melbourne () in
  Printf.printf "compiling for %s and executing with trajectory noise...\n"
    device.Qaoa_hardware.Device.name;
  let t = Qaoa_util.Table.create [ "strategy"; "r_ideal"; "r_hw"; "ARG (%)" ] in
  List.iter
    (fun strategy ->
      let r = Compile.compile ~strategy device problem analytic_params in
      let report =
        Arg.evaluate ~shots:4096 (Rng.create 7) device problem analytic_params r
      in
      Qaoa_util.Table.add_float_row t
        (Compile.strategy_name strategy)
        [ report.Arg.ideal_ratio; report.Arg.hardware_ratio; report.Arg.arg_percent ])
    [ Compile.Qaim; Compile.Ic None; Compile.Vic None ];
  Qaoa_util.Table.print t;
  print_endline "\n(lower ARG = execution closer to the noiseless circuit)"
