(* Executable walkthrough of the paper's worked examples: the Fig. 1
   depth contrast, the Fig. 3 hardware/program profiles and QAIM
   placement, the Fig. 4 instruction-parallelization run, the Fig. 6
   variation-aware distance matrices, and the p=1 parameter landscape
   motivating the whole exercise.

   Run with:  dune exec examples/paper_walkthrough.exe *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Layering = Qaoa_circuit.Layering
module Render = Qaoa_circuit.Render
module Graph = Qaoa_graph.Graph
module Topologies = Qaoa_hardware.Topologies
module Profile = Qaoa_hardware.Profile
module Mapping = Qaoa_backend.Mapping
module Float_matrix = Qaoa_util.Float_matrix
module Problem = Qaoa_core.Problem
module Qaim = Qaoa_core.Qaim
module Ip = Qaoa_core.Ip
module Landscape = Qaoa_core.Landscape
module Rng = Qaoa_util.Rng

let section title = Printf.printf "\n===== %s =====\n" title

let fig1 () =
  section "Fig. 1: gate order decides depth (K4 MaxCut, p=1)";
  let build order =
    Circuit.of_gates 4
      (List.init 4 (fun q -> Gate.H q)
      @ List.map (fun (a, b) -> Gate.Cphase (a, b, 0.7)) order
      @ List.init 4 (fun q -> Gate.Rx (q, 0.8))
      @ List.init 4 (fun q -> Gate.Measure q))
  in
  let circ1 = build [ (0, 1); (1, 2); (0, 2); (2, 3); (0, 3); (1, 3) ] in
  let circ2 = build [ (0, 1); (2, 3); (0, 2); (1, 3); (0, 3); (1, 2) ] in
  Printf.printf "random order  (circ-1): depth %d (paper: 9 time steps)\n"
    (Layering.depth circ1);
  Printf.printf "smart order   (circ-2): depth %d (paper: 6 time steps)\n\n"
    (Layering.depth circ2);
  print_string (Render.to_string circ2)

let fig3 () =
  section "Fig. 3: QAIM profiles and placement on ibmq_20_tokyo";
  let device = Topologies.ibmq_20_tokyo () in
  let profile = Profile.connectivity_profile device in
  Printf.printf "connectivity strengths (Fig. 3(b)):\n ";
  Array.iteri (fun q s -> Printf.printf " q%d:%d" q s) profile;
  print_newline ();
  Printf.printf "paper's callouts: strength(q0) = %d (=7), peak = q7/q12 at %d (=18)\n"
    profile.(0) profile.(7);
  (* the toy program of Fig. 3(c)/Fig. 5 *)
  let problem =
    Problem.of_maxcut
      (Graph.of_edges 5
         [ (0, 1); (0, 2); (0, 3); (0, 4); (1, 2); (1, 4); (3, 4) ])
  in
  Printf.printf "program profile (CPHASEs per qubit): ";
  Array.iteri (fun q c -> Printf.printf " q%d:%d" q c) (Problem.ops_per_qubit problem);
  print_newline ();
  let mapping = Qaim.initial_mapping (Rng.create 1) device problem in
  Printf.printf "QAIM placement:";
  List.iter (fun (l, p) -> Printf.printf " q%d->%d" l p) (Mapping.to_alist mapping);
  Printf.printf "\n(the heaviest qubit q0 lands on a strength-18 qubit: %d)\n"
    (Mapping.phys mapping 0)

let fig4 () =
  section "Fig. 4: instruction parallelization (bin packing)";
  (* the paper's input {(1,5), (2,3), (1,4), (2,4)}, 0-indexed *)
  let problem =
    Problem.of_maxcut (Graph.of_edges 5 [ (0, 4); (1, 2); (0, 3); (1, 3) ])
  in
  Printf.printf "MOQ (minimum layers) = %d (paper: 2)\n" (Ip.minimum_layers problem);
  let layers = Ip.pack_layers (Rng.create 2) problem in
  List.iteri
    (fun i layer ->
      Printf.printf "L%d:" (i + 1);
      List.iter (fun (a, b) -> Printf.printf " (%d,%d)" a b) layer;
      print_newline ())
    layers

let fig6 () =
  section "Fig. 6: variation-aware distances on the hypothetical 6-qubit machine";
  let device = Topologies.hypothetical_6q () in
  let hop = Profile.hop_distances device in
  let weighted = Profile.weighted_distances device in
  Printf.printf "          hop   weighted (paper Fig. 6(c)/(d))\n";
  List.iter
    (fun (u, v) ->
      Printf.printf "d(%d,%d):   %3.0f   %6.2f\n" u v
        (Float_matrix.get hop u v)
        (Float_matrix.get weighted u v))
    [ (0, 1); (0, 5); (0, 3); (1, 4); (2, 5) ];
  Printf.printf
    "variation-aware layer formation prefers Op1 = (0,1) [1.11] over Op2 = (0,5) [1.22]\n"

let landscape () =
  section "p=1 landscape of a 10-node 3-regular MaxCut (gamma ->, beta ^)";
  let g = Qaoa_graph.Generators.random_regular (Rng.create 7) ~n:10 ~d:3 in
  let t = Landscape.grid ~gamma_points:48 ~beta_points:16 (Problem.of_maxcut g) in
  print_string (Landscape.ascii t);
  let (gamma, beta), v = Landscape.best t in
  Printf.printf "grid optimum: <C> = %.3f at gamma = %.3f, beta = %.3f\n" v gamma beta

let () =
  fig1 ();
  fig3 ();
  fig4 ();
  fig6 ();
  landscape ()
