(* Classical-baseline context for QAOA: on a batch of MaxCut instances,
   compare the p=1 QAOA approximation ratio (noiseless and under
   melbourne's noise, with and without readout mitigation) against
   uniform random sampling, greedy local search and simulated annealing.

   Run with:  dune exec examples/classical_vs_quantum.exe *)

module Generators = Qaoa_graph.Generators
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Analytic = Qaoa_core.Analytic
module Classical = Qaoa_core.Classical
module Compile = Qaoa_core.Compile
module Arg = Qaoa_core.Arg
module Topologies = Qaoa_hardware.Topologies
module Rng = Qaoa_util.Rng
module Stats = Qaoa_util.Stats
module Table = Qaoa_util.Table

let () =
  let device = Topologies.ibmq_16_melbourne () in
  let rng = Rng.create 99 in
  let instances = 6 in
  let acc = Hashtbl.create 8 in
  let record k v =
    Hashtbl.replace acc k (v :: Option.value ~default:[] (Hashtbl.find_opt acc k))
  in
  Printf.printf
    "comparing solution quality on %d random 10-node 3-regular MaxCut instances\n"
    instances;
  for seed = 0 to instances - 1 do
    let g = Generators.random_regular (Rng.create seed) ~n:10 ~d:3 in
    let problem = Problem.of_maxcut g in
    let _, optimum = Problem.brute_force_best problem in
    let ratio c = c /. optimum in

    (* classical baselines *)
    let _, rand = Classical.random_sampling rng ~samples:256 problem in
    let _, ls = Classical.local_search rng problem in
    let _, sa = Classical.simulated_annealing rng problem in
    record "random best-of-256" (ratio rand);
    record "local-search" (ratio ls);
    record "annealing" (ratio sa);

    (* QAOA p=1: expectation ratio (noiseless) and noisy-execution mean *)
    let params, expectation = Analytic.optimize ~grid:32 g in
    record "qaoa p=1 <C>/C*" (expectation /. optimum);
    let compiled =
      Compile.compile ~strategy:(Compile.Vic None) device problem params
    in
    let noisy = Arg.evaluate ~shots:2048 rng device problem params compiled in
    record "qaoa p=1 noisy" noisy.Arg.hardware_ratio;
    let mitigated =
      Arg.evaluate ~shots:2048 ~mitigate_readout:true (Rng.create seed) device
        problem params compiled
    in
    record "qaoa p=1 mitigated" mitigated.Arg.hardware_ratio
  done;
  let t = Table.create [ "method"; "mean approx. ratio" ] in
  List.iter
    (fun key ->
      Table.add_float_row t key [ Stats.mean (Hashtbl.find acc key) ])
    [
      "random best-of-256"; "qaoa p=1 noisy"; "qaoa p=1 mitigated"; "qaoa p=1 <C>/C*";
      "local-search"; "annealing";
    ];
  Table.print t;
  print_endline
    "\n(mind the metrics: the classical rows are best-of-run while the QAOA\n\
     rows are sample means; raising p lifts the mean - which is why\n\
     compiled-circuit quality matters so much)"
