(* Variation-aware compilation walkthrough: shows how the Fig. 10(a)
   calibration snapshot of ibmq_16_melbourne changes the distance
   geometry (Fig. 6), and how VIC uses it to compile circuits with a
   higher success probability than IC.

   Run with:  dune exec examples/variation_aware.exe *)

module Generators = Qaoa_graph.Generators
module Problem = Qaoa_core.Problem
module Compile = Qaoa_core.Compile
module Topologies = Qaoa_hardware.Topologies
module Device = Qaoa_hardware.Device
module Calibration = Qaoa_hardware.Calibration
module Profile = Qaoa_hardware.Profile
module Float_matrix = Qaoa_util.Float_matrix
module Rng = Qaoa_util.Rng
module Table = Qaoa_util.Table

let () =
  let device = Topologies.ibmq_16_melbourne () in
  let cal = Device.calibration_exn device in
  Printf.printf "device: %s with the 4/8/2020 CNOT calibration (Fig. 10(a))\n\n"
    device.Device.name;

  (* The worst coupling dominates unreliable paths. *)
  let (wu, wv), we = Calibration.worst_edge cal in
  Printf.printf "worst coupling: (%d,%d) with CNOT error %.3f => CPHASE success %.3f\n"
    wu wv we (Calibration.cphase_success cal wu wv);

  (* Hop vs reliability-weighted distances (the Fig. 6(c)/(d) contrast). *)
  let hop = Profile.hop_distances device in
  let weighted = Profile.weighted_distances device in
  Printf.printf "\ndistance (0 -> 7): %g hops, %.2f reliability-weighted\n"
    (Float_matrix.get hop 0 7)
    (Float_matrix.get weighted 0 7);
  Printf.printf "distance (3 -> 4): %g hop,  %.2f reliability-weighted (bad edge!)\n\n"
    (Float_matrix.get hop 3 4)
    (Float_matrix.get weighted 3 4);

  (* Compile a batch of instances with IC and VIC and compare success
     probabilities (the Fig. 10 experiment in miniature). *)
  let params = Qaoa_core.Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  let rng = Rng.create 42 in
  let t =
    Table.create [ "instance"; "IC success"; "VIC success"; "VIC/IC" ]
  in
  let ratios = ref [] in
  for i = 1 to 8 do
    let g = Generators.erdos_renyi rng ~n:13 ~p:0.5 in
    if Qaoa_graph.Graph.num_edges g > 0 then begin
      let problem = Problem.of_maxcut g in
      let options = { Compile.default_options with seed = 100 + i } in
      let ic = Compile.compile ~options ~strategy:(Compile.Ic None) device problem params in
      let vic = Compile.compile ~options ~strategy:(Compile.Vic None) device problem params in
      let s_ic = Compile.success_probability device ic in
      let s_vic = Compile.success_probability device vic in
      ratios := (s_vic /. s_ic) :: !ratios;
      Table.add_row t
        [
          Printf.sprintf "ER(0.5) #%d" i;
          Printf.sprintf "%.2e" s_ic;
          Printf.sprintf "%.2e" s_vic;
          Printf.sprintf "%.2f" (s_vic /. s_ic);
        ]
    end
  done;
  Table.print t;
  Printf.printf "\nmean VIC/IC success ratio: %.2f (above 1.0 = VIC wins)\n"
    (Qaoa_util.Stats.mean !ratios);

  (* Where does the error actually go?  Break one compiled circuit down
     by gate kind and coupling. *)
  let problem =
    Qaoa_core.Problem.of_maxcut (Generators.erdos_renyi (Rng.create 5) ~n:12 ~p:0.4)
  in
  let r =
    Compile.compile ~strategy:(Compile.Ic None) device problem
      (Qaoa_core.Ansatz.params_p1 ~gamma:0.7 ~beta:0.4)
  in
  let budget = Qaoa_core.Error_budget.analyze cal r.Compile.circuit in
  print_endline "\nerror budget of one IC-compiled 12-node instance:";
  Format.printf "%a" Qaoa_core.Error_budget.pp budget
