examples/beyond_maxcut.mli:
