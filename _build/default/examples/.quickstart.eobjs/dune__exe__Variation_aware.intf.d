examples/variation_aware.mli:
