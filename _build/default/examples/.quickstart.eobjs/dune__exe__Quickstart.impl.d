examples/quickstart.ml: List Printf Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_util
