examples/beyond_maxcut.ml: Array Float List Printf Qaoa_circuit Qaoa_core Qaoa_hardware Qaoa_sim Qaoa_util String
