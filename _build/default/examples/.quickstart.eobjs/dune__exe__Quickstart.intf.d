examples/quickstart.mli:
