examples/maxcut_pipeline.ml: Array Float List Printf Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_util
