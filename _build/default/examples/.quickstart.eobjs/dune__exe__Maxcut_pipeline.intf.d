examples/maxcut_pipeline.mli:
