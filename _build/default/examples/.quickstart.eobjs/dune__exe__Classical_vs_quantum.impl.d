examples/classical_vs_quantum.ml: Hashtbl List Option Printf Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_util
