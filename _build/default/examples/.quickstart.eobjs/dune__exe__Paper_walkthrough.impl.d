examples/paper_walkthrough.ml: Array List Printf Qaoa_backend Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_util
