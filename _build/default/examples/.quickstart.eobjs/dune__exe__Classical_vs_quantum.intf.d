examples/classical_vs_quantum.mli:
