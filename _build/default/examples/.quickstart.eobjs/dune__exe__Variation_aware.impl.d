examples/variation_aware.ml: Format Printf Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_util
