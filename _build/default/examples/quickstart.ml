(* Quickstart: compile the paper's running example - the MaxCut QAOA
   circuit of a 4-node 3-regular graph (Fig. 1) - with every strategy,
   and inspect the resulting circuit quality.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Qaoa_graph.Graph
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Compile = Qaoa_core.Compile
module Metrics = Qaoa_circuit.Metrics
module Topologies = Qaoa_hardware.Topologies
module Table = Qaoa_util.Table

let () =
  (* The 4-node 3-regular problem graph of Fig. 1(a) is the complete
     graph K4: six edges, six commuting CPHASE gates in the cost layer. *)
  let graph = Qaoa_graph.Generators.complete 4 in
  let problem = Problem.of_maxcut graph in
  Printf.printf "problem: MaxCut on K4 (%d nodes, %d edges)\n"
    (Graph.num_vertices graph) (Graph.num_edges graph);

  (* Fixed p=1 angles; the compiler only sees the circuit structure. *)
  let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  let logical = Ansatz.circuit problem params in
  Printf.printf "logical ansatz: %d gates, depth %d (with measurements)\n\n"
    (Qaoa_circuit.Circuit.length logical)
    (Qaoa_circuit.Layering.depth logical);

  (* Target: the paper's linearly-coupled 4-qubit machine of Fig. 1(d),
     padded to 5 qubits to give the router room to move. *)
  let device = Topologies.linear 5 in
  Printf.printf "target device: %s\n\n" device.Qaoa_hardware.Device.name;

  let t = Table.create [ "strategy"; "depth"; "gates"; "cx"; "swaps" ] in
  List.iter
    (fun strategy ->
      let r = Compile.compile ~strategy device problem params in
      Table.add_row t
        [
          Compile.strategy_name strategy;
          string_of_int r.Compile.metrics.Metrics.depth;
          string_of_int r.Compile.metrics.Metrics.gate_count;
          string_of_int r.Compile.metrics.Metrics.two_qubit_count;
          string_of_int r.Compile.swap_count;
        ])
    (* VIC needs calibration data; skip it on this bare device *)
    [ Compile.Naive; Compile.Greedy_v; Compile.Qaim; Compile.Ip; Compile.Ic None ];
  Table.print t;

  (* Export the IC-compiled circuit as OpenQASM for external tools. *)
  let best = Compile.compile ~strategy:(Compile.Ic None) device problem params in
  print_endline "\nIC-compiled circuit (OpenQASM 2.0):";
  print_string (Qaoa_circuit.Qasm.to_string best.Compile.circuit)
