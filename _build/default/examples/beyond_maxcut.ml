(* Beyond MaxCut (paper Sec. VI "Applicability beyond QAOA-MaxCut"):
   any Ising-form cost Hamiltonian - weighted ZZ couplings plus linear
   Z fields - compiles through the exact same pipeline.  This example
   encodes a small weighted Max-Cut-with-bias problem (equivalently a
   QUBO), optimizes its p=2 parameters on the simulator, compiles with
   IC, and verifies the sampled solutions against brute force.

   Run with:  dune exec examples/beyond_maxcut.exe *)

module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Optimizer = Qaoa_core.Optimizer
module Compile = Qaoa_core.Compile
module Topologies = Qaoa_hardware.Topologies
module Statevector = Qaoa_sim.Statevector
module Sampler = Qaoa_sim.Sampler
module Rng = Qaoa_util.Rng

let () =
  (* An 8-variable Ising objective: weighted couplings J_ij, fields h_i.
     QAOA maximizes C(s) = const + sum h_i s_i + sum J_ij s_i s_j. *)
  let problem =
    Problem.create ~num_vars:8
      ~linear:[ (0, 0.5); (3, -0.8); (6, 0.3) ]
      ~constant:4.0
      [
        (0, 1, -1.0); (1, 2, -0.5); (2, 3, -1.5); (3, 4, -0.7);
        (4, 5, -1.2); (5, 6, -0.4); (6, 7, -1.0); (0, 7, -0.6);
        (1, 5, -0.9); (2, 6, -0.3);
      ]
  in
  let best_bits, best_cost = Problem.brute_force_best problem in
  Printf.printf "Ising instance: 8 vars, %d couplings, %d fields\n"
    (List.length problem.Problem.quadratic)
    (List.length problem.Problem.linear);
  Printf.printf "brute-force optimum: cost %.2f at bitstring 0b%s\n\n" best_cost
    (String.init 8 (fun i -> if best_bits land (1 lsl (7 - i)) <> 0 then '1' else '0'));

  (* p=2 parameters by multistart Nelder-Mead on the exact expectation. *)
  let rng = Rng.create 11 in
  let params, value =
    Optimizer.optimize_params rng ~p:2 (fun params ->
        Ansatz.expectation problem params)
  in
  Printf.printf "optimized p=2 ansatz: <C> = %.3f (%.0f%% of optimum)\n\n" value
    (100.0 *. value /. best_cost);

  (* Compile for melbourne with IC: the RZ gates of the linear terms ride
     along with the CPHASE layers. *)
  let device = Topologies.ibmq_16_melbourne () in
  let r = Compile.compile ~strategy:(Compile.Ic None) device problem params in
  Printf.printf "compiled for %s: depth %d, %d native gates, %d SWAPs\n\n"
    device.Qaoa_hardware.Device.name r.Compile.metrics.Qaoa_circuit.Metrics.depth
    r.Compile.metrics.Qaoa_circuit.Metrics.gate_count r.Compile.swap_count;

  (* Sample the compiled circuit (noiselessly) and score the outcomes. *)
  let sv = Statevector.of_circuit r.Compile.circuit in
  let samples = Sampler.sample_many (Rng.create 3) sv ~shots:2048 in
  let costs =
    Array.map
      (fun physical ->
        Problem.cost problem (Compile.logical_outcome r physical))
      samples
  in
  let mean = Qaoa_util.Stats.mean_array costs in
  let hit =
    Array.fold_left
      (fun acc c -> if Float.abs (c -. best_cost) < 1e-9 then acc + 1 else acc)
      0 costs
  in
  Printf.printf "sampled 2048 shots: mean cost %.3f (ratio %.3f), optimum hit %d times\n"
    mean (mean /. best_cost) hit;
  Printf.printf "mean cost agrees with <C> up to sampling error: |%.3f - %.3f| = %.3f\n"
    mean value (Float.abs (mean -. value))
