let apply_inverse_confusion ~p ~num_qubits dist =
  if p < 0.0 || p >= 0.5 then
    invalid_arg "Mitigation: flip probability must be in [0, 0.5)";
  let size = 1 lsl num_qubits in
  if Array.length dist <> size then
    invalid_arg "Mitigation: distribution length mismatch";
  (* inverse of [[1-p, p]; [p, 1-p]] = 1/(1-2p) [[1-p, -p]; [-p, 1-p]];
     apply it qubit by qubit (tensor-product structure) *)
  let out = Array.copy dist in
  let a = (1.0 -. p) /. (1.0 -. (2.0 *. p)) in
  let b = -.p /. (1.0 -. (2.0 *. p)) in
  for q = 0 to num_qubits - 1 do
    let bit = 1 lsl q in
    for i = 0 to size - 1 do
      if i land bit = 0 then begin
        let j = i lor bit in
        let x = out.(i) and y = out.(j) in
        out.(i) <- (a *. x) +. (b *. y);
        out.(j) <- (b *. x) +. (a *. y)
      end
    done
  done;
  out

let clip_and_renormalize dist =
  let clipped = Array.map (fun x -> Float.max 0.0 x) dist in
  let total = Array.fold_left ( +. ) 0.0 clipped in
  if total <= 0.0 then clipped
  else Array.map (fun x -> x /. total) clipped

let counts_to_distribution ~num_qubits counts =
  let size = 1 lsl num_qubits in
  let dist = Array.make size 0.0 in
  let total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 counts
  in
  if total > 0 then
    List.iter
      (fun (outcome, c) ->
        if outcome < 0 || outcome >= size then
          invalid_arg "Mitigation: outcome out of range";
        dist.(outcome) <- dist.(outcome) +. (float_of_int c /. float_of_int total))
      counts;
  dist

let mitigate_counts ~p ~num_qubits counts =
  clip_and_renormalize
    (apply_inverse_confusion ~p ~num_qubits
       (counts_to_distribution ~num_qubits counts))

let expectation ~p ~num_qubits f counts =
  let dist = mitigate_counts ~p ~num_qubits counts in
  let acc = ref 0.0 in
  Array.iteri (fun i w -> if w > 0.0 then acc := !acc +. (w *. f i)) dist;
  !acc
