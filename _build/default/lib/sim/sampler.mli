(** Measurement sampling from a statevector.

    QAOA evaluates its cost expectation over a finite number of output
    samples (paper Sec. II, "QAOA Optimization Flow"); these helpers draw
    basis-state indices from the final state's distribution. *)

val sample : Qaoa_util.Rng.t -> Statevector.t -> int
(** One basis-state index drawn from |amplitude|^2. *)

val sample_many : Qaoa_util.Rng.t -> Statevector.t -> shots:int -> int array
(** [shots] independent draws (cumulative-distribution inversion with
    binary search, O(shots log N) after an O(N) prefix pass). *)

val counts : Qaoa_util.Rng.t -> Statevector.t -> shots:int -> (int * int) list
(** Histogram of [sample_many], sorted by basis index. *)

val flip_bits : Qaoa_util.Rng.t -> p:float -> num_qubits:int -> int -> int
(** Independently flip each of the low [num_qubits] bits with probability
    [p] - the readout-error channel applied to sampled outcomes. *)
