module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Decompose = Qaoa_circuit.Decompose
module Calibration = Qaoa_hardware.Calibration
module Rng = Qaoa_util.Rng

type t = { calibration : Calibration.t; apply_readout : bool }

let create ?(apply_readout = true) calibration = { calibration; apply_readout }

let random_pauli rng = match Rng.int rng 3 with
  | 0 -> `X
  | 1 -> `Y
  | _ -> `Z

(* Uniform non-identity two-qubit Pauli: one of the 15 pairs (P, Q) with
   (P, Q) <> (I, I). *)
let inject_2q rng sv a b =
  let k = 1 + Rng.int rng 15 in
  let pa = k / 4 and pb = k mod 4 in
  let apply q = function
    | 1 -> Statevector.apply_pauli sv `X q
    | 2 -> Statevector.apply_pauli sv `Y q
    | 3 -> Statevector.apply_pauli sv `Z q
    | _ -> ()
  in
  apply a pa;
  apply b pb

let run_trajectory rng t circuit =
  let c = Decompose.circuit circuit in
  let sv = Statevector.create (Circuit.num_qubits c) in
  let e1 = Calibration.single_qubit_error t.calibration in
  List.iter
    (fun g ->
      Statevector.apply_gate sv g;
      match g with
      | Gate.Cnot (a, b) ->
        let e = Calibration.cnot_error t.calibration a b in
        if Rng.bernoulli rng e then inject_2q rng sv a b
      | Gate.Barrier | Gate.Measure _ -> ()
      | Gate.H q | Gate.X q | Gate.Y q | Gate.Z q | Gate.Rx (q, _)
      | Gate.Ry (q, _) | Gate.Rz (q, _) | Gate.Phase (q, _) ->
        if e1 > 0.0 && Rng.bernoulli rng e1 then
          Statevector.apply_pauli sv (random_pauli rng) q
      | Gate.Cphase _ | Gate.Swap _ -> assert false (* decomposed above *))
    (Circuit.gates c);
  sv

let sample_noisy rng t circuit ~shots ~trajectories =
  if shots <= 0 || trajectories <= 0 then
    invalid_arg "Noise.sample_noisy: shots and trajectories must be positive";
  let n = Circuit.num_qubits circuit in
  let ro =
    if t.apply_readout then Calibration.readout_error t.calibration else 0.0
  in
  let out = Array.make shots 0 in
  let per = max 1 (shots / trajectories) in
  let produced = ref 0 in
  while !produced < shots do
    let sv = run_trajectory rng t circuit in
    let want = min per (shots - !produced) in
    let raw = Sampler.sample_many rng sv ~shots:want in
    Array.iter
      (fun idx ->
        out.(!produced) <- Sampler.flip_bits rng ~p:ro ~num_qubits:n idx;
        incr produced)
      raw
  done;
  out

let expected_success_probability t circuit =
  let c = Decompose.circuit circuit in
  let e1 = Calibration.single_qubit_error t.calibration in
  List.fold_left
    (fun acc g ->
      match g with
      | Gate.Cnot (a, b) -> acc *. (1.0 -. Calibration.cnot_error t.calibration a b)
      | Gate.Barrier | Gate.Measure _ -> acc
      | Gate.Cphase _ | Gate.Swap _ -> assert false
      | _ -> acc *. (1.0 -. e1))
    1.0 (Circuit.gates c)
