(** Readout-error mitigation by confusion-matrix unfolding.

    Measured bitstring distributions are distorted by per-qubit readout
    flips.  Under an independent symmetric flip model with probability p
    per qubit, the confusion matrix is a tensor product of 2x2 blocks
    [[1-p, p], [p, 1-p]] whose inverse is again a tensor product - so
    unfolding costs O(N log N) over the 2^n distribution, not a dense
    matrix solve.  Mitigated quasi-probabilities may dip slightly
    negative; [clip_and_renormalize] projects them back to the simplex.

    This is the standard first line of defence used when evaluating QAOA
    approximation ratios on hardware; the test suite verifies that
    mitigation recovers the ideal distribution from readout-corrupted
    samples. *)

val apply_inverse_confusion :
  p:float -> num_qubits:int -> float array -> float array
(** [apply_inverse_confusion ~p ~num_qubits dist] unfolds a measured
    probability vector of length [2^num_qubits].  @raise Invalid_argument
    if [p >= 0.5] (the flip channel is not invertible at 0.5), [p < 0],
    or the array length is not [2^num_qubits]. *)

val clip_and_renormalize : float array -> float array
(** Zero out negative entries and rescale to sum 1 (all-zero input is
    returned unchanged). *)

val mitigate_counts :
  p:float -> num_qubits:int -> (int * int) list -> float array
(** Histogram of measured outcomes -> mitigated probability vector
    (unfold, clip, renormalize). *)

val expectation :
  p:float -> num_qubits:int -> (int -> float) -> (int * int) list -> float
(** Mitigated expectation of a diagonal observable over measured
    counts. *)
