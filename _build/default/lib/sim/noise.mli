(** Stochastic-Pauli (Monte-Carlo trajectory) noise simulation.

    This is the substitute for running compiled circuits on IBM cloud
    hardware (DESIGN.md, substitution 2).  Each trajectory executes the
    basis-decomposed circuit on the statevector simulator and, after every
    gate, injects a uniformly random non-identity Pauli on the gate's
    qubits with probability equal to that gate's calibrated error rate
    (per-edge CNOT rates; scalar one-qubit rate).  Readout error flips
    each measured bit independently.

    The depolarizing-channel average over trajectories reproduces the
    first-order behaviour the paper's success-probability metric models:
    more gates and less reliable couplings lose more probability mass
    from the ideal output distribution. *)

type t = {
  calibration : Qaoa_hardware.Calibration.t;
  apply_readout : bool;
}

val create : ?apply_readout:bool -> Qaoa_hardware.Calibration.t -> t
(** [apply_readout] defaults to [true]. *)

val run_trajectory : Qaoa_util.Rng.t -> t -> Qaoa_circuit.Circuit.t -> Statevector.t
(** One noisy execution.  The circuit must already be hardware-compliant
    (CNOT qubit pairs must have calibration entries).
    @raise Not_found if a CNOT acts on a pair without a calibrated rate. *)

val sample_noisy :
  Qaoa_util.Rng.t ->
  t ->
  Qaoa_circuit.Circuit.t ->
  shots:int ->
  trajectories:int ->
  int array
(** [shots] noisy measurement outcomes spread over [trajectories]
    independent noisy executions (shots are drawn round-robin so each
    trajectory contributes [shots / trajectories] of them; readout flips
    are applied per shot). *)

val expected_success_probability : t -> Qaoa_circuit.Circuit.t -> float
(** Analytic product of per-gate success rates of the decomposed circuit -
    must agree with {!Qaoa_core.Success} and is cross-checked in tests. *)
