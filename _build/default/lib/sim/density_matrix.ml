module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Decompose = Qaoa_circuit.Decompose
module Calibration = Qaoa_hardware.Calibration

type t = { n : int; dim : int; re : float array; im : float array }

let create n =
  if n < 0 || n > 13 then invalid_arg "Density_matrix.create: 0 <= n <= 13";
  let dim = 1 lsl n in
  let re = Array.make (dim * dim) 0.0 and im = Array.make (dim * dim) 0.0 in
  re.(0) <- 1.0;
  { n; dim; re; im }

let num_qubits t = t.n

let of_statevector sv =
  let n = Statevector.num_qubits sv in
  let t = create n in
  for r = 0 to t.dim - 1 do
    let ar, ai = Statevector.amplitude sv r in
    for c = 0 to t.dim - 1 do
      let br, bi = Statevector.amplitude sv c in
      (* rho(r,c) = a conj(b) *)
      t.re.((r * t.dim) + c) <- (ar *. br) +. (ai *. bi);
      t.im.((r * t.dim) + c) <- (ai *. br) -. (ar *. bi)
    done
  done;
  t

let probability t i = t.re.((i * t.dim) + i)
let probabilities t = Array.init t.dim (probability t)

let trace t =
  let acc = ref 0.0 in
  for i = 0 to t.dim - 1 do
    acc := !acc +. probability t i
  done;
  !acc

let purity t =
  (* tr(rho^2) = sum_{r,c} |rho(r,c)|^2 for Hermitian rho *)
  let acc = ref 0.0 in
  for i = 0 to (t.dim * t.dim) - 1 do
    acc := !acc +. (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i))
  done;
  !acc

(* Apply the 2x2 complex matrix [[a b];[c d]] to the index pairs
   (base, base + step) for base enumerated by [iter]. *)
let rotate_pairs re im (ar, ai) (br, bi) (cr, ci) (dr, di) iter step =
  iter (fun i ->
      let j = i + step in
      let xr = re.(i) and xi = im.(i) in
      let yr = re.(j) and yi = im.(j) in
      re.(i) <- (ar *. xr) -. (ai *. xi) +. (br *. yr) -. (bi *. yi);
      im.(i) <- (ar *. xi) +. (ai *. xr) +. (br *. yi) +. (bi *. yr);
      re.(j) <- (cr *. xr) -. (ci *. xi) +. (dr *. yr) -. (di *. yi);
      im.(j) <- (cr *. xi) +. (ci *. xr) +. (dr *. yi) +. (di *. yr))

(* Left multiplication rho <- U rho on qubit q: the row index carries the
   qubit bit; every column is an independent vector. *)
let apply_1q_left t q a b c d =
  let bit = 1 lsl q in
  let iter f =
    for r0 = 0 to t.dim - 1 do
      if r0 land bit = 0 then
        for col = 0 to t.dim - 1 do
          f ((r0 * t.dim) + col)
        done
    done
  in
  rotate_pairs t.re t.im a b c d iter (bit * t.dim)

(* Right multiplication rho <- rho U+ on qubit q: columns pair up and the
   applied matrix is conj(U). *)
let apply_1q_right t q (ar, ai) (br, bi) (cr, ci) (dr, di) =
  let bit = 1 lsl q in
  let iter f =
    for r = 0 to t.dim - 1 do
      for c0 = 0 to t.dim - 1 do
        if c0 land bit = 0 then f ((r * t.dim) + c0)
      done
    done
  in
  rotate_pairs t.re t.im (ar, -.ai) (br, -.bi) (cr, -.ci) (dr, -.di) iter bit

let conjugate_1q t q a b c d =
  apply_1q_left t q a b c d;
  apply_1q_right t q a b c d

(* Basis permutation pi (an involution on indices): rows then columns. *)
let conjugate_permutation t pi =
  let dim = t.dim in
  let swap arr i j =
    let x = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- x
  in
  (* rows *)
  for r = 0 to dim - 1 do
    let pr = pi r in
    if pr > r then
      for c = 0 to dim - 1 do
        swap t.re ((r * dim) + c) ((pr * dim) + c);
        swap t.im ((r * dim) + c) ((pr * dim) + c)
      done
  done;
  (* columns *)
  for c = 0 to dim - 1 do
    let pc = pi c in
    if pc > c then
      for r = 0 to dim - 1 do
        swap t.re ((r * dim) + c) ((r * dim) + pc);
        swap t.im ((r * dim) + c) ((r * dim) + pc)
      done
  done

(* Diagonal unitary d(i) = (re, im): rho(r,c) <- d(r) rho(r,c) conj(d(c)). *)
let conjugate_diagonal t d =
  let dim = t.dim in
  for r = 0 to dim - 1 do
    let dr_re, dr_im = d r in
    for c = 0 to dim - 1 do
      let dc_re, dc_im = d c in
      (* phase = d(r) * conj(d(c)) *)
      let pr = (dr_re *. dc_re) +. (dr_im *. dc_im) in
      let pi_ = (dr_im *. dc_re) -. (dr_re *. dc_im) in
      let idx = (r * dim) + c in
      let xr = t.re.(idx) and xi = t.im.(idx) in
      t.re.(idx) <- (pr *. xr) -. (pi_ *. xi);
      t.im.(idx) <- (pr *. xi) +. (pi_ *. xr)
    done
  done

let apply_gate t g =
  match g with
  | Gate.H q ->
    let s = 1.0 /. sqrt 2.0 in
    conjugate_1q t q (s, 0.) (s, 0.) (s, 0.) (-.s, 0.)
  | Gate.X q -> conjugate_1q t q (0., 0.) (1., 0.) (1., 0.) (0., 0.)
  | Gate.Y q -> conjugate_1q t q (0., 0.) (0., -1.) (0., 1.) (0., 0.)
  | Gate.Z q -> conjugate_1q t q (1., 0.) (0., 0.) (0., 0.) (-1., 0.)
  | Gate.Rx (q, th) ->
    let c = cos (th /. 2.0) and s = sin (th /. 2.0) in
    conjugate_1q t q (c, 0.) (0., -.s) (0., -.s) (c, 0.)
  | Gate.Ry (q, th) ->
    let c = cos (th /. 2.0) and s = sin (th /. 2.0) in
    conjugate_1q t q (c, 0.) (-.s, 0.) (s, 0.) (c, 0.)
  | Gate.Rz (q, th) ->
    let c = cos (th /. 2.0) and s = sin (th /. 2.0) in
    conjugate_1q t q (c, -.s) (0., 0.) (0., 0.) (c, s)
  | Gate.Phase (q, th) ->
    conjugate_1q t q (1., 0.) (0., 0.) (0., 0.) (cos th, sin th)
  | Gate.Cnot (cq, tq) ->
    let cbit = 1 lsl cq and tbit = 1 lsl tq in
    conjugate_permutation t (fun i ->
        if i land cbit <> 0 then i lxor tbit else i)
  | Gate.Swap (a, b) ->
    let abit = 1 lsl a and bbit = 1 lsl b in
    conjugate_permutation t (fun i ->
        let ba = i land abit <> 0 and bb = i land bbit <> 0 in
        if ba = bb then i else i lxor abit lxor bbit)
  | Gate.Cphase (a, b, th) ->
    let abit = 1 lsl a and bbit = 1 lsl b in
    let cs = cos (th /. 2.0) and sn = sin (th /. 2.0) in
    conjugate_diagonal t (fun i ->
        let agree = (i land abit <> 0) = (i land bbit <> 0) in
        if agree then (cs, -.sn) else (cs, sn))
  | Gate.Barrier | Gate.Measure _ -> ()

let apply_circuit t c = List.iter (apply_gate t) (Circuit.gates c)

let copy t = { t with re = Array.copy t.re; im = Array.copy t.im }

let blend ~into ~weight other =
  Array.iteri (fun i x -> into.re.(i) <- into.re.(i) +. (weight *. x)) other.re;
  Array.iteri (fun i x -> into.im.(i) <- into.im.(i) +. (weight *. x)) other.im

let scale t w =
  Array.iteri (fun i x -> t.re.(i) <- x *. w) t.re;
  Array.iteri (fun i x -> t.im.(i) <- x *. w) t.im

let depolarize_with t paulis p =
  if p < 0.0 || p > 1.0 then invalid_arg "Density_matrix: bad error rate";
  if p > 0.0 then begin
    let k = List.length paulis in
    let original = copy t in
    scale t (1.0 -. p);
    List.iter
      (fun gates ->
        let branch = copy original in
        List.iter (apply_gate branch) gates;
        blend ~into:t ~weight:(p /. float_of_int k) branch)
      paulis
  end

let depolarize_1q t p q =
  depolarize_with t [ [ Gate.X q ]; [ Gate.Y q ]; [ Gate.Z q ] ] p

let depolarize_2q t p a b =
  let single = [| []; [ Gate.X a ]; [ Gate.Y a ]; [ Gate.Z a ] |] in
  let single_b = [| []; [ Gate.X b ]; [ Gate.Y b ]; [ Gate.Z b ] |] in
  let paulis = ref [] in
  for i = 0 to 3 do
    for j = 0 to 3 do
      if i <> 0 || j <> 0 then paulis := (single.(i) @ single_b.(j)) :: !paulis
    done
  done;
  depolarize_with t !paulis p

let amplitude_damp t gamma q =
  if gamma < 0.0 || gamma > 1.0 then
    invalid_arg "Density_matrix: bad error rate";
  let bit = 1 lsl q in
  let dim = t.dim in
  let keep = sqrt (1.0 -. gamma) in
  for r0 = 0 to dim - 1 do
    if r0 land bit = 0 then
      for c0 = 0 to dim - 1 do
        if c0 land bit = 0 then begin
          let r1 = r0 lor bit and c1 = c0 lor bit in
          let i00 = (r0 * dim) + c0
          and i01 = (r0 * dim) + c1
          and i10 = (r1 * dim) + c0
          and i11 = (r1 * dim) + c1 in
          (* K1 rho K1+ feeds the excited population into the ground
             block; read rho11 before scaling it *)
          t.re.(i00) <- t.re.(i00) +. (gamma *. t.re.(i11));
          t.im.(i00) <- t.im.(i00) +. (gamma *. t.im.(i11));
          t.re.(i01) <- t.re.(i01) *. keep;
          t.im.(i01) <- t.im.(i01) *. keep;
          t.re.(i10) <- t.re.(i10) *. keep;
          t.im.(i10) <- t.im.(i10) *. keep;
          t.re.(i11) <- t.re.(i11) *. (1.0 -. gamma);
          t.im.(i11) <- t.im.(i11) *. (1.0 -. gamma)
        end
      done
  done

let apply_noisy_circuit cal circuit =
  let c = Decompose.circuit circuit in
  let t = create (Circuit.num_qubits c) in
  let e1 = Calibration.single_qubit_error cal in
  List.iter
    (fun g ->
      apply_gate t g;
      match g with
      | Gate.Cnot (a, b) -> depolarize_2q t (Calibration.cnot_error cal a b) a b
      | Gate.Barrier | Gate.Measure _ -> ()
      | Gate.Cphase _ | Gate.Swap _ -> assert false
      | Gate.H q | Gate.X q | Gate.Y q | Gate.Z q | Gate.Rx (q, _)
      | Gate.Ry (q, _) | Gate.Rz (q, _) | Gate.Phase (q, _) ->
        if e1 > 0.0 then depolarize_1q t e1 q)
    (Circuit.gates c);
  t

let expectation_diag t f =
  let acc = ref 0.0 in
  for i = 0 to t.dim - 1 do
    let p = probability t i in
    if p <> 0.0 then acc := !acc +. (p *. f i)
  done;
  !acc
