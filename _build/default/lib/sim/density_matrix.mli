(** Exact mixed-state simulation via density matrices.

    Complements the Monte-Carlo trajectory sampler ({!Noise}): instead of
    averaging random Pauli injections, the density matrix evolves the
    exact noise channel, so small systems get noise-free-of-sampling
    expectations.  The test suite uses it to validate the trajectory
    sampler (trajectory averages must converge to the density-matrix
    result) - and it doubles as a reference implementation for
    channel-level noise models.

    Memory is O(4^n); the constructor refuses n > 13 (a 13-qubit matrix
    is already 2 * 8 bytes * 4^13 = 1 GiB).  For the paper's ARG
    workloads (12 qubits) prefer trajectories; for validation (< 10
    qubits) this is exact.

    Representation: row-major complex matrix rho with the same
    little-endian basis ordering as {!Statevector}. *)

type t

val create : int -> t
(** |0...0><0...0| on [n] qubits.  @raise Invalid_argument if [n < 0] or
    [n > 13]. *)

val of_statevector : Statevector.t -> t
(** The pure state's projector. *)

val num_qubits : t -> int

val probability : t -> int -> float
(** Diagonal entry (real part) of a basis index. *)

val probabilities : t -> float array

val trace : t -> float
(** Should be 1 up to float error (invariant-tested). *)

val purity : t -> float
(** tr(rho^2): 1 for pure states, 1/2^n for the maximally mixed state. *)

val apply_gate : t -> Qaoa_circuit.Gate.t -> unit
(** rho <- U rho U+ (in place).  [Barrier]/[Measure] are no-ops. *)

val apply_circuit : t -> Qaoa_circuit.Circuit.t -> unit

val depolarize_1q : t -> float -> int -> unit
(** One-qubit depolarizing channel with error probability [p]: with
    probability p the qubit suffers a uniform Pauli (X, Y or Z each with
    p/3). *)

val depolarize_2q : t -> float -> int -> int -> unit
(** Two-qubit depolarizing channel: with probability p a uniform
    non-identity two-qubit Pauli (each of the 15 with p/15) - the exact
    channel whose stochastic unravelling {!Noise.run_trajectory}
    samples. *)

val amplitude_damp : t -> float -> int -> unit
(** Amplitude-damping (T1 relaxation) channel with decay probability
    [gamma] on one qubit: Kraus operators K0 = diag(1, sqrt(1-gamma))
    and K1 = sqrt(gamma) |0><1|.  Complements the Pauli channels with
    the non-unital process behind {!Qaoa_hardware.Coherence}'s decay
    model. *)

val apply_noisy_circuit : Qaoa_hardware.Calibration.t -> Qaoa_circuit.Circuit.t -> t
(** Evolve |0..0> through the basis-decomposed circuit, applying
    {!depolarize_2q} with the pair's calibrated CNOT error after every
    CNOT and {!depolarize_1q} with the one-qubit rate after every
    one-qubit gate - the channel-exact counterpart of
    {!Noise.run_trajectory}. *)

val expectation_diag : t -> (int -> float) -> float
(** Expectation of a diagonal observable. *)
