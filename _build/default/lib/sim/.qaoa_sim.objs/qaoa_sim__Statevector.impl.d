lib/sim/statevector.ml: Array Float List Qaoa_circuit
