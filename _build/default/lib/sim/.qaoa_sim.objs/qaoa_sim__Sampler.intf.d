lib/sim/sampler.mli: Qaoa_util Statevector
