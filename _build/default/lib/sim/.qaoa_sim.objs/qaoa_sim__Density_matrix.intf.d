lib/sim/density_matrix.mli: Qaoa_circuit Qaoa_hardware Statevector
