lib/sim/statevector.mli: Qaoa_circuit
