lib/sim/noise.mli: Qaoa_circuit Qaoa_hardware Qaoa_util Statevector
