lib/sim/mitigation.mli:
