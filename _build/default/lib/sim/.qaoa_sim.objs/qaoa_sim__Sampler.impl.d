lib/sim/sampler.ml: Array Hashtbl List Option Qaoa_util Statevector
