lib/sim/density_matrix.ml: Array List Qaoa_circuit Qaoa_hardware Statevector
