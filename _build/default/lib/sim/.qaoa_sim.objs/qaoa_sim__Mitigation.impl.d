lib/sim/mitigation.ml: Array Float List
