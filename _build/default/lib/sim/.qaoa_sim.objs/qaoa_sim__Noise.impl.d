lib/sim/noise.ml: Array List Qaoa_circuit Qaoa_hardware Qaoa_util Sampler Statevector
