(** Shortest paths and connectivity queries over {!Graph.t}.

    The mapping procedures use hop distances (unit edge weights) for QAIM
    and IC, and reliability-weighted distances for VIC; both are computed
    once with Floyd-Warshall per the paper and then read from memory. *)

val bfs_distances : Graph.t -> int -> int array
(** [bfs_distances g src] gives hop distances from [src]; unreachable
    vertices get [max_int]. *)

val all_pairs_hops : Graph.t -> Qaoa_util.Float_matrix.t
(** All-pairs hop distances (infinity for disconnected pairs). *)

val all_pairs_weighted :
  Graph.t -> weight:(int -> int -> float) -> Qaoa_util.Float_matrix.t
(** All-pairs shortest paths with [weight u v] as each edge's length. *)

val shortest_path : Graph.t -> int -> int -> int list
(** One shortest (fewest-hops) path from [src] to [dst], inclusive of both
    endpoints.  @raise Not_found if unreachable. *)

val connected_components : Graph.t -> int list list
(** Vertex partition into components, each sorted, components sorted by
    their minimum vertex. *)

val eccentricity : Graph.t -> int -> int
(** Largest hop distance from the vertex to any reachable vertex. *)

val diameter : Graph.t -> int
(** Max eccentricity over vertices; 0 for n <= 1.  Disconnected graphs
    return the max over reachable pairs. *)
