(** Random and structured graph generators.

    The paper's workloads (Sec. V.B) are Erdos-Renyi random graphs with
    varied edge probabilities and random d-regular graphs with varied
    edges/node; the hardware substrates additionally need paths, cycles and
    grids. *)

val erdos_renyi : Qaoa_util.Rng.t -> n:int -> p:float -> Graph.t
(** G(n, p): each of the n(n-1)/2 possible edges is included independently
    with probability [p]. *)

val erdos_renyi_gnm : Qaoa_util.Rng.t -> n:int -> m:int -> Graph.t
(** G(n, m): exactly [m] distinct edges drawn uniformly.
    @raise Invalid_argument if [m] exceeds n(n-1)/2. *)

val random_regular : Qaoa_util.Rng.t -> n:int -> d:int -> Graph.t
(** A uniform-ish random d-regular graph via the pairing model with
    rejection (retry until simple).  @raise Invalid_argument if [n * d] is
    odd or [d >= n]. *)

val barabasi_albert : Qaoa_util.Rng.t -> n:int -> m:int -> Graph.t
(** Preferential-attachment scale-free graph: start from a clique on
    [m + 1] vertices, then attach each new vertex to [m] existing
    vertices drawn proportionally to degree (without replacement).
    Produces the hub-dominated degree profiles that stress heaviest-first
    placement heuristics.  @raise Invalid_argument if [m < 1] or
    [n <= m]. *)

val watts_strogatz : Qaoa_util.Rng.t -> n:int -> k:int -> beta:float -> Graph.t
(** Small-world graph: ring lattice with [k] nearest neighbors per vertex
    ([k] even), each edge rewired with probability [beta] to a uniform
    non-duplicate endpoint.  @raise Invalid_argument if [k] is odd,
    [k < 2] or [k >= n - 1]. *)

val path : int -> Graph.t
(** Linear chain 0-1-...-(n-1). *)

val cycle : int -> Graph.t
(** Ring on [n >= 3] vertices. *)

val grid : rows:int -> cols:int -> Graph.t
(** 2-D mesh; vertex [(r, c)] has index [r * cols + c]. *)

val complete : int -> Graph.t
val star : int -> Graph.t
(** [star n]: vertex 0 connected to each of [1..n-1]. *)
