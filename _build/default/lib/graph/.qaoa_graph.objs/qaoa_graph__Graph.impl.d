lib/graph/graph.ml: Array Format Int List Set
