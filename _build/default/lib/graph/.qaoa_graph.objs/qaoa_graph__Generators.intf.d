lib/graph/generators.mli: Graph Qaoa_util
