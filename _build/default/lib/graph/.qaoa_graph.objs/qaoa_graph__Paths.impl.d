lib/graph/paths.ml: Array Float Graph List Qaoa_util Queue
