lib/graph/paths.mli: Graph Qaoa_util
