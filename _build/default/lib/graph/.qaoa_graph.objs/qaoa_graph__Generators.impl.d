lib/graph/generators.ml: Array Graph Hashtbl List Qaoa_util
