module Float_matrix = Qaoa_util.Float_matrix

let bfs_distances g src =
  let n = Graph.num_vertices g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  dist

let weight_matrix g ~weight =
  let n = Graph.num_vertices g in
  let w = Float_matrix.create n Float.infinity in
  for i = 0 to n - 1 do
    Float_matrix.set w i i 0.0
  done;
  List.iter
    (fun (u, v) ->
      let x = weight u v in
      Float_matrix.set w u v x;
      Float_matrix.set w v u x)
    (Graph.edges g);
  w

let all_pairs_hops g =
  Float_matrix.floyd_warshall (weight_matrix g ~weight:(fun _ _ -> 1.0))

let all_pairs_weighted g ~weight =
  Float_matrix.floyd_warshall (weight_matrix g ~weight)

let shortest_path g src dst =
  let dist = bfs_distances g src in
  if dist.(dst) = max_int then raise Not_found;
  (* Walk back from dst along strictly decreasing distances. *)
  let rec back v acc =
    if v = src then v :: acc
    else
      let prev =
        List.find (fun u -> dist.(u) = dist.(v) - 1) (Graph.neighbors g v)
      in
      back prev (v :: acc)
  in
  back dst []

let connected_components g =
  let n = Graph.num_vertices g in
  let seen = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let comp = ref [] in
      let queue = Queue.create () in
      seen.(v) <- true;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        comp := u :: !comp;
        List.iter
          (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w queue
            end)
          (Graph.neighbors g u)
      done;
      comps := List.sort compare !comp :: !comps
    end
  done;
  List.sort compare !comps

let eccentricity g v =
  let dist = bfs_distances g v in
  Array.fold_left (fun acc d -> if d = max_int then acc else max acc d) 0 dist

let diameter g =
  let n = Graph.num_vertices g in
  let best = ref 0 in
  for v = 0 to n - 1 do
    best := max !best (eccentricity g v)
  done;
  !best
