(** Induced subgraphs and vertex relabelling.

    Qubit allocation selects a k-vertex subset of the hardware coupling
    graph; these helpers extract the induced subgraph and keep the mapping
    between original and compacted vertex ids. *)

val induced : Graph.t -> int list -> Graph.t * int array
(** [induced g vs] returns the subgraph induced by the distinct vertices
    [vs], relabelled to [0..k-1] in the order given, together with the
    array mapping new ids back to original ids. *)

val edge_count_within : Graph.t -> int list -> int
(** Number of edges of [g] with both endpoints in the vertex list. *)

val relabel : Graph.t -> int array -> Graph.t
(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0..n-1]. *)
