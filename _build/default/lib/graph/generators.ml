module Rng = Qaoa_util.Rng

let erdos_renyi rng ~n ~p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges n !edges

let erdos_renyi_gnm rng ~n ~m =
  let max_m = n * (n - 1) / 2 in
  if m > max_m then invalid_arg "Generators.erdos_renyi_gnm: too many edges";
  (* Sample m distinct edge indices out of the full edge enumeration. *)
  let all = Array.make max_m (0, 0) in
  let k = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      all.(!k) <- (u, v);
      incr k
    done
  done;
  Rng.shuffle rng all;
  Graph.of_edges n (Array.to_list (Array.sub all 0 m))

let random_regular rng ~n ~d =
  if n * d mod 2 = 1 then
    invalid_arg "Generators.random_regular: n * d must be even";
  if d >= n then invalid_arg "Generators.random_regular: d >= n";
  if d < 0 then invalid_arg "Generators.random_regular: negative degree";
  (* Pairing (configuration) model: n*d half-edge stubs shuffled and paired;
     reject and retry on self-loops or multi-edges.  For the small d and n
     used by the workloads the expected number of retries is tiny. *)
  let stubs = Array.init (n * d) (fun i -> i / d) in
  let rec attempt remaining =
    if remaining = 0 then
      (* Fall back to a deterministic circulant d-regular graph; only
         reachable for adversarial (n, d) combinations. *)
      let edges = ref [] in
      for v = 0 to n - 1 do
        for k = 1 to d / 2 do
          edges := (v, (v + k) mod n) :: !edges
        done;
        if d mod 2 = 1 && v < n / 2 then edges := (v, v + (n / 2)) :: !edges
      done;
      Graph.of_edges n
        (List.filter (fun (u, v) -> u <> v) (List.map (fun (u, v) -> (min u v, max u v)) !edges))
    else begin
      Rng.shuffle rng stubs;
      let ok = ref true in
      let seen = Hashtbl.create (n * d) in
      let edges = ref [] in
      let i = ref 0 in
      while !ok && !i < Array.length stubs do
        let u = stubs.(!i) and v = stubs.(!i + 1) in
        let e = (min u v, max u v) in
        if u = v || Hashtbl.mem seen e then ok := false
        else begin
          Hashtbl.add seen e ();
          edges := e :: !edges
        end;
        i := !i + 2
      done;
      if !ok then Graph.of_edges n !edges else attempt (remaining - 1)
    end
  in
  attempt 1000

let barabasi_albert rng ~n ~m =
  if m < 1 then invalid_arg "Generators.barabasi_albert: m < 1";
  if n <= m then invalid_arg "Generators.barabasi_albert: n <= m";
  (* seed clique on m+1 vertices, then preferential attachment via a
     repeated-endpoints list (each edge contributes both endpoints, so a
     uniform draw from it is degree-proportional) *)
  let edges = ref [] in
  let endpoints = ref [] in
  for u = 0 to m do
    for v = u + 1 to m do
      edges := (u, v) :: !edges;
      endpoints := u :: v :: !endpoints
    done
  done;
  let endpoint_array = ref (Array.of_list !endpoints) in
  for v = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    let attempts = ref 0 in
    while Hashtbl.length chosen < m && !attempts < 1000 do
      incr attempts;
      let u = Rng.choice rng !endpoint_array in
      if u <> v then Hashtbl.replace chosen u ()
    done;
    (* degenerate fallback: fill from low ids *)
    let id = ref 0 in
    while Hashtbl.length chosen < m do
      if !id <> v then Hashtbl.replace chosen !id ();
      incr id
    done;
    let new_points = ref [] in
    Hashtbl.iter
      (fun u () ->
        edges := (min u v, max u v) :: !edges;
        new_points := u :: v :: !new_points)
      chosen;
    endpoint_array :=
      Array.append !endpoint_array (Array.of_list !new_points)
  done;
  Graph.of_edges n !edges

let watts_strogatz rng ~n ~k ~beta =
  if k mod 2 = 1 then invalid_arg "Generators.watts_strogatz: k must be even";
  if k < 2 || k >= n - 1 then
    invalid_arg "Generators.watts_strogatz: need 2 <= k < n - 1";
  (* ring lattice, then rewire the far endpoint of each edge with
     probability beta *)
  let g = ref (Graph.create n) in
  let add u v = if u <> v && not (Graph.has_edge !g u v) then g := Graph.add_edge !g u v in
  for v = 0 to n - 1 do
    for offset = 1 to k / 2 do
      add v ((v + offset) mod n)
    done
  done;
  let rewired =
    Graph.fold_edges
      (fun u v acc ->
        if Rng.bernoulli rng beta then (u, v) :: acc else acc)
      !g []
  in
  List.iter
    (fun (u, v) ->
      (* pick a fresh endpoint for u, avoiding self-loops and duplicates *)
      let candidates =
        List.filter
          (fun w -> w <> u && w <> v && not (Graph.has_edge !g u w))
          (Graph.vertices !g)
      in
      match candidates with
      | [] -> ()
      | _ ->
        let w = Rng.choice_list rng candidates in
        g := Graph.add_edge (Graph.remove_edge !g u v) u w)
    rewired;
  !g

let path n = Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need at least 3 vertices";
  Graph.of_edges n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let grid ~rows ~cols =
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges (rows * cols) !edges

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges n !edges

let star n =
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))
