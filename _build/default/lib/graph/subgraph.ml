let induced g vs =
  let vs = Array.of_list vs in
  let k = Array.length vs in
  let index = Hashtbl.create k in
  Array.iteri (fun i v -> Hashtbl.replace index v i) vs;
  let edges =
    Graph.fold_edges
      (fun u v acc ->
        match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
        | Some iu, Some iv -> (iu, iv) :: acc
        | _ -> acc)
      g []
  in
  (Graph.of_edges k edges, vs)

let edge_count_within g vs =
  let set = Hashtbl.create (List.length vs) in
  List.iter (fun v -> Hashtbl.replace set v ()) vs;
  Graph.fold_edges
    (fun u v acc ->
      if Hashtbl.mem set u && Hashtbl.mem set v then acc + 1 else acc)
    g 0

let relabel g perm =
  let n = Graph.num_vertices g in
  if Array.length perm <> n then invalid_arg "Subgraph.relabel: size mismatch";
  let edges =
    Graph.fold_edges (fun u v acc -> (perm.(u), perm.(v)) :: acc) g []
  in
  Graph.of_edges n edges
