type interval = { estimate : float; lower : float; upper : float }

let check_args ~resamples ~confidence n =
  if n = 0 then invalid_arg "Bootstrap: empty sample";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Bootstrap: confidence must lie in (0, 1)";
  if resamples < 10 then invalid_arg "Bootstrap: too few resamples"

let percentile sorted q =
  let n = Array.length sorted in
  let idx = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor idx) in
  let hi = int_of_float (Float.ceil idx) in
  let frac = idx -. Float.floor idx in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let interval_of_resamples estimate resampled confidence =
  Array.sort compare resampled;
  let alpha = (1.0 -. confidence) /. 2.0 in
  {
    estimate;
    lower = percentile resampled alpha;
    upper = percentile resampled (1.0 -. alpha);
  }

let mean_interval ?(resamples = 1000) ?(confidence = 0.95) rng samples =
  let a = Array.of_list samples in
  let n = Array.length a in
  check_args ~resamples ~confidence n;
  let mean arr = Array.fold_left ( +. ) 0.0 arr /. float_of_int n in
  let resampled =
    Array.init resamples (fun _ ->
        let draw = Array.init n (fun _ -> a.(Rng.int rng n)) in
        mean draw)
  in
  interval_of_resamples (mean a) resampled confidence

let ratio_of_means_interval ?(resamples = 1000) ?(confidence = 0.95) rng ~num
    ~den =
  let a = Array.of_list num and b = Array.of_list den in
  let n = Array.length a in
  if Array.length b <> n then
    invalid_arg "Bootstrap: paired samples must have equal length";
  check_args ~resamples ~confidence n;
  let ratio idxs =
    let sa = ref 0.0 and sb = ref 0.0 in
    Array.iter
      (fun i ->
        sa := !sa +. a.(i);
        sb := !sb +. b.(i))
      idxs;
    if !sb = 0.0 then Float.nan else !sa /. !sb
  in
  let identity = Array.init n (fun i -> i) in
  let resampled =
    Array.init resamples (fun _ ->
        ratio (Array.init n (fun _ -> Rng.int rng n)))
  in
  interval_of_resamples (ratio identity) resampled confidence

let pp ppf t =
  Format.fprintf ppf "%.3f [%.3f, %.3f]" t.estimate t.lower t.upper
