type t = Random.State.t

let create seed = Random.State.make [| seed; 0x51ab; seed lxor 0x9e3779b9 |]

let split t =
  let seed = Random.State.bits t in
  Random.State.make [| seed; Random.State.bits t |]

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let float t bound = Random.State.float t bound
let bool t = Random.State.bool t
let bernoulli t p = Random.State.float t 1.0 < p

let normal t ~mu ~sigma =
  (* Box-Muller: u1 in (0,1] to keep log finite. *)
  let u1 = 1.0 -. Random.State.float t 1.0 in
  let u2 = Random.State.float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let normal_clamped t ~mu ~sigma ~lo ~hi =
  let rec loop attempts =
    let x = normal t ~mu ~sigma in
    if x >= lo && x <= hi then x
    else if attempts >= 100 then Float.min hi (Float.max lo x)
    else loop (attempts + 1)
  in
  loop 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(Random.State.int t (Array.length a))

let choice_list t = function
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | l -> List.nth l (Random.State.int t (List.length l))

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let a = permutation t n in
  Array.to_list (Array.sub a 0 k)
