type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t row =
  let ncols = List.length t.headers in
  let n = List.length row in
  if n > ncols then invalid_arg "Table.add_row: too many cells";
  let row = row @ List.init (ncols - n) (fun _ -> "") in
  t.rows <- row :: t.rows

let float_cell ?(decimals = 3) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v

let add_float_row t ?(fmt = float_cell ~decimals:3) label values =
  add_row t (label :: List.map fmt values)

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row c)))
      0 all
  in
  let widths = List.init ncols width in
  let pad align w s =
    let n = w - String.length s in
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i in
          let a = try List.nth t.aligns i with _ -> Right in
          pad a w cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    "|"
    ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  String.concat "\n" (render_row t.headers :: rule :: List.map render_row rows)

let print t = print_endline (render t)
