(** Plain-text table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables so that the per-figure series the
    harness prints read like the rows of the paper's tables. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [aligns] defaults to [Left] for the first column and [Right] for the
    rest. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> unit
(** [add_float_row t label values] appends a row whose first cell is
    [label] and whose remaining cells render [values] ([fmt] defaults to
    three decimal places). *)

val render : t -> string
(** Render the table with column-aligned cells and a header rule. *)

val print : t -> unit
(** [render] to stdout, followed by a newline. *)

val float_cell : ?decimals:int -> float -> string
(** Render a float with fixed decimals; NaN renders as ["-"]. *)
