(** Bootstrap confidence intervals for experiment aggregates.

    The paper reports bare means over 20-50 instances; resampling makes
    the spread visible without distributional assumptions.  Percentile
    bootstrap: resample with replacement, recompute the statistic,
    report the [(1 - confidence) / 2] and [1 - (1 - confidence) / 2]
    quantiles. *)

type interval = { estimate : float; lower : float; upper : float }

val mean_interval :
  ?resamples:int ->
  ?confidence:float ->
  Rng.t ->
  float list ->
  interval
(** [resamples] defaults to 1000, [confidence] to 0.95.
    @raise Invalid_argument on the empty list or a confidence outside
    (0, 1). *)

val ratio_of_means_interval :
  ?resamples:int ->
  ?confidence:float ->
  Rng.t ->
  num:float list ->
  den:float list ->
  interval
(** CI for mean(num)/mean(den) with paired-index resampling (the two
    lists must have equal length: sample i of both comes from the same
    instance, as the runner produces them). *)

val pp : Format.formatter -> interval -> unit
(** "x [lo, hi]" with three decimals. *)
