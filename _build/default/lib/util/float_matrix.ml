type t = { n : int; data : float array }

let create n v = { n; data = Array.make (n * n) v }
let size t = t.n
let get t i j = t.data.((i * t.n) + j)
let set t i j v = t.data.((i * t.n) + j) <- v

let init n f =
  let t = create n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      set t i j (f i j)
    done
  done;
  t

let copy t = { n = t.n; data = Array.copy t.data }

let floyd_warshall w =
  let d = copy w in
  let n = d.n in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = get d i k in
      if dik < Float.infinity then
        for j = 0 to n - 1 do
          let through = dik +. get d k j in
          if through < get d i j then set d i j through
        done
    done
  done;
  d

let is_symmetric ?(eps = 1e-9) t =
  let ok = ref true in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      if Float.abs (get t i j -. get t j i) > eps then ok := false
    done
  done;
  !ok

let pp ppf t =
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      Format.fprintf ppf "%8.3f " (get t i j)
    done;
    Format.pp_print_newline ppf ()
  done
