(** Dense square matrices of floats with the Floyd-Warshall all-pairs
    shortest-path algorithm.

    The compilation heuristics (QAIM, IC, VIC) repeatedly query
    qubit-to-qubit distances; the paper prescribes computing them once with
    Floyd-Warshall (Sec. IV.A) and reading them from memory afterwards. *)

type t
(** A square [n x n] float matrix. *)

val create : int -> float -> t
(** [create n v] is an [n x n] matrix filled with [v]. *)

val size : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val init : int -> (int -> int -> float) -> t
(** [init n f] builds the matrix with entries [f i j]. *)

val copy : t -> t

val floyd_warshall : t -> t
(** [floyd_warshall w] treats [w] as an edge-weight matrix (infinity for
    absent edges, 0 on the diagonal) and returns the all-pairs
    shortest-path distance matrix.  The input is not modified. *)

val is_symmetric : ?eps:float -> t -> bool

val pp : Format.formatter -> t -> unit
(** Debug printer (rows of fixed-width floats). *)
