lib/util/float_matrix.mli: Format
