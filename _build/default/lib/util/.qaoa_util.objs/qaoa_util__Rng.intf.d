lib/util/rng.mli:
