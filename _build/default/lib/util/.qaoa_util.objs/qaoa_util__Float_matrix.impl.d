lib/util/float_matrix.ml: Array Float Format
