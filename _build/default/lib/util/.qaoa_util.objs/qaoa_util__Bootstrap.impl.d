lib/util/bootstrap.ml: Array Float Format Rng
