lib/util/rng.ml: Array Float List Random
