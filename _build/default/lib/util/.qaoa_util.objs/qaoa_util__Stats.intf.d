lib/util/stats.mli:
