lib/util/bootstrap.mli: Format Rng
