lib/util/table.mli:
