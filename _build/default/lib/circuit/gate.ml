type t =
  | H of int
  | X of int
  | Y of int
  | Z of int
  | Rx of int * float
  | Ry of int * float
  | Rz of int * float
  | Phase of int * float
  | Cnot of int * int
  | Cphase of int * int * float
  | Swap of int * int
  | Barrier
  | Measure of int

let qubits = function
  | H q | X q | Y q | Z q | Rx (q, _) | Ry (q, _) | Rz (q, _) | Phase (q, _)
  | Measure q ->
    [ q ]
  | Cnot (a, b) | Cphase (a, b, _) | Swap (a, b) -> [ a; b ]
  | Barrier -> []

let is_two_qubit = function
  | Cnot _ | Cphase _ | Swap _ -> true
  | H _ | X _ | Y _ | Z _ | Rx _ | Ry _ | Rz _ | Phase _ | Barrier
  | Measure _ ->
    false

let is_unitary = function
  | Barrier | Measure _ -> false
  | H _ | X _ | Y _ | Z _ | Rx _ | Ry _ | Rz _ | Phase _ | Cnot _ | Cphase _
  | Swap _ ->
    true

let map_qubits f = function
  | H q -> H (f q)
  | X q -> X (f q)
  | Y q -> Y (f q)
  | Z q -> Z (f q)
  | Rx (q, a) -> Rx (f q, a)
  | Ry (q, a) -> Ry (f q, a)
  | Rz (q, a) -> Rz (f q, a)
  | Phase (q, a) -> Phase (f q, a)
  | Cnot (c, t) -> Cnot (f c, f t)
  | Cphase (c, t, a) -> Cphase (f c, f t, a)
  | Swap (a, b) -> Swap (f a, f b)
  | Barrier -> Barrier
  | Measure q -> Measure (f q)

let name = function
  | H _ -> "h"
  | X _ -> "x"
  | Y _ -> "y"
  | Z _ -> "z"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | Phase _ -> "u1"
  | Cnot _ -> "cx"
  | Cphase _ -> "cphase"
  | Swap _ -> "swap"
  | Barrier -> "barrier"
  | Measure _ -> "measure"

let equal a b =
  match (a, b) with
  | H p, H q | X p, X q | Y p, Y q | Z p, Z q | Measure p, Measure q -> p = q
  | Rx (p, x), Rx (q, y)
  | Ry (p, x), Ry (q, y)
  | Rz (p, x), Rz (q, y)
  | Phase (p, x), Phase (q, y) ->
    p = q && Float.equal x y
  | Cnot (c, t), Cnot (c', t') | Swap (c, t), Swap (c', t') ->
    c = c' && t = t'
  | Cphase (c, t, x), Cphase (c', t', y) ->
    c = c' && t = t' && Float.equal x y
  | Barrier, Barrier -> true
  | ( ( H _ | X _ | Y _ | Z _ | Rx _ | Ry _ | Rz _ | Phase _ | Cnot _
      | Cphase _ | Swap _ | Barrier | Measure _ ),
      _ ) ->
    false

let pp ppf g =
  match g with
  | H q | X q | Y q | Z q | Measure q ->
    Format.fprintf ppf "%s q%d" (name g) q
  | Rx (q, a) | Ry (q, a) | Rz (q, a) | Phase (q, a) ->
    Format.fprintf ppf "%s(%.4f) q%d" (name g) a q
  | Cnot (c, t) | Swap (c, t) -> Format.fprintf ppf "%s q%d q%d" (name g) c t
  | Cphase (c, t, a) -> Format.fprintf ppf "cphase(%.4f) q%d q%d" a c t
  | Barrier -> Format.fprintf ppf "barrier"
