(** Quantum gate intermediate representation.

    Conventions (verified against the statevector simulator in the test
    suite):
    - [RX theta] = exp(-i theta X / 2), [RY]/[RZ] analogous;
    - [Cphase (c, t, theta)] is the ZZ-interaction
      exp(-i theta/2 Z(x)Z) = diag(e^{-i th/2}, e^{i th/2}, e^{i th/2},
      e^{-i th/2}) - the commuting two-qubit gate the paper calls CPHASE,
      decomposable as CNOT(c,t); RZ(t, theta); CNOT(c,t);
    - [Phase theta] = diag(1, e^{i theta}) (IBM u1);
    - [Barrier] is a scheduling fence across all qubits, not a gate. *)

type t =
  | H of int
  | X of int
  | Y of int
  | Z of int
  | Rx of int * float
  | Ry of int * float
  | Rz of int * float
  | Phase of int * float
  | Cnot of int * int  (** control, target *)
  | Cphase of int * int * float  (** control, target, angle *)
  | Swap of int * int
  | Barrier
  | Measure of int

val qubits : t -> int list
(** Qubits the gate acts on ([[]] for [Barrier]). *)

val is_two_qubit : t -> bool
(** True for [Cnot], [Cphase], [Swap]. *)

val is_unitary : t -> bool
(** False for [Barrier] and [Measure]. *)

val map_qubits : (int -> int) -> t -> t
(** Rename qubit indices. *)

val name : t -> string
(** Lower-case mnemonic ("h", "cx", "cphase", ...). *)

val equal : t -> t -> bool
(** Structural equality with exact float comparison on angles. *)

val pp : Format.formatter -> t -> unit
