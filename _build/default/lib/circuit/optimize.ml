let two_pi = 2.0 *. Float.pi

(* A rotation of 0 (mod 2 pi) is the identity up to global phase. *)
let zero_angle theta =
  let r = Float.rem theta two_pi in
  Float.abs r < 1e-12 || Float.abs (Float.abs r -. two_pi) < 1e-12

let is_identity = function
  | Gate.Rx (_, a) | Gate.Ry (_, a) | Gate.Rz (_, a) | Gate.Phase (_, a)
  | Gate.Cphase (_, _, a) ->
    zero_angle a
  | _ -> false

(* How a new gate [g] interacts with the adjacent previous gate [prev]
   acting on exactly the same qubit set. *)
type interaction = Cancel | Replace of Gate.t | Keep

let combine prev g =
  match (prev, g) with
  | Gate.H a, Gate.H b when a = b -> Cancel
  | Gate.X a, Gate.X b when a = b -> Cancel
  | Gate.Y a, Gate.Y b when a = b -> Cancel
  | Gate.Z a, Gate.Z b when a = b -> Cancel
  | Gate.Cnot (c, t), Gate.Cnot (c', t') when c = c' && t = t' -> Cancel
  | Gate.Swap (a, b), Gate.Swap (a', b')
    when (a = a' && b = b') || (a = b' && b = a') ->
    Cancel
  | Gate.Rx (q, x), Gate.Rx (q', y) when q = q' -> Replace (Gate.Rx (q, x +. y))
  | Gate.Ry (q, x), Gate.Ry (q', y) when q = q' -> Replace (Gate.Ry (q, x +. y))
  | Gate.Rz (q, x), Gate.Rz (q', y) when q = q' -> Replace (Gate.Rz (q, x +. y))
  | Gate.Phase (q, x), Gate.Phase (q', y) when q = q' ->
    Replace (Gate.Phase (q, x +. y))
  | Gate.Cphase (a, b, x), Gate.Cphase (a', b', y)
    when (a = a' && b = b') || (a = b' && b = a') ->
    Replace (Gate.Cphase (a, b, x +. y))
  | _ -> Keep

type buffer = {
  mutable gates : Gate.t option array;  (** None = removed *)
  mutable len : int;
  last : int array;  (** per qubit: index of the latest live gate, or -1 *)
}

let push buf g =
  if buf.len = Array.length buf.gates then begin
    let bigger = Array.make (max 16 (2 * buf.len)) None in
    Array.blit buf.gates 0 bigger 0 buf.len;
    buf.gates <- bigger
  end;
  buf.gates.(buf.len) <- Some g;
  List.iter (fun q -> buf.last.(q) <- buf.len) (Gate.qubits g);
  buf.len <- buf.len + 1

let fence buf idx =
  (* a barrier blocks optimization across it on every qubit *)
  Array.iteri (fun q _ -> buf.last.(q) <- idx) buf.last

let recompute_last buf q =
  let rec scan i =
    if i < 0 then buf.last.(q) <- -1
    else
      match buf.gates.(i) with
      | Some Gate.Barrier -> buf.last.(q) <- i
      | Some g when List.mem q (Gate.qubits g) -> buf.last.(q) <- i
      | _ -> scan (i - 1)
  in
  scan (buf.len - 1)

let kill buf i qs =
  buf.gates.(i) <- None;
  List.iter (recompute_last buf) qs

let rec insert buf g =
  if is_identity g then ()
  else
    match Gate.qubits g with
    | [] ->
      (* barrier: keep it and fence every qubit *)
      push buf g;
      fence buf (buf.len - 1)
    | qs -> (
      let anchors = List.map (fun q -> buf.last.(q)) qs in
      match anchors with
      | i :: rest when i >= 0 && List.for_all (fun j -> j = i) rest -> (
        match buf.gates.(i) with
        | Some prev when List.sort compare (Gate.qubits prev) = List.sort compare qs
          -> (
          match combine prev g with
          | Cancel -> kill buf i qs
          | Replace merged ->
            kill buf i qs;
            insert buf merged
          | Keep -> push buf g)
        | _ -> push buf g)
      | _ -> push buf g)

let one_pass circuit =
  let n = Circuit.num_qubits circuit in
  let buf = { gates = Array.make 64 None; len = 0; last = Array.make n (-1) } in
  List.iter (insert buf) (Circuit.gates circuit);
  let out = ref [] in
  for i = buf.len - 1 downto 0 do
    match buf.gates.(i) with Some g -> out := g :: !out | None -> ()
  done;
  Circuit.of_gates n !out

type stats = { gates_before : int; gates_after : int; passes : int }

let with_stats circuit =
  let gates_before = Circuit.length circuit in
  let rec fixpoint c passes =
    let c' = one_pass c in
    if Circuit.length c' = Circuit.length c then (c', passes + 1)
    else fixpoint c' (passes + 1)
  in
  let optimized, passes = fixpoint circuit 0 in
  (optimized, { gates_before; gates_after = Circuit.length optimized; passes })

let circuit c = fst (with_stats c)
