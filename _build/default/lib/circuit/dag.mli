(** Commutation-aware dependency DAG over a circuit.

    The paper notes (Sec. I) that exploiting gate reordering requires the
    compiler to "check for the commutative gates in the given circuit".
    This module builds the dependency graph under a sound commutation
    relation: two gates may be reordered iff they act on disjoint qubits
    {i or} they commute algebraically.  The relation recognised here:

    - diagonal gates (Z, RZ, U1, CPHASE) pairwise commute - the property
      behind every QAOA cost layer;
    - equal-axis rotations on the same qubit commute (RX-RX, ...);
    - a CNOT commutes with diagonal gates on its control, and with
      X/RX on its target;
    - everything else on overlapping qubits is ordered conservatively.

    [depth] under this DAG is the commutation-aware critical path: for a
    QAOA cost layer it equals the best achievable CPHASE layering bound,
    whereas {!Layering.depth} is tied to the given order. *)

type t

type node = { id : int; gate : Gate.t }

val build : Circuit.t -> t
(** O(n^2) pairwise dependency construction with transitive reduction of
    per-qubit chains; fine for compiled-circuit sizes. *)

val nodes : t -> node list
(** In circuit order. *)

val predecessors : t -> int -> int list
(** Direct dependencies of a node id. *)

val successors : t -> int -> int list

val critical_path : t -> int
(** Longest dependency chain (in gates) - a lower bound on the depth of
    any commutation-respecting reordering, ignoring qubit contention
    (commuting gates on a shared qubit still cannot run in the same
    step). *)

val depth : t -> int
(** Depth of a commutation-aware greedy schedule: each gate is placed at
    the earliest time step at or after its dependencies where all its
    qubits are idle (with backfilling into earlier idle slots).  For a
    QAOA cost layer this recovers the bin-packing bound regardless of
    the given gate order; it never exceeds, and usually beats, the
    order-tied {!Layering.depth}. *)

val schedule : t -> (node * int) list
(** The greedy schedule behind {!depth}: (node, time step) in circuit
    order; barriers carry the fence time but occupy no step. *)

val topological_order : t -> node list
(** A dependency-respecting gate order sorted by scheduled time step -
    flattening it back into a circuit realizes {!depth} under ASAP
    layering. *)

val commutes : Gate.t -> Gate.t -> bool
(** The commutation relation described above (sound, not complete). *)
