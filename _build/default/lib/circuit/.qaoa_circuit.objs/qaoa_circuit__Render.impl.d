lib/circuit/render.ml: Array Buffer Circuit Gate Layering List Printf String
