lib/circuit/metrics.mli: Circuit Format
