lib/circuit/layering.mli: Circuit Gate
