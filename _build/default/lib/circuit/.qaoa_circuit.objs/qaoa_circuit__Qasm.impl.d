lib/circuit/qasm.ml: Buffer Circuit Decompose Float Gate List Printf String
