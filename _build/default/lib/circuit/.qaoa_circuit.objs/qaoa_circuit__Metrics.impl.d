lib/circuit/metrics.ml: Circuit Decompose Format Gate Hashtbl Layering List Option
