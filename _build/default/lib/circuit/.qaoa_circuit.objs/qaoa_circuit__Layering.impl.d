lib/circuit/layering.ml: Array Circuit Gate Int List Set
