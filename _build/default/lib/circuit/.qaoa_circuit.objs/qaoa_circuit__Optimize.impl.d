lib/circuit/optimize.ml: Array Circuit Float Gate List
