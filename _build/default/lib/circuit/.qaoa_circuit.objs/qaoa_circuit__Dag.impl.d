lib/circuit/dag.ml: Array Circuit Gate Hashtbl List
