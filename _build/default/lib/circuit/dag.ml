type node = { id : int; gate : Gate.t }

type t = {
  node_list : node list;
  preds : int list array;  (** direct predecessors per node id *)
  succs : int list array;
}

let shares_qubit a b =
  let qa = Gate.qubits a and qb = Gate.qubits b in
  List.exists (fun q -> List.mem q qb) qa

let is_diagonal = function
  | Gate.Z _ | Gate.Rz _ | Gate.Phase _ | Gate.Cphase _ -> true
  | _ -> false

let is_x_axis = function Gate.X _ | Gate.Rx _ -> true | _ -> false

(* Sound (not complete) commutation check for gates sharing qubits. *)
let commutes a b =
  if not (shares_qubit a b) then true
  else if not (Gate.is_unitary a) || not (Gate.is_unitary b) then false
  else if is_diagonal a && is_diagonal b then true
  else
    let same_axis =
      match (a, b) with
      | Gate.Rx (p, _), Gate.Rx (q, _)
      | Gate.Ry (p, _), Gate.Ry (q, _)
      | Gate.Rz (p, _), Gate.Rz (q, _)
      | Gate.Phase (p, _), Gate.Phase (q, _) ->
        p = q
      | Gate.X p, Gate.X q | Gate.Y p, Gate.Y q | Gate.Z p, Gate.Z q -> p = q
      | _ -> false
    in
    if same_axis then true
    else
      (* CNOT vs 1q gates: diagonal commutes through the control, X-axis
         through the target.  Check both argument orders. *)
      let cnot_commutes cnot other =
        match cnot with
        | Gate.Cnot (c, t) ->
          let qs = Gate.qubits other in
          (is_diagonal other && qs = [ c ])
          || (is_x_axis other && qs = [ t ])
        | _ -> false
      in
      cnot_commutes a b || cnot_commutes b a

let build circuit =
  let gates = Array.of_list (Circuit.gates circuit) in
  let n = Array.length gates in
  (* barriers depend on everything before and gate everything after *)
  let depends i j =
    (* does gate j (later) depend on gate i (earlier)? *)
    match (gates.(i), gates.(j)) with
    | Gate.Barrier, _ | _, Gate.Barrier -> true
    | a, b -> shares_qubit a b && not (commutes a b)
  in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  for j = 0 to n - 1 do
    (* transitive reduction on the fly: skip i if some existing
       predecessor of j already (transitively) depends on i *)
    let reachable = Hashtbl.create 8 in
    let rec mark i =
      if not (Hashtbl.mem reachable i) then begin
        Hashtbl.replace reachable i ();
        List.iter mark preds.(i)
      end
    in
    for i = j - 1 downto 0 do
      if (not (Hashtbl.mem reachable i)) && depends i j then begin
        preds.(j) <- i :: preds.(j);
        succs.(i) <- j :: succs.(i);
        mark i
      end
    done
  done;
  let node_list = List.init n (fun id -> { id; gate = gates.(id) }) in
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  { node_list; preds; succs }

let nodes t = t.node_list
let predecessors t id = t.preds.(id)
let successors t id = t.succs.(id)

let gate_weights t =
  let gates = Array.of_list (List.map (fun n -> n.gate) t.node_list) in
  (* barriers take part in the ordering but occupy no time step *)
  fun i -> match gates.(i) with Gate.Barrier -> 0 | _ -> 1

let critical_path t =
  let n = Array.length t.preds in
  let weight = gate_weights t in
  let level = Array.make n 0 in
  (* node ids are in circuit order, so predecessors have smaller ids *)
  let d = ref 0 in
  for id = 0 to n - 1 do
    level.(id) <-
      List.fold_left
        (fun acc p -> max acc (level.(p) + weight p))
        0 t.preds.(id);
    d := max !d (level.(id) + weight id)
  done;
  !d

(* Greedy resource-constrained schedule with backfilling: a gate goes to
   the earliest step at or after all its dependencies finish where every
   one of its qubits is idle. *)
let schedule t =
  let n = Array.length t.preds in
  let weight = gate_weights t in
  let finish = Array.make n 0 in
  let busy = Hashtbl.create 64 in
  let assigned =
    List.map
      (fun node ->
        let id = node.id in
        let earliest =
          List.fold_left (fun acc p -> max acc finish.(p)) 0 t.preds.(id)
        in
        let qs = Gate.qubits node.gate in
        let time =
          if weight id = 0 then earliest (* barrier: fence only *)
          else begin
            let rec free t =
              if List.exists (fun q -> Hashtbl.mem busy (q, t)) qs then
                free (t + 1)
              else t
            in
            let t = free earliest in
            List.iter (fun q -> Hashtbl.replace busy (q, t) ()) qs;
            t
          end
        in
        finish.(id) <- time + weight id;
        (node, time))
      t.node_list
  in
  assigned

let depth t =
  List.fold_left
    (fun acc (node, time) ->
      match node.gate with Gate.Barrier -> acc | _ -> max acc (time + 1))
    0 (schedule t)

let topological_order t =
  let sched = schedule t in
  List.stable_sort
    (fun (_, ta) (_, tb) -> compare ta tb)
    sched
  |> List.map fst
