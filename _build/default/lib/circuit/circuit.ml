type t = { num_qubits : int; rev_gates : Gate.t list; len : int }

let create n =
  if n < 0 then invalid_arg "Circuit.create: negative qubit count";
  { num_qubits = n; rev_gates = []; len = 0 }

let check_gate t g =
  List.iter
    (fun q ->
      if q < 0 || q >= t.num_qubits then
        invalid_arg
          (Printf.sprintf "Circuit: qubit %d out of range (n=%d)" q
             t.num_qubits))
    (Gate.qubits g)

let append t g =
  check_gate t g;
  { t with rev_gates = g :: t.rev_gates; len = t.len + 1 }

let append_list t gs = List.fold_left append t gs
let of_gates n gs = append_list (create n) gs
let num_qubits t = t.num_qubits
let gates t = List.rev t.rev_gates
let length t = t.len

let concat a b =
  if a.num_qubits <> b.num_qubits then
    invalid_arg "Circuit.concat: qubit count mismatch";
  {
    num_qubits = a.num_qubits;
    rev_gates = b.rev_gates @ a.rev_gates;
    len = a.len + b.len;
  }

let map_qubits f t = of_gates t.num_qubits (List.map (Gate.map_qubits f) (gates t))

let with_num_qubits n t =
  if n < t.num_qubits then
    List.iter (fun g -> List.iter (fun q -> if q >= n then
      invalid_arg "Circuit.with_num_qubits: gate out of range") (Gate.qubits g))
      t.rev_gates;
  { t with num_qubits = n }

let filter p t =
  let kept = List.filter p t.rev_gates in
  { t with rev_gates = kept; len = List.length kept }

let used_qubits t =
  let module S = Set.Make (Int) in
  let set =
    List.fold_left
      (fun acc g -> List.fold_left (fun acc q -> S.add q acc) acc (Gate.qubits g))
      S.empty t.rev_gates
  in
  S.elements set

let measure_all t =
  append_list t (List.init t.num_qubits (fun q -> Gate.Measure q))

let two_qubit_pairs t =
  List.filter_map
    (fun g ->
      if Gate.is_two_qubit g then
        match Gate.qubits g with
        | [ a; b ] -> Some (min a b, max a b)
        | _ -> None
      else None)
    (gates t)

let equal a b =
  a.num_qubits = b.num_qubits
  && a.len = b.len
  && List.for_all2 Gate.equal a.rev_gates b.rev_gates

let pp ppf t =
  Format.fprintf ppf "circuit(%d qubits, %d gates):@." t.num_qubits t.len;
  List.iter (fun g -> Format.fprintf ppf "  %a@." Gate.pp g) (gates t)
