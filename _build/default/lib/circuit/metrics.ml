type t = {
  depth : int;
  gate_count : int;
  two_qubit_count : int;
  measure_count : int;
}

let of_circuit c =
  let d = Decompose.circuit c in
  let gate_count = ref 0 in
  let two_qubit_count = ref 0 in
  let measure_count = ref 0 in
  List.iter
    (fun g ->
      match g with
      | Gate.Barrier -> ()
      | Gate.Measure _ -> incr measure_count
      | _ ->
        incr gate_count;
        if Gate.is_two_qubit g then incr two_qubit_count)
    (Circuit.gates d);
  {
    depth = Layering.depth d;
    gate_count = !gate_count;
    two_qubit_count = !two_qubit_count;
    measure_count = !measure_count;
  }

let counts_by_name c =
  let d = Decompose.circuit c in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun g ->
      match g with
      | Gate.Barrier -> ()
      | _ ->
        let k = Gate.name g in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (Circuit.gates d);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let pp ppf t =
  Format.fprintf ppf "depth=%d gates=%d cx=%d measures=%d" t.depth
    t.gate_count t.two_qubit_count t.measure_count
