let statement buf g =
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ ";\n")) fmt in
  match g with
  | Gate.H q -> add "h q[%d]" q
  | Gate.X q -> add "x q[%d]" q
  | Gate.Y q -> add "y q[%d]" q
  | Gate.Z q -> add "z q[%d]" q
  | Gate.Rx (q, a) -> add "rx(%.12g) q[%d]" a q
  | Gate.Ry (q, a) -> add "ry(%.12g) q[%d]" a q
  | Gate.Rz (q, a) -> add "rz(%.12g) q[%d]" a q
  | Gate.Phase (q, a) -> add "u1(%.12g) q[%d]" a q
  | Gate.Cnot (c, t) -> add "cx q[%d],q[%d]" c t
  | Gate.Barrier -> add "barrier q"
  | Gate.Measure q -> add "measure q[%d] -> c[%d]" q q
  | Gate.Cphase _ | Gate.Swap _ -> assert false (* decomposed below *)

let to_string c =
  let gates =
    List.concat_map
      (fun g ->
        match g with
        | Gate.Cphase _ | Gate.Swap _ -> Decompose.gate g
        | _ -> [ g ])
      (Circuit.gates c)
  in
  let has_measure =
    List.exists (function Gate.Measure _ -> true | _ -> false) gates
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" (Circuit.num_qubits c));
  if has_measure then
    Buffer.add_string buf (Printf.sprintf "creg c[%d];\n" (Circuit.num_qubits c));
  List.iter (statement buf) gates;
  Buffer.contents buf

let print c = print_string (to_string c)

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let fail_at line msg = failwith (Printf.sprintf "qasm: line %d: %s" line msg)

(* Angle expressions: signed products/quotients of numbers and [pi],
   e.g. "0.5", "-pi/4", "3*pi/2". *)
let parse_angle line s =
  let s = String.trim s in
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let atom () =
    skip_ws ();
    let neg =
      match peek () with
      | Some '-' ->
        incr pos;
        true
      | Some '+' ->
        incr pos;
        false
      | _ -> false
    in
    skip_ws ();
    let start = !pos in
    if !pos + 2 <= n && String.sub s !pos 2 = "pi" then begin
      pos := !pos + 2;
      if neg then -.Float.pi else Float.pi
    end
    else begin
      while
        !pos < n
        && (match s.[!pos] with
           | '0' .. '9' | '.' | 'e' | 'E' -> true
           | '-' | '+' ->
             (* exponent sign only *)
             !pos > start && (s.[!pos - 1] = 'e' || s.[!pos - 1] = 'E')
           | _ -> false)
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> if neg then -.f else f
      | None -> fail_at line ("bad angle: " ^ s)
    end
  in
  let rec products acc =
    skip_ws ();
    match peek () with
    | Some '*' ->
      incr pos;
      products (acc *. atom ())
    | Some '/' ->
      incr pos;
      products (acc /. atom ())
    | None -> acc
    | Some c -> fail_at line (Printf.sprintf "unexpected '%c' in angle" c)
  in
  products (atom ())

let parse_qubit line reg s =
  let s = String.trim s in
  match (String.index_opt s '[', String.index_opt s ']') with
  | Some l, Some r when r > l ->
    let name = String.trim (String.sub s 0 l) in
    if reg <> "" && name <> reg then
      fail_at line ("unknown register " ^ name);
    (match int_of_string_opt (String.sub s (l + 1) (r - l - 1)) with
    | Some i -> i
    | None -> fail_at line ("bad qubit index in " ^ s))
  | _ -> fail_at line ("expected reg[i], got " ^ s)

(* Split "name(arg) operands" into (name, Some arg, operands). *)
let split_statement line stmt =
  let stmt = String.trim stmt in
  match String.index_opt stmt '(' with
  | Some l -> (
    match String.index_opt stmt ')' with
    | Some r when r > l ->
      let name = String.trim (String.sub stmt 0 l) in
      let arg = String.sub stmt (l + 1) (r - l - 1) in
      let rest = String.sub stmt (r + 1) (String.length stmt - r - 1) in
      (name, Some arg, String.trim rest)
    | _ -> fail_at line "unbalanced parentheses")
  | None -> (
    match String.index_opt stmt ' ' with
    | Some sp ->
      ( String.sub stmt 0 sp,
        None,
        String.trim (String.sub stmt (sp + 1) (String.length stmt - sp - 1)) )
    | None -> (stmt, None, ""))

let strip_comment l =
  let rec find i =
    if i + 1 >= String.length l then None
    else if l.[i] = '/' && l.[i + 1] = '/' then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub l 0 i | None -> l

let of_string text =
  let reg = ref "" in
  let size = ref (-1) in
  let gates = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno raw ->
      let line = lineno + 1 in
      let content = String.trim (strip_comment raw) in
      let statements =
        List.filter
          (fun s -> String.trim s <> "")
          (String.split_on_char ';' content)
      in
      List.iter
        (fun stmt ->
          let name, arg, operands = split_statement line stmt in
          let operand_list =
            List.map String.trim (String.split_on_char ',' operands)
          in
          let qubit1 () =
            match operand_list with
            | [ q ] -> parse_qubit line !reg q
            | _ -> fail_at line ("expected one operand for " ^ name)
          in
          let qubit2 () =
            match operand_list with
            | [ a; b ] -> (parse_qubit line !reg a, parse_qubit line !reg b)
            | _ -> fail_at line ("expected two operands for " ^ name)
          in
          let angle () =
            match arg with
            | Some a -> parse_angle line a
            | None -> fail_at line (name ^ " needs an angle")
          in
          match String.uppercase_ascii name with
          | "OPENQASM" -> ()
          | _ -> (
            match name with
            | "include" | "creg" -> ()
            | "qreg" -> (
              match operand_list with
              | [ q ] -> (
                match (String.index_opt q '[', String.index_opt q ']') with
                | Some l, Some r when r > l ->
                  reg := String.trim (String.sub q 0 l);
                  size :=
                    (match
                       int_of_string_opt (String.sub q (l + 1) (r - l - 1))
                     with
                    | Some s when s >= 0 -> s
                    | _ -> fail_at line "bad register size")
                | _ -> fail_at line "bad qreg declaration")
              | _ -> fail_at line "bad qreg declaration")
            | "h" -> gates := Gate.H (qubit1 ()) :: !gates
            | "x" -> gates := Gate.X (qubit1 ()) :: !gates
            | "y" -> gates := Gate.Y (qubit1 ()) :: !gates
            | "z" -> gates := Gate.Z (qubit1 ()) :: !gates
            | "rx" -> gates := Gate.Rx (qubit1 (), angle ()) :: !gates
            | "ry" -> gates := Gate.Ry (qubit1 (), angle ()) :: !gates
            | "rz" -> gates := Gate.Rz (qubit1 (), angle ()) :: !gates
            | "u1" | "p" -> gates := Gate.Phase (qubit1 (), angle ()) :: !gates
            | "cx" ->
              let c, t = qubit2 () in
              gates := Gate.Cnot (c, t) :: !gates
            | "swap" ->
              let a, b = qubit2 () in
              gates := Gate.Swap (a, b) :: !gates
            | "barrier" -> gates := Gate.Barrier :: !gates
            | "measure" -> (
              (* "measure q[i] -> c[j]" *)
              match String.index_opt operands '-' with
              | Some arrow ->
                gates :=
                  Gate.Measure
                    (parse_qubit line !reg (String.sub operands 0 arrow))
                  :: !gates
              | None -> fail_at line "measure needs -> target")
            | other -> fail_at line ("unsupported statement: " ^ other)))
        statements)
    lines;
  if !size < 0 then failwith "qasm: missing qreg declaration";
  Circuit.of_gates !size (List.rev !gates)
