let cell_labels g =
  match g with
  | Gate.H q -> [ (q, "H") ]
  | Gate.X q -> [ (q, "X") ]
  | Gate.Y q -> [ (q, "Y") ]
  | Gate.Z q -> [ (q, "Z") ]
  | Gate.Rx (q, _) -> [ (q, "RX") ]
  | Gate.Ry (q, _) -> [ (q, "RY") ]
  | Gate.Rz (q, _) -> [ (q, "RZ") ]
  | Gate.Phase (q, _) -> [ (q, "P") ]
  | Gate.Cnot (c, t) -> [ (c, "o"); (t, "X") ]
  | Gate.Cphase (a, b, _) -> [ (a, "#"); (b, "#") ]
  | Gate.Swap (a, b) -> [ (a, "x"); (b, "x") ]
  | Gate.Measure q -> [ (q, "M") ]
  | Gate.Barrier -> []

let to_string circuit =
  let n = Circuit.num_qubits circuit in
  let layers = Layering.layers circuit in
  let columns =
    List.map
      (fun layer ->
        let cells = Array.make n "" in
        List.iter
          (fun g -> List.iter (fun (q, s) -> cells.(q) <- s) (cell_labels g))
          layer;
        let width = Array.fold_left (fun acc s -> max acc (String.length s)) 1 cells in
        (cells, width))
      layers
  in
  let buf = Buffer.create 256 in
  let label_width = String.length (string_of_int (max 0 (n - 1))) in
  for q = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "q%-*d: " label_width q);
    List.iter
      (fun (cells, width) ->
        Buffer.add_char buf '-';
        let s = cells.(q) in
        Buffer.add_string buf s;
        Buffer.add_string buf (String.make (width - String.length s) '-'))
      columns;
    Buffer.add_char buf '-';
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let print c = print_string (to_string c)
