(** Plain-ASCII circuit diagrams.

    One text line per qubit, one column per ASAP layer:

    {v
    q0: -H--o-------M-
    q1: ----X--RZ---M-
    v}

    Cell mnemonics: [o] CNOT control, [X] CNOT target, [x] both ends of a
    SWAP, [#] both ends of a CPHASE, [M] measure, gate names otherwise
    (rotation angles are omitted - diagrams show structure, not
    parameters).  Intended for examples, docs and debugging; the QASM
    exporter is the machine-readable path. *)

val to_string : Circuit.t -> string

val print : Circuit.t -> unit
