(** Decomposition into the hardware basis.

    IBM-style devices natively support one-qubit rotations plus CNOT
    (Sec. II "Basis Gates").  Multi-qubit non-native gates are lowered:
    - CPHASE(c, t, theta)  ->  CNOT(c,t); RZ(t, theta); CNOT(c,t)
      (Fig. 1(d); the RZ is implemented virtually on IBM hardware, hence
      CPHASE success rate = CNOT success rate squared, Sec. IV.D);
    - SWAP(a, b)  ->  CNOT(a,b); CNOT(b,a); CNOT(a,b).

    One-qubit gates are already native and pass through unchanged. *)

val gate : Gate.t -> Gate.t list
(** Basis gates realizing one IR gate. *)

val circuit : Circuit.t -> Circuit.t
(** Lower every gate of the circuit. *)

val is_basis : Gate.t -> bool
(** True if the gate is native ([Cphase] and [Swap] are not). *)

val orient : allowed:(int * int) list -> Circuit.t -> Circuit.t
(** Direction-constrained lowering: on real IBM devices each coupling
    supports CNOT in one native direction; a reversed CNOT costs four
    extra Hadamards (CX(a,b) = (H(x)H) CX(b,a) (H(x)H)).  [allowed]
    lists the native [(control, target)] directions; the input is first
    decomposed to the basis, then every CNOT whose direction is not
    allowed is conjugated.  CNOTs on pairs absent from [allowed] in both
    directions raise [Invalid_argument] (route first). *)
