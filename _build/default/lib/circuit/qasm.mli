(** OpenQASM 2.0 export.

    Produces a textual program loadable by common toolchains (qiskit,
    tket), so compiled circuits can be cross-checked externally.  [Cphase]
    and [Swap] are emitted in decomposed (basis) form; [Barrier] spans the
    whole register. *)

val to_string : Circuit.t -> string
(** Full program: header, register declarations, one statement per gate.
    A classical register is declared iff the circuit measures. *)

val print : Circuit.t -> unit

val of_string : string -> Circuit.t
(** Parse the OpenQASM 2.0 subset this module emits (plus [swap],
    [u1]/[p], [rx/ry/rz], [h/x/y/z], [cx], [barrier], [measure], [pi]
    arithmetic in angles, comments and blank lines).  One quantum
    register with an arbitrary name is supported; [to_string] then
    [of_string] round-trips up to CPHASE/SWAP lowering (exported
    circuits come back in basis form).
    @raise Failure with a line-numbered message on unsupported or
    malformed input. *)
