let schedule circuit =
  (* ASAP: each gate lands in layer 1 + max(finish time of its qubits).
     Returns (assignments in program order, total depth). *)
  let n = Circuit.num_qubits circuit in
  let free_at = Array.make n 0 in
  let fence = ref 0 in
  let depth = ref 0 in
  let assign = ref [] in
  List.iter
    (fun g ->
      match g with
      | Gate.Barrier ->
        fence := !depth
      | _ ->
        let qs = Gate.qubits g in
        let start =
          List.fold_left (fun acc q -> max acc free_at.(q)) !fence qs
        in
        let layer = start in
        List.iter (fun q -> free_at.(q) <- layer + 1) qs;
        depth := max !depth (layer + 1);
        assign := (g, layer) :: !assign)
    (Circuit.gates circuit);
  (List.rev !assign, !depth)

let layers circuit =
  let assign, depth = schedule circuit in
  let buckets = Array.make depth [] in
  List.iter (fun (g, l) -> buckets.(l) <- g :: buckets.(l)) assign;
  Array.to_list (Array.map List.rev buckets)

let alap_layers circuit =
  (* ALAP = ASAP of the reversed circuit, layers then read back to front.
     Gate order inside each layer is irrelevant (layers are
     qubit-disjoint). *)
  let reversed =
    Circuit.of_gates (Circuit.num_qubits circuit)
      (List.rev (Circuit.gates circuit))
  in
  List.rev (layers reversed)

let depth circuit = snd (schedule circuit)

let qubit_busy_time circuit =
  let n = Circuit.num_qubits circuit in
  let busy = Array.make n 0 in
  List.iter
    (fun (g, _) -> List.iter (fun q -> busy.(q) <- busy.(q) + 1) (Gate.qubits g))
    (fst (schedule circuit));
  busy

let check_layers_disjoint layers =
  List.for_all
    (fun layer ->
      let module S = Set.Make (Int) in
      let rec go seen = function
        | [] -> true
        | g :: rest ->
          let qs = Gate.qubits g in
          if List.exists (fun q -> S.mem q seen) qs then false
          else go (List.fold_left (fun s q -> S.add q s) seen qs) rest
      in
      go S.empty layer)
    layers
