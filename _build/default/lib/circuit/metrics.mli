(** Compiled-circuit quality metrics (paper Sec. V.A).

    All metrics are computed on the basis-decomposed circuit so that
    [depth] is the critical-path length in native time steps and
    [gate_count] is the "total number of native gate operations". *)

type t = {
  depth : int;  (** ASAP critical path, measurements included *)
  gate_count : int;  (** native unitary gates (measures/barriers excluded) *)
  two_qubit_count : int;  (** CNOTs after decomposition *)
  measure_count : int;
}

val of_circuit : Circuit.t -> t
(** Decomposes, then measures.  Idempotent on already-decomposed
    circuits. *)

val counts_by_name : Circuit.t -> (string * int) list
(** Histogram of gate mnemonics after decomposition, sorted by name. *)

val pp : Format.formatter -> t -> unit
