(** Peephole circuit optimization: cancellation of adjacent self-inverse
    gate pairs and merging of adjacent rotations.

    Two gates are "adjacent" when no other gate touches any of their
    qubits in between ([Barrier] fences all qubits).  Rules applied to a
    fixpoint:

    - self-inverse pairs cancel: H-H, X-X, Y-Y, Z-Z, CNOT-CNOT (same
      orientation), SWAP-SWAP;
    - rotations about the same axis merge: RX+RX, RY+RY, RZ+RZ, U1+U1,
      CPHASE+CPHASE (either qubit order - the gate is symmetric);
    - rotations whose angle is 0 (mod 2 pi) are dropped (a 2 pi rotation
      is a global phase).

    All rewrites preserve the circuit semantics up to global phase
    (property-tested).  The pass pays off most after routing and
    decomposition, where SWAP and CPHASE lowerings place cancelling
    CNOTs back to back. *)

val circuit : Circuit.t -> Circuit.t
(** Optimize to a fixpoint.  Never increases the gate count. *)

type stats = { gates_before : int; gates_after : int; passes : int }

val with_stats : Circuit.t -> Circuit.t * stats
