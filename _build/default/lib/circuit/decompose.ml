let gate = function
  | Gate.Cphase (c, t, theta) ->
    [ Gate.Cnot (c, t); Gate.Rz (t, theta); Gate.Cnot (c, t) ]
  | Gate.Swap (a, b) -> [ Gate.Cnot (a, b); Gate.Cnot (b, a); Gate.Cnot (a, b) ]
  | g -> [ g ]

let circuit c =
  Circuit.of_gates (Circuit.num_qubits c)
    (List.concat_map gate (Circuit.gates c))

let is_basis = function
  | Gate.Cphase _ | Gate.Swap _ -> false
  | Gate.H _ | Gate.X _ | Gate.Y _ | Gate.Z _ | Gate.Rx _ | Gate.Ry _
  | Gate.Rz _ | Gate.Phase _ | Gate.Cnot _ | Gate.Barrier | Gate.Measure _ ->
    true

let orient ~allowed c =
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let allowed_set = S.of_list allowed in
  let lower g =
    match g with
    | Gate.Cnot (a, b) ->
      if S.mem (a, b) allowed_set then [ g ]
      else if S.mem (b, a) allowed_set then
        [ Gate.H a; Gate.H b; Gate.Cnot (b, a); Gate.H a; Gate.H b ]
      else
        invalid_arg
          (Printf.sprintf "Decompose.orient: pair (%d,%d) has no native direction" a b)
    | _ -> [ g ]
  in
  Circuit.of_gates (Circuit.num_qubits c)
    (List.concat_map lower (Circuit.gates (circuit c)))
