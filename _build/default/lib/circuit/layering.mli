(** As-soon-as-possible (ASAP) scheduling of a circuit into layers of
    concurrently executable gates.

    Two consecutive gates can execute in the same time step iff they act on
    disjoint qubit sets (paper Sec. I); [Barrier] forces a fence across all
    qubits.  Circuit depth - the paper's critical-path metric (Sec. V.A) -
    is the number of layers of this schedule. *)

val layers : Circuit.t -> Gate.t list list
(** Gates grouped by time step, in execution order.  Barriers are consumed
    (they constrain the schedule but appear in no layer). *)

val alap_layers : Circuit.t -> Gate.t list list
(** As-late-as-possible schedule: same depth and gate multiset as
    {!layers}, but gates sink toward their consumers, shrinking the idle
    window before each qubit's last use - which reduces the decoherence
    exposure {!Qaoa_hardware.Coherence} charges for. *)

val depth : Circuit.t -> int
(** Number of layers. *)

val qubit_busy_time : Circuit.t -> int array
(** Per-qubit count of time steps in which that qubit hosts a gate. *)

val check_layers_disjoint : Gate.t list list -> bool
(** Validation helper: no two gates in the same layer share a qubit. *)
