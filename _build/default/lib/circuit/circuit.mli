(** Quantum circuits: an ordered gate sequence over [n] qubits.

    The representation is persistent; [append] is O(1) amortized thanks to
    an internally reversed gate list, so building circuits gate-by-gate in
    the compilation passes stays linear. *)

type t

val create : int -> t
(** Empty circuit on [n] qubits.  @raise Invalid_argument if [n < 0]. *)

val of_gates : int -> Gate.t list -> t
(** @raise Invalid_argument if any gate touches a qubit outside
    [0..n-1]. *)

val num_qubits : t -> int

val gates : t -> Gate.t list
(** Gates in program order. *)

val append : t -> Gate.t -> t
(** Add one gate at the end.  @raise Invalid_argument on out-of-range
    qubits. *)

val append_list : t -> Gate.t list -> t

val concat : t -> t -> t
(** [concat a b] runs [a] then [b]; both must have the same qubit count.
    This is the "stitching" primitive of incremental compilation. *)

val length : t -> int
(** Number of gates (barriers included). *)

val map_qubits : (int -> int) -> t -> t
(** Rename all qubit indices (e.g. apply a logical-to-physical mapping).
    The function must stay within range. *)

val with_num_qubits : int -> t -> t
(** Reinterpret on a wider register.  @raise Invalid_argument if an
    existing gate would fall out of range. *)

val filter : (Gate.t -> bool) -> t -> t

val used_qubits : t -> int list
(** Sorted list of qubits touched by at least one gate. *)

val measure_all : t -> t
(** Append a [Measure] on every qubit. *)

val two_qubit_pairs : t -> (int * int) list
(** Unordered qubit pairs of every two-qubit gate, in program order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
