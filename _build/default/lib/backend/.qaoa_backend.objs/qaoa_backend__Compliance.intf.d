lib/backend/compliance.mli: Qaoa_circuit Qaoa_hardware
