lib/backend/compliance.ml: Format List Qaoa_circuit Qaoa_hardware
