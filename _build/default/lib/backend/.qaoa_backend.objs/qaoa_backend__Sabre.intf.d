lib/backend/sabre.mli: Mapping Qaoa_circuit Qaoa_hardware Router
