lib/backend/stitcher.mli: Qaoa_circuit Router
