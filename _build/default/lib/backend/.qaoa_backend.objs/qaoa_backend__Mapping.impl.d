lib/backend/mapping.ml: Array Format Option Qaoa_util
