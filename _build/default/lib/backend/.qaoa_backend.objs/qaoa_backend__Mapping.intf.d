lib/backend/mapping.mli: Format Qaoa_util
