lib/backend/stitcher.ml: List Qaoa_circuit Router
