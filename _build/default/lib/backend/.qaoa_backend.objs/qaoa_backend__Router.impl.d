lib/backend/router.ml: Float Int List Mapping Option Qaoa_circuit Qaoa_graph Qaoa_hardware Qaoa_util Set
