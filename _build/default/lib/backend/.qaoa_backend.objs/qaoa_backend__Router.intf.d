lib/backend/router.mli: Mapping Qaoa_circuit Qaoa_hardware
