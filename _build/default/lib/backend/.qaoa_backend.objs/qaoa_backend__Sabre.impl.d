lib/backend/sabre.ml: Array Float Int List Mapping Qaoa_circuit Qaoa_graph Qaoa_hardware Qaoa_util Router Set
