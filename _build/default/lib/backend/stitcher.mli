(** Stitching of partial compiled circuits (paper Fig. 2, the IC/VIC
    "Stitching Partial Circuits" box).

    Incremental compilation compiles one CPHASE layer at a time against
    the mapping left by the previous partial compilation; the physical
    partial circuits then concatenate directly (no re-mapping needed,
    since each partial compilation starts exactly where the previous one
    ended). *)

val stitch : Qaoa_circuit.Circuit.t list -> Qaoa_circuit.Circuit.t
(** Concatenate partial circuits in order.
    @raise Invalid_argument on the empty list or mismatched register
    sizes. *)

val stitch_results : Router.result list -> Router.result
(** Concatenate router results: circuits are stitched, swap counts summed,
    and the final mapping is the last result's mapping.
    @raise Invalid_argument on the empty list. *)
