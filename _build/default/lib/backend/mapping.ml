type t = { l2p : int array; p2l : int array }

let of_array ~num_physical l2p =
  let k = Array.length l2p in
  if k > num_physical then
    invalid_arg "Mapping.of_array: more logical than physical qubits";
  let p2l = Array.make num_physical (-1) in
  Array.iteri
    (fun l p ->
      if p < 0 || p >= num_physical then
        invalid_arg "Mapping.of_array: physical qubit out of range";
      if p2l.(p) <> -1 then invalid_arg "Mapping.of_array: duplicate target";
      p2l.(p) <- l)
    l2p;
  { l2p = Array.copy l2p; p2l }

let trivial ~num_logical ~num_physical =
  of_array ~num_physical (Array.init num_logical (fun i -> i))

let random rng ~num_logical ~num_physical =
  let perm = Qaoa_util.Rng.permutation rng num_physical in
  of_array ~num_physical (Array.sub perm 0 num_logical)

let num_logical t = Array.length t.l2p
let num_physical t = Array.length t.p2l

let phys t l =
  if l < 0 || l >= Array.length t.l2p then
    invalid_arg "Mapping.phys: logical qubit out of range";
  t.l2p.(l)

let logical_at t p =
  if p < 0 || p >= Array.length t.p2l then
    invalid_arg "Mapping.logical_at: physical qubit out of range";
  if t.p2l.(p) = -1 then None else Some t.p2l.(p)

let is_allocated t p = Option.is_some (logical_at t p)

let swap_physical t p q =
  let l2p = Array.copy t.l2p and p2l = Array.copy t.p2l in
  let lp = p2l.(p) and lq = p2l.(q) in
  p2l.(p) <- lq;
  p2l.(q) <- lp;
  if lp <> -1 then l2p.(lp) <- q;
  if lq <> -1 then l2p.(lq) <- p;
  { l2p; p2l }

let to_alist t = Array.to_list (Array.mapi (fun l p -> (l, p)) t.l2p)
let l2p_array t = Array.copy t.l2p
let equal a b = a.l2p = b.l2p && a.p2l = b.p2l

let pp ppf t =
  Format.fprintf ppf "{";
  Array.iteri (fun l p -> Format.fprintf ppf " q%d->%d" l p) t.l2p;
  Format.fprintf ppf " }"
