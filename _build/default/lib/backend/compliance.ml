module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Device = Qaoa_hardware.Device

type violation = { gate_index : int; gate : Gate.t }

let violations device circuit =
  let _, acc =
    List.fold_left
      (fun (i, acc) g ->
        let bad =
          Gate.is_two_qubit g
          &&
          match Gate.qubits g with
          | [ a; b ] -> not (Device.coupled device a b)
          | _ -> false
        in
        (i + 1, if bad then { gate_index = i; gate = g } :: acc else acc))
      (0, []) (Circuit.gates circuit)
  in
  List.rev acc

let is_compliant device circuit = violations device circuit = []

let check_exn device circuit =
  match violations device circuit with
  | [] -> ()
  | { gate_index; gate } :: _ ->
    failwith
      (Format.asprintf "coupling violation at gate %d: %a on %s" gate_index
         Gate.pp gate device.Device.name)
