module Circuit = Qaoa_circuit.Circuit

let stitch = function
  | [] -> invalid_arg "Stitcher.stitch: no partial circuits"
  | first :: rest -> List.fold_left Circuit.concat first rest

let stitch_results results =
  match List.rev results with
  | [] -> invalid_arg "Stitcher.stitch_results: no partial results"
  | last :: _ ->
    {
      Router.circuit =
        stitch (List.map (fun (r : Router.result) -> r.circuit) results);
      final_mapping = last.Router.final_mapping;
      swap_count =
        List.fold_left
          (fun acc (r : Router.result) -> acc + r.swap_count)
          0 results;
    }
