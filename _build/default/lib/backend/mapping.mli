(** Logical-to-physical qubit mappings.

    An injective assignment of [k] logical (program) qubits to [n >= k]
    physical (hardware) qubits.  Mappings are persistent values; SWAP
    insertion produces updated copies, which lets incremental compilation
    snapshot the mapping at every layer boundary (Fig. 5's "Qubit Mapping
    at layer i" columns). *)

type t

val of_array : num_physical:int -> int array -> t
(** [of_array ~num_physical l2p] maps logical [i] to [l2p.(i)].
    @raise Invalid_argument unless entries are distinct and within
    [0..num_physical-1]. *)

val trivial : num_logical:int -> num_physical:int -> t
(** Logical [i] on physical [i]. *)

val random : Qaoa_util.Rng.t -> num_logical:int -> num_physical:int -> t
(** Uniform injection - the NAIVE initial mapping. *)

val num_logical : t -> int
val num_physical : t -> int

val phys : t -> int -> int
(** Physical location of a logical qubit. *)

val logical_at : t -> int -> int option
(** Logical qubit hosted by a physical qubit, if any. *)

val is_allocated : t -> int -> bool
(** Does the physical qubit host a logical qubit? *)

val swap_physical : t -> int -> int -> t
(** Exchange the contents of two physical qubits (either may be empty) -
    the mapping update a SWAP gate induces. *)

val to_alist : t -> (int * int) list
(** [(logical, physical)] pairs sorted by logical index. *)

val l2p_array : t -> int array
(** Copy of the logical-to-physical table. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
