(** Coupling-constraint validation of compiled circuits.

    Used as a router post-condition in tests and assertions: every
    two-qubit gate of a hardware-compliant circuit must act on a coupled
    physical pair. *)

type violation = { gate_index : int; gate : Qaoa_circuit.Gate.t }

val violations : Qaoa_hardware.Device.t -> Qaoa_circuit.Circuit.t -> violation list
(** Two-qubit gates on uncoupled pairs, in program order. *)

val is_compliant : Qaoa_hardware.Device.t -> Qaoa_circuit.Circuit.t -> bool

val check_exn : Qaoa_hardware.Device.t -> Qaoa_circuit.Circuit.t -> unit
(** @raise Failure describing the first violation, if any. *)
