module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit

type params = { gammas : float array; betas : float array }

let params_p1 ~gamma ~beta = { gammas = [| gamma |]; betas = [| beta |] }

let levels p =
  if Array.length p.gammas <> Array.length p.betas then
    invalid_arg "Ansatz.levels: gamma/beta length mismatch";
  Array.length p.gammas

let quad_coeff problem =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (i, j, c) -> Hashtbl.replace tbl (i, j) c)
    problem.Problem.quadratic;
  fun (i, j) ->
    match Hashtbl.find_opt tbl (min i j, max i j) with
    | Some c -> c
    | None -> invalid_arg "Ansatz: pair is not a quadratic term"

let check_order problem order =
  let norm l = List.sort compare (List.map (fun (i, j) -> (min i j, max i j)) l) in
  if norm order <> Problem.cphase_pairs problem then
    invalid_arg "Ansatz: order is not a permutation of the problem's pairs"

let cphase_gate problem ~gamma (i, j) =
  let coeff = quad_coeff problem in
  Gate.Cphase (i, j, 2.0 *. gamma *. coeff (i, j))

let linear_gates problem ~gamma =
  List.map
    (fun (i, h) -> Gate.Rz (i, 2.0 *. gamma *. h))
    problem.Problem.linear

let cost_layer_gates ?order problem ~gamma =
  let pairs =
    match order with
    | None -> Problem.cphase_pairs problem
    | Some o ->
      check_order problem o;
      o
  in
  let coeff = quad_coeff problem in
  (* exp(-i g * c * Z Z) = Cphase(theta) with theta = 2 g c;
     exp(-i g * h * Z)   = RZ(2 g h). *)
  let cphases =
    List.map
      (fun (i, j) -> Gate.Cphase (i, j, 2.0 *. gamma *. coeff (i, j)))
      pairs
  in
  cphases @ linear_gates problem ~gamma

let mixer_gates problem ~beta =
  List.init problem.Problem.num_vars (fun q -> Gate.Rx (q, 2.0 *. beta))

let circuit ?(measure = true) ?orders problem params =
  let p = levels params in
  let orders =
    match orders with
    | None -> List.init p (fun _ -> None)
    | Some os ->
      if List.length os <> p then
        invalid_arg "Ansatz.circuit: one order per level expected";
      List.map Option.some os
  in
  let c = ref (Circuit.create problem.Problem.num_vars) in
  let add gs = c := Circuit.append_list !c gs in
  add (List.init problem.Problem.num_vars (fun q -> Gate.H q));
  List.iteri
    (fun l order ->
      add (cost_layer_gates ?order problem ~gamma:params.gammas.(l));
      add (mixer_gates problem ~beta:params.betas.(l)))
    orders;
  if measure then c := Circuit.measure_all !c;
  !c

let state problem params =
  Qaoa_sim.Statevector.of_circuit (circuit ~measure:false problem params)

let expectation problem params =
  Qaoa_sim.Statevector.expectation_diag (state problem params)
    (Problem.cost problem)

let approximation_ratio_of_samples problem samples =
  let _, best = Problem.brute_force_best problem in
  let mean =
    Qaoa_util.Stats.mean_array
      (Array.map (fun bits -> Problem.cost problem bits) samples)
  in
  mean /. best
