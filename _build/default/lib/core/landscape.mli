(** QAOA p=1 parameter landscapes.

    The hybrid loop's difficulty is set by the (gamma, beta) expectation
    surface; the paper's motivation cites noise flattening this landscape
    (Sec. I).  This module evaluates the exact surface on a grid over
    [0, pi) x [0, pi/2) - analytically for unweighted MaxCut problems,
    via the statevector otherwise - and renders it for inspection. *)

type t = {
  gammas : float array;
  betas : float array;
  values : float array array;  (** [values.(i).(j)] at (gamma_i, beta_j) *)
}

val grid : ?gamma_points:int -> ?beta_points:int -> Problem.t -> t
(** Default 32 x 32.  Uses the closed form when the problem is an
    unweighted MaxCut (all quadratic coefficients equal and no linear
    terms), the simulator otherwise. *)

val best : t -> (float * float) * float
(** Grid argmax: ((gamma, beta), value). *)

val ascii : ?levels:string -> t -> string
(** Heatmap with one character per grid cell (default ramp
    [" .:-=+*#%@"], low to high), one text row per beta value. *)

val to_csv : t -> string
(** Long format: gamma,beta,value per line with a header. *)
