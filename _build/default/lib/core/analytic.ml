module Graph = Qaoa_graph.Graph

let edge_expectation g ~edge:(u, v) ~gamma ~beta =
  if not (Graph.has_edge g u v) then
    invalid_arg "Analytic.edge_expectation: not an edge";
  let du = float_of_int (Graph.degree g u - 1) in
  let dv = float_of_int (Graph.degree g v - 1) in
  let t = float_of_int (List.length (Graph.common_neighbors g u v)) in
  let cg = cos gamma in
  0.5
  +. (0.25 *. sin (4.0 *. beta) *. sin gamma *. ((cg ** du) +. (cg ** dv)))
  -. (0.25
     *. (sin (2.0 *. beta) ** 2.0)
     *. (cg ** (du +. dv -. (2.0 *. t)))
     *. (1.0 -. (cos (2.0 *. gamma) ** t)))

let expectation g ~gamma ~beta =
  Graph.fold_edges
    (fun u v acc -> acc +. edge_expectation g ~edge:(u, v) ~gamma ~beta)
    g 0.0

let optimize ?(grid = 64) g =
  let best = ref (0.0, 0.0) and best_val = ref neg_infinity in
  for i = 0 to grid - 1 do
    for j = 0 to grid - 1 do
      let gamma = Float.pi *. float_of_int i /. float_of_int grid in
      let beta = Float.pi /. 2.0 *. float_of_int j /. float_of_int grid in
      let v = expectation g ~gamma ~beta in
      if v > !best_val then begin
        best := (gamma, beta);
        best_val := v
      end
    done
  done;
  let g0, b0 = !best in
  let objective x = expectation g ~gamma:x.(0) ~beta:x.(1) in
  let x, v =
    Optimizer.nelder_mead ~maximize:true ~initial:[| g0; b0 |]
      ~step:(Float.pi /. (2.0 *. float_of_int grid))
      objective
  in
  (Ansatz.params_p1 ~gamma:x.(0) ~beta:x.(1), v)
