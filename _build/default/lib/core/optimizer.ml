type options = { max_iterations : int; tolerance : float }

let default_options = { max_iterations = 500; tolerance = 1e-6 }

let nelder_mead ?(options = default_options) ?(maximize = false) ~initial
    ~step f =
  let n = Array.length initial in
  if n = 0 then invalid_arg "Optimizer.nelder_mead: empty initial point";
  let eval x = if maximize then -.f x else f x in
  (* Simplex of n+1 points with their values, kept sorted by value. *)
  let points =
    Array.init (n + 1) (fun i ->
        let x = Array.copy initial in
        if i > 0 then x.(i - 1) <- x.(i - 1) +. step;
        (x, eval x))
  in
  let sort () = Array.sort (fun (_, a) (_, b) -> compare a b) points in
  let centroid () =
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      (* all but the worst point *)
      for j = 0 to n - 1 do
        c.(j) <- c.(j) +. (fst points.(i)).(j)
      done
    done;
    Array.map (fun v -> v /. float_of_int n) c
  in
  let combine a wa b wb = Array.init n (fun i -> (wa *. a.(i)) +. (wb *. b.(i))) in
  sort ();
  let iter = ref 0 in
  let spread () =
    let _, best = points.(0) and _, worst = points.(n) in
    Float.abs (worst -. best)
  in
  while !iter < options.max_iterations && spread () > options.tolerance do
    incr iter;
    let c = centroid () in
    let xw, fw = points.(n) in
    let _, fbest = points.(0) in
    let _, fsecond = points.(n - 1) in
    (* Reflection *)
    let xr = combine c 2.0 xw (-1.0) in
    let fr = eval xr in
    if fr < fbest then begin
      (* Expansion *)
      let xe = combine c 3.0 xw (-2.0) in
      let fe = eval xe in
      if fe < fr then points.(n) <- (xe, fe) else points.(n) <- (xr, fr)
    end
    else if fr < fsecond then points.(n) <- (xr, fr)
    else begin
      (* Contraction *)
      let xc = combine c 0.5 xw 0.5 in
      let fc = eval xc in
      if fc < fw then points.(n) <- (xc, fc)
      else begin
        (* Shrink towards the best point *)
        let xb, _ = points.(0) in
        for i = 1 to n do
          let xi, _ = points.(i) in
          let xs = combine xb 0.5 xi 0.5 in
          points.(i) <- (xs, eval xs)
        done
      end
    end;
    sort ()
  done;
  let x, v = points.(0) in
  (x, if maximize then -.v else v)

let optimize_p1 ?(grid = 24) ?options f =
  let best = ref (0.0, 0.0) and best_val = ref neg_infinity in
  for i = 0 to grid - 1 do
    for j = 0 to grid - 1 do
      let gamma = Float.pi *. float_of_int i /. float_of_int grid in
      let beta = Float.pi /. 2.0 *. float_of_int j /. float_of_int grid in
      let v = f ~gamma ~beta in
      if v > !best_val then begin
        best := (gamma, beta);
        best_val := v
      end
    done
  done;
  let g0, b0 = !best in
  let x, v =
    nelder_mead ?options ~maximize:true ~initial:[| g0; b0 |]
      ~step:(Float.pi /. (2.0 *. float_of_int grid))
      (fun x -> f ~gamma:x.(0) ~beta:x.(1))
  in
  (Ansatz.params_p1 ~gamma:x.(0) ~beta:x.(1), v)

let optimize_params ?options rng ~p f =
  if p <= 0 then invalid_arg "Optimizer.optimize_params: p must be positive";
  let unpack x =
    {
      Ansatz.gammas = Array.sub x 0 p;
      betas = Array.sub x p p;
    }
  in
  let objective x = f (unpack x) in
  let run_start () =
    let initial =
      Array.init (2 * p) (fun i ->
          if i < p then Qaoa_util.Rng.float rng Float.pi
          else Qaoa_util.Rng.float rng (Float.pi /. 2.0))
    in
    nelder_mead ?options ~maximize:true ~initial ~step:0.1 objective
  in
  let best =
    List.fold_left
      (fun acc _ ->
        let x, v = run_start () in
        match acc with
        | Some (_, bv) when bv >= v -> acc
        | _ -> Some (x, v))
      None [ 1; 2; 3; 4 ]
  in
  match best with
  | Some (x, v) -> (unpack x, v)
  | None -> assert false
