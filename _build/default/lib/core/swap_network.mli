(** SWAP-network compilation for dense QAOA cost layers.

    The paper's heuristics shine on sparse problems; for dense graphs the
    known alternative (Kivlichan et al., O'Gorman et al.) is an odd-even
    transposition network along a hardware line: n layers of alternating
    adjacent SWAPs bring {i every} pair of logical qubits adjacent
    exactly once, so a complete cost layer compiles in Theta(n) depth
    with n(n-1)/2 SWAPs regardless of the interaction pattern.  Each
    meeting emits the pair's CPHASE (if the problem couples it) followed
    by the SWAP that advances the network.

    The network needs a Hamiltonian path ("line") through the device;
    [serpentine_line] provides one for grid devices, and linear/ring
    devices are lines trivially.  This module serves as the dense-graph
    comparator in the ablation benches - the crossover against IC is
    exactly the regime boundary the paper's Sec. VI "usage of
    methodologies" discussion asks about. *)

val serpentine_line : rows:int -> cols:int -> int list
(** Row-by-row boustrophedon Hamiltonian path of a grid device, in the
    vertex numbering of {!Qaoa_graph.Generators.grid}. *)

val compile :
  ?measure:bool ->
  line:int list ->
  Qaoa_hardware.Device.t ->
  Problem.t ->
  Ansatz.params ->
  Qaoa_backend.Router.result
(** [compile ~line device problem params] places logical qubit [i] on
    [List.nth line i] and runs one full swap network per QAOA level
    (consecutive levels run the network in alternating directions, so
    qubits return home every two levels; the final mapping is tracked
    either way).

    @raise Invalid_argument if [line] is not a simple path in the
    device's coupling graph, or shorter than the problem. *)
