(** GreedyV and GreedyE initial-mapping baselines (Murali et al.,
    ASPLOS'19; paper Sec. III "Initial Mapping").

    - {b GreedyV} places program qubits heaviest-first (most two-qubit
      operations): the heaviest on the physical qubit of maximum degree,
      each subsequent one on the free physical qubit minimizing the
      cumulative distance to its already-placed logical neighbors.
    - {b GreedyE} places program CNOT pairs heaviest-edge-first (most
      operations between the two qubits).  In QAOA circuits every pair
      interacts at most once per level, so all edges tie - the paper's
      motivation for why GreedyE suits these circuits poorly (Sec. III,
      "Motivating Factors"); it is provided as a baseline regardless. *)

val greedy_v :
  Qaoa_util.Rng.t -> Qaoa_hardware.Device.t -> Problem.t -> Qaoa_backend.Mapping.t

val greedy_e :
  Qaoa_util.Rng.t -> Qaoa_hardware.Device.t -> Problem.t -> Qaoa_backend.Mapping.t
