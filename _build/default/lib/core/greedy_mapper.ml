module Graph = Qaoa_graph.Graph
module Device = Qaoa_hardware.Device
module Profile = Qaoa_hardware.Profile
module Mapping = Qaoa_backend.Mapping
module Float_matrix = Qaoa_util.Float_matrix
module Rng = Qaoa_util.Rng

(* Pick an element of [cands] maximizing [score], breaking ties at
   random.  @raise Invalid_argument on []. *)
let argmax_random rng score cands =
  match cands with
  | [] -> invalid_arg "Greedy_mapper: no candidates"
  | first :: rest ->
    let best, _, _ =
      List.fold_left
        (fun (bx, bs, nties) x ->
          let s = score x in
          if s > bs then (x, s, 1)
          else if s = bs then
            (* reservoir sampling over ties keeps the draw uniform *)
            let nties = nties + 1 in
            if Rng.int rng nties = 0 then (x, bs, nties) else (bx, bs, nties)
          else (bx, bs, nties))
        (first, score first, 1)
        rest
    in
    best

let unallocated_qubits device placed =
  List.filter
    (fun p -> not (Hashtbl.mem placed p))
    (List.init (Device.num_qubits device) (fun i -> i))

(* Shared skeleton: place logical qubits one at a time in [order]; the
   position of each is chosen by [choose] given the physical locations of
   its already-placed logical neighbors. *)
let place_sequentially device problem order ~first ~choose =
  let pg = Problem.interaction_graph problem in
  let n = problem.Problem.num_vars in
  let l2p = Array.make n (-1) in
  let placed_phys = Hashtbl.create n in
  List.iter
    (fun l ->
      let placed_neighbor_locs =
        List.filter_map
          (fun nb -> if l2p.(nb) >= 0 then Some l2p.(nb) else None)
          (Graph.neighbors pg l)
      in
      let free = unallocated_qubits device placed_phys in
      let p =
        if Hashtbl.length placed_phys = 0 then first free
        else choose free placed_neighbor_locs
      in
      l2p.(l) <- p;
      Hashtbl.replace placed_phys p ())
    order;
  Mapping.of_array ~num_physical:(Device.num_qubits device) l2p

let heaviest_first rng problem =
  let ops = Problem.ops_per_qubit problem in
  List.stable_sort
    (fun a b -> compare ops.(b) ops.(a))
    (Rng.shuffle_list rng (List.init problem.Problem.num_vars (fun i -> i)))

let greedy_v rng device problem =
  let dist = Profile.hop_distances device in
  let deg p = Graph.degree device.Device.coupling p in
  let cumulative_distance p locs =
    List.fold_left (fun acc q -> acc +. Float_matrix.get dist p q) 0.0 locs
  in
  place_sequentially device problem (heaviest_first rng problem)
    ~first:(fun free -> argmax_random rng (fun p -> float_of_int (deg p)) free)
    ~choose:(fun free neighbor_locs ->
      if neighbor_locs = [] then
        argmax_random rng (fun p -> float_of_int (deg p)) free
      else
        argmax_random rng (fun p -> -.cumulative_distance p neighbor_locs) free)

let greedy_e rng device problem =
  (* All QAOA pairs interact exactly once per level, so the
     heaviest-edge order degenerates to a random edge order. *)
  let dist = Profile.hop_distances device in
  let deg p = Graph.degree device.Device.coupling p in
  let n = problem.Problem.num_vars in
  let edges = Rng.shuffle_list rng (Problem.cphase_pairs problem) in
  let l2p = Array.make n (-1) in
  let placed_phys = Hashtbl.create n in
  let free () = unallocated_qubits device placed_phys in
  let place l p =
    l2p.(l) <- p;
    Hashtbl.replace placed_phys p ()
  in
  let free_neighbors p =
    List.filter
      (fun q -> not (Hashtbl.mem placed_phys q))
      (Graph.neighbors device.Device.coupling p)
  in
  let place_one_near anchor l =
    (* Free physical qubit closest to [anchor], preferring couplings. *)
    match free_neighbors anchor with
    | [] ->
      let p =
        argmax_random rng
          (fun p -> -.Float_matrix.get dist p anchor)
          (free ())
      in
      place l p
    | cands -> place l (argmax_random rng (fun p -> float_of_int (deg p)) cands)
  in
  List.iter
    (fun (a, b) ->
      match (l2p.(a) >= 0, l2p.(b) >= 0) with
      | true, true -> ()
      | true, false -> place_one_near l2p.(a) b
      | false, true -> place_one_near l2p.(b) a
      | false, false ->
        (* Free coupled pair with the largest degree sum. *)
        let coupled_free =
          List.filter
            (fun (p, q) ->
              not (Hashtbl.mem placed_phys p) && not (Hashtbl.mem placed_phys q))
            (Device.coupling_edges device)
        in
        (match coupled_free with
        | [] ->
          let p = argmax_random rng (fun p -> float_of_int (deg p)) (free ()) in
          place a p;
          place_one_near p b
        | _ ->
          let p, q =
            argmax_random rng
              (fun (p, q) -> float_of_int (deg p + deg q))
              coupled_free
          in
          place a p;
          place b q))
    edges;
  (* Isolated variables (no quadratic term) still need homes. *)
  for l = 0 to n - 1 do
    if l2p.(l) < 0 then
      place l (argmax_random rng (fun p -> float_of_int (deg p)) (free ()))
  done;
  Mapping.of_array ~num_physical:(Device.num_qubits device) l2p
