(** Shot-statistics estimation of QAOA cost expectations.

    The hybrid loop evaluates <C> from a finite number of samples
    (paper Sec. II); this module quantifies that estimate's quality:
    mean, standard error, confidence interval, and the shot count needed
    to reach a target precision - the knob behind the paper's
    40960-shot choice. *)

type estimate = {
  mean : float;
  std_error : float;  (** sample std / sqrt(shots) *)
  shots : int;
  confidence_95 : float * float;  (** mean -/+ 1.96 std errors *)
}

val of_samples : Problem.t -> int array -> estimate
(** Estimate <C> from measured logical bitstrings.
    @raise Invalid_argument on an empty array. *)

val of_state :
  Qaoa_util.Rng.t -> Problem.t -> Qaoa_sim.Statevector.t -> shots:int -> estimate
(** Sample the state and estimate - the simulated version of one
    hybrid-loop objective evaluation. *)

val shots_for_precision :
  Problem.t -> Qaoa_sim.Statevector.t -> std_error:float -> int
(** Shots needed so the standard error of <C> drops below [std_error],
    from the exact variance of the cost under the state's distribution.
    @raise Invalid_argument if [std_error <= 0]. *)
