module Graph = Qaoa_graph.Graph

(* Spin convention: bit 1 (selected/true) <-> s = -1, so x = (1 - s)/2. *)

let max_independent_set ?(penalty = 2.0) g =
  if penalty <= 1.0 then
    invalid_arg "Encodings.max_independent_set: penalty must exceed 1";
  let n = Graph.num_vertices g in
  let m = float_of_int (Graph.num_edges g) in
  (* sum x_i - P sum_E x_i x_j, with x_i x_j = (1 - s_i - s_j + s_i s_j)/4 *)
  let linear =
    List.init n (fun i ->
        (i, -0.5 +. (penalty /. 4.0 *. float_of_int (Graph.degree g i))))
  in
  let quadratic =
    List.map (fun (i, j) -> (i, j, -.penalty /. 4.0)) (Graph.edges g)
  in
  Problem.create
    ~constant:((float_of_int n /. 2.0) -. (penalty *. m /. 4.0))
    ~linear ~num_vars:n quadratic

let min_vertex_cover ?(penalty = 2.0) g =
  if penalty <= 1.0 then
    invalid_arg "Encodings.min_vertex_cover: penalty must exceed 1";
  let n = Graph.num_vertices g in
  let m = float_of_int (Graph.num_edges g) in
  (* -sum x_i - P sum_E (1-x_i)(1-x_j); (1-x_i)(1-x_j) =
     (1 + s_i + s_j + s_i s_j)/4 *)
  let linear =
    List.init n (fun i ->
        (i, 0.5 -. (penalty /. 4.0 *. float_of_int (Graph.degree g i))))
  in
  let quadratic =
    List.map (fun (i, j) -> (i, j, -.penalty /. 4.0)) (Graph.edges g)
  in
  Problem.create
    ~constant:((-.float_of_int n /. 2.0) -. (penalty *. m /. 4.0))
    ~linear ~num_vars:n quadratic

let number_partitioning numbers =
  let a = Array.of_list numbers in
  let n = Array.length a in
  (* -(sum a_i s_i)^2 = -sum a_i^2 - 2 sum_{i<j} a_i a_j s_i s_j *)
  let constant = -.Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a in
  let quadratic = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      quadratic := (i, j, -2.0 *. a.(i) *. a.(j)) :: !quadratic
    done
  done;
  Problem.create ~constant ~num_vars:n !quadratic

type literal = { var : int; negated : bool }
type clause = literal * literal

(* (1 - v) for a literal = (1 + sigma s)/2 with sigma = +1 for positive
   literals, -1 for negated ones. *)
let sigma l = if l.negated then -1.0 else 1.0

let max_2sat ~num_vars clauses =
  let constant = ref 0.0 in
  let linear = ref [] in
  let quadratic = ref [] in
  List.iter
    (fun ((l1, l2) : clause) ->
      if l1.var = l2.var then
        if l1.negated <> l2.negated then
          (* x or not-x: tautology *)
          constant := !constant +. 1.0
        else begin
          (* duplicated literal: value = v = (1 - sigma s)/2 *)
          constant := !constant +. 0.5;
          linear := (l1.var, -.sigma l1 /. 2.0) :: !linear
        end
      else begin
        (* 1 - (1+s1 sig1)(1+s2 sig2)/4 *)
        constant := !constant +. 0.75;
        linear :=
          (l1.var, -.sigma l1 /. 4.0) :: (l2.var, -.sigma l2 /. 4.0) :: !linear;
        quadratic :=
          (l1.var, l2.var, -.(sigma l1 *. sigma l2) /. 4.0) :: !quadratic
      end)
    clauses;
  Problem.create ~constant:!constant ~linear:!linear ~num_vars !quadratic

let decode_selection problem bits =
  List.filter
    (fun i -> bits land (1 lsl i) <> 0)
    (List.init problem.Problem.num_vars (fun i -> i))

let is_independent_set g selected =
  let set = Hashtbl.create (List.length selected) in
  List.iter (fun v -> Hashtbl.replace set v ()) selected;
  Graph.fold_edges
    (fun u v ok -> ok && not (Hashtbl.mem set u && Hashtbl.mem set v))
    g true

let is_vertex_cover g selected =
  let set = Hashtbl.create (List.length selected) in
  List.iter (fun v -> Hashtbl.replace set v ()) selected;
  Graph.fold_edges
    (fun u v ok -> ok && (Hashtbl.mem set u || Hashtbl.mem set v))
    g true

let literal_value l bits =
  let x = bits land (1 lsl l.var) <> 0 in
  if l.negated then not x else x

let count_satisfied clauses bits =
  List.fold_left
    (fun acc (l1, l2) ->
      if literal_value l1 bits || literal_value l2 bits then acc + 1 else acc)
    0 clauses
