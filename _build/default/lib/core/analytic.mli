(** Closed-form p=1 QAOA-MaxCut expectation.

    For unweighted MaxCut at p = 1 the per-edge cut expectation has the
    closed form of Wang, Hadfield, Jiang and Rieffel (PRA 97, 022304,
    2018), depending only on the endpoint degrees and the number of
    triangles through the edge:

      <C_uv> = 1/2
             + 1/4 sin(4 beta) sin(gamma) (cos^du gamma + cos^dv gamma)
             - 1/4 sin^2(2 beta) cos^(du+dv-2t) gamma (1 - cos^t (2 gamma))

    with du = deg(u) - 1, dv = deg(v) - 1, t = |common neighbors|.

    The paper (Sec. V.A) proposes finding optimal circuit parameters
    analytically [45] instead of running the hybrid loop on hardware;
    this module provides that route, cross-validated against the
    statevector simulator in the test suite. *)

val edge_expectation :
  Qaoa_graph.Graph.t -> edge:int * int -> gamma:float -> beta:float -> float
(** <C_uv> for one edge.  @raise Invalid_argument if the pair is not an
    edge of the graph. *)

val expectation : Qaoa_graph.Graph.t -> gamma:float -> beta:float -> float
(** Sum over all edges: the exact p=1 expectation of the cut size. *)

val optimize :
  ?grid:int -> Qaoa_graph.Graph.t -> Ansatz.params * float
(** Best (gamma, beta) at p=1 by dense grid search over
    (gamma, beta) in [0, pi) x [0, pi/2) (default [grid] = 64 points per
    axis) refined with Nelder-Mead on the analytic objective.  Returns
    the parameters and the achieved expectation. *)
