type t = {
  gammas : float array;
  betas : float array;
  values : float array array;
}

(* Unweighted MaxCut: all quadratic coefficients equal -1/2 (the
   [Problem.of_maxcut] encoding with unit weights) and no linear terms -
   the regime where the closed form applies. *)
let is_unweighted_maxcut problem =
  problem.Problem.linear = []
  && List.for_all
       (fun (_, _, c) -> Float.abs (c +. 0.5) < 1e-12)
       problem.Problem.quadratic

let grid ?(gamma_points = 32) ?(beta_points = 32) problem =
  if gamma_points < 1 || beta_points < 1 then
    invalid_arg "Landscape.grid: need at least one point per axis";
  let gammas =
    Array.init gamma_points (fun i ->
        Float.pi *. float_of_int i /. float_of_int gamma_points)
  in
  let betas =
    Array.init beta_points (fun j ->
        Float.pi /. 2.0 *. float_of_int j /. float_of_int beta_points)
  in
  let evaluate =
    if is_unweighted_maxcut problem then begin
      let g = Problem.interaction_graph problem in
      fun ~gamma ~beta -> Analytic.expectation g ~gamma ~beta
    end
    else fun ~gamma ~beta ->
      Ansatz.expectation problem (Ansatz.params_p1 ~gamma ~beta)
  in
  let values =
    Array.map (fun gamma -> Array.map (fun beta -> evaluate ~gamma ~beta) betas) gammas
  in
  { gammas; betas; values }

let best t =
  let best = ref ((t.gammas.(0), t.betas.(0)), t.values.(0).(0)) in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if v > snd !best then best := ((t.gammas.(i), t.betas.(j)), v))
        row)
    t.values;
  !best

let ascii ?(levels = " .:-=+*#%@") t =
  let lo = ref Float.infinity and hi = ref Float.neg_infinity in
  Array.iter
    (Array.iter (fun v ->
         lo := Float.min !lo v;
         hi := Float.max !hi v))
    t.values;
  let span = Float.max 1e-12 (!hi -. !lo) in
  let nlevels = String.length levels in
  let buf = Buffer.create 1024 in
  (* one row per beta (descending so the plot reads like an x/y chart) *)
  for j = Array.length t.betas - 1 downto 0 do
    for i = 0 to Array.length t.gammas - 1 do
      let v = t.values.(i).(j) in
      let k =
        min (nlevels - 1)
          (int_of_float (float_of_int nlevels *. (v -. !lo) /. span))
      in
      Buffer.add_char buf levels.[k]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "gamma,beta,expectation\n";
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          Buffer.add_string buf
            (Printf.sprintf "%.6f,%.6f,%.6f\n" t.gammas.(i) t.betas.(j) v))
        row)
    t.values;
  Buffer.contents buf
