module Circuit = Qaoa_circuit.Circuit
module Metrics = Qaoa_circuit.Metrics
module Device = Qaoa_hardware.Device
module Mapping = Qaoa_backend.Mapping
module Router = Qaoa_backend.Router
module Rng = Qaoa_util.Rng

type strategy =
  | Naive
  | Greedy_v
  | Greedy_e
  | Vqa_alloc
  | Qaim
  | Ip
  | Ic of int option
  | Vic of int option

let strategy_name = function
  | Naive -> "NAIVE"
  | Greedy_v -> "GreedyV"
  | Greedy_e -> "GreedyE"
  | Vqa_alloc -> "VQA"
  | Qaim -> "QAIM"
  | Ip -> "IP"
  | Ic None -> "IC"
  | Ic (Some l) -> Printf.sprintf "IC(limit=%d)" l
  | Vic None -> "VIC"
  | Vic (Some l) -> Printf.sprintf "VIC(limit=%d)" l

let all_strategies =
  [ Naive; Greedy_v; Greedy_e; Vqa_alloc; Qaim; Ip; Ic None; Vic None ]

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Some Naive
  | "greedyv" | "greedy_v" -> Some Greedy_v
  | "greedye" | "greedy_e" -> Some Greedy_e
  | "vqa" -> Some Vqa_alloc
  | "qaim" -> Some Qaim
  | "ip" -> Some Ip
  | "ic" -> Some (Ic None)
  | "vic" -> Some (Vic None)
  | _ -> None

type options = {
  seed : int;
  measure : bool;
  peephole : bool;
  router : Router.config;
  qaim : Qaim.config;
}

let default_options =
  {
    seed = 42;
    measure = true;
    peephole = false;
    router = Router.default_config;
    qaim = Qaim.default_config;
  }

type result = {
  strategy : strategy;
  circuit : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  swap_count : int;
  compile_time : float;
  metrics : Metrics.t;
}

let random_orders rng problem ~p =
  List.init p (fun _ -> Naive.cphase_order rng problem)

(* Route the whole ansatz in one backend call (NAIVE / GreedyV / GreedyE /
   QAIM / IP paths). *)
let route_whole options device problem params ~initial ~orders =
  let circuit =
    Ansatz.circuit ~measure:options.measure ~orders problem params
  in
  Router.route ~config:options.router ~device ~initial circuit

let compile ?(options = default_options) ~strategy device problem params =
  if problem.Problem.num_vars > Device.num_qubits device then
    invalid_arg "Compile.compile: problem larger than device";
  let rng = Rng.create options.seed in
  let p = Ansatz.levels params in
  let t0 = Sys.time () in
  let initial, routed =
    match strategy with
    | Naive ->
      let initial = Naive.initial_mapping rng device problem in
      ( initial,
        route_whole options device problem params ~initial
          ~orders:(random_orders rng problem ~p) )
    | Greedy_v ->
      let initial = Greedy_mapper.greedy_v rng device problem in
      ( initial,
        route_whole options device problem params ~initial
          ~orders:(random_orders rng problem ~p) )
    | Greedy_e ->
      let initial = Greedy_mapper.greedy_e rng device problem in
      ( initial,
        route_whole options device problem params ~initial
          ~orders:(random_orders rng problem ~p) )
    | Vqa_alloc ->
      let initial = Vqa.initial_mapping rng device problem in
      ( initial,
        route_whole options device problem params ~initial
          ~orders:(random_orders rng problem ~p) )
    | Qaim ->
      let initial = Qaim.initial_mapping ~config:options.qaim rng device problem in
      ( initial,
        route_whole options device problem params ~initial
          ~orders:(random_orders rng problem ~p) )
    | Ip ->
      let initial = Qaim.initial_mapping ~config:options.qaim rng device problem in
      let orders = List.init p (fun _ -> Ip.order rng problem) in
      (initial, route_whole options device problem params ~initial ~orders)
    | Ic packing_limit ->
      let initial = Qaim.initial_mapping ~config:options.qaim rng device problem in
      let config =
        { Ic.packing_limit; variation_aware = false; router = options.router }
      in
      ( initial,
        Ic.compile ~config ~measure:options.measure rng device ~initial
          problem params )
    | Vic packing_limit ->
      let initial = Qaim.initial_mapping ~config:options.qaim rng device problem in
      let config =
        { Ic.packing_limit; variation_aware = true; router = options.router }
      in
      ( initial,
        Ic.compile ~config ~measure:options.measure rng device ~initial
          problem params )
  in
  let routed =
    if options.peephole then
      {
        routed with
        Router.circuit =
          Qaoa_circuit.Optimize.circuit
            (Qaoa_circuit.Decompose.circuit routed.Router.circuit);
      }
    else routed
  in
  let compile_time = Sys.time () -. t0 in
  {
    strategy;
    circuit = routed.Router.circuit;
    initial_mapping = initial;
    final_mapping = routed.Router.final_mapping;
    swap_count = routed.Router.swap_count;
    compile_time;
    metrics = Metrics.of_circuit routed.Router.circuit;
  }

let success_probability ?include_readout device result =
  Success.of_circuit ?include_readout
    (Device.calibration_exn device)
    result.circuit

let logical_outcome result physical_bits =
  let m = result.final_mapping in
  let n = Mapping.num_logical m in
  let out = ref 0 in
  for l = 0 to n - 1 do
    if physical_bits land (1 lsl Mapping.phys m l) <> 0 then
      out := !out lor (1 lsl l)
  done;
  !out
