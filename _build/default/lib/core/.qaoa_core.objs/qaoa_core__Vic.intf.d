lib/core/vic.mli: Ansatz Ic Problem Qaoa_backend Qaoa_hardware Qaoa_util
