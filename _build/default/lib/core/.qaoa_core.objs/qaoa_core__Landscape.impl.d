lib/core/landscape.ml: Analytic Ansatz Array Buffer Float List Printf Problem String
