lib/core/analytic.mli: Ansatz Qaoa_graph
