lib/core/problem.ml: Array Int List Map Option Qaoa_graph
