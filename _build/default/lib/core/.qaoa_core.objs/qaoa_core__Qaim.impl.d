lib/core/qaim.ml: Array Float Hashtbl List Problem Qaoa_backend Qaoa_graph Qaoa_hardware Qaoa_util
