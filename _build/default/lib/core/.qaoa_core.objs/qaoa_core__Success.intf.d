lib/core/success.mli: Qaoa_backend Qaoa_circuit Qaoa_hardware
