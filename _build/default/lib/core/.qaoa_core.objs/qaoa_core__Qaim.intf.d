lib/core/qaim.mli: Problem Qaoa_backend Qaoa_hardware Qaoa_util
