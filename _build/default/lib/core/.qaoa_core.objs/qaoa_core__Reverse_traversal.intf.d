lib/core/reverse_traversal.mli: Qaoa_backend Qaoa_circuit Qaoa_hardware
