lib/core/arg.ml: Ansatz Array Compile Hashtbl Option Problem Qaoa_hardware Qaoa_sim Qaoa_util
