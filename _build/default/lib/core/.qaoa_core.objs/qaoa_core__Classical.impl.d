lib/core/classical.ml: Array Float List Option Problem Qaoa_util
