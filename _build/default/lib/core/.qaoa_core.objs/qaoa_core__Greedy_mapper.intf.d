lib/core/greedy_mapper.mli: Problem Qaoa_backend Qaoa_hardware Qaoa_util
