lib/core/classical.mli: Problem Qaoa_util
