lib/core/optimizer.mli: Ansatz Qaoa_util
