lib/core/ic.ml: Ansatz Array Hashtbl List Option Problem Qaoa_backend Qaoa_circuit Qaoa_hardware Qaoa_util
