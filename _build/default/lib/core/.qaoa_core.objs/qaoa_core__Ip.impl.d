lib/core/ip.ml: Array List Option Problem Qaoa_util
