lib/core/ansatz.mli: Problem Qaoa_circuit Qaoa_sim
