lib/core/arg.mli: Ansatz Compile Problem Qaoa_hardware Qaoa_util
