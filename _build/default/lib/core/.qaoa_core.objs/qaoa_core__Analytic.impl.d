lib/core/analytic.ml: Ansatz Array Float List Optimizer Qaoa_graph
