lib/core/iterative.ml: Compile Qaoa_circuit Qaoa_hardware Sys
