lib/core/vic.ml: Ic Qaoa_backend
