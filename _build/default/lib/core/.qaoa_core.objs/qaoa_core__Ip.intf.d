lib/core/ip.mli: Problem Qaoa_util
