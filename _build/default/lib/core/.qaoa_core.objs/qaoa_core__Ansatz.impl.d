lib/core/ansatz.ml: Array Hashtbl List Option Problem Qaoa_circuit Qaoa_sim Qaoa_util
