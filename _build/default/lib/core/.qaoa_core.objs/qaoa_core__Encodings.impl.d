lib/core/encodings.ml: Array Hashtbl List Problem Qaoa_graph
