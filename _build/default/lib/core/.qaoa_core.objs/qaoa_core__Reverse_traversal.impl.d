lib/core/reverse_traversal.ml: List Qaoa_backend Qaoa_circuit
