lib/core/problem.mli: Qaoa_graph
