lib/core/estimator.ml: Array Float Problem Qaoa_sim
