lib/core/estimator.mli: Problem Qaoa_sim Qaoa_util
