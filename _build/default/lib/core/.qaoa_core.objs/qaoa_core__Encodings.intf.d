lib/core/encodings.mli: Problem Qaoa_graph
