lib/core/error_budget.mli: Format Qaoa_circuit Qaoa_hardware
