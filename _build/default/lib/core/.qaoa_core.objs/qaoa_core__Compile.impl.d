lib/core/compile.ml: Ansatz Greedy_mapper Ic Ip List Naive Printf Problem Qaim Qaoa_backend Qaoa_circuit Qaoa_hardware Qaoa_util String Success Sys Vqa
