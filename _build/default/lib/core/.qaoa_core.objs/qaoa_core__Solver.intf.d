lib/core/solver.mli: Ansatz Compile Problem Qaoa_hardware
