lib/core/greedy_mapper.ml: Array Hashtbl List Problem Qaoa_backend Qaoa_graph Qaoa_hardware Qaoa_util
