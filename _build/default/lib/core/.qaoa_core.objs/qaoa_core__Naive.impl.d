lib/core/naive.ml: Problem Qaoa_backend Qaoa_hardware Qaoa_util
