lib/core/success.ml: List Qaoa_backend Qaoa_circuit Qaoa_hardware
