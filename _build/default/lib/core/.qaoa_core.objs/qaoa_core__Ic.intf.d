lib/core/ic.mli: Ansatz Problem Qaoa_backend Qaoa_hardware Qaoa_util
