lib/core/solver.ml: Analytic Ansatz Array Compile Float List Optimizer Problem Qaoa_hardware Qaoa_sim Qaoa_util
