lib/core/vqa.mli: Problem Qaoa_backend Qaoa_hardware Qaoa_util
