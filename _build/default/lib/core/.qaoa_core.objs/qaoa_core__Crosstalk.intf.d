lib/core/crosstalk.mli: Qaoa_circuit
