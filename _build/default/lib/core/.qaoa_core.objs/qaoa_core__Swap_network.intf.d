lib/core/swap_network.mli: Ansatz Problem Qaoa_backend Qaoa_hardware
