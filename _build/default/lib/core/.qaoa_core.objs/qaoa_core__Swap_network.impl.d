lib/core/swap_network.ml: Ansatz Array Hashtbl List Problem Qaoa_backend Qaoa_circuit Qaoa_hardware
