lib/core/crosstalk.ml: List Qaoa_circuit Set
