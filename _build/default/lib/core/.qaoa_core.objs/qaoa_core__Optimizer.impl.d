lib/core/optimizer.ml: Ansatz Array Float List Qaoa_util
