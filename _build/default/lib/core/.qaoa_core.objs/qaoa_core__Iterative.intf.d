lib/core/iterative.mli: Ansatz Compile Problem Qaoa_hardware
