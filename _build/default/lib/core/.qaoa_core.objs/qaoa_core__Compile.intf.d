lib/core/compile.mli: Ansatz Problem Qaim Qaoa_backend Qaoa_circuit Qaoa_hardware
