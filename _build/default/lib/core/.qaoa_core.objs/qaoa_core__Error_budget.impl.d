lib/core/error_budget.ml: Format Hashtbl List Option Printf Qaoa_circuit Qaoa_hardware
