lib/core/landscape.mli: Problem
