lib/core/naive.mli: Problem Qaoa_backend Qaoa_hardware Qaoa_util
