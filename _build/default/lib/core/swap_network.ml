module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Device = Qaoa_hardware.Device
module Mapping = Qaoa_backend.Mapping
module Router = Qaoa_backend.Router

let serpentine_line ~rows ~cols =
  List.concat
    (List.init rows (fun r ->
         let row = List.init cols (fun c -> (r * cols) + c) in
         if r mod 2 = 0 then row else List.rev row))

let check_line device line k =
  let n = List.length line in
  if n < k then invalid_arg "Swap_network.compile: line shorter than problem";
  if List.length (List.sort_uniq compare line) <> n then
    invalid_arg "Swap_network.compile: line revisits a qubit";
  let rec adjacent = function
    | a :: (b :: _ as rest) ->
      if not (Device.coupled device a b) then
        invalid_arg "Swap_network.compile: line is not a coupled path";
      adjacent rest
    | _ -> ()
  in
  adjacent line

let compile ?(measure = true) ~line device problem params =
  let k = problem.Problem.num_vars in
  check_line device line k;
  let positions = Array.of_list line in
  let initial =
    Mapping.of_array
      ~num_physical:(Device.num_qubits device)
      (Array.sub positions 0 k)
  in
  let mapping = ref initial in
  let out = ref (Circuit.create (Device.num_qubits device)) in
  let swaps = ref 0 in
  let emit g = out := Circuit.append !out g in
  let logical_at_slot slot =
    (* slots index the first k line positions *)
    match Mapping.logical_at !mapping positions.(slot) with
    | Some l -> l
    | None -> assert false (* the network permutes only occupied slots *)
  in
  let p = Ansatz.levels params in
  (* a coupled-pair lookup for "emit the CPHASE when this meeting is a
     problem edge" *)
  let coupled = Hashtbl.create 64 in
  List.iter
    (fun (a, b) -> Hashtbl.replace coupled (min a b, max a b) ())
    (Problem.cphase_pairs problem);
  for level = 0 to p - 1 do
    let gamma = params.Ansatz.gammas.(level) in
    if level = 0 then
      for l = 0 to k - 1 do
        emit (Gate.H (Mapping.phys !mapping l))
      done;
    (* odd-even transposition: k rounds, each adjacent meeting emits the
       pair's CPHASE (if coupled) then the unconditional SWAP *)
    for round = 0 to k - 1 do
      let slot = ref (round mod 2) in
      while !slot + 1 < k do
        let a = logical_at_slot !slot and b = logical_at_slot (!slot + 1) in
        let pa = positions.(!slot) and pb = positions.(!slot + 1) in
        if Hashtbl.mem coupled (min a b, max a b) then
          emit (Ansatz.cphase_gate problem ~gamma (a, b)
               |> Gate.map_qubits (fun l -> if l = a then pa else pb));
        emit (Gate.Swap (pa, pb));
        mapping := Mapping.swap_physical !mapping pa pb;
        incr swaps;
        slot := !slot + 2
      done
    done;
    (* linear terms and the mixer wall at the current mapping *)
    List.iter
      (fun g -> emit (Gate.map_qubits (Mapping.phys !mapping) g))
      (Ansatz.linear_gates problem ~gamma);
    List.iter
      (fun g -> emit (Gate.map_qubits (Mapping.phys !mapping) g))
      (Ansatz.mixer_gates problem ~beta:params.Ansatz.betas.(level))
  done;
  if measure then
    for l = 0 to k - 1 do
      emit (Gate.Measure (Mapping.phys !mapping l))
    done;
  { Router.circuit = !out; final_mapping = !mapping; swap_count = !swaps }
