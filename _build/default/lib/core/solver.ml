module Device = Qaoa_hardware.Device
module Statevector = Qaoa_sim.Statevector
module Sampler = Qaoa_sim.Sampler
module Noise = Qaoa_sim.Noise
module Rng = Qaoa_util.Rng
module Stats = Qaoa_util.Stats

type execution = Ideal | Noisy

type outcome = {
  best_bits : int;
  best_cost : float;
  approximation_ratio : float;
  mean_cost : float;
  optimum : float option;
  params : Ansatz.params;
  compiled : Compile.result;
}

(* Unweighted MaxCut (the [Problem.of_maxcut] encoding with unit
   weights) admits the closed-form p=1 optimization. *)
let closed_form_applies problem =
  problem.Problem.linear = []
  && List.for_all
       (fun (_, _, c) -> Float.abs (c +. 0.5) < 1e-12)
       problem.Problem.quadratic

let choose_params rng ~p problem =
  if p = 1 && closed_form_applies problem then
    fst (Analytic.optimize ~grid:32 (Problem.interaction_graph problem))
  else if p = 1 then
    fst
      (Optimizer.optimize_p1 ~grid:16 (fun ~gamma ~beta ->
           Ansatz.expectation problem (Ansatz.params_p1 ~gamma ~beta)))
  else
    fst (Optimizer.optimize_params rng ~p (fun prms -> Ansatz.expectation problem prms))

let solve ?(strategy = Compile.Ic None) ?(p = 1) ?(shots = 2048)
    ?(execution = Ideal) ?(seed = 42) device problem =
  if Problem.cphase_pairs problem = [] then
    invalid_arg "Solver.solve: problem has no quadratic terms";
  if p < 1 then invalid_arg "Solver.solve: p must be >= 1";
  if shots < 1 then invalid_arg "Solver.solve: shots must be >= 1";
  let rng = Rng.create seed in
  (* the simulator backs parameter optimization; cap accordingly *)
  if problem.Problem.num_vars > 24 then
    invalid_arg "Solver.solve: problems beyond 24 variables need external parameters";
  let params = choose_params rng ~p problem in
  let options = { Compile.default_options with seed } in
  let compiled = Compile.compile ~options ~strategy device problem params in
  let logical_samples =
    match execution with
    | Ideal ->
      let sv = Ansatz.state problem params in
      Sampler.sample_many rng sv ~shots
    | Noisy ->
      let noise = Noise.create (Device.calibration_exn device) in
      Array.map
        (Compile.logical_outcome compiled)
        (Noise.sample_noisy rng noise compiled.Compile.circuit ~shots
           ~trajectories:(max 1 (shots / 32)))
  in
  let costs = Array.map (Problem.cost problem) logical_samples in
  let best_index = ref 0 in
  Array.iteri (fun i c -> if c > costs.(!best_index) then best_index := i) costs;
  let best_bits = logical_samples.(!best_index) in
  let best_cost = costs.(!best_index) in
  let mean_cost = Stats.mean_array costs in
  let optimum =
    if problem.Problem.num_vars <= 24 then
      Some (snd (Problem.brute_force_best problem))
    else None
  in
  let approximation_ratio =
    match optimum with
    | Some o when o <> 0.0 -> mean_cost /. o
    | _ -> mean_cost /. Float.max best_cost 1e-12
  in
  {
    best_bits;
    best_cost;
    approximation_ratio;
    mean_cost;
    optimum;
    params;
    compiled;
  }
