(** Per-source error budgets of compiled circuits.

    The success probability is a product over gates; on a log scale it
    decomposes additively, which makes "where does the error go?"
    answerable: per gate kind (CNOTs from CPHASE lowering vs CNOTs from
    SWAPs vs one-qubit gates) and per physical coupling.  VIC's entire
    premise is that this budget is dominated by a few bad couplings -
    the report makes that visible for any compiled circuit. *)

type entry = {
  label : string;
  count : int;  (** gates charged to this source *)
  log_loss : float;  (** sum of log(1 - error); <= 0 *)
}

type t = {
  by_kind : entry list;  (** "cphase-cnot", "swap-cnot", "1q" *)
  by_coupling : entry list;  (** one entry per used coupling, worst first *)
  total_log_loss : float;
  success_probability : float;
}

val analyze :
  Qaoa_hardware.Calibration.t -> Qaoa_circuit.Circuit.t -> t
(** The circuit must still contain its CPHASE/SWAP structure (i.e. a
    router result, not a pre-decomposed circuit): attribution of CNOTs
    to their source gate happens during lowering.
    @raise Not_found if a coupling lacks a calibrated rate. *)

val worst_couplings : ?top:int -> t -> entry list
(** The [top] (default 5) couplings by absolute log loss. *)

val pp : Format.formatter -> t -> unit
(** Human-readable report (kinds, then the worst couplings). *)
