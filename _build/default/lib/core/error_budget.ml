module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Decompose = Qaoa_circuit.Decompose
module Calibration = Qaoa_hardware.Calibration

type entry = { label : string; count : int; log_loss : float }

type t = {
  by_kind : entry list;
  by_coupling : entry list;
  total_log_loss : float;
  success_probability : float;
}

let analyze cal circuit =
  let e1 = Calibration.single_qubit_error cal in
  let kind_tbl = Hashtbl.create 4 in
  let coupling_tbl = Hashtbl.create 32 in
  let charge tbl key loss =
    let count, acc = Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (count + 1, acc +. loss)
  in
  let charge_cnot source a b =
    let loss = log (1.0 -. Calibration.cnot_error cal a b) in
    charge kind_tbl source loss;
    charge coupling_tbl (Printf.sprintf "(%d,%d)" (min a b) (max a b)) loss
  in
  let charge_1q () = if e1 > 0.0 then charge kind_tbl "1q" (log (1.0 -. e1)) in
  List.iter
    (fun g ->
      match g with
      | Gate.Cphase (a, b, _) ->
        (* lowering: two CNOTs plus one (virtual-cost) RZ *)
        charge_cnot "cphase-cnot" a b;
        charge_cnot "cphase-cnot" a b;
        charge_1q ()
      | Gate.Swap (a, b) ->
        charge_cnot "swap-cnot" a b;
        charge_cnot "swap-cnot" a b;
        charge_cnot "swap-cnot" a b
      | Gate.Cnot (a, b) -> charge_cnot "cnot" a b
      | Gate.Barrier | Gate.Measure _ -> ()
      | Gate.H _ | Gate.X _ | Gate.Y _ | Gate.Z _ | Gate.Rx _ | Gate.Ry _
      | Gate.Rz _ | Gate.Phase _ ->
        charge_1q ())
    (Circuit.gates circuit);
  let entries tbl =
    Hashtbl.fold
      (fun label (count, log_loss) acc -> { label; count; log_loss } :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.log_loss b.log_loss)
  in
  let by_kind = entries kind_tbl in
  let by_coupling = entries coupling_tbl in
  let total_log_loss =
    List.fold_left (fun acc e -> acc +. e.log_loss) 0.0 by_kind
  in
  {
    by_kind;
    by_coupling;
    total_log_loss;
    success_probability = exp total_log_loss;
  }

let worst_couplings ?(top = 5) t =
  List.filteri (fun i _ -> i < top) t.by_coupling

let pp ppf t =
  Format.fprintf ppf "success probability: %.3e@." t.success_probability;
  Format.fprintf ppf "loss by gate kind:@.";
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-12s x%-4d %6.3f (%.1f%% of loss)@." e.label
        e.count e.log_loss
        (100.0 *. e.log_loss /. t.total_log_loss))
    t.by_kind;
  Format.fprintf ppf "worst couplings:@.";
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-8s x%-4d %6.3f@." e.label e.count e.log_loss)
    (worst_couplings t)
