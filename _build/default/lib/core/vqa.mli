(** VQA - Variation-aware Qubit Allocation (Tannu & Qureshi, ASPLOS'19;
    paper Sec. III "Qubit Allocation").

    Where the connectivity-count heuristics pick the sub-graph with the
    most links, VQA picks the sub-graph maximizing the {i cumulative
    reliability} of its links: a well-connected region of weak couplings
    loses to a slightly sparser region of strong ones.  Procedure:

    1. grow a k-qubit region greedily from the seed qubit with the
       highest incident success-rate sum, at each step adding the
       outside qubit contributing the largest summed success rate on
       links into the region;
    2. place program qubits into the region heaviest-first, each next
       to its already-placed logical neighbors (GreedyV-style, but
       restricted to the selected region).

    Provided as a variation-aware {i allocation} baseline to contrast
    with QAIM's variation-unaware allocation and VIC's variation-aware
    {i scheduling}. *)

val select_region :
  Qaoa_hardware.Device.t -> k:int -> int list
(** The selected physical qubits (sorted).  @raise Invalid_argument if
    the device has no calibration or [k] exceeds the qubit count. *)

val initial_mapping :
  Qaoa_util.Rng.t ->
  Qaoa_hardware.Device.t ->
  Problem.t ->
  Qaoa_backend.Mapping.t
(** Allocation + placement as described above. *)
