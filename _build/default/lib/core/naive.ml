let initial_mapping rng device problem =
  Qaoa_backend.Mapping.random rng
    ~num_logical:problem.Problem.num_vars
    ~num_physical:(Qaoa_hardware.Device.num_qubits device)

let cphase_order rng problem =
  Qaoa_util.Rng.shuffle_list rng (Problem.cphase_pairs problem)
