(** IC - Incremental Compilation (paper Sec. IV.C, Fig. 5) and its
    variation-aware form VIC (Sec. IV.D, Fig. 6).

    Instead of fixing all CPHASE layers up front (IP), IC forms one layer
    at a time: the remaining CPHASE operations are sorted by the current
    physical distance between their control and target qubits (ascending,
    random tie-break), packed greedily into a single layer, and that
    partial circuit is compiled by the backend.  The SWAP insertion of
    each partial compilation updates the logical-to-physical mapping, so
    gates whose qubits drifted together get priority in the next layer.
    The compiled partial circuits are stitched at the end.

    With [variation_aware = true] (VIC) the distances come from the
    reliability-weighted Floyd-Warshall matrix (edge weight = 1 / CPHASE
    success rate), which prioritizes operations executable on reliable
    couplings and defers the others until the mapping drifts toward
    better paths. *)

type config = {
  packing_limit : int option;
      (** Max CPHASE gates per formed layer (Sec. V.H); None = pack to the
          fullest. *)
  variation_aware : bool;  (** false = IC, true = VIC *)
  router : Qaoa_backend.Router.config;
}

val default_config : config
(** Unlimited packing, variation-unaware, default router. *)

val compile :
  ?config:config ->
  ?measure:bool ->
  Qaoa_util.Rng.t ->
  Qaoa_hardware.Device.t ->
  initial:Qaoa_backend.Mapping.t ->
  Problem.t ->
  Ansatz.params ->
  Qaoa_backend.Router.result
(** Compile the full p-level ansatz incrementally: a Hadamard wall at
    the initial mapping, then per level the incrementally formed CPHASE
    layers followed by the mixer RX wall (each applied at the mapping in
    force when it is emitted), and finally measurements ([measure]
    defaults to true).

    @raise Invalid_argument if [variation_aware] is set but the device
    has no calibration data. *)

val form_layer :
  ?packing_limit:int ->
  Qaoa_util.Rng.t ->
  dist:Qaoa_util.Float_matrix.t ->
  phys:(int -> int) ->
  (int * int) list ->
  (int * int) list * (int * int) list
(** One greedy layer formation step: sort the remaining pairs by current
    physical distance and first-fit them into a single layer of qubit
    bins.  Returns (layer, remaining).  Exposed for tests and for the
    packing-density experiment. *)
