(** Compiled-circuit success probability (paper Sec. II).

    The success probability of a circuit is the product of the success
    probabilities (1 - error rate) of its individual gates, evaluated on
    the basis-decomposed circuit: per-coupling CNOT rates, the scalar
    one-qubit rate, and optionally the readout rate per measurement.
    Fig. 10 compares VIC against IC on exactly this metric. *)

val of_circuit :
  ?include_readout:bool ->
  Qaoa_hardware.Calibration.t ->
  Qaoa_circuit.Circuit.t ->
  float
(** [include_readout] defaults to false (the gate-only product the paper
    uses).  @raise Not_found if a CNOT pair has no calibrated rate. *)

val of_result :
  ?include_readout:bool ->
  Qaoa_hardware.Device.t ->
  Qaoa_backend.Router.result ->
  float
(** Success probability of a router result on the device's calibration.
    @raise Invalid_argument if the device has no calibration. *)

val log_success : Qaoa_hardware.Calibration.t -> Qaoa_circuit.Circuit.t -> float
(** Natural log of [of_circuit] computed by summation - numerically
    stable for deep circuits whose product underflows. *)
