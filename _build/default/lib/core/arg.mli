(** ARG - the Approximation Ratio Gap metric (paper Sec. V.A).

    Judging compiled QAOA circuits by running the full hybrid loop on
    hardware is prohibitively slow on shared devices; ARG instead fixes
    the circuit parameters at values found offline, then compares the
    approximation ratio of noiseless sampling (r0) against sampling on
    the target hardware (rh):

      ARG = 100 * (r0 - rh) / r0      (lower is better).

    Here "hardware" is the stochastic-Pauli trajectory simulator over the
    device's calibration data (DESIGN.md, substitution 2): the identical
    compile -> execute -> sample -> score pipeline, with sampled physical
    bitstrings translated back through the final mapping. *)

type report = {
  ideal_ratio : float;  (** r0: noiseless approximation ratio *)
  hardware_ratio : float;  (** rh: noisy-execution approximation ratio *)
  arg_percent : float;  (** 100 (r0 - rh) / r0 *)
  optimum : float;  (** brute-force maximum cost *)
}

val evaluate :
  ?shots:int ->
  ?trajectories:int ->
  ?mitigate_readout:bool ->
  Qaoa_util.Rng.t ->
  Qaoa_hardware.Device.t ->
  Problem.t ->
  Ansatz.params ->
  Compile.result ->
  report
(** [shots] defaults to 4096 and [trajectories] to [shots / 32].  Both
    the noiseless and noisy ratios use the same number of samples, per
    the paper's protocol.  [mitigate_readout] (default false) unfolds
    the device's readout-flip channel from the hardware samples with
    {!Qaoa_sim.Mitigation} before scoring - an evaluation-side extension
    beyond the paper.  @raise Invalid_argument if the device has no
    calibration data. *)
