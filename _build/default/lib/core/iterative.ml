module Metrics = Qaoa_circuit.Metrics
module Device = Qaoa_hardware.Device

type objective = Depth | Gate_count | Success_probability

let objective_name = function
  | Depth -> "depth"
  | Gate_count -> "gate-count"
  | Success_probability -> "success-probability"

type result = {
  best : Compile.result;
  rounds : int;
  improvements : int;
  total_time : float;
}

(* Lower is better for every objective (success probability negated). *)
let score objective device (r : Compile.result) =
  match objective with
  | Depth -> float_of_int r.Compile.metrics.Metrics.depth
  | Gate_count -> float_of_int r.Compile.metrics.Metrics.gate_count
  | Success_probability -> -.Compile.success_probability device r

let compile ?(patience = 5) ?(max_rounds = 50) ?(objective = Depth)
    ?(base = Compile.default_options) ~strategy device problem params =
  if patience < 1 || max_rounds < 1 then
    invalid_arg "Iterative.compile: patience and max_rounds must be >= 1";
  let t0 = Sys.time () in
  let compile_round i =
    Compile.compile
      ~options:{ base with Compile.seed = base.Compile.seed + i }
      ~strategy device problem params
  in
  let first = compile_round 0 in
  let best = ref first in
  let best_score = ref (score objective device first) in
  let rounds = ref 1 in
  let improvements = ref 0 in
  let stale = ref 0 in
  while !stale < patience && !rounds < max_rounds do
    let candidate = compile_round !rounds in
    incr rounds;
    let s = score objective device candidate in
    if s < !best_score then begin
      best := candidate;
      best_score := s;
      incr improvements;
      stale := 0
    end
    else incr stale
  done;
  {
    best = !best;
    rounds = !rounds;
    improvements = !improvements;
    total_time = Sys.time () -. t0;
  }
