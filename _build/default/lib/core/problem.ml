module Graph = Qaoa_graph.Graph
module Int_map = Map.Make (Int)

module Pair_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = {
  num_vars : int;
  quadratic : (int * int * float) list;
  linear : (int * float) list;
  constant : float;
}

let create ?(linear = []) ?(constant = 0.0) ~num_vars quadratic =
  let check v =
    if v < 0 || v >= num_vars then
      invalid_arg "Problem.create: variable out of range"
  in
  let quad_map =
    List.fold_left
      (fun acc (i, j, c) ->
        check i;
        check j;
        if i = j then invalid_arg "Problem.create: diagonal quadratic term";
        Pair_map.update
          (min i j, max i j)
          (fun prev -> Some (c +. Option.value ~default:0.0 prev))
          acc)
      Pair_map.empty quadratic
  in
  let quadratic =
    Pair_map.fold
      (fun (i, j) c acc -> if c = 0.0 then acc else (i, j, c) :: acc)
      quad_map []
    |> List.sort compare
  in
  let lin_map =
    List.fold_left
      (fun acc (i, c) ->
        check i;
        Int_map.update i
          (fun prev -> Some (c +. Option.value ~default:0.0 prev))
          acc)
      Int_map.empty linear
  in
  let linear =
    Int_map.fold (fun i c acc -> if c = 0.0 then acc else (i, c) :: acc) lin_map []
    |> List.sort compare
  in
  { num_vars; quadratic; linear; constant }

let of_maxcut ?(weights = fun _ -> 1.0) g =
  (* cut = sum w (1 - s_u s_v) / 2  =  (sum w)/2  -  sum (w/2) s_u s_v *)
  let edges = Graph.edges g in
  let total_w = List.fold_left (fun acc e -> acc +. weights e) 0.0 edges in
  create ~constant:(total_w /. 2.0) ~num_vars:(Graph.num_vertices g)
    (List.map (fun (u, v) -> (u, v, -.(weights (u, v)) /. 2.0)) edges)

let interaction_graph t =
  Graph.of_edges t.num_vars (List.map (fun (i, j, _) -> (i, j)) t.quadratic)

let cphase_pairs t =
  List.sort compare (List.map (fun (i, j, _) -> (i, j)) t.quadratic)

let spin bits i = if bits land (1 lsl i) = 0 then 1.0 else -1.0

let cost t bits =
  let quad =
    List.fold_left
      (fun acc (i, j, c) -> acc +. (c *. spin bits i *. spin bits j))
      0.0 t.quadratic
  in
  let lin =
    List.fold_left (fun acc (i, c) -> acc +. (c *. spin bits i)) 0.0 t.linear
  in
  t.constant +. quad +. lin

let brute_force_best t =
  if t.num_vars > 24 then
    invalid_arg "Problem.brute_force_best: too many variables";
  let best = ref 0 and best_cost = ref (cost t 0) in
  for bits = 1 to (1 lsl t.num_vars) - 1 do
    let c = cost t bits in
    if c > !best_cost then begin
      best := bits;
      best_cost := c
    end
  done;
  (!best, !best_cost)

let ops_per_qubit t =
  let ops = Array.make t.num_vars 0 in
  List.iter
    (fun (i, j, _) ->
      ops.(i) <- ops.(i) + 1;
      ops.(j) <- ops.(j) + 1)
    t.quadratic;
  ops

let max_ops_per_qubit t = Array.fold_left max 0 (ops_per_qubit t)
