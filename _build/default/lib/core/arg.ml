module Device = Qaoa_hardware.Device
module Rng = Qaoa_util.Rng

type report = {
  ideal_ratio : float;
  hardware_ratio : float;
  arg_percent : float;
  optimum : float;
}

let evaluate ?(shots = 4096) ?trajectories ?(mitigate_readout = false) rng
    device problem params result =
  let trajectories = Option.value ~default:(max 1 (shots / 32)) trajectories in
  let _, optimum = Problem.brute_force_best problem in
  (* r0: sample the noiseless logical ansatz state. *)
  let ideal_state = Ansatz.state problem params in
  let ideal_samples = Qaoa_sim.Sampler.sample_many rng ideal_state ~shots in
  let ideal_ratio =
    Qaoa_util.Stats.mean_array
      (Array.map (fun b -> Problem.cost problem b) ideal_samples)
    /. optimum
  in
  (* rh: noisy trajectories of the compiled physical circuit. *)
  let noise = Qaoa_sim.Noise.create (Device.calibration_exn device) in
  let physical_samples =
    Qaoa_sim.Noise.sample_noisy rng noise result.Compile.circuit ~shots
      ~trajectories
  in
  let logical_cost b = Problem.cost problem (Compile.logical_outcome result b) in
  let hardware_mean =
    if mitigate_readout then begin
      let counts = Hashtbl.create 256 in
      Array.iter
        (fun b ->
          Hashtbl.replace counts b
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts b)))
        physical_samples;
      let ro =
        Qaoa_hardware.Calibration.readout_error (Device.calibration_exn device)
      in
      (* mitigate in logical space: translate outcomes first, then unfold
         the per-qubit flip channel over the problem's qubits *)
      let logical_counts = Hashtbl.create 256 in
      Hashtbl.iter
        (fun b c ->
          let l = Compile.logical_outcome result b in
          Hashtbl.replace logical_counts l
            (c + Option.value ~default:0 (Hashtbl.find_opt logical_counts l)))
        counts;
      Qaoa_sim.Mitigation.expectation ~p:ro
        ~num_qubits:problem.Problem.num_vars (Problem.cost problem)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) logical_counts [])
    end
    else
      Qaoa_util.Stats.mean_array (Array.map logical_cost physical_samples)
  in
  let hardware_ratio = hardware_mean /. optimum in
  {
    ideal_ratio;
    hardware_ratio;
    arg_percent = 100.0 *. (ideal_ratio -. hardware_ratio) /. ideal_ratio;
    optimum;
  }
