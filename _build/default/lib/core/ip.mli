(** IP - Instruction Parallelization (paper Sec. IV.B, Fig. 4).

    The CPHASE gates of one QAOA cost layer commute, so choosing which
    gates share a time step is a binary bin-packing problem: MOQ empty
    layers of qubit bins (MOQ = the maximum number of operations on any
    single qubit - a lower bound on the achievable layer count), filled
    first-fit in decreasing rank order, where a gate's rank is the summed
    operation counts of its two qubits.  Gates that fit nowhere are
    re-packed in a fresh round of layers.

    The resulting layer sequence is handed to the backend compiler in one
    piece (contrast with IC, which compiles layer-at-a-time). *)

val rank : Problem.t -> int * int -> int
(** Cumulative operations of the pair's qubits (Fig. 4(c)). *)

val pack_layers :
  ?packing_limit:int ->
  Qaoa_util.Rng.t ->
  Problem.t ->
  (int * int) list list
(** Layers of qubit-disjoint pairs covering every quadratic term exactly
    once.  [packing_limit] caps gates per layer (Sec. V.H); unlimited by
    default.  Ties in rank are ordered randomly. *)

val order : Qaoa_util.Rng.t -> Problem.t -> (int * int) list
(** Flattened [pack_layers]: the CPHASE sequence fed to the compiler
    (Fig. 4(d) bottom). *)

val minimum_layers : Problem.t -> int
(** MOQ - the best-case layer count (Fig. 4(b)). *)
