(** VIC - Variation-aware Incremental Compilation (paper Sec. IV.D).

    VIC is IC with the hop-distance matrix replaced by the
    reliability-weighted one: the distance between coupled qubits is the
    inverse of their CPHASE success rate (Fig. 6(d)), so layer formation
    prioritizes operations that execute reliably under the current
    mapping and defers the rest until SWAP insertion has drifted them
    toward better paths.  See {!Ic} for the shared machinery. *)

val config : ?packing_limit:int -> ?router:Qaoa_backend.Router.config -> unit -> Ic.config
(** An {!Ic.config} with [variation_aware = true]. *)

val compile :
  ?packing_limit:int ->
  ?router:Qaoa_backend.Router.config ->
  ?measure:bool ->
  Qaoa_util.Rng.t ->
  Qaoa_hardware.Device.t ->
  initial:Qaoa_backend.Mapping.t ->
  Problem.t ->
  Ansatz.params ->
  Qaoa_backend.Router.result
(** [Ic.compile] with the variation-aware distance matrix.
    @raise Invalid_argument if the device carries no calibration data. *)
