(** Ising encodings of classical NP-hard problems beyond MaxCut.

    The paper's applicability argument (Sec. VI): any NP-hard cost
    function can be written in the Ising format of {!Problem.t} and its
    quadratic terms compiled as CPHASE gates through the same pipeline.
    Each encoding documents its penalty construction; the test suite
    verifies on small instances that the encoded optimum coincides with
    the combinatorial optimum computed by independent brute force.

    Conventions: bit value 1 in a measured bitstring means "selected"
    (for set problems) / "true" (for SAT) / "partition B" (for
    partitioning).  All encodings are maximization problems, matching
    {!Problem.brute_force_best}. *)

val max_independent_set : ?penalty:float -> Qaoa_graph.Graph.t -> Problem.t
(** Maximize |S| subject to no edge inside S, as
    [sum_i x_i - penalty * sum_(ij in E) x_i x_j] with binary x.
    [penalty] defaults to 2.0 (> 1 guarantees penalized optima are
    independent sets). *)

val min_vertex_cover : ?penalty:float -> Qaoa_graph.Graph.t -> Problem.t
(** Minimize |C| subject to every edge covered; encoded as maximizing
    [-sum_i x_i - penalty * sum_(ij) (1 - x_i)(1 - x_j)] with [penalty]
    defaulting to 2.0.  The optimum value is [-(minimum cover size)]. *)

val number_partitioning : float list -> Problem.t
(** Split numbers into two sets with equal sums: maximize
    [-(sum_i a_i s_i)^2], whose optimum is 0 exactly when a perfect
    partition exists. *)

type literal = { var : int; negated : bool }
type clause = literal * literal

val max_2sat : num_vars:int -> clause list -> Problem.t
(** Maximize the number of satisfied 2-literal clauses.  Each clause
    (l1 or l2) contributes [1 - (1-v1)(1-v2)] with v the 0/1 value of
    the literal; expanded to Ising terms.  The optimum equals the true
    Max-2-SAT count (brute-force verified in tests). *)

val decode_selection : Problem.t -> int -> int list
(** Variables whose bit is 1 in a measured outcome, sorted - the
    selected set / true assignment. *)

val is_independent_set : Qaoa_graph.Graph.t -> int list -> bool
val is_vertex_cover : Qaoa_graph.Graph.t -> int list -> bool

val count_satisfied : clause list -> int -> int
(** Clauses of the list satisfied by a bit assignment. *)
