module Circuit = Qaoa_circuit.Circuit
module Gate = Qaoa_circuit.Gate
module Router = Qaoa_backend.Router

let reverse_circuit circuit =
  let unitary =
    List.filter Gate.is_unitary (Circuit.gates circuit)
  in
  Circuit.of_gates (Circuit.num_qubits circuit) (List.rev unitary)

let refine ?(iterations = 3) ?(router = Router.default_config) ~device
    ~initial circuit =
  let forward =
    Circuit.of_gates (Circuit.num_qubits circuit)
      (List.filter Gate.is_unitary (Circuit.gates circuit))
  in
  let backward = reverse_circuit circuit in
  let mapping = ref initial in
  for i = 1 to iterations do
    let dir = if i mod 2 = 1 then forward else backward in
    let r = Router.route ~config:router ~device ~initial:!mapping dir in
    mapping := r.Router.final_mapping
  done;
  !mapping
