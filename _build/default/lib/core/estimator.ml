module Statevector = Qaoa_sim.Statevector
module Sampler = Qaoa_sim.Sampler

type estimate = {
  mean : float;
  std_error : float;
  shots : int;
  confidence_95 : float * float;
}

let of_samples problem samples =
  let shots = Array.length samples in
  if shots = 0 then invalid_arg "Estimator.of_samples: no samples";
  let costs = Array.map (Problem.cost problem) samples in
  let mean = Array.fold_left ( +. ) 0.0 costs /. float_of_int shots in
  let var =
    Array.fold_left (fun acc c -> acc +. ((c -. mean) ** 2.0)) 0.0 costs
    /. float_of_int shots
  in
  let std_error = sqrt (var /. float_of_int shots) in
  {
    mean;
    std_error;
    shots;
    confidence_95 = (mean -. (1.96 *. std_error), mean +. (1.96 *. std_error));
  }

let of_state rng problem sv ~shots =
  of_samples problem (Sampler.sample_many rng sv ~shots)

let shots_for_precision problem sv ~std_error =
  if std_error <= 0.0 then
    invalid_arg "Estimator.shots_for_precision: std_error must be positive";
  let mean = Statevector.expectation_diag sv (Problem.cost problem) in
  let second =
    Statevector.expectation_diag sv (fun b -> Problem.cost problem b ** 2.0)
  in
  let variance = Float.max 0.0 (second -. (mean *. mean)) in
  int_of_float (Float.ceil (variance /. (std_error *. std_error)))
