(** Reverse-traversal initial-mapping refinement (Li, Ding, Xie -
    ASPLOS'19; paper Sec. III "Initial Mapping").

    Quantum circuits are reversible, so a mapping that ends a compilation
    of the reversed circuit is a good mapping to {i start} the forward
    circuit.  Starting from any initial mapping, the refinement
    alternately routes the forward and the reversed circuit, feeding each
    pass's final mapping into the next as its initial mapping.  The
    ASPLOS paper found ~3 traversals a good cost/quality point, at the
    price of the extra compilations - the trade-off our ablation bench
    quantifies. *)

val refine :
  ?iterations:int ->
  ?router:Qaoa_backend.Router.config ->
  device:Qaoa_hardware.Device.t ->
  initial:Qaoa_backend.Mapping.t ->
  Qaoa_circuit.Circuit.t ->
  Qaoa_backend.Mapping.t
(** [refine ~device ~initial circuit] runs [iterations] (default 3)
    reverse-traversal rounds over the unitary part of [circuit]
    (measurements are ignored for refinement) and returns the improved
    initial mapping. *)

val reverse_circuit : Qaoa_circuit.Circuit.t -> Qaoa_circuit.Circuit.t
(** The circuit with its unitary gates in reverse order (angles are kept
    as-is: SWAP insertion only cares about which qubit pairs interact,
    not the inverse angles).  Measurements and barriers are dropped. *)
