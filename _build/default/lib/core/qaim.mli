(** QAIM - integrated Qubit Allocation and Initial Mapping
    (paper Sec. IV.A, Figs. 3(d,e)).

    QAIM fuses topology selection and initial placement into one pass
    guided by two profiles:

    - {b hardware profile}: each physical qubit's connectivity strength
      (unique qubits within two hops, {!Qaoa_hardware.Profile});
    - {b program profile}: CPHASE operations per logical qubit
      ({!Problem.ops_per_qubit}).

    Procedure: logical qubits are served in descending operation count.
    The first goes to the free physical qubit of highest connectivity
    strength.  Each later qubit, when some of its logical neighbors are
    already placed, goes to the free physical neighbor of those
    placements maximizing

      connectivity strength / cumulative distance to placed neighbors,

    falling back to the globally strongest free qubit when it has no
    placed neighbor (or their physical neighborhoods are exhausted).
    Ties are broken uniformly at random, as in the paper's Example 1
    (qubit-7 vs qubit-12). *)

type config = {
  strength_order : int;
      (** Neighbor order for connectivity strength (default 2; the paper
          suggests raising it for larger architectures). *)
  weighted_by_ops : bool;
      (** Weigh distances by the number of operations to each placed
          neighbor - the cost-metric variation the paper sketches for
          arbitrary circuits (default false). *)
}

val default_config : config

val initial_mapping :
  ?config:config ->
  Qaoa_util.Rng.t ->
  Qaoa_hardware.Device.t ->
  Problem.t ->
  Qaoa_backend.Mapping.t
(** @raise Invalid_argument if the problem needs more qubits than the
    device offers. *)
