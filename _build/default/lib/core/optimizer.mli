(** Derivative-free classical optimizers for the QAOA hybrid loop.

    The paper drives its hardware-validation experiments with SciPy's
    L-BFGS-B (Sec. V.G); any derivative-free optimizer reaching the same
    optimum of the smooth, low-dimensional QAOA landscape is an adequate
    substitute (DESIGN.md, substitution 3).  Nelder-Mead is implemented
    here, plus a grid-seeded convenience wrapper for p=1. *)

type options = {
  max_iterations : int;  (** default 500 *)
  tolerance : float;  (** simplex spread convergence limit, default 1e-6 *)
}

val default_options : options

val nelder_mead :
  ?options:options ->
  ?maximize:bool ->
  initial:float array ->
  step:float ->
  (float array -> float) ->
  float array * float
(** [nelder_mead ~initial ~step f] runs the downhill-simplex method from
    a simplex spanned by [initial] and [initial + step * e_i].  Returns
    the best point and its value.  [maximize] (default false) negates the
    objective internally. *)

val optimize_p1 :
  ?grid:int ->
  ?options:options ->
  (gamma:float -> beta:float -> float) ->
  Ansatz.params * float
(** Maximize a p=1 objective over (gamma, beta) in [0, pi) x [0, pi/2):
    coarse [grid] x [grid] scan (default 24) then Nelder-Mead
    refinement. *)

val optimize_params :
  ?options:options ->
  Qaoa_util.Rng.t ->
  p:int ->
  (Ansatz.params -> float) ->
  Ansatz.params * float
(** Maximize a p-level objective with Nelder-Mead multistart (4 random
    starts), for the general ansatz where no closed form exists. *)
