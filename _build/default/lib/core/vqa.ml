module Graph = Qaoa_graph.Graph
module Device = Qaoa_hardware.Device
module Calibration = Qaoa_hardware.Calibration
module Profile = Qaoa_hardware.Profile
module Mapping = Qaoa_backend.Mapping
module Float_matrix = Qaoa_util.Float_matrix
module Rng = Qaoa_util.Rng

let link_success cal u v =
  match Calibration.cnot_error_opt cal u v with
  | Some e -> 1.0 -. e
  | None -> 0.0

let select_region device ~k =
  let cal = Device.calibration_exn device in
  let n = Device.num_qubits device in
  if k > n then invalid_arg "Vqa.select_region: k exceeds device size";
  let coupling = device.Device.coupling in
  let incident_sum q =
    List.fold_left
      (fun acc v -> acc +. link_success cal q v)
      0.0 (Graph.neighbors coupling q)
  in
  let seed =
    List.fold_left
      (fun best q ->
        match best with
        | None -> Some q
        | Some b -> if incident_sum q > incident_sum b then Some q else best)
      None
      (List.init n (fun i -> i))
  in
  let region = Hashtbl.create k in
  (match seed with
  | Some s -> Hashtbl.replace region s ()
  | None -> invalid_arg "Vqa.select_region: empty device");
  while Hashtbl.length region < k do
    (* outside qubit with the largest reliability into the region,
       falling back to the best-connected outsider when the frontier is
       empty (disconnected coupling graphs) *)
    let gain q =
      List.fold_left
        (fun acc v ->
          if Hashtbl.mem region v then acc +. link_success cal q v else acc)
        0.0 (Graph.neighbors coupling q)
    in
    let outside =
      List.filter (fun q -> not (Hashtbl.mem region q)) (List.init n (fun i -> i))
    in
    let best =
      List.fold_left
        (fun best q ->
          match best with
          | None -> Some q
          | Some b ->
            let gq = gain q and gb = gain b in
            if gq > gb || (gq = gb && incident_sum q > incident_sum b) then
              Some q
            else best)
        None outside
    in
    match best with
    | Some q -> Hashtbl.replace region q ()
    | None -> assert false (* k <= n guarantees an outside qubit *)
  done;
  List.sort compare (Hashtbl.fold (fun q () acc -> q :: acc) region [])

let initial_mapping rng device problem =
  let k = problem.Problem.num_vars in
  let region = select_region device ~k in
  let in_region = Hashtbl.create k in
  List.iter (fun q -> Hashtbl.replace in_region q ()) region;
  let dist = Profile.hop_distances device in
  let pg = Problem.interaction_graph problem in
  let ops = Problem.ops_per_qubit problem in
  let order =
    List.stable_sort
      (fun a b -> compare ops.(b) ops.(a))
      (Rng.shuffle_list rng (List.init k (fun i -> i)))
  in
  let cal = Device.calibration_exn device in
  let l2p = Array.make k (-1) in
  let taken = Hashtbl.create k in
  let free () =
    List.filter (fun q -> not (Hashtbl.mem taken q)) region
  in
  let incident q =
    List.fold_left
      (fun acc v -> acc +. link_success cal q v)
      0.0
      (Graph.neighbors device.Device.coupling q)
  in
  let argmax score = function
    | [] -> invalid_arg "Vqa.initial_mapping: no free region qubit"
    | first :: rest ->
      List.fold_left
        (fun best q -> if score q > score best then q else best)
        first rest
  in
  List.iter
    (fun l ->
      let placed_neighbor_locs =
        List.filter_map
          (fun nb -> if l2p.(nb) >= 0 then Some l2p.(nb) else None)
          (Graph.neighbors pg l)
      in
      let score q =
        if placed_neighbor_locs = [] then incident q
        else
          -.List.fold_left
              (fun acc p -> acc +. Float_matrix.get dist q p)
              0.0 placed_neighbor_locs
      in
      let q = argmax score (free ()) in
      l2p.(l) <- q;
      Hashtbl.replace taken q ())
    order;
  Mapping.of_array ~num_physical:(Device.num_qubits device) l2p
