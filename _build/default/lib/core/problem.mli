(** Combinatorial optimization problems in Ising form.

    Any NP-hard cost function can be written over spin variables
    s_i = +/-1 as

      C(s) = constant + sum_i h_i s_i + sum_(i<j) J_ij s_i s_j

    (paper Sec. II "QAOA-circuits" and Sec. VI "Applicability beyond
    QAOA-MaxCut").  Each quadratic term becomes one CPHASE gate in the
    cost layer; each linear term becomes an RZ.

    The convention here is {b maximization}: QAOA searches for the
    bitstring of highest [cost].  Bitstrings are basis-state indices with
    qubit [i] at bit [i]; bit value 0 means s_i = +1, bit value 1 means
    s_i = -1. *)

type t = {
  num_vars : int;
  quadratic : (int * int * float) list;
      (** [(i, j, coeff)] with [i <> j]; duplicates are summed by
          {!create}. *)
  linear : (int * float) list;
  constant : float;
}

val create :
  ?linear:(int * float) list ->
  ?constant:float ->
  num_vars:int ->
  (int * int * float) list ->
  t
(** Normalizes terms: orders pairs as [(min, max)], merges duplicates,
    drops zero coefficients.  @raise Invalid_argument on out-of-range
    variables or i = j quadratic terms. *)

val of_maxcut : ?weights:(int * int -> float) -> Qaoa_graph.Graph.t -> t
(** MaxCut objective: cut(s) = sum_edges w_uv (1 - s_u s_v) / 2.
    [weights] defaults to 1 on every edge. *)

val interaction_graph : t -> Qaoa_graph.Graph.t
(** Graph with one edge per quadratic term - the problem graph whose
    structure drives all mapping heuristics. *)

val cphase_pairs : t -> (int * int) list
(** Qubit pairs of the cost layer's CPHASE gates, [(min, max)], sorted -
    the "CPHASE gate list input" of Fig. 4(a). *)

val spin : int -> int -> float
(** [spin bits i] is +1.0 if bit [i] of [bits] is 0, else -1.0. *)

val cost : t -> int -> float
(** Objective value of a bitstring (basis index). *)

val brute_force_best : t -> int * float
(** Exhaustive maximum: (argmax bitstring, max cost).  O(2^n * terms);
    intended for n <= ~24.  @raise Invalid_argument for larger n. *)

val ops_per_qubit : t -> int array
(** Number of quadratic terms touching each variable - the "program
    profile" of QAIM and IP (Fig. 3(c), Fig. 4(b)). *)

val max_ops_per_qubit : t -> int
(** MOQ of Fig. 4(b): maximum of {!ops_per_qubit} (0 when there are no
    quadratic terms). *)
