(** One-call QAOA solving: the end-to-end pipeline a downstream user
    reaches for first.

    [solve] strings together the library's pieces: pick circuit
    parameters (closed form for unweighted MaxCut at p = 1, simulator
    Nelder-Mead otherwise), compile for the device with the chosen
    strategy, execute (noiseless statevector sampling, or trajectory
    noise when the device is calibrated and [noisy] is set), translate
    physical outcomes through the final mapping, and return the best
    sampled solution with quality diagnostics. *)

type execution = Ideal | Noisy
(** [Noisy] needs device calibration and uses the stochastic-Pauli
    trajectory simulator (readout flips included). *)

type outcome = {
  best_bits : int;  (** best sampled logical bitstring *)
  best_cost : float;
  approximation_ratio : float;
      (** mean sampled cost / brute-force optimum (problems up to 24
          variables; beyond that the ratio is against the best sample) *)
  mean_cost : float;
  optimum : float option;  (** brute-force optimum when tractable *)
  params : Ansatz.params;
  compiled : Compile.result;
}

val solve :
  ?strategy:Compile.strategy ->
  ?p:int ->
  ?shots:int ->
  ?execution:execution ->
  ?seed:int ->
  Qaoa_hardware.Device.t ->
  Problem.t ->
  outcome
(** Defaults: [strategy = Ic None], [p = 1], [shots = 2048],
    [execution = Ideal], [seed = 42].

    @raise Invalid_argument if the problem exceeds the device, if
    [Noisy] is requested without calibration, or if the problem has no
    quadratic terms at all (nothing to optimize variationally). *)
