let config ?packing_limit ?(router = Qaoa_backend.Router.default_config) () =
  { Ic.packing_limit; variation_aware = true; router }

let compile ?packing_limit ?router ?measure rng device ~initial problem params =
  Ic.compile ~config:(config ?packing_limit ?router ()) ?measure rng device
    ~initial problem params
