(** QAOA parameterized-quantum-circuit construction.

    The p-level ansatz for a problem Hamiltonian C (Sec. I, Fig. 1(b)):

      |psi(gamma, beta)> =
        prod_{l=1..p} [ U_B(beta_l) U_C(gamma_l) ]  H^(x)n  |0>

    with U_C(g) = exp(-i g C) realized as one CPHASE per quadratic term
    (plus one RZ per linear term) and U_B(b) = prod_q RX(2 b, q).

    The CPHASE gates within one cost layer commute, so any permutation of
    the cost-layer gate list yields the same state - the property every
    proposed methodology exploits.  [cost_layer_gates] exposes the raw
    list so that IP/IC/VIC can order it themselves. *)

type params = { gammas : float array; betas : float array }
(** One (gamma, beta) pair per level; lengths must agree. *)

val params_p1 : gamma:float -> beta:float -> params

val levels : params -> int
(** @raise Invalid_argument if the two arrays differ in length. *)

val cost_layer_gates :
  ?order:(int * int) list -> Problem.t -> gamma:float -> Qaoa_circuit.Gate.t list
(** Gates of one cost layer U_C(gamma).  [order], when given, must be a
    permutation of {!Problem.cphase_pairs} and fixes the CPHASE emission
    order (the knob the compilation strategies turn); default is the
    sorted pair order.  Linear-term RZ gates follow the CPHASEs. *)

val cphase_gate : Problem.t -> gamma:float -> int * int -> Qaoa_circuit.Gate.t
(** The CPHASE gate of one quadratic term at the given gamma - the unit
    IC/VIC schedule one at a time.  @raise Invalid_argument if the pair
    is not a quadratic term of the problem. *)

val linear_gates : Problem.t -> gamma:float -> Qaoa_circuit.Gate.t list
(** RZ gates of the linear terms of one cost layer (empty for MaxCut). *)

val mixer_gates : Problem.t -> beta:float -> Qaoa_circuit.Gate.t list
(** RX(2 beta) on every variable qubit. *)

val circuit :
  ?measure:bool ->
  ?orders:(int * int) list list ->
  Problem.t ->
  params ->
  Qaoa_circuit.Circuit.t
(** Full logical ansatz: Hadamard wall, then p cost+mixer blocks, then
    (by default) measurement of every qubit.  [orders] gives a CPHASE
    order per level (defaults to sorted order for all levels). *)

val state : Problem.t -> params -> Qaoa_sim.Statevector.t
(** Noiseless output state of the (unmeasured) ansatz. *)

val expectation : Problem.t -> params -> float
(** Exact <psi| C |psi> via the statevector - the objective the
    classical optimization loop maximizes. *)

val approximation_ratio_of_samples : Problem.t -> int array -> float
(** Mean cost of sampled bitstrings divided by the true maximum cost
    (Sec. II "Approximation Ratio"). *)
