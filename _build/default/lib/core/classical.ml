module Rng = Qaoa_util.Rng

(* adjacency.(i) = [(j, coeff); ...] for quadratic terms touching i *)
let adjacency problem =
  let adj = Array.make problem.Problem.num_vars [] in
  List.iter
    (fun (i, j, c) ->
      adj.(i) <- (j, c) :: adj.(i);
      adj.(j) <- (i, c) :: adj.(j))
    problem.Problem.quadratic;
  adj

let linear_field problem =
  let h = Array.make problem.Problem.num_vars 0.0 in
  List.iter (fun (i, c) -> h.(i) <- h.(i) +. c) problem.Problem.linear;
  h

(* Flipping s_i negates every term containing s_i:
   delta = -2 s_i (h_i + sum_j c_ij s_j). *)
let delta_with adj h bits i =
  let si = Problem.spin bits i in
  let coupling =
    List.fold_left
      (fun acc (j, c) -> acc +. (c *. Problem.spin bits j))
      0.0 adj.(i)
  in
  -2.0 *. si *. (h.(i) +. coupling)

let flip_delta problem bits i =
  delta_with (adjacency problem) (linear_field problem) bits i

let random_bits rng n = if n = 0 then 0 else Rng.int rng (1 lsl n)

let random_sampling rng ?(samples = 1024) problem =
  let n = problem.Problem.num_vars in
  let best = ref (random_bits rng n) in
  let best_cost = ref (Problem.cost problem !best) in
  for _ = 2 to samples do
    let b = random_bits rng n in
    let c = Problem.cost problem b in
    if c > !best_cost then begin
      best := b;
      best_cost := c
    end
  done;
  (!best, !best_cost)

let local_search rng ?(restarts = 8) problem =
  let n = problem.Problem.num_vars in
  let adj = adjacency problem and h = linear_field problem in
  let run () =
    let bits = ref (random_bits rng n) in
    let cost = ref (Problem.cost problem !bits) in
    let improved = ref true in
    while !improved do
      improved := false;
      (* steepest ascent: flip the best positive-delta bit *)
      let best_i = ref (-1) and best_d = ref 1e-12 in
      for i = 0 to n - 1 do
        let d = delta_with adj h !bits i in
        if d > !best_d then begin
          best_i := i;
          best_d := d
        end
      done;
      if !best_i >= 0 then begin
        bits := !bits lxor (1 lsl !best_i);
        cost := !cost +. !best_d;
        improved := true
      end
    done;
    (!bits, !cost)
  in
  let first = run () in
  List.fold_left
    (fun ((_, bc) as best) _ ->
      let (_, c) as cand = run () in
      if c > bc then cand else best)
    first
    (List.init (max 0 (restarts - 1)) (fun i -> i))

let simulated_annealing rng ?steps ?t_start ?(t_end = 1e-3) problem =
  let n = problem.Problem.num_vars in
  if n = 0 then (0, Problem.cost problem 0)
  else begin
  let adj = adjacency problem and h = linear_field problem in
  let steps =
    Option.value ~default:(20 * (1 lsl min n 10)) steps
  in
  let t_start =
    match t_start with
    | Some t -> t
    | None ->
      (* scale: the largest single-flip |delta| from a random state *)
      let bits = random_bits rng n in
      let m = ref 1.0 in
      for i = 0 to n - 1 do
        m := Float.max !m (Float.abs (delta_with adj h bits i))
      done;
      !m
  in
  let bits = ref (random_bits rng n) in
  let cost = ref (Problem.cost problem !bits) in
  let best = ref !bits and best_cost = ref !cost in
  let cooling =
    if steps <= 1 then 1.0 else (t_end /. t_start) ** (1.0 /. float_of_int (steps - 1))
  in
  let temp = ref t_start in
  for _ = 1 to steps do
    let i = Rng.int rng n in
    let d = delta_with adj h !bits i in
    if d >= 0.0 || Rng.float rng 1.0 < exp (d /. !temp) then begin
      bits := !bits lxor (1 lsl i);
      cost := !cost +. d;
      if !cost > !best_cost then begin
        best := !bits;
        best_cost := !cost
      end
    end;
    temp := !temp *. cooling
  done;
  (!best, !best_cost)
  end
