(** Crosstalk-aware post-compilation sequentialization (paper Sec. VI,
    following Murali et al., ASPLOS'20).

    On real devices only a small subset of couplings is highly crosstalk
    prone (5 of 221 on IBM Poughkeepsie); serializing the parallel
    operations on just those couplings trades a little depth for less
    crosstalk error.  This pass re-schedules an already-compiled circuit:
    whenever an ASAP layer contains two or more two-qubit gates acting on
    designated high-crosstalk couplings, all but the first are pushed into
    subsequent time steps (realized with barrier fences). *)

val sequentialize :
  high_crosstalk:(int * int) list ->
  Qaoa_circuit.Circuit.t ->
  Qaoa_circuit.Circuit.t
(** Returns an equivalent circuit in which no two high-crosstalk gates
    share a time step.  Circuits without parallel high-crosstalk gates
    are returned unchanged (gate-for-gate). *)

type stats = {
  conflicts : int;  (** layers that held parallel high-crosstalk gates *)
  depth_before : int;
  depth_after : int;
}

val apply_with_stats :
  high_crosstalk:(int * int) list ->
  Qaoa_circuit.Circuit.t ->
  Qaoa_circuit.Circuit.t * stats
