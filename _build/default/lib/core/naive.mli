(** The NAIVE baseline (paper Sec. IV): a uniformly random
    logical-to-physical initial mapping combined with a randomly ordered
    CPHASE gate sequence, compiled by the backend as-is.  Every proposed
    methodology is quantified against this configuration. *)

val initial_mapping :
  Qaoa_util.Rng.t -> Qaoa_hardware.Device.t -> Problem.t -> Qaoa_backend.Mapping.t
(** Uniform random injection of the problem's variables into the device's
    physical qubits. *)

val cphase_order : Qaoa_util.Rng.t -> Problem.t -> (int * int) list
(** Random permutation of the problem's CPHASE pair list. *)
