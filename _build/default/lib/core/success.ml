module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Decompose = Qaoa_circuit.Decompose
module Calibration = Qaoa_hardware.Calibration
module Device = Qaoa_hardware.Device

let fold_log_success ?(include_readout = false) cal circuit =
  let c = Decompose.circuit circuit in
  let e1 = Calibration.single_qubit_error cal in
  let ro = Calibration.readout_error cal in
  List.fold_left
    (fun acc g ->
      match g with
      | Gate.Cnot (a, b) -> acc +. log (1.0 -. Calibration.cnot_error cal a b)
      | Gate.Barrier -> acc
      | Gate.Measure _ ->
        if include_readout then acc +. log (1.0 -. ro) else acc
      | Gate.Cphase _ | Gate.Swap _ -> assert false (* decomposed *)
      | _ -> acc +. log (1.0 -. e1))
    0.0 (Circuit.gates c)

let log_success cal circuit = fold_log_success cal circuit

let of_circuit ?include_readout cal circuit =
  exp (fold_log_success ?include_readout cal circuit)

let of_result ?include_readout device (r : Qaoa_backend.Router.result) =
  of_circuit ?include_readout (Device.calibration_exn device) r.circuit
