(** Classical baselines for Ising/MaxCut objectives.

    QAOA approximation ratios only mean something against classical
    effort (the paper's approximation-ratio discussion, Sec. II).  Three
    standard baselines over the same {!Problem.t} objective:

    - uniform random sampling (the gamma = beta = 0 QAOA limit);
    - greedy 1-flip local search from a random start (restarts supported);
    - simulated annealing with a geometric temperature schedule.

    All maximize {!Problem.cost} and report (best bitstring, best cost). *)

val random_sampling :
  Qaoa_util.Rng.t -> ?samples:int -> Problem.t -> int * float
(** Best of [samples] (default 1024) uniform draws. *)

val local_search :
  Qaoa_util.Rng.t -> ?restarts:int -> Problem.t -> int * float
(** Steepest-ascent single-bit-flip search to a local optimum, best of
    [restarts] (default 8) random starts.  Each restart is O(n * steps)
    using incremental cost deltas. *)

val simulated_annealing :
  Qaoa_util.Rng.t ->
  ?steps:int ->
  ?t_start:float ->
  ?t_end:float ->
  Problem.t ->
  int * float
(** Metropolis single-flip annealing over [steps] proposals (default
    20 * 2^min(n,10)), geometric cooling from [t_start] (default: the
    largest single-flip |delta|) to [t_end] (default 1e-3). *)

val flip_delta : Problem.t -> int -> int -> float
(** [flip_delta p bits i]: exact change of {!Problem.cost} from flipping
    bit [i] of [bits], computed in O(degree(i)) - the kernel both search
    baselines rely on (property-tested against recomputation). *)
