module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Layering = Qaoa_circuit.Layering

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let normalize pairs =
  Pair_set.of_list (List.map (fun (a, b) -> (min a b, max a b)) pairs)

let is_hot hot g =
  Gate.is_two_qubit g
  &&
  match Gate.qubits g with
  | [ a; b ] -> Pair_set.mem (min a b, max a b) hot
  | _ -> false

type stats = { conflicts : int; depth_before : int; depth_after : int }

let apply_with_stats ~high_crosstalk circuit =
  let hot = normalize high_crosstalk in
  let layers = Layering.layers circuit in
  let conflicts = ref 0 in
  let out = ref (Circuit.create (Circuit.num_qubits circuit)) in
  let emit gs = out := Circuit.append_list !out gs in
  List.iter
    (fun layer ->
      let hot_gates, cold_gates = List.partition (is_hot hot) layer in
      match hot_gates with
      | [] | [ _ ] -> emit (cold_gates @ hot_gates)
      | first :: rest ->
        incr conflicts;
        (* Keep one hot gate with the layer; fence each remaining hot
           gate into its own time step. *)
        emit (cold_gates @ [ first ]);
        List.iter
          (fun g ->
            emit [ Gate.Barrier ];
            emit [ g ])
          rest)
    layers;
  let result = !out in
  ( result,
    {
      conflicts = !conflicts;
      depth_before = Layering.depth circuit;
      depth_after = Layering.depth result;
    } )

let sequentialize ~high_crosstalk circuit =
  fst (apply_with_stats ~high_crosstalk circuit)
