(** Workload generation for the evaluation experiments (paper Sec. V.B):
    randomly chosen Erdos-Renyi graphs with varied edge probabilities and
    random regular graphs with varied edges/node, turned into
    QAOA-MaxCut problems. *)

type graph_kind =
  | Erdos_renyi of float  (** edge probability *)
  | Regular of int  (** edges per node *)
  | Gnm of int  (** exact edge count (the Sec. VI ring-8 workload) *)
  | Barabasi_albert of int  (** attachments per node (scale-free hubs) *)
  | Watts_strogatz of int * float  (** (k, beta) small-world lattice *)

val kind_name : graph_kind -> string
(** e.g. "ER(p=0.5)", "6-regular", "G(n,m=8)". *)

val graph : Qaoa_util.Rng.t -> graph_kind -> n:int -> Qaoa_graph.Graph.t
(** One random graph of the kind.  Regular kinds with odd [n * d] raise
    [Invalid_argument] (the paper's parameter grid never hits this). *)

val problems :
  Qaoa_util.Rng.t -> graph_kind -> n:int -> count:int -> Qaoa_core.Problem.t list
(** [count] independent MaxCut instances.  Graphs with no edges are
    redrawn (an edgeless instance has no cost layer to compile). *)

val default_params : Qaoa_core.Ansatz.params
(** Fixed p=1 angles used by the compilation-quality experiments; the
    circuit structure - all the compiler sees - does not depend on the
    angle values. *)
