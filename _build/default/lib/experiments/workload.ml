module Rng = Qaoa_util.Rng
module Generators = Qaoa_graph.Generators
module Graph = Qaoa_graph.Graph

type graph_kind =
  | Erdos_renyi of float
  | Regular of int
  | Gnm of int
  | Barabasi_albert of int
  | Watts_strogatz of int * float

let kind_name = function
  | Erdos_renyi p -> Printf.sprintf "ER(p=%.1f)" p
  | Regular d -> Printf.sprintf "%d-regular" d
  | Gnm m -> Printf.sprintf "G(n,m=%d)" m
  | Barabasi_albert m -> Printf.sprintf "BA(m=%d)" m
  | Watts_strogatz (k, beta) -> Printf.sprintf "WS(k=%d,b=%.1f)" k beta

let graph rng kind ~n =
  match kind with
  | Erdos_renyi p -> Generators.erdos_renyi rng ~n ~p
  | Regular d -> Generators.random_regular rng ~n ~d
  | Gnm m -> Generators.erdos_renyi_gnm rng ~n ~m
  | Barabasi_albert m -> Generators.barabasi_albert rng ~n ~m
  | Watts_strogatz (k, beta) -> Generators.watts_strogatz rng ~n ~k ~beta

let problems rng kind ~n ~count =
  let rec draw () =
    let g = graph rng kind ~n in
    if Graph.num_edges g = 0 then draw () else g
  in
  List.init count (fun _ -> Qaoa_core.Problem.of_maxcut (draw ()))

let default_params = Qaoa_core.Ansatz.params_p1 ~gamma:0.7 ~beta:0.4
