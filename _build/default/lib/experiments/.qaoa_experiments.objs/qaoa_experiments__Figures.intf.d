lib/experiments/figures.mli:
