lib/experiments/report.mli: Figures
