lib/experiments/ablations.mli: Figures
