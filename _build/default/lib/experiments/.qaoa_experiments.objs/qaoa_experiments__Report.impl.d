lib/experiments/report.ml: Buffer Figures Fun List Printf Qaoa_util
