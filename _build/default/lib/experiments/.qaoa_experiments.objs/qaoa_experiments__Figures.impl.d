lib/experiments/figures.ml: Float Hashtbl List Option Printf Qaoa_core Qaoa_hardware Qaoa_util Runner String Sys Workload
