lib/experiments/runner.ml: List Option Qaoa_circuit Qaoa_core Qaoa_hardware Qaoa_util
