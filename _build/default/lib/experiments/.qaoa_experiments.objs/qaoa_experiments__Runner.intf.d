lib/experiments/runner.mli: Qaoa_core Qaoa_hardware
