lib/experiments/workload.mli: Qaoa_core Qaoa_graph Qaoa_util
