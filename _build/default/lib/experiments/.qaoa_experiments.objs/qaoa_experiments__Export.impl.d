lib/experiments/export.ml: Buffer Filename Float Fun List Printf String
