lib/experiments/workload.ml: List Printf Qaoa_core Qaoa_graph Qaoa_util
