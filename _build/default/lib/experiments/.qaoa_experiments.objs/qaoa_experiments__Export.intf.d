lib/experiments/export.mli: Figures
