lib/experiments/ablations.ml: Array Figures Hashtbl List Printf Qaoa_backend Qaoa_circuit Qaoa_core Qaoa_hardware Qaoa_util Runner Workload
