(** Markdown report generation: turns figure/ablation rows into an
    EXPERIMENTS.md-style document, so a bench run leaves a
    self-describing artifact next to its CSVs. *)

type section = {
  id : string;  (** e.g. "fig9" *)
  title : string;
  columns : string list;
  rows : Figures.row list;
  paper_notes : string list;  (** the paper's reference numbers, verbatim *)
}

val section_to_markdown : section -> string
(** "## id - title", a column-aligned table, then a blockquote of paper
    notes. *)

val to_markdown : scale:Figures.scale -> section list -> string
(** Full document with a provenance header (scale, library name). *)

val write : path:string -> scale:Figures.scale -> section list -> unit

val known_sections : (string * (string * string list * string list)) list
(** Per figure id: (title, column names, paper notes) - the metadata the
    bench harness combines with measured rows.  Covers fig7..fig12,
    ring8 and every ablation id. *)

val section_of_rows : scale:Figures.scale -> string -> Figures.row list -> section
(** Look up [known_sections] metadata for the id (unknown ids get
    generic headers) and attach the measured rows.  [scale] is recorded
    in the title. *)
