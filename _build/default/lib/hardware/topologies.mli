(** Concrete device topologies used in the paper's evaluation (Sec. V.B):
    the 20-qubit ibmq_20_tokyo, the 15-qubit ibmq_16_melbourne, a
    hypothetical 36-qubit 6x6 grid, plus the linear and ring architectures
    used in the worked examples and the Sec. VI comparison. *)

val ibmq_20_tokyo : unit -> Device.t
(** 20 qubits in a 4x5 lattice with diagonal couplings.  The edge list is
    reconstructed from the literature and validated in the test suite
    against the paper's Fig. 3(b) connectivity-strength profile (e.g.
    strength(qubit 0) = 7, strength(qubit 7) = strength(qubit 12) = 18). *)

val ibmq_16_melbourne : unit -> Device.t
(** 15-qubit ladder, shipped with the CNOT-error calibration snapshot of
    4/8/2020 transcribed from Fig. 10(a).  The per-edge placement of the
    transcribed rates is a best-effort reading of the figure; only the
    rate multiset, not its exact placement, affects aggregate results. *)

val grid : rows:int -> cols:int -> Device.t
val grid_6x6 : unit -> Device.t
(** The hypothetical 36-qubit architecture of Fig. 12. *)

val linear : int -> Device.t
(** [n] qubits coupled in a chain (Fig. 1(d)). *)

val ring : int -> Device.t
(** [n >= 3] qubits coupled cyclically (the 8-qubit architecture of the
    Sec. VI comparison against the temporal planner). *)

val heavy_hex_27 : unit -> Device.t
(** 27-qubit heavy-hex lattice (IBM Falcon class, e.g. ibmq_montreal):
    sparser than tokyo (degree <= 3), the architecture family IBM moved
    to after the paper's devices - useful to study how the methodologies
    behave when connectivity drops. *)

val hypothetical_6q : unit -> Device.t
(** The 6-qubit ring of Fig. 6(a) with the hypothetical CPHASE success
    rates of Fig. 6(b), used in documentation examples and tests of the
    variation-aware distance matrix. *)

val by_name : string -> Device.t option
(** Lookup by name ("tokyo", "melbourne", "grid6x6", "linear<N>",
    "ring<N>"); used by the CLIs. *)

val known_names : string list
