module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators

let tokyo_edges =
  (* Rows, columns and diagonal couplings of the 4x5 ibmq_20_tokyo lattice
     (reconstruction following Li et al., ASPLOS'19). *)
  [
    (* rows *)
    (0, 1); (1, 2); (2, 3); (3, 4);
    (5, 6); (6, 7); (7, 8); (8, 9);
    (10, 11); (11, 12); (12, 13); (13, 14);
    (15, 16); (16, 17); (17, 18); (18, 19);
    (* columns *)
    (0, 5); (5, 10); (10, 15);
    (1, 6); (6, 11); (11, 16);
    (2, 7); (7, 12); (12, 17);
    (3, 8); (8, 13); (13, 18);
    (4, 9); (9, 14); (14, 19);
    (* diagonals *)
    (1, 7); (2, 6);
    (3, 9); (4, 8);
    (5, 11); (6, 10);
    (7, 13); (8, 12);
    (11, 17); (12, 16);
    (13, 19); (14, 18);
  ]

let ibmq_20_tokyo () =
  Device.create ~name:"ibmq_20_tokyo" (Graph.of_edges 20 tokyo_edges)

(* CNOT error rates transcribed from Fig. 10(a) (calibration of 4/8/2020).
   The rate multiset is faithful to the figure; per-edge placement is a
   best-effort reading. *)
let melbourne_calibration_data =
  [
    (0, 1, 1.87e-2);
    (1, 2, 1.77e-2);
    (2, 3, 1.54e-2);
    (3, 4, 8.60e-2);
    (4, 5, 5.80e-2);
    (5, 6, 2.96e-2);
    (0, 14, 2.85e-2);
    (1, 13, 7.63e-2);
    (2, 12, 2.26e-2);
    (3, 11, 5.03e-2);
    (4, 10, 7.78e-2);
    (5, 9, 4.11e-2);
    (6, 8, 3.46e-2);
    (14, 13, 8.29e-2);
    (13, 12, 7.63e-2);
    (12, 11, 4.16e-2);
    (11, 10, 3.68e-2);
    (10, 9, 4.70e-2);
    (9, 8, 3.89e-2);
    (8, 7, 2.87e-2);
  ]

let ibmq_16_melbourne () =
  let edges = List.map (fun (u, v, _) -> (u, v)) melbourne_calibration_data in
  let calibration =
    Calibration.create ~single_qubit_error:1e-3 ~readout_error:3e-2
      melbourne_calibration_data
  in
  Device.create ~calibration ~name:"ibmq_16_melbourne"
    (Graph.of_edges 15 edges)

let grid ~rows ~cols =
  Device.create
    ~name:(Printf.sprintf "grid_%dx%d" rows cols)
    (Generators.grid ~rows ~cols)

let grid_6x6 () = grid ~rows:6 ~cols:6

let linear n =
  Device.create ~name:(Printf.sprintf "linear_%d" n) (Generators.path n)

let ring n =
  Device.create ~name:(Printf.sprintf "ring_%d" n) (Generators.cycle n)

let heavy_hex_27_edges =
  (* Falcon r4 heavy-hex coupling map (ibmq_montreal / mumbai). *)
  [
    (0, 1); (1, 2); (1, 4); (2, 3); (3, 5); (4, 7); (5, 8); (6, 7);
    (7, 10); (8, 9); (8, 11); (10, 12); (11, 14); (12, 13); (12, 15);
    (13, 14); (14, 16); (15, 18); (16, 19); (17, 18); (18, 21); (19, 20);
    (19, 22); (21, 23); (22, 25); (23, 24); (24, 25); (25, 26);
  ]

let heavy_hex_27 () =
  Device.create ~name:"heavy_hex_27" (Graph.of_edges 27 heavy_hex_27_edges)

let hypothetical_6q () =
  (* Fig. 6(a,b): 6-qubit ring with a (1,4) chord; CPHASE success rates
     are given directly, so store CNOT error = 1 - sqrt(R). *)
  let cphase_rates =
    [
      (0, 1, 0.90); (0, 5, 0.82); (1, 2, 0.85); (1, 4, 0.81);
      (2, 3, 0.89); (3, 4, 0.88); (4, 5, 0.84);
    ]
  in
  let edges = List.map (fun (u, v, _) -> (u, v)) cphase_rates in
  let calibration =
    Calibration.create ~single_qubit_error:0.0
      (List.map (fun (u, v, r) -> (u, v, 1.0 -. sqrt r)) cphase_rates)
  in
  Device.create ~calibration ~name:"hypothetical_6q" (Graph.of_edges 6 edges)

let known_names =
  [
    "tokyo"; "melbourne"; "grid6x6"; "heavyhex27"; "hypothetical6q";
    "linear<N>"; "ring<N>";
  ]

let by_name name =
  let prefixed p =
    if String.length name > String.length p
       && String.sub name 0 (String.length p) = p
    then
      int_of_string_opt
        (String.sub name (String.length p)
           (String.length name - String.length p))
    else None
  in
  match name with
  | "tokyo" | "ibmq_20_tokyo" -> Some (ibmq_20_tokyo ())
  | "melbourne" | "ibmq_16_melbourne" -> Some (ibmq_16_melbourne ())
  | "grid6x6" -> Some (grid_6x6 ())
  | "heavyhex27" | "heavy_hex_27" -> Some (heavy_hex_27 ())
  | "hypothetical6q" -> Some (hypothetical_6q ())
  | _ -> (
    match prefixed "linear" with
    | Some n when n > 0 -> Some (linear n)
    | _ -> (
      match prefixed "ring" with
      | Some n when n >= 3 -> Some (ring n)
      | _ -> None))
