type t = {
  name : string;
  coupling : Qaoa_graph.Graph.t;
  calibration : Calibration.t option;
}

let create ?calibration ~name coupling = { name; coupling; calibration }
let num_qubits t = Qaoa_graph.Graph.num_vertices t.coupling
let coupled t u v = Qaoa_graph.Graph.has_edge t.coupling u v
let coupling_edges t = Qaoa_graph.Graph.edges t.coupling
let with_calibration t calibration = { t with calibration = Some calibration }

let with_random_calibration ?mu ?sigma rng t =
  let cal = Calibration.random rng ?mu ?sigma (coupling_edges t) in
  { t with calibration = Some cal }

let calibration_exn t =
  match t.calibration with
  | Some c -> c
  | None -> invalid_arg (t.name ^ ": device has no calibration data")
