(** Decoherence model: per-qubit relaxation/dephasing times and gate
    durations.

    The paper's motivation (Sec. II) is that deeper circuits spend more
    wall-clock time and lose more state to decoherence; its
    success-probability metric covers gate errors only.  This module adds
    the missing time dimension: given a schedule of the compiled circuit,
    each qubit accumulates exp(-t_active / T1_q) decay over the interval
    between its first gate and its measurement (idle slots included -
    qubits wait in superposition).  The product over qubits is the
    decoherence factor; multiplied with the gate-error product it yields
    an estimated success probability in the spirit of Tannu & Qureshi's
    ESP. *)

type t = {
  t1 : float array;  (** per-qubit relaxation time (seconds) *)
  t2 : float array;  (** per-qubit dephasing time; min(T1, T2) drives decay *)
  gate_duration_1q : float;  (** seconds per one-qubit gate layer *)
  gate_duration_2q : float;  (** seconds per CNOT layer *)
}

val create :
  ?gate_duration_1q:float ->
  ?gate_duration_2q:float ->
  t1:float array ->
  t2:float array ->
  unit ->
  t
(** Durations default to IBM-typical 50 ns (1q) and 300 ns (2q).
    @raise Invalid_argument if the arrays differ in length. *)

val uniform :
  ?gate_duration_1q:float ->
  ?gate_duration_2q:float ->
  num_qubits:int ->
  t1:float ->
  t2:float ->
  unit ->
  t

val random :
  Qaoa_util.Rng.t ->
  ?mu_t1:float ->
  ?sigma_t1:float ->
  num_qubits:int ->
  unit ->
  t
(** T1 drawn from a clamped normal (defaults mu 50 us, sigma 15 us);
    T2 drawn as a uniform fraction in [0.5, 1] of 2 T1 capped at 1.5 T1. *)

val circuit_duration : t -> Qaoa_circuit.Circuit.t -> float
(** Wall-clock estimate: each ASAP layer of the decomposed circuit costs
    the duration of its slowest gate. *)

type schedule = Asap | Alap

val active_window :
  ?schedule:schedule -> Qaoa_circuit.Circuit.t -> (int * int) option array
(** Per qubit, the (first, last) layer indices of the decomposed
    circuit's schedule in which the qubit hosts a gate; [None] for
    untouched qubits.  [Asap] (default) starts gates eagerly; [Alap]
    sinks them toward their consumers, which shortens windows for qubits
    whose first gate can wait. *)

val decoherence_factor :
  ?schedule:schedule -> t -> Qaoa_circuit.Circuit.t -> float
(** Product over qubits of exp(-active_time_q / min(T1_q, T2_q)), where
    active time spans the qubit's first to last scheduled layer.
    Neither schedule dominates in general: ALAP shortens windows with
    head slack (late first use) but can lengthen ones with tail slack
    (early last use), so compare both when estimating a circuit's
    exposure. *)

val estimated_success_probability :
  t -> Calibration.t -> Qaoa_circuit.Circuit.t -> float
(** Gate-error success product (see {!Calibration}) times
    {!decoherence_factor} - the ESP-style combined estimate. *)
