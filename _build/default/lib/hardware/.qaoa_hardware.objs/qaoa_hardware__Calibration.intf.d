lib/hardware/calibration.mli: Qaoa_util
