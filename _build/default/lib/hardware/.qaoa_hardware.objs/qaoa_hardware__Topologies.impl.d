lib/hardware/topologies.ml: Calibration Device List Printf Qaoa_graph String
