lib/hardware/topologies.mli: Device
