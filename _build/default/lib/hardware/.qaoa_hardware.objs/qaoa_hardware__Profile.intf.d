lib/hardware/profile.mli: Device Qaoa_util
