lib/hardware/calibration.ml: List Map Qaoa_util
