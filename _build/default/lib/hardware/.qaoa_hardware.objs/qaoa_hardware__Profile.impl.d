lib/hardware/profile.ml: Array Calibration Device List Qaoa_graph
