lib/hardware/coherence.mli: Calibration Qaoa_circuit Qaoa_util
