lib/hardware/device.ml: Calibration Qaoa_graph
