lib/hardware/device.mli: Calibration Qaoa_graph Qaoa_util
