lib/hardware/coherence.ml: Array Calibration Float List Qaoa_circuit Qaoa_util
