module Circuit = Qaoa_circuit.Circuit
module Gate = Qaoa_circuit.Gate
module Layering = Qaoa_circuit.Layering
module Decompose = Qaoa_circuit.Decompose
module Rng = Qaoa_util.Rng

type t = {
  t1 : float array;
  t2 : float array;
  gate_duration_1q : float;
  gate_duration_2q : float;
}

let create ?(gate_duration_1q = 50e-9) ?(gate_duration_2q = 300e-9) ~t1 ~t2 ()
    =
  if Array.length t1 <> Array.length t2 then
    invalid_arg "Coherence.create: T1/T2 length mismatch";
  Array.iter
    (fun x -> if x <= 0.0 then invalid_arg "Coherence.create: non-positive time")
    t1;
  { t1; t2; gate_duration_1q; gate_duration_2q }

let uniform ?gate_duration_1q ?gate_duration_2q ~num_qubits ~t1 ~t2 () =
  create ?gate_duration_1q ?gate_duration_2q
    ~t1:(Array.make num_qubits t1)
    ~t2:(Array.make num_qubits t2)
    ()

let random rng ?(mu_t1 = 50e-6) ?(sigma_t1 = 15e-6) ~num_qubits () =
  let t1 =
    Array.init num_qubits (fun _ ->
        Rng.normal_clamped rng ~mu:mu_t1 ~sigma:sigma_t1 ~lo:(mu_t1 /. 10.0)
          ~hi:(mu_t1 *. 3.0))
  in
  let t2 =
    Array.map
      (fun t1q ->
        let frac = 0.5 +. Rng.float rng 0.5 in
        Float.min (1.5 *. t1q) (2.0 *. t1q *. frac))
      t1
  in
  create ~t1 ~t2 ()

type schedule = Asap | Alap

let layers_of ?(schedule = Asap) circuit =
  let d = Decompose.circuit circuit in
  ( d,
    match schedule with
    | Asap -> Layering.layers d
    | Alap -> Layering.alap_layers d )

let durations_of t layers =
  List.map
    (fun layer ->
      let has_2q = List.exists Gate.is_two_qubit layer in
      if has_2q then t.gate_duration_2q else t.gate_duration_1q)
    layers

let circuit_duration t circuit =
  List.fold_left ( +. ) 0.0 (durations_of t (snd (layers_of circuit)))

let window_of d layers =
  let window = Array.make (Circuit.num_qubits d) None in
  List.iteri
    (fun i layer ->
      List.iter
        (fun g ->
          List.iter
            (fun q ->
              window.(q) <-
                (match window.(q) with
                | None -> Some (i, i)
                | Some (first, _) -> Some (first, i)))
            (Gate.qubits g))
        layer)
    layers;
  window

let active_window ?schedule circuit =
  let d, layers = layers_of ?schedule circuit in
  window_of d layers

let decoherence_factor ?schedule t circuit =
  if Array.length t.t1 < Circuit.num_qubits circuit then
    invalid_arg "Coherence.decoherence_factor: model smaller than circuit";
  let d, layers = layers_of ?schedule circuit in
  let durations = Array.of_list (durations_of t layers) in
  let window = window_of d layers in
  let prefix = Array.make (Array.length durations + 1) 0.0 in
  Array.iteri (fun i d -> prefix.(i + 1) <- prefix.(i) +. d) durations;
  let log_factor = ref 0.0 in
  Array.iteri
    (fun q w ->
      match w with
      | None -> ()
      | Some (first, last) ->
        let active = prefix.(last + 1) -. prefix.(first) in
        let coherence_time = Float.min t.t1.(q) t.t2.(q) in
        log_factor := !log_factor -. (active /. coherence_time))
    window;
  exp !log_factor

let estimated_success_probability t cal circuit =
  let d = Decompose.circuit circuit in
  let e1 = Calibration.single_qubit_error cal in
  let gate_log =
    List.fold_left
      (fun acc g ->
        match g with
        | Gate.Cnot (a, b) -> acc +. log (1.0 -. Calibration.cnot_error cal a b)
        | Gate.Barrier | Gate.Measure _ -> acc
        | Gate.Cphase _ | Gate.Swap _ -> assert false
        | _ -> acc +. log (1.0 -. e1))
      0.0 (Circuit.gates d)
  in
  exp gate_log *. decoherence_factor t circuit
