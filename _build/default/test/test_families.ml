(* Tests for the scale-free/small-world generators, bootstrap confidence
   intervals and the error-budget analyzer. *)

module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators
module Bootstrap = Qaoa_util.Bootstrap
module Rng = Qaoa_util.Rng
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Compile = Qaoa_core.Compile
module Error_budget = Qaoa_core.Error_budget
module Success = Qaoa_core.Success
module Topologies = Qaoa_hardware.Topologies
module Device = Qaoa_hardware.Device

(* --- generators --- *)

let test_barabasi_albert_shape () =
  let rng = Rng.create 1 in
  let g = Generators.barabasi_albert rng ~n:30 ~m:2 in
  Alcotest.(check int) "vertices" 30 (Graph.num_vertices g);
  (* clique on 3 + 27 * 2 attachments (dedup can only reduce) *)
  Alcotest.(check bool) "edge count" true
    (Graph.num_edges g <= 3 + (27 * 2) && Graph.num_edges g >= 27 * 2);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  List.iter
    (fun v -> Alcotest.(check bool) "min degree" true (Graph.degree g v >= 2))
    (Graph.vertices g)

let test_barabasi_albert_hubs () =
  (* scale-free graphs develop hubs: max degree far above the minimum *)
  let rng = Rng.create 2 in
  let g = Generators.barabasi_albert rng ~n:60 ~m:2 in
  Alcotest.(check bool)
    (Printf.sprintf "max degree %d > 3x min attachment" (Graph.max_degree g))
    true
    (Graph.max_degree g >= 6)

let test_barabasi_albert_validation () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "m < 1"
    (Invalid_argument "Generators.barabasi_albert: m < 1") (fun () ->
      ignore (Generators.barabasi_albert rng ~n:5 ~m:0));
  Alcotest.check_raises "n <= m"
    (Invalid_argument "Generators.barabasi_albert: n <= m") (fun () ->
      ignore (Generators.barabasi_albert rng ~n:3 ~m:3))

let test_watts_strogatz_shape () =
  let rng = Rng.create 4 in
  (* beta = 0: exact ring lattice, every degree = k *)
  let lattice = Generators.watts_strogatz rng ~n:20 ~k:4 ~beta:0.0 in
  List.iter
    (fun v -> Alcotest.(check int) "lattice degree" 4 (Graph.degree lattice v))
    (Graph.vertices lattice);
  Alcotest.(check int) "lattice edges" 40 (Graph.num_edges lattice);
  (* beta > 0 keeps the edge count (rewires, does not add) *)
  let rewired = Generators.watts_strogatz rng ~n:20 ~k:4 ~beta:0.5 in
  Alcotest.(check bool) "edges preserved-ish" true
    (Graph.num_edges rewired <= 40 && Graph.num_edges rewired >= 36)

let test_watts_strogatz_validation () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "odd k"
    (Invalid_argument "Generators.watts_strogatz: k must be even") (fun () ->
      ignore (Generators.watts_strogatz rng ~n:10 ~k:3 ~beta:0.1));
  Alcotest.check_raises "k too large"
    (Invalid_argument "Generators.watts_strogatz: need 2 <= k < n - 1")
    (fun () -> ignore (Generators.watts_strogatz rng ~n:5 ~k:4 ~beta:0.1))

(* --- bootstrap --- *)

let test_bootstrap_point_mass () =
  let rng = Rng.create 6 in
  let ci = Bootstrap.mean_interval rng [ 2.0; 2.0; 2.0; 2.0 ] in
  Alcotest.(check (float 1e-12)) "estimate" 2.0 ci.Bootstrap.estimate;
  Alcotest.(check (float 1e-12)) "lower" 2.0 ci.Bootstrap.lower;
  Alcotest.(check (float 1e-12)) "upper" 2.0 ci.Bootstrap.upper

let test_bootstrap_covers_mean () =
  let rng = Rng.create 7 in
  let samples = List.init 40 (fun _ -> Rng.normal rng ~mu:5.0 ~sigma:1.0) in
  let ci = Bootstrap.mean_interval rng samples in
  Alcotest.(check bool) "ordered" true
    (ci.Bootstrap.lower <= ci.Bootstrap.estimate
    && ci.Bootstrap.estimate <= ci.Bootstrap.upper);
  Alcotest.(check bool) "contains true mean" true
    (ci.Bootstrap.lower < 5.5 && ci.Bootstrap.upper > 4.5);
  (* higher confidence widens the interval *)
  let wide = Bootstrap.mean_interval ~confidence:0.99 (Rng.create 7) samples in
  Alcotest.(check bool) "99% wider than 95%" true
    (wide.Bootstrap.upper -. wide.Bootstrap.lower
    >= ci.Bootstrap.upper -. ci.Bootstrap.lower -. 1e-9)

let test_bootstrap_ratio () =
  let rng = Rng.create 8 in
  let num = List.init 30 (fun _ -> 2.0 +. Rng.float rng 0.2) in
  let den = List.init 30 (fun _ -> 4.0 +. Rng.float rng 0.2) in
  let ci = Bootstrap.ratio_of_means_interval rng ~num ~den in
  Alcotest.(check bool) "near 0.5" true
    (Float.abs (ci.Bootstrap.estimate -. 0.5) < 0.05);
  Alcotest.(check bool) "tight" true
    (ci.Bootstrap.upper -. ci.Bootstrap.lower < 0.1)

let test_bootstrap_validation () =
  let rng = Rng.create 9 in
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap: empty sample")
    (fun () -> ignore (Bootstrap.mean_interval rng []));
  Alcotest.check_raises "confidence"
    (Invalid_argument "Bootstrap: confidence must lie in (0, 1)") (fun () ->
      ignore (Bootstrap.mean_interval ~confidence:1.0 rng [ 1.0 ]));
  Alcotest.check_raises "unpaired"
    (Invalid_argument "Bootstrap: paired samples must have equal length")
    (fun () ->
      ignore (Bootstrap.ratio_of_means_interval rng ~num:[ 1.0 ] ~den:[ 1.0; 2.0 ]))

(* --- error budget --- *)

let test_error_budget_matches_success () =
  let device = Topologies.ibmq_16_melbourne () in
  let cal = Device.calibration_exn device in
  let problem =
    Problem.of_maxcut (Generators.random_regular (Rng.create 10) ~n:8 ~d:3)
  in
  let r =
    Compile.compile ~strategy:(Compile.Ic None) device problem
      (Ansatz.params_p1 ~gamma:0.7 ~beta:0.4)
  in
  let budget = Error_budget.analyze cal r.Compile.circuit in
  Alcotest.(check (float 1e-9)) "agrees with Success"
    (Success.of_circuit cal r.Compile.circuit)
    budget.Error_budget.success_probability;
  (* kind decomposition sums to the total *)
  let kind_sum =
    List.fold_left
      (fun acc e -> acc +. e.Error_budget.log_loss)
      0.0 budget.Error_budget.by_kind
  in
  Alcotest.(check (float 1e-9)) "kinds sum" budget.Error_budget.total_log_loss kind_sum;
  (* coupling entries cover exactly the CNOT losses *)
  let coupling_sum =
    List.fold_left
      (fun acc e -> acc +. e.Error_budget.log_loss)
      0.0 budget.Error_budget.by_coupling
  in
  let cnot_kinds =
    List.filter
      (fun e -> e.Error_budget.label <> "1q")
      budget.Error_budget.by_kind
  in
  let cnot_sum =
    List.fold_left (fun acc e -> acc +. e.Error_budget.log_loss) 0.0 cnot_kinds
  in
  Alcotest.(check (float 1e-9)) "couplings = cnot losses" cnot_sum coupling_sum

let test_error_budget_worst_first () =
  let cal =
    Qaoa_hardware.Calibration.create ~single_qubit_error:0.0
      [ (0, 1, 0.2); (1, 2, 0.01) ]
  in
  let c =
    Qaoa_circuit.Circuit.of_gates 3
      [ Qaoa_circuit.Gate.Cnot (0, 1); Qaoa_circuit.Gate.Cnot (1, 2) ]
  in
  let budget = Error_budget.analyze cal c in
  (match Error_budget.worst_couplings ~top:1 budget with
  | [ e ] -> Alcotest.(check string) "worst is (0,1)" "(0,1)" e.Error_budget.label
  | _ -> Alcotest.fail "expected one entry");
  Alcotest.(check int) "two couplings" 2
    (List.length budget.Error_budget.by_coupling)

let suite =
  [
    ("barabasi-albert shape", `Quick, test_barabasi_albert_shape);
    ("barabasi-albert hubs", `Quick, test_barabasi_albert_hubs);
    ("barabasi-albert validation", `Quick, test_barabasi_albert_validation);
    ("watts-strogatz shape", `Quick, test_watts_strogatz_shape);
    ("watts-strogatz validation", `Quick, test_watts_strogatz_validation);
    ("bootstrap point mass", `Quick, test_bootstrap_point_mass);
    ("bootstrap covers mean", `Quick, test_bootstrap_covers_mean);
    ("bootstrap ratio", `Quick, test_bootstrap_ratio);
    ("bootstrap validation", `Quick, test_bootstrap_validation);
    ("error budget matches success", `Quick, test_error_budget_matches_success);
    ("error budget worst first", `Quick, test_error_budget_worst_first);
  ]
