(* Tests for the problem encoding, the QAOA ansatz (including the
   commutativity property every methodology relies on), the closed-form
   p=1 expectation and the classical optimizer. *)

module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Analytic = Qaoa_core.Analytic
module Optimizer = Qaoa_core.Optimizer
module Statevector = Qaoa_sim.Statevector
module Rng = Qaoa_util.Rng

let triangle () = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]

(* --- Problem --- *)

let test_maxcut_cost () =
  let p = Problem.of_maxcut (triangle ()) in
  (* all-equal assignments cut nothing; any split of a triangle cuts 2 *)
  Alcotest.(check (float 1e-9)) "cut(000)" 0.0 (Problem.cost p 0b000);
  Alcotest.(check (float 1e-9)) "cut(111)" 0.0 (Problem.cost p 0b111);
  Alcotest.(check (float 1e-9)) "cut(001)" 2.0 (Problem.cost p 0b001);
  Alcotest.(check (float 1e-9)) "cut(011)" 2.0 (Problem.cost p 0b011)

let test_maxcut_weighted () =
  let g = Graph.of_edges 2 [ (0, 1) ] in
  let p = Problem.of_maxcut ~weights:(fun _ -> 3.0) g in
  Alcotest.(check (float 1e-9)) "weighted cut" 3.0 (Problem.cost p 0b01);
  Alcotest.(check (float 1e-9)) "uncut" 0.0 (Problem.cost p 0b00)

let test_brute_force () =
  let p = Problem.of_maxcut (triangle ()) in
  let _, best = Problem.brute_force_best p in
  Alcotest.(check (float 1e-9)) "triangle maxcut 2" 2.0 best;
  let p4 = Problem.of_maxcut (Generators.complete 4) in
  let _, best4 = Problem.brute_force_best p4 in
  Alcotest.(check (float 1e-9)) "K4 maxcut 4" 4.0 best4;
  let ring = Problem.of_maxcut (Generators.cycle 6) in
  let _, best6 = Problem.brute_force_best ring in
  Alcotest.(check (float 1e-9)) "C6 maxcut 6" 6.0 best6

let test_problem_normalization () =
  let p =
    Problem.create ~num_vars:3 [ (1, 0, 1.0); (0, 1, 2.0); (1, 2, 0.0) ]
  in
  Alcotest.(check (list (pair int int))) "merged and ordered" [ (0, 1) ]
    (Problem.cphase_pairs p);
  (match p.Problem.quadratic with
  | [ (0, 1, c) ] -> Alcotest.(check (float 1e-9)) "summed coeff" 3.0 c
  | _ -> Alcotest.fail "expected single merged term");
  Alcotest.check_raises "diagonal"
    (Invalid_argument "Problem.create: diagonal quadratic term") (fun () ->
      ignore (Problem.create ~num_vars:2 [ (0, 0, 1.0) ]))

let test_linear_terms () =
  let p = Problem.create ~num_vars:2 ~linear:[ (0, 1.5) ] ~constant:2.0 [] in
  (* s_0 = +1 for bit 0 = 0 *)
  Alcotest.(check (float 1e-9)) "bit clear" 3.5 (Problem.cost p 0b00);
  Alcotest.(check (float 1e-9)) "bit set" 0.5 (Problem.cost p 0b01)

let test_ops_per_qubit () =
  let p = Problem.of_maxcut (Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (1, 2) ]) in
  Alcotest.(check (array int)) "profile" [| 3; 2; 2; 1; 0 |] (Problem.ops_per_qubit p);
  Alcotest.(check int) "MOQ" 3 (Problem.max_ops_per_qubit p)

(* --- Ansatz --- *)

let test_ansatz_structure () =
  let p = Problem.of_maxcut (triangle ()) in
  let params = Ansatz.params_p1 ~gamma:0.5 ~beta:0.3 in
  let c = Ansatz.circuit p params in
  (* 3 H + 3 CPHASE + 3 RX + 3 measure *)
  Alcotest.(check int) "gate count" 12 (Qaoa_circuit.Circuit.length c);
  let unmeasured = Ansatz.circuit ~measure:false p params in
  Alcotest.(check int) "without measure" 9 (Qaoa_circuit.Circuit.length unmeasured)

let test_ansatz_multilevel () =
  let p = Problem.of_maxcut (triangle ()) in
  let params = { Ansatz.gammas = [| 0.5; 0.2 |]; betas = [| 0.3; 0.7 |] } in
  let c = Ansatz.circuit ~measure:false p params in
  (* 3 H + 2 * (3 CPHASE + 3 RX) *)
  Alcotest.(check int) "two levels" 15 (Qaoa_circuit.Circuit.length c);
  Alcotest.check_raises "level mismatch"
    (Invalid_argument "Ansatz.levels: gamma/beta length mismatch") (fun () ->
      ignore (Ansatz.levels { Ansatz.gammas = [| 1.0 |]; betas = [||] }))

(* The commutativity property at the heart of the paper: any CPHASE order
   produces the same output state. *)
let test_commutativity_explicit () =
  let p = Problem.of_maxcut (triangle ()) in
  let params = Ansatz.params_p1 ~gamma:0.9 ~beta:0.4 in
  let reference = Ansatz.state p params in
  List.iter
    (fun order ->
      let c = Ansatz.circuit ~measure:false ~orders:[ order ] p params in
      Alcotest.(check bool) "same state" true
        (Statevector.equal_up_to_global_phase reference
           (Statevector.of_circuit c)))
    [
      [ (0, 1); (1, 2); (0, 2) ];
      [ (0, 2); (0, 1); (1, 2) ];
      [ (1, 2); (0, 2); (0, 1) ];
    ]

let prop_commutativity =
  QCheck.Test.make ~name:"CPHASE order never changes the output state"
    ~count:40
    QCheck.(pair (int_bound 100000) (int_range 3 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.6 in
      QCheck.assume (Graph.num_edges g > 1);
      let p = Problem.of_maxcut g in
      let params =
        Ansatz.params_p1 ~gamma:(Rng.float rng 3.0) ~beta:(Rng.float rng 1.5)
      in
      let reference = Ansatz.state p params in
      let order = Rng.shuffle_list rng (Problem.cphase_pairs p) in
      let shuffled = Ansatz.circuit ~measure:false ~orders:[ order ] p params in
      Statevector.equal_up_to_global_phase reference
        (Statevector.of_circuit shuffled))

let test_order_validation () =
  let p = Problem.of_maxcut (triangle ()) in
  Alcotest.check_raises "wrong order"
    (Invalid_argument "Ansatz: order is not a permutation of the problem's pairs")
    (fun () ->
      ignore
        (Ansatz.cost_layer_gates ~order:[ (0, 1) ] p ~gamma:0.5))

let test_cphase_gate_helper () =
  let p = Problem.of_maxcut (triangle ()) in
  (match Ansatz.cphase_gate p ~gamma:0.5 (0, 1) with
  | Qaoa_circuit.Gate.Cphase (0, 1, theta) ->
    (* MaxCut coefficient is -1/2, so theta = 2 * 0.5 * (-0.5) *)
    Alcotest.(check (float 1e-12)) "angle" (-0.5) theta
  | _ -> Alcotest.fail "expected cphase");
  Alcotest.check_raises "not a term"
    (Invalid_argument "Ansatz: pair is not a quadratic term") (fun () ->
      ignore (Ansatz.cphase_gate (Problem.of_maxcut (Generators.path 3)) ~gamma:0.5 (0, 2)))

let test_expectation_at_zero () =
  (* gamma = beta = 0: uniform superposition; every edge cut with p 1/2 *)
  let g = triangle () in
  let p = Problem.of_maxcut g in
  let e = Ansatz.expectation p (Ansatz.params_p1 ~gamma:0.0 ~beta:0.0) in
  Alcotest.(check (float 1e-9)) "m/2" 1.5 e

let test_approximation_ratio_of_samples () =
  let p = Problem.of_maxcut (triangle ()) in
  (* samples achieving the optimum everywhere give ratio 1 *)
  Alcotest.(check (float 1e-9)) "perfect" 1.0
    (Ansatz.approximation_ratio_of_samples p [| 0b001; 0b110 |]);
  Alcotest.(check (float 1e-9)) "zero" 0.0
    (Ansatz.approximation_ratio_of_samples p [| 0b000 |])

(* --- Analytic p=1 expectation vs simulator --- *)

let test_analytic_matches_simulator_triangle () =
  let g = triangle () in
  let p = Problem.of_maxcut g in
  List.iter
    (fun (gamma, beta) ->
      let analytic = Analytic.expectation g ~gamma ~beta in
      let sim = Ansatz.expectation p (Ansatz.params_p1 ~gamma ~beta) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "g=%.2f b=%.2f" gamma beta)
        sim analytic)
    [ (0.0, 0.0); (0.5, 0.3); (1.2, 0.8); (2.7, 1.1); (0.9, 0.2) ]

let prop_analytic_matches_simulator =
  QCheck.Test.make
    ~name:"closed-form p=1 expectation agrees with the statevector" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 3 7))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.5 in
      QCheck.assume (Graph.num_edges g > 0);
      let gamma = Rng.float rng 3.0 and beta = Rng.float rng 1.5 in
      let analytic = Analytic.expectation g ~gamma ~beta in
      let sim =
        Ansatz.expectation (Problem.of_maxcut g) (Ansatz.params_p1 ~gamma ~beta)
      in
      Float.abs (analytic -. sim) < 1e-7)

let test_analytic_optimize_beats_random () =
  let g = Generators.cycle 6 in
  let params, value = Analytic.optimize ~grid:32 g in
  (* p=1 QAOA on a ring achieves expectation 3/4 per edge = 4.5 on C6 *)
  Alcotest.(check bool) "near known optimum" true (value > 4.4);
  let sim = Ansatz.expectation (Problem.of_maxcut g) params in
  Alcotest.(check (float 1e-6)) "simulator agrees at optimum" value sim

(* --- Optimizer --- *)

let test_nelder_mead_quadratic () =
  let f x = ((x.(0) -. 3.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0) in
  let x, v = Optimizer.nelder_mead ~initial:[| 0.0; 0.0 |] ~step:0.5 f in
  Alcotest.(check bool) "found minimum" true (v < 1e-4);
  Alcotest.(check bool) "x near 3" true (Float.abs (x.(0) -. 3.0) < 0.02);
  Alcotest.(check bool) "y near -1" true (Float.abs (x.(1) +. 1.0) < 0.02)

let test_nelder_mead_maximize () =
  let f x = -.((x.(0) -. 2.0) ** 2.0) in
  let x, v = Optimizer.nelder_mead ~maximize:true ~initial:[| 0.0 |] ~step:0.5 f in
  Alcotest.(check bool) "max value near 0" true (v > -1e-6);
  Alcotest.(check bool) "argmax near 2" true (Float.abs (x.(0) -. 2.0) < 1e-3)

let test_optimize_p1_on_simulator () =
  let g = Generators.cycle 4 in
  let p = Problem.of_maxcut g in
  let params, value =
    Optimizer.optimize_p1 ~grid:16 (fun ~gamma ~beta ->
        Ansatz.expectation p (Ansatz.params_p1 ~gamma ~beta))
  in
  (* exceeds the uniform-superposition baseline m/2 = 2 *)
  Alcotest.(check bool) "beats random" true (value > 2.5);
  Alcotest.(check int) "p=1" 1 (Ansatz.levels params)

let test_optimize_params_p2 () =
  let rng = Rng.create 23 in
  let g = triangle () in
  let p = Problem.of_maxcut g in
  let baseline =
    let _, v =
      Optimizer.optimize_p1 ~grid:16 (fun ~gamma ~beta ->
          Ansatz.expectation p (Ansatz.params_p1 ~gamma ~beta))
    in
    v
  in
  let _, v2 =
    Optimizer.optimize_params rng ~p:2 (fun params -> Ansatz.expectation p params)
  in
  (* p=2 should do at least as well as p=1 (tolerance for optimizer noise) *)
  Alcotest.(check bool) "monotone in p" true (v2 > baseline -. 0.05)

let suite =
  [
    ("maxcut cost", `Quick, test_maxcut_cost);
    ("weighted maxcut", `Quick, test_maxcut_weighted);
    ("brute force optimum", `Quick, test_brute_force);
    ("problem normalization", `Quick, test_problem_normalization);
    ("linear terms", `Quick, test_linear_terms);
    ("ops per qubit", `Quick, test_ops_per_qubit);
    ("ansatz structure", `Quick, test_ansatz_structure);
    ("ansatz multilevel", `Quick, test_ansatz_multilevel);
    ("commutativity explicit", `Quick, test_commutativity_explicit);
    ("order validation", `Quick, test_order_validation);
    ("cphase gate helper", `Quick, test_cphase_gate_helper);
    ("expectation at zero", `Quick, test_expectation_at_zero);
    ("approximation ratio of samples", `Quick, test_approximation_ratio_of_samples);
    ("analytic vs simulator (triangle)", `Quick, test_analytic_matches_simulator_triangle);
    ("analytic optimize", `Quick, test_analytic_optimize_beats_random);
    ("nelder-mead quadratic", `Quick, test_nelder_mead_quadratic);
    ("nelder-mead maximize", `Quick, test_nelder_mead_maximize);
    ("optimize p1 on simulator", `Quick, test_optimize_p1_on_simulator);
    ("optimize params p2", `Slow, test_optimize_params_p2);
    QCheck_alcotest.to_alcotest prop_commutativity;
    QCheck_alcotest.to_alcotest prop_analytic_matches_simulator;
  ]
