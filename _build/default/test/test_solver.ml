(* Tests for the one-call Solver pipeline and the amplitude-damping
   channel added to the density-matrix backend. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Density_matrix = Qaoa_sim.Density_matrix
module Problem = Qaoa_core.Problem
module Encodings = Qaoa_core.Encodings
module Solver = Qaoa_core.Solver
module Compile = Qaoa_core.Compile
module Compliance = Qaoa_backend.Compliance
module Generators = Qaoa_graph.Generators
module Rng = Qaoa_util.Rng

let test_solve_small_maxcut () =
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.cycle 6) in
  let o = Solver.solve ~shots:4096 device problem in
  Alcotest.(check (option (float 1e-9))) "optimum known" (Some 6.0) o.Solver.optimum;
  (* p=1 on C6 samples the optimum with substantial probability *)
  Alcotest.(check (float 1e-9)) "best sampled cut is optimal" 6.0 o.Solver.best_cost;
  Alcotest.(check bool) "ratio in (0.5, 1]" true
    (o.Solver.approximation_ratio > 0.5 && o.Solver.approximation_ratio <= 1.0);
  Alcotest.(check bool) "compiled compliant" true
    (Compliance.is_compliant device o.Solver.compiled.Compile.circuit)

let test_solve_noisy () =
  let device = Topologies.ibmq_16_melbourne () in
  let problem =
    Problem.of_maxcut (Generators.random_regular (Rng.create 1) ~n:8 ~d:3)
  in
  let ideal = Solver.solve ~shots:2048 device problem in
  let noisy = Solver.solve ~execution:Solver.Noisy ~shots:2048 device problem in
  Alcotest.(check bool) "noise lowers the mean" true
    (noisy.Solver.mean_cost <= ideal.Solver.mean_cost +. 0.2)

let test_solve_mis () =
  let device = Topologies.ibmq_16_melbourne () in
  let g = Generators.cycle 8 in
  let problem = Encodings.max_independent_set g in
  let o = Solver.solve ~shots:4096 device problem in
  (* C8's maximum independent set has 4 vertices *)
  Alcotest.(check (float 1e-9)) "MIS size 4" 4.0 o.Solver.best_cost;
  Alcotest.(check bool) "decoded set independent" true
    (Encodings.is_independent_set g
       (Encodings.decode_selection problem o.Solver.best_bits))

let test_solve_deterministic () =
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.cycle 6) in
  let a = Solver.solve ~seed:9 device problem in
  let b = Solver.solve ~seed:9 device problem in
  Alcotest.(check int) "same best" a.Solver.best_bits b.Solver.best_bits;
  Alcotest.(check (float 1e-12)) "same mean" a.Solver.mean_cost b.Solver.mean_cost

let test_solve_validation () =
  let device = Topologies.linear 4 in
  Alcotest.check_raises "no quadratic terms"
    (Invalid_argument "Solver.solve: problem has no quadratic terms")
    (fun () ->
      ignore (Solver.solve device (Problem.create ~num_vars:3 [])));
  Alcotest.check_raises "noisy without calibration"
    (Invalid_argument "linear_4: device has no calibration data") (fun () ->
      ignore
        (Solver.solve ~execution:Solver.Noisy device
           (Problem.of_maxcut (Generators.path 3))))

let test_solve_p2_at_least_p1 () =
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.cycle 4) in
  let p1 = Solver.solve ~shots:4096 ~seed:3 device problem in
  let p2 = Solver.solve ~p:2 ~shots:4096 ~seed:3 device problem in
  Alcotest.(check bool)
    (Printf.sprintf "p2 ratio %.3f >= p1 ratio %.3f - margin"
       p2.Solver.approximation_ratio p1.Solver.approximation_ratio)
    true
    (p2.Solver.approximation_ratio >= p1.Solver.approximation_ratio -. 0.05)

(* --- amplitude damping --- *)

let test_amplitude_damp_excited_state () =
  let t = Density_matrix.create 1 in
  Density_matrix.apply_gate t (Gate.X 0);
  Density_matrix.amplitude_damp t 0.3 0;
  Alcotest.(check (float 1e-12)) "p(1)" 0.7 (Density_matrix.probability t 1);
  Alcotest.(check (float 1e-12)) "p(0)" 0.3 (Density_matrix.probability t 0);
  Alcotest.(check (float 1e-12)) "trace" 1.0 (Density_matrix.trace t)

let test_amplitude_damp_ground_invariant () =
  let t = Density_matrix.create 2 in
  Density_matrix.amplitude_damp t 0.5 0;
  Density_matrix.amplitude_damp t 0.5 1;
  Alcotest.(check (float 1e-12)) "ground untouched" 1.0
    (Density_matrix.probability t 0)

let test_amplitude_damp_coherence_shrinks () =
  let t = Density_matrix.create 1 in
  Density_matrix.apply_gate t (Gate.H 0);
  Density_matrix.amplitude_damp t 0.36 0;
  (* off-diagonal scales by sqrt(1 - gamma) = 0.8 -> purity drops *)
  Alcotest.(check bool) "mixed" true (Density_matrix.purity t < 1.0);
  Alcotest.(check (float 1e-12)) "population transfer" (0.5 +. (0.36 *. 0.5))
    (Density_matrix.probability t 0)

let test_amplitude_damp_full () =
  let t = Density_matrix.create 1 in
  Density_matrix.apply_gate t (Gate.X 0);
  Density_matrix.amplitude_damp t 1.0 0;
  Alcotest.(check (float 1e-12)) "fully relaxed" 1.0 (Density_matrix.probability t 0);
  Alcotest.(check (float 1e-12)) "pure again" 1.0 (Density_matrix.purity t)

let suite =
  [
    ("solve small maxcut", `Quick, test_solve_small_maxcut);
    ("solve noisy", `Slow, test_solve_noisy);
    ("solve MIS", `Quick, test_solve_mis);
    ("solve deterministic", `Quick, test_solve_deterministic);
    ("solve validation", `Quick, test_solve_validation);
    ("solve p2 >= p1", `Slow, test_solve_p2_at_least_p1);
    ("amplitude damp excited", `Quick, test_amplitude_damp_excited_state);
    ("amplitude damp ground", `Quick, test_amplitude_damp_ground_invariant);
    ("amplitude damp coherence", `Quick, test_amplitude_damp_coherence_shrinks);
    ("amplitude damp full", `Quick, test_amplitude_damp_full);
  ]
