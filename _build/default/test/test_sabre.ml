(* Tests for the SABRE-style router: correctness (compliance + semantics
   up to permutation), dependency handling, and sanity against the
   layer-partitioned router. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Mapping = Qaoa_backend.Mapping
module Router = Qaoa_backend.Router
module Sabre = Qaoa_backend.Sabre
module Compliance = Qaoa_backend.Compliance
module Statevector = Qaoa_sim.Statevector
module Rng = Qaoa_util.Rng

let embed mapping ~num_logical b =
  let out = ref 0 in
  for l = 0 to num_logical - 1 do
    if b land (1 lsl l) <> 0 then out := !out lor (1 lsl (Mapping.phys mapping l))
  done;
  !out

let check_semantics device initial circuit =
  let r = Sabre.route ~device ~initial circuit in
  Alcotest.(check bool) "compliant" true
    (Compliance.is_compliant device r.Router.circuit);
  let k = Circuit.num_qubits circuit in
  let sl = Statevector.of_circuit circuit in
  let sp = Statevector.of_circuit r.Router.circuit in
  for b = 0 to (1 lsl k) - 1 do
    let lr, li = Statevector.amplitude sl b in
    let pr, pi =
      Statevector.amplitude sp (embed r.Router.final_mapping ~num_logical:k b)
    in
    if Float.abs (lr -. pr) > 1e-9 || Float.abs (li -. pi) > 1e-9 then
      Alcotest.failf "amplitude mismatch at %d" b
  done;
  r

let random_2q_circuit rng n len =
  Circuit.of_gates n
    (List.init len (fun _ ->
         match Rng.int rng 4 with
         | 0 -> Gate.H (Rng.int rng n)
         | 1 -> Gate.Rz (Rng.int rng n, Rng.float rng 3.0)
         | 2 ->
           let a = Rng.int rng n in
           let b = (a + 1 + Rng.int rng (n - 1)) mod n in
           Gate.Cnot (a, b)
         | _ ->
           let a = Rng.int rng n in
           let b = (a + 1 + Rng.int rng (n - 1)) mod n in
           Gate.Cphase (a, b, Rng.float rng 3.0)))

let test_adjacent_no_swaps () =
  let device = Topologies.linear 3 in
  let c = Circuit.of_gates 3 [ Gate.Cnot (0, 1); Gate.Cnot (1, 2) ] in
  let r =
    Sabre.route ~device
      ~initial:(Mapping.trivial ~num_logical:3 ~num_physical:3)
      c
  in
  Alcotest.(check int) "no swaps" 0 r.Router.swap_count

let test_semantics_small_devices () =
  let rng = Rng.create 41 in
  List.iter
    (fun device ->
      for _ = 1 to 4 do
        let n = min 5 (Device.num_qubits device) in
        let c = random_2q_circuit rng n 14 in
        let initial =
          Mapping.random rng ~num_logical:n
            ~num_physical:(Device.num_qubits device)
        in
        ignore (check_semantics device initial c)
      done)
    [ Topologies.linear 5; Topologies.ring 6; Topologies.linear 7 ]

let test_dependencies_respected () =
  (* measure then gate on the same qubit must stay ordered *)
  let device = Topologies.linear 2 in
  let c =
    Circuit.of_gates 2 [ Gate.H 0; Gate.Measure 0; Gate.X 0; Gate.Barrier; Gate.H 1 ]
  in
  let r =
    Sabre.route ~device
      ~initial:(Mapping.trivial ~num_logical:2 ~num_physical:2)
      c
  in
  let names = List.map Gate.name (Circuit.gates r.Router.circuit) in
  Alcotest.(check (list string)) "order preserved"
    [ "h"; "measure"; "x"; "barrier"; "h" ]
    names

let test_validation () =
  let device = Topologies.linear 3 in
  let c = Circuit.of_gates 3 [ Gate.H 0 ] in
  Alcotest.check_raises "small mapping"
    (Invalid_argument "Sabre: mapping covers fewer qubits than the circuit")
    (fun () ->
      ignore
        (Sabre.route ~device
           ~initial:(Mapping.trivial ~num_logical:2 ~num_physical:3)
           c))

let test_comparable_to_primary_router () =
  (* on QAOA workloads both engines should land in the same quality
     ballpark: SABRE within 2x of the primary router's swap count *)
  let rng = Rng.create 43 in
  let device = Topologies.ibmq_20_tokyo () in
  let total_primary = ref 0 and total_sabre = ref 0 in
  for seed = 0 to 5 do
    let g = Qaoa_graph.Generators.random_regular (Rng.create seed) ~n:14 ~d:3 in
    let problem = Qaoa_core.Problem.of_maxcut g in
    let circuit =
      Qaoa_core.Ansatz.circuit problem
        (Qaoa_core.Ansatz.params_p1 ~gamma:0.7 ~beta:0.4)
    in
    let initial = Mapping.random rng ~num_logical:14 ~num_physical:20 in
    let a = Router.route ~device ~initial circuit in
    let b = Sabre.route ~device ~initial circuit in
    Alcotest.(check bool) "sabre compliant" true
      (Compliance.is_compliant device b.Router.circuit);
    total_primary := !total_primary + a.Router.swap_count;
    total_sabre := !total_sabre + b.Router.swap_count
  done;
  Alcotest.(check bool)
    (Printf.sprintf "swap counts comparable (primary %d, sabre %d)"
       !total_primary !total_sabre)
    true
    (!total_sabre <= 2 * !total_primary)

let prop_sabre_semantics =
  QCheck.Test.make ~name:"sabre preserves semantics up to permutation"
    ~count:30
    QCheck.(pair (int_bound 100000) (int_range 3 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let device =
        if n mod 2 = 0 then Topologies.linear n else Topologies.ring (max 3 n)
      in
      let c = random_2q_circuit rng n 12 in
      let initial =
        Mapping.random rng ~num_logical:n
          ~num_physical:(Device.num_qubits device)
      in
      let r = Sabre.route ~device ~initial c in
      Compliance.is_compliant device r.Router.circuit
      &&
      let sl = Statevector.of_circuit c in
      let sp = Statevector.of_circuit r.Router.circuit in
      let ok = ref true in
      for b = 0 to (1 lsl n) - 1 do
        let lr, li = Statevector.amplitude sl b in
        let pr, pi =
          Statevector.amplitude sp
            (embed r.Router.final_mapping ~num_logical:n b)
        in
        if Float.abs (lr -. pr) > 1e-9 || Float.abs (li -. pi) > 1e-9 then
          ok := false
      done;
      !ok)

let suite =
  [
    ("adjacent no swaps", `Quick, test_adjacent_no_swaps);
    ("semantics small devices", `Quick, test_semantics_small_devices);
    ("dependencies respected", `Quick, test_dependencies_respected);
    ("validation", `Quick, test_validation);
    ("comparable to primary router", `Slow, test_comparable_to_primary_router);
    QCheck_alcotest.to_alcotest prop_sabre_semantics;
  ]
