(* Unit and property tests for the qaoa_util substrate. *)

module Rng = Qaoa_util.Rng
module Stats = Qaoa_util.Stats
module Table = Qaoa_util.Table
module Float_matrix = Qaoa_util.Float_matrix

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_changes_stream () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_shuffle_is_permutation () =
  let rng = Rng.create 5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_permutation_uniform_position () =
  (* Element 0 should land roughly uniformly across positions. *)
  let rng = Rng.create 11 in
  let n = 5 and trials = 5000 in
  let counts = Array.make n 0 in
  for _ = 1 to trials do
    let p = Rng.permutation rng n in
    let pos = ref 0 in
    Array.iteri (fun i v -> if v = 0 then pos := i) p;
    counts.(!pos) <- counts.(!pos) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int trials in
      Alcotest.(check bool) "roughly uniform" true (Float.abs (freq -. 0.2) < 0.03))
    counts

let test_normal_moments () =
  let rng = Rng.create 13 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Rng.normal rng ~mu:2.0 ~sigma:0.5) in
  Alcotest.(check bool) "mean" true (Float.abs (Stats.mean xs -. 2.0) < 0.02);
  Alcotest.(check bool) "std" true (Float.abs (Stats.std xs -. 0.5) < 0.02)

let test_normal_clamped () =
  let rng = Rng.create 17 in
  for _ = 1 to 1000 do
    let x = Rng.normal_clamped rng ~mu:0.01 ~sigma:0.005 ~lo:1e-4 ~hi:0.5 in
    Alcotest.(check bool) "clamped" true (x >= 1e-4 && x <= 0.5)
  done

let test_sample_without_replacement () =
  let rng = Rng.create 19 in
  let xs = Rng.sample_without_replacement rng 10 30 in
  Alcotest.(check int) "count" 10 (List.length xs);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare xs));
  List.iter (fun x -> Alcotest.(check bool) "range" true (x >= 0 && x < 30)) xs;
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Rng.sample_without_replacement rng 5 3))

let test_bernoulli_extremes () =
  let rng = Rng.create 23 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0" false (Rng.bernoulli rng 0.0);
    Alcotest.(check bool) "p=1" true (Rng.bernoulli rng 1.0)
  done

(* --- Stats --- *)

let test_stats_basic () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median even" 2.5 (Stats.median [ 4.0; 1.0; 3.0; 2.0 ]);
  check_float "median odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  check_float "std" (sqrt 1.25) (Stats.std [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "sum" 10.0 (Stats.sum [ 1.0; 2.0; 3.0; 4.0 ]);
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi;
  check_float "ratio" 0.5 (Stats.ratio 1.0 2.0);
  Alcotest.(check bool) "ratio by zero" true (Float.is_nan (Stats.ratio 1.0 0.0));
  check_float "pct change" 50.0 (Stats.percent_change ~from:2.0 ~to_:3.0);
  check_float "geomean" 2.0 (Stats.geometric_mean [ 1.0; 2.0; 4.0 ]);
  check_float "mean of int" 2.0 (Stats.mean_of_int [ 1; 2; 3 ])

let test_stats_empty () =
  Alcotest.(check bool) "mean []" true (Float.is_nan (Stats.mean []));
  Alcotest.(check bool) "std []" true (Float.is_nan (Stats.std []));
  Alcotest.(check bool) "median []" true (Float.is_nan (Stats.median []))

(* --- Table --- *)

let test_table_render () =
  let t = Table.create [ "name"; "x" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_float_row t "b" [ 2.5 ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 1 = "|");
  Alcotest.(check bool) "contains b row" true
    (List.exists
       (fun line -> String.length line > 2 && String.sub line 2 1 = "b")
       (String.split_on_char '\n' s))

let test_table_row_checks () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "1"; "2"; "3" ]);
  Table.add_row t [ "only" ];
  Alcotest.(check bool) "padded ok" true (String.length (Table.render t) > 0)

let test_float_cell () =
  Alcotest.(check string) "nan" "-" (Table.float_cell Float.nan);
  Alcotest.(check string) "fixed" "1.50" (Table.float_cell ~decimals:2 1.5)

(* --- Float_matrix --- *)

let test_floyd_warshall_known () =
  (* path graph 0-1-2-3 as weight matrix *)
  let inf = Float.infinity in
  let w =
    Float_matrix.init 4 (fun i j ->
        if i = j then 0.0 else if abs (i - j) = 1 then 1.0 else inf)
  in
  let d = Float_matrix.floyd_warshall w in
  check_float "d(0,3)" 3.0 (Float_matrix.get d 0 3);
  check_float "d(1,3)" 2.0 (Float_matrix.get d 1 3);
  check_float "d(2,2)" 0.0 (Float_matrix.get d 2 2);
  Alcotest.(check bool) "symmetric" true (Float_matrix.is_symmetric d);
  (* the input must be untouched *)
  check_float "input intact" inf (Float_matrix.get w 0 3)

let test_floyd_warshall_weighted () =
  (* triangle with a shortcut: 0-1 (1.0), 1-2 (1.0), 0-2 (5.0) *)
  let inf = Float.infinity in
  let w = Float_matrix.create 3 inf in
  for i = 0 to 2 do
    Float_matrix.set w i i 0.0
  done;
  List.iter
    (fun (i, j, x) ->
      Float_matrix.set w i j x;
      Float_matrix.set w j i x)
    [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 5.0) ];
  let d = Float_matrix.floyd_warshall w in
  check_float "shortcut found" 2.0 (Float_matrix.get d 0 2)

let test_floyd_warshall_disconnected () =
  let inf = Float.infinity in
  let w =
    Float_matrix.init 3 (fun i j -> if i = j then 0.0 else inf)
  in
  let d = Float_matrix.floyd_warshall w in
  check_float "disconnected stays inf" inf (Float_matrix.get d 0 2)

(* QCheck: Floyd-Warshall output satisfies the triangle inequality. *)
let prop_fw_triangle =
  QCheck.Test.make ~name:"floyd_warshall triangle inequality" ~count:50
    QCheck.(pair (int_bound 1000) (int_range 2 8))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inf = Float.infinity in
      let w =
        Float_matrix.init n (fun i j ->
            if i = j then 0.0
            else if Rng.bernoulli rng 0.5 then 0.1 +. Rng.float rng 5.0
            else inf)
      in
      (* symmetrize *)
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          Float_matrix.set w j i (Float_matrix.get w i j)
        done
      done;
      let d = Float_matrix.floyd_warshall w in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            let dij = Float_matrix.get d i j
            and dik = Float_matrix.get d i k
            and dkj = Float_matrix.get d k j in
            if dik +. dkj < dij -. 1e-9 then ok := false
          done
        done
      done;
      !ok)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed changes stream", `Quick, test_rng_seed_changes_stream);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("shuffle is permutation", `Quick, test_shuffle_is_permutation);
    ("permutation uniform", `Slow, test_permutation_uniform_position);
    ("normal moments", `Slow, test_normal_moments);
    ("normal clamped", `Quick, test_normal_clamped);
    ("sample without replacement", `Quick, test_sample_without_replacement);
    ("bernoulli extremes", `Quick, test_bernoulli_extremes);
    ("stats basics", `Quick, test_stats_basic);
    ("stats empty", `Quick, test_stats_empty);
    ("table render", `Quick, test_table_render);
    ("table row checks", `Quick, test_table_row_checks);
    ("float cell", `Quick, test_float_cell);
    ("floyd-warshall path", `Quick, test_floyd_warshall_known);
    ("floyd-warshall weighted", `Quick, test_floyd_warshall_weighted);
    ("floyd-warshall disconnected", `Quick, test_floyd_warshall_disconnected);
    QCheck_alcotest.to_alcotest prop_fw_triangle;
  ]
