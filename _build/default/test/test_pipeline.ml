(* Whole-pipeline fuzzing: random problems x devices x strategies x
   seeds, checking the compilation invariants that must hold regardless
   of inputs, plus report-generation round trips. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Metrics = Qaoa_circuit.Metrics
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Compliance = Qaoa_backend.Compliance
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Compile = Qaoa_core.Compile
module Workload = Qaoa_experiments.Workload
module Figures = Qaoa_experiments.Figures
module Report = Qaoa_experiments.Report
module Rng = Qaoa_util.Rng

let devices =
  lazy
    [
      Topologies.ibmq_16_melbourne ();
      Device.with_random_calibration (Rng.create 99) (Topologies.ibmq_20_tokyo ());
      Device.with_random_calibration (Rng.create 98) (Topologies.heavy_hex_27 ());
      Device.with_random_calibration (Rng.create 97) (Topologies.grid_6x6 ());
    ]

let kinds =
  [
    Workload.Erdos_renyi 0.3;
    Workload.Regular 3;
    Workload.Barabasi_albert 2;
    Workload.Watts_strogatz (4, 0.2);
  ]

(* consistency of the metrics record with the circuit itself *)
let metrics_consistent (r : Compile.result) problem =
  let gates = Circuit.gates r.Compile.circuit in
  let count p = List.length (List.filter p gates) in
  let cphases = count (function Gate.Cphase _ -> true | _ -> false) in
  let swaps = count (function Gate.Swap _ -> true | _ -> false) in
  let cnots = count (function Gate.Cnot _ -> true | _ -> false) in
  let m = r.Compile.metrics in
  cphases = List.length (Problem.cphase_pairs problem)
  && swaps = r.Compile.swap_count
  && m.Metrics.two_qubit_count = (2 * cphases) + (3 * swaps) + cnots
  && m.Metrics.depth > 0
  && m.Metrics.depth <= m.Metrics.gate_count + m.Metrics.measure_count

let prop_pipeline_invariants =
  QCheck.Test.make ~name:"pipeline invariants across devices/strategies"
    ~count:40
    QCheck.(
      quad (int_bound 100000) (int_bound 3) (int_bound 3) (int_range 6 12))
    (fun (seed, device_i, kind_i, n) ->
      let device = List.nth (Lazy.force devices) device_i in
      let kind = List.nth kinds kind_i in
      (* regular workloads need n * d even *)
      let n = match kind with Workload.Regular d when n * d mod 2 = 1 -> n + 1 | _ -> n in
      let rng = Rng.create seed in
      let problem = List.hd (Workload.problems rng kind ~n ~count:1) in
      let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
      let options = { Compile.default_options with seed } in
      List.for_all
        (fun strategy ->
          let r = Compile.compile ~options ~strategy device problem params in
          Compliance.is_compliant device r.Compile.circuit
          && metrics_consistent r problem)
        Compile.all_strategies)

let prop_pipeline_deterministic =
  QCheck.Test.make ~name:"pipeline deterministic under fixed seed" ~count:20
    QCheck.(pair (int_bound 100000) (int_range 6 10))
    (fun (seed, n) ->
      let device = Topologies.ibmq_16_melbourne () in
      let problem =
        List.hd
          (Workload.problems (Rng.create seed) (Workload.Regular 3) ~n:(2 * (n / 2))
             ~count:1)
      in
      let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
      let options = { Compile.default_options with seed } in
      List.for_all
        (fun strategy ->
          let a = Compile.compile ~options ~strategy device problem params in
          let b = Compile.compile ~options ~strategy device problem params in
          Circuit.equal a.Compile.circuit b.Compile.circuit)
        [ Compile.Qaim; Compile.Ip; Compile.Ic None; Compile.Vic None ])

let prop_peephole_end_to_end =
  QCheck.Test.make ~name:"peephole option never hurts and stays compliant"
    ~count:20
    QCheck.(pair (int_bound 100000) (int_range 6 10))
    (fun (seed, n) ->
      let device = Topologies.ibmq_16_melbourne () in
      let problem =
        List.hd
          (Workload.problems (Rng.create seed) (Workload.Erdos_renyi 0.4) ~n
             ~count:1)
      in
      let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
      let plain =
        Compile.compile
          ~options:{ Compile.default_options with seed }
          ~strategy:(Compile.Ic None) device problem params
      in
      let opt =
        Compile.compile
          ~options:{ Compile.default_options with seed; peephole = true }
          ~strategy:(Compile.Ic None) device problem params
      in
      Compliance.is_compliant device opt.Compile.circuit
      && opt.Compile.metrics.Metrics.gate_count
         <= plain.Compile.metrics.Metrics.gate_count)

(* --- report generation --- *)

let test_report_section_known () =
  let rows = [ ("x", [ 1.0; 2.0 ]) ] in
  let s = Report.section_of_rows ~scale:Figures.Smoke "fig10" rows in
  Alcotest.(check string) "id" "fig10" s.Report.id;
  Alcotest.(check bool) "paper notes present" true (s.Report.paper_notes <> []);
  let md = Report.section_to_markdown s in
  Alcotest.(check bool) "has heading" true
    (String.length md > 3 && String.sub md 0 3 = "## ");
  Alcotest.(check bool) "has blockquote" true
    (List.exists
       (fun l -> String.length l > 1 && String.sub l 0 1 = ">")
       (String.split_on_char '\n' md))

let test_report_section_unknown () =
  let s =
    Report.section_of_rows ~scale:Figures.Smoke "ablation_xyz"
      [ ("a", [ 1.0 ]); ("b", [ 2.0; 3.0 ]) ]
  in
  Alcotest.(check (list string)) "generic columns" [ "v0"; "v1" ] s.Report.columns

let test_report_document () =
  let sections =
    [
      Report.section_of_rows ~scale:Figures.Smoke "fig7" [ ("w", [ 0.9 ]) ];
      Report.section_of_rows ~scale:Figures.Smoke "ring8" [ ("IC", [ 20.0; 50.0; 0.1 ]) ];
    ]
  in
  let md = Report.to_markdown ~scale:Figures.Smoke sections in
  Alcotest.(check bool) "title" true
    (String.length md > 1 && String.sub md 0 1 = "#");
  let contains needle =
    let nl = String.length needle and sl = String.length md in
    let rec go i = i + nl <= sl && (String.sub md i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "both sections" true (contains "fig7" && contains "ring8")

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pipeline_invariants;
    QCheck_alcotest.to_alcotest prop_pipeline_deterministic;
    QCheck_alcotest.to_alcotest prop_peephole_end_to_end;
    ("report known section", `Quick, test_report_section_known);
    ("report unknown section", `Quick, test_report_section_unknown);
    ("report document", `Quick, test_report_document);
  ]
