(* Tests for the mapping structure and the SWAP-insertion router.  The
   router's central invariants: the compiled circuit is coupling-compliant
   and semantically equal to the logical circuit up to the final output
   permutation. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Mapping = Qaoa_backend.Mapping
module Router = Qaoa_backend.Router
module Compliance = Qaoa_backend.Compliance
module Stitcher = Qaoa_backend.Stitcher
module Statevector = Qaoa_sim.Statevector
module Rng = Qaoa_util.Rng

(* --- Mapping --- *)

let test_mapping_basics () =
  let m = Mapping.of_array ~num_physical:5 [| 3; 0; 4 |] in
  Alcotest.(check int) "num logical" 3 (Mapping.num_logical m);
  Alcotest.(check int) "num physical" 5 (Mapping.num_physical m);
  Alcotest.(check int) "phys 0" 3 (Mapping.phys m 0);
  Alcotest.(check (option int)) "logical at 4" (Some 2) (Mapping.logical_at m 4);
  Alcotest.(check (option int)) "empty phys" None (Mapping.logical_at m 1);
  Alcotest.(check bool) "allocated" true (Mapping.is_allocated m 0);
  Alcotest.(check bool) "not allocated" false (Mapping.is_allocated m 2);
  Alcotest.(check (list (pair int int))) "alist" [ (0, 3); (1, 0); (2, 4) ]
    (Mapping.to_alist m)

let test_mapping_validation () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Mapping.of_array: duplicate target") (fun () ->
      ignore (Mapping.of_array ~num_physical:3 [| 1; 1 |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Mapping.of_array: physical qubit out of range")
    (fun () -> ignore (Mapping.of_array ~num_physical:3 [| 5 |]));
  Alcotest.check_raises "too many"
    (Invalid_argument "Mapping.of_array: more logical than physical qubits")
    (fun () -> ignore (Mapping.of_array ~num_physical:2 [| 0; 1; 2 |]))

let test_mapping_swap () =
  let m = Mapping.of_array ~num_physical:4 [| 0; 1 |] in
  let m2 = Mapping.swap_physical m 1 2 in
  Alcotest.(check int) "logical 1 moved" 2 (Mapping.phys m2 1);
  Alcotest.(check (option int)) "phys 1 now empty" None (Mapping.logical_at m2 1);
  (* swapping two empty positions is a no-op on l2p *)
  let m3 = Mapping.swap_physical m2 1 3 in
  Alcotest.(check int) "unchanged" 2 (Mapping.phys m3 1);
  (* persistent: original untouched *)
  Alcotest.(check int) "persistent" 1 (Mapping.phys m 1)

let test_mapping_random () =
  let rng = Rng.create 3 in
  let m = Mapping.random rng ~num_logical:5 ~num_physical:12 in
  let targets = Array.to_list (Mapping.l2p_array m) in
  Alcotest.(check int) "distinct targets" 5
    (List.length (List.sort_uniq compare targets))

(* --- Router: small hand-checked cases --- *)

let test_route_no_swaps_needed () =
  (* adjacent CNOT on a linear device: no swaps *)
  let device = Topologies.linear 3 in
  let c = Circuit.of_gates 3 [ Gate.H 0; Gate.Cnot (0, 1); Gate.Cnot (1, 2) ] in
  let r =
    Router.route ~device
      ~initial:(Mapping.trivial ~num_logical:3 ~num_physical:3)
      c
  in
  Alcotest.(check int) "no swaps" 0 r.Router.swap_count;
  Alcotest.(check bool) "compliant" true (Compliance.is_compliant device r.Router.circuit)

let test_route_one_swap () =
  (* CNOT between the two ends of a 3-qubit chain needs exactly 1 swap *)
  let device = Topologies.linear 3 in
  let c = Circuit.of_gates 3 [ Gate.Cnot (0, 2) ] in
  let r =
    Router.route ~device
      ~initial:(Mapping.trivial ~num_logical:3 ~num_physical:3)
      c
  in
  Alcotest.(check int) "one swap" 1 r.Router.swap_count;
  Alcotest.(check bool) "compliant" true (Compliance.is_compliant device r.Router.circuit)

let test_route_respects_initial_mapping () =
  (* with logical 0 at physical 2 and logical 1 at physical 1, the CNOT is
     already satisfied *)
  let device = Topologies.linear 3 in
  let c = Circuit.of_gates 2 [ Gate.Cnot (0, 1) ] in
  let initial = Mapping.of_array ~num_physical:3 [| 2; 1 |] in
  let r = Router.route ~device ~initial c in
  Alcotest.(check int) "no swaps" 0 r.Router.swap_count;
  match Circuit.gates r.Router.circuit with
  | [ Gate.Cnot (2, 1) ] -> ()
  | _ -> Alcotest.fail "gate not emitted at physical locations"

let test_route_rejects_bad_mapping () =
  let device = Topologies.linear 3 in
  let c = Circuit.of_gates 3 [ Gate.H 0 ] in
  Alcotest.check_raises "too few logical"
    (Invalid_argument "Router: mapping covers fewer qubits than the circuit")
    (fun () ->
      ignore
        (Router.route ~device
           ~initial:(Mapping.trivial ~num_logical:2 ~num_physical:3)
           c));
  Alcotest.check_raises "wrong device size"
    (Invalid_argument "Router: mapping sized for a different device")
    (fun () ->
      ignore
        (Router.route ~device
           ~initial:(Mapping.trivial ~num_logical:3 ~num_physical:4)
           c))

(* --- Router: semantic equivalence ---

   The compiled physical circuit, applied to |0...0>, must equal the
   logical circuit's state re-indexed through the final mapping:
   amplitude_phys[embed(b)] = amplitude_logical[b] where embed places
   logical bit l at physical position phys(final, l). *)

let embed mapping ~num_logical b =
  let out = ref 0 in
  for l = 0 to num_logical - 1 do
    if b land (1 lsl l) <> 0 then out := !out lor (1 lsl (Mapping.phys mapping l))
  done;
  !out

let check_router_semantics device initial logical_circuit =
  let r = Router.route ~device ~initial logical_circuit in
  Alcotest.(check bool) "compliant" true
    (Compliance.is_compliant device r.Router.circuit);
  let k = Circuit.num_qubits logical_circuit in
  let sl = Statevector.of_circuit logical_circuit in
  let sp = Statevector.of_circuit r.Router.circuit in
  for b = 0 to (1 lsl k) - 1 do
    let lr, li = Statevector.amplitude sl b in
    let pr, pi =
      Statevector.amplitude sp (embed r.Router.final_mapping ~num_logical:k b)
    in
    if Float.abs (lr -. pr) > 1e-9 || Float.abs (li -. pi) > 1e-9 then
      Alcotest.failf "amplitude mismatch at %d" b
  done

let random_2q_circuit rng n len =
  Circuit.of_gates n
    (List.init len (fun _ ->
         match Rng.int rng 4 with
         | 0 -> Gate.H (Rng.int rng n)
         | 1 -> Gate.Rx (Rng.int rng n, Rng.float rng 3.0)
         | 2 ->
           let a = Rng.int rng n in
           let b = (a + 1 + Rng.int rng (n - 1)) mod n in
           Gate.Cnot (a, b)
         | _ ->
           let a = Rng.int rng n in
           let b = (a + 1 + Rng.int rng (n - 1)) mod n in
           Gate.Cphase (a, b, Rng.float rng 3.0)))

let test_semantics_linear () =
  let rng = Rng.create 11 in
  let device = Topologies.linear 5 in
  for _ = 1 to 5 do
    let c = random_2q_circuit rng 5 15 in
    check_router_semantics device
      (Mapping.trivial ~num_logical:5 ~num_physical:5)
      c
  done

let test_semantics_ring_with_spare_qubits () =
  let rng = Rng.create 13 in
  let device = Topologies.ring 7 in
  for _ = 1 to 5 do
    let c = random_2q_circuit rng 4 12 in
    let initial = Mapping.random rng ~num_logical:4 ~num_physical:7 in
    check_router_semantics device initial c
  done

let prop_router_semantics =
  QCheck.Test.make ~name:"router preserves semantics up to permutation"
    ~count:30
    QCheck.(pair (int_bound 100000) (int_range 3 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let device = if n mod 2 = 0 then Topologies.linear n else Topologies.ring (max 3 n) in
      let c = random_2q_circuit rng n 12 in
      let initial = Mapping.random rng ~num_logical:n ~num_physical:(Device.num_qubits device) in
      let r = Router.route ~device ~initial c in
      if not (Compliance.is_compliant device r.Router.circuit) then false
      else begin
        let sl = Statevector.of_circuit c in
        let sp = Statevector.of_circuit r.Router.circuit in
        let ok = ref true in
        for b = 0 to (1 lsl n) - 1 do
          let lr, li = Statevector.amplitude sl b in
          let pr, pi =
            Statevector.amplitude sp (embed r.Router.final_mapping ~num_logical:n b)
          in
          if Float.abs (lr -. pr) > 1e-9 || Float.abs (li -. pi) > 1e-9 then
            ok := false
        done;
        !ok
      end)

let test_route_on_tokyo_compliant () =
  let rng = Rng.create 17 in
  let device = Topologies.ibmq_20_tokyo () in
  let c = random_2q_circuit rng 12 60 in
  let initial = Mapping.random rng ~num_logical:12 ~num_physical:20 in
  let r = Router.route ~device ~initial c in
  Alcotest.(check bool) "compliant" true
    (Compliance.is_compliant device r.Router.circuit);
  (* every logical gate must survive routing: gate count = input + 1 swap each *)
  let non_swap =
    List.filter (function Gate.Swap _ -> false | _ -> true)
      (Circuit.gates r.Router.circuit)
  in
  Alcotest.(check int) "all gates preserved" (Circuit.length c)
    (List.length non_swap)

let test_reliability_aware_router_runs () =
  let rng = Rng.create 19 in
  let device = Topologies.ibmq_16_melbourne () in
  let c = random_2q_circuit rng 8 30 in
  let initial = Mapping.random rng ~num_logical:8 ~num_physical:15 in
  let config = { Router.default_config with reliability_aware = true } in
  let r = Router.route ~config ~device ~initial c in
  Alcotest.(check bool) "compliant" true
    (Compliance.is_compliant device r.Router.circuit)

(* --- Compliance --- *)

let test_compliance_reports () =
  let device = Topologies.linear 3 in
  let bad = Circuit.of_gates 3 [ Gate.H 0; Gate.Cnot (0, 2) ] in
  (match Compliance.violations device bad with
  | [ { Compliance.gate_index = 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single violation at index 1");
  Alcotest.(check bool) "not compliant" false (Compliance.is_compliant device bad);
  let ok = Circuit.of_gates 3 [ Gate.Cnot (0, 1) ] in
  Compliance.check_exn device ok;
  Alcotest.check_raises "check_exn raises"
    (Failure "coupling violation at gate 1: cx q0 q2 on linear_3") (fun () ->
      Compliance.check_exn device bad)

(* --- Stitcher --- *)

let test_stitcher () =
  let a = Circuit.of_gates 2 [ Gate.H 0 ] in
  let b = Circuit.of_gates 2 [ Gate.Cnot (0, 1) ] in
  let s = Stitcher.stitch [ a; b ] in
  Alcotest.(check int) "stitched length" 2 (Circuit.length s);
  Alcotest.check_raises "empty" (Invalid_argument "Stitcher.stitch: no partial circuits")
    (fun () -> ignore (Stitcher.stitch []));
  let m1 = Mapping.trivial ~num_logical:2 ~num_physical:2 in
  let m2 = Mapping.swap_physical m1 0 1 in
  let r1 = { Router.circuit = a; final_mapping = m1; swap_count = 1 } in
  let r2 = { Router.circuit = b; final_mapping = m2; swap_count = 2 } in
  let r = Stitcher.stitch_results [ r1; r2 ] in
  Alcotest.(check int) "swap sum" 3 r.Router.swap_count;
  Alcotest.(check bool) "last mapping wins" true
    (Mapping.equal m2 r.Router.final_mapping)

let suite =
  [
    ("mapping basics", `Quick, test_mapping_basics);
    ("mapping validation", `Quick, test_mapping_validation);
    ("mapping swap", `Quick, test_mapping_swap);
    ("mapping random", `Quick, test_mapping_random);
    ("route: no swaps", `Quick, test_route_no_swaps_needed);
    ("route: one swap", `Quick, test_route_one_swap);
    ("route: initial mapping honoured", `Quick, test_route_respects_initial_mapping);
    ("route: bad mapping rejected", `Quick, test_route_rejects_bad_mapping);
    ("route semantics on linear", `Quick, test_semantics_linear);
    ("route semantics with spare qubits", `Quick, test_semantics_ring_with_spare_qubits);
    ("route on tokyo compliant", `Quick, test_route_on_tokyo_compliant);
    ("reliability-aware router", `Quick, test_reliability_aware_router_runs);
    ("compliance reports", `Quick, test_compliance_reports);
    ("stitcher", `Quick, test_stitcher);
    QCheck_alcotest.to_alcotest prop_router_semantics;
  ]
