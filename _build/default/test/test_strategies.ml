(* Tests for the mapping and scheduling strategies (NAIVE, GreedyV/E,
   QAIM, IP, IC, VIC), the unified Compile API, success probability, ARG
   and the crosstalk extension.  Includes the paper's own worked examples
   (QAIM on Fig. 3, IP on Fig. 4, VIC layer choice of Fig. 6(e)). *)

module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators
module Circuit = Qaoa_circuit.Circuit
module Gate = Qaoa_circuit.Gate
module Layering = Qaoa_circuit.Layering
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Calibration = Qaoa_hardware.Calibration
module Profile = Qaoa_hardware.Profile
module Mapping = Qaoa_backend.Mapping
module Compliance = Qaoa_backend.Compliance
module Statevector = Qaoa_sim.Statevector
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Naive = Qaoa_core.Naive
module Greedy_mapper = Qaoa_core.Greedy_mapper
module Qaim = Qaoa_core.Qaim
module Ip = Qaoa_core.Ip
module Ic = Qaoa_core.Ic
module Vic = Qaoa_core.Vic
module Compile = Qaoa_core.Compile
module Success = Qaoa_core.Success
module Arg = Qaoa_core.Arg
module Crosstalk = Qaoa_core.Crosstalk
module Rng = Qaoa_util.Rng

let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4

let valid_mapping device problem m =
  Alcotest.(check int) "covers problem" problem.Problem.num_vars
    (Mapping.num_logical m);
  Alcotest.(check int) "sized for device" (Device.num_qubits device)
    (Mapping.num_physical m);
  let targets = Array.to_list (Mapping.l2p_array m) in
  Alcotest.(check int) "injective" problem.Problem.num_vars
    (List.length (List.sort_uniq compare targets))

(* --- mappers produce valid mappings --- *)

let test_mappers_valid () =
  let rng = Rng.create 3 in
  let device = Topologies.ibmq_20_tokyo () in
  let g = Generators.random_regular rng ~n:12 ~d:3 in
  let problem = Problem.of_maxcut g in
  valid_mapping device problem (Naive.initial_mapping rng device problem);
  valid_mapping device problem (Greedy_mapper.greedy_v rng device problem);
  valid_mapping device problem (Greedy_mapper.greedy_e rng device problem);
  valid_mapping device problem (Qaim.initial_mapping rng device problem)

let test_mappers_with_isolated_vertices () =
  let rng = Rng.create 5 in
  let device = Topologies.ibmq_16_melbourne () in
  (* vertex 4 is isolated: mappers must still place it *)
  let problem = Problem.of_maxcut (Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3) ]) in
  valid_mapping device problem (Greedy_mapper.greedy_v rng device problem);
  valid_mapping device problem (Greedy_mapper.greedy_e rng device problem);
  valid_mapping device problem (Qaim.initial_mapping rng device problem)

let test_qaim_too_large () =
  let rng = Rng.create 7 in
  let device = Topologies.linear 3 in
  let problem = Problem.of_maxcut (Generators.complete 5) in
  Alcotest.check_raises "problem larger than device"
    (Invalid_argument "Qaim.initial_mapping: problem larger than device")
    (fun () -> ignore (Qaim.initial_mapping rng device problem))

(* QAIM example of Fig. 3: the heaviest logical qubit goes to a physical
   qubit of maximum connectivity strength (7 or 12 on tokyo). *)
let fig3_problem () =
  (* q0 with 4 ops; q1, q4 with 3; q2, q3 with 2 (Fig. 5's gate list) *)
  Problem.of_maxcut
    (Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4); (1, 2); (1, 4); (3, 4) ])

let test_qaim_fig3_heaviest_placement () =
  let device = Topologies.ibmq_20_tokyo () in
  let problem = fig3_problem () in
  for seed = 0 to 9 do
    let m = Qaim.initial_mapping (Rng.create seed) device problem in
    let p0 = Mapping.phys m 0 in
    Alcotest.(check bool) "q0 on strength-18 qubit" true (p0 = 7 || p0 = 12)
  done

let test_qaim_neighbors_clustered () =
  (* QAIM should keep logical neighbors close: mean distance between
     mapped neighbors must beat the NAIVE average by a margin. *)
  let device = Topologies.ibmq_20_tokyo () in
  let dist = Profile.hop_distances device in
  let mean_neighbor_distance m problem =
    let pairs = Problem.cphase_pairs problem in
    Qaoa_util.Stats.mean
      (List.map
         (fun (a, b) ->
           Qaoa_util.Float_matrix.get dist (Mapping.phys m a) (Mapping.phys m b))
         pairs)
  in
  let rng = Rng.create 11 in
  let totals = ref (0.0, 0.0) in
  for _ = 1 to 10 do
    let g = Generators.random_regular rng ~n:12 ~d:3 in
    let problem = Problem.of_maxcut g in
    let q = mean_neighbor_distance (Qaim.initial_mapping rng device problem) problem in
    let n = mean_neighbor_distance (Naive.initial_mapping rng device problem) problem in
    let a, b = !totals in
    totals := (a +. q, b +. n)
  done;
  let q, n = !totals in
  Alcotest.(check bool) "QAIM clusters neighbors" true (q < n)

(* --- IP --- *)

let fig4_problem () =
  (* Fig. 4(a) in 0-indexed form: {(0,4), (1,2), (0,3), (1,3)} *)
  Problem.of_maxcut (Graph.of_edges 5 [ (0, 4); (1, 2); (0, 3); (1, 3) ])

let test_ip_fig4 () =
  let problem = fig4_problem () in
  Alcotest.(check int) "MOQ = 2" 2 (Ip.minimum_layers problem);
  for seed = 0 to 9 do
    let layers = Ip.pack_layers (Rng.create seed) problem in
    Alcotest.(check int) "exactly MOQ layers" 2 (List.length layers);
    (* each layer is qubit-disjoint *)
    List.iter
      (fun layer ->
        let qs = List.concat_map (fun (a, b) -> [ a; b ]) layer in
        Alcotest.(check int) "disjoint" (List.length qs)
          (List.length (List.sort_uniq compare qs)))
      layers;
    (* all pairs covered exactly once *)
    let flat = List.sort compare (List.concat layers) in
    Alcotest.(check (list (pair int int))) "covers all"
      (Problem.cphase_pairs problem) flat
  done

let test_ip_rank () =
  let problem = fig4_problem () in
  (* ranks (Fig. 4(c)): (0,3) and (1,3) have rank 4; (0,4) and (1,2) rank 3 *)
  Alcotest.(check int) "rank (0,3)" 4 (Ip.rank problem (0, 3));
  Alcotest.(check int) "rank (0,4)" 3 (Ip.rank problem (0, 4));
  Alcotest.(check int) "rank (1,2)" 3 (Ip.rank problem (1, 2))

let test_ip_k4_meets_lower_bound () =
  (* K4 has MOQ 3 and admits a perfect 3-layer schedule *)
  let problem = Problem.of_maxcut (Generators.complete 4) in
  let layers = Ip.pack_layers (Rng.create 1) problem in
  Alcotest.(check int) "3 layers" 3 (List.length layers);
  List.iter
    (fun l -> Alcotest.(check int) "2 gates per layer" 2 (List.length l))
    layers

let test_ip_packing_limit () =
  let problem = Problem.of_maxcut (Generators.complete 4) in
  let layers = Ip.pack_layers ~packing_limit:1 (Rng.create 1) problem in
  Alcotest.(check int) "6 singleton layers" 6 (List.length layers);
  List.iter (fun l -> Alcotest.(check int) "singleton" 1 (List.length l)) layers;
  Alcotest.check_raises "limit < 1"
    (Invalid_argument "Ip.pack_layers: packing limit < 1") (fun () ->
      ignore (Ip.pack_layers ~packing_limit:0 (Rng.create 1) problem))

let prop_ip_layers_valid =
  QCheck.Test.make ~name:"IP layers: disjoint, complete, >= MOQ" ~count:50
    QCheck.(pair (int_bound 100000) (int_range 4 14))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.4 in
      QCheck.assume (Graph.num_edges g > 0);
      let problem = Problem.of_maxcut g in
      let layers = Ip.pack_layers rng problem in
      let disjoint =
        List.for_all
          (fun layer ->
            let qs = List.concat_map (fun (a, b) -> [ a; b ]) layer in
            List.length qs = List.length (List.sort_uniq compare qs))
          layers
      in
      let flat = List.sort compare (List.concat layers) in
      disjoint
      && flat = Problem.cphase_pairs problem
      && List.length layers >= Ip.minimum_layers problem)

(* --- IC / VIC --- *)

let test_ic_form_layer_prefers_close_pairs () =
  let device = Topologies.linear 4 in
  let dist = Profile.hop_distances device in
  (* remaining: (0,1) at distance 1, (0,3) at distance 3; both share qubit 0 *)
  let layer, rest =
    Ic.form_layer (Rng.create 1) ~dist ~phys:(fun q -> q) [ (0, 3); (0, 1) ]
  in
  Alcotest.(check (list (pair int int))) "close first" [ (0, 1) ] layer;
  Alcotest.(check (list (pair int int))) "far deferred" [ (0, 3) ] rest

let test_ic_form_layer_packing_limit () =
  let device = Topologies.linear 6 in
  let dist = Profile.hop_distances device in
  let remaining = [ (0, 1); (2, 3); (4, 5) ] in
  let layer, rest =
    Ic.form_layer ~packing_limit:2 (Rng.create 1) ~dist ~phys:(fun q -> q)
      remaining
  in
  Alcotest.(check int) "capped at 2" 2 (List.length layer);
  Alcotest.(check int) "one left" 1 (List.length rest)

(* Fig. 6(e): with the variation-aware distances, Op1 = (0,1) (success
   0.90) is chosen over Op2 = (0,5) (success 0.82) for the first layer. *)
let test_vic_fig6_layer_choice () =
  let device = Topologies.hypothetical_6q () in
  let dist = Profile.weighted_distances device in
  for seed = 0 to 9 do
    let layer, rest =
      Ic.form_layer (Rng.create seed) ~dist ~phys:(fun q -> q)
        [ (0, 5); (0, 1) ]
    in
    Alcotest.(check (list (pair int int))) "Op1 chosen" [ (0, 1) ] layer;
    Alcotest.(check (list (pair int int))) "Op2 deferred" [ (0, 5) ] rest
  done

let semantic_check device problem (r : Compile.result) =
  let logical = Ansatz.state problem params in
  let phys = Statevector.of_circuit r.Compile.circuit in
  let k = problem.Problem.num_vars in
  let ok = ref true in
  for b = 0 to (1 lsl k) - 1 do
    let pl = Statevector.probability logical b in
    let idx = ref 0 in
    for l = 0 to k - 1 do
      if b land (1 lsl l) <> 0 then
        idx := !idx lor (1 lsl (Mapping.phys r.Compile.final_mapping l))
    done;
    if Float.abs (pl -. Statevector.probability phys !idx) > 1e-9 then ok := false
  done;
  Alcotest.(check bool) "semantics preserved" true !ok;
  Alcotest.(check bool) "compliant" true
    (Compliance.is_compliant device r.Compile.circuit)

let test_all_strategies_correct_on_melbourne () =
  let rng = Rng.create 9 in
  let device = Topologies.ibmq_16_melbourne () in
  let g = Generators.random_regular rng ~n:8 ~d:3 in
  let problem = Problem.of_maxcut g in
  List.iter
    (fun strategy ->
      let r = Compile.compile ~strategy device problem params in
      semantic_check device problem r;
      Alcotest.(check bool) "positive depth" true (r.Compile.metrics.Qaoa_circuit.Metrics.depth > 0))
    Compile.all_strategies

let test_strategies_deterministic_under_seed () =
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.random_regular (Rng.create 1) ~n:8 ~d:3) in
  List.iter
    (fun strategy ->
      let a = Compile.compile ~strategy device problem params in
      let b = Compile.compile ~strategy device problem params in
      Alcotest.(check bool)
        (Compile.strategy_name strategy ^ " deterministic")
        true
        (Circuit.equal a.Compile.circuit b.Compile.circuit))
    Compile.all_strategies

let test_ic_multilevel () =
  let rng = Rng.create 13 in
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.random_regular rng ~n:6 ~d:3) in
  let p2 = { Ansatz.gammas = [| 0.7; 0.3 |]; betas = [| 0.4; 0.6 |] } in
  let initial = Qaim.initial_mapping rng device problem in
  let r = Ic.compile rng device ~initial problem p2 in
  Alcotest.(check bool) "compliant" true
    (Compliance.is_compliant device r.Qaoa_backend.Router.circuit);
  (* semantics against the logical 2-level ansatz *)
  let logical = Ansatz.state problem p2 in
  let phys = Statevector.of_circuit r.Qaoa_backend.Router.circuit in
  let ok = ref true in
  for b = 0 to (1 lsl 6) - 1 do
    let idx = ref 0 in
    for l = 0 to 5 do
      if b land (1 lsl l) <> 0 then
        idx :=
          !idx lor (1 lsl (Mapping.phys r.Qaoa_backend.Router.final_mapping l))
    done;
    if
      Float.abs
        (Statevector.probability logical b
        -. Statevector.probability phys !idx)
      > 1e-9
    then ok := false
  done;
  Alcotest.(check bool) "2-level semantics" true !ok

let test_ic_cphase_count_preserved () =
  let rng = Rng.create 15 in
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.erdos_renyi rng ~n:10 ~p:0.4) in
  let initial = Qaim.initial_mapping rng device problem in
  let r = Ic.compile rng device ~initial problem params in
  let cphases =
    List.length
      (List.filter
         (function Gate.Cphase _ -> true | _ -> false)
         (Circuit.gates r.Qaoa_backend.Router.circuit))
  in
  Alcotest.(check int) "one cphase per edge"
    (List.length (Problem.cphase_pairs problem))
    cphases

let test_vic_requires_calibration () =
  let rng = Rng.create 17 in
  let device = Topologies.ibmq_20_tokyo () in
  let problem = Problem.of_maxcut (Generators.complete 4) in
  let initial = Qaim.initial_mapping rng device problem in
  Alcotest.check_raises "no calibration"
    (Invalid_argument "ibmq_20_tokyo: device has no calibration data")
    (fun () -> ignore (Vic.compile rng device ~initial problem params))

let test_strategy_parsing () =
  Alcotest.(check bool) "naive" true (Compile.strategy_of_string "NAIVE" = Some Compile.Naive);
  Alcotest.(check bool) "ic" true (Compile.strategy_of_string "ic" = Some (Compile.Ic None));
  Alcotest.(check bool) "vic" true (Compile.strategy_of_string "Vic" = Some (Compile.Vic None));
  Alcotest.(check bool) "vqa" true (Compile.strategy_of_string "vqa" = Some Compile.Vqa_alloc);
  Alcotest.(check bool) "unknown" true (Compile.strategy_of_string "zzz" = None);
  Alcotest.(check string) "name roundtrip" "IC(limit=3)"
    (Compile.strategy_name (Compile.Ic (Some 3)))

(* --- Success probability --- *)

let test_success_probability_manual () =
  let cal = Calibration.create ~single_qubit_error:0.01 [ (0, 1, 0.1); (1, 2, 0.2) ] in
  let c =
    Circuit.of_gates 3
      [ Gate.H 0; Gate.Cphase (0, 1, 0.5); Gate.Cnot (1, 2); Gate.Measure 0 ]
  in
  (* h: 0.99; cphase -> cx rz cx: 0.9 * 0.99 * 0.9; cx(1,2): 0.8 *)
  let expected = 0.99 *. (0.9 *. 0.99 *. 0.9) *. 0.8 in
  Alcotest.(check (float 1e-12)) "product" expected (Success.of_circuit cal c);
  (* agrees with the noise model's analytic value *)
  Alcotest.(check (float 1e-12)) "matches noise model" expected
    (Qaoa_sim.Noise.expected_success_probability (Qaoa_sim.Noise.create cal) c);
  (* log form agrees *)
  Alcotest.(check (float 1e-9)) "log form" (log expected) (Success.log_success cal c)

let test_success_readout () =
  let cal =
    Calibration.create ~single_qubit_error:0.0 ~readout_error:0.1 [ (0, 1, 0.0) ]
  in
  let c = Circuit.of_gates 2 [ Gate.Measure 0; Gate.Measure 1 ] in
  Alcotest.(check (float 1e-12)) "without readout" 1.0 (Success.of_circuit cal c);
  Alcotest.(check (float 1e-12)) "with readout" 0.81
    (Success.of_circuit ~include_readout:true cal c)

let test_vic_beats_ic_on_success () =
  (* Aggregate over instances: VIC circuits should be at least as
     reliable as IC circuits on melbourne's skewed calibration. *)
  let device = Topologies.ibmq_16_melbourne () in
  let rng = Rng.create 21 in
  let ratios = ref [] in
  for seed = 0 to 11 do
    let g = Generators.erdos_renyi rng ~n:10 ~p:0.5 in
    if Graph.num_edges g > 0 then begin
      let problem = Problem.of_maxcut g in
      let options = { Compile.default_options with seed } in
      let ic = Compile.compile ~options ~strategy:(Compile.Ic None) device problem params in
      let vic = Compile.compile ~options ~strategy:(Compile.Vic None) device problem params in
      let s_ic = Compile.success_probability device ic in
      let s_vic = Compile.success_probability device vic in
      ratios := (s_vic /. s_ic) :: !ratios
    end
  done;
  let mean_ratio = Qaoa_util.Stats.mean !ratios in
  Alcotest.(check bool)
    (Printf.sprintf "VIC/IC success ratio %.3f >= 1" mean_ratio)
    true (mean_ratio >= 1.0)

(* --- ARG --- *)

let test_arg_zero_noise () =
  let rng = Rng.create 23 in
  let coupling_edges = Topologies.ibmq_16_melbourne () |> Device.coupling_edges in
  let noiseless_cal =
    Calibration.create ~single_qubit_error:0.0 ~readout_error:0.0
      (List.map (fun (u, v) -> (u, v, 0.0)) coupling_edges)
  in
  let device =
    Device.with_calibration (Topologies.ibmq_16_melbourne ()) noiseless_cal
  in
  let problem = Problem.of_maxcut (Generators.random_regular rng ~n:8 ~d:3) in
  let r = Compile.compile ~strategy:(Compile.Ic None) device problem params in
  let report = Arg.evaluate ~shots:8192 rng device problem params r in
  Alcotest.(check bool)
    (Printf.sprintf "ARG ~ 0 under zero noise (got %.2f%%)" report.Arg.arg_percent)
    true
    (Float.abs report.Arg.arg_percent < 5.0)

let test_arg_noise_hurts () =
  let rng = Rng.create 25 in
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.random_regular rng ~n:8 ~d:3) in
  let r = Compile.compile ~strategy:(Compile.Ic None) device problem params in
  let report = Arg.evaluate ~shots:4096 rng device problem params r in
  Alcotest.(check bool) "hardware ratio below ideal" true
    (report.Arg.hardware_ratio < report.Arg.ideal_ratio);
  Alcotest.(check bool) "positive ARG" true (report.Arg.arg_percent > 0.0)

let test_arg_readout_mitigation_helps () =
  (* melbourne's calibration carries 3% readout error; unfolding it must
     close part of the gap *)
  let rng = Rng.create 29 in
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.random_regular rng ~n:8 ~d:3) in
  let r = Compile.compile ~strategy:(Compile.Ic None) device problem params in
  let plain =
    Arg.evaluate ~shots:8192 (Rng.create 1) device problem params r
  in
  let mitigated =
    Arg.evaluate ~shots:8192 ~mitigate_readout:true (Rng.create 1) device
      problem params r
  in
  Alcotest.(check bool)
    (Printf.sprintf "mitigated ARG %.2f < plain ARG %.2f"
       mitigated.Arg.arg_percent plain.Arg.arg_percent)
    true
    (mitigated.Arg.arg_percent < plain.Arg.arg_percent)

(* --- Crosstalk --- *)

let test_crosstalk_sequentialization () =
  (* two hot gates in the same ASAP layer must be separated *)
  let c =
    Circuit.of_gates 4 [ Gate.Cnot (0, 1); Gate.Cnot (2, 3) ]
  in
  let hot = [ (0, 1); (2, 3) ] in
  let seq, stats = Crosstalk.apply_with_stats ~high_crosstalk:hot c in
  Alcotest.(check int) "one conflict" 1 stats.Crosstalk.conflicts;
  Alcotest.(check int) "depth before" 1 stats.Crosstalk.depth_before;
  Alcotest.(check int) "depth after" 2 stats.Crosstalk.depth_after;
  (* no layer of the result holds two hot gates *)
  let layers = Layering.layers seq in
  List.iter
    (fun layer ->
      let hot_count =
        List.length
          (List.filter
             (fun g ->
               match Gate.qubits g with
               | [ a; b ] -> List.mem (min a b, max a b) hot
               | _ -> false)
             layer)
      in
      Alcotest.(check bool) "at most one hot gate" true (hot_count <= 1))
    layers

let test_crosstalk_no_conflict_unchanged () =
  let c = Circuit.of_gates 4 [ Gate.Cnot (0, 1); Gate.Cnot (2, 3) ] in
  let seq, stats = Crosstalk.apply_with_stats ~high_crosstalk:[ (0, 1) ] c in
  Alcotest.(check int) "no conflicts" 0 stats.Crosstalk.conflicts;
  Alcotest.(check int) "same depth" stats.Crosstalk.depth_before
    stats.Crosstalk.depth_after;
  Alcotest.(check int) "same gates" (Circuit.length c) (Circuit.length seq)

let test_crosstalk_preserves_semantics () =
  let rng = Rng.create 27 in
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.random_regular rng ~n:8 ~d:3) in
  let r = Compile.compile ~strategy:Compile.Ip device problem params in
  let hot = [ (0, 1); (1, 2); (2, 3) ] in
  let seq = Crosstalk.sequentialize ~high_crosstalk:hot r.Compile.circuit in
  Alcotest.(check bool) "same state" true
    (Statevector.equal_up_to_global_phase
       (Statevector.of_circuit r.Compile.circuit)
       (Statevector.of_circuit seq))

(* QCheck: every strategy yields a compliant circuit whose CPHASE count
   matches the problem on random instances. *)
let prop_compile_invariants =
  QCheck.Test.make ~name:"compile: compliant and gate-complete" ~count:20
    QCheck.(pair (int_bound 100000) (int_range 4 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let device = Topologies.ibmq_16_melbourne () in
      let g = Generators.erdos_renyi rng ~n ~p:0.4 in
      QCheck.assume (Graph.num_edges g > 0);
      let problem = Problem.of_maxcut g in
      let options = { Compile.default_options with seed } in
      List.for_all
        (fun strategy ->
          let r = Compile.compile ~options ~strategy device problem params in
          Compliance.is_compliant device r.Compile.circuit
          && List.length
               (List.filter
                  (function Gate.Cphase _ -> true | _ -> false)
                  (Circuit.gates r.Compile.circuit))
             = List.length (Problem.cphase_pairs problem))
        Compile.all_strategies)

let suite =
  [
    ("mappers valid", `Quick, test_mappers_valid);
    ("mappers with isolated vertices", `Quick, test_mappers_with_isolated_vertices);
    ("qaim too large", `Quick, test_qaim_too_large);
    ("qaim fig.3 heaviest placement", `Quick, test_qaim_fig3_heaviest_placement);
    ("qaim clusters neighbors", `Quick, test_qaim_neighbors_clustered);
    ("ip fig.4 example", `Quick, test_ip_fig4);
    ("ip ranks", `Quick, test_ip_rank);
    ("ip K4 lower bound", `Quick, test_ip_k4_meets_lower_bound);
    ("ip packing limit", `Quick, test_ip_packing_limit);
    ("ic form_layer distance order", `Quick, test_ic_form_layer_prefers_close_pairs);
    ("ic form_layer packing limit", `Quick, test_ic_form_layer_packing_limit);
    ("vic fig.6 layer choice", `Quick, test_vic_fig6_layer_choice);
    ("all strategies correct", `Slow, test_all_strategies_correct_on_melbourne);
    ("strategies deterministic", `Quick, test_strategies_deterministic_under_seed);
    ("ic multilevel", `Quick, test_ic_multilevel);
    ("ic cphase count preserved", `Quick, test_ic_cphase_count_preserved);
    ("vic requires calibration", `Quick, test_vic_requires_calibration);
    ("strategy parsing", `Quick, test_strategy_parsing);
    ("success probability manual", `Quick, test_success_probability_manual);
    ("success readout", `Quick, test_success_readout);
    ("vic beats ic on success", `Slow, test_vic_beats_ic_on_success);
    ("arg zero noise", `Slow, test_arg_zero_noise);
    ("arg noise hurts", `Slow, test_arg_noise_hurts);
    ("arg readout mitigation helps", `Slow, test_arg_readout_mitigation_helps);
    ("crosstalk sequentialization", `Quick, test_crosstalk_sequentialization);
    ("crosstalk no conflict", `Quick, test_crosstalk_no_conflict_unchanged);
    ("crosstalk preserves semantics", `Quick, test_crosstalk_preserves_semantics);
    QCheck_alcotest.to_alcotest prop_compile_invariants;
  ]
