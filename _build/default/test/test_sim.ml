(* Tests for the statevector simulator, sampler and noise model: gate
   semantics against hand-computed states, sampling statistics, and
   noise-channel sanity. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Calibration = Qaoa_hardware.Calibration
module Statevector = Qaoa_sim.Statevector
module Sampler = Qaoa_sim.Sampler
module Noise = Qaoa_sim.Noise
module Rng = Qaoa_util.Rng

let check_amp name (er, ei) (ar, ai) =
  Alcotest.(check (float 1e-9)) (name ^ " re") er ar;
  Alcotest.(check (float 1e-9)) (name ^ " im") ei ai

let test_initial_state () =
  let sv = Statevector.create 3 in
  Alcotest.(check (float 1e-12)) "p(000)" 1.0 (Statevector.probability sv 0);
  Alcotest.(check (float 1e-12)) "norm" 1.0 (Statevector.norm sv)

let test_hadamard () =
  let sv = Statevector.create 1 in
  Statevector.apply_gate sv (Gate.H 0);
  let s = 1.0 /. sqrt 2.0 in
  check_amp "amp0" (s, 0.0) (Statevector.amplitude sv 0);
  check_amp "amp1" (s, 0.0) (Statevector.amplitude sv 1);
  (* H is self-inverse *)
  Statevector.apply_gate sv (Gate.H 0);
  check_amp "back to |0>" (1.0, 0.0) (Statevector.amplitude sv 0)

let test_x_and_bit_order () =
  (* little-endian: X on qubit 1 of |00> gives index 2 *)
  let sv = Statevector.create 2 in
  Statevector.apply_gate sv (Gate.X 1);
  Alcotest.(check (float 1e-12)) "p(10)" 1.0 (Statevector.probability sv 2)

let test_bell_state () =
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  let sv = Statevector.of_circuit c in
  Alcotest.(check (float 1e-12)) "p(00)" 0.5 (Statevector.probability sv 0);
  Alcotest.(check (float 1e-12)) "p(11)" 0.5 (Statevector.probability sv 3);
  Alcotest.(check (float 1e-12)) "p(01)" 0.0 (Statevector.probability sv 1)

let test_rz_phases () =
  (* RZ(theta)|1> = e^{i theta/2}|1> *)
  let sv = Statevector.create 1 in
  Statevector.apply_gate sv (Gate.X 0);
  Statevector.apply_gate sv (Gate.Rz (0, Float.pi /. 2.0));
  let c = cos (Float.pi /. 4.0) and s = sin (Float.pi /. 4.0) in
  check_amp "phase on |1>" (c, s) (Statevector.amplitude sv 1)

let test_rx_rotation () =
  (* RX(pi)|0> = -i|1> *)
  let sv = Statevector.create 1 in
  Statevector.apply_gate sv (Gate.Rx (0, Float.pi));
  check_amp "rx pi" (0.0, -1.0) (Statevector.amplitude sv 1)

let test_phase_gate () =
  (* u1(theta) acts only on |1> *)
  let sv = Statevector.create 1 in
  Statevector.apply_gate sv (Gate.H 0);
  Statevector.apply_gate sv (Gate.Phase (0, Float.pi));
  let s = 1.0 /. sqrt 2.0 in
  check_amp "amp1 negated" (-.s, 0.0) (Statevector.amplitude sv 1);
  check_amp "amp0 untouched" (s, 0.0) (Statevector.amplitude sv 0)

let test_cphase_diagonal () =
  (* Cphase(theta) on |11> (bits agree) multiplies by e^{-i theta/2} *)
  let theta = 0.8 in
  let sv = Statevector.create 2 in
  Statevector.apply_gate sv (Gate.X 0);
  Statevector.apply_gate sv (Gate.X 1);
  Statevector.apply_gate sv (Gate.Cphase (0, 1, theta));
  check_amp "agree phase"
    (cos (theta /. 2.0), -.sin (theta /. 2.0))
    (Statevector.amplitude sv 3);
  (* and on |01> (bits differ) by e^{+i theta/2} *)
  let sv2 = Statevector.create 2 in
  Statevector.apply_gate sv2 (Gate.X 0);
  Statevector.apply_gate sv2 (Gate.Cphase (0, 1, theta));
  check_amp "differ phase"
    (cos (theta /. 2.0), sin (theta /. 2.0))
    (Statevector.amplitude sv2 1)

let test_swap_gate () =
  let sv = Statevector.create 2 in
  Statevector.apply_gate sv (Gate.X 0);
  Statevector.apply_gate sv (Gate.Swap (0, 1));
  Alcotest.(check (float 1e-12)) "swapped to |10>" 1.0 (Statevector.probability sv 2)

let test_pauli_y () =
  (* Y|0> = i|1> *)
  let sv = Statevector.create 1 in
  Statevector.apply_pauli sv `Y 0;
  check_amp "y on 0" (0.0, 1.0) (Statevector.amplitude sv 1)

let test_measure_barrier_noop () =
  let sv = Statevector.create 2 in
  Statevector.apply_gate sv (Gate.H 0);
  let before = Statevector.probabilities sv in
  Statevector.apply_gate sv Gate.Barrier;
  Statevector.apply_gate sv (Gate.Measure 0);
  Alcotest.(check (array (float 1e-12))) "unchanged" before
    (Statevector.probabilities sv)

let test_size_guard () =
  Alcotest.check_raises "too large"
    (Invalid_argument "Statevector.create: 0 <= n <= 26") (fun () ->
      ignore (Statevector.create 30))

let test_expectation_diag () =
  let sv = Statevector.of_circuit (Circuit.of_gates 1 [ Gate.H 0 ]) in
  (* observable: value of the bit *)
  let e = Statevector.expectation_diag sv (fun b -> float_of_int b) in
  Alcotest.(check (float 1e-9)) "uniform bit" 0.5 e

let test_overlap () =
  let a = Statevector.of_circuit (Circuit.of_gates 1 [ Gate.H 0 ]) in
  let b = Statevector.of_circuit (Circuit.of_gates 1 [ Gate.H 0 ]) in
  Alcotest.(check (float 1e-9)) "identical" 1.0 (Statevector.overlap_probability a b);
  let c = Statevector.create 1 in
  Alcotest.(check (float 1e-9)) "half" 0.5 (Statevector.overlap_probability a c);
  Alcotest.(check bool) "global phase equal" true
    (let d = Statevector.copy a in
     (* multiply by a global phase via Rz on both amplitudes: apply Rz
        twice on a 1-qubit uniform state rotates both components equally
        only if we use Phase on both - instead check equality of a with
        itself *)
     Statevector.equal_up_to_global_phase a d)

let test_sampling_statistics () =
  let rng = Rng.create 5 in
  let sv = Statevector.of_circuit (Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ]) in
  let samples = Sampler.sample_many rng sv ~shots:10000 in
  let zeros = Array.fold_left (fun acc s -> if s = 0 then acc + 1 else acc) 0 samples in
  let threes = Array.fold_left (fun acc s -> if s = 3 then acc + 1 else acc) 0 samples in
  Alcotest.(check int) "only bell outcomes" 10000 (zeros + threes);
  Alcotest.(check bool) "balanced" true (abs (zeros - threes) < 500)

let test_counts () =
  let rng = Rng.create 6 in
  let sv = Statevector.create 2 in
  (* deterministic state: all mass on |00> *)
  let counts = Sampler.counts rng sv ~shots:100 in
  Alcotest.(check (list (pair int int))) "all zero" [ (0, 100) ] counts

let test_flip_bits () =
  let rng = Rng.create 7 in
  Alcotest.(check int) "p=0 identity" 5 (Sampler.flip_bits rng ~p:0.0 ~num_qubits:3 5);
  let flipped = Sampler.flip_bits rng ~p:1.0 ~num_qubits:3 0b101 in
  Alcotest.(check int) "p=1 complement" 0b010 flipped

let test_noise_zero_error_is_ideal () =
  let rng = Rng.create 8 in
  let cal =
    Calibration.create ~single_qubit_error:0.0 ~readout_error:0.0
      [ (0, 1, 0.0) ]
  in
  let noise = Noise.create cal in
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  let sv = Noise.run_trajectory rng noise c in
  let ideal = Statevector.of_circuit c in
  Alcotest.(check bool) "equal to ideal" true
    (Statevector.equal_up_to_global_phase sv ideal)

let test_noise_degrades_fidelity () =
  let rng = Rng.create 9 in
  let cal =
    Calibration.create ~single_qubit_error:0.0 ~readout_error:0.0
      [ (0, 1, 0.5) ]
  in
  let noise = Noise.create cal in
  (* start from a non-basis state so every Pauli acts visibly, then a long
     CNOT chain at 50% error: most trajectories must deviate *)
  let c =
    Circuit.of_gates 2
      ([ Gate.H 0; Gate.H 1 ] @ List.init 20 (fun _ -> Gate.Cnot (0, 1)))
  in
  let ideal = Statevector.of_circuit c in
  let deviating = ref 0 in
  for _ = 1 to 50 do
    let sv = Noise.run_trajectory rng noise c in
    if not (Statevector.equal_up_to_global_phase ~eps:1e-6 sv ideal) then
      incr deviating
  done;
  Alcotest.(check bool)
    (Printf.sprintf "mostly deviating (%d/50)" !deviating)
    true (!deviating > 30)

let test_expected_success_probability () =
  let cal =
    Calibration.create ~single_qubit_error:0.01 [ (0, 1, 0.1) ]
  in
  let noise = Noise.create cal in
  let c =
    Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1); Gate.Measure 0 ]
  in
  (* 0.99 (h) * 0.9 (cx); measure excluded *)
  Alcotest.(check (float 1e-9)) "product" (0.99 *. 0.9)
    (Noise.expected_success_probability noise c)

let test_sample_noisy_shapes () =
  let rng = Rng.create 10 in
  let cal = Calibration.create ~readout_error:0.0 [ (0, 1, 0.05) ] in
  let noise = Noise.create cal in
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  let samples = Noise.sample_noisy rng noise c ~shots:256 ~trajectories:8 in
  Alcotest.(check int) "shot count" 256 (Array.length samples);
  Array.iter
    (fun s -> Alcotest.(check bool) "in range" true (s >= 0 && s < 4))
    samples;
  Alcotest.check_raises "bad args"
    (Invalid_argument "Noise.sample_noisy: shots and trajectories must be positive")
    (fun () -> ignore (Noise.sample_noisy rng noise c ~shots:0 ~trajectories:1))

(* QCheck: unitary circuits preserve the norm. *)
let prop_norm_preserved =
  QCheck.Test.make ~name:"unitary evolution preserves norm" ~count:50
    QCheck.(pair (int_bound 100000) (int_range 1 5))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let gates =
        List.init 25 (fun _ ->
            match Rng.int rng 6 with
            | 0 -> Gate.H (Rng.int rng n)
            | 1 -> Gate.Rx (Rng.int rng n, Rng.float rng 6.0)
            | 2 -> Gate.Ry (Rng.int rng n, Rng.float rng 6.0)
            | 3 -> Gate.Rz (Rng.int rng n, Rng.float rng 6.0)
            | 4 when n > 1 ->
              let a = Rng.int rng n in
              Gate.Cnot (a, (a + 1) mod n)
            | _ when n > 1 ->
              let a = Rng.int rng n in
              Gate.Cphase (a, (a + 1) mod n, Rng.float rng 6.0)
            | _ -> Gate.X 0)
      in
      let sv = Statevector.of_circuit (Circuit.of_gates n gates) in
      Float.abs (Statevector.norm sv -. 1.0) < 1e-9)

(* QCheck: sampled outcomes always carry non-zero probability. *)
let prop_samples_supported =
  QCheck.Test.make ~name:"samples come from the support" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = Circuit.of_gates 3 [ Gate.H 0; Gate.Cnot (0, 1); Gate.Cnot (1, 2) ] in
      let sv = Statevector.of_circuit c in
      let samples = Sampler.sample_many rng sv ~shots:200 in
      Array.for_all (fun s -> Statevector.probability sv s > 1e-12) samples)

let suite =
  [
    ("initial state", `Quick, test_initial_state);
    ("hadamard", `Quick, test_hadamard);
    ("x and bit order", `Quick, test_x_and_bit_order);
    ("bell state", `Quick, test_bell_state);
    ("rz phases", `Quick, test_rz_phases);
    ("rx rotation", `Quick, test_rx_rotation);
    ("phase gate", `Quick, test_phase_gate);
    ("cphase diagonal", `Quick, test_cphase_diagonal);
    ("swap gate", `Quick, test_swap_gate);
    ("pauli y", `Quick, test_pauli_y);
    ("measure/barrier noop", `Quick, test_measure_barrier_noop);
    ("size guard", `Quick, test_size_guard);
    ("expectation diag", `Quick, test_expectation_diag);
    ("overlap", `Quick, test_overlap);
    ("sampling statistics", `Slow, test_sampling_statistics);
    ("counts", `Quick, test_counts);
    ("flip bits", `Quick, test_flip_bits);
    ("noise: zero error ideal", `Quick, test_noise_zero_error_is_ideal);
    ("noise: degrades fidelity", `Quick, test_noise_degrades_fidelity);
    ("expected success probability", `Quick, test_expected_success_probability);
    ("sample noisy shapes", `Quick, test_sample_noisy_shapes);
    QCheck_alcotest.to_alcotest prop_norm_preserved;
    QCheck_alcotest.to_alcotest prop_samples_supported;
  ]
