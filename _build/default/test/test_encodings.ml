(* Tests for the NP-hard problem encodings: each encoded optimum must
   match the combinatorial optimum computed by independent brute force
   on small instances, and the encoded problems must compile through the
   standard pipeline. *)

module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators
module Problem = Qaoa_core.Problem
module Encodings = Qaoa_core.Encodings
module Ansatz = Qaoa_core.Ansatz
module Compile = Qaoa_core.Compile
module Compliance = Qaoa_backend.Compliance
module Topologies = Qaoa_hardware.Topologies
module Rng = Qaoa_util.Rng

(* independent brute force over subsets / assignments *)
let brute_force_sets n score =
  let best = ref neg_infinity in
  for bits = 0 to (1 lsl n) - 1 do
    let sel =
      List.filter (fun i -> bits land (1 lsl i) <> 0) (List.init n (fun i -> i))
    in
    best := Float.max !best (score bits sel)
  done;
  !best

let test_mis_matches_bruteforce () =
  let rng = Rng.create 1 in
  for _ = 1 to 10 do
    let g = Generators.erdos_renyi rng ~n:7 ~p:0.4 in
    let problem = Encodings.max_independent_set g in
    let _, encoded_best = Problem.brute_force_best problem in
    let true_best =
      brute_force_sets 7 (fun _ sel ->
          if Encodings.is_independent_set g sel then
            float_of_int (List.length sel)
          else neg_infinity)
    in
    Alcotest.(check (float 1e-9)) "MIS size" true_best encoded_best
  done

let test_mis_optimum_is_independent () =
  let rng = Rng.create 2 in
  for _ = 1 to 5 do
    let g = Generators.erdos_renyi rng ~n:7 ~p:0.5 in
    let problem = Encodings.max_independent_set g in
    let bits, _ = Problem.brute_force_best problem in
    Alcotest.(check bool) "argmax independent" true
      (Encodings.is_independent_set g (Encodings.decode_selection problem bits))
  done

let test_vc_matches_bruteforce () =
  let rng = Rng.create 3 in
  for _ = 1 to 10 do
    let g = Generators.erdos_renyi rng ~n:7 ~p:0.4 in
    let problem = Encodings.min_vertex_cover g in
    let _, encoded_best = Problem.brute_force_best problem in
    let true_best =
      brute_force_sets 7 (fun _ sel ->
          if Encodings.is_vertex_cover g sel then
            -.float_of_int (List.length sel)
          else neg_infinity)
    in
    Alcotest.(check (float 1e-9)) "-(VC size)" true_best encoded_best
  done

let test_vc_optimum_is_cover () =
  let g = Generators.cycle 6 in
  let problem = Encodings.min_vertex_cover g in
  let bits, best = Problem.brute_force_best problem in
  Alcotest.(check (float 1e-9)) "C6 cover size 3" (-3.0) best;
  Alcotest.(check bool) "argmax covers" true
    (Encodings.is_vertex_cover g (Encodings.decode_selection problem bits))

let test_partition_perfect () =
  (* [3; 1; 1; 2; 2; 1] splits evenly (sum 10 -> 5/5) *)
  let problem = Encodings.number_partitioning [ 3.; 1.; 1.; 2.; 2.; 1. ] in
  let _, best = Problem.brute_force_best problem in
  Alcotest.(check (float 1e-9)) "perfect partition" 0.0 best

let test_partition_imperfect () =
  (* [3; 1; 1] cannot balance: best |diff| = 1 -> optimum -1 *)
  let problem = Encodings.number_partitioning [ 3.; 1.; 1. ] in
  let _, best = Problem.brute_force_best problem in
  Alcotest.(check (float 1e-9)) "best residual 1" (-1.0) best

let random_clauses rng num_vars count =
  List.init count (fun _ ->
      let l () =
        {
          Encodings.var = Rng.int rng num_vars;
          negated = Rng.bool rng;
        }
      in
      (l (), l ()))

let test_max2sat_matches_bruteforce () =
  let rng = Rng.create 4 in
  for _ = 1 to 10 do
    let clauses = random_clauses rng 6 12 in
    let problem = Encodings.max_2sat ~num_vars:6 clauses in
    let _, encoded_best = Problem.brute_force_best problem in
    let true_best =
      brute_force_sets 6 (fun bits _ ->
          float_of_int (Encodings.count_satisfied clauses bits))
    in
    Alcotest.(check (float 1e-9)) "max satisfied" true_best encoded_best
  done

let test_max2sat_cost_pointwise () =
  (* the Ising cost must equal the satisfied-clause count at EVERY
     assignment, not just the optimum *)
  let rng = Rng.create 5 in
  let clauses = random_clauses rng 5 10 in
  let problem = Encodings.max_2sat ~num_vars:5 clauses in
  for bits = 0 to 31 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "assignment %d" bits)
      (float_of_int (Encodings.count_satisfied clauses bits))
      (Problem.cost problem bits)
  done

let test_max2sat_tautology_and_duplicates () =
  let v n = { Encodings.var = n; negated = false } in
  let nv n = { Encodings.var = n; negated = true } in
  (* (x0 or not x0) & (x1 or x1) *)
  let clauses = [ (v 0, nv 0); (v 1, v 1) ] in
  let problem = Encodings.max_2sat ~num_vars:2 clauses in
  Alcotest.(check (float 1e-9)) "x1 false: only tautology" 1.0
    (Problem.cost problem 0b00);
  Alcotest.(check (float 1e-9)) "x1 true: both" 2.0 (Problem.cost problem 0b10)

let test_penalty_validation () =
  let g = Generators.path 3 in
  Alcotest.check_raises "mis penalty"
    (Invalid_argument "Encodings.max_independent_set: penalty must exceed 1")
    (fun () -> ignore (Encodings.max_independent_set ~penalty:1.0 g));
  Alcotest.check_raises "vc penalty"
    (Invalid_argument "Encodings.min_vertex_cover: penalty must exceed 1")
    (fun () -> ignore (Encodings.min_vertex_cover ~penalty:0.5 g))

let test_encoded_problems_compile () =
  (* the whole point: these problems flow through the same pipeline *)
  let rng = Rng.create 6 in
  let device = Topologies.ibmq_16_melbourne () in
  let g = Generators.erdos_renyi rng ~n:8 ~p:0.4 in
  let params = Ansatz.params_p1 ~gamma:0.5 ~beta:0.3 in
  List.iter
    (fun problem ->
      if Problem.cphase_pairs problem <> [] then begin
        let r =
          Compile.compile ~strategy:(Compile.Ic None) device problem params
        in
        Alcotest.(check bool) "compliant" true
          (Compliance.is_compliant device r.Compile.circuit)
      end)
    [
      Encodings.max_independent_set g;
      Encodings.min_vertex_cover g;
      Encodings.number_partitioning [ 3.; 1.; 4.; 1.; 5. ];
      Encodings.max_2sat ~num_vars:8 (random_clauses rng 8 10);
    ]

(* QCheck: MIS penalty objective never rewards dependent sets at the
   optimum. *)
let prop_mis_penalized_argmax_independent =
  QCheck.Test.make ~name:"MIS argmax is always an independent set" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 3 8))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.5 in
      let problem = Encodings.max_independent_set g in
      let bits, _ = Problem.brute_force_best problem in
      Encodings.is_independent_set g (Encodings.decode_selection problem bits))

let suite =
  [
    ("MIS matches brute force", `Quick, test_mis_matches_bruteforce);
    ("MIS argmax independent", `Quick, test_mis_optimum_is_independent);
    ("VC matches brute force", `Quick, test_vc_matches_bruteforce);
    ("VC optimum covers", `Quick, test_vc_optimum_is_cover);
    ("partition perfect", `Quick, test_partition_perfect);
    ("partition imperfect", `Quick, test_partition_imperfect);
    ("Max-2-SAT matches brute force", `Quick, test_max2sat_matches_bruteforce);
    ("Max-2-SAT pointwise", `Quick, test_max2sat_cost_pointwise);
    ("Max-2-SAT tautology/duplicates", `Quick, test_max2sat_tautology_and_duplicates);
    ("penalty validation", `Quick, test_penalty_validation);
    ("encoded problems compile", `Quick, test_encoded_problems_compile);
    QCheck_alcotest.to_alcotest prop_mis_penalized_argmax_independent;
  ]
