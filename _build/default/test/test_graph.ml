(* Unit and property tests for the qaoa_graph substrate. *)

module Rng = Qaoa_util.Rng
module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators
module Paths = Qaoa_graph.Paths
module Subgraph = Qaoa_graph.Subgraph
module Float_matrix = Qaoa_util.Float_matrix

let test_build_and_query () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (1, 2) ] in
  Alcotest.(check int) "n" 4 (Graph.num_vertices g);
  Alcotest.(check int) "m (dedup)" 2 (Graph.num_edges g);
  Alcotest.(check bool) "edge 0-1" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "edge symmetric" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "no edge 0-2" false (Graph.has_edge g 0 2);
  Alcotest.(check int) "deg 1" 2 (Graph.degree g 1);
  Alcotest.(check int) "deg 3" 0 (Graph.degree g 3);
  Alcotest.(check (list int)) "neighbors sorted" [ 0; 2 ] (Graph.neighbors g 1);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2) ] (Graph.edges g)

let test_add_remove () =
  let g = Graph.create 3 in
  let g = Graph.add_edge g 0 2 in
  Alcotest.(check bool) "added" true (Graph.has_edge g 0 2);
  let g2 = Graph.remove_edge g 0 2 in
  Alcotest.(check bool) "removed" false (Graph.has_edge g2 0 2);
  Alcotest.(check bool) "persistent" true (Graph.has_edge g 0 2);
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (Graph.add_edge g 1 1));
  Alcotest.check_raises "out of range" (Invalid_argument "Graph: vertex out of range")
    (fun () -> ignore (Graph.add_edge g 0 5))

let test_common_neighbors () =
  let g = Graph.of_edges 5 [ (0, 2); (1, 2); (0, 3); (1, 3); (0, 4) ] in
  Alcotest.(check (list int)) "common 0 1" [ 2; 3 ] (Graph.common_neighbors g 0 1);
  Alcotest.(check (list int)) "common 2 3" [ 0; 1 ] (Graph.common_neighbors g 2 3);
  Alcotest.(check (list int)) "none" [] (Graph.common_neighbors g 1 4)

let test_connectivity () =
  Alcotest.(check bool) "path connected" true (Graph.is_connected (Generators.path 5));
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "two components" false (Graph.is_connected g);
  Alcotest.(check (list (list int)))
    "components" [ [ 0; 1 ]; [ 2; 3 ] ]
    (Paths.connected_components g);
  Alcotest.(check bool) "empty connected" true (Graph.is_connected (Graph.create 0));
  Alcotest.(check bool) "singleton connected" true (Graph.is_connected (Graph.create 1))

let test_generators_shapes () =
  let p = Generators.path 6 in
  Alcotest.(check int) "path edges" 5 (Graph.num_edges p);
  let c = Generators.cycle 6 in
  Alcotest.(check int) "cycle edges" 6 (Graph.num_edges c);
  List.iter
    (fun v -> Alcotest.(check int) "cycle 2-regular" 2 (Graph.degree c v))
    (Graph.vertices c);
  let g = Generators.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "grid vertices" 12 (Graph.num_vertices g);
  Alcotest.(check int) "grid edges" 17 (Graph.num_edges g);
  let k = Generators.complete 5 in
  Alcotest.(check int) "K5 edges" 10 (Graph.num_edges k);
  let s = Generators.star 5 in
  Alcotest.(check int) "star center degree" 4 (Graph.degree s 0)

let test_erdos_renyi_extremes () =
  let rng = Rng.create 1 in
  let empty = Generators.erdos_renyi rng ~n:10 ~p:0.0 in
  Alcotest.(check int) "p=0 no edges" 0 (Graph.num_edges empty);
  let full = Generators.erdos_renyi rng ~n:10 ~p:1.0 in
  Alcotest.(check int) "p=1 complete" 45 (Graph.num_edges full)

let test_erdos_renyi_density () =
  let rng = Rng.create 2 in
  let total = ref 0 in
  let trials = 50 in
  for _ = 1 to trials do
    total := !total + Graph.num_edges (Generators.erdos_renyi rng ~n:20 ~p:0.3)
  done;
  let mean = float_of_int !total /. float_of_int trials in
  let expected = 0.3 *. 190.0 in
  Alcotest.(check bool) "density near p*C(n,2)" true
    (Float.abs (mean -. expected) < 6.0)

let test_gnm () =
  let rng = Rng.create 3 in
  let g = Generators.erdos_renyi_gnm rng ~n:10 ~m:17 in
  Alcotest.(check int) "exact edge count" 17 (Graph.num_edges g);
  Alcotest.check_raises "too many"
    (Invalid_argument "Generators.erdos_renyi_gnm: too many edges") (fun () ->
      ignore (Generators.erdos_renyi_gnm rng ~n:4 ~m:7))

let test_random_regular () =
  let rng = Rng.create 4 in
  List.iter
    (fun (n, d) ->
      let g = Generators.random_regular rng ~n ~d in
      List.iter
        (fun v -> Alcotest.(check int) "regular degree" d (Graph.degree g v))
        (Graph.vertices g))
    [ (8, 3); (12, 4); (20, 3); (20, 8); (15, 6) ];
  Alcotest.check_raises "odd nd"
    (Invalid_argument "Generators.random_regular: n * d must be even")
    (fun () -> ignore (Generators.random_regular rng ~n:5 ~d:3))

let test_random_regular_varies () =
  let rng = Rng.create 5 in
  let a = Generators.random_regular rng ~n:12 ~d:3 in
  let b = Generators.random_regular rng ~n:12 ~d:3 in
  Alcotest.(check bool) "two draws differ" false (Graph.equal a b)

let test_bfs_and_paths () =
  let g = Generators.path 6 in
  let d = Paths.bfs_distances g 0 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4; 5 |] d;
  let sp = Paths.shortest_path g 1 4 in
  Alcotest.(check (list int)) "path route" [ 1; 2; 3; 4 ] sp;
  let disconnected = Graph.of_edges 4 [ (0, 1) ] in
  Alcotest.check_raises "unreachable" Not_found (fun () ->
      ignore (Paths.shortest_path disconnected 0 3))

let test_shortest_path_endpoints () =
  let g = Generators.cycle 8 in
  let sp = Paths.shortest_path g 0 3 in
  Alcotest.(check int) "starts at src" 0 (List.hd sp);
  Alcotest.(check int) "ends at dst" 3 (List.nth sp (List.length sp - 1));
  Alcotest.(check int) "length = dist + 1" 4 (List.length sp);
  Alcotest.(check (list int)) "trivial path" [ 2 ] (Paths.shortest_path g 2 2)

let test_all_pairs_hops () =
  let g = Generators.cycle 6 in
  let d = Paths.all_pairs_hops g in
  Alcotest.(check (float 1e-9)) "opposite" 3.0 (Float_matrix.get d 0 3);
  Alcotest.(check (float 1e-9)) "adjacent" 1.0 (Float_matrix.get d 0 5);
  Alcotest.(check bool) "symmetric" true (Float_matrix.is_symmetric d)

let test_diameter () =
  Alcotest.(check int) "path diameter" 5 (Paths.diameter (Generators.path 6));
  Alcotest.(check int) "cycle diameter" 3 (Paths.diameter (Generators.cycle 6));
  Alcotest.(check int) "complete diameter" 1 (Paths.diameter (Generators.complete 4))

let test_induced_subgraph () =
  let g = Generators.cycle 6 in
  let sub, back = Subgraph.induced g [ 0; 1; 2; 4 ] in
  Alcotest.(check int) "sub vertices" 4 (Graph.num_vertices sub);
  Alcotest.(check int) "sub edges" 2 (Graph.num_edges sub);
  Alcotest.(check (array int)) "back map" [| 0; 1; 2; 4 |] back;
  Alcotest.(check int) "edge count within" 2 (Subgraph.edge_count_within g [ 0; 1; 2; 4 ])

let test_relabel () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let r = Subgraph.relabel g [| 2; 0; 1 |] in
  Alcotest.(check bool) "relabeled" true (Graph.has_edge r 2 0);
  Alcotest.(check bool) "old gone" false (Graph.has_edge r 0 1)

(* QCheck: BFS distances from vertex 0 agree with Floyd-Warshall hops. *)
let prop_bfs_matches_fw =
  QCheck.Test.make ~name:"bfs agrees with floyd-warshall" ~count:50
    QCheck.(pair (int_bound 10000) (int_range 2 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.4 in
      let fw = Paths.all_pairs_hops g in
      let ok = ref true in
      for src = 0 to n - 1 do
        let bfs = Paths.bfs_distances g src in
        for v = 0 to n - 1 do
          let a = if bfs.(v) = max_int then Float.infinity else float_of_int bfs.(v) in
          if a <> Float_matrix.get fw src v then ok := false
        done
      done;
      !ok)

(* QCheck: random regular graphs have the requested degree everywhere. *)
let prop_regular_degrees =
  QCheck.Test.make ~name:"random_regular degree invariant" ~count:40
    QCheck.(triple (int_bound 10000) (int_range 4 16) (int_range 2 3))
    (fun (seed, n, d) ->
      let n = if n * d mod 2 = 1 then n + 1 else n in
      let g = Generators.random_regular (Rng.create seed) ~n ~d in
      List.for_all (fun v -> Graph.degree g v = d) (Graph.vertices g))

(* QCheck: shortest_path length always equals the BFS distance. *)
let prop_shortest_path_length =
  QCheck.Test.make ~name:"shortest_path matches bfs distance" ~count:50
    QCheck.(pair (int_bound 10000) (int_range 3 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.5 in
      let dist = Paths.bfs_distances g 0 in
      let ok = ref true in
      for v = 0 to n - 1 do
        if dist.(v) <> max_int then begin
          let p = Paths.shortest_path g 0 v in
          if List.length p <> dist.(v) + 1 then ok := false;
          (* consecutive vertices must be adjacent *)
          let rec adj = function
            | a :: (b :: _ as rest) ->
              if not (Graph.has_edge g a b) then ok := false;
              adj rest
            | _ -> ()
          in
          adj p
        end
      done;
      !ok)

let suite =
  [
    ("build and query", `Quick, test_build_and_query);
    ("add/remove edges", `Quick, test_add_remove);
    ("common neighbors", `Quick, test_common_neighbors);
    ("connectivity", `Quick, test_connectivity);
    ("generator shapes", `Quick, test_generators_shapes);
    ("erdos-renyi extremes", `Quick, test_erdos_renyi_extremes);
    ("erdos-renyi density", `Slow, test_erdos_renyi_density);
    ("gnm exact edges", `Quick, test_gnm);
    ("random regular", `Quick, test_random_regular);
    ("random regular varies", `Quick, test_random_regular_varies);
    ("bfs and shortest paths", `Quick, test_bfs_and_paths);
    ("shortest path endpoints", `Quick, test_shortest_path_endpoints);
    ("all pairs hops", `Quick, test_all_pairs_hops);
    ("diameter", `Quick, test_diameter);
    ("induced subgraph", `Quick, test_induced_subgraph);
    ("relabel", `Quick, test_relabel);
    QCheck_alcotest.to_alcotest prop_bfs_matches_fw;
    QCheck_alcotest.to_alcotest prop_regular_degrees;
    QCheck_alcotest.to_alcotest prop_shortest_path_length;
  ]
