(* Tests for the extension modules: coherence model, QASM parsing,
   reverse-traversal refinement, VQA allocation and iterative
   recompilation. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Qasm = Qaoa_circuit.Qasm
module Decompose = Qaoa_circuit.Decompose
module Device = Qaoa_hardware.Device
module Calibration = Qaoa_hardware.Calibration
module Coherence = Qaoa_hardware.Coherence
module Topologies = Qaoa_hardware.Topologies
module Mapping = Qaoa_backend.Mapping
module Compliance = Qaoa_backend.Compliance
module Router = Qaoa_backend.Router
module Statevector = Qaoa_sim.Statevector
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Compile = Qaoa_core.Compile
module Qaim = Qaoa_core.Qaim
module Reverse_traversal = Qaoa_core.Reverse_traversal
module Vqa = Qaoa_core.Vqa
module Iterative = Qaoa_core.Iterative
module Generators = Qaoa_graph.Generators
module Rng = Qaoa_util.Rng

(* --- Coherence --- *)

let test_coherence_duration () =
  let model =
    Coherence.uniform ~gate_duration_1q:50e-9 ~gate_duration_2q:300e-9
      ~num_qubits:2 ~t1:50e-6 ~t2:50e-6 ()
  in
  (* H; CNOT decomposes to two layers: 1q then 2q *)
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  Alcotest.(check (float 1e-15)) "duration" (50e-9 +. 300e-9)
    (Coherence.circuit_duration model c)

let test_coherence_decoherence_factor () =
  let model =
    Coherence.uniform ~gate_duration_1q:1e-6 ~gate_duration_2q:1e-6
      ~num_qubits:2 ~t1:10e-6 ~t2:10e-6 ()
  in
  (* Single H on qubit 0: active window is 1 layer of 1 us; qubit 1 idle
     (never active, no decay counted). *)
  let c = Circuit.of_gates 2 [ Gate.H 0 ] in
  Alcotest.(check (float 1e-9)) "single qubit decay" (exp (-0.1))
    (Coherence.decoherence_factor model c);
  (* deeper circuit decays more *)
  let deep = Circuit.of_gates 2 (List.init 10 (fun _ -> Gate.H 0)) in
  Alcotest.(check bool) "monotone in depth" true
    (Coherence.decoherence_factor model deep
    < Coherence.decoherence_factor model c)

let test_coherence_active_window () =
  let c = Circuit.of_gates 3 [ Gate.H 0; Gate.H 1; Gate.H 0; Gate.H 0 ] in
  let w = Coherence.active_window c in
  Alcotest.(check (option (pair int int))) "q0 window" (Some (0, 2)) w.(0);
  Alcotest.(check (option (pair int int))) "q1 window" (Some (0, 0)) w.(1);
  Alcotest.(check (option (pair int int))) "q2 untouched" None w.(2)

let test_coherence_esp () =
  let model =
    Coherence.uniform ~gate_duration_1q:1e-6 ~gate_duration_2q:1e-6
      ~num_qubits:2 ~t1:100e-6 ~t2:100e-6 ()
  in
  let cal = Calibration.create ~single_qubit_error:0.01 [ (0, 1, 0.1) ] in
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  let esp = Coherence.estimated_success_probability model cal c in
  let gates_only = 0.99 *. 0.9 in
  Alcotest.(check bool) "below gates-only" true (esp < gates_only);
  Alcotest.(check bool) "close for long T1" true (esp > gates_only *. 0.9)

let test_coherence_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Coherence.create: T1/T2 length mismatch") (fun () ->
      ignore (Coherence.create ~t1:[| 1.0 |] ~t2:[| 1.0; 2.0 |] ()));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Coherence.create: non-positive time") (fun () ->
      ignore (Coherence.create ~t1:[| 0.0 |] ~t2:[| 1.0 |] ()))

let test_coherence_schedules_bounded () =
  (* both schedules give valid probabilities; neither dominates in
     general (ALAP trades tail slack for head slack) *)
  let rng = Rng.create 51 in
  for _ = 1 to 10 do
    let gates =
      List.init 25 (fun _ ->
          match Rng.int rng 3 with
          | 0 -> Gate.H (Rng.int rng 4)
          | 1 ->
            let a = Rng.int rng 4 in
            Gate.Cnot (a, (a + 1) mod 4)
          | _ -> Gate.Rz (Rng.int rng 4, 0.4))
    in
    let c = Circuit.of_gates 4 gates in
    let model =
      Coherence.uniform ~gate_duration_1q:1e-6 ~gate_duration_2q:1e-6
        ~num_qubits:4 ~t1:30e-6 ~t2:30e-6 ()
    in
    List.iter
      (fun schedule ->
        let f = Coherence.decoherence_factor ~schedule model c in
        Alcotest.(check bool) "in (0, 1]" true (f > 0.0 && f <= 1.0))
      [ Coherence.Asap; Coherence.Alap ]
  done

let test_coherence_alap_strictly_better_sometimes () =
  (* H 0 early with a long chain on q1: ALAP sinks it, shrinking q0's
     window *)
  let c =
    Circuit.of_gates 2
      ([ Gate.H 0 ]
      @ List.init 8 (fun _ -> Gate.Rz (1, 0.1))
      @ [ Gate.Cnot (0, 1) ])
  in
  let model =
    Coherence.uniform ~gate_duration_1q:1e-6 ~gate_duration_2q:1e-6
      ~num_qubits:2 ~t1:10e-6 ~t2:10e-6 ()
  in
  let asap = Coherence.decoherence_factor ~schedule:Coherence.Asap model c in
  let alap = Coherence.decoherence_factor ~schedule:Coherence.Alap model c in
  Alcotest.(check bool) "alap strictly better" true (alap > asap +. 1e-9)

let test_coherence_random () =
  let rng = Rng.create 5 in
  let model = Coherence.random rng ~num_qubits:10 () in
  Array.iteri
    (fun q t1 ->
      Alcotest.(check bool) "t1 positive" true (t1 > 0.0);
      Alcotest.(check bool) "t2 <= 1.5 t1" true
        (model.Coherence.t2.(q) <= (1.5 *. t1) +. 1e-12))
    model.Coherence.t1

(* --- QASM parsing --- *)

let test_qasm_parse_simple () =
  let src =
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
     h q[0];\ncx q[0],q[1];\nrz(0.5) q[1];\nswap q[1],q[2]; // comment\n\
     u1(pi/2) q[2];\nrx(-pi) q[0];\nbarrier q;\nmeasure q[2] -> c[2];\n"
  in
  let c = Qasm.of_string src in
  Alcotest.(check int) "qubits" 3 (Circuit.num_qubits c);
  match Circuit.gates c with
  | [
   Gate.H 0;
   Gate.Cnot (0, 1);
   Gate.Rz (1, a);
   Gate.Swap (1, 2);
   Gate.Phase (2, b);
   Gate.Rx (0, x);
   Gate.Barrier;
   Gate.Measure 2;
  ] ->
    Alcotest.(check (float 1e-12)) "rz angle" 0.5 a;
    Alcotest.(check (float 1e-12)) "pi/2" (Float.pi /. 2.0) b;
    Alcotest.(check (float 1e-12)) "-pi" (-.Float.pi) x
  | _ -> Alcotest.fail "unexpected gate sequence"

let test_qasm_roundtrip_semantics () =
  let rng = Rng.create 9 in
  for _ = 1 to 10 do
    let gates =
      List.init 20 (fun _ ->
          match Rng.int rng 6 with
          | 0 -> Gate.H (Rng.int rng 4)
          | 1 -> Gate.Rz (Rng.int rng 4, Rng.float rng 6.0 -. 3.0)
          | 2 -> Gate.Rx (Rng.int rng 4, Rng.float rng 6.0 -. 3.0)
          | 3 ->
            let a = Rng.int rng 4 in
            Gate.Cnot (a, (a + 1) mod 4)
          | 4 ->
            let a = Rng.int rng 4 in
            Gate.Cphase (a, (a + 1) mod 4, Rng.float rng 6.0 -. 3.0)
          | _ ->
            let a = Rng.int rng 4 in
            Gate.Swap (a, (a + 1) mod 4))
    in
    let c = Circuit.of_gates 4 gates in
    let parsed = Qasm.of_string (Qasm.to_string c) in
    (* roundtrip returns the decomposed form; semantics must match *)
    Alcotest.(check bool) "roundtrip semantics" true
      (Statevector.equal_up_to_global_phase ~eps:1e-9
         (Statevector.of_circuit c)
         (Statevector.of_circuit parsed));
    Alcotest.(check int) "roundtrip gate count"
      (Circuit.length (Decompose.circuit c))
      (Circuit.length parsed)
  done

let test_qasm_parse_errors () =
  let expect_failure src =
    match Qasm.of_string src with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected parse failure"
  in
  expect_failure "qreg q[2];\nfancygate q[0];\n";
  expect_failure "qreg q[2];\nrx() q[0];\n";
  expect_failure "qreg q[2];\ncx q[0];\n";
  expect_failure "h q[0];\n" (* no qreg *)

let test_qasm_angle_expressions () =
  let c = Qasm.of_string "qreg q[1];\nrz(3*pi/2) q[0];\nrz(2.5e-1) q[0];\n" in
  match Circuit.gates c with
  | [ Gate.Rz (0, a); Gate.Rz (0, b) ] ->
    Alcotest.(check (float 1e-12)) "3*pi/2" (3.0 *. Float.pi /. 2.0) a;
    Alcotest.(check (float 1e-12)) "scientific" 0.25 b
  | _ -> Alcotest.fail "bad parse"

(* --- Reverse traversal --- *)

let test_reverse_circuit () =
  let c =
    Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1); Gate.Measure 0 ]
  in
  let r = Reverse_traversal.reverse_circuit c in
  match Circuit.gates r with
  | [ Gate.Cnot (0, 1); Gate.H 0 ] -> ()
  | _ -> Alcotest.fail "expected reversed unitary gates without measure"

let test_reverse_traversal_improves_or_matches () =
  (* Refined mappings must stay valid, and on average not increase the
     swap count of a fresh compilation. *)
  let rng = Rng.create 31 in
  let device = Topologies.ibmq_16_melbourne () in
  let swaps_with initial circuit =
    (Router.route ~device ~initial circuit).Router.swap_count
  in
  let total_before = ref 0 and total_after = ref 0 in
  for seed = 0 to 7 do
    let g = Generators.random_regular (Rng.create seed) ~n:10 ~d:3 in
    let problem = Problem.of_maxcut g in
    let circuit =
      Ansatz.circuit ~measure:false problem
        (Ansatz.params_p1 ~gamma:0.7 ~beta:0.4)
    in
    let initial = Qaoa_core.Naive.initial_mapping rng device problem in
    let refined = Reverse_traversal.refine ~device ~initial circuit in
    Alcotest.(check int) "refined still covers problem" 10
      (Mapping.num_logical refined);
    total_before := !total_before + swaps_with initial circuit;
    total_after := !total_after + swaps_with refined circuit
  done;
  Alcotest.(check bool)
    (Printf.sprintf "swaps %d -> %d" !total_before !total_after)
    true
    (!total_after <= !total_before)

let test_reverse_traversal_zero_iterations () =
  let device = Topologies.linear 4 in
  let initial = Mapping.trivial ~num_logical:4 ~num_physical:4 in
  let c = Circuit.of_gates 4 [ Gate.Cnot (0, 3) ] in
  let refined = Reverse_traversal.refine ~iterations:0 ~device ~initial c in
  Alcotest.(check bool) "identity refinement" true (Mapping.equal initial refined)

(* --- VQA --- *)

let test_vqa_region () =
  let device = Topologies.ibmq_16_melbourne () in
  let region = Vqa.select_region device ~k:6 in
  Alcotest.(check int) "region size" 6 (List.length region);
  Alcotest.(check int) "distinct" 6 (List.length (List.sort_uniq compare region));
  (* the region avoids the device's worst coupling when possible: the
     (3,4) edge has 8.6% error, so 3 and 4 should not both be chosen
     purely for that link; just sanity-check that the best coupling's
     endpoints are included *)
  let cal = Device.calibration_exn device in
  let best_edge =
    List.fold_left
      (fun best (u, v) ->
        match best with
        | None -> Some (u, v)
        | Some (bu, bv) ->
          if Calibration.cnot_error cal u v < Calibration.cnot_error cal bu bv
          then Some (u, v)
          else best)
      None
      (Device.coupling_edges device)
  in
  match best_edge with
  | Some (u, v) ->
    Alcotest.(check bool) "contains a best-edge endpoint" true
      (List.mem u region || List.mem v region)
  | None -> Alcotest.fail "device has edges"

let test_vqa_mapping_valid () =
  let rng = Rng.create 33 in
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.random_regular rng ~n:8 ~d:3) in
  let m = Vqa.initial_mapping rng device problem in
  Alcotest.(check int) "covers problem" 8 (Mapping.num_logical m);
  let targets = Array.to_list (Mapping.l2p_array m) in
  Alcotest.(check int) "injective" 8 (List.length (List.sort_uniq compare targets));
  (* all targets inside the selected region *)
  let region = Vqa.select_region device ~k:8 in
  List.iter
    (fun p -> Alcotest.(check bool) "in region" true (List.mem p region))
    targets

let test_vqa_requires_calibration () =
  let device = Topologies.ibmq_20_tokyo () in
  Alcotest.check_raises "no calibration"
    (Invalid_argument "ibmq_20_tokyo: device has no calibration data")
    (fun () -> ignore (Vqa.select_region device ~k:4))

(* --- Iterative recompilation --- *)

let test_iterative_improves_or_matches_single () =
  let device = Topologies.ibmq_16_melbourne () in
  let problem =
    Problem.of_maxcut (Generators.random_regular (Rng.create 3) ~n:10 ~d:3)
  in
  let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  let single = Compile.compile ~strategy:(Compile.Ic None) device problem params in
  let iterated =
    Iterative.compile ~patience:3 ~max_rounds:12 ~strategy:(Compile.Ic None)
      device problem params
  in
  Alcotest.(check bool) "at least one round" true (iterated.Iterative.rounds >= 1);
  Alcotest.(check bool) "never worse than round 0" true
    (iterated.Iterative.best.Compile.metrics.Qaoa_circuit.Metrics.depth
    <= single.Compile.metrics.Qaoa_circuit.Metrics.depth);
  Alcotest.(check bool) "compliant" true
    (Compliance.is_compliant device iterated.Iterative.best.Compile.circuit)

let test_iterative_success_objective () =
  let device = Topologies.ibmq_16_melbourne () in
  let problem =
    Problem.of_maxcut (Generators.random_regular (Rng.create 4) ~n:8 ~d:3)
  in
  let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  let r =
    Iterative.compile ~patience:2 ~max_rounds:8
      ~objective:Iterative.Success_probability ~strategy:(Compile.Vic None)
      device problem params
  in
  Alcotest.(check bool) "rounds bounded" true (r.Iterative.rounds <= 8);
  Alcotest.(check bool) "positive success" true
    (Compile.success_probability device r.Iterative.best > 0.0)

let test_iterative_validation () =
  let device = Topologies.linear 4 in
  let problem = Problem.of_maxcut (Generators.path 3) in
  let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  Alcotest.check_raises "bad patience"
    (Invalid_argument "Iterative.compile: patience and max_rounds must be >= 1")
    (fun () ->
      ignore
        (Iterative.compile ~patience:0 ~strategy:Compile.Naive device problem
           params))

let suite =
  [
    ("coherence duration", `Quick, test_coherence_duration);
    ("coherence decay factor", `Quick, test_coherence_decoherence_factor);
    ("coherence active window", `Quick, test_coherence_active_window);
    ("coherence ESP", `Quick, test_coherence_esp);
    ("coherence validation", `Quick, test_coherence_validation);
    ("coherence schedules bounded", `Quick, test_coherence_schedules_bounded);
    ("coherence alap strictly better", `Quick, test_coherence_alap_strictly_better_sometimes);
    ("coherence random model", `Quick, test_coherence_random);
    ("qasm parse simple", `Quick, test_qasm_parse_simple);
    ("qasm roundtrip semantics", `Quick, test_qasm_roundtrip_semantics);
    ("qasm parse errors", `Quick, test_qasm_parse_errors);
    ("qasm angle expressions", `Quick, test_qasm_angle_expressions);
    ("reverse circuit", `Quick, test_reverse_circuit);
    ("reverse traversal refines", `Slow, test_reverse_traversal_improves_or_matches);
    ("reverse traversal zero iterations", `Quick, test_reverse_traversal_zero_iterations);
    ("vqa region", `Quick, test_vqa_region);
    ("vqa mapping valid", `Quick, test_vqa_mapping_valid);
    ("vqa requires calibration", `Quick, test_vqa_requires_calibration);
    ("iterative vs single shot", `Quick, test_iterative_improves_or_matches_single);
    ("iterative success objective", `Quick, test_iterative_success_objective);
    ("iterative validation", `Quick, test_iterative_validation);
  ]
