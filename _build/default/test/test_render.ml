(* Tests for ALAP layering, the ASCII circuit renderer and the parameter
   landscape module. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Layering = Qaoa_circuit.Layering
module Render = Qaoa_circuit.Render
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Analytic = Qaoa_core.Analytic
module Landscape = Qaoa_core.Landscape
module Generators = Qaoa_graph.Generators
module Statevector = Qaoa_sim.Statevector
module Rng = Qaoa_util.Rng

(* --- ALAP --- *)

let test_alap_same_depth_and_gates () =
  let rng = Rng.create 1 in
  for _ = 1 to 10 do
    let gates =
      List.init 20 (fun _ ->
          match Rng.int rng 3 with
          | 0 -> Gate.H (Rng.int rng 4)
          | 1 ->
            let a = Rng.int rng 4 in
            Gate.Cnot (a, (a + 1) mod 4)
          | _ -> Gate.Rz (Rng.int rng 4, 0.5))
    in
    let c = Circuit.of_gates 4 gates in
    let asap = Layering.layers c and alap = Layering.alap_layers c in
    Alcotest.(check int) "same depth" (List.length asap) (List.length alap);
    Alcotest.(check bool) "alap disjoint" true (Layering.check_layers_disjoint alap);
    Alcotest.(check int) "all gates present" (Circuit.length c)
      (List.length (List.concat alap))
  done

let test_alap_sinks_gates () =
  (* H on q0 has no consumer until the end; ALAP must push it past q1's
     long chain *)
  let c =
    Circuit.of_gates 2
      [ Gate.H 0; Gate.H 1; Gate.Rz (1, 0.1); Gate.Rz (1, 0.2); Gate.Cnot (0, 1) ]
  in
  let alap = Layering.alap_layers c in
  (* the H 0 should appear in the next-to-last layer (just before CNOT) *)
  let layer_of_h0 =
    List.mapi (fun i l -> (i, l)) alap
    |> List.find_map (fun (i, l) ->
           if List.exists (fun g -> Gate.equal g (Gate.H 0)) l then Some i
           else None)
  in
  Alcotest.(check (option int)) "h0 sunk to layer 2" (Some 2) layer_of_h0

let test_alap_semantics () =
  let rng = Rng.create 2 in
  for _ = 1 to 5 do
    let gates =
      List.init 15 (fun _ ->
          match Rng.int rng 3 with
          | 0 -> Gate.H (Rng.int rng 3)
          | 1 ->
            let a = Rng.int rng 3 in
            Gate.Cnot (a, (a + 1) mod 3)
          | _ -> Gate.Rx (Rng.int rng 3, Rng.float rng 3.0))
    in
    let c = Circuit.of_gates 3 gates in
    let relaid = Circuit.of_gates 3 (List.concat (Layering.alap_layers c)) in
    Alcotest.(check bool) "alap preserves semantics" true
      (Statevector.equal_up_to_global_phase
         (Statevector.of_circuit c)
         (Statevector.of_circuit relaid))
  done

(* --- Render --- *)

let test_render_bell () =
  let c =
    Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1); Gate.Measure 0; Gate.Measure 1 ]
  in
  let s = Render.to_string c in
  Alcotest.(check string) "golden bell"
    "q0: -H-o-M-\nq1: ---X-M-\n" s

let test_render_gate_symbols () =
  let c =
    Circuit.of_gates 2
      [ Gate.Cphase (0, 1, 0.5); Gate.Swap (0, 1); Gate.Rz (0, 0.1) ]
  in
  let s = Render.to_string c in
  Alcotest.(check string) "golden symbols"
    "q0: -#-x-RZ-\nq1: -#-x----\n" s

let test_render_empty () =
  let s = Render.to_string (Circuit.create 2) in
  Alcotest.(check string) "empty" "q0: -\nq1: -\n" s

(* --- Landscape --- *)

let test_landscape_matches_optimize () =
  let g = Generators.cycle 6 in
  let problem = Problem.of_maxcut g in
  let t = Landscape.grid ~gamma_points:32 ~beta_points:32 problem in
  let (_, _), grid_best = Landscape.best t in
  let _, opt = Analytic.optimize ~grid:32 g in
  Alcotest.(check bool)
    (Printf.sprintf "grid best %.3f within 2%% of optimum %.3f" grid_best opt)
    true
    (grid_best > opt *. 0.98)

let test_landscape_zero_row () =
  (* beta = 0 leaves the uniform superposition: every gamma gives m/2 *)
  let problem = Problem.of_maxcut (Generators.cycle 4) in
  let t = Landscape.grid ~gamma_points:8 ~beta_points:4 problem in
  Array.iteri
    (fun i row ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "beta=0 at gamma_%d" i)
        2.0 row.(0))
    t.values

let test_landscape_weighted_uses_simulator () =
  (* weighted problems can't use the closed form; values must still match
     the simulator *)
  let problem =
    Problem.create ~num_vars:3 [ (0, 1, -1.0); (1, 2, -0.25) ]
  in
  let t = Landscape.grid ~gamma_points:4 ~beta_points:4 problem in
  let direct =
    Ansatz.expectation problem
      (Ansatz.params_p1 ~gamma:t.Landscape.gammas.(1) ~beta:t.Landscape.betas.(2))
  in
  Alcotest.(check (float 1e-9)) "simulator value" direct t.Landscape.values.(1).(2)

let test_landscape_ascii_shape () =
  let problem = Problem.of_maxcut (Generators.cycle 4) in
  let t = Landscape.grid ~gamma_points:10 ~beta_points:6 problem in
  let art = Landscape.ascii t in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' art) in
  Alcotest.(check int) "one row per beta" 6 (List.length lines);
  List.iter
    (fun l -> Alcotest.(check int) "one char per gamma" 10 (String.length l))
    lines

let test_landscape_csv () =
  let problem = Problem.of_maxcut (Generators.cycle 4) in
  let t = Landscape.grid ~gamma_points:2 ~beta_points:2 problem in
  let csv = Landscape.to_csv t in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "header + 4 points" 5 (List.length lines);
  Alcotest.(check string) "header" "gamma,beta,expectation" (List.hd lines)

let suite =
  [
    ("alap same depth", `Quick, test_alap_same_depth_and_gates);
    ("alap sinks gates", `Quick, test_alap_sinks_gates);
    ("alap semantics", `Quick, test_alap_semantics);
    ("render bell (golden)", `Quick, test_render_bell);
    ("render symbols (golden)", `Quick, test_render_gate_symbols);
    ("render empty", `Quick, test_render_empty);
    ("landscape matches optimize", `Quick, test_landscape_matches_optimize);
    ("landscape beta=0 row", `Quick, test_landscape_zero_row);
    ("landscape weighted simulator path", `Quick, test_landscape_weighted_uses_simulator);
    ("landscape ascii shape", `Quick, test_landscape_ascii_shape);
    ("landscape csv", `Quick, test_landscape_csv);
  ]
