(* Unit and property tests for the circuit IR: gates, layering/depth,
   decomposition, metrics and QASM export.  Depth figures are anchored to
   the paper's Fig. 1 worked example. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Layering = Qaoa_circuit.Layering
module Decompose = Qaoa_circuit.Decompose
module Metrics = Qaoa_circuit.Metrics
module Qasm = Qaoa_circuit.Qasm
module Statevector = Qaoa_sim.Statevector
module Rng = Qaoa_util.Rng

let test_gate_queries () =
  Alcotest.(check (list int)) "h qubits" [ 3 ] (Gate.qubits (Gate.H 3));
  Alcotest.(check (list int)) "cx qubits" [ 1; 2 ] (Gate.qubits (Gate.Cnot (1, 2)));
  Alcotest.(check (list int)) "barrier qubits" [] (Gate.qubits Gate.Barrier);
  Alcotest.(check bool) "cphase 2q" true (Gate.is_two_qubit (Gate.Cphase (0, 1, 0.3)));
  Alcotest.(check bool) "rx not 2q" false (Gate.is_two_qubit (Gate.Rx (0, 0.3)));
  Alcotest.(check bool) "measure not unitary" false (Gate.is_unitary (Gate.Measure 0));
  Alcotest.(check string) "cx name" "cx" (Gate.name (Gate.Cnot (0, 1)));
  let g = Gate.map_qubits (fun q -> q + 10) (Gate.Swap (0, 1)) in
  Alcotest.(check (list int)) "map qubits" [ 10; 11 ] (Gate.qubits g)

let test_circuit_builder () =
  let c = Circuit.of_gates 3 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  Alcotest.(check int) "len" 2 (Circuit.length c);
  Alcotest.(check int) "qubits" 3 (Circuit.num_qubits c);
  Alcotest.(check (list int)) "used" [ 0; 1 ] (Circuit.used_qubits c);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Circuit: qubit 5 out of range (n=3)") (fun () ->
      ignore (Circuit.append c (Gate.H 5)));
  let c2 = Circuit.concat c (Circuit.of_gates 3 [ Gate.X 2 ]) in
  Alcotest.(check int) "concat len" 3 (Circuit.length c2);
  (* concat preserves order *)
  (match List.rev (Circuit.gates c2) with
  | Gate.X 2 :: _ -> ()
  | _ -> Alcotest.fail "concat order");
  Alcotest.check_raises "concat mismatch"
    (Invalid_argument "Circuit.concat: qubit count mismatch") (fun () ->
      ignore (Circuit.concat c (Circuit.create 2)))

(* Fig. 1(b): randomly ordered K4 MaxCut circuit takes 9 time steps
   (H wall + 6 CPHASE steps + RX wall + measurement). *)
let fig1_circ ~order =
  let c = ref (Circuit.create 4) in
  let add g = c := Circuit.append !c g in
  List.iter (fun q -> add (Gate.H q)) [ 0; 1; 2; 3 ];
  List.iter (fun (a, b) -> add (Gate.Cphase (a, b, 0.7))) order;
  List.iter (fun q -> add (Gate.Rx (q, 0.5))) [ 0; 1; 2; 3 ];
  List.iter (fun q -> add (Gate.Measure q)) [ 0; 1; 2; 3 ];
  !c

let test_fig1_depths () =
  (* circ-1: every consecutive CPHASE shares a qubit -> 6 CPHASE steps *)
  let circ1 =
    fig1_circ ~order:[ (0, 1); (1, 2); (0, 2); (2, 3); (0, 3); (1, 3) ]
  in
  Alcotest.(check int) "circ-1 depth 9" 9 (Layering.depth circ1);
  (* circ-2: intelligently ordered -> 3 CPHASE steps, depth 6 *)
  let circ2 =
    fig1_circ ~order:[ (0, 1); (2, 3); (0, 2); (1, 3); (0, 3); (1, 2) ]
  in
  Alcotest.(check int) "circ-2 depth 6" 6 (Layering.depth circ2)

let test_layering_barrier () =
  let c =
    Circuit.of_gates 2 [ Gate.H 0; Gate.Barrier; Gate.H 1 ]
  in
  Alcotest.(check int) "barrier forces step" 2 (Layering.depth c);
  let no_barrier = Circuit.of_gates 2 [ Gate.H 0; Gate.H 1 ] in
  Alcotest.(check int) "parallel without barrier" 1 (Layering.depth no_barrier)

let test_layers_disjoint_and_ordered () =
  let c =
    Circuit.of_gates 4
      [ Gate.H 0; Gate.Cnot (0, 1); Gate.H 2; Gate.Cnot (2, 3); Gate.Cnot (1, 2) ]
  in
  let layers = Layering.layers c in
  Alcotest.(check bool) "disjoint" true (Layering.check_layers_disjoint layers);
  Alcotest.(check int) "depth equals layer count" (Layering.depth c)
    (List.length layers);
  (* flattening layers preserves the gate multiset *)
  let flat = List.concat layers in
  Alcotest.(check int) "all gates present" (Circuit.length c) (List.length flat)

let test_empty_circuit () =
  let c = Circuit.create 3 in
  Alcotest.(check int) "empty depth" 0 (Layering.depth c);
  Alcotest.(check int) "no layers" 0 (List.length (Layering.layers c));
  let m = Metrics.of_circuit c in
  Alcotest.(check int) "no gates" 0 m.Metrics.gate_count

let test_qubit_busy_time () =
  let c = Circuit.of_gates 3 [ Gate.H 0; Gate.Cnot (0, 1); Gate.H 0 ] in
  let busy = Layering.qubit_busy_time c in
  Alcotest.(check (array int)) "busy" [| 3; 1; 0 |] busy

(* Decomposition must preserve semantics exactly. *)
let check_same_state a b =
  let sa = Statevector.of_circuit a and sb = Statevector.of_circuit b in
  Alcotest.(check bool) "states equal" true
    (Statevector.equal_up_to_global_phase ~eps:1e-9 sa sb)

let test_cphase_decomposition_semantics () =
  List.iter
    (fun theta ->
      let pre = [ Gate.H 0; Gate.H 1; Gate.Rx (0, 0.3) ] in
      let a = Circuit.of_gates 2 (pre @ [ Gate.Cphase (0, 1, theta) ]) in
      let b = Circuit.of_gates 2 (pre @ Decompose.gate (Gate.Cphase (0, 1, theta))) in
      check_same_state a b)
    [ 0.0; 0.3; 1.0; Float.pi; -2.5 ]

let test_swap_decomposition_semantics () =
  let pre = [ Gate.H 0; Gate.Rx (1, 1.1); Gate.Ry (0, 0.4) ] in
  let a = Circuit.of_gates 2 (pre @ [ Gate.Swap (0, 1) ]) in
  let b = Circuit.of_gates 2 (pre @ Decompose.gate (Gate.Swap (0, 1))) in
  check_same_state a b

let test_decompose_counts () =
  let c =
    Circuit.of_gates 3
      [ Gate.H 0; Gate.Cphase (0, 1, 0.5); Gate.Swap (1, 2); Gate.Measure 0 ]
  in
  let d = Decompose.circuit c in
  let cx =
    List.length
      (List.filter (function Gate.Cnot _ -> true | _ -> false) (Circuit.gates d))
  in
  Alcotest.(check int) "cx count 2+3" 5 cx;
  Alcotest.(check bool) "all basis" true
    (List.for_all Decompose.is_basis (Circuit.gates d))

let test_metrics () =
  let c =
    Circuit.of_gates 3
      [ Gate.H 0; Gate.Cphase (0, 1, 0.5); Gate.Swap (1, 2); Gate.Measure 0 ]
  in
  let m = Metrics.of_circuit c in
  (* h + (cx rz cx) + (cx cx cx) = 7 native gates *)
  Alcotest.(check int) "gate count" 7 m.Metrics.gate_count;
  Alcotest.(check int) "cx count" 5 m.Metrics.two_qubit_count;
  Alcotest.(check int) "measures" 1 m.Metrics.measure_count;
  let by_name = Metrics.counts_by_name c in
  Alcotest.(check (option int)) "cx by name" (Some 5) (List.assoc_opt "cx" by_name);
  Alcotest.(check (option int)) "rz by name" (Some 1) (List.assoc_opt "rz" by_name)

let test_map_qubits_circuit () =
  let c = Circuit.of_gates 4 [ Gate.Cnot (0, 1); Gate.H 2 ] in
  let m = Circuit.map_qubits (fun q -> 3 - q) c in
  match Circuit.gates m with
  | [ Gate.Cnot (3, 2); Gate.H 1 ] -> ()
  | _ -> Alcotest.fail "map_qubits wrong"

let test_qasm_export () =
  let c =
    Circuit.of_gates 2
      [ Gate.H 0; Gate.Cphase (0, 1, 0.5); Gate.Measure 1 ]
  in
  let s = Qasm.to_string c in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "OPENQASM 2.0;");
  Alcotest.(check bool) "qreg" true (contains "qreg q[2];");
  Alcotest.(check bool) "creg present" true (contains "creg c[2];");
  Alcotest.(check bool) "cphase lowered" true (contains "cx q[0],q[1];");
  Alcotest.(check bool) "rz emitted" true (contains "rz(0.5) q[1];");
  let no_measure = Circuit.of_gates 1 [ Gate.H 0 ] in
  let s2 = Qasm.to_string no_measure in
  Alcotest.(check bool) "no creg without measure" false
    (let nl = "creg" in
     let rec go i =
       i + String.length nl <= String.length s2
       && (String.sub s2 i (String.length nl) = nl || go (i + 1))
     in
     go 0)

(* QCheck: ASAP layering of random circuits is a valid schedule: layers
   are qubit-disjoint and respect per-qubit gate order. *)
let random_circuit rng n len =
  let gates =
    List.init len (fun _ ->
        match Rng.int rng 5 with
        | 0 -> Gate.H (Rng.int rng n)
        | 1 -> Gate.Rx (Rng.int rng n, Rng.float rng 3.0)
        | 2 ->
          let a = Rng.int rng n in
          let b = (a + 1 + Rng.int rng (n - 1)) mod n in
          Gate.Cnot (a, b)
        | 3 ->
          let a = Rng.int rng n in
          let b = (a + 1 + Rng.int rng (n - 1)) mod n in
          Gate.Cphase (a, b, Rng.float rng 3.0)
        | _ -> Gate.Rz (Rng.int rng n, Rng.float rng 3.0))
  in
  Circuit.of_gates n gates

let prop_layering_valid =
  QCheck.Test.make ~name:"ASAP layers are disjoint and complete" ~count:100
    QCheck.(pair (int_bound 100000) (int_range 2 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = random_circuit rng n 30 in
      let layers = Layering.layers c in
      Layering.check_layers_disjoint layers
      && List.length (List.concat layers) = Circuit.length c)

(* QCheck: executing the layered order gives the same state as the
   original program order (ASAP only reorders commuting-by-disjointness
   gates). *)
let prop_layering_semantics =
  QCheck.Test.make ~name:"ASAP schedule preserves semantics" ~count:50
    QCheck.(pair (int_bound 100000) (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = random_circuit rng n 25 in
      let relaid = Circuit.of_gates n (List.concat (Layering.layers c)) in
      Statevector.equal_up_to_global_phase ~eps:1e-9
        (Statevector.of_circuit c)
        (Statevector.of_circuit relaid))

(* QCheck: decomposition preserves semantics on random circuits. *)
let prop_decompose_semantics =
  QCheck.Test.make ~name:"decomposition preserves semantics" ~count:50
    QCheck.(pair (int_bound 100000) (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = random_circuit rng n 20 in
      Statevector.equal_up_to_global_phase ~eps:1e-9
        (Statevector.of_circuit c)
        (Statevector.of_circuit (Decompose.circuit c)))

let suite =
  [
    ("gate queries", `Quick, test_gate_queries);
    ("circuit builder", `Quick, test_circuit_builder);
    ("fig.1 depth anchor", `Quick, test_fig1_depths);
    ("barrier layering", `Quick, test_layering_barrier);
    ("layers disjoint", `Quick, test_layers_disjoint_and_ordered);
    ("empty circuit", `Quick, test_empty_circuit);
    ("qubit busy time", `Quick, test_qubit_busy_time);
    ("cphase decomposition", `Quick, test_cphase_decomposition_semantics);
    ("swap decomposition", `Quick, test_swap_decomposition_semantics);
    ("decompose counts", `Quick, test_decompose_counts);
    ("metrics", `Quick, test_metrics);
    ("map qubits", `Quick, test_map_qubits_circuit);
    ("qasm export", `Quick, test_qasm_export);
    QCheck_alcotest.to_alcotest prop_layering_valid;
    QCheck_alcotest.to_alcotest prop_layering_semantics;
    QCheck_alcotest.to_alcotest prop_decompose_semantics;
  ]
